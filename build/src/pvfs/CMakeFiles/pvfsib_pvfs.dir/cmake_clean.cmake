file(REMOVE_RECURSE
  "CMakeFiles/pvfsib_pvfs.dir/client.cc.o"
  "CMakeFiles/pvfsib_pvfs.dir/client.cc.o.d"
  "CMakeFiles/pvfsib_pvfs.dir/cluster.cc.o"
  "CMakeFiles/pvfsib_pvfs.dir/cluster.cc.o.d"
  "CMakeFiles/pvfsib_pvfs.dir/iod.cc.o"
  "CMakeFiles/pvfsib_pvfs.dir/iod.cc.o.d"
  "CMakeFiles/pvfsib_pvfs.dir/manager.cc.o"
  "CMakeFiles/pvfsib_pvfs.dir/manager.cc.o.d"
  "libpvfsib_pvfs.a"
  "libpvfsib_pvfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pvfsib_pvfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
