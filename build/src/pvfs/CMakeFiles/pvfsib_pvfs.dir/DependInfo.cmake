
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pvfs/client.cc" "src/pvfs/CMakeFiles/pvfsib_pvfs.dir/client.cc.o" "gcc" "src/pvfs/CMakeFiles/pvfsib_pvfs.dir/client.cc.o.d"
  "/root/repo/src/pvfs/cluster.cc" "src/pvfs/CMakeFiles/pvfsib_pvfs.dir/cluster.cc.o" "gcc" "src/pvfs/CMakeFiles/pvfsib_pvfs.dir/cluster.cc.o.d"
  "/root/repo/src/pvfs/iod.cc" "src/pvfs/CMakeFiles/pvfsib_pvfs.dir/iod.cc.o" "gcc" "src/pvfs/CMakeFiles/pvfsib_pvfs.dir/iod.cc.o.d"
  "/root/repo/src/pvfs/manager.cc" "src/pvfs/CMakeFiles/pvfsib_pvfs.dir/manager.cc.o" "gcc" "src/pvfs/CMakeFiles/pvfsib_pvfs.dir/manager.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pvfsib_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ib/CMakeFiles/pvfsib_ib.dir/DependInfo.cmake"
  "/root/repo/build/src/vmem/CMakeFiles/pvfsib_vmem.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/pvfsib_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pvfsib_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
