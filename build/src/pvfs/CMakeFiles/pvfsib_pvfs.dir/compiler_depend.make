# Empty compiler generated dependencies file for pvfsib_pvfs.
# This may be replaced when dependencies are built.
