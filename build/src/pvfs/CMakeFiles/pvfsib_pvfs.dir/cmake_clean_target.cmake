file(REMOVE_RECURSE
  "libpvfsib_pvfs.a"
)
