
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpiio/datatype.cc" "src/mpiio/CMakeFiles/pvfsib_mpiio.dir/datatype.cc.o" "gcc" "src/mpiio/CMakeFiles/pvfsib_mpiio.dir/datatype.cc.o.d"
  "/root/repo/src/mpiio/file_view.cc" "src/mpiio/CMakeFiles/pvfsib_mpiio.dir/file_view.cc.o" "gcc" "src/mpiio/CMakeFiles/pvfsib_mpiio.dir/file_view.cc.o.d"
  "/root/repo/src/mpiio/mpio_file.cc" "src/mpiio/CMakeFiles/pvfsib_mpiio.dir/mpio_file.cc.o" "gcc" "src/mpiio/CMakeFiles/pvfsib_mpiio.dir/mpio_file.cc.o.d"
  "/root/repo/src/mpiio/runtime.cc" "src/mpiio/CMakeFiles/pvfsib_mpiio.dir/runtime.cc.o" "gcc" "src/mpiio/CMakeFiles/pvfsib_mpiio.dir/runtime.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pvfs/CMakeFiles/pvfsib_pvfs.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pvfsib_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ib/CMakeFiles/pvfsib_ib.dir/DependInfo.cmake"
  "/root/repo/build/src/vmem/CMakeFiles/pvfsib_vmem.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/pvfsib_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pvfsib_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
