# Empty dependencies file for pvfsib_mpiio.
# This may be replaced when dependencies are built.
