file(REMOVE_RECURSE
  "CMakeFiles/pvfsib_mpiio.dir/datatype.cc.o"
  "CMakeFiles/pvfsib_mpiio.dir/datatype.cc.o.d"
  "CMakeFiles/pvfsib_mpiio.dir/file_view.cc.o"
  "CMakeFiles/pvfsib_mpiio.dir/file_view.cc.o.d"
  "CMakeFiles/pvfsib_mpiio.dir/mpio_file.cc.o"
  "CMakeFiles/pvfsib_mpiio.dir/mpio_file.cc.o.d"
  "CMakeFiles/pvfsib_mpiio.dir/runtime.cc.o"
  "CMakeFiles/pvfsib_mpiio.dir/runtime.cc.o.d"
  "libpvfsib_mpiio.a"
  "libpvfsib_mpiio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pvfsib_mpiio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
