file(REMOVE_RECURSE
  "libpvfsib_mpiio.a"
)
