file(REMOVE_RECURSE
  "libpvfsib_common.a"
)
