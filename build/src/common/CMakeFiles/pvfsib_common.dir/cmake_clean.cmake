file(REMOVE_RECURSE
  "CMakeFiles/pvfsib_common.dir/extent.cc.o"
  "CMakeFiles/pvfsib_common.dir/extent.cc.o.d"
  "CMakeFiles/pvfsib_common.dir/logging.cc.o"
  "CMakeFiles/pvfsib_common.dir/logging.cc.o.d"
  "CMakeFiles/pvfsib_common.dir/sim_time.cc.o"
  "CMakeFiles/pvfsib_common.dir/sim_time.cc.o.d"
  "CMakeFiles/pvfsib_common.dir/stats.cc.o"
  "CMakeFiles/pvfsib_common.dir/stats.cc.o.d"
  "CMakeFiles/pvfsib_common.dir/status.cc.o"
  "CMakeFiles/pvfsib_common.dir/status.cc.o.d"
  "libpvfsib_common.a"
  "libpvfsib_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pvfsib_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
