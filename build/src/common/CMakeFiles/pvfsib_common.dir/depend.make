# Empty dependencies file for pvfsib_common.
# This may be replaced when dependencies are built.
