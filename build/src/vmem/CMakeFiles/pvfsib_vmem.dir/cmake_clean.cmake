file(REMOVE_RECURSE
  "CMakeFiles/pvfsib_vmem.dir/address_space.cc.o"
  "CMakeFiles/pvfsib_vmem.dir/address_space.cc.o.d"
  "libpvfsib_vmem.a"
  "libpvfsib_vmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pvfsib_vmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
