# Empty compiler generated dependencies file for pvfsib_vmem.
# This may be replaced when dependencies are built.
