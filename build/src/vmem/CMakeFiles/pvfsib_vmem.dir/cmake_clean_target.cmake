file(REMOVE_RECURSE
  "libpvfsib_vmem.a"
)
