
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/disk/local_fs.cc" "src/disk/CMakeFiles/pvfsib_disk.dir/local_fs.cc.o" "gcc" "src/disk/CMakeFiles/pvfsib_disk.dir/local_fs.cc.o.d"
  "/root/repo/src/disk/page_cache.cc" "src/disk/CMakeFiles/pvfsib_disk.dir/page_cache.cc.o" "gcc" "src/disk/CMakeFiles/pvfsib_disk.dir/page_cache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pvfsib_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
