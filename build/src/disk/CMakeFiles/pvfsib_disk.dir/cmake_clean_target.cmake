file(REMOVE_RECURSE
  "libpvfsib_disk.a"
)
