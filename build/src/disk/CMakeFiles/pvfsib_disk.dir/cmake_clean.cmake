file(REMOVE_RECURSE
  "CMakeFiles/pvfsib_disk.dir/local_fs.cc.o"
  "CMakeFiles/pvfsib_disk.dir/local_fs.cc.o.d"
  "CMakeFiles/pvfsib_disk.dir/page_cache.cc.o"
  "CMakeFiles/pvfsib_disk.dir/page_cache.cc.o.d"
  "libpvfsib_disk.a"
  "libpvfsib_disk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pvfsib_disk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
