# Empty dependencies file for pvfsib_disk.
# This may be replaced when dependencies are built.
