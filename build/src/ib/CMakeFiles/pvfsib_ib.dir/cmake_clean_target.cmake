file(REMOVE_RECURSE
  "libpvfsib_ib.a"
)
