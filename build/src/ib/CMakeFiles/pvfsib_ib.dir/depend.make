# Empty dependencies file for pvfsib_ib.
# This may be replaced when dependencies are built.
