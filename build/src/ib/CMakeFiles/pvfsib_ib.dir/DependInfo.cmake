
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ib/fabric.cc" "src/ib/CMakeFiles/pvfsib_ib.dir/fabric.cc.o" "gcc" "src/ib/CMakeFiles/pvfsib_ib.dir/fabric.cc.o.d"
  "/root/repo/src/ib/mr_cache.cc" "src/ib/CMakeFiles/pvfsib_ib.dir/mr_cache.cc.o" "gcc" "src/ib/CMakeFiles/pvfsib_ib.dir/mr_cache.cc.o.d"
  "/root/repo/src/ib/qp.cc" "src/ib/CMakeFiles/pvfsib_ib.dir/qp.cc.o" "gcc" "src/ib/CMakeFiles/pvfsib_ib.dir/qp.cc.o.d"
  "/root/repo/src/ib/verbs.cc" "src/ib/CMakeFiles/pvfsib_ib.dir/verbs.cc.o" "gcc" "src/ib/CMakeFiles/pvfsib_ib.dir/verbs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pvfsib_common.dir/DependInfo.cmake"
  "/root/repo/build/src/vmem/CMakeFiles/pvfsib_vmem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
