file(REMOVE_RECURSE
  "CMakeFiles/pvfsib_ib.dir/fabric.cc.o"
  "CMakeFiles/pvfsib_ib.dir/fabric.cc.o.d"
  "CMakeFiles/pvfsib_ib.dir/mr_cache.cc.o"
  "CMakeFiles/pvfsib_ib.dir/mr_cache.cc.o.d"
  "CMakeFiles/pvfsib_ib.dir/qp.cc.o"
  "CMakeFiles/pvfsib_ib.dir/qp.cc.o.d"
  "CMakeFiles/pvfsib_ib.dir/verbs.cc.o"
  "CMakeFiles/pvfsib_ib.dir/verbs.cc.o.d"
  "libpvfsib_ib.a"
  "libpvfsib_ib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pvfsib_ib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
