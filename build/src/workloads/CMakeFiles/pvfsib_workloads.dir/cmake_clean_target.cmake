file(REMOVE_RECURSE
  "libpvfsib_workloads.a"
)
