# Empty compiler generated dependencies file for pvfsib_workloads.
# This may be replaced when dependencies are built.
