file(REMOVE_RECURSE
  "CMakeFiles/pvfsib_workloads.dir/block_column.cc.o"
  "CMakeFiles/pvfsib_workloads.dir/block_column.cc.o.d"
  "CMakeFiles/pvfsib_workloads.dir/btio.cc.o"
  "CMakeFiles/pvfsib_workloads.dir/btio.cc.o.d"
  "CMakeFiles/pvfsib_workloads.dir/subarray.cc.o"
  "CMakeFiles/pvfsib_workloads.dir/subarray.cc.o.d"
  "CMakeFiles/pvfsib_workloads.dir/tile_io.cc.o"
  "CMakeFiles/pvfsib_workloads.dir/tile_io.cc.o.d"
  "libpvfsib_workloads.a"
  "libpvfsib_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pvfsib_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
