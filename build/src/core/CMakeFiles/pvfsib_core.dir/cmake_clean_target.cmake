file(REMOVE_RECURSE
  "libpvfsib_core.a"
)
