# Empty dependencies file for pvfsib_core.
# This may be replaced when dependencies are built.
