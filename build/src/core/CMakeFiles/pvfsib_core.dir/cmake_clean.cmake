file(REMOVE_RECURSE
  "CMakeFiles/pvfsib_core.dir/ads.cc.o"
  "CMakeFiles/pvfsib_core.dir/ads.cc.o.d"
  "CMakeFiles/pvfsib_core.dir/listio.cc.o"
  "CMakeFiles/pvfsib_core.dir/listio.cc.o.d"
  "CMakeFiles/pvfsib_core.dir/ogr.cc.o"
  "CMakeFiles/pvfsib_core.dir/ogr.cc.o.d"
  "CMakeFiles/pvfsib_core.dir/transfer.cc.o"
  "CMakeFiles/pvfsib_core.dir/transfer.cc.o.d"
  "libpvfsib_core.a"
  "libpvfsib_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pvfsib_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
