file(REMOVE_RECURSE
  "CMakeFiles/cost_model_explorer.dir/cost_model_explorer.cpp.o"
  "CMakeFiles/cost_model_explorer.dir/cost_model_explorer.cpp.o.d"
  "cost_model_explorer"
  "cost_model_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cost_model_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
