file(REMOVE_RECURSE
  "CMakeFiles/tiled_visualization.dir/tiled_visualization.cpp.o"
  "CMakeFiles/tiled_visualization.dir/tiled_visualization.cpp.o.d"
  "tiled_visualization"
  "tiled_visualization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tiled_visualization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
