# Empty compiler generated dependencies file for tiled_visualization.
# This may be replaced when dependencies are built.
