# Empty compiler generated dependencies file for checkpoint_subarray.
# This may be replaced when dependencies are built.
