file(REMOVE_RECURSE
  "CMakeFiles/checkpoint_subarray.dir/checkpoint_subarray.cpp.o"
  "CMakeFiles/checkpoint_subarray.dir/checkpoint_subarray.cpp.o.d"
  "checkpoint_subarray"
  "checkpoint_subarray.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkpoint_subarray.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
