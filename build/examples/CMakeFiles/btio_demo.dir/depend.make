# Empty dependencies file for btio_demo.
# This may be replaced when dependencies are built.
