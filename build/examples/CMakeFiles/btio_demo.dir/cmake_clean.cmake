file(REMOVE_RECURSE
  "CMakeFiles/btio_demo.dir/btio_demo.cpp.o"
  "CMakeFiles/btio_demo.dir/btio_demo.cpp.o.d"
  "btio_demo"
  "btio_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btio_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
