# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/extent_test[1]_include.cmake")
include("/root/repo/build/tests/sim_time_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/address_space_test[1]_include.cmake")
include("/root/repo/build/tests/verbs_test[1]_include.cmake")
include("/root/repo/build/tests/mr_cache_test[1]_include.cmake")
include("/root/repo/build/tests/fabric_test[1]_include.cmake")
include("/root/repo/build/tests/cq_test[1]_include.cmake")
include("/root/repo/build/tests/qp_test[1]_include.cmake")
include("/root/repo/build/tests/disk_test[1]_include.cmake")
include("/root/repo/build/tests/local_fs_test[1]_include.cmake")
include("/root/repo/build/tests/listio_test[1]_include.cmake")
include("/root/repo/build/tests/ogr_test[1]_include.cmake")
include("/root/repo/build/tests/ads_test[1]_include.cmake")
include("/root/repo/build/tests/transfer_test[1]_include.cmake")
include("/root/repo/build/tests/pvfs_test[1]_include.cmake")
include("/root/repo/build/tests/iod_test[1]_include.cmake")
include("/root/repo/build/tests/manager_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_property_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/datatype_test[1]_include.cmake")
include("/root/repo/build/tests/mpiio_test[1]_include.cmake")
include("/root/repo/build/tests/mpiio_property_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
