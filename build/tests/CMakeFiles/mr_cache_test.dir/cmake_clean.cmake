file(REMOVE_RECURSE
  "CMakeFiles/mr_cache_test.dir/mr_cache_test.cc.o"
  "CMakeFiles/mr_cache_test.dir/mr_cache_test.cc.o.d"
  "mr_cache_test"
  "mr_cache_test.pdb"
  "mr_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mr_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
