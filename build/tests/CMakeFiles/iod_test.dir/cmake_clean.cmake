file(REMOVE_RECURSE
  "CMakeFiles/iod_test.dir/iod_test.cc.o"
  "CMakeFiles/iod_test.dir/iod_test.cc.o.d"
  "iod_test"
  "iod_test.pdb"
  "iod_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iod_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
