# Empty dependencies file for iod_test.
# This may be replaced when dependencies are built.
