# Empty dependencies file for local_fs_test.
# This may be replaced when dependencies are built.
