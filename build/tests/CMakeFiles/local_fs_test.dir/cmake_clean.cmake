file(REMOVE_RECURSE
  "CMakeFiles/local_fs_test.dir/local_fs_test.cc.o"
  "CMakeFiles/local_fs_test.dir/local_fs_test.cc.o.d"
  "local_fs_test"
  "local_fs_test.pdb"
  "local_fs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/local_fs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
