
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/trace_test.cc" "tests/CMakeFiles/trace_test.dir/trace_test.cc.o" "gcc" "tests/CMakeFiles/trace_test.dir/trace_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pvfs/CMakeFiles/pvfsib_pvfs.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pvfsib_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ib/CMakeFiles/pvfsib_ib.dir/DependInfo.cmake"
  "/root/repo/build/src/vmem/CMakeFiles/pvfsib_vmem.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/pvfsib_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pvfsib_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
