# Empty compiler generated dependencies file for listio_test.
# This may be replaced when dependencies are built.
