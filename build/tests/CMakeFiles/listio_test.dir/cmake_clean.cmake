file(REMOVE_RECURSE
  "CMakeFiles/listio_test.dir/listio_test.cc.o"
  "CMakeFiles/listio_test.dir/listio_test.cc.o.d"
  "listio_test"
  "listio_test.pdb"
  "listio_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/listio_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
