# Empty dependencies file for ogr_test.
# This may be replaced when dependencies are built.
