file(REMOVE_RECURSE
  "CMakeFiles/ogr_test.dir/ogr_test.cc.o"
  "CMakeFiles/ogr_test.dir/ogr_test.cc.o.d"
  "ogr_test"
  "ogr_test.pdb"
  "ogr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ogr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
