file(REMOVE_RECURSE
  "CMakeFiles/mpiio_property_test.dir/mpiio_property_test.cc.o"
  "CMakeFiles/mpiio_property_test.dir/mpiio_property_test.cc.o.d"
  "mpiio_property_test"
  "mpiio_property_test.pdb"
  "mpiio_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpiio_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
