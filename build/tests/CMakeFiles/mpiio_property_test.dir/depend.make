# Empty dependencies file for mpiio_property_test.
# This may be replaced when dependencies are built.
