file(REMOVE_RECURSE
  "../bench/table6_btio_profile"
  "../bench/table6_btio_profile.pdb"
  "CMakeFiles/table6_btio_profile.dir/table6_btio_profile.cc.o"
  "CMakeFiles/table6_btio_profile.dir/table6_btio_profile.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_btio_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
