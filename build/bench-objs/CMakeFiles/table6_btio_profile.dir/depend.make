# Empty dependencies file for table6_btio_profile.
# This may be replaced when dependencies are built.
