file(REMOVE_RECURSE
  "../bench/scale_iods"
  "../bench/scale_iods.pdb"
  "CMakeFiles/scale_iods.dir/scale_iods.cc.o"
  "CMakeFiles/scale_iods.dir/scale_iods.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scale_iods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
