# Empty dependencies file for scale_iods.
# This may be replaced when dependencies are built.
