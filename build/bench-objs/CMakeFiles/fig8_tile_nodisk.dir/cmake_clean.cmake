file(REMOVE_RECURSE
  "../bench/fig8_tile_nodisk"
  "../bench/fig8_tile_nodisk.pdb"
  "CMakeFiles/fig8_tile_nodisk.dir/fig8_tile_nodisk.cc.o"
  "CMakeFiles/fig8_tile_nodisk.dir/fig8_tile_nodisk.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_tile_nodisk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
