# Empty dependencies file for fig8_tile_nodisk.
# This may be replaced when dependencies are built.
