file(REMOVE_RECURSE
  "../bench/ablate_network"
  "../bench/ablate_network.pdb"
  "CMakeFiles/ablate_network.dir/ablate_network.cc.o"
  "CMakeFiles/ablate_network.dir/ablate_network.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
