# Empty dependencies file for ablate_network.
# This may be replaced when dependencies are built.
