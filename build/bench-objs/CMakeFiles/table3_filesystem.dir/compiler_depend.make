# Empty compiler generated dependencies file for table3_filesystem.
# This may be replaced when dependencies are built.
