file(REMOVE_RECURSE
  "../bench/table3_filesystem"
  "../bench/table3_filesystem.pdb"
  "CMakeFiles/table3_filesystem.dir/table3_filesystem.cc.o"
  "CMakeFiles/table3_filesystem.dir/table3_filesystem.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_filesystem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
