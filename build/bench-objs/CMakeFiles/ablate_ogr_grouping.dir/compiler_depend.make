# Empty compiler generated dependencies file for ablate_ogr_grouping.
# This may be replaced when dependencies are built.
