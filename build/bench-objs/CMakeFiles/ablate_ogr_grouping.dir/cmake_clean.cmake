file(REMOVE_RECURSE
  "../bench/ablate_ogr_grouping"
  "../bench/ablate_ogr_grouping.pdb"
  "CMakeFiles/ablate_ogr_grouping.dir/ablate_ogr_grouping.cc.o"
  "CMakeFiles/ablate_ogr_grouping.dir/ablate_ogr_grouping.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_ogr_grouping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
