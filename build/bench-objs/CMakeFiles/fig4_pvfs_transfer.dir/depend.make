# Empty dependencies file for fig4_pvfs_transfer.
# This may be replaced when dependencies are built.
