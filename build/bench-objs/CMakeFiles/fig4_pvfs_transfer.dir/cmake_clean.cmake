file(REMOVE_RECURSE
  "../bench/fig4_pvfs_transfer"
  "../bench/fig4_pvfs_transfer.pdb"
  "CMakeFiles/fig4_pvfs_transfer.dir/fig4_pvfs_transfer.cc.o"
  "CMakeFiles/fig4_pvfs_transfer.dir/fig4_pvfs_transfer.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_pvfs_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
