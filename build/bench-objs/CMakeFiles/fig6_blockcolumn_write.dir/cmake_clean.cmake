file(REMOVE_RECURSE
  "../bench/fig6_blockcolumn_write"
  "../bench/fig6_blockcolumn_write.pdb"
  "CMakeFiles/fig6_blockcolumn_write.dir/fig6_blockcolumn_write.cc.o"
  "CMakeFiles/fig6_blockcolumn_write.dir/fig6_blockcolumn_write.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_blockcolumn_write.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
