file(REMOVE_RECURSE
  "../bench/ablate_calibration"
  "../bench/ablate_calibration.pdb"
  "CMakeFiles/ablate_calibration.dir/ablate_calibration.cc.o"
  "CMakeFiles/ablate_calibration.dir/ablate_calibration.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
