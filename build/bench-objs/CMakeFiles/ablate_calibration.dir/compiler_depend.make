# Empty compiler generated dependencies file for ablate_calibration.
# This may be replaced when dependencies are built.
