# Empty dependencies file for noncontig_vector.
# This may be replaced when dependencies are built.
