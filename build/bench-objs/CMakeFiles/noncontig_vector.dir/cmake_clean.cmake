file(REMOVE_RECURSE
  "../bench/noncontig_vector"
  "../bench/noncontig_vector.pdb"
  "CMakeFiles/noncontig_vector.dir/noncontig_vector.cc.o"
  "CMakeFiles/noncontig_vector.dir/noncontig_vector.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noncontig_vector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
