# Empty compiler generated dependencies file for fig7_blockcolumn_read.
# This may be replaced when dependencies are built.
