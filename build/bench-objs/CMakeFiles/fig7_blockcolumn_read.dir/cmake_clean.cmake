file(REMOVE_RECURSE
  "../bench/fig7_blockcolumn_read"
  "../bench/fig7_blockcolumn_read.pdb"
  "CMakeFiles/fig7_blockcolumn_read.dir/fig7_blockcolumn_read.cc.o"
  "CMakeFiles/fig7_blockcolumn_read.dir/fig7_blockcolumn_read.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_blockcolumn_read.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
