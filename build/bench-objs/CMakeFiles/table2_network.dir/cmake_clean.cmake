file(REMOVE_RECURSE
  "../bench/table2_network"
  "../bench/table2_network.pdb"
  "CMakeFiles/table2_network.dir/table2_network.cc.o"
  "CMakeFiles/table2_network.dir/table2_network.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
