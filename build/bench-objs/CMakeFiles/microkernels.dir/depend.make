# Empty dependencies file for microkernels.
# This may be replaced when dependencies are built.
