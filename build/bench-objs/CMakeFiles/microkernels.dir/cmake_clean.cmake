file(REMOVE_RECURSE
  "../bench/microkernels"
  "../bench/microkernels.pdb"
  "CMakeFiles/microkernels.dir/microkernels.cc.o"
  "CMakeFiles/microkernels.dir/microkernels.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microkernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
