file(REMOVE_RECURSE
  "../bench/fig3_transfer_schemes"
  "../bench/fig3_transfer_schemes.pdb"
  "CMakeFiles/fig3_transfer_schemes.dir/fig3_transfer_schemes.cc.o"
  "CMakeFiles/fig3_transfer_schemes.dir/fig3_transfer_schemes.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_transfer_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
