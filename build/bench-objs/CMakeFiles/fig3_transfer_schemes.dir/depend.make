# Empty dependencies file for fig3_transfer_schemes.
# This may be replaced when dependencies are built.
