# Empty dependencies file for ablate_mr_cache.
# This may be replaced when dependencies are built.
