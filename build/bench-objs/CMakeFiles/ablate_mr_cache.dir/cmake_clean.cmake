file(REMOVE_RECURSE
  "../bench/ablate_mr_cache"
  "../bench/ablate_mr_cache.pdb"
  "CMakeFiles/ablate_mr_cache.dir/ablate_mr_cache.cc.o"
  "CMakeFiles/ablate_mr_cache.dir/ablate_mr_cache.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_mr_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
