# Empty dependencies file for table4_ogr.
# This may be replaced when dependencies are built.
