file(REMOVE_RECURSE
  "../bench/table4_ogr"
  "../bench/table4_ogr.pdb"
  "CMakeFiles/table4_ogr.dir/table4_ogr.cc.o"
  "CMakeFiles/table4_ogr.dir/table4_ogr.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_ogr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
