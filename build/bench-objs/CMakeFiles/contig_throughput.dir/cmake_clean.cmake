file(REMOVE_RECURSE
  "../bench/contig_throughput"
  "../bench/contig_throughput.pdb"
  "CMakeFiles/contig_throughput.dir/contig_throughput.cc.o"
  "CMakeFiles/contig_throughput.dir/contig_throughput.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contig_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
