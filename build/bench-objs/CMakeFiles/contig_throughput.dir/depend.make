# Empty dependencies file for contig_throughput.
# This may be replaced when dependencies are built.
