# Empty dependencies file for table5_btio.
# This may be replaced when dependencies are built.
