file(REMOVE_RECURSE
  "../bench/table5_btio"
  "../bench/table5_btio.pdb"
  "CMakeFiles/table5_btio.dir/table5_btio.cc.o"
  "CMakeFiles/table5_btio.dir/table5_btio.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_btio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
