# Empty compiler generated dependencies file for fig9_tile_disk.
# This may be replaced when dependencies are built.
