file(REMOVE_RECURSE
  "../bench/fig9_tile_disk"
  "../bench/fig9_tile_disk.pdb"
  "CMakeFiles/fig9_tile_disk.dir/fig9_tile_disk.cc.o"
  "CMakeFiles/fig9_tile_disk.dir/fig9_tile_disk.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_tile_disk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
