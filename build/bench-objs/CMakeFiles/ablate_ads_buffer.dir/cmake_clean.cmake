file(REMOVE_RECURSE
  "../bench/ablate_ads_buffer"
  "../bench/ablate_ads_buffer.pdb"
  "CMakeFiles/ablate_ads_buffer.dir/ablate_ads_buffer.cc.o"
  "CMakeFiles/ablate_ads_buffer.dir/ablate_ads_buffer.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_ads_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
