# Empty compiler generated dependencies file for ablate_ads_buffer.
# This may be replaced when dependencies are built.
