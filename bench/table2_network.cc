// Table 2: raw network performance of the simulated InfiniBand fabric —
// 4-byte one-way latency and large-message bandwidth for VAPI RDMA Write,
// VAPI RDMA Read, and the channel-semantics (MVAPICH) path.
//
// Paper values: write 6.0 us / 827 MB/s, read 12.4 us / 816 MB/s,
// MVAPICH 6.8 us / 822 MB/s.
#include "bench_common.h"

#include "ib/fabric.h"

namespace pvfsib::bench {
namespace {

void run() {
  header("Table 2: Network performance",
         "4-byte one-way latency and asymptotic bandwidth over the simulated "
         "fabric\n(paper: RDMA Write 6.0 us / 827 MB/s, RDMA Read 12.4 us / "
         "816 MB/s, MVAPICH 6.8 us / 822 MB/s)");

  const ModelConfig cfg = ModelConfig::paper_defaults();
  Stats stats;
  vmem::AddressSpace as_a, as_b;
  ib::Hca a("a", as_a, cfg.reg, &stats);
  ib::Hca b("b", as_b, cfg.reg, &stats);
  ib::Fabric fabric(cfg.net, &stats);

  const u64 big = 64 * kMiB;
  const u64 addr_a = as_a.alloc(big);
  const u64 addr_b = as_b.alloc(big);
  const u32 key_a = a.register_memory(addr_a, big).key;
  const u32 key_b = b.register_memory(addr_b, big).key;

  auto latency_us = [&](auto&& op) {
    a.nic().reset();
    b.nic().reset();
    return (op(4) - TimePoint::origin()).as_us();
  };
  auto bandwidth = [&](auto&& op) {
    a.nic().reset();
    b.nic().reset();
    return bandwidth_mib(big, op(big) - TimePoint::origin());
  };

  auto rdma_write = [&](u64 n) {
    return fabric
        .rdma_write(a, {addr_a, n, key_a}, b, addr_b, key_b,
                    TimePoint::origin())
        .complete;
  };
  auto rdma_read = [&](u64 n) {
    return fabric
        .rdma_read(a, {addr_a, n, key_a}, b, addr_b, key_b,
                   TimePoint::origin())
        .complete;
  };
  auto send = [&](u64 n) {
    return fabric.send_control(a, b, n, TimePoint::origin(),
                               ib::ControlKind::kRequest);
  };

  Table t({"path", "latency (us)", "bandwidth (MB/s)", "paper lat", "paper bw"});
  t.row({"VAPI RDMA Write", fmt(latency_us(rdma_write)),
         fmt(bandwidth(rdma_write), 0), "6.0", "827"});
  t.row({"VAPI RDMA Read", fmt(latency_us(rdma_read)),
         fmt(bandwidth(rdma_read), 0), "12.4", "816"});
  t.row({"MVAPICH (send/recv)", fmt(latency_us(send)),
         fmt(bandwidth(send), 0), "6.8", "822"});
  t.print();
}

}  // namespace
}  // namespace pvfsib::bench

int main() {
  pvfsib::bench::run();
  return 0;
}
