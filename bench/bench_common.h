// Shared helpers for the paper-reproduction benches: aligned table output,
// cluster workload runners, and cache-state setup. Every bench prints the
// rows/series of one table or figure from the paper's evaluation section.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "mpiio/mpio_file.h"
#include "pvfs/cluster.h"
#include "workloads/block_column.h"
#include "workloads/tile_io.h"

namespace pvfsib::bench {

// --- formatting -------------------------------------------------------

inline std::string fmt(double v, int prec = 1) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

inline std::string fmt_int(i64 v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  return buf;
}

class Table {
 public:
  explicit Table(std::vector<std::string> cols) : cols_(std::move(cols)) {}

  void row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void print() const {
    std::vector<size_t> w(cols_.size());
    for (size_t i = 0; i < cols_.size(); ++i) w[i] = cols_[i].size();
    for (const auto& r : rows_) {
      for (size_t i = 0; i < r.size(); ++i) w[i] = std::max(w[i], r[i].size());
    }
    auto line = [&](const std::vector<std::string>& cells) {
      for (size_t i = 0; i < cells.size(); ++i) {
        std::printf("%s%-*s", i ? "  " : "  ", static_cast<int>(w[i]),
                    cells[i].c_str());
      }
      std::printf("\n");
    };
    line(cols_);
    std::string dash;
    for (size_t i = 0; i < cols_.size(); ++i) {
      dash += std::string(w[i], '-') + "  ";
    }
    std::printf("  %s\n", dash.c_str());
    for (const auto& r : rows_) line(r);
  }

 private:
  std::vector<std::string> cols_;
  std::vector<std::vector<std::string>> rows_;
};

inline void header(const std::string& title, const std::string& note) {
  std::printf("\n=== %s ===\n", title.c_str());
  if (!note.empty()) std::printf("%s\n", note.c_str());
  std::printf("\n");
}

// --- workload runners ----------------------------------------------------

struct RunOutcome {
  Duration makespan = Duration::zero();
  double mbps = 0.0;  // aggregate bandwidth over all ranks
  u64 bytes = 0;
  bool ok = true;
};

// Aggregate outcome of a collective-style all-rank operation.
inline RunOutcome summarize(const std::vector<pvfs::IoResult>& results) {
  RunOutcome out;
  TimePoint lo = TimePoint::from_ns(INT64_MAX);
  TimePoint hi = TimePoint::origin();
  for (const pvfs::IoResult& r : results) {
    out.ok = out.ok && r.ok();
    out.bytes += r.bytes;
    lo = r.start < lo ? r.start : lo;
    hi = max(hi, r.end);
  }
  out.makespan = hi - lo;
  out.mbps = bandwidth_mib(out.bytes, out.makespan);
  return out;
}

// Preload the block-column (or any) file with `bytes` of data so reads have
// something to fetch: rank 0 writes the whole file contiguously.
inline void preload_file(mpiio::Communicator& comm, mpiio::File& file,
                         u64 bytes) {
  pvfs::Client& c = comm.rank(0);
  const u64 chunk = 64 * kMiB;
  const u64 buf = c.memory().alloc(std::min(bytes, chunk));
  for (u64 off = 0; off < bytes; off += chunk) {
    const u64 n = std::min(chunk, bytes - off);
    pvfs::IoResult r = c.write(file.handle(0), off, buf, n);
    if (!r.ok()) {
      std::fprintf(stderr, "preload failed: %s\n", r.status.to_string().c_str());
      return;
    }
  }
}

// Run the Figure 6/7 block-column access with one method.
inline RunOutcome run_block_column(pvfs::Cluster& cluster, u64 n,
                                   mpiio::IoMethod method, bool is_write,
                                   bool sync, bool cold_cache) {
  mpiio::Communicator comm(cluster);
  workloads::BlockColumnWorkload w;
  w.n = n;
  static int file_seq = 0;
  Result<mpiio::File> file =
      mpiio::File::create(comm, "/bc" + std::to_string(file_seq++));
  if (!file.is_ok()) return {};
  mpiio::File f = file.value();
  // The paper's benchmark loops over an existing file: writes overwrite
  // real data (the RMW cycle reads it) and reads have data to fetch.
  preload_file(comm, f, w.file_bytes());
  if (cold_cache) cluster.drop_all_caches();

  std::vector<mpiio::RankIo> io(4);
  for (int p = 0; p < 4; ++p) {
    pvfs::Client& c = comm.rank(p);
    io[p] = w.rank_io(p, c.memory().alloc(w.share_bytes()));
  }
  mpiio::Hints hints;
  hints.method = method;
  hints.sync = sync;
  const auto results =
      is_write ? f.write_all(io, hints) : f.read_all(io, hints);
  return summarize(results);
}

// Run the Figure 8/9 tiled access with one method.
inline RunOutcome run_tile_io(pvfs::Cluster& cluster, mpiio::IoMethod method,
                              bool is_write, bool sync, bool cold_cache) {
  mpiio::Communicator comm(cluster);
  workloads::TileIoWorkload w;
  static int file_seq = 0;
  Result<mpiio::File> file =
      mpiio::File::create(comm, "/tile" + std::to_string(file_seq++));
  if (!file.is_ok()) return {};
  mpiio::File f = file.value();
  if (!is_write) preload_file(comm, f, w.frame_bytes());
  if (cold_cache) cluster.drop_all_caches();

  std::vector<mpiio::RankIo> io(4);
  for (int p = 0; p < 4; ++p) {
    pvfs::Client& c = comm.rank(p);
    io[p] = w.rank_io(p, c.memory().alloc(w.tile_bytes()));
  }
  mpiio::Hints hints;
  hints.method = method;
  hints.sync = sync;
  const auto results =
      is_write ? f.write_all(io, hints) : f.read_all(io, hints);
  return summarize(results);
}

}  // namespace pvfsib::bench
