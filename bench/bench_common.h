// Shared helpers for the paper-reproduction benches: aligned table output,
// cluster workload runners, and cache-state setup. Every bench prints the
// rows/series of one table or figure from the paper's evaluation section.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "mpiio/mpio_file.h"
#include "pvfs/cluster.h"
#include "workloads/block_column.h"
#include "workloads/tile_io.h"

namespace pvfsib::bench {

// --- formatting -------------------------------------------------------

inline std::string fmt(double v, int prec = 1) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

inline std::string fmt_int(i64 v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  return buf;
}

class Table {
 public:
  explicit Table(std::vector<std::string> cols) : cols_(std::move(cols)) {}

  void row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void print() const {
    std::vector<size_t> w(cols_.size());
    for (size_t i = 0; i < cols_.size(); ++i) w[i] = cols_[i].size();
    for (const auto& r : rows_) {
      for (size_t i = 0; i < r.size(); ++i) w[i] = std::max(w[i], r[i].size());
    }
    auto line = [&](const std::vector<std::string>& cells) {
      for (size_t i = 0; i < cells.size(); ++i) {
        std::printf("%s%-*s", i ? "  " : "  ", static_cast<int>(w[i]),
                    cells[i].c_str());
      }
      std::printf("\n");
    };
    line(cols_);
    std::string dash;
    for (size_t i = 0; i < cols_.size(); ++i) {
      dash += std::string(w[i], '-') + "  ";
    }
    std::printf("  %s\n", dash.c_str());
    for (const auto& r : rows_) line(r);
  }

 private:
  std::vector<std::string> cols_;
  std::vector<std::vector<std::string>> rows_;
};

inline void header(const std::string& title, const std::string& note) {
  std::printf("\n=== %s ===\n", title.c_str());
  if (!note.empty()) std::printf("%s\n", note.c_str());
  std::printf("\n");
}

// --- machine-readable output ---------------------------------------------

// Minimal streaming JSON writer for the BENCH_*.json files: nesting and
// comma placement are handled once here instead of ad hoc in every bench.
// Output is deterministic (fixed printf formatting), so identical runs
// emit bit-identical files.
class JsonWriter {
 public:
  JsonWriter() { open_scope('{'); }

  JsonWriter& field(const char* key, const std::string& v) {
    std::string quoted;
    quoted.reserve(v.size() + 2);
    quoted += '"';
    quoted += escape(v);
    quoted += '"';
    scalar(key, quoted);
    return *this;
  }
  JsonWriter& field(const char* key, const char* v) {
    return field(key, std::string(v));
  }
  JsonWriter& field(const char* key, bool v) {
    scalar(key, v ? "true" : "false");
    return *this;
  }
  JsonWriter& field(const char* key, double v, int prec = 3) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
    scalar(key, buf);
    return *this;
  }
  JsonWriter& field(const char* key, i64 v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    scalar(key, buf);
    return *this;
  }
  JsonWriter& field(const char* key, u64 v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    scalar(key, buf);
    return *this;
  }
  JsonWriter& field(const char* key, u32 v) {
    return field(key, static_cast<u64>(v));
  }
  JsonWriter& field(const char* key, int v) {
    return field(key, static_cast<i64>(v));
  }

  JsonWriter& begin_object(const char* key = nullptr) {
    prefix(key);
    open_scope('{');
    return *this;
  }
  JsonWriter& end_object() {
    close_scope('}');
    return *this;
  }
  JsonWriter& begin_array(const char* key = nullptr) {
    prefix(key);
    open_scope('[');
    return *this;
  }
  JsonWriter& end_array() {
    close_scope(']');
    return *this;
  }

  // Close any scopes still open (including the root) and return the text.
  const std::string& str() {
    while (!stack_.empty()) close_scope(stack_.back() == '{' ? '}' : ']');
    return out_;
  }

  // Finish the document and write it to `path`. Returns false (with a
  // message on stderr) when the file cannot be written.
  bool write_file(const char* path) {
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path);
      return false;
    }
    std::fputs(str().c_str(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote %s\n", path);
    return true;
  }

 private:
  static std::string escape(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  }
  void prefix(const char* key) {
    if (!first_) out_ += ",";
    out_ += "\n";
    out_.append(stack_.size() * 2, ' ');
    if (key != nullptr) {
      out_ += "\"";
      out_ += key;
      out_ += "\": ";
    }
    first_ = false;
  }
  void scalar(const char* key, const std::string& text) {
    prefix(key);
    out_ += text;
  }
  void open_scope(char c) {
    out_ += c;
    stack_.push_back(c);
    first_ = true;
  }
  void close_scope(char c) {
    stack_.pop_back();
    out_ += "\n";
    out_.append(stack_.size() * 2, ' ');
    out_ += c;
    first_ = false;
  }

  std::string out_;
  std::vector<char> stack_;
  bool first_ = true;
};

// --- workload runners ----------------------------------------------------

struct RunOutcome {
  Duration makespan = Duration::zero();
  double mbps = 0.0;  // aggregate bandwidth over all ranks
  u64 bytes = 0;
  bool ok = true;
};

// Aggregate outcome of a collective-style all-rank operation.
inline RunOutcome summarize(const std::vector<pvfs::IoResult>& results) {
  RunOutcome out;
  TimePoint lo = TimePoint::from_ns(INT64_MAX);
  TimePoint hi = TimePoint::origin();
  for (const pvfs::IoResult& r : results) {
    out.ok = out.ok && r.ok();
    out.bytes += r.bytes;
    lo = r.start < lo ? r.start : lo;
    hi = max(hi, r.end);
  }
  out.makespan = hi - lo;
  out.mbps = bandwidth_mib(out.bytes, out.makespan);
  return out;
}

// Preload the block-column (or any) file with `bytes` of data so reads have
// something to fetch: rank 0 writes the whole file contiguously.
inline void preload_file(mpiio::Communicator& comm, mpiio::File& file,
                         u64 bytes) {
  pvfs::Client& c = comm.rank(0);
  const u64 chunk = 64 * kMiB;
  const u64 buf = c.memory().alloc(std::min(bytes, chunk));
  for (u64 off = 0; off < bytes; off += chunk) {
    const u64 n = std::min(chunk, bytes - off);
    pvfs::IoResult r = c.write(file.handle(0), off, buf, n);
    if (!r.ok()) {
      std::fprintf(stderr, "preload failed: %s\n", r.status.to_string().c_str());
      return;
    }
  }
}

// Run the Figure 6/7 block-column access with one method.
inline RunOutcome run_block_column(pvfs::Cluster& cluster, u64 n,
                                   mpiio::IoMethod method, bool is_write,
                                   bool sync, bool cold_cache) {
  mpiio::Communicator comm(cluster);
  workloads::BlockColumnWorkload w;
  w.n = n;
  static int file_seq = 0;
  Result<mpiio::File> file =
      mpiio::File::create(comm, "/bc" + std::to_string(file_seq++));
  if (!file.is_ok()) return {};
  mpiio::File f = file.value();
  // The paper's benchmark loops over an existing file: writes overwrite
  // real data (the RMW cycle reads it) and reads have data to fetch.
  preload_file(comm, f, w.file_bytes());
  if (cold_cache) cluster.drop_all_caches();

  std::vector<mpiio::RankIo> io(4);
  for (int p = 0; p < 4; ++p) {
    pvfs::Client& c = comm.rank(p);
    io[p] = w.rank_io(p, c.memory().alloc(w.share_bytes()));
  }
  mpiio::Hints hints;
  hints.method = method;
  hints.sync = sync;
  const auto results =
      is_write ? f.write_all(io, hints) : f.read_all(io, hints);
  return summarize(results);
}

// Run the Figure 8/9 tiled access with one method.
inline RunOutcome run_tile_io(pvfs::Cluster& cluster, mpiio::IoMethod method,
                              bool is_write, bool sync, bool cold_cache) {
  mpiio::Communicator comm(cluster);
  workloads::TileIoWorkload w;
  static int file_seq = 0;
  Result<mpiio::File> file =
      mpiio::File::create(comm, "/tile" + std::to_string(file_seq++));
  if (!file.is_ok()) return {};
  mpiio::File f = file.value();
  if (!is_write) preload_file(comm, f, w.frame_bytes());
  if (cold_cache) cluster.drop_all_caches();

  std::vector<mpiio::RankIo> io(4);
  for (int p = 0; p < 4; ++p) {
    pvfs::Client& c = comm.rank(p);
    io[p] = w.rank_io(p, c.memory().alloc(w.tile_bytes()));
  }
  mpiio::Hints hints;
  hints.method = method;
  hints.sync = sync;
  const auto results =
      is_write ? f.write_all(io, hints) : f.read_all(io, hints);
  return summarize(results);
}

}  // namespace pvfsib::bench
