// google-benchmark microkernels for the hot host-side paths of the stack:
// extent coalescing, list I/O partitioning, OGR group planning, datatype
// flattening, and ADS window planning. These run on the real CPU (no
// simulated time) — they are the costs a production client library would
// pay per operation.
#include <benchmark/benchmark.h>

#include "core/ads.h"
#include "core/listio.h"
#include "core/ogr.h"
#include "mpiio/datatype.h"
#include "workloads/subarray.h"

namespace pvfsib {
namespace {

void BM_ExtentCoalesce(benchmark::State& state) {
  const u64 n = static_cast<u64>(state.range(0));
  ExtentList list;
  for (u64 i = 0; i < n; ++i) list.push_back({i * 100, (i % 3) != 0 ? 100u : 50u});
  for (auto _ : state) {
    benchmark::DoNotOptimize(coalesce(list));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(n));
}
BENCHMARK(BM_ExtentCoalesce)->Range(64, 16384);

void BM_ListIoPartition(benchmark::State& state) {
  const u64 n = static_cast<u64>(state.range(0));
  core::ListIoRequest req;
  for (u64 i = 0; i < n; ++i) {
    req.mem.push_back({0x100000 + i * 8192, 4096});
    req.file.push_back({i * 16384, 4096});
  }
  const core::StripeMap map(64 * kKiB, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::partition(req, map));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(n));
}
BENCHMARK(BM_ListIoPartition)->Range(64, 8192);

void BM_OgrPlanGroups(benchmark::State& state) {
  const u64 rows = static_cast<u64>(state.range(0));
  vmem::AddressSpace as;
  Stats stats;
  ib::Hca hca("bench", as, RegParams{}, &stats);
  ib::MrCache cache(hca);
  core::GroupRegistrar ogr(cache, OsParams{}, core::OgrConfig{}, &stats);
  workloads::SubarrayLayout l;
  l.n = rows * 2;
  const u64 base = l.alloc_array(as);
  const core::MemSegmentList segs = l.subarray_rows(base, 0, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ogr.plan_groups(segs));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(segs.size()));
}
BENCHMARK(BM_OgrPlanGroups)->Range(64, 4096);

void BM_SubarrayFlatten(benchmark::State& state) {
  const u64 n = static_cast<u64>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mpiio::Datatype::subarray({n, n}, {n / 2, n / 2}, {0, n / 4}, 4));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(n / 2));
}
BENCHMARK(BM_SubarrayFlatten)->Range(64, 4096);

void BM_AdsPlanWindows(benchmark::State& state) {
  const u64 n = static_cast<u64>(state.range(0));
  core::ActiveDataSieving ads(DiskParams{}, FsParams{}, MemParams{});
  ExtentList acc;
  for (u64 i = 0; i < n; ++i) acc.push_back({i * 8192, 2048});
  for (auto _ : state) {
    benchmark::DoNotOptimize(ads.plan_windows(acc));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(n));
}
BENCHMARK(BM_AdsPlanWindows)->Range(64, 8192);

void BM_AdsDecide(benchmark::State& state) {
  const u64 n = static_cast<u64>(state.range(0));
  core::ActiveDataSieving ads(DiskParams{}, FsParams{}, MemParams{});
  ExtentList acc;
  for (u64 i = 0; i < n; ++i) acc.push_back({i * 8192, 2048});
  for (auto _ : state) {
    benchmark::DoNotOptimize(ads.decide(acc, true));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(n));
}
BENCHMARK(BM_AdsDecide)->Range(64, 8192);

}  // namespace
}  // namespace pvfsib

BENCHMARK_MAIN();
