// Contiguous PVFS throughput vs request size — the baseline evaluation of
// the authors' prior "PVFS over InfiniBand" report this paper builds on:
// aggregate read/write bandwidth for 1 and 4 clients over 4 iods as the
// request size sweeps 4 KiB .. 16 MiB (cached, stressing the transport).
// Shows the Fast-RDMA eager path at small sizes and the rendezvous gather
// path saturating the fabric at large sizes.
#include "bench_common.h"

namespace pvfsib::bench {
namespace {

RunOutcome run_case(u64 request, u32 clients, bool is_write) {
  pvfs::Cluster cluster(ModelConfig::paper_defaults(), clients, 4);
  std::vector<pvfs::OpenFile> files;
  std::vector<u64> bufs;
  for (u32 r = 0; r < clients; ++r) {
    pvfs::Client& c = cluster.client(r);
    files.push_back(r == 0 ? c.create("/tp").value() : c.open("/tp").value());
    bufs.push_back(c.memory().alloc(request));
  }
  if (!is_write) {
    for (u32 r = 0; r < clients; ++r) {
      pvfs::IoResult pre = cluster.client(r).write(
          files[r], r * request, bufs[r], request);
      if (!pre.ok()) return {};
    }
  }
  std::vector<pvfs::IoResult> results(clients);
  int pending = static_cast<int>(clients);
  for (u32 r = 0; r < clients; ++r) {
    core::ListIoRequest req;
    req.mem = {{bufs[r], request}};
    req.file = {{r * request, request}};
    auto done = [&results, &pending, r](pvfs::IoResult res) {
      results[r] = res;
      --pending;
    };
    const TimePoint at = cluster.engine().now();
    const pvfs::IoDir dir = is_write ? pvfs::IoDir::kWrite : pvfs::IoDir::kRead;
    cluster.client(r).submit({dir, files[r], req, {}, at}).on_complete(done);
  }
  cluster.engine().run_until([&] { return pending == 0; });
  return summarize(results);
}

void run() {
  header("Contiguous PVFS throughput (transport baseline)",
         "4 iods, cached; aggregate MB/s vs request size — the substrate "
         "the paper's prior report establishes");

  Table t({"request", "1 client W", "1 client R", "4 clients W",
           "4 clients R"});
  for (u64 req : {4 * kKiB, 64 * kKiB, 256 * kKiB, 1 * kMiB, 4 * kMiB,
                  16 * kMiB}) {
    t.row({req >= kMiB ? std::to_string(req / kMiB) + " MiB"
                       : std::to_string(req / kKiB) + " KiB",
           fmt(run_case(req, 1, true).mbps, 0),
           fmt(run_case(req, 1, false).mbps, 0),
           fmt(run_case(req, 4, true).mbps, 0),
           fmt(run_case(req, 4, false).mbps, 0)});
  }
  t.print();
}

}  // namespace
}  // namespace pvfsib::bench

int main() {
  pvfsib::bench::run();
  return 0;
}
