// Ablation: why does noncontiguous data transmission suddenly matter?
//
// Section 3.2: "Performance issues in noncontiguous data transmission are
// often ignored in conventional networks because of their high overhead and
// low bandwidth ... however, in low overhead and high bandwidth networks
// such as InfiniBand, these overheads have a significant impact."
//
// This bench runs the Figure 3 subarray transfer under the paper's
// InfiniBand parameters and under a TCP/GigE-era configuration and reports
// the spread between the best and worst scheme: large on InfiniBand,
// small on TCP.
#include "bench_common.h"

#include "core/transfer.h"
#include "workloads/subarray.h"

namespace pvfsib::bench {
namespace {

struct Rig {
  Rig(const ModelConfig& cfg, u64 bounce, u64 staging_bytes)
      : client("client", client_as, cfg.reg, &stats),
        server("server", server_as, cfg.reg, &stats),
        cache(client),
        registrar(cache, cfg.os, core::OgrConfig{}, &stats),
        fabric(cfg.net, &stats),
        xfer(fabric, cfg.mem) {
    ep.hca = &client;
    ep.cache = &cache;
    ep.registrar = &registrar;
    ep.bounce_size = bounce;
    ep.bounce_addr = client_as.alloc(bounce);
    ep.bounce_key = client.register_memory(ep.bounce_addr, bounce).key;
    staging.hca = &server;
    staging.size = staging_bytes;
    staging.addr = server_as.alloc(staging_bytes);
    staging.rkey = server.register_memory(staging.addr, staging_bytes).key;
  }
  Stats stats;
  vmem::AddressSpace client_as, server_as;
  ib::Hca client, server;
  ib::MrCache cache;
  core::GroupRegistrar registrar;
  ib::Fabric fabric;
  core::NoncontigTransfer xfer;
  core::TransferEndpoint ep;
  core::StagingBuffer staging;
};

double run_scheme(const ModelConfig& cfg, u64 n, core::XferScheme scheme) {
  workloads::SubarrayLayout l;
  l.n = n;
  Rig rig(cfg, l.sub_bytes(), l.sub_bytes());
  const u64 base = l.alloc_array(rig.client_as);
  const core::MemSegmentList segs = l.subarray_rows(base, 0, 0);
  core::TransferPolicy pol;
  pol.scheme = scheme;
  core::TransferOutcome out =
      rig.xfer.push(rig.ep, segs, rig.staging, TimePoint::origin(), pol);
  if (!out.ok()) return 0.0;
  return bandwidth_mib(out.bytes, out.complete - TimePoint::origin());
}

void run_net(const char* name, const ModelConfig& cfg) {
  std::printf("  -- %s --\n", name);
  Table t({"array N", "multiple", "pack/unpack", "gather+OGR",
           "best/worst"});
  for (u64 n : {512, 1024, 2048, 4096}) {
    const double multi = run_scheme(cfg, n, core::XferScheme::kMultipleMessage);
    const double pack = run_scheme(cfg, n, core::XferScheme::kPackUnpack);
    const double gather =
        run_scheme(cfg, n, core::XferScheme::kRdmaGatherScatter);
    const double best = std::max({multi, pack, gather});
    const double worst = std::min({multi, pack, gather});
    t.row({fmt_int(static_cast<i64>(n)), fmt(multi, 0), fmt(pack, 0),
           fmt(gather, 0), fmt(best / worst, 2) + "x"});
  }
  t.print();
  std::printf("\n");
}

void run() {
  header("Ablation: transfer schemes vs. network generation",
         "same subarray transfer on the paper's InfiniBand vs a TCP/GigE-era "
         "network\n(claim: the scheme choice matters on InfiniBand, barely "
         "on conventional networks)");
  run_net("InfiniBand (paper testbed)", ModelConfig::paper_defaults());
  run_net("TCP / GigE era", ModelConfig::tcp_era());
}

}  // namespace
}  // namespace pvfsib::bench

int main() {
  pvfsib::bench::run();
  return 0;
}
