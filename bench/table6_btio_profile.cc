// Table 6: I/O characteristics of the BTIO run under each method — request
// counts, memory registrations and cache hits, disk access counts, and
// communication volumes. These are structural counters, so they reproduce
// the paper's profile nearly exactly where the protocol matches (e.g.
// Multiple I/O's 163840 requests) and proportionally elsewhere.
#include "btio_runner.h"

namespace pvfsib::bench {
namespace {

void run() {
  header("Table 6: BTIO profile by method",
         "counters over the full run (40 write phases + read-back)\n"
         "(paper: req# Mult 163840, Coll 160, List 1360, ADS 1360, DS 82040;"
         "\n disk r/w Mult 81920/81920, ADS 5120/2560; comm 200 MB, Coll "
         "+150 MB inter-client)");

  struct Row {
    const char* name;
    mpiio::IoMethod method;
  };
  const Row rows[] = {
      {"Mult.", mpiio::IoMethod::kMultiple},
      {"Coll.", mpiio::IoMethod::kCollective},
      {"List", mpiio::IoMethod::kListIo},
      {"ADS", mpiio::IoMethod::kListIoAds},
      {"DS", mpiio::IoMethod::kDataSieving},
  };
  Table t({"case", "req #", "reg #", "reg cache hit", "disk read #",
           "disk write #", "comm C<->IO (MB)", "comm C<->C (MB)",
           "ADS sieved/sep"});
  for (const Row& r : rows) {
    const BtioRun run = run_btio(r.method, /*with_io=*/true);
    const Stats& s = run.stats;
    const i64 comm_io =
        s.get(stat::kNetBytesData) + s.get(stat::kNetBytesControl);
    t.row({r.name, fmt_int(s.get(stat::kPvfsRequest)),
           fmt_int(s.get(stat::kMrRegister)),
           fmt_int(s.get(stat::kMrCacheHit)),
           fmt_int(s.get(stat::kDiskRead)), fmt_int(s.get(stat::kDiskWrite)),
           fmt_int(comm_io / static_cast<i64>(kMiB)),
           fmt_int(s.get(stat::kNetBytesInterClient) /
                   static_cast<i64>(kMiB)),
           fmt_int(s.get(stat::kAdsSieved)) + "/" +
               fmt_int(s.get(stat::kAdsSeparate))});
  }
  t.print();
}

}  // namespace
}  // namespace pvfsib::bench

int main() {
  pvfsib::bench::run();
  return 0;
}
