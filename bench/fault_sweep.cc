// Fault sweep: the Figure 6 block-column write workload (4 procs x 4 iods,
// list I/O + ADS, N=2048) run against an increasingly hostile fabric.
// Request/reply drops, transport retransmits and injected completion errors
// all scale with one fault rate; the recovery layer (per-round timeouts,
// exponential backoff, idempotent replay) keeps the data correct and this
// bench shows what that costs: goodput and p50/p99 round latency vs rate,
// plus the recovery counters.
//
// Every row is deterministic: the injector's draws are a pure function of
// the seed and the engine's event order, so re-running the sweep reproduces
// it bit-for-bit.
#include <algorithm>

#include "bench_common.h"

namespace pvfsib::bench {
namespace {

struct SweepPoint {
  double rate = 0.0;
  RunOutcome outcome;
  Duration p50 = Duration::zero();
  Duration p99 = Duration::zero();
  i64 retries = 0;
  i64 timeouts = 0;
  i64 replays_deduped = 0;
  i64 injected = 0;
};

Duration percentile(std::vector<Duration> samples, double p) {
  if (samples.empty()) return Duration::zero();
  std::sort(samples.begin(), samples.end());
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(samples.size() - 1) + 0.5);
  return samples[idx];
}

SweepPoint run_point(double rate) {
  ModelConfig cfg = ModelConfig::paper_defaults();
  cfg.fault.seed = 42;
  cfg.fault.request_drop_rate = rate;
  cfg.fault.reply_drop_rate = rate;
  cfg.fault.retransmit_rate = rate;
  cfg.fault.completion_error_rate = rate / 2.0;
  // The timeout must clear the worst-case *healthy* round: a staging-sized
  // disk phase is ~64 ms and four clients can queue behind one disk, so
  // 400 ms separates "slow" from "lost". Detection latency, not the retry
  // itself, is what a drop costs.
  cfg.fault.round_timeout = Duration::ms(400.0);
  cfg.fault.backoff_base = Duration::ms(1.0);
  cfg.fault.backoff_cap = Duration::ms(50.0);
  cfg.fault.max_retries = 10;

  pvfs::Cluster cluster(cfg, 4, 4);
  SweepPoint pt;
  pt.rate = rate;
  pt.outcome = run_block_column(cluster, 2048, mpiio::IoMethod::kListIoAds,
                                /*is_write=*/true, /*sync=*/false,
                                /*cold_cache=*/false);
  pt.p50 = percentile(cluster.faults().round_latencies(), 0.50);
  pt.p99 = percentile(cluster.faults().round_latencies(), 0.99);
  const Stats& s = cluster.stats();
  pt.retries = s.get(stat::kPvfsRetries);
  pt.timeouts = s.get(stat::kPvfsTimeouts);
  pt.replays_deduped = s.get(stat::kPvfsReplaysDeduped);
  pt.injected = s.get(stat::kFaultRequestDrop) + s.get(stat::kFaultReplyDrop) +
                s.get(stat::kFaultRetransmit) +
                s.get(stat::kFaultCompletionError) + s.get(stat::kFaultRnr);
  return pt;
}

void run() {
  header("Fault sweep: block-column write goodput vs injected fault rate",
         "fig6 workload (N=2048, List+ADS, no sync); request/reply drops, "
         "retransmits and\ncompletion errors at the given rate; 400 ms round "
         "timeout, 1 ms base backoff");

  Table t({"rate", "goodput MB/s", "p50 round", "p99 round", "injected",
           "timeouts", "retries", "deduped", "ok"});
  for (double rate : {0.0, 0.002, 0.01, 0.05, 0.2}) {
    const SweepPoint pt = run_point(rate);
    t.row({fmt(rate, 4), fmt(pt.outcome.mbps, 1),
           pt.p50 == Duration::zero() ? "-" : pt.p50.to_string(),
           pt.p99 == Duration::zero() ? "-" : pt.p99.to_string(),
           fmt_int(pt.injected), fmt_int(pt.timeouts), fmt_int(pt.retries),
           fmt_int(pt.replays_deduped), pt.outcome.ok ? "yes" : "NO"});
  }
  t.print();
  std::printf("\n");
}

}  // namespace
}  // namespace pvfsib::bench

int main() {
  pvfsib::bench::run();
  return 0;
}
