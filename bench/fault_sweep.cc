// Fault sweep: the Figure 6/7 block-column workloads (4 procs x 4 iods,
// list I/O + ADS, N=2048) run against an increasingly hostile fabric, plus
// a crash-restart availability sweep comparing replication factor 1 to 2.
//
// Section 1/2: request/reply drops, transport retransmits and injected
// completion errors all scale with one fault rate; the recovery layer
// (per-round timeouts, exponential backoff, idempotent replay) keeps the
// data correct and these tables show what that costs for writes and reads:
// goodput and p50/p99 round latency vs rate, plus the recovery counters.
//
// Section 3: one iod crashes and restarts after a mean-time-to-repair; a
// stream of strided operations pinned to that iod measures the fraction
// that still complete. At factor 1 availability degrades with MTTR as soon
// as the outage outlives the retry budget; at factor 2 writes settle on the
// surviving replica's ack (write_quorum 1) and reads fail over, so
// availability stays flat.
//
// Every row is deterministic: the injector's draws are a pure function of
// the seed and the engine's event order, so re-running the sweep reproduces
// it bit-for-bit. `--smoke` shrinks every axis for CI (asan) runs.
#include <algorithm>
#include <cstring>

#include "bench_common.h"
#include "sim/trace.h"

namespace pvfsib::bench {
namespace {

struct SweepPoint {
  double rate = 0.0;
  RunOutcome outcome;
  Duration p50 = Duration::zero();
  Duration p99 = Duration::zero();
  i64 retries = 0;
  i64 timeouts = 0;
  i64 replays_deduped = 0;
  i64 injected = 0;
};

Duration percentile(std::vector<Duration> samples, double p) {
  if (samples.empty()) return Duration::zero();
  std::sort(samples.begin(), samples.end());
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(samples.size() - 1) + 0.5);
  return samples[idx];
}

SweepPoint run_point(double rate, bool is_write, u64 n) {
  ModelConfig cfg = ModelConfig::paper_defaults();
  cfg.fault.seed = 42;
  cfg.fault.request_drop_rate = rate;
  cfg.fault.reply_drop_rate = rate;
  cfg.fault.retransmit_rate = rate;
  cfg.fault.completion_error_rate = rate / 2.0;
  // The timeout must clear the worst-case *healthy* round: a staging-sized
  // disk phase is ~64 ms and four clients can queue behind one disk, so
  // 400 ms separates "slow" from "lost". Detection latency, not the retry
  // itself, is what a drop costs.
  cfg.fault.round_timeout = Duration::ms(400.0);
  cfg.fault.backoff_base = Duration::ms(1.0);
  cfg.fault.backoff_cap = Duration::ms(50.0);
  cfg.fault.max_retries = 10;

  pvfs::Cluster cluster(cfg, 4, 4);
  SweepPoint pt;
  pt.rate = rate;
  pt.outcome = run_block_column(cluster, n, mpiio::IoMethod::kListIoAds,
                                is_write, /*sync=*/false,
                                /*cold_cache=*/false);
  pt.p50 = percentile(cluster.faults().round_latencies(), 0.50);
  pt.p99 = percentile(cluster.faults().round_latencies(), 0.99);
  const Stats& s = cluster.stats();
  pt.retries = s.get(stat::kPvfsRetries);
  pt.timeouts = s.get(stat::kPvfsTimeouts);
  pt.replays_deduped = s.get(stat::kPvfsReplaysDeduped);
  pt.injected = s.get(stat::kFaultRequestDrop) + s.get(stat::kFaultReplyDrop) +
                s.get(stat::kFaultRetransmit) +
                s.get(stat::kFaultCompletionError) + s.get(stat::kFaultRnr);
  return pt;
}

std::vector<SweepPoint> run_rate_sweep(bool is_write,
                                       const std::vector<double>& rates,
                                       u64 n) {
  Table t({"rate", "goodput MB/s", "p50 round", "p99 round", "injected",
           "timeouts", "retries", "deduped", "ok"});
  std::vector<SweepPoint> points;
  for (double rate : rates) {
    const SweepPoint pt = run_point(rate, is_write, n);
    t.row({fmt(rate, 4), fmt(pt.outcome.mbps, 1),
           pt.p50 == Duration::zero() ? "-" : pt.p50.to_string(),
           pt.p99 == Duration::zero() ? "-" : pt.p99.to_string(),
           fmt_int(pt.injected), fmt_int(pt.timeouts), fmt_int(pt.retries),
           fmt_int(pt.replays_deduped), pt.outcome.ok ? "yes" : "NO"});
    points.push_back(pt);
  }
  t.print();
  std::printf("\n");
  return points;
}

// --- Crash-restart availability vs MTTR ----------------------------------

struct AvailPoint {
  u32 ok = 0;
  u32 total = 0;
  i64 retries = 0;
  i64 failovers = 0;
  i64 replica_writes = 0;
  i64 quorum_waits = 0;
};

// One client, four iods, a file pinned to base iod 0 (the one that
// crashes). `ops` strided operations start at fixed virtual times spaced
// so a healthy op finishes well before the next begins; the crash window
// [crash_at, crash_at + mttr) sweeps across the stream. The retry budget
// (timeout 5 ms, backoff 1..8 ms, 4 retries, ~35 ms total) decides which
// factor-1 ops ride out the outage; factor 2 survives by construction.
AvailPoint run_avail(Duration mttr, u32 factor, bool is_write, u32 ops) {
  ModelConfig cfg = ModelConfig::paper_defaults();
  cfg.replication.factor = factor;
  // Writes settle on the first surviving ack (availability over
  // durability); reads need every replica written, so the preload fans to
  // all of them.
  cfg.replication.write_quorum = is_write ? 1 : 0;
  cfg.fault.seed = 42;
  cfg.fault.round_timeout = Duration::ms(5.0);
  cfg.fault.backoff_base = Duration::ms(1.0);
  cfg.fault.backoff_mult = 2.0;
  cfg.fault.backoff_cap = Duration::ms(8.0);
  cfg.fault.max_retries = 4;
  const TimePoint crash_at = TimePoint::origin() + Duration::ms(50.0);
  cfg.fault.schedule.push_back(
      FaultEvent{FaultKind::kIodCrash, crash_at, /*target=*/0, mttr});

  pvfs::Cluster cluster(cfg, 1, 4);
  pvfs::Client& c = cluster.client(0);
  pvfs::OpenFile f = c.create("/avail", 64 * kKiB, 4, /*base_iod=*/0).value();

  // 128 x 2 KiB pieces at 8 KiB file stride: one list round per iod.
  const u64 pieces = 128, piece_len = 2048;
  core::ListIoRequest req;
  const u64 buf = c.memory().alloc(pieces * piece_len);
  std::memset(c.memory().data(buf), 0x5a, pieces * piece_len);
  for (u64 i = 0; i < pieces; ++i) {
    req.mem.push_back({buf + i * piece_len, piece_len});
    req.file.push_back({i * 4 * piece_len, piece_len});
  }

  // Preload the whole strided span contiguously while everything is
  // healthy: reads have real data on every replica, and the strided ops'
  // RMW reads hit the page cache (a cold sieve read from media would
  // outlive the 5 ms round timeout on its own). The crash window opens
  // long after this lands.
  const u64 span = pieces * 4 * piece_len;
  pvfs::IoResult pre = c.write(f, 0, c.memory().alloc(span), span);
  if (!pre.ok()) return {};

  // Submit each op from an engine event at its start time (rather than all
  // up front): the fabric computes wire occupancy in call order, so sends
  // must be issued in nondecreasing virtual time. The grid starts at the
  // origin, which the preload has already passed — clamp to the engine
  // clock (only op 0 is affected, milliseconds before the crash window).
  const Duration spacing = Duration::ms(40.0);
  std::vector<pvfs::IoHandle> handles(ops);
  for (u32 k = 0; k < ops; ++k) {
    const TimePoint at =
        max(TimePoint::origin() + spacing * static_cast<i64>(k),
            cluster.engine().now());
    cluster.engine().schedule_at(at, [&, k, at] {
      pvfs::IoDesc d;
      d.dir = is_write ? pvfs::IoDir::kWrite : pvfs::IoDir::kRead;
      d.file = f;
      d.req = req;
      d.start = at;
      handles[k] = c.submit(d);
    });
  }
  cluster.run();

  AvailPoint pt;
  pt.total = ops;
  for (const pvfs::IoHandle& h : handles) {
    if (h.poll() && h.result().ok()) ++pt.ok;
  }
  const Stats& s = cluster.stats();
  pt.retries = s.get(stat::kPvfsRetries);
  pt.failovers = s.get(stat::kPvfsFailovers);
  pt.replica_writes = s.get(stat::kPvfsReplicaWrites);
  pt.quorum_waits = s.get(stat::kPvfsQuorumWaits);
  return pt;
}

void run_avail_sweep(const std::vector<Duration>& mttrs, u32 ops) {
  Table t({"MTTR", "dir", "factor", "ok/total", "availability", "retries",
           "failovers", "replica wr", "quorum waits"});
  for (Duration mttr : mttrs) {
    for (bool is_write : {true, false}) {
      for (u32 factor : {1u, 2u}) {
        const AvailPoint pt = run_avail(mttr, factor, is_write, ops);
        t.row({mttr.to_string(), is_write ? "write" : "read",
               fmt_int(factor),
               fmt_int(pt.ok) + "/" + fmt_int(pt.total),
               fmt(pt.total == 0 ? 0.0
                                 : static_cast<double>(pt.ok) /
                                       static_cast<double>(pt.total),
                   2),
               fmt_int(pt.retries), fmt_int(pt.failovers),
               fmt_int(pt.replica_writes), fmt_int(pt.quorum_waits)});
      }
    }
  }
  t.print();
  std::printf("\n");
}

// --- Availability vs manager MTTR: standby takeover on and off ------------

struct MgrPoint {
  u32 ok = 0;
  u32 total = 0;
  i64 meta_retries = 0;
  i64 meta_failovers = 0;
  i64 takeovers = 0;
  i64 epoch_rejections = 0;
};

// Two clients, two iods. Client 0 runs a metadata-heavy stream: every
// 40 ms, create a fresh file and put one small replicated write through
// it. Client 1 only writes to a file created up front, so its first
// post-takeover version mint — not a metadata request — is what discovers
// the demoted authority. The manager crashes at 50 ms and restarts after
// MTTR. Without a standby, ops issued inside the window ride on the
// ~35 ms retry budget alone, so availability collapses once MTTR outlives
// it. With a standby the takeover promotes 2 ms into the window: client
// 0's metadata fails over (pvfs.meta_failovers), client 1's mint is
// re-targeted by the epoch fence (pvfs.epoch_rejections), and
// availability stays flat no matter how long the old primary stays dead.
MgrPoint run_mgr_avail(Duration mttr, bool takeover, u32 ops) {
  ModelConfig cfg = ModelConfig::paper_defaults();
  cfg.replication.factor = 2;
  cfg.fault.seed = 42;
  cfg.fault.round_timeout = Duration::ms(5.0);
  cfg.fault.backoff_base = Duration::ms(1.0);
  cfg.fault.backoff_mult = 2.0;
  cfg.fault.backoff_cap = Duration::ms(8.0);
  cfg.fault.max_retries = 4;
  cfg.fault.standby_takeover = takeover;
  cfg.fault.manager_takeover_delay = Duration::ms(2.0);
  cfg.fault.schedule.push_back(FaultEvent{
      FaultKind::kManagerCrash, TimePoint::origin() + Duration::ms(50.0),
      /*target=*/0, mttr});

  pvfs::Cluster cluster(cfg, 2, 2);
  pvfs::Client& c = cluster.client(0);
  pvfs::Client& c1 = cluster.client(1);
  const u64 len = 4 * kKiB;
  const u64 buf = c.memory().alloc(len);
  std::memset(c.memory().data(buf), 0x5a, len);
  const u64 buf1 = c1.memory().alloc(len);
  std::memset(c1.memory().data(buf1), 0xa5, len);
  pvfs::OpenFile shared =
      c1.create("/shared", 64 * kKiB, 1, /*base_iod=*/0).value();
  const Duration spacing = Duration::ms(40.0);
  std::vector<char> created(ops, 0);
  std::vector<pvfs::IoHandle> handles(ops);
  std::vector<pvfs::IoHandle> mints(ops);
  for (u32 k = 0; k < ops; ++k) {
    const TimePoint at = TimePoint::origin() + spacing * static_cast<i64>(k);
    cluster.engine().schedule_at(at, [&, k, at] {
      Result<pvfs::OpenFile> f =
          c.create("/m" + std::to_string(k), 64 * kKiB, 1, /*base_iod=*/0);
      if (!f.is_ok()) return;
      created[k] = 1;
      handles[k] = c.submit({pvfs::IoDir::kWrite, f.value(),
                             {{{buf, len}}, {{0, len}}}, {}, at});
    });
    const TimePoint mat = at + spacing / 2;
    cluster.engine().schedule_at(mat, [&, k, mat] {
      mints[k] = c1.submit({pvfs::IoDir::kWrite, shared,
                            {{{buf1, len}}, {{0, len}}}, {}, mat});
    });
  }
  cluster.run();

  MgrPoint pt;
  pt.total = 2 * ops;
  for (u32 k = 0; k < ops; ++k) {
    if (created[k] != 0 && handles[k].poll() && handles[k].result().ok()) {
      ++pt.ok;
    }
    if (mints[k].poll() && mints[k].result().ok()) ++pt.ok;
  }
  const Stats& s = cluster.stats();
  pt.meta_retries = s.get(stat::kPvfsMetaRetries);
  pt.meta_failovers = s.get(stat::kPvfsMetaFailovers);
  pt.takeovers = s.get(stat::kPvfsManagerTakeovers);
  pt.epoch_rejections = s.get(stat::kPvfsEpochRejections);
  return pt;
}

void run_mgr_avail_sweep(const std::vector<Duration>& mttrs, u32 ops) {
  Table t({"MTTR", "takeover", "ok/total", "availability", "meta retries",
           "meta failovers", "takeovers", "epoch rej"});
  for (Duration mttr : mttrs) {
    for (bool takeover : {false, true}) {
      const MgrPoint pt = run_mgr_avail(mttr, takeover, ops);
      t.row({mttr.to_string(), takeover ? "on" : "off",
             fmt_int(pt.ok) + "/" + fmt_int(pt.total),
             fmt(pt.total == 0 ? 0.0
                               : static_cast<double>(pt.ok) /
                                     static_cast<double>(pt.total),
                 2),
             fmt_int(pt.meta_retries), fmt_int(pt.meta_failovers),
             fmt_int(pt.takeovers), fmt_int(pt.epoch_rejections)});
    }
  }
  t.print();
  std::printf("\n");
}

// --- Sharded plane: one shard's manager dies, the others don't notice -----

struct ShardAvailPoint {
  std::vector<u32> ok;     // per shard
  std::vector<u32> total;  // per shard
  i64 meta_retries = 0;
  i64 meta_failovers = 0;
  i64 takeovers = 0;
};

// Smallest suffix that steers a bench file name onto `shard`.
std::string name_on_shard(u32 shard, u32 shards, u32 k) {
  for (u32 n = 0;; ++n) {
    std::string cand = "/sh" + std::to_string(shard) + "_" +
                       std::to_string(k) + "_" + std::to_string(n);
    if (pvfs::shard_of(cand, shards) == shard) return cand;
  }
}

// Four active manager shards; the one owning shard 1's names crashes at
// 50 ms for `mttr`. One client creates a file on every shard each 40 ms
// round. The blast radius is the point: shards 0/2/3 route to untouched
// managers and never retry, while shard 1 either rides the retry budget
// (takeover off — its ops inside the window fail once MTTR outlives
// ~35 ms) or fails over to its own standby (takeover on — nothing lost,
// and the other shards' epochs never move).
ShardAvailPoint run_shard_avail(Duration mttr, bool takeover, u32 ops) {
  constexpr u32 kShards = 4;
  constexpr u32 kCrashed = 1;
  ModelConfig cfg = ModelConfig::paper_defaults();
  cfg.fault.seed = 42;
  cfg.fault.round_timeout = Duration::ms(5.0);
  cfg.fault.backoff_base = Duration::ms(1.0);
  cfg.fault.backoff_mult = 2.0;
  cfg.fault.backoff_cap = Duration::ms(8.0);
  cfg.fault.max_retries = 4;
  cfg.fault.standby_takeover = takeover;
  cfg.fault.manager_takeover_delay = Duration::ms(2.0);
  cfg.fault.schedule.push_back(FaultEvent{
      FaultKind::kManagerCrash, TimePoint::origin() + Duration::ms(50.0),
      /*target=*/kCrashed, mttr});

  pvfs::Cluster cluster(
      cfg, pvfs::Cluster::Topology{}.clients(1).iods(2).metadata_shards(
          kShards));
  pvfs::Client& c = cluster.client(0);
  ShardAvailPoint pt;
  pt.ok.assign(kShards, 0);
  pt.total.assign(kShards, 0);
  const Duration spacing = Duration::ms(40.0);
  for (u32 k = 0; k < ops; ++k) {
    for (u32 s = 0; s < kShards; ++s) {
      const TimePoint at = TimePoint::origin() +
                           spacing * static_cast<i64>(k) +
                           Duration::ms(4.0) * static_cast<i64>(s);
      ++pt.total[s];
      cluster.engine().schedule_at(at, [&, s, k] {
        const std::string name = name_on_shard(s, kShards, k);
        if (c.create(name, 64 * kKiB, 1, /*base_iod=*/0).is_ok()) {
          ++pt.ok[s];
        }
      });
    }
  }
  cluster.run();
  const Stats& st = cluster.stats();
  pt.meta_retries = st.get(stat::kPvfsMetaRetries);
  pt.meta_failovers = st.get(stat::kPvfsMetaFailovers);
  pt.takeovers = st.get(stat::kPvfsManagerTakeovers);
  return pt;
}

void run_shard_avail_sweep(const std::vector<Duration>& mttrs, u32 ops) {
  Table t({"MTTR", "takeover", "shard0", "shard1*", "shard2", "shard3",
           "meta retries", "meta failovers", "takeovers"});
  for (Duration mttr : mttrs) {
    for (bool takeover : {false, true}) {
      const ShardAvailPoint pt = run_shard_avail(mttr, takeover, ops);
      auto cell = [&](u32 s) {
        return fmt_int(pt.ok[s]) + "/" + fmt_int(pt.total[s]);
      };
      t.row({mttr.to_string(), takeover ? "on" : "off", cell(0), cell(1),
             cell(2), cell(3), fmt_int(pt.meta_retries),
             fmt_int(pt.meta_failovers), fmt_int(pt.takeovers)});
    }
  }
  t.print();
  std::printf("\n");
}

// --- Sequential failures: durability with and without re-replication ------

struct SeqPoint {
  bool ran = false;
  bool read_ok = false;
  bool fresh = false;  // the read returned the last *acked* write's bytes
  u32 failovers = 0;
  i64 stale_avoided = 0;
  i64 read_repairs = 0;
  i64 resync_stripes = 0;
  i64 resync_rounds = 0;
};

// Factor 2, write quorum 1, a width-1 file on the chain {iod0, iod1}.
// Timeline: preload pattern A healthy (both replicas current); iod0 crashes
// at 20 ms and restarts at 50 ms; pattern B is written at 25 ms and settles
// on iod1 alone (iod0 now stale); iod1 dies for good `gap` after iod0's
// restart; a read at 500 ms must come from iod0. With resync on, iod0's
// restart scan pulls B from iod1 inside the gap and the read is fresh. With
// it off — or with no gap to resync in — the read "succeeds" from the stale
// primary and returns A: acked data provably lost.
SeqPoint run_seq(Duration gap, bool resync) {
  ModelConfig cfg = ModelConfig::paper_defaults();
  cfg.replication.factor = 2;
  cfg.replication.write_quorum = 1;
  cfg.replication.resync = resync;
  cfg.fault.seed = 42;
  cfg.fault.round_timeout = Duration::ms(5.0);
  cfg.fault.backoff_base = Duration::ms(1.0);
  cfg.fault.backoff_mult = 2.0;
  cfg.fault.backoff_cap = Duration::ms(8.0);
  cfg.fault.max_retries = 4;
  const TimePoint restart = TimePoint::origin() + Duration::ms(50.0);
  cfg.fault.schedule.push_back(FaultEvent{FaultKind::kIodCrash,
                                          TimePoint::origin() + Duration::ms(20.0),
                                          /*target=*/0, Duration::ms(30.0)});
  cfg.fault.schedule.push_back(FaultEvent{FaultKind::kIodCrash, restart + gap,
                                          /*target=*/1, Duration::ms(1.0e6)});

  pvfs::Cluster cluster(cfg, 1, 2);
  pvfs::Client& c = cluster.client(0);
  pvfs::OpenFile f = c.create("/seq", 64 * kKiB, 1, /*base_iod=*/0).value();

  const u64 len = 64 * kKiB;
  const u64 wbuf = c.memory().alloc(len);
  const u64 rbuf = c.memory().alloc(len);
  pvfs::IoHandle read_h;
  // Submit from engine events so every send goes on the wire in
  // nondecreasing virtual time (resync traffic interleaves at 50 ms+).
  cluster.engine().schedule_at(TimePoint::origin(), [&] {
    std::memset(c.memory().data(wbuf), 0x11, len);  // pattern A
    c.submit({pvfs::IoDir::kWrite, f, {{{wbuf, len}}, {{0, len}}}, {},
              cluster.engine().now()});
  });
  cluster.engine().schedule_at(TimePoint::origin() + Duration::ms(25.0), [&] {
    std::memset(c.memory().data(wbuf), 0x22, len);  // pattern B
    c.submit({pvfs::IoDir::kWrite, f, {{{wbuf, len}}, {{0, len}}}, {},
              cluster.engine().now()});
  });
  cluster.engine().schedule_at(TimePoint::origin() + Duration::ms(500.0), [&] {
    read_h = c.submit({pvfs::IoDir::kRead, f, {{{rbuf, len}}, {{0, len}}}, {},
                       cluster.engine().now()});
  });
  cluster.engine().run_until(
      [&] { return read_h.valid() && read_h.poll(); });

  SeqPoint pt;
  pt.ran = true;
  pt.read_ok = read_h.valid() && read_h.poll() && read_h.result().ok();
  pt.failovers = pt.read_ok ? read_h.result().failovers : 0;
  if (pt.read_ok) {
    pt.fresh = true;
    const std::byte* d = c.memory().data(rbuf);
    for (u64 i = 0; i < len; ++i) {
      if (d[i] != std::byte{0x22}) {
        pt.fresh = false;
        break;
      }
    }
  }
  const Stats& s = cluster.stats();
  pt.stale_avoided = s.get(stat::kPvfsStaleReadsAvoided);
  pt.read_repairs = s.get(stat::kPvfsReadRepairs);
  pt.resync_stripes = s.get(stat::kPvfsResyncStripes);
  pt.resync_rounds = s.get(stat::kPvfsResyncRounds);
  return pt;
}

void run_seq_sweep(const std::vector<Duration>& gaps) {
  Table t({"gap", "resync", "read", "failovers", "stale avoided",
           "resync stripes", "resync rounds", "data"});
  for (Duration gap : gaps) {
    for (bool resync : {false, true}) {
      const SeqPoint pt = run_seq(gap, resync);
      t.row({gap.to_string(), resync ? "on" : "off",
             pt.read_ok ? "ok" : "FAILED", fmt_int(pt.failovers),
             fmt_int(pt.stale_avoided), fmt_int(pt.resync_stripes),
             fmt_int(pt.resync_rounds),
             !pt.read_ok ? "unreadable"
                         : (pt.fresh ? "fresh" : "STALE (acked write lost)")});
    }
  }
  t.print();
  std::printf("\n");
}

// --- Silent corruption: detection latency and repair, scrubber off/on -----

struct CorruptPoint {
  u32 flips_scheduled = 0;
  bool scrub = false;
  bool read_ok = false;
  bool data_ok = false;
  i64 flips = 0;
  i64 detections = 0;
  i64 corrupt_failovers = 0;
  i64 repairs = 0;
  i64 scrub_chunks = 0;
  i64 resync_stripes = 0;
  double detect_latency_ms = -1.0;  // first flip -> first checksum mismatch
  double read_mbps = 0.0;
};

// Factor 2, four iods, a healthy 512 KiB preload; `flips` scheduled
// bit flips land at rest from t=30 ms on, all on iod 0 — one member of
// each affected chain, so an intact copy always survives (factor 2 can
// promise nothing once both copies rot). A full-file read at 350 ms is
// the safety net either way — verify-on-read refuses rotten bytes and
// fails over — so what the scrubber buys is *when* the rot is found
// (next sweep vs next read, the detection-latency column) and *what the
// read costs* (scrub on: healed copies, clean placement; scrub off: the
// read itself discovers the rot and pays the failover).
CorruptPoint run_corruption(u32 flips, bool scrub) {
  ModelConfig cfg = ModelConfig::paper_defaults();
  cfg.replication.factor = 2;
  cfg.replication.resync = true;
  cfg.replication.scrub = scrub;
  cfg.fault.seed = 42;
  cfg.fault.round_timeout = Duration::ms(5.0);
  cfg.fault.backoff_base = Duration::ms(1.0);
  cfg.fault.backoff_cap = Duration::ms(8.0);
  cfg.fault.max_retries = 8;
  const TimePoint first_at = TimePoint::origin() + Duration::ms(30.0);
  for (u32 k = 0; k < flips; ++k) {
    cfg.fault.schedule.push_back(
        FaultEvent{FaultKind::kBitFlip,
                   first_at + Duration::ms(5.0) * static_cast<i64>(k),
                   /*target=*/0, Duration::zero()});
  }

  sim::Trace& trace = sim::Trace::instance();
  trace.enable(/*capacity=*/1 << 16);
  trace.clear();

  pvfs::Cluster cluster(cfg, 1, 4);
  pvfs::Client& c = cluster.client(0);
  pvfs::OpenFile f = c.create("/corr", 64 * kKiB, 4, /*base_iod=*/0).value();
  const u64 n = 512 * kKiB;
  const u64 src = c.memory().alloc(n);
  for (u64 i = 0; i < n; ++i) {
    c.memory().write_pod<u8>(src + i, static_cast<u8>(i * 131 + 17));
  }
  const pvfs::IoResult w = c.write(f, 0, src, n);

  if (scrub) cluster.start_scrub(TimePoint::origin() + Duration::ms(300.0));

  const u64 dst = c.memory().alloc(n);
  pvfs::IoHandle rh;
  const TimePoint rat = TimePoint::origin() + Duration::ms(350.0);
  cluster.engine().schedule_at(rat, [&, rat] {
    rh = c.submit({pvfs::IoDir::kRead, f, {{{dst, n}}, {{0, n}}}, {}, rat});
  });
  cluster.run();

  CorruptPoint pt;
  pt.flips_scheduled = flips;
  pt.scrub = scrub;
  pt.read_ok = w.ok() && rh.valid() && rh.poll() && rh.result().ok();
  pt.data_ok = pt.read_ok;
  if (pt.read_ok) {
    for (u64 i = 0; i < n; ++i) {
      if (c.memory().read_pod<u8>(dst + i) != static_cast<u8>(i * 131 + 17)) {
        pt.data_ok = false;
        break;
      }
    }
    pt.read_mbps = rh.result().bandwidth_mib();
  }
  const Stats& s = cluster.stats();
  pt.flips = s.get(stat::kFaultBitFlip);
  pt.detections = s.get(stat::kPvfsCorruptionsDetected);
  pt.corrupt_failovers = s.get(stat::kPvfsCorruptReadsFailedOver);
  pt.repairs = s.get(stat::kPvfsCorruptionsRepaired);
  pt.scrub_chunks = s.get(stat::kPvfsScrubChunks);
  pt.resync_stripes = s.get(stat::kPvfsResyncStripes);
  TimePoint first_det = TimePoint::from_ns(INT64_MAX);
  for (const sim::Trace::Entry& e : trace.entries()) {
    if (e.what.find("MISMATCH") != std::string::npos && e.at < first_det) {
      first_det = e.at;
    }
  }
  if (first_det != TimePoint::from_ns(INT64_MAX) && first_det >= first_at) {
    pt.detect_latency_ms = (first_det - first_at).as_ms();
  }
  trace.disable();
  trace.clear();
  return pt;
}

std::vector<CorruptPoint> run_corruption_sweep(const std::vector<u32>& flips) {
  Table t({"flips", "scrub", "injected", "detect latency", "detections",
           "corrupt failovers", "repairs", "scrub chunks", "resync stripes",
           "read MB/s", "data"});
  std::vector<CorruptPoint> points;
  for (u32 fl : flips) {
    for (bool scrub : {false, true}) {
      const CorruptPoint pt = run_corruption(fl, scrub);
      t.row({fmt_int(fl), scrub ? "on" : "off", fmt_int(pt.flips),
             pt.detect_latency_ms < 0.0 ? "never"
                                        : fmt(pt.detect_latency_ms, 2) + " ms",
             fmt_int(pt.detections), fmt_int(pt.corrupt_failovers),
             fmt_int(pt.repairs), fmt_int(pt.scrub_chunks),
             fmt_int(pt.resync_stripes), fmt(pt.read_mbps, 1),
             !pt.read_ok          ? "UNREADABLE"
             : pt.data_ok         ? "intact"
                                  : "ROTTEN (silent corruption)"});
      points.push_back(pt);
    }
  }
  t.print();
  std::printf("\n");
  return points;
}

void json_rate_points(JsonWriter& j, const char* key,
                      const std::vector<SweepPoint>& points) {
  j.begin_array(key);
  for (const SweepPoint& pt : points) {
    j.begin_object();
    j.field("rate", pt.rate, 4);
    j.field("mbps", pt.outcome.mbps, 3);
    j.field("ok", pt.outcome.ok);
    j.field("p50_us", pt.p50.as_us(), 3);
    j.field("p99_us", pt.p99.as_us(), 3);
    j.field("injected", pt.injected);
    j.field("timeouts", pt.timeouts);
    j.field("retries", pt.retries);
    j.field("replays_deduped", pt.replays_deduped);
    j.end_object();
  }
  j.end_array();
}

void json_corruption_points(JsonWriter& j,
                            const std::vector<CorruptPoint>& points) {
  j.begin_array("points");
  for (const CorruptPoint& pt : points) {
    j.begin_object();
    j.field("flips_scheduled", pt.flips_scheduled);
    j.field("scrub", pt.scrub);
    j.field("flips_injected", pt.flips);
    j.field("detect_latency_ms", pt.detect_latency_ms, 3);
    j.field("detections", pt.detections);
    j.field("corrupt_failovers", pt.corrupt_failovers);
    j.field("repairs", pt.repairs);
    j.field("scrub_chunks", pt.scrub_chunks);
    j.field("resync_stripes", pt.resync_stripes);
    j.field("read_mbps", pt.read_mbps, 3);
    j.field("read_ok", pt.read_ok);
    j.field("data_ok", pt.data_ok);
    j.end_object();
  }
  j.end_array();
}

void run(bool smoke) {
  const u64 n = smoke ? 512 : 2048;
  const std::vector<double> rates =
      smoke ? std::vector<double>{0.0, 0.01}
            : std::vector<double>{0.0, 0.002, 0.01, 0.05, 0.2};
  header("Fault sweep: block-column write goodput vs injected fault rate",
         "fig6 workload (List+ADS, no sync); request/reply drops, "
         "retransmits and\ncompletion errors at the given rate; 400 ms round "
         "timeout, 1 ms base backoff");
  const std::vector<SweepPoint> write_points =
      run_rate_sweep(/*is_write=*/true, rates, n);

  header("Fault sweep: block-column read goodput vs injected fault rate",
         "fig7 workload (List+ADS); reads are idempotent, so lost requests "
         "or replies\nare simply re-read after the round timeout");
  const std::vector<SweepPoint> read_points =
      run_rate_sweep(/*is_write=*/false, rates, n);

  const std::vector<Duration> mttrs =
      smoke ? std::vector<Duration>{Duration::ms(10.0), Duration::ms(150.0)}
            : std::vector<Duration>{Duration::ms(5.0), Duration::ms(60.0),
                                    Duration::ms(150.0), Duration::ms(250.0),
                                    Duration::ms(400.0)};
  const u32 ops = smoke ? 6 : 12;
  header("Availability vs MTTR: replication factor 1 vs 2",
         "one iod crashes at t=50ms and restarts after MTTR; strided ops "
         "pinned to it\nstart every 40 ms; retry budget ~35 ms. factor 2: "
         "writes settle on the\nsurviving replica (quorum 1), reads fail "
         "over to it");
  run_avail_sweep(mttrs, ops);

  const std::vector<Duration> mgr_mttrs =
      smoke ? std::vector<Duration>{Duration::ms(10.0), Duration::ms(150.0)}
            : std::vector<Duration>{Duration::ms(5.0), Duration::ms(60.0),
                                    Duration::ms(150.0), Duration::ms(250.0),
                                    Duration::ms(400.0)};
  header("Availability vs manager MTTR: standby takeover off vs on",
         "the manager crashes at t=50ms and restarts after MTTR; a "
         "create+replicated-write\nop starts every 40 ms; retry budget "
         "~35 ms. takeover on: the standby promotes\n2 ms into the window, "
         "metadata fails over and the epoch fence re-targets version\nmints, "
         "so availability is flat in MTTR");
  run_mgr_avail_sweep(mgr_mttrs, ops);

  const std::vector<Duration> shard_mttrs =
      smoke ? std::vector<Duration>{Duration::ms(150.0)}
            : std::vector<Duration>{Duration::ms(150.0), Duration::ms(400.0)};
  header("Sharded metadata plane: blast radius of one manager crash",
         "4 active manager shards, the shard-1 manager crashes at t=50ms "
         "and restarts\nafter MTTR; one create per shard starts every 40 ms "
         "(* = crashed shard).\nShards 0/2/3 route to untouched managers "
         "and never retry; shard 1 alone\neats the outage, and with a "
         "standby its takeover makes it whole too");
  run_shard_avail_sweep(shard_mttrs, ops);

  const std::vector<Duration> gaps =
      smoke ? std::vector<Duration>{Duration::zero(), Duration::ms(100.0)}
            : std::vector<Duration>{Duration::zero(), Duration::ms(5.0),
                                    Duration::ms(100.0)};
  header("Sequential failures: surviving F-1 crashes one at a time",
         "factor 2, quorum 1. A write lands on the backup alone while the "
         "primary is\ndown; the backup then dies for good `gap` after the "
         "primary restarts. With\nresync the restart scan re-replicates "
         "inside the gap and the final read is\nfresh; without it (or with "
         "no gap) the read comes from the stale primary\nand acked data is "
         "lost");
  run_seq_sweep(gaps);

  const std::vector<u32> flip_counts =
      smoke ? std::vector<u32>{2} : std::vector<u32>{1, 2, 4};
  header("Silent corruption: detection latency and repair, scrubber off vs on",
         "factor 2, 4 iods; scheduled bit flips land at rest from t=30ms, a "
         "full-file\nread follows at t=350ms. Verify-on-read refuses rotten "
         "bytes either way; the\nscrubber turns detection latency from "
         "'next read' into 'next sweep' and heals\nthe copies before the "
         "read ever pays a failover");
  const std::vector<CorruptPoint> corruption_points =
      run_corruption_sweep(flip_counts);

  JsonWriter j;
  j.field("bench", "fault_sweep");
  j.field("smoke", smoke);
  j.begin_object("config");
  j.field("seed", static_cast<u64>(42));
  j.field("n", n);
  j.field("clients", 4);
  j.field("iods", 4);
  j.end_object();
  json_rate_points(j, "write_rate_points", write_points);
  json_rate_points(j, "read_rate_points", read_points);
  j.begin_object("corruption");
  j.field("replication_factor", 2);
  j.field("preload_bytes", static_cast<u64>(512 * kKiB));
  json_corruption_points(j, corruption_points);
  j.end_object();
  j.write_file("BENCH_fault.json");
}

}  // namespace
}  // namespace pvfsib::bench

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  pvfsib::bench::run(smoke);
  return 0;
}
