// Ablation: pin-down cache capacity and registration thrashing.
//
// Section 4.2: "the total number of buffers registered is limited. When the
// system hits this limitation, some registered buffers must be
// deregistered. This may lead to registration thrashing."
//
// A client cycles list I/O over W distinct 1 MiB working sets; once the
// cache capacity (entries) drops below W the hit rate collapses and every
// operation pays full registration again.
#include "bench_common.h"

#include "core/ogr.h"

namespace pvfsib::bench {
namespace {

void run() {
  header("Ablation: registration cache capacity (thrashing)",
         "16 working sets of 256 x 4 KiB rows, visited round-robin for 128 "
         "operations;\nper-op registration cost vs cache capacity");

  const u64 kSets = 16;
  const u64 kRows = 256;
  const int kOps = 128;

  Table t({"cache entries", "hit rate", "reg/op", "evictions",
           "reg cost/op (us)"});
  for (u64 capacity : {2, 4, 8, 12, 16, 32, 1024}) {
    ModelConfig cfg = ModelConfig::paper_defaults();
    cfg.reg.cache_max_entries = capacity;

    Stats stats;
    vmem::AddressSpace as;
    ib::Hca hca("client", as, cfg.reg, &stats);
    ib::MrCache cache(hca);
    core::GroupRegistrar ogr(cache, cfg.os, core::OgrConfig{}, &stats);

    // Each working set groups into ONE region under OGR, so capacity is in
    // units of working sets.
    std::vector<core::MemSegmentList> sets;
    for (u64 s = 0; s < kSets; ++s) {
      core::MemSegmentList segs;
      const u64 base = as.alloc(kRows * 8 * kKiB);
      for (u64 r = 0; r < kRows; ++r) {
        segs.push_back({base + r * 8 * kKiB, 4 * kKiB});
      }
      as.skip(64 * kPageSize);  // keep sets apart
      sets.push_back(std::move(segs));
    }

    Duration total_cost = Duration::zero();
    for (int op = 0; op < kOps; ++op) {
      core::OgrOutcome out = ogr.acquire(sets[op % kSets]);
      if (!out.ok()) {
        std::fprintf(stderr, "acquire: %s\n", out.status.to_string().c_str());
        return;
      }
      total_cost += out.cost;
      ogr.release(out);
    }
    const i64 hits = stats.get(stat::kMrCacheHit);
    const i64 misses = stats.get(stat::kMrCacheMiss);
    t.row({fmt_int(static_cast<i64>(capacity)),
           fmt(100.0 * static_cast<double>(hits) /
                   static_cast<double>(hits + misses),
               1) + "%",
           fmt(static_cast<double>(stats.get(stat::kMrRegister)) / kOps, 2),
           fmt_int(stats.get(stat::kMrCacheEvict)),
           fmt(total_cost.as_us() / kOps, 1)});
  }
  t.print();
}

}  // namespace
}  // namespace pvfsib::bench

int main() {
  pvfsib::bench::run();
  return 0;
}
