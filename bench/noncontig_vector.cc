// The "noncontig" benchmark (Latham & Ross, cited as [15]): each process
// accesses an MPI vector pattern — veclen elements of elmtsize bytes taken
// every nprocs-th block — through each access method. The paper cites this
// workload as the one exposing PVFS+ROMIO's noncontiguous-access problems;
// this bench confirms our stack reproduces its published qualitative
// result: native list I/O (+ADS) repairs the gap that Multiple I/O leaves.
// --pipeline-depth W widens the per-iod outstanding-round window for every
// access method's PVFS traffic (ModelConfig::pipeline_depth).
#include <cstdlib>
#include <cstring>

#include "bench_common.h"

namespace pvfsib::bench {
namespace {

u32 g_pipeline_depth = 1;

RunOutcome run_case(u64 elmtsize, u64 veclen, mpiio::IoMethod method,
                    bool is_write) {
  ModelConfig cfg = ModelConfig::paper_defaults();
  cfg.pipeline_depth = g_pipeline_depth;
  pvfs::Cluster cluster(cfg, 4, 4);
  mpiio::Communicator comm(cluster);
  Result<mpiio::File> file = mpiio::File::create(comm, "/noncontig");
  if (!file.is_ok()) return {};
  mpiio::File f = file.value();

  const int procs = 4;
  const u64 tiles = 64;  // vector repetitions per process
  const u64 share = veclen * elmtsize * tiles;
  if (!is_write) preload_file(comm, f, share * procs);

  std::vector<mpiio::RankIo> io(procs);
  for (int p = 0; p < procs; ++p) {
    pvfs::Client& c = comm.rank(p);
    // File view: process p takes block p out of every group of nprocs
    // blocks of veclen*elmtsize bytes.
    const mpiio::Datatype ft = mpiio::Datatype::subarray(
        {static_cast<u64>(procs)}, {1}, {0}, veclen * elmtsize);
    io[p] = mpiio::RankIo{
        mpiio::FileView(static_cast<u64>(p) * veclen * elmtsize, ft),
        c.memory().alloc(share), mpiio::Datatype::contiguous(share), 0,
        share};
  }
  mpiio::Hints hints;
  hints.method = method;
  return summarize(is_write ? f.write_all(io, hints)
                            : f.read_all(io, hints));
}

void run() {
  header("noncontig benchmark (Latham & Ross)",
         "4 procs, vector file view (each proc takes 1 block in 4); "
         "aggregate MB/s, cached");

  for (bool is_write : {true, false}) {
    std::printf("  -- %s --\n", is_write ? "write" : "read");
    Table t({"block", "Multiple", "ROMIO-DS", "List", "List+ADS"});
    for (u64 block_bytes : {256, 1024, 4096, 16384}) {
      const u64 elmtsize = 4;
      const u64 veclen = block_bytes / elmtsize;
      t.row({std::to_string(block_bytes) + " B",
             fmt(run_case(elmtsize, veclen, mpiio::IoMethod::kMultiple,
                          is_write)
                     .mbps,
                 1),
             fmt(run_case(elmtsize, veclen, mpiio::IoMethod::kDataSieving,
                          is_write)
                     .mbps,
                 1),
             fmt(run_case(elmtsize, veclen, mpiio::IoMethod::kListIo,
                          is_write)
                     .mbps,
                 1),
             fmt(run_case(elmtsize, veclen, mpiio::IoMethod::kListIoAds,
                          is_write)
                     .mbps,
                 1)});
    }
    t.print();
    std::printf("\n");
  }
}

}  // namespace
}  // namespace pvfsib::bench

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--pipeline-depth") == 0 && i + 1 < argc) {
      pvfsib::bench::g_pipeline_depth =
          static_cast<pvfsib::u32>(std::strtoul(argv[++i], nullptr, 10));
    }
  }
  pvfsib::bench::run();
  return 0;
}
