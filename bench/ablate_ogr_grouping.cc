// Ablation: the OGR grouping cost model (Section 4.3).
//
// OGR absorbs an inter-buffer hole into a group when pinning the hole's
// pages costs less than a second registration pair:
// (a_reg + a_dereg) * hole_pages <= b_reg + b_dereg. Two sweeps:
//   (1) fixed layout, scaled per-op overhead b: the planner shifts from
//       many small groups to one big region exactly where the model says;
//   (2) fixed parameters, swept hole size: groups split once holes exceed
//       the ~8.5-page break-even.
// Also compares total registration cost against the Individual and naive
// Whole-Range strategies on each layout.
#include "bench_common.h"

#include "core/ogr.h"

namespace pvfsib::bench {
namespace {

struct Layout {
  vmem::AddressSpace as;
  core::MemSegmentList segs;
};

// 512 buffers of 4 KiB separated by mapped holes of `hole_pages` pages.
std::unique_ptr<Layout> make_layout(u64 hole_pages) {
  auto l = std::make_unique<Layout>();
  const u64 n = 512;
  const u64 stride = kPageSize * (1 + hole_pages);
  const u64 base = l->as.alloc(n * stride);
  for (u64 i = 0; i < n; ++i) {
    l->segs.push_back({base + i * stride, 4 * kKiB});
  }
  return l;
}

Duration strategy_cost(Layout& l, const RegParams& rp,
                       core::RegStrategy strategy, u64* groups) {
  Stats stats;
  ib::Hca hca("c", l.as, rp, &stats);
  ib::MrCache cache(hca);
  core::GroupRegistrar ogr(cache, OsParams{}, core::OgrConfig{}, &stats);
  if (groups != nullptr) *groups = ogr.plan_groups(l.segs).size();
  core::OgrOutcome out = ogr.acquire(l.segs, strategy);
  if (!out.ok()) return Duration::max();
  ogr.release(out);
  return out.cost;
}

void run() {
  header("Ablation: OGR grouping economics",
         "512 x 4 KiB buffers; registration cost by strategy\n"
         "(break-even hole = (b_reg+b_dereg)/(a_reg+a_dereg) ~ 8.5 pages "
         "at the paper's constants)");

  std::printf("  -- sweep hole size (paper constants) --\n");
  Table t1({"hole (pages)", "OGR groups", "OGR cost (us)", "indiv (us)",
            "whole-range (us)"});
  for (u64 hole : {0, 1, 2, 4, 8, 9, 16, 64, 256}) {
    auto l = make_layout(hole);
    u64 groups = 0;
    const Duration ogr_cost =
        strategy_cost(*l, RegParams{}, core::RegStrategy::kOgr, &groups);
    auto l2 = make_layout(hole);
    const Duration indiv = strategy_cost(*l2, RegParams{},
                                         core::RegStrategy::kIndividual,
                                         nullptr);
    auto l3 = make_layout(hole);
    const Duration whole = strategy_cost(*l3, RegParams{},
                                         core::RegStrategy::kWholeRange,
                                         nullptr);
    t1.row({fmt_int(static_cast<i64>(hole)), fmt_int(static_cast<i64>(groups)),
            fmt(ogr_cost.as_us(), 0), fmt(indiv.as_us(), 0),
            fmt(whole.as_us(), 0)});
  }
  t1.print();

  std::printf("\n  -- sweep per-op overhead b (hole fixed at 8 pages) --\n");
  Table t2({"b scale", "break-even (pages)", "OGR groups", "OGR cost (us)"});
  for (double scale : {0.25, 0.5, 1.0, 2.0, 4.0, 16.0}) {
    RegParams rp;
    rp.reg_base = rp.reg_base * scale;
    rp.dereg_base = rp.dereg_base * scale;
    const double break_even =
        (rp.reg_base + rp.dereg_base).as_us() /
        (rp.reg_per_page + rp.dereg_per_page).as_us();
    auto l = make_layout(8);
    Stats stats;
    ib::Hca hca("c", l->as, rp, &stats);
    ib::MrCache cache(hca);
    core::GroupRegistrar ogr(cache, OsParams{}, core::OgrConfig{}, &stats);
    const u64 groups = ogr.plan_groups(l->segs).size();
    core::OgrOutcome out = ogr.acquire(l->segs);
    t2.row({fmt(scale, 2), fmt(break_even, 1),
            fmt_int(static_cast<i64>(groups)),
            out.ok() ? fmt(out.cost.as_us(), 0) : "fail"});
    if (out.ok()) ogr.release(out);
  }
  t2.print();
}

}  // namespace
}  // namespace pvfsib::bench

int main() {
  pvfsib::bench::run();
  return 0;
}
