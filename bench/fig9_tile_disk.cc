// Figure 9: mpi-tile-io with disk effects — writes with sync, reads from
// cold iod caches.
//
// Paper shape: List+ADS still wins for write; for read, ROMIO Data Sieving
// overtakes ADS (one big request, disk dominates, and ADS pays 6 request/
// reply pairs against DS's one).
#include "bench_common.h"

namespace pvfsib::bench {
namespace {

void run() {
  header("Figure 9: mpi-tile-io, with disk effects",
         "9 MB frame, 2x2 tiles; writes synced, reads from cold caches; "
         "aggregate MB/s\n(paper shape: ADS best for write; ROMIO-DS "
         "overtakes for read)");

  Table t({"op", "Multiple", "ROMIO-DS", "List", "List+ADS"});
  for (bool is_write : {true, false}) {
    std::vector<std::string> row{is_write ? "write (sync)"
                                          : "read (cold cache)"};
    for (mpiio::IoMethod m :
         {mpiio::IoMethod::kMultiple, mpiio::IoMethod::kDataSieving,
          mpiio::IoMethod::kListIo, mpiio::IoMethod::kListIoAds}) {
      pvfs::Cluster cluster(ModelConfig::paper_defaults(), 4, 4);
      row.push_back(
          fmt(run_tile_io(cluster, m, is_write, /*sync=*/is_write,
                          /*cold=*/!is_write)
                  .mbps,
              1));
    }
    t.row(row);
  }
  t.print();
}

}  // namespace
}  // namespace pvfsib::bench

int main() {
  pvfsib::bench::run();
  return 0;
}
