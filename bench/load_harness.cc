// Closed-loop scaling benchmark: the src/load workload engine driving an
// increasing number of simulated clients against a fixed cluster to find
// the saturation knee. Each point stands up a fresh cluster, runs the
// seeded op-mix state machines (Zipf-skewed reads/writes, open/stat
// metadata traffic, create/remove churn) through ramp -> measure -> drain,
// and reports saturation throughput, p50/p99/p999 latency, and the Jain
// fairness index over per-client goodput. Below the knee, doubling the
// clients doubles the ops; past it, throughput is flat and every extra
// client shows up as tail latency instead.
//
// A second (non-smoke) sweep holds the client count at the saturating
// point and scales the iod count, showing the knee move with server
// capacity — the standing yardstick for iod-scheduler / caching / RDMA
// fast-path work, tracked across PRs via machine-readable BENCH_load.json.
// Identical seeds reproduce the JSON bit-for-bit.
#include <cstring>

#include "bench_common.h"
#include "load/load_engine.h"

namespace pvfsib::bench {
namespace {

struct Point {
  u32 clients = 0;
  u32 iods = 0;
  load::LoadSummary sum;
};

load::LoadConfig base_config(bool smoke) {
  load::LoadConfig lc;
  lc.seed = 42;
  lc.population = smoke ? 8 : 32;
  lc.file_bytes = smoke ? 64 * kKiB : 256 * kKiB;
  lc.io_min_bytes = 4 * kKiB;
  lc.io_max_bytes = smoke ? 16 * kKiB : 64 * kKiB;
  lc.ramp = smoke ? Duration::ms(5.0) : Duration::ms(20.0);
  lc.measure = smoke ? Duration::ms(40.0) : Duration::ms(200.0);
  lc.start_jitter = smoke ? Duration::ms(2.0) : Duration::ms(5.0);
  lc.interval = smoke ? Duration::ms(10.0) : Duration::ms(20.0);
  return lc;
}

Point run_point(u32 clients, u32 iods, u32 shards, const load::LoadConfig& lc) {
  ModelConfig cfg = ModelConfig::paper_defaults();
  // Metadata service queues on a real per-manager CPU so the metadata leg
  // of the mix saturates honestly alongside the iods.
  cfg.pvfs.meta_cpu_queue = true;
  pvfs::Cluster cluster(cfg, pvfs::Cluster::Topology{}
                                 .clients(clients)
                                 .iods(iods)
                                 .metadata_shards(shards));
  load::LoadEngine engine(cluster, lc);
  Point pt;
  pt.clients = clients;
  pt.iods = iods;
  pt.sum = engine.run();
  return pt;
}

std::string us(Duration d) { return fmt(d.as_us(), 1); }

void table_row(Table& t, const Point& pt) {
  const load::LoadSummary& s = pt.sum;
  t.row({fmt_int(pt.clients), fmt_int(pt.iods), fmt_int(s.ops),
         fmt(s.ops_per_s / 1000.0, 1), fmt(s.mib_per_s, 1),
         us(s.latency.quantile(0.50)), us(s.latency.quantile(0.99)),
         us(s.latency.quantile(0.999)), fmt(s.fairness, 3),
         s.ok ? "ok" : "FAILED"});
}

void json_point(JsonWriter& j, const Point& pt) {
  const load::LoadSummary& s = pt.sum;
  j.begin_object();
  j.field("clients", pt.clients);
  j.field("iods", pt.iods);
  j.field("ok", s.ok);
  j.field("ops", s.ops);
  j.field("data_ops", s.data_ops);
  j.field("meta_ops", s.meta_ops);
  j.field("bytes", s.bytes);
  j.field("ops_per_s", s.ops_per_s, 3);
  j.field("mib_per_s", s.mib_per_s, 3);
  j.field("p50_us", s.latency.quantile(0.50).as_us(), 3);
  j.field("p99_us", s.latency.quantile(0.99).as_us(), 3);
  j.field("p999_us", s.latency.quantile(0.999).as_us(), 3);
  j.field("mean_us", s.latency.mean().as_us(), 3);
  j.field("max_us", s.latency.max().as_us(), 3);
  j.field("data_p99_us", s.data_latency.quantile(0.99).as_us(), 3);
  j.field("meta_p99_us", s.meta_latency.quantile(0.99).as_us(), 3);
  j.field("fairness", s.fairness, 6);
  j.begin_array("intervals");
  for (const load::LoadSummary::Interval& w : s.intervals) {
    j.begin_object();
    j.field("start_ms", w.start_ms, 3);
    j.field("end_ms", w.end_ms, 3);
    j.field("ops", w.ops);
    j.field("bytes", w.bytes);
    j.field("pvfs_requests", w.pvfs_requests);
    j.end_object();
  }
  j.end_array();
  j.end_object();
}

void run(bool smoke) {
  const load::LoadConfig lc = base_config(smoke);
  const std::vector<u32> client_counts =
      smoke ? std::vector<u32>{2, 8} : std::vector<u32>{4, 16, 64, 192};
  const u32 iods = 4;
  const u32 shards = smoke ? 1 : 2;

  header("Closed-loop load scaling: throughput and tail latency vs clients",
         fmt_int(iods) + " iods, " + fmt_int(shards) +
             " metadata shard(s); each client runs a seeded op-mix state "
             "machine\n(40% read / 25% write / 15% open / 10% stat / 10% "
             "create-remove churn,\nZipf(0.99) file popularity, log-uniform "
             "4K..64K ops, half list I/O) in a\nclosed loop: ramp " +
             fmt(lc.ramp.as_ms(), 0) + " ms, measure " +
             fmt(lc.measure.as_ms(), 0) +
             " ms, then drain. Past the saturation\nknee, extra clients buy "
             "tail latency, not ops");

  Table t({"clients", "iods", "ops", "kop/s", "MiB/s", "p50 us", "p99 us",
           "p999 us", "fairness", "status"});
  std::vector<Point> points;
  for (u32 n : client_counts) {
    points.push_back(run_point(n, iods, shards, lc));
    table_row(t, points.back());
  }
  t.print();
  std::printf("\n");

  // Server-capacity sweep: the knee should move with the iod count.
  std::vector<Point> iod_points;
  if (!smoke) {
    const u32 at_clients = client_counts.back();
    header("Closed-loop load scaling: saturated clients vs iod count",
           fmt_int(at_clients) +
               " clients (past the knee above); more iods move the "
               "saturation\nceiling up until the metadata plane or the "
               "fabric takes over as the bottleneck");
    Table t2({"clients", "iods", "ops", "kop/s", "MiB/s", "p50 us", "p99 us",
              "p999 us", "fairness", "status"});
    for (u32 k : {2u, 4u, 8u}) {
      iod_points.push_back(run_point(at_clients, k, shards, lc));
      table_row(t2, iod_points.back());
    }
    t2.print();
    std::printf("\n");
  }

  JsonWriter j;
  j.field("bench", "load_harness");
  j.field("smoke", smoke);
  j.begin_object("config");
  j.field("seed", lc.seed);
  j.field("iods", iods);
  j.field("metadata_shards", shards);
  j.field("population", lc.population);
  j.field("file_bytes", lc.file_bytes);
  j.field("zipf_theta", lc.zipf_theta, 3);
  j.field("ramp_ms", lc.ramp.as_ms(), 3);
  j.field("measure_ms", lc.measure.as_ms(), 3);
  j.field("interval_ms", lc.interval.as_ms(), 3);
  j.end_object();
  j.begin_array("points");
  for (const Point& pt : points) json_point(j, pt);
  j.end_array();
  j.begin_array("iod_points");
  for (const Point& pt : iod_points) json_point(j, pt);
  j.end_array();
  j.write_file("BENCH_load.json");
}

}  // namespace
}  // namespace pvfsib::bench

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  pvfsib::bench::run(smoke);
  return 0;
}
