// Closed-loop scaling benchmark: the src/load workload engine driving an
// increasing number of simulated clients against a fixed cluster to find
// the saturation knee. Each point stands up a fresh cluster, runs the
// seeded op-mix state machines (Zipf-skewed reads/writes, open/stat
// metadata traffic, create/remove churn) through ramp -> measure -> drain,
// and reports saturation throughput, p50/p99/p999 latency, and the Jain
// fairness index over per-client goodput. Below the knee, doubling the
// clients doubles the ops; past it, throughput is flat and every extra
// client shows up as tail latency instead.
//
// A second (non-smoke) sweep holds the client count at the saturating
// point and scales the iod count, showing the knee move with server
// capacity — the standing yardstick for iod-scheduler / caching / RDMA
// fast-path work, tracked across PRs via machine-readable BENCH_load.json.
// Identical seeds reproduce the JSON bit-for-bit.
#include <cstring>

#include "bench_common.h"
#include "load/load_engine.h"

namespace pvfsib::bench {
namespace {

struct Point {
  u32 clients = 0;
  u32 iods = 0;
  load::LoadSummary sum;
  // Set on --faults points only: which disturbance ran under the load
  // ("crash_flip" or "migration"), whether the scrubber was on, and how
  // many shard migrations completed.
  const char* fault = nullptr;
  int scrub = -1;
  i64 migrations = 0;
};

load::LoadConfig base_config(bool smoke) {
  load::LoadConfig lc;
  lc.seed = 42;
  lc.population = smoke ? 8 : 32;
  lc.file_bytes = smoke ? 64 * kKiB : 256 * kKiB;
  lc.io_min_bytes = 4 * kKiB;
  lc.io_max_bytes = smoke ? 16 * kKiB : 64 * kKiB;
  lc.ramp = smoke ? Duration::ms(5.0) : Duration::ms(20.0);
  lc.measure = smoke ? Duration::ms(40.0) : Duration::ms(200.0);
  lc.start_jitter = smoke ? Duration::ms(2.0) : Duration::ms(5.0);
  lc.interval = smoke ? Duration::ms(10.0) : Duration::ms(20.0);
  return lc;
}

Point run_point(u32 clients, u32 iods, u32 shards, const load::LoadConfig& lc) {
  ModelConfig cfg = ModelConfig::paper_defaults();
  // Metadata service queues on a real per-manager CPU so the metadata leg
  // of the mix saturates honestly alongside the iods.
  cfg.pvfs.meta_cpu_queue = true;
  pvfs::Cluster cluster(cfg, pvfs::Cluster::Topology{}
                                 .clients(clients)
                                 .iods(iods)
                                 .metadata_shards(shards));
  load::LoadEngine engine(cluster, lc);
  Point pt;
  pt.clients = clients;
  pt.iods = iods;
  pt.sum = engine.run();
  return pt;
}

std::string us(Duration d) { return fmt(d.as_us(), 1); }

void table_row(Table& t, const Point& pt) {
  const load::LoadSummary& s = pt.sum;
  t.row({fmt_int(pt.clients), fmt_int(pt.iods), fmt_int(s.ops),
         fmt(s.ops_per_s / 1000.0, 1), fmt(s.mib_per_s, 1),
         us(s.latency.quantile(0.50)), us(s.latency.quantile(0.99)),
         us(s.latency.quantile(0.999)), fmt(s.fairness, 3),
         s.ok ? "ok" : "FAILED"});
}

// pt.scrub < 0: plain sweep point; 0/1: a --faults point, with the flag.
void json_point(JsonWriter& j, const Point& pt) {
  const load::LoadSummary& s = pt.sum;
  j.begin_object();
  j.field("clients", pt.clients);
  j.field("iods", pt.iods);
  if (pt.scrub >= 0) j.field("scrub", pt.scrub != 0);
  if (pt.fault != nullptr) {
    j.field("fault", pt.fault);
    j.field("migrations", pt.migrations);
  }
  j.field("ok", s.ok);
  j.field("ops", s.ops);
  j.field("data_ops", s.data_ops);
  j.field("meta_ops", s.meta_ops);
  j.field("bytes", s.bytes);
  j.field("ops_per_s", s.ops_per_s, 3);
  j.field("mib_per_s", s.mib_per_s, 3);
  j.field("p50_us", s.latency.quantile(0.50).as_us(), 3);
  j.field("p99_us", s.latency.quantile(0.99).as_us(), 3);
  j.field("p999_us", s.latency.quantile(0.999).as_us(), 3);
  j.field("mean_us", s.latency.mean().as_us(), 3);
  j.field("max_us", s.latency.max().as_us(), 3);
  j.field("data_p99_us", s.data_latency.quantile(0.99).as_us(), 3);
  j.field("meta_p99_us", s.meta_latency.quantile(0.99).as_us(), 3);
  j.field("fairness", s.fairness, 6);
  j.begin_array("intervals");
  for (const load::LoadSummary::Interval& w : s.intervals) {
    j.begin_object();
    j.field("start_ms", w.start_ms, 3);
    j.field("end_ms", w.end_ms, 3);
    j.field("ops", w.ops);
    j.field("bytes", w.bytes);
    j.field("pvfs_requests", w.pvfs_requests);
    j.end_object();
  }
  j.end_array();
  j.end_object();
}

// --- Client-cache re-read sweep (--cache) ----------------------------------

struct CachePoint {
  u64 cache_bytes = 0;  // 0 = uncached baseline, same seed
  load::LoadSummary sum;
  i64 hits = 0;
  i64 misses = 0;
  i64 invalidations = 0;
  i64 lease_revokes = 0;
  i64 wire_requests = 0;

  double hit_rate() const {
    const i64 total = hits + misses;
    return total > 0 ? static_cast<double>(hits) / static_cast<double>(total)
                     : 0.0;
  }
};

// One closed-loop point with the client caching tier at `cache_bytes` of
// data capacity (0 = cache off: the uncached baseline every other point is
// compared against). The workload pins data ops to slot 0
// (cacheable_reads), so Zipf re-reads of a popular file repeat the same
// range — the traffic shape the attribute and data caches exist for.
CachePoint run_cache_point(u32 clients, u32 iods, u32 shards,
                           const load::LoadConfig& lc, u64 cache_bytes) {
  ModelConfig cfg = ModelConfig::paper_defaults();
  cfg.pvfs.meta_cpu_queue = true;
  if (cache_bytes > 0) {
    cfg.cache.enabled = true;
    cfg.cache.leases = true;
    cfg.cache.data_capacity = cache_bytes;
  }
  pvfs::Cluster cluster(cfg, pvfs::Cluster::Topology{}
                                 .clients(clients)
                                 .iods(iods)
                                 .metadata_shards(shards));
  CachePoint pt;
  pt.cache_bytes = cache_bytes;
  load::LoadEngine engine(cluster, lc);
  pt.sum = engine.run();
  pt.hits = cluster.stats().get(stat::kPvfsCacheHits);
  pt.misses = cluster.stats().get(stat::kPvfsCacheMisses);
  pt.invalidations = cluster.stats().get(stat::kPvfsCacheInvalidations);
  pt.lease_revokes = cluster.stats().get(stat::kPvfsCacheLeaseRevokes);
  pt.wire_requests = cluster.stats().get(stat::kPvfsRequest);
  return pt;
}

// --- The same closed loop under fire (--faults) ---------------------------

// One sweep point with a seeded fault schedule landing mid-measure: iod 0
// crashes for 10 ms at the midpoint, and a burst of bit flips lands at
// rest on iod 1 right after the window closes (one chain member only —
// the recoverable regime). Factor 2 with write quorum 1 keeps every op
// completing through the outage (reads fail over, writes settle on the
// survivor), so the damage shows up where it belongs: in the tail. Run
// once with the scrubber off (every read of a rotten stripe re-pays the
// corrupt failover) and once with it on (the sweep heals the copies and
// the tail recovers).
Point run_fault_point(u32 clients, u32 iods, u32 shards,
                      const load::LoadConfig& lc, bool scrub) {
  ModelConfig cfg = ModelConfig::paper_defaults();
  cfg.pvfs.meta_cpu_queue = true;
  cfg.replication.factor = 2;
  cfg.replication.write_quorum = 1;
  cfg.replication.resync = true;
  cfg.replication.scrub = scrub;
  cfg.fault.seed = 42;
  cfg.fault.round_timeout = Duration::ms(2.0);
  cfg.fault.backoff_base = Duration::us(100.0);
  cfg.fault.backoff_cap = Duration::ms(2.0);
  cfg.fault.max_retries = 25;
  // Setup (population create + preload) runs before the load timeline
  // starts, so "mid-measure" in absolute time is approximate — a few ms of
  // setup drift moves the window within the measure interval, not out of
  // it.
  const TimePoint mid =
      TimePoint::origin() + lc.ramp + (lc.measure / 2);
  cfg.fault.schedule.push_back(
      FaultEvent{FaultKind::kIodCrash, mid, /*target=*/0, Duration::ms(10.0)});
  for (int k = 0; k < 4; ++k) {
    cfg.fault.schedule.push_back(FaultEvent{
        FaultKind::kBitFlip,
        mid + Duration::ms(12.0) + Duration::ms(1.0) * static_cast<i64>(k),
        /*target=*/1, Duration::zero()});
  }

  pvfs::Cluster cluster(cfg, pvfs::Cluster::Topology{}
                                 .clients(clients)
                                 .iods(iods)
                                 .metadata_shards(shards));
  cluster.start_scrub(TimePoint::origin() + lc.ramp + lc.measure +
                      Duration::ms(100.0));
  load::LoadEngine engine(cluster, lc);
  Point pt;
  pt.clients = clients;
  pt.iods = iods;
  pt.sum = engine.run();
  pt.fault = "crash_flip";
  pt.scrub = scrub ? 1 : 0;
  return pt;
}

// A fault point where the disturbance is the control plane itself: shard 0
// migrates to a fresh manager at the measure midpoint while the closed loop
// runs. Every client that cached the old map eats a kWrongShard redirect
// and re-refreshes; the op mix must keep completing through the stream, the
// cutover fence, and the zombie-source drain. Works at any shard count —
// at K=1 the whole metadata plane changes hands mid-measure.
Point run_migration_fault_point(u32 clients, u32 iods, u32 shards,
                                const load::LoadConfig& lc) {
  ModelConfig cfg = ModelConfig::paper_defaults();
  cfg.pvfs.meta_cpu_queue = true;
  cfg.replication.factor = 2;
  cfg.replication.write_quorum = 1;
  cfg.replication.resync = true;
  cfg.fault.seed = 42;
  cfg.fault.round_timeout = Duration::ms(2.0);
  cfg.fault.backoff_base = Duration::us(100.0);
  cfg.fault.backoff_cap = Duration::ms(2.0);
  cfg.fault.max_retries = 25;
  // Small rounds so the stream overlaps a real slice of the measure window
  // instead of finishing inside one event.
  cfg.migration.round_bytes = 4 * kKiB;
  cfg.migration.stream_bandwidth = 50.0;

  pvfs::Cluster cluster(cfg, pvfs::Cluster::Topology{}
                                 .clients(clients)
                                 .iods(iods)
                                 .metadata_shards(shards));
  const TimePoint mid = TimePoint::origin() + lc.ramp + (lc.measure / 2);
  cluster.engine().schedule_at(
      mid, [&cluster, mid] { cluster.migrate_shard(0, mid); });
  load::LoadEngine engine(cluster, lc);
  Point pt;
  pt.clients = clients;
  pt.iods = iods;
  pt.sum = engine.run();
  pt.fault = "migration";
  pt.scrub = 0;
  pt.migrations = cluster.stats().get(stat::kPvfsShardMigrations);
  return pt;
}

void run(bool smoke, bool faults, bool cache) {
  const load::LoadConfig lc = base_config(smoke);
  const std::vector<u32> client_counts =
      smoke ? std::vector<u32>{2, 8} : std::vector<u32>{4, 16, 64, 192};
  const u32 iods = 4;
  const u32 shards = smoke ? 1 : 2;

  header("Closed-loop load scaling: throughput and tail latency vs clients",
         fmt_int(iods) + " iods, " + fmt_int(shards) +
             " metadata shard(s); each client runs a seeded op-mix state "
             "machine\n(40% read / 25% write / 15% open / 10% stat / 10% "
             "create-remove churn,\nZipf(0.99) file popularity, log-uniform "
             "4K..64K ops, half list I/O) in a\nclosed loop: ramp " +
             fmt(lc.ramp.as_ms(), 0) + " ms, measure " +
             fmt(lc.measure.as_ms(), 0) +
             " ms, then drain. Past the saturation\nknee, extra clients buy "
             "tail latency, not ops");

  Table t({"clients", "iods", "ops", "kop/s", "MiB/s", "p50 us", "p99 us",
           "p999 us", "fairness", "status"});
  std::vector<Point> points;
  for (u32 n : client_counts) {
    points.push_back(run_point(n, iods, shards, lc));
    table_row(t, points.back());
  }
  t.print();
  std::printf("\n");

  // Server-capacity sweep: the knee should move with the iod count.
  std::vector<Point> iod_points;
  if (!smoke) {
    const u32 at_clients = client_counts.back();
    header("Closed-loop load scaling: saturated clients vs iod count",
           fmt_int(at_clients) +
               " clients (past the knee above); more iods move the "
               "saturation\nceiling up until the metadata plane or the "
               "fabric takes over as the bottleneck");
    Table t2({"clients", "iods", "ops", "kop/s", "MiB/s", "p50 us", "p99 us",
              "p999 us", "fairness", "status"});
    for (u32 k : {2u, 4u, 8u}) {
      iod_points.push_back(run_point(at_clients, k, shards, lc));
      table_row(t2, iod_points.back());
    }
    t2.print();
    std::printf("\n");
  }

  std::vector<Point> fault_points;
  if (faults) {
    const u32 at_clients = smoke ? client_counts.back() : client_counts[1];
    header("Closed-loop load under fire: iod crash + corruption burst "
           "mid-measure",
           fmt_int(at_clients) +
               " clients, factor 2, write quorum 1. iod 0 crashes for 10 ms "
               "at the measure\nmidpoint; 4 bit flips land at rest on iod 1 "
               "right after. Every op still\ncompletes (reads fail over, "
               "writes settle on the survivor) — the damage is\nall tail. "
               "Scrubber off: each read of a rotten stripe re-pays the "
               "corrupt\nfailover. Scrubber on: the sweep heals the copies "
               "and the tail recovers.\nThird point: shard 0 of the "
               "metadata plane migrates to a fresh manager at the\nmeasure "
               "midpoint — redirects and the cutover fence land in the "
               "tail, not in\nfailed ops");
    Table tf({"clients", "iods", "fault", "scrub", "ops", "kop/s", "MiB/s",
              "p50 us", "p99 us", "p999 us", "fairness", "status"});
    auto fault_row = [&](const Point& pt) {
      const load::LoadSummary& s = pt.sum;
      tf.row({fmt_int(pt.clients), fmt_int(pt.iods), pt.fault,
              pt.scrub != 0 ? "on" : "off", fmt_int(s.ops),
              fmt(s.ops_per_s / 1000.0, 1), fmt(s.mib_per_s, 1),
              us(s.latency.quantile(0.50)), us(s.latency.quantile(0.99)),
              us(s.latency.quantile(0.999)), fmt(s.fairness, 3),
              s.ok ? "ok" : "FAILED"});
    };
    for (bool scrub : {false, true}) {
      fault_points.push_back(
          run_fault_point(at_clients, iods, shards, lc, scrub));
      fault_row(fault_points.back());
    }
    // Third point: the disturbance is the metadata plane migrating out
    // from under the closed loop (shard 0 changes owners mid-measure).
    fault_points.push_back(
        run_migration_fault_point(at_clients, iods, shards, lc));
    fault_row(fault_points.back());
    tf.print();
    std::printf("\n");
  }

  // Cache sweep (--cache): the same seeded closed loop, read-leaning and
  // with data ops pinned to each file's slot 0 so Zipf re-reads repeat the
  // same byte ranges, run uncached once and then at growing client-cache
  // data capacities. Hits complete without touching the wire, so the hit
  // rate shows up directly as throughput and as a drop in pvfs.requests.
  std::vector<CachePoint> cache_points;
  load::LoadConfig cache_lc = lc;
  if (cache) {
    cache_lc.cacheable_reads = true;
    cache_lc.mix.read = 0.60;
    cache_lc.mix.write = 0.10;
    cache_lc.mix.open = 0.15;
    cache_lc.mix.stat = 0.10;
    cache_lc.mix.churn = 0.05;
    const u32 at_clients = smoke ? client_counts.back() : client_counts[1];
    const std::vector<u64> capacities =
        smoke ? std::vector<u64>{0, 64 * kKiB, 256 * kKiB, 1 * kMiB}
              : std::vector<u64>{0, 256 * kKiB, 1 * kMiB, 4 * kMiB};
    header("Client caching tier: Zipf re-read sweep vs cache capacity",
           fmt_int(at_clients) +
               " clients, read-leaning mix (60% read / 10% write), data ops "
               "pinned to\nslot 0 so popular files re-read the same range. "
               "Row one is the uncached\nbaseline at the same seed; growing "
               "the per-client data cache turns Zipf\nre-reads into local "
               "hits — fewer wire requests, more ops");
    Table tc({"cache KiB", "hit rate", "ops", "kop/s", "MiB/s", "p50 us",
              "p99 us", "wire reqs", "status"});
    for (u64 cap : capacities) {
      cache_points.push_back(
          run_cache_point(at_clients, iods, shards, cache_lc, cap));
      const CachePoint& cp = cache_points.back();
      const load::LoadSummary& s = cp.sum;
      tc.row({cp.cache_bytes == 0 ? std::string("off")
                                  : fmt_int(cp.cache_bytes / kKiB),
              fmt(cp.hit_rate(), 3), fmt_int(s.ops),
              fmt(s.ops_per_s / 1000.0, 1), fmt(s.mib_per_s, 1),
              us(s.latency.quantile(0.50)), us(s.latency.quantile(0.99)),
              fmt_int(cp.wire_requests), s.ok ? "ok" : "FAILED"});
    }
    tc.print();
    std::printf("\n");
  }

  JsonWriter j;
  j.field("bench", "load_harness");
  j.field("smoke", smoke);
  j.begin_object("config");
  j.field("seed", lc.seed);
  j.field("iods", iods);
  j.field("metadata_shards", shards);
  j.field("population", lc.population);
  j.field("file_bytes", lc.file_bytes);
  j.field("zipf_theta", lc.zipf_theta, 3);
  j.field("ramp_ms", lc.ramp.as_ms(), 3);
  j.field("measure_ms", lc.measure.as_ms(), 3);
  j.field("interval_ms", lc.interval.as_ms(), 3);
  j.end_object();
  j.begin_array("points");
  for (const Point& pt : points) json_point(j, pt);
  j.end_array();
  j.begin_array("iod_points");
  for (const Point& pt : iod_points) json_point(j, pt);
  j.end_array();
  if (faults) {
    j.begin_array("fault_points");
    for (const Point& pt : fault_points) json_point(j, pt);
    j.end_array();
  }
  if (cache) {
    j.begin_object("cache");
    j.field("clients", smoke ? client_counts.back() : client_counts[1]);
    j.field("iods", iods);
    j.field("zipf_theta", cache_lc.zipf_theta, 3);
    j.begin_array("points");
    for (const CachePoint& cp : cache_points) {
      const load::LoadSummary& s = cp.sum;
      j.begin_object();
      j.field("cache_bytes", cp.cache_bytes);
      j.field("ok", s.ok);
      j.field("hit_rate", cp.hit_rate(), 6);
      j.field("hits", cp.hits);
      j.field("misses", cp.misses);
      j.field("invalidations", cp.invalidations);
      j.field("lease_revokes", cp.lease_revokes);
      j.field("wire_requests", cp.wire_requests);
      j.field("ops", s.ops);
      j.field("bytes", s.bytes);
      j.field("ops_per_s", s.ops_per_s, 3);
      j.field("mib_per_s", s.mib_per_s, 3);
      j.field("p50_us", s.latency.quantile(0.50).as_us(), 3);
      j.field("p99_us", s.latency.quantile(0.99).as_us(), 3);
      j.end_object();
    }
    j.end_array();
    j.end_object();
  }
  j.write_file("BENCH_load.json");
}

}  // namespace
}  // namespace pvfsib::bench

int main(int argc, char** argv) {
  bool smoke = false;
  bool faults = false;
  bool cache = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--faults") == 0) faults = true;
    if (std::strcmp(argv[i], "--cache") == 0) cache = true;
  }
  pvfsib::bench::run(smoke, faults, cache);
  return 0;
}
