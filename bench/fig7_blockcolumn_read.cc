// Figure 7: noncontiguous READ with the block-column file view, array size
// 512..8192, four methods, with the data in cache ("read cached") and with
// cold iod caches ("read without cache").
//
// Expected shape: ADS helps at small N; ROMIO DS transfers the whole array
// so it falls off at large N in the cached case but stays competitive
// uncached (disk time dominates) until ~2048; list I/O with ADS declines to
// sieve at large N and accesses pieces separately.
#include "bench_common.h"

namespace pvfsib::bench {
namespace {

double bc_read(u64 n, mpiio::IoMethod method, bool cold) {
  pvfs::Cluster cluster(ModelConfig::paper_defaults(), 4, 4);
  return run_block_column(cluster, n, method, /*is_write=*/false,
                          /*sync=*/false, cold)
      .mbps;
}

void run() {
  header("Figure 7: Block-column READ bandwidth by method",
         "4 procs x 4 iods, each reads 1-in-4 units of an N x N int array; "
         "aggregate MB/s\n(paper shape: ADS helps small N; ROMIO-DS "
         "competitive uncached until ~2048 then falls off)");

  for (bool cold : {false, true}) {
    std::printf("  -- read %s --\n", cold ? "without cache" : "cached");
    Table t({"N", "accesses/proc", "piece", "Multiple", "ROMIO-DS", "List",
             "List+ADS"});
    for (u64 n : {512, 1024, 2048, 4096, 8192}) {
      t.row({fmt_int(static_cast<i64>(n)), fmt_int(static_cast<i64>(n)),
             std::to_string(n) + " B",
             fmt(bc_read(n, mpiio::IoMethod::kMultiple, cold), 1),
             fmt(bc_read(n, mpiio::IoMethod::kDataSieving, cold), 1),
             fmt(bc_read(n, mpiio::IoMethod::kListIo, cold), 1),
             fmt(bc_read(n, mpiio::IoMethod::kListIoAds, cold), 1)});
    }
    t.print();
    std::printf("\n");
  }
}

}  // namespace
}  // namespace pvfsib::bench

int main() {
  pvfsib::bench::run();
  return 0;
}
