// Figure 3: bandwidth of noncontiguous transfer schemes when sending one
// process's 2-D subarray (block distribution over 4 processes) from a
// compute node to an I/O node.
//
// Series (as in the paper):
//   contiguous, no reg    upper bound: one registered contiguous buffer
//   multiple, no reg      one RDMA per row, warm registration cache
//   gather, one reg       RDMA gather + Optimistic Group Registration
//   gather, multiple reg  RDMA gather, every row registered individually
//   pack, no reg          pack into a pre-registered bounce buffer
//   pack, reg             pack into a freshly registered bounce buffer
//
// Expected shape: gather/one-reg tracks contiguous for large arrays; pack
// wins for small arrays; per-row registration collapses.
#include "bench_common.h"

#include "core/transfer.h"
#include "workloads/subarray.h"

namespace pvfsib::bench {
namespace {

struct Rig {
  explicit Rig(u64 bounce_bytes, u64 staging_bytes)
      : cfg(ModelConfig::paper_defaults()),
        client("client", client_as, cfg.reg, &stats),
        server("server", server_as, cfg.reg, &stats),
        cache(client),
        registrar(cache, cfg.os, core::OgrConfig{}, &stats),
        fabric(cfg.net, &stats),
        xfer(fabric, cfg.mem) {
    ep.hca = &client;
    ep.cache = &cache;
    ep.registrar = &registrar;
    ep.bounce_size = bounce_bytes;
    ep.bounce_addr = client_as.alloc(bounce_bytes);
    ep.bounce_key = client.register_memory(ep.bounce_addr, bounce_bytes).key;
    staging.hca = &server;
    staging.size = staging_bytes;
    staging.addr = server_as.alloc(staging_bytes);
    staging.rkey = server.register_memory(staging.addr, staging_bytes).key;
  }

  ModelConfig cfg;
  Stats stats;
  vmem::AddressSpace client_as, server_as;
  ib::Hca client, server;
  ib::MrCache cache;
  core::GroupRegistrar registrar;
  ib::Fabric fabric;
  core::NoncontigTransfer xfer;
  core::TransferEndpoint ep;
  core::StagingBuffer staging;
};

double run_case(u64 n, const core::TransferPolicy& policy, bool warm_cache,
                bool contiguous) {
  workloads::SubarrayLayout l;
  l.n = n;
  // The paper packs the whole subarray in one buffer; match that.
  Rig rig(l.sub_bytes(), l.sub_bytes());
  const u64 base = l.alloc_array(rig.client_as);
  core::MemSegmentList segs;
  if (contiguous) {
    segs = {{base, l.sub_bytes()}};
  } else {
    segs = l.subarray_rows(base, 0, 0);
  }
  if (warm_cache) {
    core::OgrOutcome warm = rig.registrar.acquire(segs, policy.reg_strategy);
    if (!warm.ok()) return 0.0;
    rig.registrar.release(warm);
    rig.client.nic().reset();
    rig.server.nic().reset();
  }
  core::TransferOutcome out = rig.xfer.push(rig.ep, segs, rig.staging,
                                            TimePoint::origin(), policy);
  if (!out.ok()) {
    std::fprintf(stderr, "fig3: %s\n", out.status.to_string().c_str());
    return 0.0;
  }
  return bandwidth_mib(out.bytes, out.complete - TimePoint::origin());
}

void run() {
  header("Figure 3: Bandwidth of noncontiguous transfer schemes",
         "one subarray (N/2 x N/2 ints of an N x N array) compute -> I/O "
         "node; MB/s\n(paper shape: gather/one-reg ~= contiguous at large N; "
         "pack best at small N;\nper-row registration collapses)");

  core::TransferPolicy contiguous_pol;
  contiguous_pol.scheme = core::XferScheme::kRdmaGatherScatter;

  core::TransferPolicy gather_ogr = contiguous_pol;  // OGR is the default
  core::TransferPolicy gather_indiv = contiguous_pol;
  gather_indiv.reg_strategy = core::RegStrategy::kIndividual;
  core::TransferPolicy multiple;
  multiple.scheme = core::XferScheme::kMultipleMessage;
  core::TransferPolicy pack_noreg;
  pack_noreg.scheme = core::XferScheme::kPackUnpack;
  core::TransferPolicy pack_reg = pack_noreg;
  pack_reg.pack_preregistered = false;

  Table t({"array N", "subarray", "contig,noreg", "multiple,noreg",
           "gather,one reg", "gather,multi reg", "pack,noreg", "pack,reg"});
  for (u64 n : {256, 512, 1024, 2048, 4096, 8192}) {
    workloads::SubarrayLayout l;
    l.n = n;
    std::string size = std::to_string(l.sub_bytes() / kKiB) + " KiB";
    t.row({fmt_int(static_cast<i64>(n)), size,
           fmt(run_case(n, contiguous_pol, true, true), 0),
           fmt(run_case(n, multiple, true, false), 0),
           fmt(run_case(n, gather_ogr, false, false), 0),
           fmt(run_case(n, gather_indiv, false, false), 0),
           fmt(run_case(n, pack_noreg, false, false), 0),
           fmt(run_case(n, pack_reg, false, false), 0)});
  }
  t.print();
}

}  // namespace
}  // namespace pvfsib::bench

int main() {
  pvfsib::bench::run();
  return 0;
}
