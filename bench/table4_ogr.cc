// Table 4: impact of Optimistic Group Registration on PVFS list I/O write
// performance. A 2048x2048 int array distributed 2x2; each of 4 processes
// writes its subarray (1024 noncontiguous 4 KiB rows) contiguously to
// non-overlapping file offsets.
//
// Cases (as in the paper):
//   Ideal   all registrations already cached
//   Indiv.  one registration per row buffer
//   OGR     optimistic group registration (rows group into one region)
//   OGR+Q   1024 buffers from several arrays with 10 unmapped holes:
//           optimism fails, the OS hole query recovers (11 registrations)
//
// Plus an ablation the paper mentions in passing: OGR+Q using the slow
// /proc/$pid/maps query instead of the custom syscall.
#include "bench_common.h"

#include "workloads/subarray.h"

namespace pvfsib::bench {
namespace {

enum class Case { kIdeal, kIndividual, kOgr, kOgrQ, kAppHint };

struct CaseResult {
  double mbps_nosync = 0;
  double mbps_sync = 0;
  i64 registrations = 0;
  double reg_overhead_us = 0;
};

// Build each client's request. For kOgrQ* the buffers come from several
// allocations with unmapped holes between them.
core::ListIoRequest build_request(pvfs::Client& c, Case kase, u32 rank,
                                  Extent* hint = nullptr) {
  core::ListIoRequest req;
  if (kase == Case::kOgrQ) {
    const u64 buffers = 1024;
    const u64 buf_bytes = 4 * kKiB;
    for (u64 i = 0; i < buffers; ++i) {
      // 10 holes: every ~93 buffers the next buffer comes after an
      // *unmapped* page (a different malloc arena), which defeats the
      // optimistic registration; between buffers there is mapped
      // application data (they come "from several arrays").
      if (i > 0 && i % 94 == 0) c.memory().skip(kPageSize);
      req.mem.push_back({c.memory().alloc(buf_bytes), buf_bytes});
      c.memory().alloc(buf_bytes);  // interleaved non-I/O data (mapped)
    }
    req.file = {{rank * buffers * buf_bytes, buffers * buf_bytes}};
    return req;
  }
  workloads::SubarrayLayout l;
  l.n = 2048;
  const u64 base = l.alloc_array(c.memory());
  req.mem = l.subarray_rows(base, rank / 2, rank % 2);
  req.file = l.contiguous_file_extents(rank / 2, rank % 2);
  if (kase == Case::kAppHint && hint != nullptr) {
    // The application declares the whole array it malloc'd.
    *hint = Extent{base, l.array_bytes()};
  }
  return req;
}

CaseResult run_case(Case kase) {
  CaseResult out;
  for (bool sync : {false, true}) {
    pvfs::Cluster cluster(ModelConfig::paper_defaults(), 4, 4);
    std::vector<core::ListIoRequest> reqs;
    std::vector<pvfs::OpenFile> files;
    std::vector<Extent> hints(4);
    for (u32 r = 0; r < 4; ++r) {
      pvfs::Client& c = cluster.client(r);
      reqs.push_back(build_request(c, kase, r, &hints[r]));
      files.push_back(r == 0 ? c.create("/t4").value()
                             : c.open("/t4").value());
    }
    pvfs::IoOptions opts;
    opts.sync = sync;
    opts.policy.scheme = core::XferScheme::kRdmaGatherScatter;
    if (kase == Case::kIndividual) {
      opts.policy.reg_strategy = core::RegStrategy::kIndividual;
    }

    auto launch = [&] {
      std::vector<pvfs::IoResult> results(4);
      int pending = 4;
      for (u32 r = 0; r < 4; ++r) {
        pvfs::IoOptions o = opts;
        if (kase == Case::kAppHint) {
          o.allocation_hint_addr = hints[r].offset;
          o.allocation_hint_len = hints[r].length;
        }
        cluster.client(r)
            .submit({pvfs::IoDir::kWrite, files[r], reqs[r], o,
                     cluster.engine().now()})
            .on_complete([&results, &pending, r](pvfs::IoResult res) {
              results[r] = res;
              --pending;
            });
      }
      cluster.engine().run_until([&] { return pending == 0; });
      return summarize(results);
    };

    if (kase == Case::kIdeal) {
      launch();  // warm every registration cache
    }
    const Stats before = cluster.stats();
    RunOutcome run = launch();
    const Stats d = cluster.stats().diff(before);
    if (!sync) {
      out.mbps_nosync = run.mbps;
      // Per-process, as the paper reports them.
      out.registrations = d.get(stat::kMrRegister) / 4;
      out.reg_overhead_us =
          static_cast<double>(d.get("ogr.prereg_ns")) / 1e3 / 4.0;
    } else {
      out.mbps_sync = run.mbps;
    }
  }
  return out;
}

void run() {
  header("Table 4: Optimistic Group Registration impact",
         "4 processes each write a 4 MiB subarray (1024 x 4 KiB rows) "
         "contiguously; aggregate MB/s\n(paper: Ideal 1010/82, Indiv. "
         "424/73, OGR 950/~82, OGR+Q 879/~82; reg counts 0/1024/1/11)");

  Table t({"case", "no sync (MB/s)", "sync (MB/s)", "# reg", "overhead (us)"});
  const char* names[] = {"Ideal", "Indiv.", "OGR", "OGR+Q", "App-hint"};
  const Case cases[] = {Case::kIdeal, Case::kIndividual, Case::kOgr,
                        Case::kOgrQ, Case::kAppHint};
  for (int i = 0; i < 5; ++i) {
    const CaseResult r = run_case(cases[i]);
    t.row({names[i], fmt(r.mbps_nosync, 0), fmt(r.mbps_sync, 0),
           fmt_int(r.registrations), fmt(r.reg_overhead_us, 0)});
  }
  t.print();

  // Ablation: the OS hole-query mechanism (Section 4.3): the paper's custom
  // syscall vs reading /proc/$pid/maps.
  const OsParams os;
  std::printf(
      "\n  hole-query ablation: custom syscall ~%s for ~1000 extents vs "
      "/proc read %s\n",
      os.holequery_cost(1000).to_string().c_str(),
      os.procfs_query.to_string().c_str());
}

}  // namespace
}  // namespace pvfsib::bench

int main() {
  pvfsib::bench::run();
  return 0;
}
