// Ablation: sieve/staging buffer size.
//
// ADS windows are bounded by the iod staging buffer (4 MiB default). Too
// small and a request fragments into many windows (more syscalls, more
// round trips per round); the default sits on the plateau. The buffer also
// bounds the client's round size, so it moves request counts too.
#include "bench_common.h"

namespace pvfsib::bench {
namespace {

void run() {
  header("Ablation: iod staging / sieve buffer size",
         "block-column N=1024 (dense small pieces), List I/O with ADS; "
         "aggregate MB/s");

  Table t({"buffer", "write (MB/s)", "read cached (MB/s)", "requests",
           "disk ops"});
  for (u64 buf : {64 * kKiB, 256 * kKiB, 1 * kMiB, 4 * kMiB, 16 * kMiB}) {
    ModelConfig cfg = ModelConfig::paper_defaults();
    cfg.pvfs.staging_buffer = buf;

    pvfs::Cluster wcluster(cfg, 4, 4);
    const Stats before = wcluster.stats();
    const RunOutcome w = run_block_column(wcluster, 1024,
                                          mpiio::IoMethod::kListIoAds,
                                          /*is_write=*/true, /*sync=*/false,
                                          /*cold=*/false);
    const Stats d = wcluster.stats().diff(before);

    pvfs::Cluster rcluster(cfg, 4, 4);
    const RunOutcome r = run_block_column(rcluster, 1024,
                                          mpiio::IoMethod::kListIoAds,
                                          /*is_write=*/false, /*sync=*/false,
                                          /*cold=*/false);
    t.row({std::to_string(buf / kKiB) + " KiB", fmt(w.mbps, 1), fmt(r.mbps, 1),
           fmt_int(d.get(stat::kPvfsRequest)),
           fmt_int(d.get(stat::kDiskRead) + d.get(stat::kDiskWrite))});
  }
  t.print();
}

}  // namespace
}  // namespace pvfsib::bench

int main() {
  pvfsib::bench::run();
  return 0;
}
