// Scaling sweep: aggregate list I/O bandwidth versus the number of I/O
// servers (1..8, the paper's testbed size), for contiguous and
// noncontiguous access. PVFS's core promise is striping parallelism; this
// shows where the simulated cluster saturates (client NICs for cached
// access, media for synced writes).
//
// --pipeline-depth W widens the per-iod outstanding-round window
// (ModelConfig::pipeline_depth); at W > 1 the table is followed by the
// pipelining counters so the wire/disk overlap is visible.
#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "bench_common.h"

namespace pvfsib::bench {
namespace {

u32 g_pipeline_depth = 1;

struct ScaleOutcome {
  RunOutcome run;
  i64 inflight_max = 0;
  i64 stalls = 0;
};

ScaleOutcome run_case(u32 iods, bool noncontig, bool sync) {
  ModelConfig cfg = ModelConfig::paper_defaults();
  cfg.pipeline_depth = g_pipeline_depth;
  pvfs::Cluster cluster(cfg, 4, iods);
  std::vector<pvfs::OpenFile> files;
  std::vector<core::ListIoRequest> reqs;
  const u64 share = 8 * kMiB;
  for (u32 r = 0; r < 4; ++r) {
    pvfs::Client& c = cluster.client(r);
    files.push_back(r == 0 ? c.create("/scale").value()
                           : c.open("/scale").value());
    core::ListIoRequest req;
    if (noncontig) {
      // 1 KiB of every 4 KiB within the rank's region.
      for (u64 off = 0; off < share * 4; off += 4 * kKiB) {
        req.file.push_back({r * 4 * share + off, kKiB});
      }
    } else {
      req.file.push_back({r * share, share});
    }
    const u64 total = total_length(req.file);
    req.mem = {{c.memory().alloc(total), total}};
    reqs.push_back(std::move(req));
  }
  std::vector<pvfs::IoResult> results(4);
  int pending = 4;
  for (u32 r = 0; r < 4; ++r) {
    pvfs::IoOptions opts;
    opts.sync = sync;
    cluster.client(r)
        .submit({pvfs::IoDir::kWrite, files[r], reqs[r], opts,
                 TimePoint::origin()})
        .on_complete([&results, &pending, r](pvfs::IoResult res) {
          results[r] = res;
          --pending;
        });
  }
  cluster.engine().run_until([&] { return pending == 0; });
  ScaleOutcome out;
  out.run = summarize(results);
  out.inflight_max = cluster.stats().get(stat::kPvfsRoundsInflightMax);
  out.stalls = cluster.stats().get(stat::kPvfsPipelineStalls);
  return out;
}

void run() {
  header("Scaling: aggregate write bandwidth vs I/O server count",
         "4 clients, 8 MiB per client; MB/s\n(cached writes saturate at the "
         "network, synced writes scale with media count)");

  i64 inflight_max = 0;
  i64 stalls = 0;
  Table t({"iods", "contig cached", "noncontig cached", "contig sync"});
  for (u32 iods : {1, 2, 4, 8}) {
    const ScaleOutcome contig = run_case(iods, false, false);
    const ScaleOutcome noncontig = run_case(iods, true, false);
    const ScaleOutcome synced = run_case(iods, false, true);
    t.row({fmt_int(iods), fmt(contig.run.mbps, 0),
           fmt(noncontig.run.mbps, 0), fmt(synced.run.mbps, 0)});
    for (const ScaleOutcome* o : {&contig, &noncontig, &synced}) {
      inflight_max = std::max(inflight_max, o->inflight_max);
      stalls += o->stalls;
    }
  }
  t.print();
  if (g_pipeline_depth > 1) {
    std::printf("pipeline depth %u: rounds_inflight_max=%lld stalls=%lld\n",
                g_pipeline_depth, static_cast<long long>(inflight_max),
                static_cast<long long>(stalls));
  }
}

}  // namespace
}  // namespace pvfsib::bench

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--pipeline-depth") == 0 && i + 1 < argc) {
      pvfsib::bench::g_pipeline_depth =
          static_cast<pvfsib::u32>(std::strtoul(argv[++i], nullptr, 10));
    }
  }
  pvfsib::bench::run();
  return 0;
}
