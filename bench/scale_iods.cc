// Scaling sweep: aggregate list I/O bandwidth versus the number of I/O
// servers (1..8, the paper's testbed size), for contiguous and
// noncontiguous access. PVFS's core promise is striping parallelism; this
// shows where the simulated cluster saturates (client NICs for cached
// access, media for synced writes).
#include "bench_common.h"

namespace pvfsib::bench {
namespace {

RunOutcome run_case(u32 iods, bool noncontig, bool sync) {
  pvfs::Cluster cluster(ModelConfig::paper_defaults(), 4, iods);
  std::vector<pvfs::OpenFile> files;
  std::vector<core::ListIoRequest> reqs;
  const u64 share = 8 * kMiB;
  for (u32 r = 0; r < 4; ++r) {
    pvfs::Client& c = cluster.client(r);
    files.push_back(r == 0 ? c.create("/scale").value()
                           : c.open("/scale").value());
    core::ListIoRequest req;
    if (noncontig) {
      // 1 KiB of every 4 KiB within the rank's region.
      for (u64 off = 0; off < share * 4; off += 4 * kKiB) {
        req.file.push_back({r * 4 * share + off, kKiB});
      }
    } else {
      req.file.push_back({r * share, share});
    }
    const u64 total = total_length(req.file);
    req.mem = {{c.memory().alloc(total), total}};
    reqs.push_back(std::move(req));
  }
  std::vector<pvfs::IoResult> results(4);
  int pending = 4;
  for (u32 r = 0; r < 4; ++r) {
    pvfs::IoOptions opts;
    opts.sync = sync;
    cluster.client(r).write_list_async(files[r], reqs[r], opts,
                                       TimePoint::origin(),
                                       [&results, &pending, r](auto res) {
                                         results[r] = res;
                                         --pending;
                                       });
  }
  cluster.engine().run_until([&] { return pending == 0; });
  return summarize(results);
}

void run() {
  header("Scaling: aggregate write bandwidth vs I/O server count",
         "4 clients, 8 MiB per client; MB/s\n(cached writes saturate at the "
         "network, synced writes scale with media count)");

  Table t({"iods", "contig cached", "noncontig cached", "contig sync"});
  for (u32 iods : {1, 2, 4, 8}) {
    t.row({fmt_int(iods), fmt(run_case(iods, false, false).mbps, 0),
           fmt(run_case(iods, true, false).mbps, 0),
           fmt(run_case(iods, false, true).mbps, 0)});
  }
  t.print();
}

}  // namespace
}  // namespace pvfsib::bench

int main() {
  pvfsib::bench::run();
  return 0;
}
