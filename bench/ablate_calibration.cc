// Calibration sensitivity: the paper does not publish the per-access file
// system overhead (O_r/O_w) or the media bandwidth half-size; we calibrated
// them once so the ADS write crossover lands at the paper's N=2048. This
// bench shows how the crossover (the largest block-column N whose pieces
// the model still sieves) moves as each constant sweeps — demonstrating
// the conclusion is robust: the crossover is insensitive to the syscall
// cost over its whole plausible range (the media curve's half-size is the
// dominant lever, and stays within one octave for 2x missets).
#include "bench_common.h"

#include "core/ads.h"

namespace pvfsib::bench {
namespace {

// Largest N in {512..16384} whose block-column write round still sieves.
u64 write_crossover(const DiskParams& disk, const FsParams& fs) {
  core::ActiveDataSieving ads(disk, fs, MemParams{});
  u64 last = 0;
  for (u64 n = 512; n <= 16384; n *= 2) {
    // One 128-pair round of the per-iod pattern: piece = n bytes, 1-in-4.
    ExtentList acc;
    for (u64 i = 0; i < 128; ++i) acc.push_back({i * 4 * n, n});
    if (ads.decide(acc, /*is_write=*/true).sieve) last = n;
  }
  return last;
}

void run() {
  header("Ablation: calibration sensitivity of the ADS crossover",
         "largest block-column N still sieved on write; the curves merge at "
         "the next size.\n(the paper's Figure 6 merges at N=2048, i.e. "
         "largest sieved N = 1024)");

  Table t1({"O_r/O_w (us)", "crossover N"});
  for (double o : {5.0, 10.0, 20.0, 40.0, 80.0}) {
    FsParams fs;
    fs.read_overhead = Duration::us(o);
    fs.write_overhead = Duration::us(o);
    t1.row({fmt(o, 0), fmt_int(static_cast<i64>(
                           write_crossover(DiskParams{}, fs)))});
  }
  t1.print();

  std::printf("\n");
  Table t2({"media half-size", "crossover N"});
  for (u64 h : {4 * kKiB, 8 * kKiB, 14 * kKiB, 28 * kKiB, 56 * kKiB}) {
    DiskParams disk;
    disk.media_half_size = h;
    t2.row({std::to_string(h / kKiB) + " KiB",
            fmt_int(static_cast<i64>(write_crossover(disk, FsParams{})))});
  }
  t2.print();
}

}  // namespace
}  // namespace pvfsib::bench

int main() {
  pvfsib::bench::run();
  return 0;
}
