// Figure 4: PVFS-level noncontiguous data transfer — 4 compute nodes and
// 4 I/O nodes; each process reads/writes 128 noncontiguous memory segments
// (segment size swept 128 B .. 8 KiB) with PVFS list I/O under three
// transfer designs: Pack/Unpack, RDMA Gather/Scatter, and the Hybrid scheme
// the paper adopts.
//
// Expected shape: Pack/Unpack wins while the total stays small, RDMA
// Gather/Scatter wins once it grows, Hybrid tracks the better of the two.
#include "bench_common.h"

namespace pvfsib::bench {
namespace {

RunOutcome run_case(u64 seg_bytes, core::XferScheme scheme, bool is_write) {
  pvfs::Cluster cluster(ModelConfig::paper_defaults(), 4, 4);
  const u64 segments = 128;
  const u64 share = segments * seg_bytes;

  std::vector<pvfs::OpenFile> files;
  std::vector<core::ListIoRequest> reqs;
  for (u32 r = 0; r < 4; ++r) {
    pvfs::Client& c = cluster.client(r);
    files.push_back(r == 0 ? c.create("/fig4").value()
                           : c.open("/fig4").value());
    core::ListIoRequest req;
    const u64 base = c.memory().alloc(segments * 2 * seg_bytes);
    for (u64 s = 0; s < segments; ++s) {
      req.mem.push_back({base + s * 2 * seg_bytes, seg_bytes});
    }
    req.file = {{r * share, share}};
    reqs.push_back(std::move(req));
  }
  if (!is_write) {
    // Preload so reads are served from the iod page caches (the paper's
    // network-stress configuration).
    for (u32 r = 0; r < 4; ++r) {
      pvfs::IoResult pre = cluster.client(r).write_list(files[r], reqs[r]);
      if (!pre.ok()) {
        std::fprintf(stderr, "fig4 preload: %s\n",
                     pre.status.to_string().c_str());
        return {};
      }
    }
  }

  // The case's scheme applies cluster-wide (set after the preload, which
  // should run with the stock hybrid policy); call sites pass empty opts.
  core::TransferPolicy policy;
  policy.scheme = scheme;
  cluster.set_default_policy(policy);
  std::vector<pvfs::IoResult> results(4);
  int pending = 4;
  for (u32 r = 0; r < 4; ++r) {
    auto done = [&results, &pending, r](pvfs::IoResult res) {
      results[r] = res;
      --pending;
    };
    const TimePoint at = cluster.engine().now();
    const pvfs::IoDir dir = is_write ? pvfs::IoDir::kWrite : pvfs::IoDir::kRead;
    cluster.client(r)
        .submit({dir, files[r], reqs[r], {}, at})
        .on_complete(done);
  }
  cluster.engine().run_until([&] { return pending == 0; });
  return summarize(results);
}

void run() {
  header("Figure 4: PVFS noncontiguous transfer schemes",
         "4 clients x 4 iods, 128 segments per client, list I/O; aggregate "
         "MB/s\n(paper shape: pack wins small, gather wins large, hybrid "
         "tracks both)");

  for (bool is_write : {true, false}) {
    std::printf("  -- %s --\n", is_write ? "write" : "read");
    Table t({"seg size", "total/client", "pack/unpack", "gather/scatter",
             "hybrid"});
    for (u64 seg : {128, 256, 512, 1024, 2048, 4096, 8192}) {
      const u64 total = 128 * seg;
      t.row({std::to_string(seg) + " B",
             std::to_string(total / kKiB) + " KiB",
             fmt(run_case(seg, core::XferScheme::kPackUnpack, is_write).mbps,
                 0),
             fmt(run_case(seg, core::XferScheme::kRdmaGatherScatter,
                          is_write)
                     .mbps,
                 0),
             fmt(run_case(seg, core::XferScheme::kHybrid, is_write).mbps,
                 0)});
    }
    t.print();
    std::printf("\n");
  }
}

}  // namespace
}  // namespace pvfsib::bench

int main() {
  pvfsib::bench::run();
  return 0;
}
