// Table 5: NAS BTIO (class-A-like) total execution time and I/O overhead
// for the five I/O methods plus the no-I/O baseline.
//
// Paper: no-I/O 165.6 s; Multiple 180.0 (14.4 I/O); Collective 169.6 (4.0);
// List 168.2 (2.6); List+ADS 167.7 (2.1); Data Sieving 177.3 (11.7).
// Expected ordering: ADS < List < Collective < DS < Multiple.
#include "btio_runner.h"

namespace pvfsib::bench {
namespace {

void run() {
  header("Table 5: BTIO performance",
         "200 solver steps (828 ms compute each), output every 5 steps "
         "(200 MiB total) + read-back verify\n(paper: no-I/O 165.6 s; "
         "I/O overhead Mult 14.4, Coll 4.0, List 2.6, ADS 2.1, DS 11.7 s)");

  Table t({"case", "time (s)", "I/O overhead (s)", "paper time", "paper ovh"});
  {
    const BtioRun base = run_btio(mpiio::IoMethod::kListIo, /*with_io=*/false);
    t.row({"no I/O", fmt(base.total.as_sec(), 1), "0", "165.6", "0"});
  }
  struct Row {
    const char* name;
    mpiio::IoMethod method;
    const char* paper_time;
    const char* paper_ovh;
  };
  const Row rows[] = {
      {"Multiple I/O", mpiio::IoMethod::kMultiple, "180.0", "14.4"},
      {"Collective I/O", mpiio::IoMethod::kCollective, "169.6", "4.0"},
      {"List I/O", mpiio::IoMethod::kListIo, "168.2", "2.6"},
      {"List I/O with ADS", mpiio::IoMethod::kListIoAds, "167.7", "2.1"},
      {"Data Sieving", mpiio::IoMethod::kDataSieving, "177.3", "11.7"},
  };
  for (const Row& r : rows) {
    const BtioRun run = run_btio(r.method, /*with_io=*/true);
    t.row({r.name, fmt(run.total.as_sec(), 1), fmt(run.io_overhead.as_sec(), 2),
           r.paper_time, r.paper_ovh});
    if (!run.ok) std::fprintf(stderr, "  (%s: some ops failed)\n", r.name);
  }
  t.print();
}

}  // namespace
}  // namespace pvfsib::bench

int main() {
  pvfsib::bench::run();
  return 0;
}
