// Figure 6: noncontiguous WRITE with the block-column file view (Figure 5:
// each of 4 processes writes 1 unit out of every 4), array size swept
// 512..8192, for four methods: Multiple I/O, ROMIO Data Sieving (which
// degenerates to Multiple I/O for writes over lock-less PVFS), PVFS list
// I/O, and list I/O with Active Data Sieving. Both without sync (network/
// cache bound) and with sync (disk bound).
//
// Expected shape: list I/O beats ROMIO DS by 3.5-12x; ADS helps below
// N=2048; at 2048 the iod's cost model stops sieving and the list curves
// merge. A forced-ADS ablation shows why the *decision* matters.
#include "bench_common.h"

namespace pvfsib::bench {
namespace {

double bc_write(u64 n, mpiio::IoMethod method, bool sync, bool force_ads) {
  pvfs::Cluster cluster(ModelConfig::paper_defaults(), 4, 4);
  if (force_ads) {
    // Ablation knob: bypass the ADS decision model on every iod.
    for (u32 i = 0; i < cluster.iod_count(); ++i) {
      cluster.iod(i).ads().set_force(true);
    }
  }
  return run_block_column(cluster, n, method, /*is_write=*/true, sync,
                          /*cold_cache=*/false)
      .mbps;
}

void run() {
  header("Figure 6: Block-column WRITE bandwidth by method",
         "4 procs x 4 iods, each writes 1-in-4 units of an N x N int array; "
         "aggregate MB/s\n(paper shape: List >= 3.5x ROMIO-DS; ADS helps "
         "below N=2048, curves merge after)");

  for (bool sync : {false, true}) {
    std::printf("  -- write %s --\n", sync ? "with sync" : "without sync");
    Table t({"N", "accesses/proc", "piece", "Multiple", "ROMIO-DS", "List",
             "List+ADS", "List+forcedADS"});
    for (u64 n : {512, 1024, 2048, 4096, 8192}) {
      t.row({fmt_int(static_cast<i64>(n)), fmt_int(static_cast<i64>(n)),
             std::to_string(n) + " B",
             fmt(bc_write(n, mpiio::IoMethod::kMultiple, sync, false), 1),
             fmt(bc_write(n, mpiio::IoMethod::kDataSieving, sync, false), 1),
             fmt(bc_write(n, mpiio::IoMethod::kListIo, sync, false), 1),
             fmt(bc_write(n, mpiio::IoMethod::kListIoAds, sync, false), 1),
             fmt(bc_write(n, mpiio::IoMethod::kListIoAds, sync, true), 1)});
    }
    t.print();
    std::printf("\n");
  }
}

}  // namespace
}  // namespace pvfsib::bench

int main() {
  pvfsib::bench::run();
  return 0;
}
