// Figure 8: mpi-tile-io without disk effects — writes without sync, reads
// from the iod file caches. 2x2 displays of 1024x768 24-bit pixels (9 MB
// frame), 4 compute nodes, 4 iods.
//
// Paper shape: List+ADS is 5.7x Multiple for write and 8.8x for read;
// +8.4% / +45% over plain List; +5.7x / +18% over ROMIO DS.
#include "bench_common.h"

namespace pvfsib::bench {
namespace {

void run() {
  header("Figure 8: mpi-tile-io, without disk effects",
         "9 MB frame, 2x2 tiles of 1024x768x24bit; aggregate MB/s\n"
         "(paper shape: ADS 5.7x Multiple write / 8.8x read; +8.4%/+45% "
         "over plain List)");

  Table t({"op", "Multiple", "ROMIO-DS", "List", "List+ADS"});
  for (bool is_write : {true, false}) {
    std::vector<std::string> row{is_write ? "write (no sync)"
                                          : "read (cached)"};
    for (mpiio::IoMethod m :
         {mpiio::IoMethod::kMultiple, mpiio::IoMethod::kDataSieving,
          mpiio::IoMethod::kListIo, mpiio::IoMethod::kListIoAds}) {
      pvfs::Cluster cluster(ModelConfig::paper_defaults(), 4, 4);
      row.push_back(fmt(
          run_tile_io(cluster, m, is_write, /*sync=*/false, /*cold=*/false)
              .mbps,
          1));
    }
    t.row(row);
  }
  t.print();
}

}  // namespace
}  // namespace pvfsib::bench

int main() {
  pvfsib::bench::run();
  return 0;
}
