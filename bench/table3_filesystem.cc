// Table 3: local (ext3-model) file system performance with and without
// cache effects, bonnie-style sequential sweeps.
//
// Paper values: write 25 / 303 MB/s, read 20 / 1391 MB/s (without/with
// cache).
#include "bench_common.h"

#include "disk/local_fs.h"

namespace pvfsib::bench {
namespace {

void run() {
  header("Table 3: File system performance",
         "bonnie-style sequential read/write of a 256 MiB file\n"
         "(paper: uncached 25 / 20 MB/s, cached 303 / 1391 MB/s)");

  const ModelConfig cfg = ModelConfig::paper_defaults();
  Stats stats;
  disk::LocalFs fs("node", cfg.disk, cfg.fs, &stats);
  const u32 fd = fs.create("/bonnie").value();
  disk::LocalFile& f = fs.file(fd);

  const u64 total = 256 * kMiB;
  const u64 chunk = 1 * kMiB;
  std::vector<std::byte> buf(chunk, std::byte{0x5a});

  // Sequential write through the cache, then the fsync that bonnie's
  // "per-char + block write" number effectively includes for files larger
  // than RAM.
  Duration w_cached = Duration::zero();
  for (u64 off = 0; off < total; off += chunk) {
    w_cached += f.pwrite(off, buf).cost;
  }
  const Duration w_sync = f.fsync();

  // Cached read: immediately after writing, everything is resident.
  Duration r_cached = Duration::zero();
  for (u64 off = 0; off < total; off += chunk) {
    r_cached += f.pread(off, buf).cost;
  }

  // Uncached read: drop caches first.
  fs.drop_caches();
  Duration r_cold = Duration::zero();
  for (u64 off = 0; off < total; off += chunk) {
    r_cold += f.pread(off, buf).cost;
  }

  // Uncached write: O_DIRECT-style pass.
  Duration w_cold = Duration::zero();
  for (u64 off = 0; off < total; off += chunk) {
    w_cold += f.pwrite(off, buf, {.direct = true}).cost;
  }

  Table t({"case", "write (MB/s)", "read (MB/s)", "paper write", "paper read"});
  t.row({"without cache", fmt(bandwidth_mib(total, w_cold), 0),
         fmt(bandwidth_mib(total, r_cold), 0), "25", "20"});
  t.row({"with cache", fmt(bandwidth_mib(total, w_cached), 0),
         fmt(bandwidth_mib(total, r_cached), 0), "303", "1391"});
  t.print();
  std::printf("\n  write-back of the cached pass (fsync): %s for 256 MiB "
              "(%s MB/s)\n",
              w_sync.to_string().c_str(),
              fmt(bandwidth_mib(total, w_sync), 0).c_str());
}

}  // namespace
}  // namespace pvfsib::bench

int main() {
  pvfsib::bench::run();
  return 0;
}
