// Shared runner for the BTIO benches (Tables 5 and 6): 200 solver steps of
// charged compute time, an output phase every 5 steps, and a full read-back
// verification pass at the end — the structure of NAS BTIO class A on 4
// processes.
#pragma once

#include "bench_common.h"
#include "workloads/btio.h"

namespace pvfsib::bench {

struct BtioRun {
  Duration total = Duration::zero();        // end-to-end virtual time
  Duration io_overhead = Duration::zero();  // total minus compute baseline
  Stats stats;                              // counter deltas for the run
  bool ok = true;
};

inline BtioRun run_btio(mpiio::IoMethod method, bool with_io) {
  const workloads::BtioWorkload w;
  const workloads::BtioConfig& cfg = w.config();
  const Duration baseline = cfg.step_compute * cfg.timesteps;

  pvfs::Cluster cluster(ModelConfig::paper_defaults(), 4, 4);
  mpiio::Communicator comm(cluster);
  BtioRun out;

  Result<mpiio::File> file = mpiio::File::create(comm, "/btio");
  if (!file.is_ok()) {
    out.ok = false;
    return out;
  }
  mpiio::File f = file.value();

  std::vector<u64> wbuf(4), rbuf(4);
  for (int p = 0; p < 4; ++p) {
    wbuf[p] = comm.rank(p).memory().alloc(w.mem_extent_bytes());
    rbuf[p] = comm.rank(p).memory().alloc(w.mem_extent_bytes());
  }

  mpiio::Hints hints;
  hints.method = method;

  const Stats before = cluster.stats();

  int phase = 0;
  for (int step = 1; step <= cfg.timesteps; ++step) {
    for (int p = 0; p < 4; ++p) {
      pvfs::Client& c = comm.rank(p);
      c.advance_to(c.now() + cfg.step_compute);
    }
    if (with_io && step % cfg.write_interval == 0) {
      std::vector<mpiio::RankIo> io(4);
      for (int p = 0; p < 4; ++p) io[p] = w.rank_io(phase, p, wbuf[p]);
      for (const pvfs::IoResult& r : f.write_all(io, hints)) {
        out.ok = out.ok && r.ok();
      }
      ++phase;
    }
  }

  if (with_io) {
    // Read-back verification pass (BTIO's final phase).
    for (int ph = 0; ph < w.output_phases(); ++ph) {
      std::vector<mpiio::RankIo> io(4);
      for (int p = 0; p < 4; ++p) io[p] = w.rank_io(ph, p, rbuf[p]);
      for (const pvfs::IoResult& r : f.read_all(io, hints)) {
        out.ok = out.ok && r.ok();
      }
    }
  }

  TimePoint end = TimePoint::origin();
  for (int p = 0; p < 4; ++p) end = max(end, comm.rank(p).now());
  out.total = end - TimePoint::origin();
  out.io_overhead = out.total - baseline;
  out.stats = cluster.stats().diff(before);
  return out;
}

}  // namespace pvfsib::bench
