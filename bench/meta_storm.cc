// Metadata storm: many clients hammer the metadata plane with pure
// namespace traffic (create, open, remove) and the sweep varies how many
// active manager shards serve it. With one shard every request funnels
// through a single manager's service queue and HCA; with N shards the
// FNV-1a name hash spreads the storm across N independent managers, so
// throughput scales until something shared (here the iods, on remove's
// unlink broadcast) becomes the bottleneck.
//
// The run sets `pvfs.meta_cpu_queue` so the managers' 5 us lookup cost
// queues on a per-manager CPU resource instead of overlapping for free —
// that queue is precisely what sharding exists to split. Each client is a
// chain of engine events: one blocking metadata op per event, the next
// event scheduled at the client's post-op clock. Clients start at seeded
// jittered offsets and insert a small seeded think time between consecutive
// ops, rather than issuing in lockstep: with identical start times and zero
// think time the per-shard FIFO queue converges to a deterministic rotation
// where every arrival meets the same queue depth, so the latency
// distribution collapses to a point (p50 == p99 even at 1 shard — start
// offsets alone cannot fix that, the rotation re-forms after one round).
// The per-op jitter keeps arrivals desynchronized for the whole run, so the
// depth each request meets varies and the reported tail is real.
//
// Latencies feed the shared log-bucketed LatencyHistogram; besides the
// human-readable table the bench emits BENCH_metadata.json (create/open/
// remove throughput and p50/p99/p999 latency vs shard count).
#include <algorithm>
#include <cstring>
#include <functional>
#include <memory>

#include "bench_common.h"
#include "common/rng.h"

namespace pvfsib::bench {
namespace {

struct PhaseResult {
  double ops_per_s = 0.0;
  LatencyHistogram lat;
  bool ok = true;
};

struct StormPoint {
  u32 shards = 1;
  PhaseResult create;
  PhaseResult open;
  PhaseResult remove;
  i64 redirects = 0;
  bool ok = true;
};

std::string storm_name(u32 client, u32 k) {
  return "/storm_c" + std::to_string(client) + "_f" + std::to_string(k);
}

// Largest per-client start offset: a few ops' worth of service time, enough
// to break arrival lockstep without distorting the measured makespan.
constexpr Duration kStartJitter = Duration::us(40.0);
// Per-op think time is drawn from [0, prev_latency/kThinkDiv): proportional
// to whatever the op actually costs, so every phase and shard count keeps
// the same high utilization (mean think is ~12% of a queue rotation) while
// the number of clients "thinking" at any instant — and with it the queue
// depth an arrival meets — genuinely fluctuates. A fixed think constant
// cannot do both: small enough to saturate an 8-shard create queue, it is
// invisible against remove's 1 ms rotation and the point-mass returns.
constexpr i64 kThinkDiv = 4;

// Run one phase (op 0 = create, 1 = open, 2 = remove) across all clients:
// every client starts at `start` plus its seeded jitter offset and issues
// its ops back to back, each op an engine event scheduled at the client's
// clock after the previous op.
PhaseResult run_phase(pvfs::Cluster& cluster, int op, TimePoint start,
                      u32 ops_per_client) {
  const u32 clients = cluster.client_count();
  PhaseResult r;
  bool ok = true;
  LatencyHistogram lat;
  // One self-rescheduling closure per client, kept alive by the scheduled
  // events; the stored closures hold only a weak self-reference so the
  // table frees itself when the phase drains (no shared_ptr cycle).
  auto steps = std::make_shared<std::vector<std::function<void(u32)>>>(clients);
  std::weak_ptr<std::vector<std::function<void(u32)>>> weak_steps = steps;
  // Per-(phase, client) jitter streams: deterministic, distinct per phase.
  auto rngs = std::make_shared<std::vector<Rng>>();
  for (u32 ci = 0; ci < clients; ++ci) {
    rngs->push_back(Rng(0x5707ULL * (static_cast<u64>(op) + 1) + ci));
  }
  for (u32 ci = 0; ci < clients; ++ci) {
    (*steps)[ci] = [&, weak_steps, rngs, ci, op, ops_per_client](u32 k) {
      pvfs::Client& c = cluster.client(ci);
      c.advance_to(cluster.engine().now());
      const TimePoint t0 = c.now();
      const std::string name = storm_name(ci, k);
      switch (op) {
        case 0:
          ok = c.create(name, 64 * kKiB, cluster.iod_count(), 0).is_ok() && ok;
          break;
        case 1:
          ok = c.open(name).is_ok() && ok;
          break;
        default:
          ok = c.remove(name).is_ok() && ok;
          break;
      }
      const Duration op_lat = c.now() - t0;
      lat.record(op_lat);
      if (k + 1 < ops_per_client) {
        const u64 bound =
            static_cast<u64>(std::max<i64>(1, op_lat.as_ns() / kThinkDiv));
        const Duration think =
            Duration::ns(static_cast<i64>((*rngs)[ci].below(bound)));
        cluster.engine().schedule_at(
            c.now() + think, [s = weak_steps.lock(), ci, k] {
              if (s != nullptr) (*s)[ci](k + 1);
            });
      }
    };
    const Duration jitter = Duration::ns(static_cast<i64>(
        (*rngs)[ci].below(static_cast<u64>(kStartJitter.as_ns()))));
    cluster.engine().schedule_at(start + jitter,
                                 [steps, ci] { (*steps)[ci](0); });
  }
  const TimePoint end = cluster.run();
  r.ok = ok;
  r.lat = lat;
  const Duration makespan = end - start;
  const double secs = makespan.as_sec();
  const double total = static_cast<double>(lat.count());
  r.ops_per_s = secs > 0.0 ? total / secs : 0.0;
  return r;
}

StormPoint run_storm(u32 shards, u32 clients, u32 ops_per_client) {
  ModelConfig cfg = ModelConfig::paper_defaults();
  // The storm measures the managers' service queue: make lookup cost a
  // real per-manager CPU resource instead of a fixed latency adder.
  cfg.pvfs.meta_cpu_queue = true;
  pvfs::Cluster cluster(cfg, pvfs::Cluster::Topology{}
                                 .clients(clients)
                                 .iods(4)
                                 .metadata_shards(shards));
  StormPoint pt;
  pt.shards = shards;
  TimePoint t = TimePoint::origin();
  pt.create = run_phase(cluster, 0, t, ops_per_client);
  t = cluster.engine().now();
  pt.open = run_phase(cluster, 1, t, ops_per_client);
  t = cluster.engine().now();
  pt.remove = run_phase(cluster, 2, t, ops_per_client);
  pt.redirects = cluster.stats().get(stat::kPvfsShardRedirects);
  pt.ok = pt.create.ok && pt.open.ok && pt.remove.ok;
  return pt;
}

std::string fmt_kops(double ops_per_s) { return fmt(ops_per_s / 1000.0, 1); }

// --- live-migration scenario ---------------------------------------------

// One time-bounded open storm over a fixed span, binned into fixed windows
// by completion time, with `migrate_shard(0)` fired mid-storm and a full
// split after the storm drains. "hot" ops are opens of names that hash to
// the migrating shard; "others" is everything else — the others series is
// how we check that non-migrating shards stay flat through the cutover.
struct MigrateResult {
  u32 shard = 0;              // which shard migrated
  u32 shards = 0;             // plane size during the storm
  u32 windows = 0;
  double window_us = 0.0;
  double migrate_at_us = 0.0;  // offset of migrate_shard into the storm
  double baseline_ops_per_s = 0.0;
  double dip_min_ops_per_s = 0.0;
  double dip_depth_pct = 0.0;
  u32 dip_windows = 0;  // windows after the migrate below 80% of baseline
  double others_baseline_ops_per_s = 0.0;
  double others_dip_depth_pct = 0.0;
  i64 redirects = 0;
  i64 wrong_shard_during_migration = 0;
  i64 migrations = 0;
  i64 migration_rounds = 0;
  i64 aborts = 0;
  i64 splits = 0;
  u32 shards_after_split = 0;
  bool post_split_ok = true;  // every file re-opens on the doubled plane
  bool ok = true;
};

MigrateResult run_migration_scenario(bool smoke) {
  const u32 clients = smoke ? 8 : 16;
  const u32 files_per_client = smoke ? 8 : 16;
  constexpr u32 kShards = 4;
  constexpr u32 kWindows = 20;
  const Duration span = Duration::ms(smoke ? 8.0 : 30.0);
  const i64 win_ns = span.as_ns() / kWindows;

  ModelConfig cfg = ModelConfig::paper_defaults();
  cfg.pvfs.meta_cpu_queue = true;
  // Slow the snapshot stream down so it spans several measurement windows
  // (the default 400 MiB/s would move this namespace in microseconds), and
  // chunk it small enough that the rate limiter actually paces rounds.
  cfg.migration.stream_bandwidth = 2.0;
  cfg.migration.round_bytes = 512;
  pvfs::Cluster cluster(cfg, pvfs::Cluster::Topology{}
                                 .clients(clients)
                                 .iods(4)
                                 .metadata_shards(kShards));

  MigrateResult r;
  r.shard = 0;
  r.shards = kShards;
  r.windows = kWindows;
  r.window_us = Duration::ns(win_ns).as_us();

  // Setup: every client's working set exists before the storm starts, and
  // we know up front which names hash to the migrating shard.
  std::vector<std::vector<bool>> hot(clients,
                                     std::vector<bool>(files_per_client));
  bool ok = true;
  for (u32 ci = 0; ci < clients; ++ci) {
    for (u32 k = 0; k < files_per_client; ++k) {
      const std::string name = storm_name(ci, k);
      ok = cluster.client(ci)
               .create(name, 64 * kKiB, cluster.iod_count(), 0)
               .is_ok() &&
           ok;
      hot[ci][k] = pvfs::shard_of(name, kShards) == 0;
    }
  }

  const TimePoint start = cluster.engine().now() + Duration::us(200.0);
  const TimePoint t_end = start + span;
  const TimePoint mat = start + Duration::ns(span.as_ns() * 45 / 100);
  r.migrate_at_us = (mat - start).as_us();

  // Per-window completion bins (total and hot-only).
  std::vector<u64> bin_total(kWindows), bin_hot(kWindows);
  auto steps = std::make_shared<std::vector<std::function<void(u32)>>>(clients);
  std::weak_ptr<std::vector<std::function<void(u32)>>> weak_steps = steps;
  auto rngs = std::make_shared<std::vector<Rng>>();
  for (u32 ci = 0; ci < clients; ++ci) {
    rngs->push_back(Rng(0x316aULL + ci));
  }
  for (u32 ci = 0; ci < clients; ++ci) {
    (*steps)[ci] = [&, weak_steps, rngs, ci, files_per_client, start, t_end,
                    win_ns](u32 k) {
      pvfs::Client& c = cluster.client(ci);
      c.advance_to(cluster.engine().now());
      const TimePoint t0 = c.now();
      const u32 f = k % files_per_client;
      ok = c.open(storm_name(ci, f)).is_ok() && ok;
      const i64 idx =
          std::min<i64>((c.now() - start).as_ns() / win_ns, kWindows - 1);
      if (idx >= 0) {
        ++bin_total[static_cast<size_t>(idx)];
        if (hot[ci][f]) ++bin_hot[static_cast<size_t>(idx)];
      }
      const Duration op_lat = c.now() - t0;
      const u64 bound =
          static_cast<u64>(std::max<i64>(1, op_lat.as_ns() / kThinkDiv));
      const Duration think =
          Duration::ns(static_cast<i64>((*rngs)[ci].below(bound)));
      if (c.now() + think < t_end) {
        cluster.engine().schedule_at(c.now() + think,
                                     [s = weak_steps.lock(), ci, k] {
                                       if (s != nullptr) (*s)[ci](k + 1);
                                     });
      }
    };
    const Duration jitter = Duration::ns(static_cast<i64>(
        (*rngs)[ci].below(static_cast<u64>(kStartJitter.as_ns()))));
    cluster.engine().schedule_at(start + jitter,
                                 [steps, ci] { (*steps)[ci](0); });
  }
  cluster.engine().schedule_at(
      mat, [&cluster, mat] { cluster.migrate_shard(0, mat); });
  cluster.run();

  // Window rates. Baseline = mean of the pre-migration windows (skipping
  // window 0, which absorbs the jittered ramp); the dip is scanned over the
  // windows at/after the migrate (excluding the final, partially-drained
  // window).
  auto rate = [&](const std::vector<u64>& bins, u32 w) {
    return static_cast<double>(bins[w]) * 1e9 / static_cast<double>(win_ns);
  };
  const u32 mwin = static_cast<u32>((mat - start).as_ns() / win_ns);
  auto mean_rate = [&](const std::vector<u64>& bins, u32 lo, u32 hi) {
    u64 total = 0;
    for (u32 w = lo; w < hi; ++w) total += bins[w];
    return hi > lo ? static_cast<double>(total) * 1e9 /
                         static_cast<double>(win_ns * (hi - lo))
                   : 0.0;
  };
  std::vector<u64> bin_others(kWindows);
  for (u32 w = 0; w < kWindows; ++w) bin_others[w] = bin_total[w] - bin_hot[w];
  r.baseline_ops_per_s = mean_rate(bin_total, 1, mwin);
  r.others_baseline_ops_per_s = mean_rate(bin_others, 1, mwin);
  double dip_min = r.baseline_ops_per_s;
  double others_min = r.others_baseline_ops_per_s;
  for (u32 w = mwin; w + 1 < kWindows; ++w) {
    dip_min = std::min(dip_min, rate(bin_total, w));
    others_min = std::min(others_min, rate(bin_others, w));
    if (rate(bin_total, w) < 0.8 * r.baseline_ops_per_s) ++r.dip_windows;
  }
  r.dip_min_ops_per_s = dip_min;
  r.dip_depth_pct = r.baseline_ops_per_s > 0.0
                        ? (r.baseline_ops_per_s - dip_min) * 100.0 /
                              r.baseline_ops_per_s
                        : 0.0;
  r.others_dip_depth_pct =
      r.others_baseline_ops_per_s > 0.0
          ? (r.others_baseline_ops_per_s - others_min) * 100.0 /
                r.others_baseline_ops_per_s
          : 0.0;

  r.redirects = cluster.stats().get(stat::kPvfsShardRedirects);
  r.wrong_shard_during_migration =
      cluster.stats().get(stat::kPvfsWrongShardDuringMigration);
  r.migrations = cluster.stats().get(stat::kPvfsShardMigrations);
  r.migration_rounds = cluster.stats().get(stat::kPvfsMigrationRounds);
  r.aborts = cluster.stats().get(stat::kPvfsMigrationAborts);

  // After the storm drains, double the plane and re-open everything: the
  // split's correctness check rides along with the bench.
  cluster.split_shards(cluster.engine().now());
  cluster.run();
  r.splits = cluster.stats().get(stat::kPvfsShardSplits);
  r.shards_after_split = cluster.metadata_shards();
  for (u32 ci = 0; ci < clients; ++ci) {
    for (u32 k = 0; k < files_per_client; ++k) {
      r.post_split_ok =
          cluster.client(ci).open(storm_name(ci, k)).is_ok() && r.post_split_ok;
    }
  }
  r.ok = ok;
  return r;
}

void print_migration(const MigrateResult& m) {
  header("Live migration under storm: shard 0 moves mid-storm, plane splits "
         "after",
         "open storm over " + fmt_int(m.windows) + " windows of " +
             fmt(m.window_us, 0) + " us; migrate_shard(0) at +" +
             fmt(m.migrate_at_us, 0) +
             " us. The dip is the cutover's redirect burst; \"others\" "
             "(names on\nnon-migrating shards) should stay flat. The split "
             "doubles the plane once the\nstorm drains and every name must "
             "re-open via redirects alone");
  Table t({"series", "baseline kop/s", "dip min kop/s", "dip depth",
           "dip windows"});
  t.row({"all shards", fmt_kops(m.baseline_ops_per_s),
         fmt_kops(m.dip_min_ops_per_s), fmt(m.dip_depth_pct, 1) + "%",
         fmt_int(m.dip_windows)});
  t.row({"others", fmt_kops(m.others_baseline_ops_per_s),
         fmt_kops(m.others_baseline_ops_per_s *
                  (1.0 - m.others_dip_depth_pct / 100.0)),
         fmt(m.others_dip_depth_pct, 1) + "%", "-"});
  t.print();
  std::printf(
      "\n  migrations=%lld rounds=%lld aborts=%lld redirects=%lld "
      "wrong_shard=%lld\n  split: %lld -> %u shards, re-open %s\n",
      static_cast<long long>(m.migrations),
      static_cast<long long>(m.migration_rounds),
      static_cast<long long>(m.aborts), static_cast<long long>(m.redirects),
      static_cast<long long>(m.wrong_shard_during_migration),
      static_cast<long long>(m.splits), m.shards_after_split,
      m.post_split_ok ? "ok" : "FAILED");
}

void json_phase(JsonWriter& j, const char* tag, const PhaseResult& p) {
  const std::string t(tag);
  j.field((t + "_ops_per_s").c_str(), p.ops_per_s, 1);
  j.field((t + "_p50_us").c_str(), p.lat.quantile(0.50).as_us(), 3);
  j.field((t + "_p99_us").c_str(), p.lat.quantile(0.99).as_us(), 3);
  j.field((t + "_p999_us").c_str(), p.lat.quantile(0.999).as_us(), 3);
}

void write_json(const std::vector<StormPoint>& points, u32 clients,
                u32 ops_per_client, const MigrateResult* mig) {
  JsonWriter j;
  j.field("bench", "meta_storm");
  j.field("clients", clients);
  j.field("ops_per_client", ops_per_client);
  j.begin_array("points");
  for (const StormPoint& p : points) {
    j.begin_object();
    j.field("shards", p.shards);
    j.field("ok", p.ok);
    json_phase(j, "create", p.create);
    json_phase(j, "open", p.open);
    json_phase(j, "remove", p.remove);
    j.field("redirects", p.redirects);
    j.end_object();
  }
  j.end_array();
  if (mig != nullptr) {
    j.begin_object("migration");
    j.field("shard", mig->shard);
    j.field("shards", mig->shards);
    j.field("windows", mig->windows);
    j.field("window_us", mig->window_us, 1);
    j.field("migrate_at_us", mig->migrate_at_us, 1);
    j.field("baseline_ops_per_s", mig->baseline_ops_per_s, 1);
    j.field("dip_min_ops_per_s", mig->dip_min_ops_per_s, 1);
    j.field("dip_depth_pct", mig->dip_depth_pct, 1);
    j.field("dip_windows", mig->dip_windows);
    j.field("others_baseline_ops_per_s", mig->others_baseline_ops_per_s, 1);
    j.field("others_dip_depth_pct", mig->others_dip_depth_pct, 1);
    j.field("redirects", mig->redirects);
    j.field("wrong_shard_during_migration", mig->wrong_shard_during_migration);
    j.field("migrations", mig->migrations);
    j.field("migration_rounds", mig->migration_rounds);
    j.field("aborts", mig->aborts);
    j.field("splits", mig->splits);
    j.field("shards_after_split", mig->shards_after_split);
    j.field("post_split_ok", mig->post_split_ok);
    j.field("ok", mig->ok);
    j.end_object();
  }
  j.write_file("BENCH_metadata.json");
}

void run(bool smoke, bool migrate) {
  const u32 clients = smoke ? 8 : 16;
  const u32 ops_per_client = smoke ? 16 : 64;
  const std::vector<u32> shard_counts =
      smoke ? std::vector<u32>{1, 4} : std::vector<u32>{1, 2, 4, 8};

  header("Metadata storm: namespace op throughput vs manager shard count",
         fmt_int(clients) + " clients x " + fmt_int(ops_per_client) +
             " ops per phase (create, then open, then remove); names "
             "FNV-1a-hash\nacross the shards, meta_cpu_queue on so each "
             "manager's 5 us lookup queues on\nits own CPU. Remove also "
             "broadcasts unlinks to the (shared) iods, so it\nscales less "
             "than create/open");

  Table t({"shards", "create kop/s", "create p50", "create p99",
           "open kop/s", "open p99", "remove kop/s", "remove p99",
           "redirects", "status"});
  std::vector<StormPoint> points;
  for (u32 shards : shard_counts) {
    points.push_back(run_storm(shards, clients, ops_per_client));
    const StormPoint& p = points.back();
    t.row({fmt_int(p.shards), fmt_kops(p.create.ops_per_s),
           p.create.lat.quantile(0.50).to_string(),
           p.create.lat.quantile(0.99).to_string(),
           fmt_kops(p.open.ops_per_s), p.open.lat.quantile(0.99).to_string(),
           fmt_kops(p.remove.ops_per_s),
           p.remove.lat.quantile(0.99).to_string(), fmt_int(p.redirects),
           p.ok ? "ok" : "FAILED"});
  }
  t.print();
  std::printf("\n");
  MigrateResult mig;
  if (migrate) {
    mig = run_migration_scenario(smoke);
    print_migration(mig);
  }
  write_json(points, clients, ops_per_client, migrate ? &mig : nullptr);
}

}  // namespace
}  // namespace pvfsib::bench

int main(int argc, char** argv) {
  bool smoke = false;
  bool migrate = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--migrate") == 0) migrate = true;
  }
  pvfsib::bench::run(smoke, migrate);
  return 0;
}
