// Metadata storm: many clients hammer the metadata plane with pure
// namespace traffic (create, open, remove) and the sweep varies how many
// active manager shards serve it. With one shard every request funnels
// through a single manager's service queue and HCA; with N shards the
// FNV-1a name hash spreads the storm across N independent managers, so
// throughput scales until something shared (here the iods, on remove's
// unlink broadcast) becomes the bottleneck.
//
// The run sets `pvfs.meta_cpu_queue` so the managers' 5 us lookup cost
// queues on a per-manager CPU resource instead of overlapping for free —
// that queue is precisely what sharding exists to split. Each client is a
// chain of engine events: one blocking metadata op per event, the next
// event scheduled at the client's post-op clock. Clients start at seeded
// jittered offsets and insert a small seeded think time between consecutive
// ops, rather than issuing in lockstep: with identical start times and zero
// think time the per-shard FIFO queue converges to a deterministic rotation
// where every arrival meets the same queue depth, so the latency
// distribution collapses to a point (p50 == p99 even at 1 shard — start
// offsets alone cannot fix that, the rotation re-forms after one round).
// The per-op jitter keeps arrivals desynchronized for the whole run, so the
// depth each request meets varies and the reported tail is real.
//
// Latencies feed the shared log-bucketed LatencyHistogram; besides the
// human-readable table the bench emits BENCH_metadata.json (create/open/
// remove throughput and p50/p99/p999 latency vs shard count).
#include <cstring>
#include <functional>
#include <memory>

#include "bench_common.h"
#include "common/rng.h"

namespace pvfsib::bench {
namespace {

struct PhaseResult {
  double ops_per_s = 0.0;
  LatencyHistogram lat;
  bool ok = true;
};

struct StormPoint {
  u32 shards = 1;
  PhaseResult create;
  PhaseResult open;
  PhaseResult remove;
  i64 redirects = 0;
  bool ok = true;
};

std::string storm_name(u32 client, u32 k) {
  return "/storm_c" + std::to_string(client) + "_f" + std::to_string(k);
}

// Largest per-client start offset: a few ops' worth of service time, enough
// to break arrival lockstep without distorting the measured makespan.
constexpr Duration kStartJitter = Duration::us(40.0);
// Per-op think time is drawn from [0, prev_latency/kThinkDiv): proportional
// to whatever the op actually costs, so every phase and shard count keeps
// the same high utilization (mean think is ~12% of a queue rotation) while
// the number of clients "thinking" at any instant — and with it the queue
// depth an arrival meets — genuinely fluctuates. A fixed think constant
// cannot do both: small enough to saturate an 8-shard create queue, it is
// invisible against remove's 1 ms rotation and the point-mass returns.
constexpr i64 kThinkDiv = 4;

// Run one phase (op 0 = create, 1 = open, 2 = remove) across all clients:
// every client starts at `start` plus its seeded jitter offset and issues
// its ops back to back, each op an engine event scheduled at the client's
// clock after the previous op.
PhaseResult run_phase(pvfs::Cluster& cluster, int op, TimePoint start,
                      u32 ops_per_client) {
  const u32 clients = cluster.client_count();
  PhaseResult r;
  bool ok = true;
  LatencyHistogram lat;
  // One self-rescheduling closure per client, kept alive by the scheduled
  // events; the stored closures hold only a weak self-reference so the
  // table frees itself when the phase drains (no shared_ptr cycle).
  auto steps = std::make_shared<std::vector<std::function<void(u32)>>>(clients);
  std::weak_ptr<std::vector<std::function<void(u32)>>> weak_steps = steps;
  // Per-(phase, client) jitter streams: deterministic, distinct per phase.
  auto rngs = std::make_shared<std::vector<Rng>>();
  for (u32 ci = 0; ci < clients; ++ci) {
    rngs->push_back(Rng(0x5707ULL * (static_cast<u64>(op) + 1) + ci));
  }
  for (u32 ci = 0; ci < clients; ++ci) {
    (*steps)[ci] = [&, weak_steps, rngs, ci, op, ops_per_client](u32 k) {
      pvfs::Client& c = cluster.client(ci);
      c.advance_to(cluster.engine().now());
      const TimePoint t0 = c.now();
      const std::string name = storm_name(ci, k);
      switch (op) {
        case 0:
          ok = c.create(name, 64 * kKiB, cluster.iod_count(), 0).is_ok() && ok;
          break;
        case 1:
          ok = c.open(name).is_ok() && ok;
          break;
        default:
          ok = c.remove(name).is_ok() && ok;
          break;
      }
      const Duration op_lat = c.now() - t0;
      lat.record(op_lat);
      if (k + 1 < ops_per_client) {
        const u64 bound =
            static_cast<u64>(std::max<i64>(1, op_lat.as_ns() / kThinkDiv));
        const Duration think =
            Duration::ns(static_cast<i64>((*rngs)[ci].below(bound)));
        cluster.engine().schedule_at(
            c.now() + think, [s = weak_steps.lock(), ci, k] {
              if (s != nullptr) (*s)[ci](k + 1);
            });
      }
    };
    const Duration jitter = Duration::ns(static_cast<i64>(
        (*rngs)[ci].below(static_cast<u64>(kStartJitter.as_ns()))));
    cluster.engine().schedule_at(start + jitter,
                                 [steps, ci] { (*steps)[ci](0); });
  }
  const TimePoint end = cluster.run();
  r.ok = ok;
  r.lat = lat;
  const Duration makespan = end - start;
  const double secs = makespan.as_sec();
  const double total = static_cast<double>(lat.count());
  r.ops_per_s = secs > 0.0 ? total / secs : 0.0;
  return r;
}

StormPoint run_storm(u32 shards, u32 clients, u32 ops_per_client) {
  ModelConfig cfg = ModelConfig::paper_defaults();
  // The storm measures the managers' service queue: make lookup cost a
  // real per-manager CPU resource instead of a fixed latency adder.
  cfg.pvfs.meta_cpu_queue = true;
  pvfs::Cluster cluster(cfg, pvfs::Cluster::Topology{}
                                 .clients(clients)
                                 .iods(4)
                                 .metadata_shards(shards));
  StormPoint pt;
  pt.shards = shards;
  TimePoint t = TimePoint::origin();
  pt.create = run_phase(cluster, 0, t, ops_per_client);
  t = cluster.engine().now();
  pt.open = run_phase(cluster, 1, t, ops_per_client);
  t = cluster.engine().now();
  pt.remove = run_phase(cluster, 2, t, ops_per_client);
  pt.redirects = cluster.stats().get(stat::kPvfsShardRedirects);
  pt.ok = pt.create.ok && pt.open.ok && pt.remove.ok;
  return pt;
}

std::string fmt_kops(double ops_per_s) { return fmt(ops_per_s / 1000.0, 1); }

void json_phase(JsonWriter& j, const char* tag, const PhaseResult& p) {
  const std::string t(tag);
  j.field((t + "_ops_per_s").c_str(), p.ops_per_s, 1);
  j.field((t + "_p50_us").c_str(), p.lat.quantile(0.50).as_us(), 3);
  j.field((t + "_p99_us").c_str(), p.lat.quantile(0.99).as_us(), 3);
  j.field((t + "_p999_us").c_str(), p.lat.quantile(0.999).as_us(), 3);
}

void write_json(const std::vector<StormPoint>& points, u32 clients,
                u32 ops_per_client) {
  JsonWriter j;
  j.field("bench", "meta_storm");
  j.field("clients", clients);
  j.field("ops_per_client", ops_per_client);
  j.begin_array("points");
  for (const StormPoint& p : points) {
    j.begin_object();
    j.field("shards", p.shards);
    j.field("ok", p.ok);
    json_phase(j, "create", p.create);
    json_phase(j, "open", p.open);
    json_phase(j, "remove", p.remove);
    j.field("redirects", p.redirects);
    j.end_object();
  }
  j.end_array();
  j.write_file("BENCH_metadata.json");
}

void run(bool smoke) {
  const u32 clients = smoke ? 8 : 16;
  const u32 ops_per_client = smoke ? 16 : 64;
  const std::vector<u32> shard_counts =
      smoke ? std::vector<u32>{1, 4} : std::vector<u32>{1, 2, 4, 8};

  header("Metadata storm: namespace op throughput vs manager shard count",
         fmt_int(clients) + " clients x " + fmt_int(ops_per_client) +
             " ops per phase (create, then open, then remove); names "
             "FNV-1a-hash\nacross the shards, meta_cpu_queue on so each "
             "manager's 5 us lookup queues on\nits own CPU. Remove also "
             "broadcasts unlinks to the (shared) iods, so it\nscales less "
             "than create/open");

  Table t({"shards", "create kop/s", "create p50", "create p99",
           "open kop/s", "open p99", "remove kop/s", "remove p99",
           "redirects", "status"});
  std::vector<StormPoint> points;
  for (u32 shards : shard_counts) {
    points.push_back(run_storm(shards, clients, ops_per_client));
    const StormPoint& p = points.back();
    t.row({fmt_int(p.shards), fmt_kops(p.create.ops_per_s),
           p.create.lat.quantile(0.50).to_string(),
           p.create.lat.quantile(0.99).to_string(),
           fmt_kops(p.open.ops_per_s), p.open.lat.quantile(0.99).to_string(),
           fmt_kops(p.remove.ops_per_s),
           p.remove.lat.quantile(0.99).to_string(), fmt_int(p.redirects),
           p.ok ? "ok" : "FAILED"});
  }
  t.print();
  std::printf("\n");
  write_json(points, clients, ops_per_client);
}

}  // namespace
}  // namespace pvfsib::bench

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  pvfsib::bench::run(smoke);
  return 0;
}
