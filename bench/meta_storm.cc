// Metadata storm: many clients hammer the metadata plane with pure
// namespace traffic (create, open, remove) and the sweep varies how many
// active manager shards serve it. With one shard every request funnels
// through a single manager's service queue and HCA; with N shards the
// FNV-1a name hash spreads the storm across N independent managers, so
// throughput scales until something shared (here the iods, on remove's
// unlink broadcast) becomes the bottleneck.
//
// The run sets `pvfs.meta_cpu_queue` so the managers' 5 us lookup cost
// queues on a per-manager CPU resource instead of overlapping for free —
// that queue is precisely what sharding exists to split. Each client is a
// chain of engine events: one blocking metadata op per event, the next
// event scheduled at the client's post-op clock, so the engine interleaves
// the 16 clients' requests in timestamp order like a real open queue.
//
// Besides the human-readable table, the bench emits BENCH_metadata.json
// (create/open/remove throughput and p99 latency vs shard count) for
// machine consumption.
#include <cstring>
#include <functional>
#include <memory>

#include "bench_common.h"

namespace pvfsib::bench {
namespace {

Duration percentile(std::vector<Duration> samples, double p) {
  if (samples.empty()) return Duration::zero();
  std::sort(samples.begin(), samples.end());
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(samples.size() - 1) + 0.5);
  return samples[std::min(idx, samples.size() - 1)];
}

struct PhaseResult {
  double ops_per_s = 0.0;
  Duration p50 = Duration::zero();
  Duration p99 = Duration::zero();
  bool ok = true;
};

struct StormPoint {
  u32 shards = 1;
  PhaseResult create;
  PhaseResult open;
  PhaseResult remove;
  i64 redirects = 0;
  bool ok = true;
};

std::string storm_name(u32 client, u32 k) {
  return "/storm_c" + std::to_string(client) + "_f" + std::to_string(k);
}

// Run one phase (op 0 = create, 1 = open, 2 = remove) across all clients:
// every client starts at `start` and issues its ops back to back, each op
// an engine event scheduled at the client's clock after the previous op.
PhaseResult run_phase(pvfs::Cluster& cluster, int op, TimePoint start,
                      u32 ops_per_client) {
  const u32 clients = cluster.client_count();
  std::vector<Duration> lat;
  lat.reserve(static_cast<size_t>(clients) * ops_per_client);
  bool ok = true;
  // One self-rescheduling closure per client; held alive in `steps`.
  auto steps = std::make_shared<std::vector<std::function<void(u32)>>>(clients);
  for (u32 ci = 0; ci < clients; ++ci) {
    (*steps)[ci] = [&, steps, ci, op, ops_per_client](u32 k) {
      pvfs::Client& c = cluster.client(ci);
      c.advance_to(cluster.engine().now());
      const TimePoint t0 = c.now();
      const std::string name = storm_name(ci, k);
      switch (op) {
        case 0:
          ok = c.create(name, 64 * kKiB, cluster.iod_count(), 0).is_ok() && ok;
          break;
        case 1:
          ok = c.open(name).is_ok() && ok;
          break;
        default:
          ok = c.remove(name).is_ok() && ok;
          break;
      }
      lat.push_back(c.now() - t0);
      if (k + 1 < ops_per_client) {
        cluster.engine().schedule_at(c.now(),
                                     [steps, ci, k] { (*steps)[ci](k + 1); });
      }
    };
    cluster.engine().schedule_at(start, [steps, ci] { (*steps)[ci](0); });
  }
  const TimePoint end = cluster.run();
  PhaseResult r;
  r.ok = ok;
  const Duration makespan = end - start;
  const double secs = makespan.as_sec();
  const double total = static_cast<double>(lat.size());
  r.ops_per_s = secs > 0.0 ? total / secs : 0.0;
  r.p50 = percentile(lat, 0.50);
  r.p99 = percentile(lat, 0.99);
  return r;
}

StormPoint run_storm(u32 shards, u32 clients, u32 ops_per_client) {
  ModelConfig cfg = ModelConfig::paper_defaults();
  // The storm measures the managers' service queue: make lookup cost a
  // real per-manager CPU resource instead of a fixed latency adder.
  cfg.pvfs.meta_cpu_queue = true;
  pvfs::Cluster cluster(cfg, pvfs::Cluster::Topology{}
                                 .clients(clients)
                                 .iods(4)
                                 .metadata_shards(shards));
  StormPoint pt;
  pt.shards = shards;
  TimePoint t = TimePoint::origin();
  pt.create = run_phase(cluster, 0, t, ops_per_client);
  t = cluster.engine().now();
  pt.open = run_phase(cluster, 1, t, ops_per_client);
  t = cluster.engine().now();
  pt.remove = run_phase(cluster, 2, t, ops_per_client);
  pt.redirects = cluster.stats().get(stat::kPvfsShardRedirects);
  pt.ok = pt.create.ok && pt.open.ok && pt.remove.ok;
  return pt;
}

std::string fmt_kops(double ops_per_s) { return fmt(ops_per_s / 1000.0, 1); }

void write_json(const std::vector<StormPoint>& points, u32 clients,
                u32 ops_per_client) {
  std::FILE* f = std::fopen("BENCH_metadata.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "meta_storm: cannot write BENCH_metadata.json\n");
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"meta_storm\",\n");
  std::fprintf(f, "  \"clients\": %u,\n  \"ops_per_client\": %u,\n", clients,
               ops_per_client);
  std::fprintf(f, "  \"points\": [\n");
  for (size_t i = 0; i < points.size(); ++i) {
    const StormPoint& p = points[i];
    std::fprintf(f,
                 "    {\"shards\": %u, \"ok\": %s,\n"
                 "     \"create_ops_per_s\": %.1f, \"create_p50_us\": %.3f, "
                 "\"create_p99_us\": %.3f,\n"
                 "     \"open_ops_per_s\": %.1f, \"open_p50_us\": %.3f, "
                 "\"open_p99_us\": %.3f,\n"
                 "     \"remove_ops_per_s\": %.1f, \"remove_p50_us\": %.3f, "
                 "\"remove_p99_us\": %.3f}%s\n",
                 p.shards, p.ok ? "true" : "false", p.create.ops_per_s,
                 p.create.p50.as_us(), p.create.p99.as_us(), p.open.ops_per_s,
                 p.open.p50.as_us(), p.open.p99.as_us(), p.remove.ops_per_s,
                 p.remove.p50.as_us(), p.remove.p99.as_us(),
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote BENCH_metadata.json\n");
}

void run(bool smoke) {
  const u32 clients = smoke ? 8 : 16;
  const u32 ops_per_client = smoke ? 16 : 64;
  const std::vector<u32> shard_counts =
      smoke ? std::vector<u32>{1, 4} : std::vector<u32>{1, 2, 4, 8};

  header("Metadata storm: namespace op throughput vs manager shard count",
         fmt_int(clients) + " clients x " + fmt_int(ops_per_client) +
             " ops per phase (create, then open, then remove); names "
             "FNV-1a-hash\nacross the shards, meta_cpu_queue on so each "
             "manager's 5 us lookup queues on\nits own CPU. Remove also "
             "broadcasts unlinks to the (shared) iods, so it\nscales less "
             "than create/open");

  Table t({"shards", "create kop/s", "create p99", "open kop/s", "open p99",
           "remove kop/s", "remove p99", "redirects", "status"});
  std::vector<StormPoint> points;
  for (u32 shards : shard_counts) {
    points.push_back(run_storm(shards, clients, ops_per_client));
    const StormPoint& p = points.back();
    t.row({fmt_int(p.shards), fmt_kops(p.create.ops_per_s),
           p.create.p99.to_string(), fmt_kops(p.open.ops_per_s),
           p.open.p99.to_string(), fmt_kops(p.remove.ops_per_s),
           p.remove.p99.to_string(), fmt_int(p.redirects),
           p.ok ? "ok" : "FAILED"});
  }
  t.print();
  std::printf("\n");
  write_json(points, clients, ops_per_client);
}

}  // namespace
}  // namespace pvfsib::bench

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  pvfsib::bench::run(smoke);
  return 0;
}
