// Interactive-style explorer for the Active Data Sieving cost model: feed
// it access patterns (count, piece size, stride) and see the model's four
// terms and its verdict, exactly as the I/O daemon computes them. Useful
// for understanding *why* the server sieves one request and not another.
//
//   ./cost_model_explorer [N] [piece] [stride]     one pattern
//   ./cost_model_explorer                          a tour of patterns
#include <cstdio>
#include <cstdlib>

#include "core/ads.h"

using namespace pvfsib;

static void show(const core::ActiveDataSieving& ads, u64 n, u64 piece,
                 u64 stride, bool append) {
  ExtentList acc;
  for (u64 i = 0; i < n; ++i) acc.push_back({i * stride, piece});
  const u64 file_size = append ? 0 : ~0ULL;
  const core::AdsDecision d = ads.decide(acc, /*is_write=*/true, file_size);
  const core::AdsDecision dr = ads.decide(acc, /*is_write=*/false, ~0ULL);
  std::printf(
      "%5llu x %6llu B / stride %6llu%s | S_req %7.0f KiB  S_ds %7.0f KiB\n"
      "    write: T_sep %9.2f ms  T_dsw %9.2f ms  -> %s\n"
      "    read:  T_sep %9.2f ms  T_dsr %9.2f ms  -> %s\n",
      static_cast<unsigned long long>(n),
      static_cast<unsigned long long>(piece),
      static_cast<unsigned long long>(stride), append ? " (append)" : "",
      static_cast<double>(d.s_req) / 1024.0,
      static_cast<double>(d.s_ds) / 1024.0, d.t_separate.as_ms(),
      d.t_sieve.as_ms(), d.sieve ? "SIEVE" : "separate",
      dr.t_separate.as_ms(), dr.t_sieve.as_ms(),
      dr.sieve ? "SIEVE" : "separate");
}

int main(int argc, char** argv) {
  const ModelConfig cfg = ModelConfig::paper_defaults();
  core::ActiveDataSieving ads(cfg.disk, cfg.fs, cfg.mem);

  std::printf("ADS cost model (Table 1 parameters):\n"
              "  O_r/O_w %.1f us, O_seek %.1f us, O_lock %.1f us,\n"
              "  media %.0f/%.0f MB/s (half-size %llu KiB), memcpy %.0f MB/s\n\n",
              cfg.fs.read_overhead.as_us(), cfg.fs.seek_overhead.as_us(),
              cfg.fs.lock_overhead.as_us(), cfg.disk.media_write_bw,
              cfg.disk.media_read_bw,
              static_cast<unsigned long long>(cfg.disk.media_half_size / kKiB),
              cfg.mem.memcpy_bw);

  if (argc == 4) {
    show(ads, std::strtoull(argv[1], nullptr, 10),
         std::strtoull(argv[2], nullptr, 10),
         std::strtoull(argv[3], nullptr, 10), false);
    return 0;
  }

  std::printf("-- the Figure 6 sweep: 1-in-4 density, growing pieces --\n");
  for (u64 piece : {512, 1024, 2048, 4096, 8192}) {
    show(ads, 128, piece, piece * 4, false);
  }
  std::printf("\n-- density matters: 2 KiB pieces, growing holes --\n");
  for (u64 stride : {4096, 8192, 32768, 262144}) {
    show(ads, 128, 2048, stride, false);
  }
  std::printf("\n-- EOF awareness: the same append-pattern write sieves --\n");
  show(ads, 128, 2560, 10240, false);
  show(ads, 128, 2560, 10240, true);
  return 0;
}
