// BTIO in miniature: runs the BTIO-like output pattern (diagonal-interleaved
// appends, noncontiguous in memory and file) for a configurable number of
// phases under a chosen I/O method, then verifies the file contents.
//
//   ./btio_demo [phases] [method: multiple|collective|list|ads|ds]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "workloads/btio.h"

using namespace pvfsib;

static mpiio::IoMethod parse_method(const char* s) {
  if (std::strcmp(s, "multiple") == 0) return mpiio::IoMethod::kMultiple;
  if (std::strcmp(s, "collective") == 0) return mpiio::IoMethod::kCollective;
  if (std::strcmp(s, "list") == 0) return mpiio::IoMethod::kListIo;
  if (std::strcmp(s, "ds") == 0) return mpiio::IoMethod::kDataSieving;
  return mpiio::IoMethod::kListIoAds;
}

int main(int argc, char** argv) {
  workloads::BtioConfig cfg;
  cfg.timesteps = (argc > 1 ? std::atoi(argv[1]) : 4) * cfg.write_interval;
  const mpiio::IoMethod method =
      parse_method(argc > 2 ? argv[2] : "ads");
  workloads::BtioWorkload bt(cfg);

  pvfs::Cluster cluster(ModelConfig::paper_defaults(), 4, 4);
  mpiio::Communicator comm(cluster);
  mpiio::File out = mpiio::File::create(comm, "/btio.out").value();

  std::printf("BTIO-like run: %d output phases of %llu KiB, method %s\n",
              bt.output_phases(),
              static_cast<unsigned long long>(bt.step_block_bytes() / kKiB),
              mpiio::to_string(method));

  mpiio::Hints hints;
  hints.method = method;
  std::vector<u64> buf(4);
  for (int p = 0; p < 4; ++p) {
    buf[p] = comm.rank(p).memory().alloc(bt.mem_extent_bytes());
  }

  Duration io_time = Duration::zero();
  for (int phase = 0; phase < bt.output_phases(); ++phase) {
    // Fill each rank's pieces with a recognizable pattern.
    for (int p = 0; p < 4; ++p) {
      pvfs::Client& c = comm.rank(p);
      const auto mt = bt.memtype();
      u64 k = 0;
      for (const Extent& e : mt.map()) {
        for (u64 i = 0; i < e.length; ++i, ++k) {
          c.memory().write_pod<u8>(buf[p] + e.offset + i,
                                   static_cast<u8>(phase * 13 + p * 7 + k));
        }
      }
    }
    std::vector<mpiio::RankIo> io(4);
    for (int p = 0; p < 4; ++p) io[p] = bt.rank_io(phase, p, buf[p]);
    for (const pvfs::IoResult& r : out.write_all(io, hints)) {
      if (!r.ok()) {
        std::fprintf(stderr, "phase %d: %s\n", phase,
                     r.status.to_string().c_str());
        return 1;
      }
      io_time = max(io_time, r.elapsed());
    }
  }
  std::printf("slowest output phase: %s\n", io_time.to_string().c_str());

  // Verify the last phase by reading the step block back contiguously.
  pvfs::Client& c0 = comm.rank(0);
  const int last = bt.output_phases() - 1;
  const u64 block = bt.step_block_bytes();
  const u64 rd = c0.memory().alloc(block);
  pvfs::IoResult res = c0.read(out.handle(0),
                               static_cast<u64>(last) * block, rd, block);
  if (!res.ok()) {
    std::fprintf(stderr, "verify read failed\n");
    return 1;
  }
  const u64 slots = 4 * bt.config().pieces_per_proc;
  std::vector<u64> piece_idx(4, 0);  // per-owner running piece counter
  for (u64 slot = 0; slot < slots; ++slot) {
    const int owner = bt.slot_owner(slot);
    const u64 k0 = piece_idx[owner] * bt.config().piece_bytes;
    for (u64 i = 0; i < bt.config().piece_bytes; i += 509) {
      const u8 expect = static_cast<u8>(last * 13 + owner * 7 + k0 + i);
      const u8 got = c0.memory().read_pod<u8>(
          rd + slot * bt.config().piece_bytes + i);
      if (expect != got) {
        std::fprintf(stderr, "verify mismatch at slot %llu\n",
                     static_cast<unsigned long long>(slot));
        return 1;
      }
    }
    ++piece_idx[owner];
  }
  std::printf("verified %llu slots of the final phase\n",
              static_cast<unsigned long long>(slots));
  return 0;
}
