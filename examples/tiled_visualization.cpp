// Tiled visualization: the mpi-tile-io scenario from the paper's intro —
// four render nodes each own one tile of a 2x2 display wall and
// read/write frames of a shared movie file through MPI-IO. Compares the
// four ROMIO access methods on the same frames and verifies pixel data.
//
//   ./tiled_visualization [frames]
#include <cstdio>
#include <cstdlib>

#include "workloads/tile_io.h"

using namespace pvfsib;

int main(int argc, char** argv) {
  const int frames = argc > 1 ? std::atoi(argv[1]) : 4;

  pvfs::Cluster cluster(ModelConfig::paper_defaults(), 4, 4);
  mpiio::Communicator comm(cluster);
  workloads::TileIoWorkload wall;  // 2x2 x 1024x768 x 24bit = 9 MB frames

  Result<mpiio::File> file = mpiio::File::create(comm, "/movie");
  if (!file.is_ok()) {
    std::fprintf(stderr, "create: %s\n", file.status().to_string().c_str());
    return 1;
  }
  mpiio::File movie = file.value();

  std::printf("display wall: %llux%llu pixels, %d tiles, %llu KiB frames\n",
              static_cast<unsigned long long>(wall.frame_w()),
              static_cast<unsigned long long>(wall.frame_h()),
              wall.procs(),
              static_cast<unsigned long long>(wall.frame_bytes() / kKiB));

  // Each rank renders into its tile buffer.
  std::vector<u64> render(4), replay(4);
  for (int p = 0; p < 4; ++p) {
    pvfs::Client& c = comm.rank(p);
    render[p] = c.memory().alloc(wall.tile_bytes());
    replay[p] = c.memory().alloc(wall.tile_bytes());
  }

  const mpiio::IoMethod methods[] = {
      mpiio::IoMethod::kMultiple, mpiio::IoMethod::kDataSieving,
      mpiio::IoMethod::kListIo, mpiio::IoMethod::kListIoAds};

  for (int frame = 0; frame < frames; ++frame) {
    const mpiio::IoMethod method = methods[frame % 4];
    mpiio::Hints hints;
    hints.method = method;

    // "Render": fill each tile with a frame-dependent gradient.
    for (int p = 0; p < 4; ++p) {
      pvfs::Client& c = comm.rank(p);
      auto px = c.memory().writable_span(render[p], wall.tile_bytes());
      for (u64 i = 0; i < px.size(); ++i) {
        px[i] = static_cast<std::byte>((i + frame * 7 + p * 31) & 0xff);
      }
    }

    std::vector<mpiio::RankIo> wio(4), rio(4);
    for (int p = 0; p < 4; ++p) {
      wio[p] = wall.rank_io(p, render[p]);
      rio[p] = wall.rank_io(p, replay[p]);
    }
    Duration wmax = Duration::zero(), rmax = Duration::zero();
    for (const pvfs::IoResult& res : movie.write_all(wio, hints)) {
      if (!res.ok()) {
        std::fprintf(stderr, "write: %s\n", res.status.to_string().c_str());
        return 1;
      }
      wmax = max(wmax, res.elapsed());
    }
    for (const pvfs::IoResult& res : movie.read_all(rio, hints)) {
      if (!res.ok()) {
        std::fprintf(stderr, "read: %s\n", res.status.to_string().c_str());
        return 1;
      }
      rmax = max(rmax, res.elapsed());
    }
    // Verify the replayed pixels.
    for (int p = 0; p < 4; ++p) {
      pvfs::Client& c = comm.rank(p);
      if (std::memcmp(c.memory().data(render[p]), c.memory().data(replay[p]),
                      wall.tile_bytes()) != 0) {
        std::fprintf(stderr, "frame %d tile %d mismatch\n", frame, p);
        return 1;
      }
    }
    std::printf(
        "frame %d via %-18s write %8s (%6.1f MB/s)  read %8s (%6.1f MB/s)\n",
        frame, mpiio::to_string(method), wmax.to_string().c_str(),
        bandwidth_mib(wall.frame_bytes(), wmax), rmax.to_string().c_str(),
        bandwidth_mib(wall.frame_bytes(), rmax));
  }
  std::printf("all frames verified\n");
  return 0;
}
