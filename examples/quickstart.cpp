// Quickstart: bring up a simulated 4+4 PVFS-over-InfiniBand cluster, write
// and read a striped file, then issue a noncontiguous list I/O request and
// watch Optimistic Group Registration and Active Data Sieving do their work.
//
//   ./quickstart [--trace]    (--trace dumps the protocol event trace)
#include <cstdio>
#include <cstring>

#include "pvfsib.h"

using namespace pvfsib;

int main(int argc, char** argv) {
  const bool trace = argc > 1 && std::strcmp(argv[1], "--trace") == 0;
  if (trace) sim::Trace::instance().enable();
  // The model defaults are the paper's testbed: Mellanox InfiniHost-era
  // fabric (Table 2), ATA disk + ext3 (Table 3), PVFS 64 KiB stripes.
  pvfs::Cluster cluster(ModelConfig::paper_defaults(), /*clients=*/4,
                        /*iods=*/4);
  pvfs::Client& client = cluster.client(0);

  // --- create a file striped over all four I/O servers -----------------
  Result<pvfs::OpenFile> file = client.create("/demo/data");
  if (!file.is_ok()) {
    std::fprintf(stderr, "create failed: %s\n",
                 file.status().to_string().c_str());
    return 1;
  }
  pvfs::OpenFile f = file.value();
  std::printf("created /demo/data: handle %llu, stripe %llu KiB, %u iods\n",
              static_cast<unsigned long long>(f.meta.handle),
              static_cast<unsigned long long>(f.meta.stripe_size / kKiB),
              f.meta.iod_count);

  // --- contiguous write/read ------------------------------------------
  const u64 n = 1 * kMiB;
  const u64 src = client.memory().alloc(n);
  const u64 dst = client.memory().alloc(n);
  for (u64 i = 0; i < n; i += 8) {
    client.memory().write_pod<u64>(src + i, i * 0x9e3779b97f4a7c15ULL);
  }
  pvfs::IoResult w = client.write(f, 0, src, n);
  std::printf("contiguous write: %llu KiB in %s (%.0f MB/s)\n",
              static_cast<unsigned long long>(w.bytes / kKiB),
              w.elapsed().to_string().c_str(), w.bandwidth_mib());
  pvfs::IoResult r = client.read(f, 0, dst, n);
  std::printf("contiguous read:  %llu KiB in %s (%.0f MB/s)\n",
              static_cast<unsigned long long>(r.bytes / kKiB),
              r.elapsed().to_string().c_str(), r.bandwidth_mib());
  if (std::memcmp(client.memory().data(src), client.memory().data(dst), n) !=
      0) {
    std::fprintf(stderr, "data mismatch!\n");
    return 1;
  }

  // --- noncontiguous list I/O -------------------------------------------
  // 256 small strided pieces, the access shape that motivates the paper:
  // noncontiguous in memory (every other 1 KiB row) and in the file
  // (1 KiB of every 4 KiB).
  core::ListIoRequest req;
  const u64 rows = 256;
  const u64 base = client.memory().alloc(rows * 2 * kKiB);
  for (u64 i = 0; i < rows; ++i) {
    req.mem.push_back({base + i * 2 * kKiB, kKiB});
    req.file.push_back({i * 4 * kKiB, kKiB});
  }
  const Stats before = cluster.stats();
  pvfs::IoResult lw = client.write_list(f, req);
  pvfs::IoResult lr = client.read_list(f, req);
  const Stats d = cluster.stats().diff(before);
  std::printf(
      "list I/O: wrote+read %llu KiB in %s + %s\n"
      "  requests: %lld   registrations: %lld (cache hits %lld)\n"
      "  iod decisions: %lld sieved, %lld separate; disk ops %lld\n",
      static_cast<unsigned long long>((lw.bytes + lr.bytes) / kKiB),
      lw.elapsed().to_string().c_str(), lr.elapsed().to_string().c_str(),
      static_cast<long long>(d.get(stat::kPvfsRequest)),
      static_cast<long long>(d.get(stat::kMrRegister)),
      static_cast<long long>(d.get(stat::kMrCacheHit)),
      static_cast<long long>(d.get(stat::kAdsSieved)),
      static_cast<long long>(d.get(stat::kAdsSeparate)),
      static_cast<long long>(d.get(stat::kDiskRead) +
                             d.get(stat::kDiskWrite)));
  // Where the time went, summed over all four servers' round chains (the
  // buckets overlap in wall-clock time, so they add up to more than the
  // elapsed figures above).
  auto phase_line = [](const char* what, const pvfs::IoResult& res) {
    std::printf(
        "  %s phases: registration %s, wire %s, disk %s, stall %s\n", what,
        res.phases.registration.to_string().c_str(),
        res.phases.wire.to_string().c_str(),
        res.phases.disk.to_string().c_str(),
        res.phases.stall.to_string().c_str());
  };
  phase_line("write", lw);
  phase_line("read", lr);

  if (trace) {
    std::printf("\n--- protocol trace (most recent events) ---\n");
    sim::Trace::instance().dump(stdout, 32);
  }
  std::printf("quickstart OK\n");
  return 0;
}
