// Checkpointing a block-distributed 2-D field: each of four solver ranks
// owns one quadrant of an N x N double-precision grid (as rows of a bigger
// local allocation, the paper's canonical noncontiguous-buffer source) and
// periodically checkpoints it with PVFS list I/O. Demonstrates Optimistic
// Group Registration on real subarray buffers and restart verification.
//
//   ./checkpoint_subarray [N] [checkpoints]
#include <cstdio>
#include <cstdlib>

#include "pvfs/cluster.h"
#include "workloads/subarray.h"

using namespace pvfsib;

int main(int argc, char** argv) {
  const u64 n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2048;
  const int checkpoints = argc > 2 ? std::atoi(argv[2]) : 3;

  pvfs::Cluster cluster(ModelConfig::paper_defaults(), 4, 4);
  workloads::SubarrayLayout grid;
  grid.n = n;
  grid.elem = 8;  // doubles

  std::printf("grid %llux%llu doubles, %llu MiB per checkpoint\n",
              static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(grid.array_bytes() / kMiB));

  // Each rank allocates its full local array; the subarray rows are the
  // noncontiguous list I/O buffers.
  std::vector<u64> field(4);
  std::vector<pvfs::OpenFile> files(4);
  for (u32 r = 0; r < 4; ++r) {
    pvfs::Client& c = cluster.client(r);
    field[r] = grid.alloc_array(c.memory());
    files[r] = r == 0 ? c.create("/ckpt").value() : c.open("/ckpt").value();
  }

  for (int ck = 0; ck < checkpoints; ++ck) {
    // "Solve": evolve each rank's quadrant.
    for (u32 r = 0; r < 4; ++r) {
      pvfs::Client& c = cluster.client(r);
      for (const core::MemSegment& row :
           grid.subarray_rows(field[r], r / 2, r % 2)) {
        for (u64 i = 0; i < row.length; i += 8) {
          c.memory().write_pod<u64>(row.addr + i,
                                    (row.addr + i) * 31 + ck * 977);
        }
      }
    }
    // Checkpoint: every rank writes its quadrant rows; sync so the
    // checkpoint is durable (the paper's "write with sync" mode).
    Duration slowest = Duration::zero();
    const Stats before = cluster.stats();
    std::vector<pvfs::IoResult> results(4);
    int pending = 4;
    for (u32 r = 0; r < 4; ++r) {
      pvfs::Client& c = cluster.client(r);
      core::ListIoRequest req;
      req.mem = grid.subarray_rows(field[r], r / 2, r % 2);
      req.file = grid.contiguous_file_extents(r / 2, r % 2);
      const pvfs::IoOptions opts = pvfs::IoOptions{}.with_sync();
      c.submit({pvfs::IoDir::kWrite, files[r], req, opts,
                cluster.engine().now()})
          .on_complete([&results, &pending, r](pvfs::IoResult res) {
            results[r] = res;
            --pending;
          });
    }
    cluster.engine().run_until([&] { return pending == 0; });
    u64 bytes = 0;
    for (const pvfs::IoResult& res : results) {
      if (!res.ok()) {
        std::fprintf(stderr, "checkpoint failed: %s\n",
                     res.status.to_string().c_str());
        return 1;
      }
      bytes += res.bytes;
      slowest = max(slowest, res.elapsed());
    }
    const Stats d = cluster.stats().diff(before);
    std::printf(
        "checkpoint %d: %llu MiB durable in %s (%.1f MB/s); "
        "%lld group registrations for %lld row buffers\n",
        ck, static_cast<unsigned long long>(bytes / kMiB),
        slowest.to_string().c_str(), bandwidth_mib(bytes, slowest),
        static_cast<long long>(d.get(stat::kMrRegister)),
        static_cast<long long>(4 * grid.sub_rows()));
  }

  // Restart: a fresh rank-0 reads every quadrant back and verifies the
  // final state.
  pvfs::Client& c0 = cluster.client(0);
  for (u32 r = 0; r < 4; ++r) {
    const u64 buf = c0.memory().alloc(grid.sub_bytes());
    pvfs::IoResult rd = c0.read(files[0], r * grid.sub_bytes(), buf,
                                grid.sub_bytes());
    if (!rd.ok()) {
      std::fprintf(stderr, "restart read failed\n");
      return 1;
    }
    // Spot-check against the generator for the last checkpoint.
    pvfs::Client& cr = cluster.client(r);
    const auto rows = grid.subarray_rows(field[r], r / 2, r % 2);
    u64 off = 0;
    for (const core::MemSegment& row : rows) {
      if (std::memcmp(c0.memory().data(buf + off), cr.memory().data(row.addr),
                      row.length) != 0) {
        std::fprintf(stderr, "restart verification failed (rank %u)\n", r);
        return 1;
      }
      off += row.length;
    }
  }
  std::printf("restart verified: all %d quadrants match the final state\n", 4);
  return 0;
}
