#!/usr/bin/env python3
"""Validate the machine-readable BENCH_*.json files the benches emit.

Schema-aware: dispatches on the top-level "bench" name, so one checker
covers every bench that emits JSON (load_harness, fault_sweep, ...). Fails
(exit 1) when a file does not parse as JSON or is missing the keys CI
depends on — the sweep itself plus, per point, the quantities documented
in EXPERIMENTS.md.
"""
import json
import sys

LOAD_POINT_KEYS = (
    "clients",
    "iods",
    "ok",
    "ops",
    "ops_per_s",
    "mib_per_s",
    "p50_us",
    "p99_us",
    "p999_us",
    "fairness",
    "intervals",
)

RATE_POINT_KEYS = (
    "rate",
    "mbps",
    "ok",
    "p50_us",
    "p99_us",
    "injected",
    "timeouts",
    "retries",
)

STORM_POINT_KEYS = (
    "shards",
    "ok",
    "create_ops_per_s",
    "create_p50_us",
    "create_p99_us",
    "create_p999_us",
    "open_ops_per_s",
    "open_p50_us",
    "open_p99_us",
    "open_p999_us",
    "remove_ops_per_s",
    "remove_p50_us",
    "remove_p99_us",
    "remove_p999_us",
    "redirects",
)

MIGRATION_KEYS = (
    "shard",
    "shards",
    "windows",
    "window_us",
    "migrate_at_us",
    "baseline_ops_per_s",
    "dip_min_ops_per_s",
    "dip_depth_pct",
    "dip_windows",
    "others_baseline_ops_per_s",
    "others_dip_depth_pct",
    "redirects",
    "wrong_shard_during_migration",
    "migrations",
    "migration_rounds",
    "aborts",
    "splits",
    "shards_after_split",
    "post_split_ok",
    "ok",
)

CACHE_POINT_KEYS = (
    "cache_bytes",
    "ok",
    "hit_rate",
    "hits",
    "misses",
    "wire_requests",
    "ops",
    "ops_per_s",
    "p50_us",
    "p99_us",
)

CORRUPTION_POINT_KEYS = (
    "flips_scheduled",
    "scrub",
    "flips_injected",
    "detect_latency_ms",
    "detections",
    "repairs",
    "read_ok",
    "data_ok",
)


def fail(msg: str) -> None:
    print(f"check_bench_json: {msg}", file=sys.stderr)
    sys.exit(1)


def require_points(path, doc, key, point_keys, allow_empty=False):
    if key not in doc:
        fail(f"{path}: missing key '{key}'")
    points = doc[key]
    if not isinstance(points, list) or (not points and not allow_empty):
        fail(f"{path}: '{key}' must be a non-empty list")
    for i, pt in enumerate(points):
        for k in point_keys:
            if k not in pt:
                fail(f"{path}: {key}[{i}] missing key '{k}'")
    return points


def check_load(path, doc):
    for key in ("config", "points"):
        if key not in doc:
            fail(f"{path}: missing top-level key '{key}'")
    points = require_points(path, doc, "points", LOAD_POINT_KEYS)
    for i, pt in enumerate(points):
        if not pt["ok"]:
            fail(f"{path}: points[{i}] (clients={pt['clients']}) reports ok=false")
        if pt["ops"] > 0 and not (pt["p50_us"] <= pt["p99_us"] <= pt["p999_us"]):
            fail(f"{path}: points[{i}] quantiles not monotone")
    # The --faults sweep is optional; validate it when present.
    if "fault_points" in doc:
        fpts = require_points(
            path, doc, "fault_points", LOAD_POINT_KEYS + ("scrub", "fault"),
            allow_empty=True)
        for i, pt in enumerate(fpts):
            if pt["ops"] > 0 and not (pt["p50_us"] <= pt["p99_us"] <= pt["p999_us"]):
                fail(f"{path}: fault_points[{i}] quantiles not monotone")
            # The migration point's disturbance must actually have fired:
            # the shard moved mid-measure and every op still completed.
            if pt["fault"] == "migration":
                if pt.get("migrations", 0) < 1:
                    fail(f"{path}: fault_points[{i}] migration point "
                         f"completed no migrations")
                if not pt["ok"]:
                    fail(f"{path}: fault_points[{i}] migration point "
                         f"reports ok=false")
    # The --cache sweep is optional; when present the first point must be
    # the uncached baseline (cache_bytes == 0, zero cache traffic), the
    # hit rate must be monotone nondecreasing in cache capacity, and every
    # cached point must beat the baseline's throughput — hits that do not
    # buy ops mean the tier is not short-circuiting the wire.
    n = len(points)
    if "cache" in doc:
        cache = doc["cache"]
        if not isinstance(cache, dict):
            fail(f"{path}: 'cache' must be an object")
        cpts = require_points(path, cache, "points", CACHE_POINT_KEYS)
        if cpts[0]["cache_bytes"] != 0:
            fail(f"{path}: cache.points[0] must be the uncached baseline")
        if cpts[0]["hits"] != 0 or cpts[0]["misses"] != 0:
            fail(f"{path}: uncached baseline counted cache traffic "
                 f"(hits={cpts[0]['hits']}, misses={cpts[0]['misses']})")
        baseline = cpts[0]["ops_per_s"]
        prev_bytes, prev_rate = 0, 0.0
        for i, pt in enumerate(cpts):
            if not pt["ok"]:
                fail(f"{path}: cache.points[{i}] reports ok=false")
            if pt["cache_bytes"] < prev_bytes:
                fail(f"{path}: cache.points[{i}] capacities not ascending")
            if i > 0:
                if pt["hit_rate"] + 1e-9 < prev_rate:
                    fail(f"{path}: cache.points[{i}] hit_rate "
                         f"{pt['hit_rate']} fell below {prev_rate} at a "
                         f"larger capacity")
                if pt["hit_rate"] <= 0.0:
                    fail(f"{path}: cache.points[{i}] cached run had no hits")
                if pt["ops_per_s"] < baseline:
                    fail(f"{path}: cache.points[{i}] throughput "
                         f"{pt['ops_per_s']} below uncached baseline "
                         f"{baseline}")
                prev_rate = pt["hit_rate"]
            prev_bytes = pt["cache_bytes"]
        n += len(cpts)
    return n


def check_fault(path, doc):
    if "config" not in doc:
        fail(f"{path}: missing top-level key 'config'")
    n = 0
    for key in ("write_rate_points", "read_rate_points"):
        points = require_points(path, doc, key, RATE_POINT_KEYS)
        for i, pt in enumerate(points):
            if not pt["ok"]:
                fail(f"{path}: {key}[{i}] (rate={pt['rate']}) reports ok=false")
            if not pt["p50_us"] <= pt["p99_us"]:
                fail(f"{path}: {key}[{i}] quantiles not monotone")
        n += len(points)
    corr = doc.get("corruption")
    if not isinstance(corr, dict):
        fail(f"{path}: missing 'corruption' section")
    points = require_points(path, corr, "points", CORRUPTION_POINT_KEYS)
    for i, pt in enumerate(points):
        # The sweep stays in the recoverable regime (one chain member
        # corrupted), so reads must succeed and return intact bytes —
        # scrubber or not — and the scrubbed runs must actually repair.
        if not pt["read_ok"] or not pt["data_ok"]:
            fail(f"{path}: corruption.points[{i}] lost data "
                 f"(read_ok={pt['read_ok']}, data_ok={pt['data_ok']})")
        if pt["scrub"] and pt["flips_injected"] > 0 and pt["repairs"] < 1:
            fail(f"{path}: corruption.points[{i}] scrubbed run repaired nothing")
    return n + len(points)


def check_storm(path, doc):
    for key in ("clients", "ops_per_client"):
        if key not in doc:
            fail(f"{path}: missing top-level key '{key}'")
    points = require_points(path, doc, "points", STORM_POINT_KEYS)
    for i, pt in enumerate(points):
        if not pt["ok"]:
            fail(f"{path}: points[{i}] (shards={pt['shards']}) reports ok=false")
        for op in ("create", "open", "remove"):
            if not (pt[f"{op}_p50_us"] <= pt[f"{op}_p99_us"]
                    <= pt[f"{op}_p999_us"]):
                fail(f"{path}: points[{i}] {op} quantiles not monotone")
    # The --migrate scenario is optional; when present the migration must
    # have completed exactly once without aborting, the post-storm split
    # must have doubled the plane, and redirects must actually have flowed
    # (stale clients converge through kWrongShard, not magic).
    n = len(points)
    if "migration" in doc:
        mig = doc["migration"]
        if not isinstance(mig, dict):
            fail(f"{path}: 'migration' must be an object")
        for k in MIGRATION_KEYS:
            if k not in mig:
                fail(f"{path}: migration missing key '{k}'")
        if not mig["ok"] or not mig["post_split_ok"]:
            fail(f"{path}: migration reports ok={mig['ok']} "
                 f"post_split_ok={mig['post_split_ok']}")
        if mig["migrations"] != 1 or mig["aborts"] != 0:
            fail(f"{path}: migration expected 1 completed migration, got "
                 f"migrations={mig['migrations']} aborts={mig['aborts']}")
        if mig["splits"] != 1 or mig["shards_after_split"] != 2 * mig["shards"]:
            fail(f"{path}: split did not double the plane "
                 f"(splits={mig['splits']}, "
                 f"shards_after_split={mig['shards_after_split']})")
        if mig["redirects"] < 1:
            fail(f"{path}: migration saw no shard redirects")
        if mig["baseline_ops_per_s"] <= 0:
            fail(f"{path}: migration baseline throughput is zero")
        if mig["dip_min_ops_per_s"] > mig["baseline_ops_per_s"]:
            fail(f"{path}: migration dip minimum exceeds baseline")
        n += 1
    return n


CHECKERS = {
    "load_harness": check_load,
    "fault_sweep": check_fault,
    "meta_storm": check_storm,
}


def main() -> None:
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_load.json"
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")

    bench = doc.get("bench")
    checker = CHECKERS.get(bench)
    if checker is None:
        fail(f"{path}: unknown bench name {bench!r}")
    n = checker(path, doc)
    print(f"{path}: OK ({n} sweep points)")


if __name__ == "__main__":
    main()
