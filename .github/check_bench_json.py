#!/usr/bin/env python3
"""Validate a BENCH_load.json emitted by bench/load_harness.

Fails (exit 1) when the file does not parse as JSON or is missing the keys
CI depends on: the sweep itself plus, per point, the saturation-curve
quantities documented in EXPERIMENTS.md.
"""
import json
import sys

TOP_KEYS = ("bench", "config", "points")
POINT_KEYS = (
    "clients",
    "iods",
    "ok",
    "ops",
    "ops_per_s",
    "mib_per_s",
    "p50_us",
    "p99_us",
    "p999_us",
    "fairness",
    "intervals",
)


def fail(msg: str) -> None:
    print(f"check_bench_json: {msg}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_load.json"
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")

    for key in TOP_KEYS:
        if key not in doc:
            fail(f"{path}: missing top-level key '{key}'")
    if doc["bench"] != "load_harness":
        fail(f"{path}: unexpected bench name {doc['bench']!r}")
    points = doc["points"]
    if not isinstance(points, list) or not points:
        fail(f"{path}: 'points' must be a non-empty list")
    for i, pt in enumerate(points):
        for key in POINT_KEYS:
            if key not in pt:
                fail(f"{path}: points[{i}] missing key '{key}'")
        if not pt["ok"]:
            fail(f"{path}: points[{i}] (clients={pt['clients']}) reports ok=false")
        if pt["ops"] > 0 and not (pt["p50_us"] <= pt["p99_us"] <= pt["p999_us"]):
            fail(f"{path}: points[{i}] quantiles not monotone")
    print(f"{path}: OK ({len(points)} sweep points)")


if __name__ == "__main__":
    main()
