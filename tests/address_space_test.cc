#include "vmem/address_space.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace pvfsib::vmem {
namespace {

TEST(AddressSpace, AllocReturnsPageAlignedMappedRange) {
  AddressSpace as;
  const u64 a = as.alloc(100);
  EXPECT_EQ(a % kPageSize, 0u);
  EXPECT_GE(a, AddressSpace::kBaseVaddr);
  EXPECT_TRUE(as.range_allocated(a, 100));
  // The whole page is mapped even though only 100 bytes were asked for.
  EXPECT_TRUE(as.range_allocated(a, kPageSize));
  EXPECT_FALSE(as.range_allocated(a, kPageSize + 1));
}

TEST(AddressSpace, ConsecutiveAllocsAreMerged) {
  AddressSpace as;
  const u64 a = as.alloc(kPageSize);
  const u64 b = as.alloc(kPageSize);
  EXPECT_EQ(b, a + kPageSize);
  EXPECT_TRUE(as.range_allocated(a, 2 * kPageSize));
  EXPECT_EQ(as.allocated_extents().size(), 1u);
}

TEST(AddressSpace, SkipCreatesHole) {
  AddressSpace as;
  const u64 a = as.alloc(kPageSize);
  as.skip(3 * kPageSize);
  const u64 b = as.alloc(kPageSize);
  EXPECT_EQ(b, a + 4 * kPageSize);
  EXPECT_FALSE(as.range_allocated(a, b + kPageSize - a));
  EXPECT_EQ(as.allocated_extents().size(), 2u);
}

TEST(AddressSpace, AllocAtAndOverlapRejection) {
  AddressSpace as;
  const u64 at = AddressSpace::kBaseVaddr + 64 * kPageSize;
  ASSERT_TRUE(as.alloc_at(at, 2 * kPageSize).is_ok());
  EXPECT_TRUE(as.range_allocated(at, 2 * kPageSize));
  // Overlapping remap fails.
  EXPECT_FALSE(as.alloc_at(at + kPageSize, kPageSize).is_ok());
  // Unaligned or below-base fails.
  EXPECT_FALSE(as.alloc_at(at + 10 * kPageSize + 1, kPageSize).is_ok());
  EXPECT_FALSE(as.alloc_at(kPageSize, kPageSize).is_ok());
}

TEST(AddressSpace, FreeUnmaps) {
  AddressSpace as;
  const u64 a = as.alloc(4 * kPageSize);
  const u64 b = as.alloc(4 * kPageSize);
  ASSERT_TRUE(as.free_at(a).is_ok());
  EXPECT_FALSE(as.range_allocated(a, kPageSize));
  EXPECT_TRUE(as.range_allocated(b, 4 * kPageSize));
  // Double free fails.
  EXPECT_FALSE(as.free_at(a).is_ok());
  // Freeing keeps neighbours intact.
  EXPECT_EQ(as.allocated_extents().size(), 1u);
}

TEST(AddressSpace, FreeMiddleSplitsExtent) {
  AddressSpace as;
  const u64 a = as.alloc(kPageSize);
  const u64 b = as.alloc(kPageSize);
  const u64 c = as.alloc(kPageSize);
  ASSERT_TRUE(as.free_at(b).is_ok());
  EXPECT_TRUE(as.range_allocated(a, kPageSize));
  EXPECT_FALSE(as.range_allocated(b, kPageSize));
  EXPECT_TRUE(as.range_allocated(c, kPageSize));
  EXPECT_EQ(as.allocated_extents().size(), 2u);
}

TEST(AddressSpace, AllocatedWithinWindow) {
  AddressSpace as;
  const u64 a = as.alloc(2 * kPageSize);
  as.skip(2 * kPageSize);
  const u64 b = as.alloc(2 * kPageSize);
  const Extent window{a, b + 2 * kPageSize - a};
  const ExtentList got = as.allocated_within(window);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], (Extent{a, 2 * kPageSize}));
  EXPECT_EQ(got[1], (Extent{b, 2 * kPageSize}));
  // A window clipping into the middle of extents clips the results.
  const ExtentList clipped =
      as.allocated_within({a + kPageSize, 2 * kPageSize});
  ASSERT_EQ(clipped.size(), 1u);
  EXPECT_EQ(clipped[0], (Extent{a + kPageSize, kPageSize}));
}

TEST(AddressSpace, DataReadWrite) {
  AddressSpace as;
  const u64 a = as.alloc(kPageSize);
  as.write_pod<u64>(a + 8, 0xdeadbeefULL);
  EXPECT_EQ(as.read_pod<u64>(a + 8), 0xdeadbeefULL);
  auto span = as.writable_span(a, 16);
  span[0] = std::byte{42};
  EXPECT_EQ(as.readable_span(a, 16)[0], std::byte{42});
}

TEST(AddressSpace, BytesMapped) {
  AddressSpace as;
  as.alloc(10);  // one page
  as.skip(kPageSize);
  as.alloc(kPageSize + 1);  // two pages
  EXPECT_EQ(as.bytes_mapped(), 3 * kPageSize);
}

// Property: after random alloc/skip/free sequences, range_allocated agrees
// with allocated_within on every page.
TEST(AddressSpaceProperty, AllocationMapConsistency) {
  Rng rng(1234);
  AddressSpace as;
  std::vector<u64> live;
  for (int i = 0; i < 300; ++i) {
    const double p = rng.uniform01();
    if (p < 0.5 || live.empty()) {
      live.push_back(as.alloc(rng.range(1, 8 * kPageSize)));
    } else if (p < 0.7) {
      as.skip(rng.range(1, 4 * kPageSize));
    } else {
      const size_t idx = rng.below(live.size());
      ASSERT_TRUE(as.free_at(live[idx]).is_ok());
      live.erase(live.begin() + static_cast<long>(idx));
    }
  }
  const ExtentList all = as.allocated_extents();
  EXPECT_TRUE(is_sorted_disjoint(all));
  // Merged extents never touch (otherwise they'd have been merged).
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_GT(all[i].offset, all[i - 1].end());
  }
  for (const Extent& e : all) {
    EXPECT_TRUE(as.range_allocated(e.offset, e.length));
    EXPECT_FALSE(as.range_allocated(e.offset, e.length + 1));
  }
}

}  // namespace
}  // namespace pvfsib::vmem
