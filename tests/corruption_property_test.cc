// Randomized end-to-end properties of the data-integrity plane: random
// silent-corruption schedules (bit flips at rest, torn writes, lost
// writes) against a factor-2 cluster with verify-on-read, read failover
// and the background scrubber, with a host-side byte mirror of every
// acked write as the oracle.
//
// The properties:
//   1. no acked byte is ever lost — every read returns exactly the mirror,
//      whatever the corruption schedule did to individual copies,
//   2. every corruption that survived to the sweep is detected (checksum
//      mismatch or header/ack cross-check), and
//   3. once the scrubber's heals drain, every replica of the file is
//      byte-identical to the mirror again — rot does not accumulate.
//
// Replay a failing schedule with PVFS_PROPERTY_SEED=<seed>.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>

#include "common/rng.h"
#include "pvfs/cluster.h"

namespace pvfsib::pvfs {
namespace {

TEST(CorruptionProperty, RandomCorruptionSchedulesLoseNoAckedData) {
  u64 seed = 2026;
  if (const char* env = std::getenv("PVFS_PROPERTY_SEED")) {
    seed = std::strtoull(env, nullptr, 10);
  }
  SCOPED_TRACE("PVFS_PROPERTY_SEED=" + std::to_string(seed));
  Rng rng(seed);
  for (int iter = 0; iter < 3; ++iter) {
    const u32 iods = 2 + static_cast<u32>(rng.below(3));
    const u32 x = static_cast<u32>(rng.below(iods));  // the stripe's home
    const u32 y = (x + 1) % iods;                     // its chained backup
    const u64 n = rng.range(8 * kKiB, 64 * kKiB);     // one 64 KiB stripe

    ModelConfig cfg = ModelConfig::paper_defaults();
    cfg.fault.seed = seed + static_cast<u64>(iter);
    cfg.fault.round_timeout = Duration::ms(2.0);
    cfg.fault.backoff_base = Duration::us(100.0);
    cfg.fault.backoff_cap = Duration::ms(2.0);
    cfg.fault.max_retries = 25;
    cfg.replication.factor = 2;
    cfg.replication.resync = true;
    cfg.replication.scrub = true;
    // All corruption hits ONE random member of the chain. Factor 2 can
    // only promise recovery while an intact copy exists — independent
    // faults on both copies of a stripe are genuine data loss, in the
    // model exactly as in life — so the property constrains the schedule
    // to what the design guarantees and then demands a perfect outcome.
    const u32 victim = rng.chance(0.5) ? x : y;
    // The overwrite at 10 ms may additionally be torn or lost on the
    // victim (one or the other: both would leave no round to tear).
    const u32 kind = static_cast<u32>(rng.below(3));
    const bool torn = kind == 1;
    const bool lost = kind == 2;
    if (torn || lost) {
      cfg.fault.schedule.push_back(FaultEvent{
          torn ? FaultKind::kTornWrite : FaultKind::kLostWrite,
          TimePoint::origin() + Duration::ms(8.0), victim, Duration::zero()});
    }
    // Bit flips at rest strictly after every write has been applied, so no
    // later stamp can launder them: only detection can account for them.
    const int flips = 1 + static_cast<int>(rng.below(3));
    for (int k = 0; k < flips; ++k) {
      cfg.fault.schedule.push_back(FaultEvent{
          FaultKind::kBitFlip,
          TimePoint::origin() +
              Duration::ms(30.0 + static_cast<double>(rng.below(20))),
          victim, Duration::zero()});
    }
    SCOPED_TRACE("iter " + std::to_string(iter) + ": " +
                 std::to_string(iods) + " iods, home " + std::to_string(x) +
                 ", victim iod" + std::to_string(victim) +
                 ", n=" + std::to_string(n) + (torn ? ", torn" : "") +
                 (lost ? ", lost" : "") + ", " + std::to_string(flips) +
                 " flips");

    Cluster cluster(cfg, 1, iods);
    Client& c = cluster.client(0);
    OpenFile f = c.create("/corrprop", 64 * kKiB, 1, x).value();
    const Handle h = f.meta.handle;

    // Preload [0, n) while healthy; the mirror tracks every acked byte.
    std::vector<u8> mirror(n);
    Rng fillr(seed * 31 + static_cast<u64>(iter));
    const u64 a = c.memory().alloc(n);
    for (u64 i = 0; i < n; ++i) {
      mirror[i] = static_cast<u8>(fillr.next());
      c.memory().write_pod<u8>(a + i, mirror[i]);
    }
    ASSERT_TRUE(c.write(f, 0, a, n).ok());

    // Overwrite a random extent at 10 ms — the round the torn/lost events
    // hit. Every overwritten byte differs from the preload (xor 0xa5), so
    // serving stale bytes cannot pass by coincidence.
    const u64 off = rng.below(n / 2);
    const u64 len = rng.range(1, n - off);
    const u64 b = c.memory().alloc(len);
    for (u64 i = 0; i < len; ++i) {
      const u8 v = static_cast<u8>(mirror[off + i] ^ 0xa5);
      c.memory().write_pod<u8>(b + i, v);
      mirror[off + i] = v;
    }
    IoHandle w;
    const TimePoint at = TimePoint::origin() + Duration::ms(10.0);
    cluster.engine().schedule_at(at, [&, at] {
      core::ListIoRequest req;
      req.mem = {{b, len}};
      req.file = {{off, len}};
      w = c.submit({IoDir::kWrite, f, req, {}, at});
    });
    cluster.engine().run_until([&w] { return w.valid() && w.poll(); });
    // Torn and lost writes ack like healthy ones — that is the threat.
    ASSERT_TRUE(w.poll() && w.result().ok())
        << w.result().status.to_string();

    // Sweep long enough for detection and every enqueued heal to drain.
    cluster.start_scrub(TimePoint::origin() + Duration::ms(400.0));

    // Property 1: the read long after the dust settled returns the mirror.
    const u64 dst = c.memory().alloc(n);
    IoHandle rh;
    const TimePoint rat = TimePoint::origin() + Duration::ms(600.0);
    cluster.engine().schedule_at(rat, [&, rat] {
      core::ListIoRequest req;
      req.mem = {{dst, n}};
      req.file = {{0, n}};
      rh = c.submit({IoDir::kRead, f, req, {}, rat});
    });
    cluster.run();
    ASSERT_TRUE(rh.poll() && rh.result().ok())
        << rh.result().status.to_string();
    for (u64 i = 0; i < n; ++i) {
      ASSERT_EQ(c.memory().read_pod<u8>(dst + i), mirror[i])
          << "acked byte " << i << " lost";
    }

    // Property 2: everything injected was accounted for. Flips fired
    // strictly after the last write, so each materialized flip must have
    // been caught by a checksum mismatch (scrub or read path); a lost
    // write surfaces through the header/ack cross-check on either path.
    const Stats& s = cluster.stats();
    EXPECT_EQ(s.get(stat::kFaultBitFlip), flips);
    if (torn) {
      EXPECT_EQ(s.get(stat::kFaultTornWrite), 1);
    }
    if (lost) {
      EXPECT_EQ(s.get(stat::kFaultLostWrite), 1);
    }
    // Detections count per verify event (one scrub chunk, one read round),
    // not per injected fault: three flips inside one chunk surface as a
    // single mismatch. So: at least one checksum detection (flips >= 1
    // every iteration), and a lost write must surface through the
    // header/staleness-map cross-check, which no checksum can see.
    EXPECT_GE(s.get(stat::kPvfsCorruptionsDetected), 1);
    if (lost) {
      EXPECT_GE(s.get(stat::kPvfsScrubStaleHeaders), 1);
    }
    EXPECT_GE(s.get(stat::kPvfsCorruptionsRepaired), 1);

    // Property 3: both physical copies healed back to the mirror.
    const std::span<const std::byte> prim = cluster.iod(x).file(h).contents();
    ASSERT_GE(prim.size(), n);
    EXPECT_EQ(std::memcmp(prim.data(), mirror.data(), n), 0)
        << "primary copy still rotten";
    const std::span<const std::byte> back =
        cluster.iod(y).file(backup_handle(h, 0)).contents();
    ASSERT_GE(back.size(), n);
    EXPECT_EQ(std::memcmp(back.data(), mirror.data(), n), 0)
        << "backup copy still rotten";
  }
}

}  // namespace
}  // namespace pvfsib::pvfs
