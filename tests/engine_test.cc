#include "sim/engine.h"

#include <gtest/gtest.h>

#include "sim/resource.h"

namespace pvfsib::sim {
namespace {

TEST(Engine, RunsEventsInTimeOrder) {
  Engine eng;
  std::vector<int> order;
  eng.schedule_at(TimePoint::origin() + Duration::us(30),
                  [&] { order.push_back(3); });
  eng.schedule_at(TimePoint::origin() + Duration::us(10),
                  [&] { order.push_back(1); });
  eng.schedule_at(TimePoint::origin() + Duration::us(20),
                  [&] { order.push_back(2); });
  const TimePoint end = eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(end.as_us(), 30.0);
  EXPECT_EQ(eng.events_processed(), 3u);
}

TEST(Engine, SimultaneousEventsRunFifo) {
  Engine eng;
  std::vector<int> order;
  const TimePoint t = TimePoint::origin() + Duration::us(5);
  for (int i = 0; i < 10; ++i) {
    eng.schedule_at(t, [&order, i] { order.push_back(i); });
  }
  eng.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Engine, HandlersScheduleMoreEvents) {
  Engine eng;
  int hops = 0;
  std::function<void()> hop = [&] {
    if (++hops < 5) eng.schedule_in(Duration::us(10), hop);
  };
  eng.schedule_in(Duration::us(10), hop);
  const TimePoint end = eng.run();
  EXPECT_EQ(hops, 5);
  EXPECT_EQ(end.as_us(), 50.0);
}

TEST(Engine, RunUntilPredicate) {
  Engine eng;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    eng.schedule_at(TimePoint::origin() + Duration::us(i), [&] { ++count; });
  }
  eng.run_until([&] { return count == 4; });
  EXPECT_EQ(count, 4);
  EXPECT_FALSE(eng.idle());
  eng.run();
  EXPECT_EQ(count, 10);
  EXPECT_TRUE(eng.idle());
}

TEST(Engine, ResetClearsState) {
  Engine eng;
  eng.schedule_in(Duration::us(10), [] {});
  eng.run();
  eng.reset();
  EXPECT_EQ(eng.now(), TimePoint::origin());
  EXPECT_TRUE(eng.idle());
  EXPECT_EQ(eng.events_processed(), 0u);
}

TEST(Resource, QueuesBackToBackWork) {
  Resource r("disk");
  const TimePoint t0 = TimePoint::origin();
  // First job starts immediately.
  EXPECT_EQ(r.acquire(t0, Duration::us(10)).as_us(), 10.0);
  // Second job arriving at t=0 queues behind the first.
  EXPECT_EQ(r.acquire(t0, Duration::us(5)).as_us(), 15.0);
  // A job arriving after the backlog drains starts on arrival.
  EXPECT_EQ(r.acquire(t0 + Duration::us(100), Duration::us(1)).as_us(), 101.0);
  EXPECT_EQ(r.busy_total().as_us(), 16.0);
}

TEST(Resource, EarliestStartDoesNotReserve) {
  Resource r;
  r.acquire(TimePoint::origin(), Duration::us(10));
  EXPECT_EQ(r.earliest_start(TimePoint::origin()).as_us(), 10.0);
  EXPECT_EQ(r.busy_until().as_us(), 10.0);  // unchanged by the query
}

// --- Cancellable timers -------------------------------------------------

TEST(Engine, CancelledTimerNeverRunsNorAdvancesClock) {
  Engine eng;
  bool ran = false;
  int others = 0;
  const Engine::TimerId id =
      eng.schedule_at(TimePoint::origin() + Duration::us(100),
                      [&] { ran = true; });
  eng.schedule_at(TimePoint::origin() + Duration::us(50), [&] { ++others; });
  eng.cancel(id);
  eng.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(others, 1);
  // The cancelled event was discarded: it neither counted as processed nor
  // dragged the clock forward to its timestamp.
  EXPECT_EQ(eng.events_processed(), 1u);
  EXPECT_EQ(eng.now(), TimePoint::origin() + Duration::us(50));
}

TEST(Engine, CancelIsSelectiveAmongSimultaneousTimers) {
  Engine eng;
  std::vector<int> fired;
  const TimePoint t = TimePoint::origin() + Duration::us(10);
  eng.schedule_at(t, [&] { fired.push_back(0); });
  const Engine::TimerId id = eng.schedule_at(t, [&] { fired.push_back(1); });
  eng.schedule_at(t, [&] { fired.push_back(2); });
  eng.cancel(id);
  eng.run();
  EXPECT_EQ(fired, (std::vector<int>{0, 2}));  // FIFO order preserved
}

TEST(Engine, CancelFromInsideAnEarlierHandler) {
  // The reply-cancels-timeout pattern: a handler cancels a later-scheduled
  // timer before it fires.
  Engine eng;
  bool timeout_fired = false;
  const Engine::TimerId timer = eng.schedule_at(
      TimePoint::origin() + Duration::us(100), [&] { timeout_fired = true; });
  eng.schedule_at(TimePoint::origin() + Duration::us(10),
                  [&] { eng.cancel(timer); });
  eng.run();
  EXPECT_FALSE(timeout_fired);
  EXPECT_EQ(eng.events_processed(), 1u);
}

TEST(Engine, ResetClearsCancelTombstones) {
  Engine eng;
  const Engine::TimerId id = eng.schedule_in(Duration::us(5), [] {});
  eng.cancel(id);
  eng.reset();
  // After reset, timer ids restart; a stale tombstone must not swallow the
  // fresh event that happens to reuse the id.
  bool ran = false;
  eng.schedule_in(Duration::us(5), [&] { ran = true; });
  eng.run();
  EXPECT_TRUE(ran);
}

// Determinism: two identical runs produce identical event interleavings.
TEST(Engine, Deterministic) {
  auto run_once = [] {
    Engine eng;
    std::vector<int> order;
    for (int i = 0; i < 50; ++i) {
      eng.schedule_at(TimePoint::origin() + Duration::us((i * 7) % 13),
                      [&order, i] { order.push_back(i); });
    }
    eng.run();
    return order;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace pvfsib::sim
