// Randomized end-to-end properties of the whole stack: arbitrary list I/O
// requests, random transfer schemes and server options, concurrent clients
// — the file system must always behave like one flat byte array, and the
// accounting invariants must hold. Plus failure injection through the full
// stack.
#include <gtest/gtest.h>

#include <cstdlib>

#include "common/rng.h"
#include "pvfs/cluster.h"

namespace pvfsib::pvfs {
namespace {

core::XferScheme random_scheme(Rng& rng) {
  switch (rng.below(4)) {
    case 0:
      return core::XferScheme::kMultipleMessage;
    case 1:
      return core::XferScheme::kPackUnpack;
    case 2:
      return core::XferScheme::kRdmaGatherScatter;
    default:
      return core::XferScheme::kHybrid;
  }
}

// Build a random list I/O request over [0, file_span) whose file extents
// are disjoint (so write order cannot matter), with randomly fragmented
// memory on a fresh allocation.
core::ListIoRequest random_request(Rng& rng, Client& c, u64 file_span) {
  core::ListIoRequest req;
  u64 pos = rng.below(4096);
  const int n = static_cast<int>(rng.range(1, 60));
  for (int i = 0; i < n && pos + 1 < file_span; ++i) {
    const u64 len = std::min(rng.range(1, 40 * kKiB), file_span - pos);
    req.file.push_back({pos, len});
    pos += len + rng.below(64 * kKiB);
  }
  const u64 total = total_length(req.file);
  u64 left = total;
  while (left > 0) {
    const u64 len = std::min(left, rng.range(1, 24 * kKiB));
    const u64 addr = c.memory().alloc(len);
    // Occasionally fragment the address space.
    if (rng.chance(0.2)) c.memory().skip(rng.range(1, 4) * kPageSize);
    req.mem.push_back({addr, len});
    left -= len;
  }
  return req;
}

void fill_request(Client& c, const core::ListIoRequest& req, u64 seed) {
  Rng rng(seed);
  for (const core::MemSegment& m : req.mem) {
    for (u64 i = 0; i < m.length; ++i) {
      c.memory().write_pod<u8>(m.addr + i, static_cast<u8>(rng.next()));
    }
  }
}

TEST(ClusterProperty, RandomListIoRoundTripsUnderAllOptions) {
  Rng rng(2026);
  for (int iter = 0; iter < 12; ++iter) {
    Cluster cluster(ModelConfig::paper_defaults(), 2, 1 + rng.below(4));
    Client& c = cluster.client(0);
    OpenFile f = c.create("/prop").value();
    const u64 span = 2 * kMiB;

    core::ListIoRequest wreq = random_request(rng, c, span);
    fill_request(c, wreq, 1000 + iter);

    IoOptions wopts;
    wopts.policy.scheme = random_scheme(rng);
    wopts.sync = rng.chance(0.3);
    wopts.use_ads = rng.chance(0.7);
    IoResult w = c.write_list(f, wreq, wopts);
    ASSERT_TRUE(w.ok()) << iter << ": " << w.status.to_string();
    ASSERT_EQ(w.bytes, total_length(wreq.file));
    ASSERT_GT(w.elapsed(), Duration::zero());

    // Read back with an independently random configuration into fresh
    // buffers of a different fragmentation.
    core::ListIoRequest rreq;
    rreq.file = wreq.file;
    u64 left = total_length(rreq.file);
    while (left > 0) {
      const u64 len = std::min(left, rng.range(1, 32 * kKiB));
      rreq.mem.push_back({c.memory().alloc(len), len});
      left -= len;
    }
    IoOptions ropts;
    ropts.policy.scheme = random_scheme(rng);
    ropts.use_ads = rng.chance(0.7);
    ropts.direct_read_return = rng.chance(0.5);
    if (rng.chance(0.3)) cluster.drop_all_caches();
    IoResult r = c.read_list(f, rreq, ropts);
    ASSERT_TRUE(r.ok()) << iter << ": " << r.status.to_string();

    // Byte-exact: concatenated write stream == concatenated read stream.
    std::vector<u8> ws, rs;
    for (const auto& m : wreq.mem) {
      for (u64 i = 0; i < m.length; ++i) {
        ws.push_back(c.memory().read_pod<u8>(m.addr + i));
      }
    }
    for (const auto& m : rreq.mem) {
      for (u64 i = 0; i < m.length; ++i) {
        rs.push_back(c.memory().read_pod<u8>(m.addr + i));
      }
    }
    ASSERT_EQ(ws, rs) << "iteration " << iter;
  }
}

TEST(ClusterProperty, ConcurrentDisjointWritersNeverInterfere) {
  Rng rng(7);
  Cluster cluster(ModelConfig::paper_defaults(), 4, 4);
  OpenFile f0 = cluster.client(0).create("/conc").value();
  const u64 region = 512 * kKiB;

  std::vector<core::ListIoRequest> reqs(4);
  std::vector<IoResult> results(4);
  int pending = 0;
  for (u32 k = 0; k < 4; ++k) {
    Client& c = cluster.client(k);
    OpenFile fk = k == 0 ? f0 : c.open("/conc").value();
    // Strided disjoint extents: client k owns bytes [k*4K, k*4K+4K) of
    // every 16 KiB block in its region window.
    core::ListIoRequest& req = reqs[k];
    for (u64 b = 0; b < region; b += 16 * kKiB) {
      req.file.push_back({b + k * 4 * kKiB, 4 * kKiB});
    }
    const u64 buf = c.memory().alloc(total_length(req.file));
    req.mem = {{buf, total_length(req.file)}};
    fill_request(c, req, 90 + k);
    IoOptions opts;
    opts.policy.scheme = random_scheme(rng);
    ++pending;
    c.submit({IoDir::kWrite, fk, req, opts, TimePoint::origin()})
        .on_complete([&results, &pending, k](IoResult r) {
          results[k] = r;
          --pending;
        });
  }
  cluster.run();
  ASSERT_EQ(pending, 0);
  for (u32 k = 0; k < 4; ++k) ASSERT_TRUE(results[k].ok());

  // Every client's data must be intact despite interleaved service.
  Client& c0 = cluster.client(0);
  for (u32 k = 0; k < 4; ++k) {
    core::ListIoRequest rd;
    rd.file = reqs[k].file;
    const u64 buf = c0.memory().alloc(total_length(rd.file));
    rd.mem = {{buf, total_length(rd.file)}};
    ASSERT_TRUE(c0.read_list(f0, rd).ok());
    Rng gen(90 + k);
    for (u64 i = 0; i < total_length(rd.file); ++i) {
      ASSERT_EQ(c0.memory().read_pod<u8>(buf + i),
                static_cast<u8>(gen.next()))
          << "client " << k << " byte " << i;
    }
  }
}

TEST(ClusterProperty, ReplicatedRandomCrashSchedulesLoseNoData) {
  // Factor-2 replication with write_quorum = all: whatever combination of
  // random crash windows hits the run, every acked byte must exist on both
  // replicas and read back exactly. Crash windows are kept shorter than the
  // retry budget so no operation fails terminally.
  Rng rng(4242);
  for (int iter = 0; iter < 6; ++iter) {
    ModelConfig cfg = ModelConfig::paper_defaults();
    cfg.replication.factor = 2;
    cfg.fault.seed = 500 + static_cast<u64>(iter);
    cfg.fault.round_timeout = Duration::ms(2.0);
    cfg.fault.backoff_base = Duration::us(100.0);
    cfg.fault.backoff_cap = Duration::ms(2.0);
    cfg.fault.max_retries = 25;
    const u32 iods = 2 + static_cast<u32>(rng.below(3));
    const int crashes = 1 + static_cast<int>(rng.below(3));
    for (int k = 0; k < crashes; ++k) {
      cfg.fault.schedule.push_back(FaultEvent{
          FaultKind::kIodCrash,
          TimePoint::from_ns(static_cast<i64>(rng.below(5'000'000))),
          static_cast<u32>(rng.below(iods)),
          Duration::us(static_cast<double>(rng.range(200, 4000)))});
    }
    Cluster cluster(cfg, 1, iods);
    Client& c = cluster.client(0);
    OpenFile f = c.create("/repl").value();

    core::ListIoRequest req = random_request(rng, c, 2 * kMiB);
    fill_request(c, req, 7000 + iter);
    IoResult w = c.write_list(f, req);
    ASSERT_TRUE(w.ok()) << iter << ": " << w.status.to_string();

    core::ListIoRequest back;
    back.file = req.file;
    u64 left = total_length(back.file);
    while (left > 0) {
      const u64 len = std::min(left, rng.range(1, 32 * kKiB));
      back.mem.push_back({c.memory().alloc(len), len});
      left -= len;
    }
    IoResult r = c.read_list(f, back);
    ASSERT_TRUE(r.ok()) << iter << ": " << r.status.to_string();

    std::vector<u8> ws, rs;
    for (const auto& m : req.mem) {
      for (u64 i = 0; i < m.length; ++i) {
        ws.push_back(c.memory().read_pod<u8>(m.addr + i));
      }
    }
    for (const auto& m : back.mem) {
      for (u64 i = 0; i < m.length; ++i) {
        rs.push_back(c.memory().read_pod<u8>(m.addr + i));
      }
    }
    ASSERT_EQ(ws, rs) << "iteration " << iter;
  }
}

TEST(ClusterProperty, RandomSequentialFailuresSurviveOnlyWithResync) {
  // Factor 2 survives two crashes that do NOT overlap only when the
  // restarted replica re-replicates during the gap. Randomizes the cluster
  // width, the stripe's home iod, the file size, and the overwrite extent;
  // a host-side mirror of every acked byte is the oracle. The crash
  // schedule is fixed (primary down for the overwrite, backup dead for
  // good before the read) so the property, not the timing, is random.
  // Replay a failing schedule with PVFS_PROPERTY_SEED=<seed>.
  u64 seed = 2026;
  if (const char* env = std::getenv("PVFS_PROPERTY_SEED")) {
    seed = std::strtoull(env, nullptr, 10);
  }
  SCOPED_TRACE("PVFS_PROPERTY_SEED=" + std::to_string(seed));
  Rng rng(seed);
  for (int iter = 0; iter < 3; ++iter) {
    const u32 iods = 2 + static_cast<u32>(rng.below(3));
    const u32 x = static_cast<u32>(rng.below(iods));  // the stripe's home
    const u64 n = rng.range(4 * kKiB, 64 * kKiB);     // one 64 KiB stripe
    const u64 off = rng.below(n / 2);
    const u64 len = rng.range(1, n - off);

    struct Out {
      bool ok = false, fresh = false, stale = false;
      i64 resync_stripes = 0;
    };
    auto run_one = [&](bool resync) {
      ModelConfig cfg = ModelConfig::paper_defaults();
      cfg.fault.seed = seed + static_cast<u64>(iter);
      cfg.fault.round_timeout = Duration::ms(2.0);
      cfg.fault.backoff_base = Duration::us(100.0);
      cfg.fault.backoff_cap = Duration::ms(2.0);
      cfg.fault.max_retries = 25;
      cfg.replication.factor = 2;
      cfg.replication.write_quorum = 1;
      cfg.replication.resync = resync;
      const u32 y = (x + 1) % iods;  // the stripe's chained backup
      cfg.fault.schedule.push_back(
          FaultEvent{FaultKind::kIodCrash,
                     TimePoint::origin() + Duration::ms(20.0), x,
                     Duration::ms(30.0)});
      cfg.fault.schedule.push_back(
          FaultEvent{FaultKind::kIodCrash,
                     TimePoint::origin() + Duration::ms(150.0), y,
                     Duration::sec(1000.0)});
      Cluster cluster(cfg, 1, iods);
      Client& c = cluster.client(0);
      OpenFile f = c.create("/seq", 64 * kKiB, 1, x).value();
      // Preload [0, n) before the first crash.
      std::vector<u8> mirror(n);
      Rng fill(seed * 31 + static_cast<u64>(iter));
      const u64 a = c.memory().alloc(n);
      for (u64 i = 0; i < n; ++i) {
        mirror[i] = static_cast<u8>(fill.next());
        c.memory().write_pod<u8>(a + i, mirror[i]);
      }
      EXPECT_TRUE(c.write(f, 0, a, n).ok());
      // Overwrite [off, off+len) while x is down: quorum 1, so the backup
      // alone acks it. Every overwritten byte differs from the preload
      // (xor 0xa5) so a stale read cannot pass by coincidence.
      const u64 b = c.memory().alloc(len);
      for (u64 i = 0; i < len; ++i) {
        const u8 v = static_cast<u8>(mirror[off + i] ^ 0xa5);
        c.memory().write_pod<u8>(b + i, v);
        mirror[off + i] = v;
      }
      IoHandle w;
      const TimePoint at = TimePoint::origin() + Duration::ms(25.0);
      cluster.engine().schedule_at(at, [&, at] {
        core::ListIoRequest req;
        req.mem = {{b, len}};
        req.file = {{off, len}};
        w = c.submit({IoDir::kWrite, f, req, {}, at});
      });
      cluster.engine().run_until([&w] { return w.valid() && w.poll(); });
      EXPECT_TRUE(w.poll() && w.result().ok());
      // Read everything back once the backup is gone for good.
      const u64 dst = c.memory().alloc(n);
      IoHandle rh;
      const TimePoint rat = TimePoint::origin() + Duration::ms(500.0);
      cluster.engine().schedule_at(rat, [&, rat] {
        core::ListIoRequest req;
        req.mem = {{dst, n}};
        req.file = {{0, n}};
        rh = c.submit({IoDir::kRead, f, req, {}, rat});
      });
      cluster.engine().run_until([&rh] { return rh.valid() && rh.poll(); });
      Out out;
      out.ok = rh.poll() && rh.result().ok();
      bool fresh = true, stale = true;
      for (u64 i = 0; i < n && out.ok; ++i) {
        const u8 got = c.memory().read_pod<u8>(dst + i);
        if (got != mirror[i]) fresh = false;
        const bool over = i >= off && i < off + len;
        const u8 pre = over ? static_cast<u8>(mirror[i] ^ 0xa5) : mirror[i];
        if (got != pre) stale = false;
      }
      out.fresh = out.ok && fresh;
      out.stale = out.ok && stale;
      out.resync_stripes = cluster.stats().get(stat::kPvfsResyncStripes);
      return out;
    };
    SCOPED_TRACE("iter " + std::to_string(iter) + ": " +
                 std::to_string(iods) + " iods, home " + std::to_string(x) +
                 ", n=" + std::to_string(n) + ", overwrite [" +
                 std::to_string(off) + ", " + std::to_string(off + len) +
                 ")");
    const Out with = run_one(true);
    EXPECT_TRUE(with.ok);
    EXPECT_TRUE(with.fresh) << "acked overwrite lost despite resync";
    EXPECT_GE(with.resync_stripes, 1);
    const Out without = run_one(false);
    // Without re-replication the read "succeeds" — from the stale
    // restarted home: the acked overwrite is gone.
    EXPECT_TRUE(without.ok);
    EXPECT_FALSE(without.fresh);
    EXPECT_TRUE(without.stale);
    EXPECT_EQ(without.resync_stripes, 0);
  }
}

TEST(ClusterProperty, RandomManagerCrashTakeoversLoseNoAckedData) {
  // A manager crash with standby takeover at a random point of a
  // replicated workload, interleaved with random short iod crash windows
  // and a concurrent read: every acked write must survive the takeover,
  // and no read may serve stale bytes afterwards. The metadata plane runs
  // a random shard count and the crash hits whichever shard owns the test
  // file. The write quorum is 1 (relaxed from the historic full-chain
  // pin): an acked byte may exist on a single replica, so the oracle
  // leans on the whole machinery — staleness-map read placement, read
  // failover, epoch fencing with mint-and-replay on a fenced round
  // (pvfs.version_remints), and resync. The overwrites' extents are
  // mutually disjoint (a retry-stalled write may still be in flight when
  // the next is submitted, so completion order must not matter), and the
  // concurrent read covers only the never-overwritten top half.
  // Replay a failing schedule with PVFS_PROPERTY_SEED=<seed>.
  u64 seed = 2026;
  if (const char* env = std::getenv("PVFS_PROPERTY_SEED")) {
    seed = std::strtoull(env, nullptr, 10);
  }
  SCOPED_TRACE("PVFS_PROPERTY_SEED=" + std::to_string(seed));
  Rng rng(seed);
  for (int iter = 0; iter < 3; ++iter) {
    ModelConfig cfg = ModelConfig::paper_defaults();
    cfg.fault.seed = seed + static_cast<u64>(iter);
    cfg.fault.round_timeout = Duration::ms(2.0);
    cfg.fault.backoff_base = Duration::us(100.0);
    cfg.fault.backoff_cap = Duration::ms(2.0);
    cfg.fault.max_retries = 25;
    cfg.replication.factor = 2;
    cfg.replication.resync = true;
    cfg.replication.write_quorum = 1;
    cfg.fault.standby_takeover = true;
    cfg.pvfs.metadata_shards = 1 + static_cast<u32>(rng.below(4));
    cfg.fault.manager_takeover_delay =
        Duration::us(static_cast<double>(rng.range(500, 4000)));
    // The primary manager of the file's shard dies at a random point of
    // the write window and never comes back; the shard's standby must
    // carry the rest of the run.
    cfg.fault.schedule.push_back(FaultEvent{
        FaultKind::kManagerCrash,
        TimePoint::from_ns(static_cast<i64>(rng.range(8'000'000, 35'000'000))),
        shard_of("/mgrprop", cfg.pvfs.metadata_shards),
        Duration::sec(1000.0)});
    const u32 iods = 2 + static_cast<u32>(rng.below(3));
    const u32 x = static_cast<u32>(rng.below(iods));  // the stripe's home
    const u64 n = rng.range(16 * kKiB, 64 * kKiB);
    const int crashes = static_cast<int>(rng.below(3));
    for (int k = 0; k < crashes; ++k) {
      // Short iod crash windows (well inside the retry budget) that may
      // overlap the takeover itself.
      cfg.fault.schedule.push_back(FaultEvent{
          FaultKind::kIodCrash,
          TimePoint::from_ns(
              static_cast<i64>(rng.range(8'000'000, 40'000'000))),
          static_cast<u32>(rng.below(iods)),
          Duration::us(static_cast<double>(rng.range(500, 6000)))});
    }
    SCOPED_TRACE("iter " + std::to_string(iter) + ": " +
                 std::to_string(iods) + " iods, home " + std::to_string(x) +
                 ", n=" + std::to_string(n) + ", " + std::to_string(crashes) +
                 " iod crashes, " +
                 std::to_string(cfg.pvfs.metadata_shards) + " meta shards");
    Cluster cluster(cfg, 1, iods);
    Client& c = cluster.client(0);
    OpenFile f = c.create("/mgrprop", 64 * kKiB, 1, x).value();

    // Preload [0, n) while everything is healthy; the mirror tracks every
    // byte the file system ever acked.
    std::vector<u8> mirror(n);
    Rng fillr(seed * 131 + static_cast<u64>(iter));
    const u64 a = c.memory().alloc(n);
    for (u64 i = 0; i < n; ++i) {
      mirror[i] = static_cast<u8>(fillr.next());
      c.memory().write_pod<u8>(a + i, mirror[i]);
    }
    ASSERT_TRUE(c.write(f, 0, a, n).ok());

    // Four overwrites across the crash/takeover window, each confined to
    // its own quarter of the bottom half. Every overwritten byte differs
    // from the preload (xor 0xa5), so a lost write cannot pass unnoticed.
    constexpr int kWrites = 4;
    const u64 slice = (n / 2) / kWrites;
    std::vector<IoHandle> ws(kWrites);
    for (int k = 0; k < kWrites; ++k) {
      const u64 off = static_cast<u64>(k) * slice + rng.below(slice / 2);
      const u64 len = rng.range(1, slice / 2);
      const u64 b = c.memory().alloc(len);
      for (u64 i = 0; i < len; ++i) {
        const u8 v = static_cast<u8>(mirror[off + i] ^ 0xa5);
        c.memory().write_pod<u8>(b + i, v);
        mirror[off + i] = v;
      }
      const TimePoint at =
          TimePoint::origin() + Duration::ms(10.0 + 6.0 * k);
      cluster.engine().schedule_at(at, [&c, &ws, &f, b, off, len, at, k] {
        core::ListIoRequest req;
        req.mem = {{b, len}};
        req.file = {{off, len}};
        ws[static_cast<size_t>(k)] = c.submit({IoDir::kWrite, f, req, {}, at});
      });
    }
    // A read of the untouched top half racing the crash window.
    const u64 top = n - n / 2;
    const u64 mid = c.memory().alloc(top);
    IoHandle mr;
    const TimePoint mat =
        TimePoint::origin() +
        Duration::ms(static_cast<double>(rng.range(12, 38)));
    cluster.engine().schedule_at(mat, [&, mat] {
      core::ListIoRequest req;
      req.mem = {{mid, top}};
      req.file = {{n / 2, top}};
      mr = c.submit({IoDir::kRead, f, req, {}, mat});
    });
    // The full read-back long after everything settled.
    const u64 dst = c.memory().alloc(n);
    IoHandle rh;
    const TimePoint rat = TimePoint::origin() + Duration::ms(500.0);
    cluster.engine().schedule_at(rat, [&, rat] {
      core::ListIoRequest req;
      req.mem = {{dst, n}};
      req.file = {{0, n}};
      rh = c.submit({IoDir::kRead, f, req, {}, rat});
    });
    cluster.engine().run_until([&rh] { return rh.valid() && rh.poll(); });

    for (int k = 0; k < kWrites; ++k) {
      ASSERT_TRUE(ws[static_cast<size_t>(k)].poll());
      ASSERT_TRUE(ws[static_cast<size_t>(k)].result().ok())
          << "write " << k << ": "
          << ws[static_cast<size_t>(k)].result().status.to_string();
    }
    ASSERT_TRUE(mr.poll() && mr.result().ok())
        << mr.result().status.to_string();
    for (u64 i = 0; i < top; ++i) {
      ASSERT_EQ(c.memory().read_pod<u8>(mid + i), mirror[n / 2 + i])
          << "concurrent read byte " << i;
    }
    ASSERT_TRUE(rh.poll() && rh.result().ok())
        << rh.result().status.to_string();
    for (u64 i = 0; i < n; ++i) {
      ASSERT_EQ(c.memory().read_pod<u8>(dst + i), mirror[i])
          << "post-takeover byte " << i;
    }
    const Stats& s = cluster.stats();
    EXPECT_EQ(s.get(stat::kFaultManagerCrash), 1);
    EXPECT_EQ(s.get(stat::kPvfsManagerTakeovers), 1);
    // At least one consult of the demoted authority was fenced and
    // re-targeted (the first version-plane touch after the takeover).
    EXPECT_GE(s.get(stat::kPvfsEpochRejections), 1);
  }
}

TEST(ClusterProperty, AccountingInvariants) {
  Cluster cluster(ModelConfig::paper_defaults(), 2, 4);
  Client& c = cluster.client(0);
  OpenFile f = c.create("/acct").value();
  const u64 n = 3 * kMiB;
  const u64 src = c.memory().alloc(n);
  const Stats before = cluster.stats();
  ASSERT_TRUE(c.write(f, 0, src, n).ok());
  ASSERT_TRUE(c.read(f, 0, src, n).ok());
  const Stats d = cluster.stats().diff(before);
  // Payload conservation: the fabric moved exactly 2n bytes of data.
  EXPECT_EQ(d.get(stat::kNetBytesData), static_cast<i64>(2 * n));
  // Every request got exactly one reply.
  EXPECT_EQ(d.get(stat::kPvfsRequest), d.get(stat::kPvfsReply));
  // The iods hold exactly n bytes of this file.
  u64 stored = 0;
  for (u32 i = 0; i < 4; ++i) {
    stored += cluster.iod(i).file(f.meta.handle).size();
  }
  EXPECT_EQ(stored, n);
}

// --- failure injection -------------------------------------------------

TEST(ClusterFailure, UnmappedBufferFailsCleanly) {
  Cluster cluster(ModelConfig::paper_defaults(), 1, 4);
  Client& c = cluster.client(0);
  OpenFile f = c.create("/fail").value();
  // A buffer address in an unmapped hole.
  const u64 a = c.memory().alloc(kPageSize);
  c.memory().skip(8 * kPageSize);
  const u64 hole = a + 4 * kPageSize;
  core::ListIoRequest req;
  req.mem = {{a, kPageSize}, {hole, kPageSize}};
  req.file = {{0, 2 * kPageSize}};
  IoOptions opts;
  opts.policy.scheme = core::XferScheme::kRdmaGatherScatter;
  IoResult w = c.write_list(f, req, opts);
  EXPECT_FALSE(w.ok());
  EXPECT_EQ(w.status.code(), ErrorCode::kPermissionDenied);
  EXPECT_EQ(w.bytes, 0u);
  // The cluster remains usable afterwards.
  const u64 good = c.memory().alloc(kPageSize);
  EXPECT_TRUE(c.write(f, 0, good, kPageSize).ok());
}

TEST(ClusterFailure, MismatchedTotalsRejectedBeforeAnyWork) {
  Cluster cluster(ModelConfig::paper_defaults(), 1, 2);
  Client& c = cluster.client(0);
  OpenFile f = c.create("/fail2").value();
  const Stats before = cluster.stats();
  core::ListIoRequest req;
  req.mem = {{c.memory().alloc(100), 100}};
  req.file = {{0, 200}};
  EXPECT_FALSE(c.write_list(f, req).ok());
  // No requests reached any iod.
  EXPECT_EQ(cluster.stats().diff(before).get(stat::kPvfsRequest), 0);
}

TEST(ClusterFailure, PackSchemeToleratesUnmappedHolesBetweenBuffers) {
  // Pack/Unpack never registers user memory, so a layout that breaks the
  // gather path works fine through the bounce buffer.
  Cluster cluster(ModelConfig::paper_defaults(), 1, 2);
  Client& c = cluster.client(0);
  OpenFile f = c.create("/pack").value();
  core::ListIoRequest req;
  for (int i = 0; i < 8; ++i) {
    req.mem.push_back({c.memory().alloc(kPageSize), kPageSize});
    c.memory().skip(2 * kPageSize);
  }
  req.file = {{0, 8 * kPageSize}};
  fill_request(c, req, 55);
  IoOptions opts;
  opts.policy.scheme = core::XferScheme::kPackUnpack;
  EXPECT_TRUE(c.write_list(f, req, opts).ok());
}

}  // namespace
}  // namespace pvfsib::pvfs
