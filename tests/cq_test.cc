// Completion queue semantics: every fabric operation posts a completion to
// the initiator's CQ (and receives on the target for channel sends), in
// completion order, with overflow accounting at the configured depth.
#include "ib/cq.h"

#include <gtest/gtest.h>

#include "ib/fabric.h"

namespace pvfsib::ib {
namespace {

class CqTest : public ::testing::Test {
 protected:
  CqTest()
      : a_("a", as_a_, RegParams{}, &stats_),
        b_("b", as_b_, RegParams{}, &stats_),
        fabric_(NetParams{}, &stats_) {
    addr_a_ = as_a_.alloc(kMiB);
    addr_b_ = as_b_.alloc(kMiB);
    key_a_ = a_.register_memory(addr_a_, kMiB).key;
    key_b_ = b_.register_memory(addr_b_, kMiB).key;
  }

  vmem::AddressSpace as_a_, as_b_;
  Stats stats_;
  Hca a_, b_;
  Fabric fabric_;
  u64 addr_a_ = 0, addr_b_ = 0;
  u32 key_a_ = 0, key_b_ = 0;
};

TEST_F(CqTest, RdmaWritePostsInitiatorCompletion) {
  const Sge sge{addr_a_, 4096, key_a_};
  TransferResult tr =
      fabric_.rdma_write(a_, sge, b_, addr_b_, key_b_, TimePoint::origin());
  ASSERT_TRUE(tr.ok());
  auto c = a_.cq().poll();
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->op, Completion::Op::kRdmaWrite);
  EXPECT_EQ(c->bytes, 4096u);
  EXPECT_EQ(c->completed_at, tr.complete);
  EXPECT_TRUE(c->status.is_ok());
  // RDMA is one-sided: no completion at the target.
  EXPECT_FALSE(b_.cq().poll().has_value());
}

TEST_F(CqTest, SendPostsBothSides) {
  fabric_.send_control(a_, b_, 256, TimePoint::origin(),
                       ControlKind::kRequest);
  auto s = a_.cq().poll();
  auto r = b_.cq().poll();
  ASSERT_TRUE(s.has_value());
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(s->op, Completion::Op::kSend);
  EXPECT_EQ(r->op, Completion::Op::kRecv);
  EXPECT_EQ(s->bytes, 256u);
}

TEST_F(CqTest, CompletionsPollInOrder) {
  const Sge sge{addr_a_, 1024, key_a_};
  for (int i = 0; i < 5; ++i) {
    fabric_.rdma_write(a_, sge, b_, addr_b_, key_b_, TimePoint::origin());
  }
  TimePoint prev = TimePoint::origin();
  u64 prev_id = 0;
  for (int i = 0; i < 5; ++i) {
    auto c = a_.cq().poll();
    ASSERT_TRUE(c.has_value());
    EXPECT_GE(c->completed_at, prev);
    EXPECT_GT(c->wr_id, prev_id);
    prev = c->completed_at;
    prev_id = c->wr_id;
  }
  EXPECT_FALSE(a_.cq().poll().has_value());
}

TEST_F(CqTest, FailedOpsPostNothing) {
  const Sge bad{addr_a_, 1024, 9999};
  EXPECT_FALSE(
      fabric_.rdma_write(a_, bad, b_, addr_b_, key_b_, TimePoint::origin())
          .ok());
  EXPECT_FALSE(a_.cq().poll().has_value());
}

TEST(CompletionQueue, OverflowDropsAndCounts) {
  CompletionQueue cq(/*depth=*/3);
  for (u64 i = 0; i < 5; ++i) {
    cq.push(Completion{i, Completion::Op::kSend, 0, Status::ok(),
                       TimePoint::origin()});
  }
  EXPECT_EQ(cq.pending(), 3u);
  EXPECT_EQ(cq.overflows(), 2u);
  EXPECT_EQ(cq.poll()->wr_id, 0u);  // oldest first
  cq.drain();
  EXPECT_EQ(cq.pending(), 0u);
}

}  // namespace
}  // namespace pvfsib::ib
