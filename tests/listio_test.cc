#include "core/listio.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace pvfsib::core {
namespace {

TEST(StripeMap, RoundRobinMapping) {
  const StripeMap map(64 * kKiB, 4);
  EXPECT_EQ(map.server_of(0), 0u);
  EXPECT_EQ(map.server_of(64 * kKiB), 1u);
  EXPECT_EQ(map.server_of(4 * 64 * kKiB), 0u);
  EXPECT_EQ(map.local_offset(0), 0u);
  EXPECT_EQ(map.local_offset(64 * kKiB), 0u);
  EXPECT_EQ(map.local_offset(4 * 64 * kKiB + 100), 64 * kKiB + 100);
}

TEST(StripeMap, LogicalLocalRoundTrip) {
  const StripeMap map(64 * kKiB, 4);
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const u64 off = rng.below(1 * kGiB);
    const u32 s = map.server_of(off);
    const u64 local = map.local_offset(off);
    EXPECT_EQ(map.logical_offset(s, local), off);
  }
}

TEST(ListIo, ValidateCatchesMismatches) {
  ListIoRequest ok;
  ok.mem = {{0x10000, 100}, {0x20000, 50}};
  ok.file = {{0, 150}};
  EXPECT_TRUE(validate(ok).is_ok());

  ListIoRequest mismatch = ok;
  mismatch.file = {{0, 149}};
  EXPECT_FALSE(validate(mismatch).is_ok());

  ListIoRequest zero = ok;
  zero.mem.push_back({0x30000, 0});
  EXPECT_FALSE(validate(zero).is_ok());

  ListIoRequest empty;
  EXPECT_FALSE(validate(empty).is_ok());

  ListIoRequest null_seg = ok;
  null_seg.mem[0].addr = 0;
  EXPECT_FALSE(validate(null_seg).is_ok());
}

TEST(Partition, SingleServerPassThrough) {
  const StripeMap map(64 * kKiB, 1);
  ListIoRequest req;
  req.mem = {{0x10000, 100}, {0x20000, 200}};
  req.file = {{10, 50}, {1000, 250}};
  const auto subs = partition(req, map);
  ASSERT_EQ(subs.size(), 1u);
  EXPECT_EQ(subs[0].file, req.file);
  // The first segment is split by the extent boundary but the halves are
  // memory-adjacent, so they re-merge: {seg1, seg2}.
  ASSERT_EQ(subs[0].mem.size(), 2u);
  EXPECT_EQ(subs[0].mem[0], (MemSegment{0x10000, 100}));
  EXPECT_EQ(subs[0].mem[1], (MemSegment{0x20000, 200}));
  EXPECT_EQ(subs[0].bytes(), 300u);
}

TEST(Partition, SplitsAtStripeBoundaries) {
  const StripeMap map(100, 2);  // tiny stripes for readability
  ListIoRequest req;
  req.mem = {{0x10000, 250}};
  req.file = {{50, 250}};  // crosses stripes 0,1,2
  const auto subs = partition(req, map);
  ASSERT_EQ(subs.size(), 2u);
  // Server 0: logical [50,100) -> local [50,100); logical [200,300) ->
  // local [100,200).  These are adjacent locally and merge.
  EXPECT_EQ(subs[0].server, 0u);
  ASSERT_EQ(subs[0].file.size(), 1u);
  EXPECT_EQ(subs[0].file[0], (Extent{50, 150}));
  // Server 1: logical [100,200) -> local [0,100).
  EXPECT_EQ(subs[1].server, 1u);
  ASSERT_EQ(subs[1].file.size(), 1u);
  EXPECT_EQ(subs[1].file[0], (Extent{0, 100}));
  // Memory slices follow the stream: [0,50)+[150,250) to s0, [50,150) to s1.
  ASSERT_EQ(subs[0].mem.size(), 2u);
  EXPECT_EQ(subs[0].mem[0], (MemSegment{0x10000, 50}));
  EXPECT_EQ(subs[0].mem[1], (MemSegment{0x10000 + 150, 100}));
  ASSERT_EQ(subs[1].mem.size(), 1u);
  EXPECT_EQ(subs[1].mem[0], (MemSegment{0x10000 + 50, 100}));
}

TEST(Partition, MergesLocallyContiguousAccesses) {
  const StripeMap map(100, 2);
  ListIoRequest req;
  req.mem = {{0x10000, 100}};
  // Two logical extents that are discontiguous logically but map to
  // contiguous local offsets on server 0: [0,50) and [200,250).
  req.file = {{0, 50}, {200, 50}};
  auto subs = partition(req, map);
  ASSERT_EQ(subs.size(), 1u);
  EXPECT_EQ(subs[0].server, 0u);
  ASSERT_EQ(subs[0].file.size(), 2u);  // local [0,50) and [100,150): no merge
  // Now a case that does merge: [50,100) and [200,250) -> local [50,100),
  // [100,150).
  req.file = {{50, 50}, {200, 50}};
  subs = partition(req, map);
  ASSERT_EQ(subs[0].file.size(), 1u);
  EXPECT_EQ(subs[0].file[0], (Extent{50, 100}));
}

TEST(Partition, DropsIdleServers) {
  const StripeMap map(100, 4);
  ListIoRequest req;
  req.mem = {{0x10000, 100}};
  req.file = {{0, 100}};  // only stripe 0 -> server 0
  const auto subs = partition(req, map);
  ASSERT_EQ(subs.size(), 1u);
  EXPECT_EQ(subs[0].server, 0u);
}

// Property: partitioning conserves bytes, maps offsets correctly, and the
// per-server mem/file streams stay equal length.
TEST(PartitionProperty, ConservesBytesAndMapping) {
  Rng rng(11);
  for (int iter = 0; iter < 100; ++iter) {
    const u64 stripe = 1ULL << rng.range(6, 16);
    const u32 servers = static_cast<u32>(rng.range(1, 8));
    const StripeMap map(stripe, servers);

    ListIoRequest req;
    u64 fpos = rng.below(stripe * 3);
    u64 maddr = 0x100000;
    u64 total = 0;
    const int n = static_cast<int>(rng.range(1, 40));
    for (int i = 0; i < n; ++i) {
      const u64 len = rng.range(1, 3 * stripe);
      req.file.push_back({fpos, len});
      fpos += len + rng.below(stripe);
      total += len;
    }
    // Memory segments with different fragmentation than the file side.
    u64 left = total;
    while (left > 0) {
      const u64 len = std::min(left, rng.range(1, 2 * stripe));
      req.mem.push_back({maddr, len});
      maddr += len + kPageSize;
      left -= len;
    }
    ASSERT_TRUE(validate(req).is_ok());

    const auto subs = partition(req, map);
    u64 sub_total = 0;
    for (const auto& s : subs) {
      EXPECT_EQ(total_length(s.file), total_bytes(s.mem));
      sub_total += s.bytes();
      for (const Extent& e : s.file) {
        // Every local extent stays within one server's stripes.
        EXPECT_EQ(map.server_of(map.logical_offset(s.server, e.offset)),
                  s.server);
        // And never crosses a stripe boundary into another server's range:
        // local extents may span stripes only because consecutive local
        // stripes are contiguous on the same server; check via logical
        // round-trip of first and last byte.
        EXPECT_EQ(map.local_offset(map.logical_offset(s.server, e.offset)),
                  e.offset);
        EXPECT_EQ(map.local_offset(map.logical_offset(s.server, e.end() - 1)),
                  e.end() - 1);
      }
    }
    EXPECT_EQ(sub_total, total);
  }
}

}  // namespace
}  // namespace pvfsib::core
