// Mini-MPI runtime tests: point-to-point transfers move real bytes with
// channel-semantics timing, metadata exchange advances all clocks, and the
// whole simulation is deterministic run-to-run.
#include "mpiio/runtime.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace pvfsib::mpiio {
namespace {

TEST(Runtime, SendMovesBytesBetweenRanks) {
  pvfs::Cluster cluster(ModelConfig::paper_defaults(), 4, 2);
  Communicator comm(cluster);
  pvfs::Client& a = comm.rank(1);
  pvfs::Client& b = comm.rank(3);
  const u64 n = 64 * kKiB;
  const u64 src = a.memory().alloc(n);
  const u64 dst = b.memory().alloc(n);
  for (u64 i = 0; i < n; ++i) {
    a.memory().write_pod<u8>(src + i, static_cast<u8>(i * 3));
  }
  const TimePoint done =
      comm.send(1, src, 3, dst, n, TimePoint::origin());
  // Channel semantics: latency + bytes at the MVAPICH rate.
  const double expect_us =
      cluster.config().net.send_latency.as_us() +
      transfer_time(n, cluster.config().net.send_bw).as_us();
  EXPECT_NEAR((done - TimePoint::origin()).as_us(), expect_us, 5.0);
  EXPECT_EQ(std::memcmp(b.memory().data(dst), a.memory().data(src), n), 0);
  EXPECT_EQ(cluster.stats().get(stat::kNetBytesInterClient),
            static_cast<i64>(n));
}

TEST(Runtime, ExchangeMetadataAdvancesEveryClock) {
  pvfs::Cluster cluster(ModelConfig::paper_defaults(), 4, 2);
  Communicator comm(cluster);
  comm.rank(1).advance_to(TimePoint::origin() + Duration::ms(2));
  const TimePoint t = comm.exchange_metadata(256);
  EXPECT_GT(t, TimePoint::origin() + Duration::ms(2));
  for (int r = 0; r < 4; ++r) EXPECT_GE(comm.rank(r).now(), t);
  // 4 ranks exchanged 12 pairwise messages.
  EXPECT_EQ(cluster.stats().get(stat::kNetBytesInterClient), 12 * 256);
}

TEST(Runtime, BarrierCostGrowsLogarithmically) {
  pvfs::Cluster c2(ModelConfig::paper_defaults(), 2, 1);
  pvfs::Cluster c4(ModelConfig::paper_defaults(), 4, 1);
  Communicator comm2(c2), comm4(c4);
  const Duration b2 = comm2.barrier() - TimePoint::origin();
  const Duration b4 = comm4.barrier() - TimePoint::origin();
  EXPECT_EQ(b4.as_ns(), 2 * b2.as_ns());  // log2(4) = 2 rounds
}

// Determinism: an identical workload on two fresh clusters produces
// identical virtual times and identical counter values.
TEST(Runtime, SimulationIsDeterministic) {
  auto run_once = [] {
    pvfs::Cluster cluster(ModelConfig::paper_defaults(), 4, 4);
    pvfs::OpenFile f = cluster.client(0).create("/det").value();
    std::vector<pvfs::IoResult> results(4);
    int pending = 4;
    for (u32 r = 0; r < 4; ++r) {
      pvfs::Client& c = cluster.client(r);
      pvfs::OpenFile fr = r == 0 ? f : c.open("/det").value();
      core::ListIoRequest req;
      for (u64 i = 0; i < 64; ++i) {
        req.file.push_back({r * kMiB + i * 8192, 2048});
      }
      req.mem = {{c.memory().alloc(64 * 2048), 64 * 2048}};
      c.submit({pvfs::IoDir::kWrite, fr, req, pvfs::IoOptions{},
                TimePoint::origin()})
          .on_complete([&results, &pending, r](pvfs::IoResult res) {
            results[r] = res;
            --pending;
          });
    }
    cluster.run();
    std::string sig;
    for (const auto& res : results) {
      sig += std::to_string(res.end.as_ns()) + ";";
    }
    sig += cluster.stats().to_string();
    return sig;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace pvfsib::mpiio
