#include "ib/fabric.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace pvfsib::ib {
namespace {

class FabricTest : public ::testing::Test {
 protected:
  FabricTest()
      : client_("client", client_as_, reg_, &stats_),
        server_("server", server_as_, reg_, &stats_),
        fabric_(net_, &stats_) {}

  // Register a fresh buffer of `n` bytes on `hca`, return (addr, key).
  std::pair<u64, u32> make_buffer(Hca& hca, vmem::AddressSpace& as, u64 n) {
    const u64 a = as.alloc(n);
    RegAttempt r = hca.register_memory(a, n);
    EXPECT_TRUE(r.ok());
    return {a, r.key};
  }

  vmem::AddressSpace client_as_, server_as_;
  Stats stats_;
  RegParams reg_;
  NetParams net_;
  Hca client_, server_;
  Fabric fabric_;
};

TEST_F(FabricTest, SmallWriteLatencyMatchesTable2) {
  auto [la, lk] = make_buffer(client_, client_as_, kPageSize);
  auto [ra, rk] = make_buffer(server_, server_as_, kPageSize);
  const Sge sge{la, 4, lk};
  TransferResult tr =
      fabric_.rdma_write(client_, sge, server_, ra, rk, TimePoint::origin());
  ASSERT_TRUE(tr.ok());
  // 4-byte RDMA write: dominated by the 6.0 us one-way latency.
  EXPECT_NEAR((tr.complete - TimePoint::origin()).as_us(), 6.0, 1.5);
}

TEST_F(FabricTest, LargeWriteBandwidthMatchesTable2) {
  const u64 n = 64 * kMiB;
  auto [la, lk] = make_buffer(client_, client_as_, n);
  auto [ra, rk] = make_buffer(server_, server_as_, n);
  const Sge sge{la, n, lk};
  TransferResult tr =
      fabric_.rdma_write(client_, sge, server_, ra, rk, TimePoint::origin());
  ASSERT_TRUE(tr.ok());
  const double bw = bandwidth_mib(n, tr.complete - TimePoint::origin());
  EXPECT_NEAR(bw, 827.0, 5.0);
}

TEST_F(FabricTest, WriteMovesRealBytes) {
  auto [la, lk] = make_buffer(client_, client_as_, kPageSize);
  auto [ra, rk] = make_buffer(server_, server_as_, kPageSize);
  for (u64 i = 0; i < 64; ++i) {
    client_as_.write_pod<u8>(la + i, static_cast<u8>(i * 3));
  }
  const Sge sge{la, 64, lk};
  ASSERT_TRUE(fabric_.rdma_write(client_, sge, server_, ra, rk,
                                 TimePoint::origin())
                  .ok());
  for (u64 i = 0; i < 64; ++i) {
    EXPECT_EQ(server_as_.read_pod<u8>(ra + i), static_cast<u8>(i * 3));
  }
}

TEST_F(FabricTest, GatherWriteConcatenatesSegments) {
  auto [la, lk] = make_buffer(client_, client_as_, 4 * kPageSize);
  auto [ra, rk] = make_buffer(server_, server_as_, kPageSize);
  // Three scattered pieces.
  std::vector<Sge> sges{{la, 16, lk},
                        {la + kPageSize, 24, lk},
                        {la + 3 * kPageSize, 8, lk}};
  for (u64 i = 0; i < 16; ++i) client_as_.write_pod<u8>(la + i, 1);
  for (u64 i = 0; i < 24; ++i) client_as_.write_pod<u8>(la + kPageSize + i, 2);
  for (u64 i = 0; i < 8; ++i)
    client_as_.write_pod<u8>(la + 3 * kPageSize + i, 3);
  TransferResult tr = fabric_.rdma_write_gather(client_, sges, server_, ra, rk,
                                                TimePoint::origin());
  ASSERT_TRUE(tr.ok());
  EXPECT_EQ(tr.bytes, 48u);
  for (u64 i = 0; i < 16; ++i) EXPECT_EQ(server_as_.read_pod<u8>(ra + i), 1);
  for (u64 i = 16; i < 40; ++i) EXPECT_EQ(server_as_.read_pod<u8>(ra + i), 2);
  for (u64 i = 40; i < 48; ++i) EXPECT_EQ(server_as_.read_pod<u8>(ra + i), 3);
}

TEST_F(FabricTest, ScatterReadDistributesSegments) {
  auto [la, lk] = make_buffer(client_, client_as_, 2 * kPageSize);
  auto [ra, rk] = make_buffer(server_, server_as_, kPageSize);
  for (u64 i = 0; i < 32; ++i) {
    server_as_.write_pod<u8>(ra + i, static_cast<u8>(100 + i));
  }
  std::vector<Sge> sges{{la, 16, lk}, {la + kPageSize, 16, lk}};
  TransferResult tr = fabric_.rdma_read_scatter(client_, sges, server_, ra, rk,
                                                TimePoint::origin());
  ASSERT_TRUE(tr.ok());
  for (u64 i = 0; i < 16; ++i) {
    EXPECT_EQ(client_as_.read_pod<u8>(la + i), 100 + i);
    EXPECT_EQ(client_as_.read_pod<u8>(la + kPageSize + i), 116 + i);
  }
}

TEST_F(FabricTest, ReadSlowerThanWrite) {
  const u64 n = 1 * kMiB;
  auto [la, lk] = make_buffer(client_, client_as_, n);
  auto [ra, rk] = make_buffer(server_, server_as_, n);
  const Sge sge{la, n, lk};
  TransferResult w =
      fabric_.rdma_write(client_, sge, server_, ra, rk, TimePoint::origin());
  // Fresh NICs for a fair comparison.
  client_.nic().reset();
  server_.nic().reset();
  TransferResult r =
      fabric_.rdma_read(client_, sge, server_, ra, rk, TimePoint::origin());
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r.complete, w.complete);  // 12.4us/816MBps vs 6.0us/827MBps
}

TEST_F(FabricTest, InvalidKeyRejected) {
  auto [la, lk] = make_buffer(client_, client_as_, kPageSize);
  auto [ra, rk] = make_buffer(server_, server_as_, kPageSize);
  (void)lk;
  const Sge bad{la, 16, 9999};
  EXPECT_FALSE(
      fabric_.rdma_write(client_, bad, server_, ra, rk, TimePoint::origin())
          .ok());
  const Sge good{la, 16, lk};
  // Remote overflow rejected.
  EXPECT_FALSE(fabric_
                   .rdma_write(client_, good, server_, ra + kPageSize - 4, rk,
                               TimePoint::origin())
                   .ok());
}

TEST_F(FabricTest, PerBufferWrCostsMoreThanGather) {
  const u64 rows = 256;
  const u64 row = 4 * kKiB;
  auto [la, lk] = make_buffer(client_, client_as_, rows * row);
  auto [ra, rk] = make_buffer(server_, server_as_, rows * row);
  std::vector<Sge> sges;
  for (u64 i = 0; i < rows; ++i) sges.push_back({la + i * row, row, lk});

  TransferResult gather = fabric_.rdma_write_gather(client_, sges, server_, ra,
                                                    rk, TimePoint::origin());
  client_.nic().reset();
  server_.nic().reset();
  TransferResult multi = fabric_.rdma_write_per_buffer(
      client_, sges, server_, ra, rk, TimePoint::origin());
  ASSERT_TRUE(gather.ok());
  ASSERT_TRUE(multi.ok());
  EXPECT_LT(gather.complete, multi.complete);
  // The gap is the extra per-WR startup: 256 WRs vs ceil(256/64) = 4.
  const double gap_us =
      (multi.complete - gather.complete).as_us();
  EXPECT_NEAR(gap_us, 252 * net_.per_wr_overhead.as_us(), 5.0);
}

TEST_F(FabricTest, MisalignedSgePenalized) {
  auto [la, lk] = make_buffer(client_, client_as_, kPageSize);
  auto [ra, rk] = make_buffer(server_, server_as_, kPageSize);
  const Sge aligned{la, 64, lk};
  const Sge misaligned{la + 3, 64, lk};
  TransferResult a =
      fabric_.rdma_write(client_, aligned, server_, ra, rk, TimePoint::origin());
  client_.nic().reset();
  server_.nic().reset();
  TransferResult m = fabric_.rdma_write(client_, misaligned, server_, ra, rk,
                                        TimePoint::origin());
  EXPECT_GT(m.complete - TimePoint::origin(), a.complete - TimePoint::origin());
}

TEST_F(FabricTest, NicOccupancySerializesConcurrentTransfers) {
  const u64 n = 8 * kMiB;
  auto [la, lk] = make_buffer(client_, client_as_, 2 * n);
  auto [ra, rk] = make_buffer(server_, server_as_, 2 * n);
  const Sge s1{la, n, lk};
  const Sge s2{la + n, n, lk};
  TransferResult t1 =
      fabric_.rdma_write(client_, s1, server_, ra, rk, TimePoint::origin());
  TransferResult t2 =
      fabric_.rdma_write(client_, s2, server_, ra + n, rk, TimePoint::origin());
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  // Second transfer queues behind the first on the shared NICs.
  const Duration one = t1.complete - TimePoint::origin();
  const Duration both = t2.complete - TimePoint::origin();
  EXPECT_GT(both.as_us(), 1.9 * one.as_us() - 20.0);
}

TEST_F(FabricTest, ControlMessageTiming) {
  const TimePoint done = fabric_.send_control(client_, server_, 256,
                                              TimePoint::origin(),
                                              ControlKind::kRequest);
  EXPECT_NEAR((done - TimePoint::origin()).as_us(), 6.8 + 0.3, 0.5);
  EXPECT_EQ(stats_.get(stat::kNetBytesControl), 256);
}

// Property: gather write equals the equivalent contiguous write in payload
// bytes regardless of how the stream is fragmented.
TEST_F(FabricTest, FragmentationPreservesPayload) {
  Rng rng(99);
  const u64 n = 64 * kKiB;
  auto [la, lk] = make_buffer(client_, client_as_, n);
  auto [ra, rk] = make_buffer(server_, server_as_, n);
  for (u64 i = 0; i < n; ++i) {
    client_as_.write_pod<u8>(la + i, static_cast<u8>(rng.next()));
  }
  // Random fragmentation into SGEs.
  std::vector<Sge> sges;
  u64 pos = 0;
  while (pos < n) {
    const u64 len = std::min<u64>(rng.range(1, 4096), n - pos);
    sges.push_back({la + pos, len, lk});
    pos += len;
  }
  TransferResult tr = fabric_.rdma_write_gather(client_, sges, server_, ra, rk,
                                                TimePoint::origin());
  ASSERT_TRUE(tr.ok());
  EXPECT_EQ(tr.bytes, n);
  EXPECT_EQ(std::memcmp(client_as_.data(la), server_as_.data(ra), n), 0);
}

}  // namespace
}  // namespace pvfsib::ib
