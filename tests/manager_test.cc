// Metadata manager unit tests: namespace operations, striping parameters,
// size bookkeeping, and control-message timing.
#include "pvfs/manager.h"

#include <gtest/gtest.h>

namespace pvfsib::pvfs {
namespace {

class ManagerTest : public ::testing::Test {
 protected:
  ManagerTest()
      : cfg_(ModelConfig::paper_defaults()),
        fabric_(cfg_.net, &stats_),
        mgr_(cfg_, fabric_, &stats_),
        client_hca_("c", client_as_, cfg_.reg, &stats_) {}

  ModelConfig cfg_;
  Stats stats_;
  ib::Fabric fabric_;
  Manager mgr_;
  vmem::AddressSpace client_as_;
  ib::Hca client_hca_;
};

TEST_F(ManagerTest, CreateAssignsUniqueHandles) {
  auto a = mgr_.create(client_hca_, TimePoint::origin(), "/a", 64 * kKiB, 4);
  auto b = mgr_.create(client_hca_, TimePoint::origin(), "/b", 64 * kKiB, 4);
  ASSERT_TRUE(a.value.is_ok());
  ASSERT_TRUE(b.value.is_ok());
  EXPECT_NE(a.value.value().handle, b.value.value().handle);
  EXPECT_GT(a.cost, Duration::zero());  // control round-trip charged
}

TEST_F(ManagerTest, DuplicateCreateFails) {
  ASSERT_TRUE(mgr_.create(client_hca_, TimePoint::origin(), "/a", 64 * kKiB, 4)
                  .value.is_ok());
  auto dup = mgr_.create(client_hca_, TimePoint::origin(), "/a", 64 * kKiB, 4);
  EXPECT_FALSE(dup.value.is_ok());
  EXPECT_EQ(dup.value.status().code(), ErrorCode::kAlreadyExists);
  // The failed round-trip still costs time.
  EXPECT_GT(dup.cost, Duration::zero());
}

TEST_F(ManagerTest, BadStripingRejected) {
  EXPECT_FALSE(mgr_.create(client_hca_, TimePoint::origin(), "/z", 0, 4)
                   .value.is_ok());
  EXPECT_FALSE(mgr_.create(client_hca_, TimePoint::origin(), "/z", 64 * kKiB, 0)
                   .value.is_ok());
}

TEST_F(ManagerTest, OpenReturnsMetadata) {
  mgr_.create(client_hca_, TimePoint::origin(), "/a", 128 * kKiB, 2);
  auto o = mgr_.open(client_hca_, TimePoint::origin(), "/a");
  ASSERT_TRUE(o.value.is_ok());
  EXPECT_EQ(o.value.value().stripe_size, 128 * kKiB);
  EXPECT_EQ(o.value.value().iod_count, 2u);
  EXPECT_FALSE(
      mgr_.open(client_hca_, TimePoint::origin(), "/nope").value.is_ok());
}

TEST_F(ManagerTest, RemoveDeletesNamespaceEntry) {
  mgr_.create(client_hca_, TimePoint::origin(), "/a", 64 * kKiB, 4);
  ASSERT_TRUE(mgr_.remove(client_hca_, TimePoint::origin(), "/a").value.is_ok());
  EXPECT_FALSE(
      mgr_.open(client_hca_, TimePoint::origin(), "/a").value.is_ok());
  EXPECT_FALSE(
      mgr_.remove(client_hca_, TimePoint::origin(), "/a").value.is_ok());
  // The name can be reused.
  EXPECT_TRUE(mgr_.create(client_hca_, TimePoint::origin(), "/a", 64 * kKiB, 4)
                  .value.is_ok());
}

TEST_F(ManagerTest, SizeBookkeepingMonotone) {
  auto f = mgr_.create(client_hca_, TimePoint::origin(), "/a", 64 * kKiB, 4);
  const Handle h = f.value.value().handle;
  mgr_.note_written(h, 1000);
  mgr_.note_written(h, 500);  // smaller end must not shrink the file
  EXPECT_EQ(mgr_.stat("/a").value().logical_size, 1000u);
  mgr_.note_written(h, 2000);
  EXPECT_EQ(mgr_.stat("/a").value().logical_size, 2000u);
  mgr_.note_written(999, 5000);  // unknown handle ignored
}

TEST_F(ManagerTest, RoundTripTimeMatchesControlPath) {
  auto f = mgr_.create(client_hca_, TimePoint::origin(), "/t", 64 * kKiB, 4);
  // request + reply latencies plus the manager's lookup cost (~5 us).
  EXPECT_NEAR(f.cost.as_us(), 2 * cfg_.net.send_latency.as_us() + 5.0, 2.0);
}

}  // namespace
}  // namespace pvfsib::pvfs
