// Metadata manager unit tests: namespace operations, striping parameters,
// size bookkeeping, and control-message timing.
#include "pvfs/manager.h"

#include <gtest/gtest.h>

namespace pvfsib::pvfs {
namespace {

class ManagerTest : public ::testing::Test {
 protected:
  ManagerTest()
      : cfg_(ModelConfig::paper_defaults()),
        fabric_(cfg_.net, &stats_),
        mgr_(cfg_, fabric_, &stats_),
        client_hca_("c", client_as_, cfg_.reg, &stats_) {}

  ModelConfig cfg_;
  Stats stats_;
  ib::Fabric fabric_;
  Manager mgr_;
  vmem::AddressSpace client_as_;
  ib::Hca client_hca_;
};

TEST_F(ManagerTest, CreateAssignsUniqueHandles) {
  auto a = mgr_.create(client_hca_, TimePoint::origin(), "/a", 64 * kKiB, 4);
  auto b = mgr_.create(client_hca_, TimePoint::origin(), "/b", 64 * kKiB, 4);
  ASSERT_TRUE(a.value.is_ok());
  ASSERT_TRUE(b.value.is_ok());
  EXPECT_NE(a.value.value().handle, b.value.value().handle);
  EXPECT_GT(a.cost, Duration::zero());  // control round-trip charged
}

TEST_F(ManagerTest, DuplicateCreateFails) {
  ASSERT_TRUE(mgr_.create(client_hca_, TimePoint::origin(), "/a", 64 * kKiB, 4)
                  .value.is_ok());
  auto dup = mgr_.create(client_hca_, TimePoint::origin(), "/a", 64 * kKiB, 4);
  EXPECT_FALSE(dup.value.is_ok());
  EXPECT_EQ(dup.value.status().code(), ErrorCode::kAlreadyExists);
  // The failed round-trip still costs time.
  EXPECT_GT(dup.cost, Duration::zero());
}

TEST_F(ManagerTest, BadStripingRejected) {
  EXPECT_FALSE(mgr_.create(client_hca_, TimePoint::origin(), "/z", 0, 4)
                   .value.is_ok());
  EXPECT_FALSE(mgr_.create(client_hca_, TimePoint::origin(), "/z", 64 * kKiB, 0)
                   .value.is_ok());
}

TEST_F(ManagerTest, OpenReturnsMetadata) {
  mgr_.create(client_hca_, TimePoint::origin(), "/a", 128 * kKiB, 2);
  auto o = mgr_.open(client_hca_, TimePoint::origin(), "/a");
  ASSERT_TRUE(o.value.is_ok());
  EXPECT_EQ(o.value.value().stripe_size, 128 * kKiB);
  EXPECT_EQ(o.value.value().iod_count, 2u);
  EXPECT_FALSE(
      mgr_.open(client_hca_, TimePoint::origin(), "/nope").value.is_ok());
}

TEST_F(ManagerTest, RemoveDeletesNamespaceEntry) {
  mgr_.create(client_hca_, TimePoint::origin(), "/a", 64 * kKiB, 4);
  ASSERT_TRUE(mgr_.remove(client_hca_, TimePoint::origin(), "/a").value.is_ok());
  EXPECT_FALSE(
      mgr_.open(client_hca_, TimePoint::origin(), "/a").value.is_ok());
  EXPECT_FALSE(
      mgr_.remove(client_hca_, TimePoint::origin(), "/a").value.is_ok());
  // The name can be reused.
  EXPECT_TRUE(mgr_.create(client_hca_, TimePoint::origin(), "/a", 64 * kKiB, 4)
                  .value.is_ok());
}

TEST_F(ManagerTest, SizeBookkeepingMonotone) {
  auto f = mgr_.create(client_hca_, TimePoint::origin(), "/a", 64 * kKiB, 4);
  const Handle h = f.value.value().handle;
  mgr_.note_written(h, 1000);
  mgr_.note_written(h, 500);  // smaller end must not shrink the file
  EXPECT_EQ(mgr_.stat("/a").value().logical_size, 1000u);
  mgr_.note_written(h, 2000);
  EXPECT_EQ(mgr_.stat("/a").value().logical_size, 2000u);
  mgr_.note_written(999, 5000);  // unknown handle ignored
}

TEST_F(ManagerTest, RoundTripTimeMatchesControlPath) {
  auto f = mgr_.create(client_hca_, TimePoint::origin(), "/t", 64 * kKiB, 4);
  // request + reply latencies plus the manager's lookup cost (~5 us).
  EXPECT_NEAR(f.cost.as_us(), 2 * cfg_.net.send_latency.as_us() + 5.0, 2.0);
}

// --- replica placement ---------------------------------------------------

TEST(ReplicaPlacement, RotatesChainedAcrossPhysicalIods) {
  auto r = Manager::place_replicas(/*base=*/0, /*stripe_width=*/4,
                                   /*factor=*/2, /*physical_count=*/4);
  ASSERT_TRUE(r.is_ok());
  const std::vector<std::vector<u32>> want = {{0, 1}, {1, 2}, {2, 3}, {3, 0}};
  EXPECT_EQ(r.value(), want);
}

TEST(ReplicaPlacement, HonoursBaseOffsetAndWrapsAtHigherFactor) {
  auto r = Manager::place_replicas(/*base=*/2, /*stripe_width=*/2,
                                   /*factor=*/3, /*physical_count=*/4);
  ASSERT_TRUE(r.is_ok());
  const std::vector<std::vector<u32>> want = {{2, 3, 0}, {3, 0, 1}};
  EXPECT_EQ(r.value(), want);
}

TEST(ReplicaPlacement, ReplicasOfOneStripeAreAlwaysDistinct) {
  for (u32 count = 1; count <= 6; ++count) {
    for (u32 factor = 1; factor <= count; ++factor) {
      auto r = Manager::place_replicas(1, /*stripe_width=*/count, factor,
                                       count);
      ASSERT_TRUE(r.is_ok());
      for (const std::vector<u32>& set : r.value()) {
        ASSERT_EQ(set.size(), factor);
        for (size_t a = 0; a < set.size(); ++a) {
          for (size_t b = a + 1; b < set.size(); ++b) {
            EXPECT_NE(set[a], set[b]) << "count " << count << " factor "
                                      << factor;
          }
        }
      }
    }
  }
}

TEST(ReplicaPlacement, RejectsImpossibleFactors) {
  EXPECT_FALSE(Manager::place_replicas(0, 4, /*factor=*/0, 4).is_ok());
  EXPECT_FALSE(
      Manager::place_replicas(0, 4, /*factor=*/5, /*physical_count=*/4)
          .is_ok());
  EXPECT_FALSE(
      Manager::place_replicas(0, 4, /*factor=*/2, /*physical_count=*/0)
          .is_ok());
}

TEST_F(ManagerTest, ReplicatedCreatePopulatesRotatedSets) {
  Manager mgr(cfg_, fabric_, &stats_, ManagerOptions{.cluster_iod_count = 4});
  auto f = mgr.create(client_hca_, TimePoint::origin(), "/rep", 64 * kKiB, 4,
                      /*base_iod=*/0, /*replication_factor=*/2);
  ASSERT_TRUE(f.value.is_ok());
  const FileMeta& meta = f.value.value();
  EXPECT_EQ(meta.replication_factor, 2u);
  const std::vector<std::vector<u32>> want = {{0, 1}, {1, 2}, {2, 3}, {3, 0}};
  EXPECT_EQ(meta.replicas, want);
  // The primary of stripe k is exactly the classic PVFS target.
  for (u32 k = 0; k < 4; ++k) {
    EXPECT_EQ(meta.replicas[k][0], (meta.base_iod + k) % 4);
  }
}

TEST_F(ManagerTest, FactorOneCreateLeavesReplicasEmpty) {
  auto f = mgr_.create(client_hca_, TimePoint::origin(), "/one", 64 * kKiB, 4);
  ASSERT_TRUE(f.value.is_ok());
  EXPECT_EQ(f.value.value().replication_factor, 1u);
  EXPECT_TRUE(f.value.value().replicas.empty());
}

TEST_F(ManagerTest, ReplicatedCreateRejectedBeyondClusterSize) {
  // The fixture's manager was built with an unknown (0) cluster size:
  // replicated creates must be refused rather than placed blindly.
  auto unknown = mgr_.create(client_hca_, TimePoint::origin(), "/r0",
                             64 * kKiB, 4, /*base_iod=*/0,
                             /*replication_factor=*/2);
  EXPECT_FALSE(unknown.value.is_ok());

  Manager small(cfg_, fabric_, &stats_, ManagerOptions{.cluster_iod_count = 2});
  auto too_wide = small.create(client_hca_, TimePoint::origin(), "/r1",
                               64 * kKiB, 2, /*base_iod=*/0,
                               /*replication_factor=*/3);
  EXPECT_FALSE(too_wide.value.is_ok());
  EXPECT_EQ(too_wide.value.status().code(), ErrorCode::kInvalidArgument);
  // The name stays free after a rejected placement.
  EXPECT_TRUE(small
                  .create(client_hca_, TimePoint::origin(), "/r1", 64 * kKiB,
                          2, /*base_iod=*/0, /*replication_factor=*/2)
                  .value.is_ok());
}

// --- version plane -------------------------------------------------------

TEST_F(ManagerTest, VersionPlaneIsInertAtFactorOne) {
  auto f = mgr_.create(client_hca_, TimePoint::origin(), "/v1", 64 * kKiB, 4);
  ASSERT_TRUE(f.value.is_ok());
  const Handle h = f.value.value().handle;
  EXPECT_EQ(mgr_.allocate_stripe_version(h, 0), 0u);
  EXPECT_EQ(mgr_.allocate_stripe_version(h, 0), 0u);
  EXPECT_FALSE(mgr_.stripe_versions(h, 0).known);
  EXPECT_EQ(mgr_.allocate_stripe_version(/*unknown=*/999, 0), 0u);
}

TEST_F(ManagerTest, VersionsMonotonePerStripeAndTrackedPerReplica) {
  Manager mgr(cfg_, fabric_, &stats_, ManagerOptions{.cluster_iod_count = 4});
  auto f = mgr.create(client_hca_, TimePoint::origin(), "/rep", 64 * kKiB, 4,
                      /*base_iod=*/0, /*replication_factor=*/2);
  ASSERT_TRUE(f.value.is_ok());
  const Handle h = f.value.value().handle;
  // Stripe 1's chain is {iod1, iod2}.
  EXPECT_EQ(mgr.allocate_stripe_version(h, 1), 1u);
  EXPECT_EQ(mgr.allocate_stripe_version(h, 1), 2u);
  EXPECT_EQ(mgr.allocate_stripe_version(h, 3), 1u);  // per-stripe sequences
  mgr.note_replica_version(h, 1, /*iod_id=*/1, 1);   // primary acked v1 only
  mgr.note_replica_version(h, 1, /*iod_id=*/2, 2);   // backup acked v2
  Manager::StripeVersionView v = mgr.stripe_versions(h, 1);
  ASSERT_TRUE(v.known);
  EXPECT_EQ(v.latest, 2u);
  ASSERT_EQ(v.replica_versions.size(), 2u);
  EXPECT_EQ(v.replica_versions[0], 1u);
  EXPECT_EQ(v.replica_versions[1], 2u);
  // A stale (replayed) note never regresses the record.
  mgr.note_replica_version(h, 1, 2, 1);
  EXPECT_EQ(mgr.stripe_versions(h, 1).replica_versions[1], 2u);
  // Notes from iods outside the stripe's chain are ignored.
  mgr.note_replica_version(h, 1, 3, 7);
  EXPECT_EQ(mgr.stripe_versions(h, 1).latest, 2u);
}

TEST_F(ManagerTest, ResyncTargetsListStaleReplicasWithCurrentPeers) {
  Manager mgr(cfg_, fabric_, &stats_, ManagerOptions{.cluster_iod_count = 4});
  auto f = mgr.create(client_hca_, TimePoint::origin(), "/rep", 64 * kKiB, 4,
                      /*base_iod=*/0, /*replication_factor=*/2);
  const Handle h = f.value.value().handle;
  mgr.allocate_stripe_version(h, 1);
  mgr.allocate_stripe_version(h, 1);
  mgr.note_replica_version(h, 1, /*iod_id=*/1, 1);
  mgr.note_replica_version(h, 1, /*iod_id=*/2, 2);
  // iod1 (position 0 of {1,2}) trails: one target, served from its primary
  // local file, pulling from the current backup's shadow file.
  std::vector<Manager::ResyncTarget> t = mgr.resync_targets(1);
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t[0].handle, h);
  EXPECT_EQ(t[0].stripe, 1u);
  EXPECT_EQ(t[0].latest, 2u);
  EXPECT_EQ(t[0].local_handle, h);
  ASSERT_EQ(t[0].peers.size(), 1u);
  EXPECT_EQ(t[0].peers[0], 2u);
  EXPECT_EQ(t[0].peer_handles[0], backup_handle(h, 1));
  // The current replica has nothing to pull; once the stale one catches up
  // (a resync completion notes it), the target disappears.
  EXPECT_TRUE(mgr.resync_targets(2).empty());
  mgr.note_replica_version(h, 1, 1, 2);
  EXPECT_TRUE(mgr.resync_targets(1).empty());
}

// Regression (note fencing on handle liveness / replica-set membership):
// a note must never materialize stripe state for a handle the namespace no
// longer knows, or from an iod outside the stripe's chain.

TEST_F(ManagerTest, NoteFromOutOfSetIodCreatesNoStripeState) {
  Manager mgr(cfg_, fabric_, &stats_, ManagerOptions{.cluster_iod_count = 4});
  auto f = mgr.create(client_hca_, TimePoint::origin(), "/rep", 64 * kKiB, 4,
                      /*base_iod=*/0, /*replication_factor=*/2);
  const Handle h = f.value.value().handle;
  // Stripe 2's chain is {2, 3}; iod0 is a stranger. The note must be
  // dropped without creating the (h, 2) entry as a side effect.
  mgr.note_replica_version(h, 2, /*iod_id=*/0, 7);
  EXPECT_FALSE(mgr.stripe_versions(h, 2).known);
}

TEST_F(ManagerTest, LateAckAfterRemoveDoesNotResurrectStripeState) {
  Manager mgr(cfg_, fabric_, &stats_, ManagerOptions{.cluster_iod_count = 4});
  auto f = mgr.create(client_hca_, TimePoint::origin(), "/rep", 64 * kKiB, 4,
                      /*base_iod=*/0, /*replication_factor=*/2);
  const Handle h = f.value.value().handle;
  mgr.allocate_stripe_version(h, 1);
  mgr.note_replica_version(h, 1, /*iod_id=*/1, 1);
  ASSERT_TRUE(mgr.stripe_versions(h, 1).known);
  ASSERT_TRUE(
      mgr.remove(client_hca_, TimePoint::origin(), "/rep").value.is_ok());
  // A post-settle late ack for the deleted handle arrives: the liveness
  // fence drops it and the stripe-state range stays empty.
  mgr.note_replica_version(h, 1, /*iod_id=*/1, 1);
  EXPECT_FALSE(mgr.stripe_versions(h, 1).known);
  // A recreated file under the same name gets a fresh handle, so stale
  // notes against the old handle stay inert for it too.
  auto g = mgr.create(client_hca_, TimePoint::origin(), "/rep", 64 * kKiB, 4,
                      /*base_iod=*/0, /*replication_factor=*/2);
  ASSERT_TRUE(g.value.is_ok());
  EXPECT_NE(g.value.value().handle, h);
  EXPECT_FALSE(mgr.stripe_versions(g.value.value().handle, 1).known);
}

TEST_F(ManagerTest, RemoveDropsStripeState) {
  Manager mgr(cfg_, fabric_, &stats_, ManagerOptions{.cluster_iod_count = 4});
  auto f = mgr.create(client_hca_, TimePoint::origin(), "/rep", 64 * kKiB, 4,
                      /*base_iod=*/0, /*replication_factor=*/2);
  const Handle h = f.value.value().handle;
  mgr.allocate_stripe_version(h, 0);
  ASSERT_TRUE(mgr.stripe_versions(h, 0).known);
  ASSERT_TRUE(mgr.remove(client_hca_, TimePoint::origin(), "/rep")
                  .value.is_ok());
  EXPECT_FALSE(mgr.stripe_versions(h, 0).known);
  EXPECT_EQ(mgr.allocate_stripe_version(h, 0), 0u);  // meta gone too
}

// --- manager epoch / standby takeover ------------------------------------

class TakeoverTest : public ManagerTest {
 protected:
  TakeoverTest()
      : primary_(cfg_, fabric_, &stats_,
                 ManagerOptions{.cluster_iod_count = 4}),
        standby_(cfg_, fabric_, &stats_,
                 ManagerOptions{.cluster_iod_count = 4, .name = "mgr2"}) {
    primary_.attach_epoch(&cell_, /*active=*/true);
    standby_.attach_epoch(&cell_, /*active=*/false);
  }

  Handle create_replicated(const char* name) {
    auto f = primary_.create(client_hca_, TimePoint::origin(), name, 64 * kKiB,
                             4, /*base_iod=*/0, /*replication_factor=*/2);
    EXPECT_TRUE(f.value.is_ok());
    return f.value.value().handle;
  }

  ManagerEpoch cell_;
  Manager primary_;
  Manager standby_;
};

TEST_F(TakeoverTest, StandbyRedirectsUntilPromoted) {
  create_replicated("/rep");
  // Before takeover the standby refuses metadata work with a fast redirect
  // (kFailedPrecondition), not a timeout.
  auto o = standby_.open(client_hca_, TimePoint::origin(), "/rep");
  EXPECT_EQ(o.value.status().code(), ErrorCode::kFailedPrecondition);
  standby_.take_over(primary_, {}, TimePoint::origin());
  // Post-takeover the standby serves the adopted namespace...
  EXPECT_TRUE(
      standby_.open(client_hca_, TimePoint::origin(), "/rep").value.is_ok());
  // ...and the demoted primary (which can see the cluster epoch moved on)
  // redirects instead of split-braining the namespace.
  auto z = primary_.create(client_hca_, TimePoint::origin(), "/z", 64 * kKiB, 4);
  EXPECT_EQ(z.value.status().code(), ErrorCode::kFailedPrecondition);
}

TEST_F(TakeoverTest, TakeoverBumpsEpochAndFencesStaleNotes) {
  const Handle h = create_replicated("/rep");
  EXPECT_EQ(primary_.allocate_stripe_version(h, 1), 1u);
  EXPECT_EQ(primary_.epoch(), 1u);
  ASSERT_FALSE(standby_.active());

  standby_.take_over(primary_, {}, TimePoint::origin());
  EXPECT_EQ(cell_.value, 2u);
  EXPECT_EQ(standby_.epoch(), 2u);
  EXPECT_TRUE(standby_.active());
  EXPECT_TRUE(primary_.epoch_stale());
  EXPECT_FALSE(standby_.epoch_stale());

  // A note whose version was minted under the demoted epoch is fenced.
  const i64 before = stats_.get(stat::kPvfsEpochRejections);
  standby_.note_replica_version(h, 1, /*iod_id=*/1, 1, /*note_epoch=*/1);
  EXPECT_EQ(stats_.get(stat::kPvfsEpochRejections), before + 1);
  EXPECT_FALSE(standby_.stripe_versions(h, 1).known);
  // Trusted (epoch-0) observations and current-epoch notes pass.
  standby_.note_replica_version(h, 1, /*iod_id=*/1, 1);
  EXPECT_TRUE(standby_.stripe_versions(h, 1).known);
  standby_.note_replica_version(h, 1, /*iod_id=*/2, 1, /*note_epoch=*/2);
  EXPECT_EQ(standby_.stripe_versions(h, 1).replica_versions[1], 1u);
}

TEST_F(TakeoverTest, RebuildsStalenessMapFromScannedHeaders) {
  const Handle h = create_replicated("/rep");
  // Pretend pre-crash history: stripe 1 (chain {1, 2}) reached v2 on the
  // primary copy (iod1, the file's own local key) while the backup copy
  // (iod2, shadow key) only applied v1.
  const std::vector<Manager::HeaderObservation> headers = {
      {/*iod_id=*/1, h, /*version=*/2},
      {/*iod_id=*/2, backup_handle(h, 1), /*version=*/1},
  };
  standby_.take_over(primary_, headers, TimePoint::origin());

  Manager::StripeVersionView v = standby_.stripe_versions(h, 1);
  ASSERT_TRUE(v.known);
  EXPECT_EQ(v.latest, 2u);
  ASSERT_EQ(v.replica_versions.size(), 2u);
  EXPECT_EQ(v.replica_versions[0], 2u);
  EXPECT_EQ(v.replica_versions[1], 1u);
  // The trailing backup is a resync target pulling from the current
  // primary; the current primary has nothing to do.
  std::vector<Manager::ResyncTarget> t = standby_.resync_targets(2);
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t[0].handle, h);
  EXPECT_EQ(t[0].stripe, 1u);
  EXPECT_EQ(t[0].latest, 2u);
  EXPECT_EQ(t[0].local_handle, backup_handle(h, 1));
  ASSERT_EQ(t[0].peers.size(), 1u);
  EXPECT_EQ(t[0].peers[0], 1u);
  EXPECT_TRUE(standby_.resync_targets(1).empty());

  // Stripes with no header evidence stay unknown, and mint above the
  // highest version observed anywhere (the floor), so a fresh sequence can
  // never collide with the old primary's in-flight mints.
  EXPECT_FALSE(standby_.stripe_versions(h, 0).known);
  EXPECT_EQ(standby_.allocate_stripe_version(h, 0), 3u);
  // Rebuilt stripes continue above their own observed maximum.
  EXPECT_EQ(standby_.allocate_stripe_version(h, 1), 3u);
}

TEST_F(TakeoverTest, RebuildSkipsDeletedFilesButKeepsTheMintFloor) {
  const Handle h = create_replicated("/gone");
  ASSERT_TRUE(
      primary_.remove(client_hca_, TimePoint::origin(), "/gone").value.is_ok());
  // An orphaned header for the deleted handle survives on some iod (e.g.
  // the iod was down during the unlink): the rebuild must not resurrect
  // the file's stripe state, but the floor still honours the version.
  const std::vector<Manager::HeaderObservation> headers = {
      {/*iod_id=*/1, h, /*version=*/5},
  };
  standby_.take_over(primary_, headers, TimePoint::origin());
  EXPECT_FALSE(standby_.stripe_versions(h, 1).known);
  EXPECT_FALSE(standby_.stat("/gone").is_ok());
  auto g = standby_.create(client_hca_, TimePoint::origin(), "/fresh",
                           64 * kKiB, 4, /*base_iod=*/0,
                           /*replication_factor=*/2);
  ASSERT_TRUE(g.value.is_ok());
  EXPECT_EQ(standby_.allocate_stripe_version(g.value.value().handle, 0), 6u);
}

}  // namespace
}  // namespace pvfsib::pvfs
