// Metadata manager unit tests: namespace operations, striping parameters,
// size bookkeeping, and control-message timing.
#include "pvfs/manager.h"

#include <gtest/gtest.h>

namespace pvfsib::pvfs {
namespace {

class ManagerTest : public ::testing::Test {
 protected:
  ManagerTest()
      : cfg_(ModelConfig::paper_defaults()),
        fabric_(cfg_.net, &stats_),
        mgr_(cfg_, fabric_, &stats_),
        client_hca_("c", client_as_, cfg_.reg, &stats_) {}

  ModelConfig cfg_;
  Stats stats_;
  ib::Fabric fabric_;
  Manager mgr_;
  vmem::AddressSpace client_as_;
  ib::Hca client_hca_;
};

TEST_F(ManagerTest, CreateAssignsUniqueHandles) {
  auto a = mgr_.create(client_hca_, TimePoint::origin(), "/a", 64 * kKiB, 4);
  auto b = mgr_.create(client_hca_, TimePoint::origin(), "/b", 64 * kKiB, 4);
  ASSERT_TRUE(a.value.is_ok());
  ASSERT_TRUE(b.value.is_ok());
  EXPECT_NE(a.value.value().handle, b.value.value().handle);
  EXPECT_GT(a.cost, Duration::zero());  // control round-trip charged
}

TEST_F(ManagerTest, DuplicateCreateFails) {
  ASSERT_TRUE(mgr_.create(client_hca_, TimePoint::origin(), "/a", 64 * kKiB, 4)
                  .value.is_ok());
  auto dup = mgr_.create(client_hca_, TimePoint::origin(), "/a", 64 * kKiB, 4);
  EXPECT_FALSE(dup.value.is_ok());
  EXPECT_EQ(dup.value.status().code(), ErrorCode::kAlreadyExists);
  // The failed round-trip still costs time.
  EXPECT_GT(dup.cost, Duration::zero());
}

TEST_F(ManagerTest, BadStripingRejected) {
  EXPECT_FALSE(mgr_.create(client_hca_, TimePoint::origin(), "/z", 0, 4)
                   .value.is_ok());
  EXPECT_FALSE(mgr_.create(client_hca_, TimePoint::origin(), "/z", 64 * kKiB, 0)
                   .value.is_ok());
}

TEST_F(ManagerTest, OpenReturnsMetadata) {
  mgr_.create(client_hca_, TimePoint::origin(), "/a", 128 * kKiB, 2);
  auto o = mgr_.open(client_hca_, TimePoint::origin(), "/a");
  ASSERT_TRUE(o.value.is_ok());
  EXPECT_EQ(o.value.value().stripe_size, 128 * kKiB);
  EXPECT_EQ(o.value.value().iod_count, 2u);
  EXPECT_FALSE(
      mgr_.open(client_hca_, TimePoint::origin(), "/nope").value.is_ok());
}

TEST_F(ManagerTest, RemoveDeletesNamespaceEntry) {
  mgr_.create(client_hca_, TimePoint::origin(), "/a", 64 * kKiB, 4);
  ASSERT_TRUE(mgr_.remove(client_hca_, TimePoint::origin(), "/a").value.is_ok());
  EXPECT_FALSE(
      mgr_.open(client_hca_, TimePoint::origin(), "/a").value.is_ok());
  EXPECT_FALSE(
      mgr_.remove(client_hca_, TimePoint::origin(), "/a").value.is_ok());
  // The name can be reused.
  EXPECT_TRUE(mgr_.create(client_hca_, TimePoint::origin(), "/a", 64 * kKiB, 4)
                  .value.is_ok());
}

TEST_F(ManagerTest, SizeBookkeepingMonotone) {
  auto f = mgr_.create(client_hca_, TimePoint::origin(), "/a", 64 * kKiB, 4);
  const Handle h = f.value.value().handle;
  mgr_.note_written(h, 1000);
  mgr_.note_written(h, 500);  // smaller end must not shrink the file
  EXPECT_EQ(mgr_.stat("/a").value().logical_size, 1000u);
  mgr_.note_written(h, 2000);
  EXPECT_EQ(mgr_.stat("/a").value().logical_size, 2000u);
  mgr_.note_written(999, 5000);  // unknown handle ignored
}

TEST_F(ManagerTest, RoundTripTimeMatchesControlPath) {
  auto f = mgr_.create(client_hca_, TimePoint::origin(), "/t", 64 * kKiB, 4);
  // request + reply latencies plus the manager's lookup cost (~5 us).
  EXPECT_NEAR(f.cost.as_us(), 2 * cfg_.net.send_latency.as_us() + 5.0, 2.0);
}

// --- replica placement ---------------------------------------------------

TEST(ReplicaPlacement, RotatesChainedAcrossPhysicalIods) {
  auto r = Manager::place_replicas(/*base=*/0, /*stripe_width=*/4,
                                   /*factor=*/2, /*physical_count=*/4);
  ASSERT_TRUE(r.is_ok());
  const std::vector<std::vector<u32>> want = {{0, 1}, {1, 2}, {2, 3}, {3, 0}};
  EXPECT_EQ(r.value(), want);
}

TEST(ReplicaPlacement, HonoursBaseOffsetAndWrapsAtHigherFactor) {
  auto r = Manager::place_replicas(/*base=*/2, /*stripe_width=*/2,
                                   /*factor=*/3, /*physical_count=*/4);
  ASSERT_TRUE(r.is_ok());
  const std::vector<std::vector<u32>> want = {{2, 3, 0}, {3, 0, 1}};
  EXPECT_EQ(r.value(), want);
}

TEST(ReplicaPlacement, ReplicasOfOneStripeAreAlwaysDistinct) {
  for (u32 count = 1; count <= 6; ++count) {
    for (u32 factor = 1; factor <= count; ++factor) {
      auto r = Manager::place_replicas(1, /*stripe_width=*/count, factor,
                                       count);
      ASSERT_TRUE(r.is_ok());
      for (const std::vector<u32>& set : r.value()) {
        ASSERT_EQ(set.size(), factor);
        for (size_t a = 0; a < set.size(); ++a) {
          for (size_t b = a + 1; b < set.size(); ++b) {
            EXPECT_NE(set[a], set[b]) << "count " << count << " factor "
                                      << factor;
          }
        }
      }
    }
  }
}

TEST(ReplicaPlacement, RejectsImpossibleFactors) {
  EXPECT_FALSE(Manager::place_replicas(0, 4, /*factor=*/0, 4).is_ok());
  EXPECT_FALSE(
      Manager::place_replicas(0, 4, /*factor=*/5, /*physical_count=*/4)
          .is_ok());
  EXPECT_FALSE(
      Manager::place_replicas(0, 4, /*factor=*/2, /*physical_count=*/0)
          .is_ok());
}

TEST_F(ManagerTest, ReplicatedCreatePopulatesRotatedSets) {
  Manager mgr(cfg_, fabric_, &stats_, /*cluster_iod_count=*/4);
  auto f = mgr.create(client_hca_, TimePoint::origin(), "/rep", 64 * kKiB, 4,
                      /*base_iod=*/0, /*replication_factor=*/2);
  ASSERT_TRUE(f.value.is_ok());
  const FileMeta& meta = f.value.value();
  EXPECT_EQ(meta.replication_factor, 2u);
  const std::vector<std::vector<u32>> want = {{0, 1}, {1, 2}, {2, 3}, {3, 0}};
  EXPECT_EQ(meta.replicas, want);
  // The primary of stripe k is exactly the classic PVFS target.
  for (u32 k = 0; k < 4; ++k) {
    EXPECT_EQ(meta.replicas[k][0], (meta.base_iod + k) % 4);
  }
}

TEST_F(ManagerTest, FactorOneCreateLeavesReplicasEmpty) {
  auto f = mgr_.create(client_hca_, TimePoint::origin(), "/one", 64 * kKiB, 4);
  ASSERT_TRUE(f.value.is_ok());
  EXPECT_EQ(f.value.value().replication_factor, 1u);
  EXPECT_TRUE(f.value.value().replicas.empty());
}

TEST_F(ManagerTest, ReplicatedCreateRejectedBeyondClusterSize) {
  // The fixture's manager was built with an unknown (0) cluster size:
  // replicated creates must be refused rather than placed blindly.
  auto unknown = mgr_.create(client_hca_, TimePoint::origin(), "/r0",
                             64 * kKiB, 4, /*base_iod=*/0,
                             /*replication_factor=*/2);
  EXPECT_FALSE(unknown.value.is_ok());

  Manager small(cfg_, fabric_, &stats_, /*cluster_iod_count=*/2);
  auto too_wide = small.create(client_hca_, TimePoint::origin(), "/r1",
                               64 * kKiB, 2, /*base_iod=*/0,
                               /*replication_factor=*/3);
  EXPECT_FALSE(too_wide.value.is_ok());
  EXPECT_EQ(too_wide.value.status().code(), ErrorCode::kInvalidArgument);
  // The name stays free after a rejected placement.
  EXPECT_TRUE(small
                  .create(client_hca_, TimePoint::origin(), "/r1", 64 * kKiB,
                          2, /*base_iod=*/0, /*replication_factor=*/2)
                  .value.is_ok());
}

}  // namespace
}  // namespace pvfsib::pvfs
