// Live shard migration and resharding: online single-shard moves, K -> 2K
// splits, the fenced cutover, redirect-driven convergence of stale client
// maps on every metadata op type, bounded re-refresh, and every abort path
// (source crash mid-stream, target crash, a takeover racing the stream).
#include <gtest/gtest.h>

#include <string>

#include "pvfs/cluster.h"
#include "pvfs/meta_client.h"

namespace pvfsib::pvfs {
namespace {

// A name that hashes to `want` out of `shards` (deterministic scan).
std::string name_on_shard(u32 want, u32 shards) {
  for (int i = 0; i < 4096; ++i) {
    std::string name = "/m" + std::to_string(i);
    if (shard_of(name, shards) == want) return name;
  }
  ADD_FAILURE() << "no name found for shard " << want << "/" << shards;
  return "/m0";
}

TEST(MigrationTest, MigrateShardMovesOwnershipOnline) {
  Cluster cluster(ModelConfig::paper_defaults(),
                  Cluster::Topology{}.clients(2).iods(4).metadata_shards(2));
  Client& c = cluster.client(0);
  const std::string moved = name_on_shard(1, 2);
  const std::string stays = name_on_shard(0, 2);
  OpenFile f = c.create(moved).value();
  ASSERT_TRUE(c.create(stays).is_ok());
  const u64 n = 64 * kKiB;
  const u64 src = c.memory().alloc(n);
  for (u64 i = 0; i < n; i += 8) {
    c.memory().write_pod<u64>(src + i, i * 2654435761u);
  }
  ASSERT_TRUE(c.write(f, 0, src, n).ok());

  Manager* old = &cluster.active_manager(1);
  const u64 registry_before = cluster.registry().version();
  ASSERT_TRUE(cluster.migrate_shard(1, TimePoint::origin() + Duration::ms(1)));
  EXPECT_TRUE(cluster.migration_inflight());
  cluster.run();
  EXPECT_FALSE(cluster.migration_inflight());

  // Ownership moved to the freshly provisioned target; the retired source
  // is a pure redirector.
  const Stats& s = cluster.stats();
  EXPECT_EQ(s.get(stat::kPvfsShardMigrations), 1);
  EXPECT_EQ(s.get(stat::kPvfsMigrationAborts), 0);
  EXPECT_GE(s.get(stat::kPvfsMigrationRounds), 1);
  Manager& target = cluster.active_manager(1);
  EXPECT_NE(&target, old);
  EXPECT_EQ(target.hca().name(), "mgr1m");
  EXPECT_TRUE(old->migrated_out());
  EXPECT_FALSE(target.migrated_out());
  EXPECT_TRUE(target.stat(moved).is_ok());
  EXPECT_GT(cluster.registry().version(), registry_before);
  // The cutover's epoch bump (1 -> 2) swept the shard's fence cell on
  // every iod; the non-migrating shard's cell was never swept at all.
  EXPECT_EQ(cluster.manager_epoch(1).value, 2u);
  for (u32 i = 0; i < cluster.iod_count(); ++i) {
    EXPECT_EQ(cluster.iod(i).manager_epoch(1), 2u);
    EXPECT_EQ(cluster.iod(i).manager_epoch(0), 0u);
  }
  EXPECT_FALSE(cluster.manager(0).migrated_out());

  // A client whose map predates the migration converges through the
  // zombie source's kWrongShard redirect and reads its data back intact.
  Client& late = cluster.client(1);
  ASSERT_EQ(late.meta().map_version(), registry_before);
  OpenFile g = late.open(moved).value();
  EXPECT_EQ(g.meta.handle, f.meta.handle);
  EXPECT_GE(s.get(stat::kPvfsShardRedirects), 1);
  EXPECT_GE(s.get(stat::kPvfsWrongShardDuringMigration), 1);
  EXPECT_EQ(late.meta().map_version(), cluster.registry().version());
  const u64 dst = late.memory().alloc(n);
  ASSERT_TRUE(late.read(g, 0, dst, n).ok());
  for (u64 i = 0; i < n; i += 8) {
    ASSERT_EQ(late.memory().read_pod<u64>(dst + i), i * 2654435761u) << i;
  }

  // The target minted past the source's cursor: new files on the shard
  // get fresh handles in the same residue class.
  const std::string fresh = name_on_shard(1, 2) + "-post";
  if (shard_of(fresh, 2) == 1) {
    OpenFile h = c.create(fresh).value();
    EXPECT_EQ(shard_of_handle(h.meta.handle, 2), 1u);
    EXPECT_GT(h.meta.handle, f.meta.handle);
  }
}

TEST(MigrationTest, StreamsInRateLimitedRoundsWhileServing) {
  ModelConfig cfg = ModelConfig::paper_defaults();
  cfg.migration.round_bytes = 128;  // force a multi-round stream
  Cluster cluster(cfg,
                  Cluster::Topology{}.clients(1).iods(2).metadata_shards(2));
  Client& c = cluster.client(0);
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(c.create(name_on_shard(1, 2) + "-" + std::to_string(i))
                    .is_ok());
  }
  ASSERT_TRUE(cluster.migrate_shard(1, TimePoint::origin() + Duration::ms(1)));
  // The source serves mid-stream: ops issued while the stream drains hit
  // the still-active source without redirects, and the late delta makes
  // the cutover anyway.
  const std::string late_name = name_on_shard(1, 2) + "-late";
  bool late_ok = false;
  cluster.engine().schedule_at(
      TimePoint::origin() + Duration::ms(1) + Duration::us(1), [&] {
        late_ok = c.create(late_name).is_ok();
      });
  cluster.run();
  EXPECT_TRUE(late_ok);
  const Stats& s = cluster.stats();
  EXPECT_EQ(s.get(stat::kPvfsShardMigrations), 1);
  EXPECT_GE(s.get(stat::kPvfsMigrationRounds), 2);
  if (shard_of(late_name, 2) == 1) {
    EXPECT_TRUE(cluster.active_manager(1).stat(late_name).is_ok());
  }
}

TEST(MigrationTest, SplitDoublesThePlaneOnline) {
  Cluster cluster(ModelConfig::paper_defaults(),
                  Cluster::Topology{}.clients(2).iods(4).metadata_shards(2));
  Client& c = cluster.client(0);
  // One file per post-split shard, created pre-split with payload.
  std::vector<std::string> names;
  std::vector<OpenFile> files;
  const u64 n = 16 * kKiB;
  for (u32 s = 0; s < 4; ++s) {
    names.push_back(name_on_shard(s, 4));
    files.push_back(c.create(names.back()).value());
    const u64 a = c.memory().alloc(n);
    for (u64 i = 0; i < n; i += 8) {
      c.memory().write_pod<u64>(a + i, (s + 1) * (i + 1));
    }
    ASSERT_TRUE(c.write(files.back(), 0, a, n).ok());
  }

  ASSERT_TRUE(cluster.split_shards(TimePoint::origin() + Duration::ms(1)));
  EXPECT_FALSE(cluster.split_shards(TimePoint::origin()));  // one at a time
  cluster.run();

  const Stats& st = cluster.stats();
  EXPECT_EQ(st.get(stat::kPvfsShardSplits), 1);
  EXPECT_EQ(st.get(stat::kPvfsMigrationAborts), 0);
  EXPECT_EQ(cluster.metadata_shards(), 4u);
  EXPECT_EQ(cluster.registry().shard_count(), 4u);
  EXPECT_EQ(cluster.config().pvfs.metadata_shards, 4u);
  // Every name is now served exactly by its 4-way shard (the sibling may
  // hold a version-plane copy when the file's handle residue routes there,
  // but it never answers namespace ops for the name).
  for (u32 s = 0; s < 4; ++s) {
    EXPECT_TRUE(cluster.manager(s).stat(names[s]).is_ok()) << s;
    EXPECT_TRUE(cluster.manager(s).owns(names[s])) << s;
    EXPECT_FALSE(cluster.manager((s + 2) % 4).owns(names[s])) << s;
    EXPECT_EQ(cluster.manager(s).shard_count(), 4u);
  }
  // Stale clients converge by redirects alone and the data survives.
  Client& late = cluster.client(1);
  for (u32 s = 0; s < 4; ++s) {
    OpenFile g = late.open(names[s]).value();
    EXPECT_EQ(g.meta.handle, files[s].meta.handle);
    const u64 dst = late.memory().alloc(n);
    ASSERT_TRUE(late.read(g, 0, dst, n).ok());
    for (u64 i = 0; i < n; i += 8) {
      ASSERT_EQ(late.memory().read_pod<u64>(dst + i), (s + 1) * (i + 1));
    }
  }
  // Fresh creates mint handles in the post-split residue classes.
  const std::string fresh = name_on_shard(3, 4) + "-post";
  OpenFile h = c.create(fresh).value();
  EXPECT_EQ(shard_of_handle(h.meta.handle, 4),
            shard_of(fresh, 4));
}

TEST(MigrationTest, SplitConvergesEveryOpTypeViaRedirects) {
  // Satellite: a client stuck on the pre-split map must converge through
  // kWrongShard redirects alone on every op type — create, open, remove,
  // and the version plane's authority lookup.
  Cluster cluster(ModelConfig::paper_defaults(),
                  Cluster::Topology{}.clients(2).iods(2).metadata_shards(2));
  Client& fresh = cluster.client(0);
  Client& stale = cluster.client(1);
  // A name that moves in the split: routes to shard 1 pre-split and to
  // shard 3 post-split.
  std::string moved;
  for (int i = 0; i < 8192 && moved.empty(); ++i) {
    std::string cand = "/m" + std::to_string(i);
    if (shard_of(cand, 2) == 1 && shard_of(cand, 4) == 3) moved = cand;
  }
  ASSERT_FALSE(moved.empty());
  ASSERT_TRUE(fresh.create(moved).is_ok());
  OpenFile f = stale.open(moved).value();  // both maps warmed pre-split

  ASSERT_TRUE(cluster.split_shards(TimePoint::origin() + Duration::ms(1)));
  cluster.run();
  ASSERT_EQ(cluster.stats().get(stat::kPvfsShardSplits), 1);
  ASSERT_LT(stale.meta().map_version(), cluster.registry().version());

  // open: redirected once, then served by the sibling.
  const i64 redirects0 = cluster.stats().get(stat::kPvfsShardRedirects);
  OpenFile g = stale.open(moved).value();
  EXPECT_EQ(g.meta.handle, f.meta.handle);
  EXPECT_GT(cluster.stats().get(stat::kPvfsShardRedirects), redirects0);
  EXPECT_EQ(stale.meta().map_version(), cluster.registry().version());

  // authority: the version plane routes by the handle's residue class
  // (which a pre-split mint keeps — names re-hash, handles don't), and a
  // freshly collapsed (mount-time) map still resolves to the manager that
  // actually holds the stripe state.
  stale.meta().invalidate_map();
  const u32 vshard = shard_of_handle(f.meta.handle, 4);
  Manager& owner = stale.meta().authority(f.meta.handle);
  EXPECT_EQ(&owner, &cluster.active_manager(vshard));
  EXPECT_TRUE(owner.owns_handle(f.meta.handle));

  // create: a brand-new name whose post-split home didn't exist when the
  // map was minted lands on the right manager.
  stale.meta().invalidate_map();
  const std::string brand = name_on_shard(2, 4) + "-new";
  if (shard_of(brand, 4) == 2) {
    OpenFile h = stale.create(brand).value();
    EXPECT_EQ(shard_of_handle(h.meta.handle, 4), 2u);
    EXPECT_TRUE(cluster.manager(2).stat(brand).is_ok());
  }

  // remove: unlink through a stale map converges too, and the name is
  // gone everywhere.
  stale.meta().invalidate_map();
  ASSERT_TRUE(stale.remove(moved).is_ok());
  EXPECT_FALSE(fresh.open(moved).is_ok());
  EXPECT_FALSE(cluster.manager(3).stat(moved).is_ok());
}

TEST(MigrationTest, BoundedRefreshSurvivesStaleRefreshAndGivesUp) {
  // Satellite regression: a map refresh that itself lands an already-stale
  // map must not wedge the client — the redirect loop re-refreshes with
  // backoff, and gives up with kWrongShard after map_refresh_attempts.
  Cluster cluster(ModelConfig::paper_defaults(),
                  Cluster::Topology{}.clients(1).iods(2).metadata_shards(4));
  Client& c = cluster.client(0);
  const std::string elsewhere = name_on_shard(2, 4);
  ASSERT_TRUE(c.create(elsewhere).is_ok());

  // One stale refresh: redirect -> refresh (lands stale) -> redirect ->
  // refresh (real) -> served. Two redirects, two refreshes, op succeeds.
  c.meta().invalidate_map();
  c.meta().force_stale_refreshes(1);
  EXPECT_TRUE(c.open(elsewhere).is_ok());
  EXPECT_EQ(cluster.stats().get(stat::kPvfsShardRedirects), 2);
  EXPECT_EQ(cluster.stats().get(stat::kPvfsShardMapRefreshes), 2);
  EXPECT_EQ(c.meta().shard_count(), 4u);

  // Refreshes that never land a current map: the loop is bounded — the op
  // fails with the redirect instead of spinning forever.
  c.meta().invalidate_map();
  c.meta().force_stale_refreshes(100);
  auto r = c.open(elsewhere);
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kWrongShard);
  const u32 attempts = cluster.config().migration.map_refresh_attempts;
  EXPECT_EQ(cluster.stats().get(stat::kPvfsShardMapRefreshes),
            2 + static_cast<i64>(attempts));

  // Back to a healthy registry: the same client recovers on the next op.
  c.meta().force_stale_refreshes(0);
  EXPECT_TRUE(c.open(elsewhere).is_ok());
}

TEST(MigrationTest, SourceCrashMidStreamAborts) {
  ModelConfig cfg = ModelConfig::paper_defaults();
  cfg.migration.round_bytes = 128;  // multi-round: the crash lands mid-stream
  // The source's crash window opens while the stream is still draining.
  cfg.fault.schedule.push_back(FaultEvent{FaultKind::kManagerCrash,
                                          TimePoint::origin() +
                                              Duration::ms(1.0) +
                                              Duration::us(2.0),
                                          1, Duration::ms(2.0)});
  Cluster cluster(cfg,
                  Cluster::Topology{}.clients(1).iods(2).metadata_shards(2));
  Client& c = cluster.client(0);
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(c.create(name_on_shard(1, 2) + "-" + std::to_string(i))
                    .is_ok());
  }
  Manager* source = &cluster.active_manager(1);
  ASSERT_TRUE(cluster.migrate_shard(1, TimePoint::origin() + Duration::ms(1)));
  cluster.run();

  const Stats& s = cluster.stats();
  EXPECT_EQ(s.get(stat::kPvfsMigrationAborts), 1);
  EXPECT_EQ(s.get(stat::kPvfsShardMigrations), 0);
  EXPECT_FALSE(cluster.migration_inflight());
  // Fallback: the source never stopped owning the shard and serves again
  // once its window closes.
  EXPECT_EQ(&cluster.active_manager(1), source);
  EXPECT_FALSE(source->migrated_out());
  EXPECT_TRUE(c.open(name_on_shard(1, 2) + "-0").is_ok());
  // A retry after the crash window closes completes.
  ASSERT_TRUE(cluster.migrate_shard(1, TimePoint::origin() + Duration::ms(10)));
  cluster.run();
  EXPECT_EQ(s.get(stat::kPvfsShardMigrations), 1);
}

TEST(MigrationTest, TargetCrashFallsBackToSource) {
  ModelConfig cfg = ModelConfig::paper_defaults();
  cfg.migration.round_bytes = 128;
  cfg.fault.schedule.push_back(FaultEvent{FaultKind::kMigrationTargetCrash,
                                          TimePoint::origin() +
                                              Duration::ms(1.0) +
                                              Duration::us(2.0),
                                          1, Duration::zero()});
  Cluster cluster(cfg,
                  Cluster::Topology{}.clients(1).iods(2).metadata_shards(2));
  Client& c = cluster.client(0);
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(c.create(name_on_shard(1, 2) + "-" + std::to_string(i))
                    .is_ok());
  }
  Manager* source = &cluster.active_manager(1);
  ASSERT_TRUE(cluster.migrate_shard(1, TimePoint::origin() + Duration::ms(1)));
  cluster.run();

  const Stats& s = cluster.stats();
  EXPECT_EQ(s.get(stat::kFaultMigrationTargetCrash), 1);
  EXPECT_EQ(s.get(stat::kPvfsMigrationAborts), 1);
  EXPECT_EQ(s.get(stat::kPvfsShardMigrations), 0);
  EXPECT_EQ(&cluster.active_manager(1), source);
  // The one-shot was consumed: the retried migration sails through.
  ASSERT_TRUE(cluster.migrate_shard(1, cluster.engine().now()));
  cluster.run();
  EXPECT_EQ(s.get(stat::kPvfsShardMigrations), 1);
  EXPECT_EQ(s.get(stat::kPvfsMigrationAborts), 1);
}

TEST(MigrationTest, TakeoverRacingStreamAborts) {
  ModelConfig cfg = ModelConfig::paper_defaults();
  cfg.migration.round_bytes = 128;
  Cluster cluster(cfg, Cluster::Topology{}
                           .clients(1)
                           .iods(2)
                           .metadata_shards(2)
                           .standbys());
  Client& c = cluster.client(0);
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(c.create(name_on_shard(0, 2) + "-" + std::to_string(i))
                    .is_ok());
  }
  ASSERT_TRUE(cluster.migrate_shard(0, TimePoint::origin() + Duration::ms(1)));
  // A standby takeover bumps the epoch mid-stream: the source's snapshot
  // is no longer the shard's authority, so the migration must abort.
  const TimePoint mid =
      TimePoint::origin() + Duration::ms(1) + Duration::us(2.0);
  cluster.engine().schedule_at(mid,
                               [&] { cluster.manager_takeover(0, mid); });
  cluster.run();

  const Stats& s = cluster.stats();
  EXPECT_EQ(s.get(stat::kPvfsManagerTakeovers), 1);
  EXPECT_EQ(s.get(stat::kPvfsMigrationAborts), 1);
  EXPECT_EQ(s.get(stat::kPvfsShardMigrations), 0);
  EXPECT_EQ(&cluster.active_manager(0), cluster.standby(0));
  // The promoted standby carries the shard; a fresh migration streams
  // from it and completes.
  ASSERT_TRUE(cluster.migrate_shard(0, cluster.engine().now()));
  cluster.run();
  EXPECT_EQ(s.get(stat::kPvfsShardMigrations), 1);
  EXPECT_EQ(cluster.active_manager(0).hca().name(), "mgr0m");
  EXPECT_TRUE(c.open(name_on_shard(0, 2) + "-0").is_ok());
}

TEST(MigrationTest, RejectsOverlappingMigrationsAndChainsWithSplit) {
  Cluster cluster(ModelConfig::paper_defaults(),
                  Cluster::Topology{}.clients(1).iods(2).metadata_shards(2));
  Client& c = cluster.client(0);
  ASSERT_TRUE(c.create(name_on_shard(1, 2)).is_ok());
  ASSERT_TRUE(cluster.migrate_shard(1, TimePoint::origin() + Duration::ms(1)));
  // While a stream holds the shard, neither a second move nor a split may
  // start; invalid shards are rejected outright.
  EXPECT_FALSE(cluster.migrate_shard(1, TimePoint::origin()));
  EXPECT_FALSE(cluster.split_shards(TimePoint::origin()));
  EXPECT_FALSE(cluster.migrate_shard(7, TimePoint::origin()));
  EXPECT_TRUE(cluster.migration_inflight());
  cluster.run();
  EXPECT_FALSE(cluster.migration_inflight());
  // Migrate, then split: the moved shard's target is the split source.
  ASSERT_TRUE(cluster.split_shards(cluster.engine().now()));
  cluster.run();
  EXPECT_EQ(cluster.metadata_shards(), 4u);
  EXPECT_EQ(cluster.stats().get(stat::kPvfsShardMigrations), 1);
  EXPECT_EQ(cluster.stats().get(stat::kPvfsShardSplits), 1);
  EXPECT_TRUE(c.open(name_on_shard(1, 2)).is_ok());
}

}  // namespace
}  // namespace pvfsib::pvfs
