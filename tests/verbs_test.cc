#include "ib/verbs.h"

#include <gtest/gtest.h>

namespace pvfsib::ib {
namespace {

class VerbsTest : public ::testing::Test {
 protected:
  vmem::AddressSpace as_;
  Stats stats_;
  RegParams params_;
  Hca hca_{"node0", as_, params_, &stats_};
};

TEST_F(VerbsTest, RegisterMappedRangeSucceeds) {
  const u64 a = as_.alloc(8 * kPageSize);
  RegAttempt r = hca_.register_memory(a + 100, 2 * kPageSize);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r.key, 0u);
  // Cost follows T = a*p + b with page rounding: [a, a+100+2p) -> 3 pages.
  EXPECT_NEAR(r.cost.as_us(), 7.42 + 3 * 0.77, 0.01);
  EXPECT_EQ(stats_.get(stat::kMrRegister), 1);
  EXPECT_EQ(hca_.regions_live(), 1u);
  EXPECT_EQ(hca_.bytes_registered(), 3 * kPageSize);
}

TEST_F(VerbsTest, RegisterUnmappedRangeFails) {
  const u64 a = as_.alloc(kPageSize);
  as_.skip(kPageSize);
  const u64 b = as_.alloc(kPageSize);
  RegAttempt r = hca_.register_memory(a, b + kPageSize - a);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status.code(), ErrorCode::kPermissionDenied);
  // The failed attempt still costs: base plus the page pinned before the
  // fault.
  EXPECT_GE(r.cost.as_us(), 7.42);
  EXPECT_EQ(hca_.regions_live(), 0u);
  EXPECT_EQ(stats_.get(stat::kMrRegister), 0);
}

TEST_F(VerbsTest, DeregisterReleases) {
  const u64 a = as_.alloc(4 * kPageSize);
  RegAttempt r = hca_.register_memory(a, 4 * kPageSize);
  ASSERT_TRUE(r.ok());
  const Duration d = hca_.deregister(r.key);
  EXPECT_NEAR(d.as_us(), 1.1 + 4 * 0.23, 0.01);
  EXPECT_EQ(hca_.regions_live(), 0u);
  EXPECT_EQ(hca_.bytes_registered(), 0u);
  EXPECT_EQ(stats_.get(stat::kMrDeregister), 1);
  // Unknown key is a no-op.
  EXPECT_EQ(hca_.deregister(12345), Duration::zero());
}

TEST_F(VerbsTest, ValidateChecksContainment) {
  const u64 a = as_.alloc(2 * kPageSize);
  RegAttempt r = hca_.register_memory(a, kPageSize);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(hca_.validate(r.key, a, kPageSize));
  EXPECT_TRUE(hca_.validate(r.key, a + 100, 200));
  EXPECT_FALSE(hca_.validate(r.key, a, kPageSize + 1));
  EXPECT_FALSE(hca_.validate(999, a, 10));
}

TEST_F(VerbsTest, ValidateSges) {
  const u64 a = as_.alloc(4 * kPageSize);
  RegAttempt r = hca_.register_memory(a, 4 * kPageSize);
  ASSERT_TRUE(r.ok());
  std::vector<Sge> good{{a, 100, r.key}, {a + kPageSize, 50, r.key}};
  EXPECT_TRUE(hca_.validate_sges(good).is_ok());
  std::vector<Sge> zero{{a, 0, r.key}};
  EXPECT_FALSE(hca_.validate_sges(zero).is_ok());
  std::vector<Sge> outside{{a + 4 * kPageSize - 10, 20, r.key}};
  EXPECT_FALSE(hca_.validate_sges(outside).is_ok());
}

TEST_F(VerbsTest, ZeroLengthRegistrationRejected) {
  EXPECT_FALSE(hca_.register_memory(as_.alloc(kPageSize), 0).ok());
}

TEST_F(VerbsTest, PartiallyMappedPrefixChargesPinnedPages) {
  // Map 3 pages, hole, map more; register across — fails after pinning 3.
  const u64 a = as_.alloc(3 * kPageSize);
  as_.skip(kPageSize);
  as_.alloc(2 * kPageSize);
  RegAttempt r = hca_.register_memory(a, 6 * kPageSize);
  ASSERT_FALSE(r.ok());
  EXPECT_NEAR(r.cost.as_us(), 7.42 + 3 * 0.77, 0.01);
}

}  // namespace
}  // namespace pvfsib::ib
