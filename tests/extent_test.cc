#include "common/extent.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace pvfsib {
namespace {

TEST(Extent, BasicPredicates) {
  const Extent e{100, 50};
  EXPECT_EQ(e.end(), 150u);
  EXPECT_FALSE(e.empty());
  EXPECT_TRUE(e.contains(100));
  EXPECT_TRUE(e.contains(149));
  EXPECT_FALSE(e.contains(150));
  EXPECT_TRUE(e.contains(Extent{100, 50}));
  EXPECT_TRUE(e.contains(Extent{120, 10}));
  EXPECT_FALSE(e.contains(Extent{120, 40}));
  EXPECT_TRUE(e.overlaps(Extent{149, 10}));
  EXPECT_FALSE(e.overlaps(Extent{150, 10}));
  EXPECT_TRUE(e.adjacent_before(Extent{150, 10}));
}

TEST(Extent, TotalLengthAndSpan) {
  const ExtentList l{{10, 5}, {30, 10}, {0, 2}};
  EXPECT_EQ(total_length(l), 17u);
  EXPECT_EQ(bounding_span(l), (Extent{0, 40}));
  EXPECT_EQ(bounding_span({}), (Extent{0, 0}));
}

TEST(Extent, SortAndDisjoint) {
  ExtentList l{{30, 10}, {10, 5}, {0, 2}};
  EXPECT_FALSE(is_sorted_disjoint(l));
  sort_by_offset(l);
  EXPECT_TRUE(is_sorted_disjoint(l));
  EXPECT_EQ(l.front().offset, 0u);
  // Overlap defeats disjointness.
  EXPECT_FALSE(is_sorted_disjoint({{0, 10}, {5, 10}}));
  // Touching extents are still disjoint.
  EXPECT_TRUE(is_sorted_disjoint({{0, 10}, {10, 10}}));
}

TEST(Extent, CoalesceMergesTouchingAndOverlapping) {
  const ExtentList l{{0, 10}, {10, 5}, {20, 5}, {22, 10}};
  const ExtentList c = coalesce(l);
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c[0], (Extent{0, 15}));
  EXPECT_EQ(c[1], (Extent{20, 12}));
}

TEST(Extent, CoalesceWithGapAbsorption) {
  const ExtentList l{{0, 10}, {15, 5}, {100, 5}};
  const ExtentList c = coalesce(l, /*merge_gap=*/8);
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c[0], (Extent{0, 20}));
  EXPECT_EQ(c[1], (Extent{100, 5}));
}

TEST(Extent, CoalesceDropsEmpty) {
  const ExtentList c = coalesce({{0, 0}, {5, 5}, {10, 0}});
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c[0], (Extent{5, 5}));
}

TEST(Extent, Intersect) {
  const ExtentList l{{0, 10}, {20, 10}, {40, 10}};
  const ExtentList i = intersect(Extent{5, 30}, l);
  ASSERT_EQ(i.size(), 2u);
  EXPECT_EQ(i[0], (Extent{5, 5}));
  EXPECT_EQ(i[1], (Extent{20, 10}));
  EXPECT_TRUE(intersect(Extent{10, 10}, l).empty());
}

TEST(Extent, HolesWithin) {
  const ExtentList l{{10, 10}, {30, 10}};
  const ExtentList h = holes_within(Extent{0, 50}, l);
  ASSERT_EQ(h.size(), 3u);
  EXPECT_EQ(h[0], (Extent{0, 10}));
  EXPECT_EQ(h[1], (Extent{20, 10}));
  EXPECT_EQ(h[2], (Extent{40, 10}));
}

TEST(Extent, HolesWithinFullyCovered) {
  EXPECT_TRUE(holes_within(Extent{10, 10}, {{0, 100}}).empty());
}

TEST(Extent, HolesWithinNoOverlapAtAll) {
  const ExtentList h = holes_within(Extent{0, 10}, {{50, 10}});
  ASSERT_EQ(h.size(), 1u);
  EXPECT_EQ(h[0], (Extent{0, 10}));
}

TEST(Extent, SplitAtBoundaries) {
  const ExtentList s = split_at_boundaries({{10, 30}}, 16);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0], (Extent{10, 6}));
  EXPECT_EQ(s[1], (Extent{16, 16}));
  EXPECT_EQ(s[2], (Extent{32, 8}));
  EXPECT_EQ(total_length(s), 30u);
}

TEST(Extent, SplitAlignedPassesThrough) {
  const ExtentList s = split_at_boundaries({{16, 16}, {32, 16}}, 16);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(total_length(s), 32u);
}

// Property: holes + allocated partitions the window exactly.
TEST(ExtentProperty, HolesComplementIntersection) {
  Rng rng(42);
  for (int iter = 0; iter < 200; ++iter) {
    ExtentList l;
    u64 pos = rng.below(64);
    for (int i = 0; i < 20; ++i) {
      const u64 len = rng.range(1, 64);
      l.push_back({pos, len});
      pos += len + rng.below(64);
    }
    const Extent window{rng.below(256), rng.range(1, 1500)};
    const ExtentList inside = intersect(window, l);
    const ExtentList holes = holes_within(window, inside);
    EXPECT_EQ(total_length(inside) + total_length(holes), window.length);
    // Merged union must be exactly the window.
    ExtentList all = inside;
    all.insert(all.end(), holes.begin(), holes.end());
    sort_by_offset(all);
    const ExtentList merged = coalesce(all);
    ASSERT_EQ(merged.size(), 1u);
    EXPECT_EQ(merged[0], window);
  }
}

// Property: split_at_boundaries preserves coverage and respects boundaries.
TEST(ExtentProperty, SplitPreservesBytes) {
  Rng rng(7);
  for (int iter = 0; iter < 200; ++iter) {
    ExtentList l;
    u64 pos = 0;
    for (int i = 0; i < 10; ++i) {
      pos += rng.below(100);
      const u64 len = rng.range(1, 300);
      l.push_back({pos, len});
      pos += len;
    }
    const u64 boundary = rng.range(1, 128);
    const ExtentList s = split_at_boundaries(l, boundary);
    EXPECT_EQ(total_length(s), total_length(l));
    for (const Extent& e : s) {
      // No piece crosses a boundary.
      EXPECT_EQ(e.offset / boundary, (e.end() - 1) / boundary);
    }
  }
}

}  // namespace
}  // namespace pvfsib
