#include "common/sim_time.h"

#include <gtest/gtest.h>

#include "common/config.h"

namespace pvfsib {
namespace {

TEST(Duration, ConstructionAndConversion) {
  EXPECT_EQ(Duration::us(1.0).as_ns(), 1000);
  EXPECT_EQ(Duration::ms(1.0).as_ns(), 1'000'000);
  EXPECT_EQ(Duration::sec(1.0).as_ns(), 1'000'000'000);
  EXPECT_DOUBLE_EQ(Duration::ns(2500).as_us(), 2.5);
  EXPECT_DOUBLE_EQ(Duration::sec(0.25).as_sec(), 0.25);
}

TEST(Duration, Arithmetic) {
  const Duration a = Duration::us(10);
  const Duration b = Duration::us(4);
  EXPECT_EQ((a + b).as_us(), 14.0);
  EXPECT_EQ((a - b).as_us(), 6.0);
  EXPECT_EQ((a * 3).as_us(), 30.0);
  EXPECT_EQ((3 * a).as_us(), 30.0);
  EXPECT_EQ((a * 0.5).as_us(), 5.0);
  EXPECT_EQ((a / 2).as_us(), 5.0);
  EXPECT_LT(b, a);
  EXPECT_EQ(max(a, b), a);
  EXPECT_EQ(min(a, b), b);
}

TEST(TimePoint, Arithmetic) {
  TimePoint t = TimePoint::origin();
  t += Duration::us(5);
  EXPECT_EQ(t.as_us(), 5.0);
  const TimePoint u = t + Duration::us(3);
  EXPECT_EQ((u - t).as_us(), 3.0);
  EXPECT_EQ(max(t, u), u);
}

TEST(TransferTime, MatchesBandwidthDefinition) {
  // 1 MiB at 1 MiB/s takes one second.
  EXPECT_EQ(transfer_time(kMiB, 1.0).as_sec(), 1.0);
  // 827 MiB/s — the paper's RDMA write bandwidth — moves 64 KiB in ~77 us.
  const Duration d = transfer_time(64 * kKiB, 827.0);
  EXPECT_NEAR(d.as_us(), 75.6, 0.5);
  // Zero bandwidth means free (used for "infinitely fast" stubs).
  EXPECT_EQ(transfer_time(kMiB, 0.0), Duration::zero());
}

TEST(TransferTime, BandwidthRoundTrip) {
  const u64 bytes = 3 * kMiB + 123;
  const Duration d = transfer_time(bytes, 500.0);
  EXPECT_NEAR(bandwidth_mib(bytes, d), 500.0, 0.5);
}

TEST(Duration, ToString) {
  EXPECT_EQ(Duration::ns(100).to_string(), "100 ns");
  EXPECT_EQ(Duration::us(100).to_string(), "100.00 us");
  EXPECT_EQ(Duration::ms(100).to_string(), "100.00 ms");
  EXPECT_EQ(Duration::sec(100).to_string(), "100.000 s");
}

TEST(RegParams, PaperCostModel) {
  // Section 4.2: registering 100 buffers of 4 kB each plus deregistering
  // them costs ~1020 us on the paper's testbed. The paper's own model
  // constants (a=0.77/0.23 us/page, b=7.42/1.1 us/op) compose to 952 us;
  // the 7% gap is measurement effects outside the model, so we check the
  // model composition exactly and the paper figure loosely.
  const RegParams rp;
  Duration total = Duration::zero();
  for (int i = 0; i < 100; ++i) {
    total += rp.reg_cost(4 * kKiB) + rp.dereg_cost(4 * kKiB);
  }
  EXPECT_NEAR(total.as_us(), 100 * (7.42 + 0.77 + 1.1 + 0.23), 1.0);
  EXPECT_NEAR(total.as_us(), 1020.0, 80.0);
}

TEST(DiskParams, BandwidthCurveSaturates) {
  const DiskParams dp;
  // Large sequential accesses approach the Table 3 uncached asymptotes.
  EXPECT_NEAR(dp.media_bw(64 * kMiB, /*write=*/false), 21.0, 0.1);
  EXPECT_NEAR(dp.media_bw(64 * kMiB, /*write=*/true), 26.0, 0.1);
  // Small accesses are much slower than peak.
  EXPECT_LT(dp.media_bw(4 * kKiB, false), 0.3 * 21.0);
  // Monotone in size.
  EXPECT_LT(dp.media_bw(8 * kKiB, false), dp.media_bw(64 * kKiB, false));
}

TEST(DiskParams, SeekCostMonotone) {
  const DiskParams dp;
  EXPECT_EQ(dp.seek_cost(0), Duration::zero());
  // Short hops are pass-overs at media speed, far cheaper than a seek.
  EXPECT_LT(dp.seek_cost(4 * kKiB), dp.seek_short);
  EXPECT_NEAR(dp.seek_cost(64 * kKiB).as_us(),
              transfer_time(64 * kKiB, dp.media_read_bw).as_us(), 1.0);
  // Beyond the pass-over window a true seek ramps towards the average.
  EXPECT_GE(dp.seek_cost(2 * kMiB), dp.seek_short);
  EXPECT_LE(dp.seek_cost(1 * kGiB), dp.seek_long);
  EXPECT_LE(dp.seek_cost(100 * kGiB), dp.seek_long);
  EXPECT_LT(dp.seek_cost(2 * kMiB), dp.seek_cost(100 * kMiB));
}

TEST(OsParams, HoleQueryMatchesPaper) {
  // "about 70 us when querying about 1000 holes, compared to 1100 us when
  // reading from /proc".
  const OsParams os;
  EXPECT_NEAR(os.holequery_cost(1000).as_us(), 70.0, 5.0);
  EXPECT_NEAR(os.procfs_query.as_us(), 1100.0, 1.0);
}

}  // namespace
}  // namespace pvfsib
