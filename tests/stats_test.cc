// LatencyHistogram quantile math and IntervalSeries window deltas.
#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"

namespace pvfsib {
namespace {

TEST(LatencyHistogram, EmptyIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5).as_ns(), 0);
  EXPECT_EQ(h.mean().as_ns(), 0);
  EXPECT_EQ(h.min().as_ns(), 0);
  EXPECT_EQ(h.max().as_ns(), 0);
}

TEST(LatencyHistogram, SmallValuesAreExact) {
  // Values below 16 ns land in exact unit buckets.
  LatencyHistogram h;
  for (i64 v : {1, 2, 3, 5, 8, 13}) h.record(Duration::ns(v));
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.min().as_ns(), 1);
  EXPECT_EQ(h.max().as_ns(), 13);
  EXPECT_EQ(h.quantile(0.0).as_ns(), 1);
  EXPECT_EQ(h.quantile(1.0).as_ns(), 13);
  EXPECT_EQ(h.quantile(0.5).as_ns(), 3);
}

TEST(LatencyHistogram, SingleValue) {
  LatencyHistogram h;
  h.record(Duration::us(123.0));
  for (double p : {0.0, 0.5, 0.99, 0.999, 1.0}) {
    EXPECT_EQ(h.quantile(p).as_ns(), 123000) << "p=" << p;
  }
  EXPECT_EQ(h.mean().as_ns(), 123000);
}

TEST(LatencyHistogram, QuantilesAreMonotone) {
  LatencyHistogram h;
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    h.record(Duration::ns(static_cast<i64>(rng.below(1'000'000) + 1)));
  }
  Duration prev = Duration::zero();
  for (double p : {0.01, 0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    const Duration q = h.quantile(p);
    EXPECT_GE(q, prev) << "p=" << p;
    prev = q;
  }
  EXPECT_GE(h.quantile(1.0), h.mean());
}

TEST(LatencyHistogram, BoundedRelativeError) {
  // The bucket midpoint is at most half a bucket width (6.25%/2 of the
  // value) away from the recorded sample; min/max clamping can only help.
  for (i64 v : {17LL, 100LL, 999LL, 4096LL, 123456LL, 7654321LL,
                987654321LL}) {
    LatencyHistogram h;
    h.record(Duration::ns(v));
    const i64 got = h.quantile(0.5).as_ns();
    const double rel =
        std::abs(static_cast<double>(got - v)) / static_cast<double>(v);
    EXPECT_LE(rel, 0.0625) << "v=" << v << " got=" << got;
  }
}

TEST(LatencyHistogram, UniformQuantileSanity) {
  // 1..N uniform: p-quantile should sit near p*N within bucket resolution.
  LatencyHistogram h;
  const i64 n = 100000;
  for (i64 v = 1; v <= n; ++v) h.record(Duration::ns(v));
  for (double p : {0.5, 0.9, 0.99}) {
    const double got = static_cast<double>(h.quantile(p).as_ns());
    const double want = p * static_cast<double>(n);
    EXPECT_NEAR(got / want, 1.0, 0.07) << "p=" << p;
  }
}

TEST(LatencyHistogram, MergeMatchesCombinedRecording) {
  LatencyHistogram a, b, all;
  Rng rng(11);
  for (int i = 0; i < 5000; ++i) {
    const i64 v = static_cast<i64>(rng.below(1'000'000) + 1);
    (i % 2 == 0 ? a : b).record(Duration::ns(v));
    all.record(Duration::ns(v));
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_EQ(a.min().as_ns(), all.min().as_ns());
  EXPECT_EQ(a.max().as_ns(), all.max().as_ns());
  EXPECT_EQ(a.mean().as_ns(), all.mean().as_ns());
  for (double p : {0.5, 0.99, 0.999}) {
    EXPECT_EQ(a.quantile(p).as_ns(), all.quantile(p).as_ns()) << "p=" << p;
  }
}

TEST(IntervalSeries, WindowsDeltaTheSource) {
  Stats s;
  IntervalSeries series(&s, TimePoint::origin());
  s.add("x", 5);
  series.close_window(TimePoint::from_ns(100));
  s.add("x", 2);
  s.add("y", 7);
  series.close_window(TimePoint::from_ns(250));
  series.close_window(TimePoint::from_ns(300));  // empty window

  ASSERT_EQ(series.windows().size(), 3u);
  EXPECT_EQ(series.windows()[0].delta.get("x"), 5);
  EXPECT_EQ(series.windows()[0].delta.get("y"), 0);
  EXPECT_EQ(series.windows()[1].delta.get("x"), 2);
  EXPECT_EQ(series.windows()[1].delta.get("y"), 7);
  EXPECT_EQ(series.windows()[2].delta.get("x"), 0);
  EXPECT_EQ(series.windows()[0].start.as_ns(), 0);
  EXPECT_EQ(series.windows()[0].end.as_ns(), 100);
  EXPECT_EQ(series.windows()[1].start.as_ns(), 100);
  EXPECT_EQ(series.windows()[1].end.as_ns(), 250);
}

TEST(IntervalSeries, RatePerSec) {
  Stats s;
  IntervalSeries series(&s, TimePoint::origin());
  s.add("ops", 500);
  series.close_window(TimePoint::origin() + Duration::ms(100.0));
  // 500 ops in 100 ms = 5000/s.
  EXPECT_NEAR(series.rate_per_sec(0, "ops"), 5000.0, 1e-9);
  EXPECT_EQ(series.rate_per_sec(0, "missing"), 0.0);
}

}  // namespace
}  // namespace pvfsib
