#include "ib/mr_cache.h"

#include <gtest/gtest.h>

namespace pvfsib::ib {
namespace {

class MrCacheTest : public ::testing::Test {
 protected:
  MrCacheTest() : hca_("n0", as_, params(), &stats_), cache_(hca_) {}

  static RegParams params() {
    RegParams p;
    p.cache_max_entries = 4;
    p.cache_max_bytes = 1 * kMiB;
    return p;
  }

  vmem::AddressSpace as_;
  Stats stats_;
  Hca hca_;
  MrCache cache_;
};

TEST_F(MrCacheTest, MissRegistersThenHits) {
  const u64 a = as_.alloc(8 * kPageSize);
  MrCache::Lookup first = cache_.acquire(a, 4 * kPageSize);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first.hit);
  EXPECT_GT(first.cost, Duration::zero());

  MrCache::Lookup second = cache_.acquire(a, 4 * kPageSize);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.hit);
  EXPECT_EQ(second.cost, Duration::zero());
  EXPECT_EQ(second.key, first.key);
  EXPECT_EQ(stats_.get(stat::kMrCacheHit), 1);
  EXPECT_EQ(stats_.get(stat::kMrCacheMiss), 1);
}

TEST_F(MrCacheTest, SubRangeHits) {
  const u64 a = as_.alloc(8 * kPageSize);
  MrCache::Lookup big = cache_.acquire(a, 8 * kPageSize);
  ASSERT_TRUE(big.ok());
  // Any range inside the cached MR is a hit on the same key.
  MrCache::Lookup sub = cache_.acquire(a + kPageSize + 17, 100);
  ASSERT_TRUE(sub.ok());
  EXPECT_TRUE(sub.hit);
  EXPECT_EQ(sub.key, big.key);
}

TEST_F(MrCacheTest, DisjointRangesGetSeparateEntries) {
  const u64 a = as_.alloc(2 * kPageSize);
  as_.skip(64 * kPageSize);
  const u64 b = as_.alloc(2 * kPageSize);
  MrCache::Lookup la = cache_.acquire(a, kPageSize);
  MrCache::Lookup lb = cache_.acquire(b, kPageSize);
  ASSERT_TRUE(la.ok());
  ASSERT_TRUE(lb.ok());
  EXPECT_NE(la.key, lb.key);
  EXPECT_EQ(cache_.entries(), 2u);
}

TEST_F(MrCacheTest, FailurePropagatesWithCost) {
  const u64 a = as_.alloc(kPageSize);
  as_.skip(kPageSize);
  as_.alloc(kPageSize);
  MrCache::Lookup lk = cache_.acquire(a, 3 * kPageSize);
  EXPECT_FALSE(lk.ok());
  EXPECT_EQ(lk.status.code(), ErrorCode::kPermissionDenied);
  EXPECT_GT(lk.cost, Duration::zero());
  EXPECT_EQ(cache_.entries(), 0u);
}

TEST_F(MrCacheTest, LruEvictionOnEntryCount) {
  std::vector<u64> addrs;
  for (int i = 0; i < 6; ++i) {
    addrs.push_back(as_.alloc(kPageSize));
    as_.skip(16 * kPageSize);  // keep ranges non-mergeable
  }
  for (int i = 0; i < 6; ++i) {
    MrCache::Lookup lk = cache_.acquire(addrs[i], kPageSize);
    ASSERT_TRUE(lk.ok());
    cache_.release(lk.key);
  }
  // Capacity 4: the two oldest were evicted and deregistered.
  EXPECT_EQ(cache_.entries(), 4u);
  EXPECT_EQ(stats_.get(stat::kMrCacheEvict), 2);
  EXPECT_EQ(stats_.get(stat::kMrDeregister), 2);
  // Oldest entry misses again (registration thrashing).
  MrCache::Lookup again = cache_.acquire(addrs[0], kPageSize);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again.hit);
}

TEST_F(MrCacheTest, PinnedEntriesAreNotEvicted) {
  std::vector<MrCache::Lookup> held;
  for (int i = 0; i < 6; ++i) {
    const u64 a = as_.alloc(kPageSize);
    as_.skip(16 * kPageSize);
    MrCache::Lookup lk = cache_.acquire(a, kPageSize);
    ASSERT_TRUE(lk.ok());
    held.push_back(lk);  // never released
  }
  // Soft limit: all six stay because every entry is referenced.
  EXPECT_EQ(cache_.entries(), 6u);
  EXPECT_EQ(stats_.get(stat::kMrCacheEvict), 0);
}

TEST_F(MrCacheTest, FlushDeregistersZeroRefEntries) {
  const u64 a = as_.alloc(4 * kPageSize);
  MrCache::Lookup lk = cache_.acquire(a, 2 * kPageSize);
  ASSERT_TRUE(lk.ok());
  // Still referenced: flush keeps it.
  EXPECT_EQ(cache_.flush(), Duration::zero());
  EXPECT_EQ(cache_.entries(), 1u);
  cache_.release(lk.key);
  const Duration cost = cache_.flush();
  EXPECT_GT(cost, Duration::zero());
  EXPECT_EQ(cache_.entries(), 0u);
  EXPECT_EQ(hca_.regions_live(), 0u);
}

TEST_F(MrCacheTest, AdoptExternalRegistration) {
  const u64 a = as_.alloc(4 * kPageSize);
  RegAttempt reg = hca_.register_memory(a, 4 * kPageSize);
  ASSERT_TRUE(reg.ok());
  cache_.adopt(reg.key);
  MrCache::Lookup lk = cache_.acquire(a + 8, 100);
  ASSERT_TRUE(lk.ok());
  EXPECT_TRUE(lk.hit);
  EXPECT_EQ(lk.key, reg.key);
}

TEST_F(MrCacheTest, ByteCapacityEviction) {
  // 1 MiB byte capacity = 256 pages; a 200-page entry plus a 100-page entry
  // exceeds it and evicts the first.
  const u64 a = as_.alloc(200 * kPageSize);
  as_.skip(8 * kPageSize);
  const u64 b = as_.alloc(100 * kPageSize);
  MrCache::Lookup la = cache_.acquire(a, 200 * kPageSize);
  ASSERT_TRUE(la.ok());
  cache_.release(la.key);
  MrCache::Lookup lb = cache_.acquire(b, 100 * kPageSize);
  ASSERT_TRUE(lb.ok());
  EXPECT_EQ(cache_.entries(), 1u);
  EXPECT_LE(cache_.pinned_bytes(), 1 * kMiB);
}

}  // namespace
}  // namespace pvfsib::ib
