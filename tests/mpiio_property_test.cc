// Randomized MPI-IO property: arbitrary derived datatypes on both the
// memory and file sides, pushed through every access method, must always
// produce the same file contents and read back byte-exactly. The reference
// is a shadow byte-array model of the file.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "mpiio/mpio_file.h"

namespace pvfsib::mpiio {
namespace {

Datatype random_datatype(Rng& rng, u64 target_bytes) {
  switch (rng.below(4)) {
    case 0:
      return Datatype::contiguous(target_bytes);
    case 1: {
      // vector of byte blocks
      const u64 block = rng.range(64, 2048);
      const u64 count = std::max<u64>(1, target_bytes / block);
      const u64 stride = block + rng.below(2048);
      return Datatype::vector(count, 1, std::max<u64>(1, stride / block) + 1,
                              Datatype::contiguous(block));
    }
    case 2: {
      // indexed with random gaps
      ExtentList ext;
      u64 pos = rng.below(512);
      u64 left = target_bytes;
      while (left > 0) {
        const u64 len = std::min(left, rng.range(32, 4096));
        ext.push_back({pos, len});
        pos += len + rng.below(4096);
        left -= len;
      }
      return Datatype::indexed(std::move(ext));
    }
    default: {
      // 2-D subarray
      const u64 cols = 1ULL << rng.range(4, 7);   // 16..128
      const u64 rows = std::max<u64>(
          2, target_bytes / (cols / 2 * 4) / 2);
      return Datatype::subarray({rows * 2, cols}, {rows, cols / 2},
                                {rng.below(rows), rng.below(cols / 2)}, 4);
    }
  }
}

class MpiioProperty : public ::testing::TestWithParam<IoMethod> {};

TEST_P(MpiioProperty, RandomDatatypesRoundTrip) {
  Rng rng(static_cast<u64>(GetParam()) * 7919 + 17);
  for (int iter = 0; iter < 4; ++iter) {
    pvfs::Cluster cluster(ModelConfig::paper_defaults(), 4, 4);
    Communicator comm(cluster);
    File f = File::create(comm, "/prop").value();

    // Each rank gets its own disjoint displacement window so methods that
    // overlap aggregation domains still never write the same byte twice.
    std::vector<RankIo> wio(4), rio(4);
    std::vector<u64> src(4), dst(4);
    std::vector<Datatype> memtypes(4);
    for (int p = 0; p < 4; ++p) {
      pvfs::Client& c = comm.rank(p);
      const u64 bytes = rng.range(2 * kKiB, 64 * kKiB);
      Datatype memtype = random_datatype(rng, bytes);
      Datatype filetype = random_datatype(rng, bytes);
      const u64 data = std::min(memtype.size(), filetype.size());
      src[p] = c.memory().alloc(memtype.extent());
      dst[p] = c.memory().alloc(memtype.extent());
      for (const Extent& e : memtype.prefix(data)) {
        for (u64 i = 0; i < e.length; ++i) {
          c.memory().write_pod<u8>(src[p] + e.offset + i,
                                   static_cast<u8>(rng.next()));
        }
      }
      const u64 disp = static_cast<u64>(p) * 8 * kMiB;
      wio[p] = RankIo{FileView(disp, filetype), src[p], memtype, 0, data};
      rio[p] = wio[p];
      rio[p].mem_addr = dst[p];
      memtypes[p] = memtype;
    }
    Hints hints;
    hints.method = GetParam();
    auto wres = f.write_all(wio, hints);
    for (int p = 0; p < 4; ++p) {
      ASSERT_TRUE(wres[p].ok()) << to_string(GetParam()) << " iter " << iter
                                << " rank " << p << ": "
                                << wres[p].status.to_string();
    }
    auto rres = f.read_all(rio, hints);
    for (int p = 0; p < 4; ++p) {
      ASSERT_TRUE(rres[p].ok());
      pvfs::Client& c = comm.rank(p);
      for (const Extent& e : memtypes[p].prefix(wio[p].bytes)) {
        for (u64 i = 0; i < e.length; ++i) {
          ASSERT_EQ(c.memory().read_pod<u8>(dst[p] + e.offset + i),
                    c.memory().read_pod<u8>(src[p] + e.offset + i))
              << to_string(GetParam()) << " iter " << iter << " rank " << p
              << " off " << e.offset + i;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllMethods, MpiioProperty,
                         ::testing::Values(IoMethod::kMultiple,
                                           IoMethod::kDataSieving,
                                           IoMethod::kCollective,
                                           IoMethod::kListIo,
                                           IoMethod::kListIoAds),
                         [](const auto& info) {
                           switch (info.param) {
                             case IoMethod::kMultiple:
                               return "Multiple";
                             case IoMethod::kDataSieving:
                               return "DataSieving";
                             case IoMethod::kCollective:
                               return "Collective";
                             case IoMethod::kListIo:
                               return "ListIo";
                             case IoMethod::kListIoAds:
                               return "ListIoAds";
                           }
                           return "Unknown";
                         });

}  // namespace
}  // namespace pvfsib::mpiio
