// Randomized cache-coherence property: with the client caching tier on,
// no read — cache hit or wire — may ever return bytes older than what
// version-aware read placement plus read-repair would serve. Three
// cache-enabled clients run phased rounds of disjoint-region writes,
// occasional remove/recreate of the shared file, and mirror-verified
// reads, while the schedule throws iod crash windows, at-rest bit flips,
// an optional background scrubber and a mid-run shard migration at the
// cluster; an optional write-back mode stages every round's writes and
// flushes them before the cross-client reads. A host-side byte mirror of
// every acked write is the oracle: any stale hit — a cached extent that
// survived a write notice, a version conflict, a remove, or an epoch
// bump — shows up as a byte mismatch.
// Replay a failing schedule with PVFS_PROPERTY_SEED=<seed>.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.h"
#include "pvfs/cluster.h"

namespace pvfsib::pvfs {
namespace {

TEST(CacheProperty, RandomSchedulesNeverServeStaleBytes) {
  u64 seed = 2026;
  if (const char* env = std::getenv("PVFS_PROPERTY_SEED")) {
    seed = std::strtoull(env, nullptr, 10);
  }
  SCOPED_TRACE("PVFS_PROPERTY_SEED=" + std::to_string(seed));
  Rng rng(seed);
  for (int iter = 0; iter < 3; ++iter) {
    const u32 iods = 2 + static_cast<u32>(rng.below(3));
    const u32 x = static_cast<u32>(rng.below(iods));  // the stripe's home
    const u32 y = (x + 1) % iods;                     // its chained backup
    const u64 n = rng.range(16 * kKiB, 64 * kKiB);
    const u32 shards = 1 + static_cast<u32>(rng.below(2));
    const bool write_back = rng.chance(0.3);
    const bool scrub = rng.chance(0.5);
    const bool migrate = rng.chance(0.6);
    const u32 mshard = static_cast<u32>(rng.below(shards));

    ModelConfig cfg = ModelConfig::paper_defaults();
    cfg.cache.enabled = true;
    cfg.cache.data_capacity = 256 * kKiB;
    cfg.cache.write_back = write_back;
    // Large enough that the explicit end-of-round flushes are the ones
    // that matter; the timer is exercised by cache_test.
    cfg.cache.staleness_bound = Duration::ms(50.0);
    cfg.pvfs.metadata_shards = shards;
    cfg.fault.seed = seed + static_cast<u64>(iter);
    cfg.fault.round_timeout = Duration::ms(2.0);
    cfg.fault.backoff_base = Duration::us(100.0);
    cfg.fault.backoff_cap = Duration::ms(2.0);
    cfg.fault.max_retries = 25;
    cfg.replication.factor = 2;
    cfg.replication.resync = true;
    cfg.replication.write_quorum = 1;
    cfg.replication.scrub = scrub;
    // Short iod crash windows well inside the retry budget.
    const int crashes = static_cast<int>(rng.below(3));
    for (int k = 0; k < crashes; ++k) {
      cfg.fault.schedule.push_back(FaultEvent{
          FaultKind::kIodCrash,
          TimePoint::from_ns(
              static_cast<i64>(rng.range(5'000'000, 60'000'000))),
          static_cast<u32>(rng.below(iods)),
          Duration::us(static_cast<double>(rng.range(500, 4000)))});
    }
    // Bit flips at rest on one chain member: a cached hit of pre-flip
    // bytes is *correct* (the cache holds acked data); a wire read must
    // detect and fail over. Either way the mirror is the answer.
    const u32 victim = rng.chance(0.5) ? x : y;
    const int flips = 1 + static_cast<int>(rng.below(3));
    for (int k = 0; k < flips; ++k) {
      cfg.fault.schedule.push_back(FaultEvent{
          FaultKind::kBitFlip,
          TimePoint::from_ns(
              static_cast<i64>(rng.range(20'000'000, 60'000'000))),
          victim, Duration::zero()});
    }
    SCOPED_TRACE("iter " + std::to_string(iter) + ": " +
                 std::to_string(iods) + " iods, " + std::to_string(shards) +
                 " shards, n=" + std::to_string(n) +
                 (write_back ? ", write-back" : ", write-through") +
                 (scrub ? ", scrub" : "") +
                 (migrate ? ", migrate shard " + std::to_string(mshard) : "") +
                 ", " + std::to_string(crashes) + " crashes, " +
                 std::to_string(flips) + " flips on iod" +
                 std::to_string(victim));

    Cluster cluster(cfg, Cluster::Topology{}
                             .clients(3)
                             .iods(iods)
                             .metadata_shards(shards));
    if (scrub) {
      cluster.start_scrub(TimePoint::origin() + Duration::ms(200.0));
    }
    if (migrate) {
      const TimePoint mat = TimePoint::from_ns(
          static_cast<i64>(rng.range(8'000'000, 40'000'000)));
      cluster.engine().schedule_at(mat, [&cluster, mshard, mat] {
        cluster.migrate_shard(mshard, mat);
      });
    }
    Client* cl[3] = {&cluster.client(0), &cluster.client(1),
                     &cluster.client(2)};

    // The shared file and its host-side mirror of every acked byte.
    OpenFile files[3];
    files[0] = cl[0]->create("/cprop", 64 * kKiB, 1, x).value();
    std::vector<u8> mirror(n, 0);
    {
      Rng fillr(seed * 31 + static_cast<u64>(iter));
      const u64 a = cl[0]->memory().alloc(n);
      for (u64 i = 0; i < n; ++i) {
        mirror[i] = static_cast<u8>(fillr.next());
        cl[0]->memory().write_pod<u8>(a + i, mirror[i]);
      }
      ASSERT_TRUE(cl[0]->write(files[0], 0, a, n).ok());
      if (write_back) ASSERT_TRUE(cl[0]->flush(files[0]).ok());
    }
    files[1] = cl[1]->open("/cprop").value();
    files[2] = cl[2]->open("/cprop").value();

    const int rounds = 3 + static_cast<int>(rng.below(3));
    for (int r = 0; r < rounds; ++r) {
      SCOPED_TRACE("round " + std::to_string(r));
      // Occasionally the file is removed and recreated: every client's
      // cached attr and data must die with it — an open serving the old
      // handle, or a read serving the old bytes, fails the oracle (the
      // fresh file reads back as zeros until rewritten).
      if (rng.chance(0.25)) {
        const u32 who = static_cast<u32>(rng.below(3));
        ASSERT_TRUE(cl[who]->remove("/cprop").is_ok());
        files[0] = cl[0]->create("/cprop", 64 * kKiB, 1, x).value();
        Result<OpenFile> r1 = cl[1]->open("/cprop");
        Result<OpenFile> r2 = cl[2]->open("/cprop");
        ASSERT_TRUE(r1.is_ok() && r2.is_ok());
        files[1] = r1.value();
        files[2] = r2.value();
        ASSERT_EQ(files[1].meta.handle, files[0].meta.handle);
        ASSERT_EQ(files[2].meta.handle, files[0].meta.handle);
        std::fill(mirror.begin(), mirror.end(), 0);
      }
      // Phase A: each client overwrites a random slice of its own third
      // (disjoint across clients, so acked bytes commute with host order).
      const u64 band = n / 3;
      for (u32 k = 0; k < 3; ++k) {
        const u64 off =
            static_cast<u64>(k) * band + rng.below(band / 2);
        const u64 len = rng.range(1, band / 2);
        const u64 b = cl[k]->memory().alloc(len);
        for (u64 i = 0; i < len; ++i) {
          const u8 v = static_cast<u8>(mirror[off + i] ^ (0x11u * (r + 1)));
          cl[k]->memory().write_pod<u8>(b + i, v);
          mirror[off + i] = v;
        }
        IoResult w = cl[k]->write(files[k], off, b, len);
        ASSERT_TRUE(w.ok()) << "client " << k << ": "
                            << w.status.to_string();
      }
      // Write-back: make the staged bytes durable before anyone else
      // reads (within the staleness bound, cross-client lag is the
      // documented relaxation; after a flush there is none).
      if (write_back) {
        for (u32 k = 0; k < 3; ++k) {
          IoResult fl = cl[k]->flush(files[k]);
          ASSERT_TRUE(fl.ok()) << fl.status.to_string();
        }
      }
      // Phase B: quiesced cross-client reads of random extents, each
      // issued twice — the first populates (wire), the repeat is the hit
      // candidate. Hits and wire reads are both held to the mirror, so a
      // stale hit cannot hide; an open per client exercises the attr
      // cache the same way.
      for (u32 k = 0; k < 3; ++k) {
        ASSERT_EQ(cl[k]->open("/cprop").value().meta.handle,
                  files[k].meta.handle);
        const u64 off = rng.below(n - 1);
        const u64 len = rng.range(1, n - off);
        const u64 d = cl[k]->memory().alloc(len);
        for (int pass = 0; pass < 2; ++pass) {
          IoResult rd = cl[k]->read(files[k], off, d, len);
          ASSERT_TRUE(rd.ok()) << rd.status.to_string();
          for (u64 i = 0; i < len; ++i) {
            ASSERT_EQ(cl[k]->memory().read_pod<u8>(d + i), mirror[off + i])
                << "client " << k << " pass " << pass << " stale byte at "
                << (off + i);
          }
        }
      }
    }

    // Drain everything still scheduled (crash windows, flips, scrub
    // ticks, the migration), then one last full read from every client.
    cluster.run();
    for (u32 k = 0; k < 3; ++k) {
      const u64 d = cl[k]->memory().alloc(n);
      IoResult rd = cl[k]->read(files[k], 0, d, n);
      ASSERT_TRUE(rd.ok()) << rd.status.to_string();
      for (u64 i = 0; i < n; ++i) {
        ASSERT_EQ(cl[k]->memory().read_pod<u8>(d + i), mirror[i])
            << "client " << k << " final stale byte at " << i;
      }
    }
    // The property is about hits, so the schedule must actually produce
    // some — an all-miss run would verify nothing.
    EXPECT_GT(cluster.stats().get(stat::kPvfsCacheHits), 0);
  }
}

}  // namespace
}  // namespace pvfsib::pvfs
