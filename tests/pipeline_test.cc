// Pipelined multi-round list I/O: the outstanding-round window
// (ModelConfig::pipeline_depth) and the IoHandle submit() API.
//
// Covers the three load-bearing properties of the window design:
//   1. depth 1 is exactly the classic lockstep protocol (no pipelining
//      counters, bit-identical timing with the default config),
//   2. depth W > 1 overlaps rounds (inflight max > 1, no slowdown) while
//      never reordering writes to the same handle, and
//   3. IoHandle wait()/poll()/on_complete() semantics, including
//      synchronous error completion.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "pvfs/cluster.h"
#include "sim/trace.h"

namespace pvfsib::pvfs {
namespace {

ModelConfig depth_config(u32 depth, u32 max_pairs = 128) {
  ModelConfig cfg = ModelConfig::paper_defaults();
  cfg.pipeline_depth = depth;
  cfg.pvfs.max_list_pairs = max_pairs;
  return cfg;
}

void fill(Client& c, u64 addr, u64 n, u64 seed) {
  std::byte* p = c.memory().data(addr);
  for (u64 i = 0; i < n; ++i) {
    p[i] = static_cast<std::byte>((seed * 131 + i * 7) & 0xff);
  }
}

// A strided multi-round request: `rounds` rounds per iod when
// max_list_pairs is `pairs_per_round`.
core::ListIoRequest strided_request(Client& c, u64 pieces, u64 piece_len) {
  core::ListIoRequest req;
  const u64 buf = c.memory().alloc(pieces * piece_len);
  for (u64 i = 0; i < pieces; ++i) {
    req.mem.push_back({buf + i * piece_len, piece_len});
    req.file.push_back({i * 4 * piece_len, piece_len});
  }
  return req;
}

// One (end-time, stats) signature of a fixed workload under `cfg`.
std::string run_signature(const ModelConfig& cfg) {
  Cluster cluster(cfg, 2, 2);
  std::string sig;
  for (u32 k = 0; k < 2; ++k) {
    Client& c = cluster.client(k);
    OpenFile f = k == 0 ? c.create("/sig").value()
                        : c.open("/sig").value();
    core::ListIoRequest req = strided_request(c, 512, 2048);
    for (Extent& e : req.file) e.offset += k * 8 * kMiB;
    fill(c, req.mem.front().addr, 512 * 2048, 3 + k);
    IoResult w = c.write_list(f, req);
    IoResult r = c.read_list(f, req);
    sig += std::to_string(w.end.as_ns()) + "/" +
           std::to_string(r.end.as_ns()) + ";";
  }
  sig += cluster.stats().to_string();
  return sig;
}

// --- 1. depth 1 == classic lockstep protocol ---------------------------

TEST(PipelineTest, DepthOneMatchesDefaultConfigExactly) {
  // paper_defaults() has pipeline_depth == 1; an explicit depth-1 cluster
  // must be indistinguishable (events, times, counters) from it.
  ASSERT_EQ(ModelConfig::paper_defaults().pipeline_depth, 1u);
  EXPECT_EQ(run_signature(ModelConfig::paper_defaults()),
            run_signature(depth_config(1)));
}

TEST(PipelineTest, DepthOneReportsNoPipelineCounters) {
  Cluster cluster(depth_config(1, /*max_pairs=*/4), 1, 1);
  Client& c = cluster.client(0);
  OpenFile f = c.create("/d1").value();
  core::ListIoRequest req = strided_request(c, 64, 4096);
  ASSERT_TRUE(c.write_list(f, req).ok());
  ASSERT_TRUE(c.read_list(f, req).ok());
  EXPECT_EQ(cluster.stats().get(stat::kPvfsRoundsInflightMax), 0);
  EXPECT_EQ(cluster.stats().get(stat::kPvfsPipelineStalls), 0);
  EXPECT_EQ(cluster.stats().counters().count(stat::kPvfsRoundsInflightMax),
            0u);
}

TEST(PipelineTest, DeterministicAtEveryDepth) {
  for (u32 depth : {1u, 2u, 4u}) {
    EXPECT_EQ(run_signature(depth_config(depth)),
              run_signature(depth_config(depth)))
        << "depth " << depth;
  }
}

// --- 2. depth W > 1: overlap without reordering -------------------------

TEST(PipelineTest, DepthFourOverlapsRoundsAndNeverSlowsDown) {
  // 16 rounds per iod (max_pairs=4, 64 pieces, one iod in the stripe set).
  auto run = [](u32 depth) {
    Cluster cluster(depth_config(depth, /*max_pairs=*/4), 1, 1);
    Client& c = cluster.client(0);
    OpenFile f = c.create("/ovl", 64 * kKiB, 1).value();
    core::ListIoRequest req = strided_request(c, 64, 4096);
    fill(c, req.mem.front().addr, 64 * 4096, 17);
    IoResult w = c.write_list(f, req);
    EXPECT_TRUE(w.ok());
    struct Out {
      i64 end_ns;
      i64 inflight_max;
    };
    return Out{w.end.as_ns(),
               cluster.stats().get(stat::kPvfsRoundsInflightMax)};
  };
  const auto d1 = run(1);
  const auto d4 = run(4);
  EXPECT_EQ(d1.inflight_max, 0);
  EXPECT_GT(d4.inflight_max, 1);
  // Pipelining may only help (or tie): issuing earlier never delays any
  // event of the depth-1 schedule.
  EXPECT_LE(d4.end_ns, d1.end_ns);
}

TEST(PipelineTest, DepthFourPreservesWriteOrderOnSameExtent) {
  // Eight rounds that all write the SAME 4 KiB file extent with different
  // patterns (validate() permits duplicate file extents). Whatever the
  // overlap, the disk must apply them in issue order: the file must end up
  // holding the LAST round's pattern.
  Cluster cluster(depth_config(4, /*max_pairs=*/1), 1, 1);
  Client& c = cluster.client(0);
  OpenFile f = c.create("/ord", 64 * kKiB, 1).value();
  const u64 n = 4096;
  core::ListIoRequest req;
  const u64 buf = c.memory().alloc(8 * n);
  for (u64 k = 0; k < 8; ++k) {
    req.mem.push_back({buf + k * n, n});
    req.file.push_back({0, n});
    fill(c, buf + k * n, n, 100 + k);
  }
  ASSERT_TRUE(c.write_list(f, req).ok());
  EXPECT_GT(cluster.stats().get(stat::kPvfsRoundsInflightMax), 1);

  const u64 dst = c.memory().alloc(n);
  ASSERT_TRUE(c.read(f, 0, dst, n).ok());
  EXPECT_EQ(std::memcmp(c.memory().data(dst), c.memory().data(buf + 7 * n),
                        n),
            0)
      << "file does not hold the last round's data: writes were reordered";
}

TEST(PipelineTest, DepthFourDiskPhasesRunInIssueOrder) {
  // Distinct ascending offsets, one per round; the iod's write-round trace
  // records the first access offset of each disk phase. Under a window of
  // 4 the phases must still hit the disk in issue order, cycling through
  // staging slots 0..3.
  sim::Trace& tr = sim::Trace::instance();
  tr.clear();
  tr.enable();
  Cluster cluster(depth_config(4, /*max_pairs=*/1), 1, 1);
  Client& c = cluster.client(0);
  OpenFile f = c.create("/seq", 64 * kKiB, 1).value();
  core::ListIoRequest req = strided_request(c, 8, 4096);
  ASSERT_TRUE(c.write_list(f, req).ok());

  std::vector<std::string> disk_rounds;
  for (const auto& e : tr.entries()) {
    if (e.who == "iod0" && e.what.find("write round") == 0) {
      disk_rounds.push_back(e.what);
    }
  }
  tr.disable();
  tr.clear();
  ASSERT_EQ(disk_rounds.size(), 8u);
  for (u64 k = 0; k < 8; ++k) {
    const std::string want = "slot" + std::to_string(k % 4) + " @" +
                             std::to_string(k * 4 * 4096) + ":";
    EXPECT_NE(disk_rounds[k].find(want), std::string::npos)
        << "round " << k << " trace: " << disk_rounds[k]
        << " (expected " << want << ")";
  }
}

// --- 3. IoHandle semantics ---------------------------------------------

TEST(PipelineTest, HandleWaitPollAndCallbacks) {
  Cluster cluster(depth_config(4), 1, 2);
  Client& c = cluster.client(0);
  OpenFile f = c.create("/h").value();
  core::ListIoRequest req = strided_request(c, 32, 4096);

  IoHandle h = c.submit({IoDir::kWrite, f, req, {}});
  EXPECT_TRUE(h.valid());
  EXPECT_FALSE(h.poll());

  int cb_count = 0;
  IoResult from_cb;
  h.on_complete([&](IoResult r) {
    ++cb_count;
    from_cb = r;
  });
  EXPECT_EQ(cb_count, 0);  // not yet run

  IoResult r = h.wait();
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.bytes, 32u * 4096u);
  EXPECT_TRUE(h.poll());
  EXPECT_EQ(cb_count, 1);
  EXPECT_EQ(from_cb.end.as_ns(), r.end.as_ns());
  EXPECT_EQ(h.result().bytes, r.bytes);
  // wait() advanced the client's blocking clock past the completion.
  EXPECT_GE(c.now().as_ns(), r.end.as_ns());

  // A callback attached after completion fires immediately.
  h.on_complete([&](IoResult) { ++cb_count; });
  EXPECT_EQ(cb_count, 2);
  // wait() on a completed handle returns without touching the engine.
  EXPECT_TRUE(h.wait().ok());

  // A default-constructed handle is invalid.
  EXPECT_FALSE(IoHandle{}.valid());
}

TEST(PipelineTest, HandlePropagatesValidationErrors) {
  Cluster cluster(depth_config(4), 1, 2);
  Client& c = cluster.client(0);
  OpenFile f = c.create("/err").value();
  core::ListIoRequest bad;  // memory/file byte counts disagree
  bad.mem = {{c.memory().alloc(8192), 8192}};
  bad.file = {{0, 4096}};

  IoHandle h = c.submit({IoDir::kWrite, f, bad, {}});
  // Validation fails before any event is scheduled: completed on return.
  EXPECT_TRUE(h.poll());
  EXPECT_FALSE(h.result().ok());
  int cb_count = 0;
  h.on_complete([&](IoResult r) {
    ++cb_count;
    EXPECT_FALSE(r.ok());
  });
  EXPECT_EQ(cb_count, 1);
  IoResult r = h.wait();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.bytes, 0u);
}

TEST(PipelineTest, ClusterDefaultPolicyAppliesUnlessExplicit) {
  // The same workload under (a) an explicit gather/scatter policy and
  // (b) empty options + a cluster-wide gather/scatter default must be
  // indistinguishable; an explicit policy must win over the default.
  auto run = [](bool use_default, core::XferScheme explicit_scheme,
                bool set_explicit) {
    Cluster cluster(ModelConfig::paper_defaults(), 1, 2);
    if (use_default) {
      core::TransferPolicy p;
      p.scheme = core::XferScheme::kRdmaGatherScatter;
      cluster.set_default_policy(p);
    }
    Client& c = cluster.client(0);
    OpenFile f = c.create("/pol").value();
    core::ListIoRequest req = strided_request(c, 256, 2048);
    IoOptions opts;
    if (set_explicit) opts.with_scheme(explicit_scheme);
    IoResult w = c.write_list(f, req, opts);
    EXPECT_TRUE(w.ok());
    return std::to_string(w.end.as_ns()) + ";" + cluster.stats().to_string();
  };
  const std::string explicit_gather =
      run(false, core::XferScheme::kRdmaGatherScatter, true);
  const std::string default_gather =
      run(true, core::XferScheme::kMultipleMessage, false);
  EXPECT_EQ(explicit_gather, default_gather);
  // Explicit multiple-message beats the gather default — different scheme,
  // different timing/counters.
  const std::string explicit_over_default =
      run(true, core::XferScheme::kMultipleMessage, true);
  EXPECT_NE(explicit_over_default, default_gather);
}

TEST(PipelineTest, PhasesBreakdownAccountsRounds) {
  Cluster cluster(depth_config(4, /*max_pairs=*/4), 1, 1);
  Client& c = cluster.client(0);
  OpenFile f = c.create("/ph", 64 * kKiB, 1).value();
  core::ListIoRequest req = strided_request(c, 64, 4096);
  IoResult w = c.write_list(f, req);
  ASSERT_TRUE(w.ok());
  EXPECT_GT(w.phases.wire, Duration::zero());
  EXPECT_GT(w.phases.disk, Duration::zero());
  EXPECT_GE(w.phases.registration, Duration::zero());
  EXPECT_GE(w.phases.stall, Duration::zero());
  IoResult r = c.read_list(f, req);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r.phases.disk, Duration::zero());
}

}  // namespace
}  // namespace pvfsib::pvfs
