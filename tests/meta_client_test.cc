// Sharded metadata plane: shard routing math, Manager shard ownership and
// handle minting, the MetaClient shard-map cache (hit / invalidate /
// kWrongShard redirect refresh), per-shard epoch fencing, and the fluent
// cluster topology builder.
#include "pvfs/meta_client.h"

#include <gtest/gtest.h>

#include <string>

#include "pvfs/cluster.h"
#include "pvfs/manager.h"

namespace pvfsib::pvfs {
namespace {

// A name that hashes to `want` out of `shards` (deterministic scan).
std::string name_on_shard(u32 want, u32 shards) {
  for (int i = 0; i < 4096; ++i) {
    std::string name = "/f" + std::to_string(i);
    if (shard_of(name, shards) == want) return name;
  }
  ADD_FAILURE() << "no name found for shard " << want << "/" << shards;
  return "/f0";
}

// --- shard routing math ---------------------------------------------------

TEST(ShardRouting, NameHashIsStableAndCoversAllShards) {
  // One shard owns everything (the unsharded plane).
  EXPECT_EQ(shard_of("/a", 1), 0u);
  EXPECT_EQ(shard_of("/b", 1), 0u);
  // Deterministic: same name, same shard.
  EXPECT_EQ(shard_of("/data/x", 8), shard_of("/data/x", 8));
  // Every shard of a small plane is reachable by some name.
  for (u32 s = 0; s < 4; ++s) {
    const std::string n = name_on_shard(s, 4);
    EXPECT_EQ(shard_of(n, 4), s);
  }
}

TEST(ShardRouting, HandleShardMatchesMintingManagerAndDecodesShadows) {
  // Shard s mints s+1, s+1+N, s+1+2N, ...
  for (u32 n = 1; n <= 4; ++n) {
    for (u32 s = 0; s < n; ++s) {
      for (u32 k = 0; k < 3; ++k) {
        const Handle h = Handle{s} + 1 + Handle{k} * n;
        EXPECT_EQ(shard_of_handle(h, n), s) << "h=" << h << " n=" << n;
        // A backup stripe's shadow handle belongs to the same shard as the
        // file it shadows (stripe headers and resync notes route by it).
        EXPECT_EQ(shard_of_handle(backup_handle(h, 2), n), s);
      }
    }
  }
}

// --- Manager shard ownership ----------------------------------------------

class ShardedManagerTest : public ::testing::Test {
 protected:
  ShardedManagerTest()
      : cfg_(ModelConfig::paper_defaults()),
        fabric_(cfg_.net, &stats_),
        mgr_(cfg_, fabric_, &stats_,
             ManagerOptions{.cluster_iod_count = 4,
                            .name = "mgr1",
                            .shard_id = 1,
                            .shard_count = 4}),
        client_hca_("c", client_as_, cfg_.reg, &stats_) {}

  ModelConfig cfg_;
  Stats stats_;
  ib::Fabric fabric_;
  Manager mgr_;
  vmem::AddressSpace client_as_;
  ib::Hca client_hca_;
};

TEST_F(ShardedManagerTest, RefusesNamesOutsideItsShardWithWrongShard) {
  const std::string mine = name_on_shard(1, 4);
  const std::string other = name_on_shard(2, 4);
  ASSERT_TRUE(mgr_.owns(mine));
  ASSERT_FALSE(mgr_.owns(other));
  EXPECT_TRUE(mgr_.create(client_hca_, TimePoint::origin(), mine, 64 * kKiB, 4)
                  .value.is_ok());
  auto r = mgr_.create(client_hca_, TimePoint::origin(), other, 64 * kKiB, 4);
  EXPECT_EQ(r.value.status().code(), ErrorCode::kWrongShard);
  // The redirect is a fast real reply, not a timeout, and leaves the
  // namespace untouched on this manager.
  EXPECT_GT(r.cost, Duration::zero());
  EXPECT_EQ(mgr_.open(client_hca_, TimePoint::origin(), other)
                .value.status()
                .code(),
            ErrorCode::kWrongShard);
  EXPECT_EQ(mgr_.remove(client_hca_, TimePoint::origin(), other)
                .value.code(),
            ErrorCode::kWrongShard);
}

TEST_F(ShardedManagerTest, MintsHandlesInItsResidueClass) {
  // Shard 1 of 4 mints 2, 6, 10, ... so shard_of_handle recovers the
  // owner without a namespace lookup.
  Handle prev = 0;
  for (int i = 0; i < 3; ++i) {
    const std::string n = name_on_shard(1, 4) + "-" + std::to_string(i);
    // name_on_shard(1, 4) + suffix may hash elsewhere; scan for owned names.
    if (!mgr_.owns(n)) continue;
    auto f = mgr_.create(client_hca_, TimePoint::origin(), n, 64 * kKiB, 4);
    ASSERT_TRUE(f.value.is_ok());
    const Handle h = f.value.value().handle;
    EXPECT_EQ(shard_of_handle(h, 4), 1u);
    EXPECT_EQ((h - 1) % 4, 1u);
    if (prev != 0) EXPECT_EQ(h, prev + 4);
    prev = h;
  }
}

TEST_F(ShardedManagerTest, ServeDispatchesTypedRequests) {
  const std::string mine = name_on_shard(1, 4);
  MetaRequest rq;
  rq.op = MetaOp::kCreate;
  rq.name = mine;
  rq.stripe_size = 128 * kKiB;
  rq.iod_count = 2;
  Timed<MetaReply> c = mgr_.serve(client_hca_, TimePoint::origin(), rq);
  ASSERT_TRUE(c.value.status.is_ok());
  EXPECT_EQ(c.value.meta.stripe_size, 128 * kKiB);
  EXPECT_GT(c.cost, Duration::zero());

  rq.op = MetaOp::kStat;
  Timed<MetaReply> st = mgr_.serve(client_hca_, TimePoint::origin(), rq);
  ASSERT_TRUE(st.value.status.is_ok());
  EXPECT_EQ(st.value.meta.iod_count, 2u);

  rq.op = MetaOp::kRemove;
  EXPECT_TRUE(
      mgr_.serve(client_hca_, TimePoint::origin(), rq).value.status.is_ok());
  rq.op = MetaOp::kOpen;
  EXPECT_FALSE(
      mgr_.serve(client_hca_, TimePoint::origin(), rq).value.status.is_ok());
}

// --- shard-map cache / redirect refresh -----------------------------------

class ShardedClusterTest : public ::testing::Test {
 protected:
  ShardedClusterTest()
      : cluster_(ModelConfig::paper_defaults(),
                 Cluster::Topology{}.clients(2).iods(4).metadata_shards(4)) {}

  Cluster cluster_;
};

TEST_F(ShardedClusterTest, TopologyBuilderWiresOneManagerPerShard) {
  EXPECT_EQ(cluster_.metadata_shards(), 4u);
  EXPECT_EQ(cluster_.registry().shard_count(), 4u);
  for (u32 s = 0; s < 4; ++s) {
    EXPECT_EQ(cluster_.manager(s).shard_id(), s);
    EXPECT_EQ(cluster_.manager(s).shard_count(), 4u);
    EXPECT_EQ(cluster_.standby(s), nullptr);  // no standbys requested
  }
  EXPECT_EQ(cluster_.client(0).meta().shard_count(), 4u);
}

TEST_F(ShardedClusterTest, MetadataOpsRouteToOwningShardWithoutRedirects) {
  Client& c = cluster_.client(0);
  for (u32 s = 0; s < 4; ++s) {
    const std::string n = name_on_shard(s, 4);
    ASSERT_TRUE(c.create(n).is_ok()) << n;
    ASSERT_TRUE(c.open(n).is_ok());
    // The owning manager holds the entry; the others never saw it.
    EXPECT_TRUE(cluster_.manager(s).stat(n).is_ok());
    EXPECT_FALSE(cluster_.manager((s + 1) % 4).stat(n).is_ok());
    // Minted handles route back to the owning shard.
    EXPECT_EQ(shard_of_handle(c.open(n).value().meta.handle, 4), s);
  }
  // Correctly-routed traffic is all cache hits: no redirects, no refreshes.
  EXPECT_EQ(cluster_.stats().get(stat::kPvfsShardRedirects), 0);
  EXPECT_EQ(cluster_.stats().get(stat::kPvfsShardMapRefreshes), 0);
}

TEST_F(ShardedClusterTest, StaleMapTakesOneRedirectThenRefreshes) {
  Client& c = cluster_.client(0);
  const std::string elsewhere = name_on_shard(2, 4);
  ASSERT_TRUE(c.create(elsewhere).is_ok());

  // Collapse the cached map to a stale single-shard view, as if this
  // client mounted before the plane was resharded.
  c.meta().invalidate_map();
  ASSERT_EQ(c.meta().shard_count(), 1u);
  ASSERT_EQ(c.meta().map_version(), 0u);

  // The next op routes to shard 0, takes the kWrongShard redirect, and
  // re-routes with the refreshed map — one redirect, one refresh, and the
  // op still succeeds.
  EXPECT_TRUE(c.open(elsewhere).is_ok());
  EXPECT_EQ(cluster_.stats().get(stat::kPvfsShardRedirects), 1);
  EXPECT_EQ(cluster_.stats().get(stat::kPvfsShardMapRefreshes), 1);
  EXPECT_EQ(c.meta().shard_count(), 4u);
  EXPECT_EQ(c.meta().map_version(), cluster_.registry().version());

  // Refreshed map: subsequent ops are cache hits again.
  EXPECT_TRUE(c.open(elsewhere).is_ok());
  EXPECT_EQ(cluster_.stats().get(stat::kPvfsShardRedirects), 1);

  // Names shard 0 happens to own never needed the redirect: a second
  // client's untouched cache stays at the mount-time version throughout.
  EXPECT_EQ(cluster_.client(1).meta().map_version(),
            cluster_.registry().version());
}

TEST_F(ShardedClusterTest, BoundedReRefreshLandsConsumersOnFreshState) {
  // The two-generations-in-flight race: a stale mount's first
  // redirect-driven refresh itself fetches an already-superseded map, so
  // the bounded re-refresh loop has to go around again. The op must still
  // succeed — and, the part this test pins, every consumer of MetaClient
  // state afterwards sees the *fresh* map, not the intermediate stale one:
  // the version cursor, name routing, and the version-plane authority.
  Client& c = cluster_.client(0);
  const std::string elsewhere = name_on_shard(3, 4);
  ASSERT_TRUE(c.create(elsewhere).is_ok());
  const Handle h = c.open(elsewhere).value().meta.handle;

  c.meta().invalidate_map();
  c.meta().force_stale_refreshes(1);
  EXPECT_TRUE(c.open(elsewhere).is_ok());

  EXPECT_EQ(c.meta().map_version(), cluster_.registry().version());
  EXPECT_EQ(c.meta().shard_count(), 4u);
  EXPECT_EQ(&c.meta().route(elsewhere), &cluster_.active_manager(3));
  EXPECT_TRUE(c.meta().authority(h).owns_handle(h));
  // Two refreshes: the stale one the hook forced, then the real one.
  EXPECT_GE(cluster_.stats().get(stat::kPvfsShardMapRefreshes), 2);
}

// --- per-shard epoch fencing ----------------------------------------------

TEST(ShardedTakeover, TakeoverFencesOnlyItsOwnShard) {
  ModelConfig cfg = ModelConfig::paper_defaults();
  Cluster cluster(
      cfg, Cluster::Topology{}.clients(1).iods(2).metadata_shards(2)
               .standbys());
  ASSERT_NE(cluster.standby(0), nullptr);
  ASSERT_NE(cluster.standby(1), nullptr);
  ASSERT_EQ(cluster.manager_epoch(0).value, 1u);
  ASSERT_EQ(cluster.manager_epoch(1).value, 1u);

  cluster.manager_takeover(1, TimePoint::origin());

  // Shard 1 moved to epoch 2 and its standby is the authority; shard 0 is
  // untouched.
  EXPECT_EQ(cluster.manager_epoch(1).value, 2u);
  EXPECT_EQ(cluster.manager_epoch(0).value, 1u);
  EXPECT_TRUE(cluster.manager(1).epoch_stale());
  EXPECT_FALSE(cluster.manager(0).epoch_stale());
  EXPECT_EQ(&cluster.active_manager(1), cluster.standby(1));
  EXPECT_EQ(&cluster.active_manager(0), &cluster.manager(0));
  // The epoch sweep landed in the shard's per-iod fence cell only.
  for (u32 i = 0; i < cluster.iod_count(); ++i) {
    EXPECT_EQ(cluster.iod(i).manager_epoch(1), 2u);
    EXPECT_EQ(cluster.iod(i).manager_epoch(0), 0u);
  }
  // The registry bumped, so fresh mounts (and redirect refreshes) see the
  // promoted standby.
  EXPECT_EQ(cluster.registry().shard(1).active, 1u);
  EXPECT_EQ(cluster.registry().shard(0).active, 0u);
  // Idempotent: a second takeover of the same shard is a no-op.
  cluster.manager_takeover(1, TimePoint::origin());
  EXPECT_EQ(cluster.manager_epoch(1).value, 2u);
}

TEST(ShardedCluster, ShardedPlaneServesListIoEndToEnd) {
  // Data-path smoke over a sharded plane: create on whatever shard the
  // name hashes to, write, read back through a different client.
  ModelConfig cfg = ModelConfig::paper_defaults();
  cfg.pvfs.metadata_shards = 4;  // via config instead of the builder
  Cluster cluster(cfg, 2, 4);
  EXPECT_EQ(cluster.metadata_shards(), 4u);
  Client& w = cluster.client(0);
  Client& r = cluster.client(1);
  OpenFile f = w.create("/sharded/data").value();
  const u64 n = 256 * kKiB;
  const u64 src = w.memory().alloc(n);
  for (u64 i = 0; i < n; i += 8) {
    w.memory().write_pod<u64>(src + i, i * 2654435761u);
  }
  ASSERT_TRUE(w.write(f, 0, src, n).ok());
  OpenFile g = r.open("/sharded/data").value();
  EXPECT_EQ(g.meta.handle, f.meta.handle);
  EXPECT_EQ(r.stat("/sharded/data").value().logical_size, n);
  const u64 dst = r.memory().alloc(n);
  ASSERT_TRUE(r.read(g, 0, dst, n).ok());
  for (u64 i = 0; i < n; i += 8) {
    ASSERT_EQ(r.memory().read_pod<u64>(dst + i), i * 2654435761u) << i;
  }
  ASSERT_TRUE(w.remove("/sharded/data").is_ok());
  EXPECT_FALSE(r.open("/sharded/data").is_ok());
}

}  // namespace
}  // namespace pvfsib::pvfs
