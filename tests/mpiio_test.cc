#include "mpiio/mpio_file.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace pvfsib::mpiio {
namespace {

constexpr u64 kElem = 4;

void fill_buf(pvfs::Client& c, u64 addr, u64 n, u64 seed) {
  Rng rng(seed);
  for (u64 i = 0; i < n; ++i) {
    c.memory().write_pod<u8>(addr + i, static_cast<u8>(rng.next()));
  }
}

// All four independent/collective methods must produce identical file
// contents and identical read-back data; only their timings differ.
class MpiioTest : public ::testing::TestWithParam<IoMethod> {
 protected:
  MpiioTest()
      : cluster_(ModelConfig::paper_defaults(), 4, 4), comm_(cluster_) {}

  static void fill(pvfs::Client& c, u64 addr, u64 n, u64 seed) {
    Rng rng(seed);
    for (u64 i = 0; i < n; ++i) {
      c.memory().write_pod<u8>(addr + i, static_cast<u8>(rng.next()));
    }
  }

  pvfs::Cluster cluster_;
  Communicator comm_;
};

TEST_P(MpiioTest, BlockColumnWriteReadRoundTrip) {
  // The Figure 5/6/7 pattern: N x N ints, 4 processes, 1-D block-column
  // view, contiguous memory.
  const u64 n = 64;
  Result<File> file = File::create(comm_, "/bc");
  ASSERT_TRUE(file.is_ok());
  File f = file.value();

  Hints hints;
  hints.method = GetParam();

  const u64 col_bytes = n / 4 * kElem;      // bytes per row per process
  const u64 share = n * col_bytes;          // bytes per process
  std::vector<RankIo> wr(4), rd(4);
  std::vector<u64> src(4), dst(4);
  for (int p = 0; p < 4; ++p) {
    pvfs::Client& c = comm_.rank(p);
    src[p] = c.memory().alloc(share);
    dst[p] = c.memory().alloc(share);
    fill(c, src[p], share, 42 + p);
    const Datatype ft = Datatype::subarray(
        {n, n}, {n, n / 4}, {0, static_cast<u64>(p) * (n / 4)}, kElem);
    wr[p] = RankIo{FileView(0, ft), src[p], Datatype::contiguous(share), 0,
                   share};
    rd[p] = wr[p];
    rd[p].mem_addr = dst[p];
  }
  auto wres = f.write_all(wr, hints);
  for (int p = 0; p < 4; ++p) {
    ASSERT_TRUE(wres[p].ok()) << to_string(GetParam()) << " rank " << p
                              << ": " << wres[p].status.to_string();
    EXPECT_EQ(wres[p].bytes, share);
    EXPECT_GE(wres[p].end, wres[p].start);
  }

  auto rres = f.read_all(rd, hints);
  for (int p = 0; p < 4; ++p) {
    ASSERT_TRUE(rres[p].ok()) << to_string(GetParam()) << " rank " << p;
    pvfs::Client& c = comm_.rank(p);
    ASSERT_EQ(
        std::memcmp(c.memory().data(src[p]), c.memory().data(dst[p]), share),
        0)
        << to_string(GetParam()) << " rank " << p;
  }
}

TEST_P(MpiioTest, NoncontiguousMemoryAndFile) {
  // BTIO-like: noncontiguous in memory AND in the file.
  const u64 rows = 24;
  Result<File> file = File::create(comm_, "/nc");
  ASSERT_TRUE(file.is_ok());
  File f = file.value();

  Hints hints;
  hints.method = GetParam();

  // Memory: every other 256-byte row of a local array.
  const Datatype memtype =
      Datatype::vector(rows, 1, 2, Datatype::contiguous(256));
  const u64 share = memtype.size();
  // File: rank p writes 256-byte pieces at stride 4*256.
  std::vector<RankIo> wr(4), rd(4);
  std::vector<u64> src(4), dst(4);
  for (int p = 0; p < 4; ++p) {
    pvfs::Client& c = comm_.rank(p);
    src[p] = c.memory().alloc(memtype.extent());
    dst[p] = c.memory().alloc(memtype.extent());
    fill(c, src[p], memtype.extent(), 7 + p);
    const Datatype ft = Datatype::subarray(
        {rows, 4}, {rows, 1}, {0, static_cast<u64>(p)}, 256);
    wr[p] = RankIo{FileView(0, ft), src[p], memtype, 0, share};
    rd[p] = wr[p];
    rd[p].mem_addr = dst[p];
  }
  auto wres = f.write_all(wr, hints);
  for (int p = 0; p < 4; ++p) {
    ASSERT_TRUE(wres[p].ok()) << to_string(GetParam()) << " rank " << p;
  }
  auto rres = f.read_all(rd, hints);
  for (int p = 0; p < 4; ++p) {
    ASSERT_TRUE(rres[p].ok());
    pvfs::Client& c = comm_.rank(p);
    // Compare only the mapped bytes of the memtype.
    for (const Extent& e : memtype.map()) {
      ASSERT_EQ(std::memcmp(c.memory().data(src[p] + e.offset),
                            c.memory().data(dst[p] + e.offset), e.length),
                0)
          << to_string(GetParam()) << " rank " << p << " at " << e.offset;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllMethods, MpiioTest,
                         ::testing::Values(IoMethod::kMultiple,
                                           IoMethod::kDataSieving,
                                           IoMethod::kCollective,
                                           IoMethod::kListIo,
                                           IoMethod::kListIoAds),
                         [](const auto& info) {
                           switch (info.param) {
                             case IoMethod::kMultiple:
                               return "Multiple";
                             case IoMethod::kDataSieving:
                               return "DataSieving";
                             case IoMethod::kCollective:
                               return "Collective";
                             case IoMethod::kListIo:
                               return "ListIo";
                             case IoMethod::kListIoAds:
                               return "ListIoAds";
                           }
                           return "Unknown";
                         });

TEST(MpiioExtra, ListIoFasterThanMultipleForNoncontiguous) {
  pvfs::Cluster cluster(ModelConfig::paper_defaults(), 4, 4);
  Communicator comm(cluster);
  File f = File::create(comm, "/perf").value();

  const u64 n = 256;
  const u64 col_bytes = n / 4 * kElem;
  const u64 share = n * col_bytes;
  auto make_io = [&](std::vector<u64>& bufs) {
    std::vector<RankIo> io(4);
    for (int p = 0; p < 4; ++p) {
      pvfs::Client& c = comm.rank(p);
      bufs.push_back(c.memory().alloc(share));
      const Datatype ft = Datatype::subarray(
          {n, n}, {n, n / 4}, {0, static_cast<u64>(p) * (n / 4)}, kElem);
      io[p] = RankIo{FileView(0, ft), bufs.back(),
                     Datatype::contiguous(share), 0, share};
    }
    return io;
  };
  std::vector<u64> b1, b2;
  Hints multi;
  multi.method = IoMethod::kMultiple;
  auto io1 = make_io(b1);
  auto r_multi = f.write_all(io1, multi);
  Hints list;
  list.method = IoMethod::kListIoAds;
  auto io2 = make_io(b2);
  auto r_list = f.write_all(io2, list);

  Duration t_multi = Duration::zero(), t_list = Duration::zero();
  for (int p = 0; p < 4; ++p) {
    t_multi = max(t_multi, r_multi[p].elapsed());
    t_list = max(t_list, r_list[p].elapsed());
  }
  // The paper's headline for Figure 6: list I/O wins by 3.5-12x.
  EXPECT_LT(t_list * 3, t_multi);
}

TEST(MpiioExtra, CollectiveMovesInterClientTraffic) {
  pvfs::Cluster cluster(ModelConfig::paper_defaults(), 4, 4);
  Communicator comm(cluster);
  File f = File::create(comm, "/coll").value();
  const u64 n = 64;
  const u64 share = n * n / 4 * kElem;
  std::vector<RankIo> io(4);
  for (int p = 0; p < 4; ++p) {
    pvfs::Client& c = comm.rank(p);
    const u64 buf = c.memory().alloc(share);
    const Datatype ft = Datatype::subarray(
        {n, n}, {n, n / 4}, {0, static_cast<u64>(p) * (n / 4)}, kElem);
    io[p] = RankIo{FileView(0, ft), buf, Datatype::contiguous(share), 0,
                   share};
  }
  const i64 before = cluster.stats().get(stat::kNetBytesInterClient);
  Hints hints;
  hints.method = IoMethod::kCollective;
  auto res = f.write_all(io, hints);
  for (auto& r : res) ASSERT_TRUE(r.ok());
  // Two-phase I/O exchanges most of the data between compute nodes first
  // (the Table 6 "communication between compute nodes" row).
  EXPECT_GT(cluster.stats().get(stat::kNetBytesInterClient) - before,
            static_cast<i64>(share));
}

TEST(MpiioExtra, IndependentWriteAtReadAt) {
  pvfs::Cluster cluster(ModelConfig::paper_defaults(), 4, 4);
  Communicator comm(cluster);
  File f = File::create(comm, "/indep").value();
  // Rank 2 writes alone through a strided view; rank 0 reads it back.
  const Datatype ft = Datatype::subarray({4}, {1}, {1}, 1024);
  pvfs::Client& c2 = comm.rank(2);
  const u64 src = c2.memory().alloc(8 * kKiB);
  fill_buf(c2, src, 8 * kKiB, 3);
  Hints hints;
  pvfs::IoResult w = f.write_at(2, FileView(0, ft), 0, src,
                                Datatype::contiguous(8 * kKiB), 8 * kKiB,
                                hints);
  ASSERT_TRUE(w.ok()) << w.status.to_string();
  EXPECT_EQ(w.bytes, 8 * kKiB);

  pvfs::Client& c0 = comm.rank(0);
  const u64 dst = c0.memory().alloc(8 * kKiB);
  pvfs::IoResult r = f.read_at(0, FileView(0, ft), 0, dst,
                               Datatype::contiguous(8 * kKiB), 8 * kKiB,
                               hints);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(std::memcmp(c0.memory().data(dst), c2.memory().data(src),
                        8 * kKiB),
            0);
}

TEST(MpiioExtra, IndividualFilePointersAdvance) {
  pvfs::Cluster cluster(ModelConfig::paper_defaults(), 2, 2);
  Communicator comm(cluster);
  File f = File::create(comm, "/fp").value();
  // A strided view: pointer motion is in view space, not physical space.
  f.set_view(0, FileView(0, Datatype::subarray({2}, {1}, {0}, 2048)));
  EXPECT_EQ(f.tell(0), 0u);
  pvfs::Client& c = comm.rank(0);
  const u64 a = c.memory().alloc(2048);
  const u64 b = c.memory().alloc(2048);
  fill_buf(c, a, 2048, 10);
  fill_buf(c, b, 2048, 11);
  Hints hints;
  ASSERT_TRUE(f.write(0, a, Datatype::contiguous(2048), 2048, hints).ok());
  EXPECT_EQ(f.tell(0), 2048u);
  ASSERT_TRUE(f.write(0, b, Datatype::contiguous(2048), 2048, hints).ok());
  EXPECT_EQ(f.tell(0), 4096u);
  // Seek back and read both chunks through the pointer.
  f.seek(0, 0);
  const u64 back = c.memory().alloc(4096);
  ASSERT_TRUE(f.read(0, back, Datatype::contiguous(4096), 4096, hints).ok());
  EXPECT_EQ(std::memcmp(c.memory().data(back), c.memory().data(a), 2048), 0);
  EXPECT_EQ(
      std::memcmp(c.memory().data(back + 2048), c.memory().data(b), 2048), 0);
  // The two view-space chunks landed 4 KiB apart physically (stride 2).
  EXPECT_EQ(cluster.manager().stat("/fp").value().logical_size, 6 * 1024u);
  // set_view resets the pointer.
  f.set_view(0, FileView());
  EXPECT_EQ(f.tell(0), 0u);
}

TEST(MpiioExtra, BarrierSynchronizesClocks) {
  pvfs::Cluster cluster(ModelConfig::paper_defaults(), 4, 4);
  Communicator comm(cluster);
  comm.rank(2).advance_to(TimePoint::origin() + Duration::ms(5));
  const TimePoint t = comm.barrier();
  EXPECT_GE(t, TimePoint::origin() + Duration::ms(5));
  for (int r = 0; r < 4; ++r) EXPECT_EQ(comm.rank(r).now(), t);
}

}  // namespace
}  // namespace pvfsib::mpiio
