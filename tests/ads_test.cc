#include "core/ads.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace pvfsib::core {
namespace {

class AdsTest : public ::testing::Test {
 protected:
  ActiveDataSieving make(AdsConfig cfg = {}) {
    return ActiveDataSieving(DiskParams{}, FsParams{}, MemParams{}, cfg,
                             &stats_);
  }

  // N accesses of `len` bytes strided by `stride`.
  static ExtentList strided(u64 n, u64 len, u64 stride, u64 base = 0) {
    ExtentList l;
    for (u64 i = 0; i < n; ++i) l.push_back({base + i * stride, len});
    return l;
  }

  Stats stats_;
};

TEST_F(AdsTest, ModelTermsMatchFormulas) {
  ActiveDataSieving ads = make();
  const DiskParams dp;
  const FsParams fp;
  const MemParams mp;
  const ExtentList acc = strided(10, 1024, 4096);

  // T_read = N*(O_r + O_seek) + sum S_i/B_r(S_i)
  const Duration expect_sep =
      (fp.read_overhead + fp.seek_overhead) * 10 +
      transfer_time(1024, dp.media_bw(1024, false)) * 10;
  EXPECT_EQ(ads.t_read_separate(acc).as_ns(), expect_sep.as_ns());

  // S_ds = span of the sorted accesses (fits one window).
  EXPECT_EQ(ads.sieved_bytes(acc), 9 * 4096 + 1024);

  const u64 s_ds = ads.sieved_bytes(acc);
  const Duration expect_dsr =
      fp.read_overhead + fp.seek_overhead +
      transfer_time(s_ds, dp.media_bw(s_ds, false));
  EXPECT_EQ(ads.t_read_sieved(s_ds, s_ds).as_ns(), expect_dsr.as_ns());

  // T_dsw = T_dsr + S_req/B_mem + O_lock + O_w + S_ds/B_w + O_unlock
  const Duration expect_dsw =
      expect_dsr + mp.copy_cost(10 * 1024) + fp.lock_overhead +
      fp.write_overhead + transfer_time(s_ds, dp.media_bw(s_ds, true)) +
      fp.unlock_overhead;
  EXPECT_EQ(ads.t_write_sieved(10 * 1024, s_ds, s_ds).as_ns(),
            expect_dsw.as_ns());
}

TEST_F(AdsTest, EofAwareWriteDecision) {
  ActiveDataSieving ads = make();
  // Appending writes past EOF: the RMW read is free, so sieving wins even
  // for piece sizes where an overwrite of existing data would not sieve.
  const ExtentList acc = strided(128, 2560, 10240);
  const AdsDecision overwrite = ads.decide(acc, /*write=*/true);
  const AdsDecision append = ads.decide(acc, /*write=*/true, /*size=*/0);
  EXPECT_FALSE(overwrite.sieve);
  EXPECT_TRUE(append.sieve);
  EXPECT_LT(append.t_sieve, overwrite.t_sieve);
}

TEST_F(AdsTest, SievedReadableBytesClipsAtEof) {
  ActiveDataSieving ads = make();
  const ExtentList acc = strided(4, 1024, 4096);  // span [0, 13312)
  EXPECT_EQ(ads.sieved_readable_bytes(acc, ~0ULL), ads.sieved_bytes(acc));
  EXPECT_EQ(ads.sieved_readable_bytes(acc, 0), 0u);
  EXPECT_EQ(ads.sieved_readable_bytes(acc, 5000), 5000u);
}

TEST_F(AdsTest, SmallDenseAccessesSieve) {
  ActiveDataSieving ads = make();
  // 128 accesses of 512 B, 1 in 4 density: classic sieving win.
  const AdsDecision d = ads.decide(strided(128, 512, 2048), /*write=*/false);
  EXPECT_TRUE(d.sieve);
  EXPECT_LT(d.t_sieve, d.t_separate);
  EXPECT_EQ(d.s_req, 128u * 512u);
  EXPECT_EQ(stats_.get(stat::kAdsSieved), 1);
}

TEST_F(AdsTest, LargeAccessesDoNotSieve) {
  ActiveDataSieving ads = make();
  // 16 accesses of 256 KiB with 1-in-4 density: reading 4x the data loses.
  const AdsDecision d =
      ads.decide(strided(16, 256 * kKiB, 1 * kMiB), /*write=*/false);
  EXPECT_FALSE(d.sieve);
  EXPECT_GE(d.t_sieve, d.t_separate);
  EXPECT_EQ(stats_.get(stat::kAdsSeparate), 1);
}

TEST_F(AdsTest, SparseAccessesDoNotSieve) {
  ActiveDataSieving ads = make();
  // Tiny wanted data spread over a huge span.
  const AdsDecision d = ads.decide(strided(8, 256, 1 * kMiB), false);
  EXPECT_FALSE(d.sieve);
}

TEST_F(AdsTest, ContiguousRunSievesAsOneAccessNoGain) {
  ActiveDataSieving ads = make();
  // A single access never sieves (pure overhead).
  const AdsDecision d = ads.decide({{0, 1 * kMiB}}, false);
  EXPECT_FALSE(d.sieve);
}

TEST_F(AdsTest, WriteDecisionChargesReadModifyWrite) {
  ActiveDataSieving ads = make();
  const ExtentList acc = strided(128, 512, 2048);
  const AdsDecision r = ads.decide(acc, /*write=*/false);
  const AdsDecision w = ads.decide(acc, /*write=*/true);
  // Same access list: the write-sieve cost includes the RMW cycle, so it
  // exceeds the read-sieve cost.
  EXPECT_GT(w.t_sieve, r.t_sieve);
  EXPECT_TRUE(w.sieve);  // still a win at this density
}

TEST_F(AdsTest, DisabledNeverSieves) {
  AdsConfig cfg;
  cfg.enabled = false;
  ActiveDataSieving ads = make(cfg);
  EXPECT_FALSE(ads.decide(strided(128, 512, 2048), false).sieve);
}

TEST_F(AdsTest, ForcedAlwaysSieves) {
  AdsConfig cfg;
  cfg.force = true;
  ActiveDataSieving ads = make(cfg);
  // Even the hopeless sparse case sieves when forced (the ablation knob).
  EXPECT_TRUE(ads.decide(strided(8, 256, 1 * kMiB), false).sieve);
}

TEST_F(AdsTest, PlanSingleWindow) {
  ActiveDataSieving ads = make();
  const ExtentList acc = strided(4, 1024, 4096, 100);
  const auto windows = ads.plan_windows(acc);
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0].span.offset, 100u);
  EXPECT_EQ(windows[0].span.length, 3 * 4096 + 1024);
  ASSERT_EQ(windows[0].pieces.size(), 4u);
  for (u32 i = 0; i < 4; ++i) {
    const auto& p = windows[0].pieces[i];
    EXPECT_EQ(p.access_index, i);
    EXPECT_EQ(p.window_off, i * 4096u);
    EXPECT_EQ(p.stream_off, i * 1024u);
    EXPECT_EQ(p.length, 1024u);
  }
}

TEST_F(AdsTest, PlanSplitsAtBufferBoundary) {
  AdsConfig cfg;
  cfg.sieve_buffer_size = 8 * kKiB;
  ActiveDataSieving ads = make(cfg);
  const ExtentList acc = strided(8, 1024, 4096);  // span 29 KiB
  const auto windows = ads.plan_windows(acc);
  ASSERT_GE(windows.size(), 4u);
  u64 covered = 0;
  for (const auto& w : windows) {
    EXPECT_LE(w.span.length, 8 * kKiB);
    for (const auto& p : w.pieces) {
      EXPECT_LE(p.window_off + p.length, w.span.length);
      covered += p.length;
    }
  }
  EXPECT_EQ(covered, 8 * 1024u);
}

TEST_F(AdsTest, PlanHandlesAccessLargerThanBuffer) {
  AdsConfig cfg;
  cfg.sieve_buffer_size = 4 * kKiB;
  ActiveDataSieving ads = make(cfg);
  const ExtentList acc{{0, 10 * kKiB}};
  const auto windows = ads.plan_windows(acc);
  ASSERT_EQ(windows.size(), 3u);
  u64 stream = 0;
  for (const auto& w : windows) {
    for (const auto& p : w.pieces) {
      EXPECT_EQ(p.access_index, 0u);
      EXPECT_EQ(p.stream_off, stream);
      stream += p.length;
    }
  }
  EXPECT_EQ(stream, 10 * kKiB);
}

TEST_F(AdsTest, PlanPreservesRequestOrderStreamOffsets) {
  ActiveDataSieving ads = make();
  // Accesses given out of file order: stream offsets follow request order.
  const ExtentList acc{{8192, 100}, {0, 50}, {4096, 25}};
  const auto windows = ads.plan_windows(acc);
  ASSERT_EQ(windows.size(), 1u);
  // Sorted by offset: {0,50}(stream 100), {4096,25}(stream 150),
  // {8192,100}(stream 0).
  const auto& ps = windows[0].pieces;
  ASSERT_EQ(ps.size(), 3u);
  EXPECT_EQ(ps[0].access_index, 1u);
  EXPECT_EQ(ps[0].stream_off, 100u);
  EXPECT_EQ(ps[1].access_index, 2u);
  EXPECT_EQ(ps[1].stream_off, 150u);
  EXPECT_EQ(ps[2].access_index, 0u);
  EXPECT_EQ(ps[2].stream_off, 0u);
}

// Property: windows cover every requested byte exactly once, spans fit the
// buffer, and stream offsets tile [0, S_req).
TEST_F(AdsTest, PlanWindowsPartitionProperty) {
  Rng rng(13);
  for (int iter = 0; iter < 100; ++iter) {
    AdsConfig cfg;
    cfg.sieve_buffer_size = (1 + rng.below(8)) * 4 * kKiB;
    ActiveDataSieving ads = make(cfg);
    ExtentList acc;
    u64 pos = rng.below(10000);
    const int n = static_cast<int>(rng.range(1, 50));
    for (int i = 0; i < n; ++i) {
      const u64 len = rng.range(1, 3 * 4096);
      acc.push_back({pos, len});
      pos += len + rng.below(8192);
    }
    const u64 s_req = total_length(acc);
    std::vector<bool> seen(s_req, false);
    for (const auto& w : ads.plan_windows(acc)) {
      EXPECT_LE(w.span.length, cfg.sieve_buffer_size);
      for (const auto& p : w.pieces) {
        // Piece lies inside the window and maps to the file correctly.
        EXPECT_LE(p.window_off + p.length, w.span.length);
        for (u64 b = 0; b < p.length; ++b) {
          ASSERT_LT(p.stream_off + b, s_req);
          ASSERT_FALSE(seen[p.stream_off + b]);
          seen[p.stream_off + b] = true;
        }
      }
    }
    for (u64 b = 0; b < s_req; ++b) ASSERT_TRUE(seen[b]);
  }
}

}  // namespace
}  // namespace pvfsib::core
