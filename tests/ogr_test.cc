#include "core/ogr.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace pvfsib::core {
namespace {

class OgrTest : public ::testing::Test {
 protected:
  OgrTest() : hca_("c0", as_, RegParams{}, &stats_), cache_(hca_) {}

  GroupRegistrar make(OgrConfig cfg = {}) {
    return GroupRegistrar(cache_, OsParams{}, cfg, &stats_);
  }

  // Rows of a subarray: `rows` buffers of `row_bytes`, strided by
  // `stride_bytes` within one big allocation.
  MemSegmentList subarray_rows(u64 rows, u64 row_bytes, u64 stride_bytes) {
    const u64 base = as_.alloc(rows * stride_bytes);
    MemSegmentList segs;
    for (u64 r = 0; r < rows; ++r) {
      segs.push_back({base + r * stride_bytes, row_bytes});
    }
    return segs;
  }

  vmem::AddressSpace as_;
  Stats stats_;
  ib::Hca hca_;
  ib::MrCache cache_;
};

TEST_F(OgrTest, SubarrayRowsCollapseToOneGroup) {
  // 2048x2048 int array split 2x2: 1024 rows of 4 KiB strided 8 KiB.
  const MemSegmentList segs = subarray_rows(1024, 4 * kKiB, 8 * kKiB);
  GroupRegistrar ogr = make();
  // Hole between rows is 1 page; absorbing costs (0.77+0.23) us/page versus
  // 8.52 us for another op pair, so all rows group into one region.
  EXPECT_EQ(ogr.plan_groups(segs).size(), 1u);

  OgrOutcome out = ogr.acquire(segs);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.registrations, 1u);
  EXPECT_EQ(out.os_queries, 0u);
  EXPECT_EQ(out.sges.size(), segs.size());
  // SGEs preserve caller order and all carry the same group key.
  for (size_t i = 0; i < segs.size(); ++i) {
    EXPECT_EQ(out.sges[i].addr, segs[i].addr);
    EXPECT_EQ(out.sges[i].length, segs[i].length);
    EXPECT_EQ(out.sges[i].lkey, out.sges[0].lkey);
  }
  ogr.release(out);
}

TEST_F(OgrTest, LargeHolesSplitGroups) {
  // Two clusters of rows separated by a huge mapped gap: grouping keeps
  // them apart because pinning the gap costs more than a second op.
  MemSegmentList a = subarray_rows(4, kPageSize, 2 * kPageSize);
  const u64 gap = as_.alloc(64 * kMiB);  // mapped but unwanted
  (void)gap;
  MemSegmentList b = subarray_rows(4, kPageSize, 2 * kPageSize);
  MemSegmentList all = a;
  all.insert(all.end(), b.begin(), b.end());

  GroupRegistrar ogr = make();
  EXPECT_EQ(ogr.plan_groups(all).size(), 2u);
  OgrOutcome out = ogr.acquire(all);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.registrations, 2u);
  ogr.release(out);
}

TEST_F(OgrTest, UnmappedHoleTriggersOsQueryFallback) {
  // Many small buffers with unmapped holes between them: the optimistic
  // group registration fails, the registrar queries the OS and registers
  // exactly the mapped extents (Table 4's "OGR+Q" case).
  MemSegmentList segs;
  for (int i = 0; i < 64; ++i) {
    const u64 a = as_.alloc(kPageSize);
    segs.push_back({a, kPageSize});
    if (i % 4 == 3) as_.skip(kPageSize);  // unmapped hole every 4 buffers
  }
  GroupRegistrar ogr = make();
  OgrOutcome out = ogr.acquire(segs);
  ASSERT_TRUE(out.ok());
  EXPECT_GE(out.failed_attempts, 1u);
  EXPECT_GE(out.os_queries, 1u);
  // 16 mapped extents (one per cluster of 4 pages).
  EXPECT_EQ(out.registrations, 16u);
  // Every buffer still resolves to a covering MR.
  EXPECT_TRUE(hca_.validate_sges(out.sges).is_ok());
  ogr.release(out);
}

TEST_F(OgrTest, FewBuffersFallBackIndividually) {
  MemSegmentList segs;
  for (int i = 0; i < 3; ++i) {
    segs.push_back({as_.alloc(kPageSize), kPageSize});
    as_.skip(kPageSize);
  }
  OgrConfig cfg;
  cfg.individual_fallback_max = 8;
  GroupRegistrar ogr = make(cfg);
  OgrOutcome out = ogr.acquire(segs);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.os_queries, 0u);  // cheap path: registered as given
  EXPECT_EQ(out.registrations, 3u);
  ogr.release(out);
}

TEST_F(OgrTest, IndividualStrategyRegistersEachBuffer) {
  const MemSegmentList segs = subarray_rows(100, 4 * kKiB, 8 * kKiB);
  GroupRegistrar ogr = make();
  OgrOutcome out = ogr.acquire(segs, RegStrategy::kIndividual);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.registrations, 100u);
  // Cost is roughly the paper's 1020us-per-100-4kB-buffers figure (without
  // deregistration, which happens on cache eviction).
  EXPECT_GT(out.cost.as_us(), 500.0);
  ogr.release(out);
}

TEST_F(OgrTest, WholeRangeStrategyFailsOnUnmappedHoles) {
  MemSegmentList segs;
  segs.push_back({as_.alloc(kPageSize), kPageSize});
  as_.skip(4 * kPageSize);
  segs.push_back({as_.alloc(kPageSize), kPageSize});
  GroupRegistrar ogr = make();
  OgrOutcome out = ogr.acquire(segs, RegStrategy::kWholeRange);
  EXPECT_FALSE(out.ok());  // the naive scheme's documented flaw
  EXPECT_EQ(out.status.code(), ErrorCode::kPermissionDenied);
}

TEST_F(OgrTest, WarmCacheCostsNothing) {
  const MemSegmentList segs = subarray_rows(256, 4 * kKiB, 8 * kKiB);
  GroupRegistrar ogr = make();
  OgrOutcome cold = ogr.acquire(segs);
  ASSERT_TRUE(cold.ok());
  ogr.release(cold);
  OgrOutcome warm = ogr.acquire(segs);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm.cost, Duration::zero());
  EXPECT_EQ(warm.registrations, 0u);
  EXPECT_EQ(warm.cache_hits, 1u);  // one group, one hit
  ogr.release(warm);
}

TEST_F(OgrTest, OgrBeatsIndividualOnCost) {
  const MemSegmentList segs = subarray_rows(2048, 2 * kKiB, 4 * kKiB);
  GroupRegistrar ogr = make();
  OgrOutcome grouped = ogr.acquire(segs);
  ASSERT_TRUE(grouped.ok());
  ogr.release(grouped);
  cache_.flush();
  OgrOutcome individual = ogr.acquire(segs, RegStrategy::kIndividual);
  ASSERT_TRUE(individual.ok());
  ogr.release(individual);
  // The paper's headline: grouping cuts registration cost dramatically.
  EXPECT_LT(grouped.cost.as_us() * 5, individual.cost.as_us());
}

TEST_F(OgrTest, ProcfsQueryCostsMore) {
  MemSegmentList segs;
  for (int i = 0; i < 32; ++i) {
    segs.push_back({as_.alloc(kPageSize), kPageSize});
    as_.skip(kPageSize);
  }
  OgrConfig fast;
  GroupRegistrar a = make(fast);
  OgrOutcome fast_out = a.acquire(segs);
  ASSERT_TRUE(fast_out.ok());
  a.release(fast_out);
  cache_.flush();
  OgrConfig slow;
  slow.query = HoleQuery::kProcfs;
  GroupRegistrar b = make(slow);
  OgrOutcome slow_out = b.acquire(segs);
  ASSERT_TRUE(slow_out.ok());
  b.release(slow_out);
  EXPECT_GT(slow_out.cost, fast_out.cost);
  // mincore walks a per-page bitmap: cheap on this small span, and always
  // cheaper than reading /proc.
  cache_.flush();
  OgrConfig mc;
  mc.query = HoleQuery::kMincore;
  GroupRegistrar m = make(mc);
  OgrOutcome mc_out = m.acquire(segs);
  ASSERT_TRUE(mc_out.ok());
  m.release(mc_out);
  EXPECT_LT(mc_out.cost, slow_out.cost);
  // Its per-page cost overtakes the kernel syscall on large spans.
  const OsParams os;
  EXPECT_GT(os.mincore_cost(pages_for(64 * kMiB)),
            os.holequery_cost(1000));
}

TEST_F(OgrTest, DeclaredAllocationPinsOneRegion) {
  // The application tells the library its buffers come from one array
  // (Section 4.2.1): a single registration, no grouping or optimism.
  const MemSegmentList segs = subarray_rows(512, 4 * kKiB, 8 * kKiB);
  const Extent alloc{page_floor(segs.front().addr), 512 * 8 * kKiB};
  GroupRegistrar ogr = make();
  OgrOutcome out = ogr.acquire_declared(segs, alloc);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.registrations, 1u);
  EXPECT_EQ(out.failed_attempts, 0u);
  for (size_t i = 0; i < segs.size(); ++i) {
    EXPECT_EQ(out.sges[i].addr, segs[i].addr);
    EXPECT_EQ(out.sges[i].lkey, out.sges[0].lkey);
  }
  EXPECT_TRUE(hca_.validate_sges(out.sges).is_ok());
  ogr.release(out);
}

TEST_F(OgrTest, DeclaredAllocationRejectsOutsideSegments) {
  const MemSegmentList segs = subarray_rows(4, kPageSize, 2 * kPageSize);
  // Declared region too small: last row is outside.
  const Extent alloc{segs.front().addr, 3 * 2 * kPageSize};
  GroupRegistrar ogr = make();
  OgrOutcome out = ogr.acquire_declared(segs, alloc);
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.status.code(), ErrorCode::kInvalidArgument);
}

TEST_F(OgrTest, DeclaredAllocationFailsOnUnmappedRegion) {
  MemSegmentList segs;
  segs.push_back({as_.alloc(kPageSize), kPageSize});
  as_.skip(2 * kPageSize);
  segs.push_back({as_.alloc(kPageSize), kPageSize});
  const Extent alloc = bounding_span(
      {Extent{segs[0].addr, segs[0].length},
       Extent{segs[1].addr, segs[1].length}});
  GroupRegistrar ogr = make();
  OgrOutcome out = ogr.acquire_declared(segs, alloc);
  // The declared allocation covers an unmapped hole: the lie is caught.
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.status.code(), ErrorCode::kPermissionDenied);
}

TEST_F(OgrTest, EmptyInputRejected) {
  GroupRegistrar ogr = make();
  EXPECT_FALSE(ogr.acquire({}).ok());
}

// Property: for random buffer layouts (mapped and unmapped holes), acquire
// either fails cleanly or yields SGEs that validate, in input order.
TEST_F(OgrTest, RandomLayoutsAlwaysResolve) {
  Rng rng(77);
  for (int iter = 0; iter < 30; ++iter) {
    MemSegmentList segs;
    const int n = static_cast<int>(rng.range(1, 64));
    for (int i = 0; i < n; ++i) {
      const u64 len = rng.range(64, 4 * kPageSize);
      const u64 a = as_.alloc(len);
      segs.push_back({a, len});
      if (rng.chance(0.3)) as_.skip(rng.range(1, 8) * kPageSize);
    }
    // Shuffle to a non-sorted request order.
    for (size_t i = segs.size(); i > 1; --i) {
      std::swap(segs[i - 1], segs[rng.below(i)]);
    }
    GroupRegistrar ogr = make();
    OgrOutcome out = ogr.acquire(segs);
    ASSERT_TRUE(out.ok());
    ASSERT_EQ(out.sges.size(), segs.size());
    for (size_t i = 0; i < segs.size(); ++i) {
      EXPECT_EQ(out.sges[i].addr, segs[i].addr);
      EXPECT_EQ(out.sges[i].length, segs[i].length);
    }
    EXPECT_TRUE(hca_.validate_sges(out.sges).is_ok());
    ogr.release(out);
    cache_.flush();
  }
}

}  // namespace
}  // namespace pvfsib::core
