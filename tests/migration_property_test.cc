// Randomized live-resharding property: a migration or split launched at a
// random point of a replicated, crash-ridden workload must never lose an
// acked byte or wedge a client. The cluster shape, the reshard kind and
// time, iod crash windows, a racing manager crash (with standby takeover)
// and a scheduled target crash are all drawn from the seed; a host-side
// mirror of every acked byte is the oracle. Whether the reshard completes
// or aborts is schedule-dependent — the invariant is that either way the
// plane converges and the data reads back exactly.
// Replay a failing schedule with PVFS_PROPERTY_SEED=<seed>.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "common/rng.h"
#include "pvfs/cluster.h"

namespace pvfsib::pvfs {
namespace {

TEST(MigrationProperty, RandomReshardsLoseNoAckedData) {
  u64 seed = 2026;
  if (const char* env = std::getenv("PVFS_PROPERTY_SEED")) {
    seed = std::strtoull(env, nullptr, 10);
  }
  SCOPED_TRACE("PVFS_PROPERTY_SEED=" + std::to_string(seed));
  Rng rng(seed);
  for (int iter = 0; iter < 3; ++iter) {
    ModelConfig cfg = ModelConfig::paper_defaults();
    cfg.fault.seed = seed + static_cast<u64>(iter);
    cfg.fault.round_timeout = Duration::ms(2.0);
    cfg.fault.backoff_base = Duration::us(100.0);
    cfg.fault.backoff_cap = Duration::ms(2.0);
    cfg.fault.max_retries = 25;
    cfg.replication.factor = 2;
    cfg.replication.resync = true;
    cfg.replication.write_quorum = 1;
    const u32 shards = 1 + static_cast<u32>(rng.below(3));
    cfg.pvfs.metadata_shards = shards;
    const bool standbys = rng.chance(0.5);
    cfg.fault.standby_takeover = standbys;
    // Small rounds so the stream is long enough for faults to land in it.
    cfg.migration.round_bytes = 256 + rng.below(2048);
    const bool do_split = rng.chance(0.4);
    const u32 mshard = static_cast<u32>(rng.below(shards));
    const TimePoint mat =
        TimePoint::from_ns(static_cast<i64>(rng.range(8'000'000, 30'000'000)));

    const u32 iods = 2 + static_cast<u32>(rng.below(3));
    const u32 x = static_cast<u32>(rng.below(iods));  // the stripe's home
    const u64 n = rng.range(16 * kKiB, 64 * kKiB);
    // Random short iod crash windows, well inside the retry budget.
    const int crashes = static_cast<int>(rng.below(3));
    for (int k = 0; k < crashes; ++k) {
      cfg.fault.schedule.push_back(FaultEvent{
          FaultKind::kIodCrash,
          TimePoint::from_ns(
              static_cast<i64>(rng.range(8'000'000, 40'000'000))),
          static_cast<u32>(rng.below(iods)),
          Duration::us(static_cast<double>(rng.range(500, 6000)))});
    }
    // Sometimes the migration target dies mid-stream (abort, fall back).
    if (rng.chance(0.35)) {
      cfg.fault.schedule.push_back(FaultEvent{
          FaultKind::kMigrationTargetCrash,
          mat + Duration::us(static_cast<double>(rng.range(1, 400))), mshard,
          Duration::zero()});
    }
    // Sometimes the source's shard crashes near the stream; with standbys
    // the takeover races (and aborts) it, without them the window just
    // stalls the source briefly.
    if (rng.chance(0.35)) {
      cfg.fault.schedule.push_back(FaultEvent{
          FaultKind::kManagerCrash,
          mat + Duration::us(static_cast<double>(rng.range(1, 2000))),
          mshard, Duration::ms(standbys ? 1000.0 : 4.0)});
      cfg.fault.manager_takeover_delay =
          Duration::us(static_cast<double>(rng.range(200, 2000)));
    }
    SCOPED_TRACE("iter " + std::to_string(iter) + ": " +
                 std::to_string(shards) + " shards, " +
                 (do_split ? "split" : "migrate shard " +
                                           std::to_string(mshard)) +
                 " at " + std::to_string(mat.as_ns()) + "ns, " +
                 std::to_string(iods) + " iods, n=" + std::to_string(n) +
                 (standbys ? ", standbys" : ""));
    Cluster cluster(cfg, 1, iods);
    Client& c = cluster.client(0);
    OpenFile f = c.create("/reshard", 64 * kKiB, 1, x).value();

    // Preload [0, n); the mirror tracks every byte the file system acked.
    std::vector<u8> mirror(n);
    Rng fillr(seed * 131 + static_cast<u64>(iter));
    const u64 a = c.memory().alloc(n);
    for (u64 i = 0; i < n; ++i) {
      mirror[i] = static_cast<u8>(fillr.next());
      c.memory().write_pod<u8>(a + i, mirror[i]);
    }
    ASSERT_TRUE(c.write(f, 0, a, n).ok());

    // Four disjoint overwrites straddling the reshard window; each byte
    // differs from the preload (xor 0xa5) so a lost write cannot hide.
    constexpr int kWrites = 4;
    const u64 slice = (n / 2) / kWrites;
    std::vector<IoHandle> ws(kWrites);
    for (int k = 0; k < kWrites; ++k) {
      const u64 off = static_cast<u64>(k) * slice + rng.below(slice / 2);
      const u64 len = rng.range(1, slice / 2);
      const u64 b = c.memory().alloc(len);
      for (u64 i = 0; i < len; ++i) {
        const u8 v = static_cast<u8>(mirror[off + i] ^ 0xa5);
        c.memory().write_pod<u8>(b + i, v);
        mirror[off + i] = v;
      }
      const TimePoint at = TimePoint::origin() + Duration::ms(6.0 + 7.0 * k);
      cluster.engine().schedule_at(at, [&c, &ws, &f, b, off, len, at, k] {
        core::ListIoRequest req;
        req.mem = {{b, len}};
        req.file = {{off, len}};
        ws[static_cast<size_t>(k)] = c.submit({IoDir::kWrite, f, req, {}, at});
      });
    }
    // The reshard itself, mid-workload.
    cluster.engine().schedule_at(mat, [&cluster, do_split, mshard, mat] {
      if (do_split) {
        EXPECT_TRUE(cluster.split_shards(mat));
      } else {
        EXPECT_TRUE(cluster.migrate_shard(mshard, mat));
      }
    });
    // Full read-back long after everything settled.
    const u64 dst = c.memory().alloc(n);
    IoHandle rh;
    const TimePoint rat = TimePoint::origin() + Duration::ms(500.0);
    cluster.engine().schedule_at(rat, [&, rat] {
      core::ListIoRequest req;
      req.mem = {{dst, n}};
      req.file = {{0, n}};
      rh = c.submit({IoDir::kRead, f, req, {}, rat});
    });
    cluster.engine().run_until([&rh] { return rh.valid() && rh.poll(); });

    for (int k = 0; k < kWrites; ++k) {
      ASSERT_TRUE(ws[static_cast<size_t>(k)].poll());
      ASSERT_TRUE(ws[static_cast<size_t>(k)].result().ok())
          << "write " << k << ": "
          << ws[static_cast<size_t>(k)].result().status.to_string();
    }
    ASSERT_TRUE(rh.poll() && rh.result().ok())
        << rh.result().status.to_string();
    u64 bad = 0;
    for (u64 i = 0; i < n; ++i) {
      if (c.memory().read_pod<u8>(dst + i) != mirror[i]) ++bad;
    }
    if (bad != 0) {
      std::fprintf(stderr, "STATS:\n%s\n", cluster.stats().to_string().c_str());
    }
    ASSERT_EQ(bad, 0u);
    // The reshard resolved exactly one way: completed or aborted, never
    // both, never neither, and nothing is left in flight.
    const Stats& s = cluster.stats();
    const i64 done = s.get(stat::kPvfsShardMigrations) +
                     s.get(stat::kPvfsShardSplits);
    const i64 aborted = s.get(stat::kPvfsMigrationAborts);
    EXPECT_EQ(done + aborted, 1) << "done=" << done << " aborted=" << aborted;
    EXPECT_FALSE(cluster.migration_inflight());
    if (done == 1) {
      EXPECT_EQ(cluster.metadata_shards(), do_split ? 2 * shards : shards);
      // Post-reshard metadata ops land on the new plane.
      EXPECT_TRUE(c.open("/reshard").is_ok());
    }
  }
}

}  // namespace
}  // namespace pvfsib::pvfs
