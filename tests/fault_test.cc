// The fault plane and the recovery layer on top of it: injected request/
// reply drops, transport retransmits, completion errors, iod crash windows
// and degraded disks, against the client's per-round timeout + backoff +
// idempotent-replay machinery.
//
// The load-bearing properties:
//   1. a trivial FaultConfig leaves zero trace — no fault/recovery counters
//      appear at all (profile tables stay seed-identical),
//   2. every recoverable fault is retried to completion and the data is
//      byte-for-byte correct afterwards,
//   3. replayed write rounds whose reply was lost are recognised by
//      round_seq at the iod and acked without re-running the disk, and
//   4. a fault outliving the retry budget surfaces as a terminal non-ok
//      IoResult instead of hanging or silently succeeding.
#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "pvfs/cluster.h"

namespace pvfsib::pvfs {
namespace {

void fill(Client& c, u64 addr, u64 n, u64 seed) {
  std::byte* p = c.memory().data(addr);
  for (u64 i = 0; i < n; ++i) {
    p[i] = static_cast<std::byte>((seed * 131 + i * 7) & 0xff);
  }
}

bool equal_mem(Client& c, u64 a, u64 b, u64 n) {
  return std::memcmp(c.memory().data(a), c.memory().data(b), n) == 0;
}

// A noncontiguous request large enough for several rounds per iod.
core::ListIoRequest strided_request(Client& c, u64 pieces, u64 piece_len) {
  core::ListIoRequest req;
  const u64 buf = c.memory().alloc(pieces * piece_len);
  for (u64 i = 0; i < pieces; ++i) {
    req.mem.push_back({buf + i * piece_len, piece_len});
    req.file.push_back({i * 4 * piece_len, piece_len});
  }
  return req;
}

// Fast-recovery policy so faulty tests finish in little virtual time.
ModelConfig faulty_config() {
  ModelConfig cfg = ModelConfig::paper_defaults();
  cfg.fault.seed = 7;
  cfg.fault.round_timeout = Duration::ms(2.0);
  cfg.fault.backoff_base = Duration::us(100.0);
  cfg.fault.backoff_cap = Duration::ms(2.0);
  cfg.fault.max_retries = 25;
  return cfg;
}

// Write a strided pattern, read it back, and byte-compare. Returns the
// write result so callers can inspect retries/recovered().
IoResult round_trip(Cluster& cluster, u64 pieces = 128, u64 piece_len = 2048) {
  Client& c = cluster.client(0);
  OpenFile f = c.create("/rt").value();
  core::ListIoRequest req = strided_request(c, pieces, piece_len);
  fill(c, req.mem.front().addr, pieces * piece_len, 11);
  IoResult w = c.write_list(f, req);
  EXPECT_TRUE(w.ok()) << w.status.to_string();

  core::ListIoRequest back = req;
  const u64 dst = c.memory().alloc(pieces * piece_len);
  for (u64 i = 0; i < pieces; ++i) back.mem[i] = {dst + i * piece_len,
                                                  piece_len};
  IoResult r = c.read_list(f, back);
  EXPECT_TRUE(r.ok()) << r.status.to_string();
  for (u64 i = 0; i < pieces; ++i) {
    EXPECT_TRUE(equal_mem(c, req.mem[i].addr, back.mem[i].addr, piece_len))
        << "piece " << i << " corrupted";
  }
  return w;
}

// --- 1. zero-fault runs leave no trace ---------------------------------

TEST(FaultTest, TrivialConfigReportsNoFaultOrRecoveryCounters) {
  ASSERT_FALSE(ModelConfig::paper_defaults().fault.enabled());
  Cluster cluster(ModelConfig::paper_defaults(), 2, 2);
  round_trip(cluster);
  for (const auto& [name, value] : cluster.stats().counters()) {
    EXPECT_EQ(name.find("fault."), std::string::npos) << name << "=" << value;
    EXPECT_NE(name, stat::kPvfsRetries);
    EXPECT_NE(name, stat::kPvfsTimeouts);
    EXPECT_NE(name, stat::kPvfsReplaysDeduped);
    EXPECT_NE(name, stat::kPvfsMetaRetries);
    EXPECT_NE(name, stat::kPvfsPartialRestarts);
    EXPECT_NE(name, stat::kPvfsReplicaWrites);
    EXPECT_NE(name, stat::kPvfsQuorumWaits);
    EXPECT_NE(name, stat::kPvfsFailovers);
    EXPECT_NE(name, stat::kPvfsReadRepairs);
    EXPECT_NE(name, stat::kPvfsStaleReadsAvoided);
    EXPECT_NE(name, stat::kPvfsResyncStripes);
    EXPECT_NE(name, stat::kPvfsResyncRounds);
    EXPECT_NE(name, stat::kPvfsMetaFailovers);
    EXPECT_NE(name, stat::kPvfsEpochRejections);
    EXPECT_NE(name, stat::kPvfsManagerTakeovers);
    EXPECT_NE(name, stat::kPvfsShardRedirects);
    EXPECT_NE(name, stat::kPvfsShardMapRefreshes);
    EXPECT_NE(name, stat::kPvfsVersionRemints);
    EXPECT_NE(name, stat::kPvfsCorruptionsDetected);
    EXPECT_NE(name, stat::kPvfsCorruptReadsFailedOver);
    EXPECT_NE(name, stat::kPvfsCorruptionsRepaired);
    EXPECT_NE(name, stat::kPvfsScrubChunks);
    EXPECT_NE(name, stat::kPvfsScrubBytes);
    EXPECT_NE(name, stat::kPvfsScrubCorruptions);
    EXPECT_NE(name, stat::kPvfsScrubStaleHeaders);
  }
}

TEST(FaultTest, RecoveryKnobsAloneDoNotEnableTheFaultPlane) {
  ModelConfig cfg = ModelConfig::paper_defaults();
  cfg.fault.round_timeout = Duration::ms(1.0);
  cfg.fault.max_retries = 99;
  EXPECT_FALSE(cfg.fault.enabled());
}

// --- 2. recoverable faults are retried to completion -------------------

TEST(FaultTest, RequestDropsAreRetriedToCorrectCompletion) {
  ModelConfig cfg = faulty_config();
  cfg.fault.request_drop_rate = 0.15;
  Cluster cluster(cfg, 1, 4);
  // Enough pieces for several list rounds per iod, so the write phase is
  // statistically certain to lose at least one request.
  IoResult w = round_trip(cluster, /*pieces=*/2048, /*piece_len=*/2048);
  // With ~hundreds of rounds at 15% drop, recovery must have fired.
  EXPECT_GT(cluster.stats().get(stat::kFaultRequestDrop), 0);
  EXPECT_GT(cluster.stats().get(stat::kPvfsTimeouts), 0);
  EXPECT_GT(cluster.stats().get(stat::kPvfsRetries), 0);
  EXPECT_TRUE(w.recovered());
  EXPECT_GT(w.retries, 0u);
}

TEST(FaultTest, RetransmitsAndLatencySpikesOnlyAddLatency) {
  ModelConfig clean = ModelConfig::paper_defaults();
  Cluster base(clean, 1, 2);
  const IoResult w0 = round_trip(base);

  ModelConfig cfg = faulty_config();
  cfg.fault.retransmit_rate = 0.3;
  cfg.fault.latency_spike_rate = 0.3;
  cfg.fault.round_timeout = Duration::ms(250.0);  // spikes must not time out
  Cluster cluster(cfg, 1, 2);
  const IoResult w1 = round_trip(cluster);

  EXPECT_GT(cluster.stats().get(stat::kFaultRetransmit), 0);
  EXPECT_GT(cluster.stats().get(stat::kFaultLatencySpike), 0);
  // Transport-absorbed faults never fail a round, they just cost time.
  EXPECT_EQ(cluster.stats().get(stat::kPvfsRetries), 0);
  EXPECT_GT(w1.elapsed(), w0.elapsed());
}

TEST(FaultTest, CompletionErrorsAreRetried) {
  ModelConfig cfg = faulty_config();
  cfg.fault.completion_error_rate = 0.15;
  Cluster cluster(cfg, 1, 4);
  round_trip(cluster, /*pieces=*/2048, /*piece_len=*/2048);
  EXPECT_GT(cluster.stats().get(stat::kFaultCompletionError), 0);
  EXPECT_GT(cluster.stats().get(stat::kPvfsRetries), 0);
}

// --- 3. lost replies are replayed and deduped at the iod ----------------

TEST(FaultTest, LostWriteRepliesAreReplayedWithoutReapplying) {
  ModelConfig cfg = faulty_config();
  cfg.fault.reply_drop_rate = 0.2;
  Cluster cluster(cfg, 1, 4);
  round_trip(cluster, /*pieces=*/2048, /*piece_len=*/2048);
  EXPECT_GT(cluster.stats().get(stat::kFaultReplyDrop), 0);
  // Every dropped *write* reply forces a replay the iod must recognise.
  EXPECT_GT(cluster.stats().get(stat::kPvfsReplaysDeduped), 0);
}

// --- 4. iod crash windows ----------------------------------------------

TEST(FaultTest, CrashWithRestartIsRiddenOutByRetries) {
  ModelConfig cfg = faulty_config();
  // iod 0 is down for the first 8 ms of the run, then comes back.
  cfg.fault.schedule.push_back(FaultEvent{FaultKind::kIodCrash,
                                          TimePoint::origin(), 0,
                                          Duration::ms(8.0)});
  Cluster cluster(cfg, 1, 4);
  IoResult w = round_trip(cluster);
  EXPECT_EQ(cluster.stats().get(stat::kFaultIodCrash), 1);
  EXPECT_GT(cluster.stats().get(stat::kPvfsRetries), 0);
  EXPECT_TRUE(w.recovered());
}

TEST(FaultTest, CrashOutlivingTheRetryBudgetIsTerminal) {
  ModelConfig cfg = faulty_config();
  cfg.fault.max_retries = 2;
  cfg.fault.schedule.push_back(FaultEvent{FaultKind::kIodCrash,
                                          TimePoint::origin(), 0,
                                          Duration::sec(1000.0)});
  Cluster cluster(cfg, 1, 4);
  Client& c = cluster.client(0);
  // Pin the file to the dead iod so the failure is guaranteed.
  OpenFile f = c.create("/dead", 64 * kKiB, 1, /*base_iod=*/0).value();
  const u64 n = 64 * kKiB;
  const u64 src = c.memory().alloc(n);
  fill(c, src, n, 3);
  IoResult w = c.write(f, 0, src, n);
  EXPECT_FALSE(w.ok());
  EXPECT_FALSE(w.recovered());
  EXPECT_EQ(w.status.code(), ErrorCode::kUnavailable)
      << w.status.to_string();
  EXPECT_NE(w.status.message().find("retries"), std::string::npos)
      << w.status.to_string();
}

// --- 5. degraded disk ---------------------------------------------------

TEST(FaultTest, DegradedDiskSlowsSyncWritesWithoutCorruption) {
  auto timed_sync_write = [](const ModelConfig& cfg) {
    Cluster cluster(cfg, 1, 2);
    Client& c = cluster.client(0);
    OpenFile f = c.create("/deg").value();
    const u64 n = 1 * kMiB;
    const u64 src = c.memory().alloc(n);
    fill(c, src, n, 5);
    IoResult w = c.write(f, 0, src, n, IoOptions{}.with_sync());
    EXPECT_TRUE(w.ok()) << w.status.to_string();
    return w.elapsed();
  };
  const Duration healthy = timed_sync_write(ModelConfig::paper_defaults());
  ModelConfig cfg = ModelConfig::paper_defaults();
  cfg.fault.disk_degrade.push_back({/*iod=*/0, /*factor=*/25.0,
                                    TimePoint::origin()});
  const Duration degraded = timed_sync_write(cfg);
  EXPECT_GT(degraded, healthy);
}

// --- 6. partial-round restart -------------------------------------------

TEST(FaultTest, ReplaysWithLandedPayloadSkipTheWirePhase) {
  ModelConfig cfg = faulty_config();
  cfg.fault.reply_drop_rate = 0.2;
  Cluster cluster(cfg, 1, 4);
  round_trip(cluster, /*pieces=*/2048, /*piece_len=*/2048);
  const Stats& s = cluster.stats();
  EXPECT_GT(s.get(stat::kFaultReplyDrop), 0);
  // A dropped *reply* means the payload already landed and was applied; the
  // replay goes out staged (no data phase) and the iod acks it via its
  // round_seq dedupe. With only reply drops every write replay is staged,
  // and every staged replay reaches the iod, so dedupes dominate restarts.
  EXPECT_GT(s.get(stat::kPvfsPartialRestarts), 0);
  EXPECT_LE(s.get(stat::kPvfsPartialRestarts),
            s.get(stat::kPvfsReplaysDeduped));
}

// --- 7. metadata retry ---------------------------------------------------

TEST(FaultTest, LostMetadataRequestsAreRetriedWithBackoff) {
  ModelConfig cfg = faulty_config();
  cfg.fault.meta_request_drop_rate = 0.4;
  Cluster cluster(cfg, 1, 2);
  Client& c = cluster.client(0);
  // Enough metadata round-trips that several are statistically lost; every
  // one must still come back with a real answer.
  for (int i = 0; i < 12; ++i) {
    const std::string name = "/m" + std::to_string(i);
    Result<OpenFile> f = c.create(name);
    ASSERT_TRUE(f.is_ok()) << f.status().to_string();
    ASSERT_TRUE(c.open(name).is_ok());
  }
  EXPECT_GT(cluster.stats().get(stat::kPvfsMetaRetries), 0);
}

TEST(FaultTest, MetadataOutageOutlivingRetriesIsTerminal) {
  ModelConfig cfg = faulty_config();
  cfg.fault.meta_request_drop_rate = 1.0;
  cfg.fault.max_retries = 3;
  Cluster cluster(cfg, 1, 2);
  Result<OpenFile> f = cluster.client(0).create("/never");
  EXPECT_FALSE(f.is_ok());
  EXPECT_EQ(f.status().code(), ErrorCode::kUnavailable);
  EXPECT_EQ(cluster.stats().get(stat::kPvfsMetaRetries), 3);
}

// --- 8. adaptive round timeouts ------------------------------------------

TEST(FaultTest, AdaptiveTimeoutDetectsDropsFasterThanStatic) {
  // Same workload, same faults, same pessimistic static timeout; the only
  // difference is whether the client may tighten it from observed RTTs.
  auto elapsed_with = [](bool adaptive) {
    ModelConfig cfg = ModelConfig::paper_defaults();
    cfg.fault.seed = 9;
    cfg.fault.request_drop_rate = 0.15;
    cfg.fault.round_timeout = Duration::ms(40.0);
    cfg.fault.backoff_base = Duration::us(100.0);
    cfg.fault.backoff_cap = Duration::ms(1.0);
    cfg.fault.max_retries = 50;
    cfg.fault.adaptive_timeout = adaptive;
    Cluster cluster(cfg, 1, 4);
    IoResult w = round_trip(cluster, /*pieces=*/2048, /*piece_len=*/2048);
    EXPECT_TRUE(w.ok()) << w.status.to_string();
    EXPECT_GT(cluster.stats().get(stat::kPvfsTimeouts), 0);
    return w.elapsed();
  };
  const Duration learned = elapsed_with(true);
  const Duration fixed = elapsed_with(false);
  // Every drop costs a full 40 ms under the static policy but only
  // ~srtt + 4*rttvar once the estimator has samples.
  EXPECT_LT(learned, fixed);
}

// --- 9. stripe replication -----------------------------------------------

TEST(ReplicationTest, WriteRidesOutCrashViaReplayAndQuorum) {
  ModelConfig cfg = faulty_config();
  cfg.replication.factor = 2;  // write_quorum 0: every replica must ack
  // One iod is down for the first 8 ms, well inside the retry budget;
  // write rounds whose primary or backup lives there replay until it
  // restarts, then the round settles on the full quorum.
  cfg.fault.schedule.push_back(FaultEvent{FaultKind::kIodCrash,
                                          TimePoint::origin(), 0,
                                          Duration::ms(8.0)});
  Cluster cluster(cfg, 1, 4);
  IoResult w = round_trip(cluster);
  EXPECT_TRUE(w.ok()) << w.status.to_string();
  EXPECT_TRUE(w.recovered());
  EXPECT_GT(cluster.stats().get(stat::kPvfsReplicaWrites), 0);
  EXPECT_GT(cluster.stats().get(stat::kPvfsRetries), 0);
}

TEST(ReplicationTest, QuorumOneSettlesOnTheSurvivingReplica) {
  ModelConfig cfg = faulty_config();
  cfg.replication.factor = 2;
  cfg.replication.write_quorum = 1;
  // Single-stripe file pinned to primary iod 0, backup iod 1; the backup
  // is dead for the whole run.
  cfg.fault.schedule.push_back(FaultEvent{FaultKind::kIodCrash,
                                          TimePoint::origin(), 1,
                                          Duration::sec(1000.0)});
  Cluster cluster(cfg, 1, 4);
  Client& c = cluster.client(0);
  OpenFile f = c.create("/q1", 64 * kKiB, 1, /*base_iod=*/0).value();
  const u64 n = 32 * kKiB;
  const u64 src = c.memory().alloc(n);
  fill(c, src, n, 17);
  IoResult w = c.write(f, 0, src, n);
  // The primary's ack alone reaches the quorum: no timeout fires, no
  // retries, the dead backup costs nothing but the fan-out send.
  EXPECT_TRUE(w.ok()) << w.status.to_string();
  EXPECT_EQ(w.retries, 0u);
  EXPECT_GT(cluster.stats().get(stat::kPvfsReplicaWrites), 0);
  const u64 dst = c.memory().alloc(n);
  ASSERT_TRUE(c.read(f, 0, dst, n).ok());
  EXPECT_TRUE(equal_mem(c, src, dst, n));
}

TEST(ReplicationTest, ReadFailsOverToBackupWhenPrimaryCrashes) {
  ModelConfig cfg = faulty_config();
  cfg.replication.factor = 2;
  // Primary iod 0 is healthy while the write lands on both replicas, then
  // crashes for longer than any retry budget.
  cfg.fault.schedule.push_back(
      FaultEvent{FaultKind::kIodCrash,
                 TimePoint::origin() + Duration::ms(50.0), 0,
                 Duration::sec(1000.0)});
  Cluster cluster(cfg, 1, 4);
  Client& c = cluster.client(0);
  OpenFile f = c.create("/fo", 64 * kKiB, 1, /*base_iod=*/0).value();
  const u64 n = 32 * kKiB;
  const u64 src = c.memory().alloc(n);
  fill(c, src, n, 21);
  ASSERT_TRUE(c.write(f, 0, src, n).ok());

  // Issue the read inside the crash window, from an engine event (the
  // fabric computes wire occupancy in call order, so sends must be issued
  // in nondecreasing virtual time).
  const u64 dst = c.memory().alloc(n);
  core::ListIoRequest rreq;
  rreq.mem = {{dst, n}};
  rreq.file = {{0, n}};
  const TimePoint at = TimePoint::origin() + Duration::ms(60.0);
  IoHandle h;
  cluster.engine().schedule_at(at, [&] {
    IoDesc d;
    d.dir = IoDir::kRead;
    d.file = f;
    d.req = rreq;
    d.start = at;
    h = c.submit(d);
  });
  cluster.run();
  ASSERT_TRUE(h.poll());
  const IoResult r = h.result();
  EXPECT_TRUE(r.ok()) << r.status.to_string();
  EXPECT_TRUE(r.recovered());
  EXPECT_GE(cluster.stats().get(stat::kPvfsFailovers), 1);
  EXPECT_TRUE(equal_mem(c, src, dst, n));
}

// --- 10. version plane: staleness, read-repair, resync --------------------

// Chain {iod0, iod1} on a width-1 file: preload pattern A while healthy
// (both replicas current at v1), then write pattern B while iod0 is down
// over [10 ms, 40 ms) — quorum 1 settles it on iod1's ack alone, leaving
// iod0 recorded stale at v1 with latest v2.
struct StalePrimary {
  static constexpr u64 kN = 32 * kKiB;
  std::unique_ptr<Cluster> cluster;
  OpenFile f;
  u64 a = 0, b = 0;  // pattern buffers: the old and the acked-latest data
};

StalePrimary stale_primary_setup(ModelConfig cfg) {
  cfg.replication.factor = 2;
  cfg.replication.write_quorum = 1;
  cfg.fault.schedule.push_back(
      FaultEvent{FaultKind::kIodCrash,
                 TimePoint::origin() + Duration::ms(10.0), /*target=*/0,
                 Duration::ms(30.0)});
  StalePrimary s;
  s.cluster = std::make_unique<Cluster>(cfg, 1, 2);
  Client& c = s.cluster->client(0);
  s.f = c.create("/stale", 64 * kKiB, 1, /*base_iod=*/0).value();
  s.a = c.memory().alloc(StalePrimary::kN);
  s.b = c.memory().alloc(StalePrimary::kN);
  fill(c, s.a, StalePrimary::kN, 3);
  fill(c, s.b, StalePrimary::kN, 9);
  EXPECT_TRUE(c.write(s.f, 0, s.a, StalePrimary::kN).ok());
  IoHandle w;
  const TimePoint at = TimePoint::origin() + Duration::ms(15.0);
  s.cluster->engine().schedule_at(at, [&s, &c, &w, at] {
    core::ListIoRequest req;
    req.mem = {{s.b, StalePrimary::kN}};
    req.file = {{0, StalePrimary::kN}};
    w = c.submit({IoDir::kWrite, s.f, req, {}, at});
  });
  s.cluster->engine().run_until([&w] { return w.valid() && w.poll(); });
  EXPECT_TRUE(w.poll() && w.result().ok());
  return s;
}

// Read the whole file at `at` into a fresh buffer; returns {result, buf}.
std::pair<IoResult, u64> read_at(Cluster& cluster, const OpenFile& f,
                                 Duration at_offset, u64 n) {
  Client& c = cluster.client(0);
  const u64 dst = c.memory().alloc(n);
  const TimePoint at = TimePoint::origin() + at_offset;
  IoHandle h;
  cluster.engine().schedule_at(at, [&, at] {
    core::ListIoRequest req;
    req.mem = {{dst, n}};
    req.file = {{0, n}};
    h = c.submit({IoDir::kRead, f, req, {}, at});
  });
  cluster.engine().run_until([&h] { return h.valid() && h.poll(); });
  EXPECT_TRUE(h.poll());
  return {h.result(), dst};
}

TEST(VersionPlaneTest, PlacementAvoidsStaleReplicaWithoutFailover) {
  StalePrimary s = stale_primary_setup(faulty_config());
  Client& c = s.cluster->client(0);
  // iod0 is back up (and would happily serve v1); the staleness map routes
  // the read to the current backup with no failed round and no failover.
  auto [r, dst] = read_at(*s.cluster, s.f, Duration::ms(200.0),
                          StalePrimary::kN);
  EXPECT_TRUE(r.ok()) << r.status.to_string();
  EXPECT_EQ(r.retries, 0u);
  EXPECT_EQ(r.failovers, 0u);
  EXPECT_TRUE(equal_mem(c, s.b, dst, StalePrimary::kN));
  EXPECT_EQ(s.cluster->stats().get(stat::kPvfsStaleReadsAvoided), 1);
}

TEST(VersionPlaneTest, ReadRepairHealsStaleReplicaContent) {
  StalePrimary s = stale_primary_setup(faulty_config());
  Client& c = s.cluster->client(0);
  const Handle h = s.f.meta.handle;
  // Before the read: iod0 still holds pattern A at header v1.
  EXPECT_EQ(s.cluster->iod(0).stripe_version(h), 1u);
  auto [r, dst] = read_at(*s.cluster, s.f, Duration::ms(200.0),
                          StalePrimary::kN);
  ASSERT_TRUE(r.ok()) << r.status.to_string();
  s.cluster->run();  // drain the async repair write
  EXPECT_GE(s.cluster->stats().get(stat::kPvfsReadRepairs), 1);
  // The repair scattered the just-read bytes into iod0's local file and
  // merged the header.
  EXPECT_EQ(s.cluster->iod(0).stripe_version(h), 2u);
  const std::span<const std::byte> healed =
      s.cluster->iod(0).file(h).contents();
  ASSERT_GE(healed.size(), StalePrimary::kN);
  EXPECT_EQ(std::memcmp(healed.data(), c.memory().data(s.b),
                        StalePrimary::kN),
            0);
  // Deliberately conservative: the manager still records iod0 stale (a
  // repair covers one round's range, not everything its version covers);
  // only write acks and resync mark a replica current.
  Manager::StripeVersionView v =
      s.cluster->manager().stripe_versions(h, 0);
  ASSERT_TRUE(v.known);
  EXPECT_EQ(v.replica_versions[0], 1u);
  EXPECT_EQ(v.latest, 2u);
}

TEST(VersionPlaneTest, AllReplicasFailedIsTerminalAndDistinct) {
  ModelConfig cfg = faulty_config();
  cfg.replication.factor = 2;
  cfg.fault.max_retries = 2;
  // Both members of the chain die at 50 ms and never come back.
  for (u32 iod : {0u, 1u}) {
    cfg.fault.schedule.push_back(
        FaultEvent{FaultKind::kIodCrash,
                   TimePoint::origin() + Duration::ms(50.0), iod,
                   Duration::sec(1000.0)});
  }
  Cluster cluster(cfg, 1, 2);
  Client& c = cluster.client(0);
  OpenFile f = c.create("/all", 64 * kKiB, 1, /*base_iod=*/0).value();
  const u64 n = 32 * kKiB;
  const u64 src = c.memory().alloc(n);
  fill(c, src, n, 13);
  ASSERT_TRUE(c.write(f, 0, src, n).ok());
  auto [r, dst] = read_at(cluster, f, Duration::ms(60.0), n);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status.code(), ErrorCode::kAllReplicasFailed)
      << r.status.to_string();
  // One failover (to the second and last replica), both budgets burned.
  EXPECT_EQ(r.failovers, 1u);
  EXPECT_GE(r.retries, 2u * cfg.fault.max_retries);
}

TEST(VersionPlaneTest, ReadBiasRoutesAroundDegradedReplica) {
  auto cold_read_elapsed = [](bool bias) {
    ModelConfig cfg = ModelConfig::paper_defaults();
    cfg.replication.factor = 2;
    cfg.replication.read_bias = bias;
    cfg.fault.adaptive_timeout = true;
    // Static timeout high enough that the degraded primary's slow write
    // ack arrives unretried and seeds an honestly large srtt.
    cfg.fault.round_timeout = Duration::ms(500.0);
    cfg.fault.disk_degrade.push_back(
        {/*iod=*/0, /*factor=*/50.0, TimePoint::origin()});
    Cluster cluster(cfg, 1, 2);
    Client& c = cluster.client(0);
    OpenFile f = c.create("/bias", 64 * kKiB, 1, /*base_iod=*/0).value();
    const u64 n = 64 * kKiB;
    const u64 src = c.memory().alloc(n);
    fill(c, src, n, 29);
    EXPECT_TRUE(c.write(f, 0, src, n, IoOptions{}.with_sync()).ok());
    // Cold caches: the read's disk phase hits media, where the primary is
    // 50x slower than the current backup.
    cluster.drop_all_caches();
    const u64 dst = c.memory().alloc(n);
    IoResult r = c.read(f, 0, dst, n);
    EXPECT_TRUE(r.ok()) << r.status.to_string();
    EXPECT_TRUE(equal_mem(c, src, dst, n));
    return r.elapsed();
  };
  const Duration primary_bound = cold_read_elapsed(false);
  const Duration biased = cold_read_elapsed(true);
  EXPECT_LT(biased, primary_bound);
}

// The tentpole end-to-end: factor 2 survives two *sequential* failures
// with background re-replication, and provably loses acked data without
// it. Timeline: preload A healthy; iod0 down [20 ms, 50 ms); B written at
// 25 ms (settles on iod1 alone); iod1 dies for good at 100 ms; read at
// 500 ms can only be served by iod0.
TEST(VersionPlaneTest, SequentialCrashesSurviveOnlyWithResync) {
  auto run_seq = [](bool resync) {
    ModelConfig cfg = faulty_config();
    cfg.replication.factor = 2;
    cfg.replication.write_quorum = 1;
    cfg.replication.resync = resync;
    cfg.fault.schedule.push_back(
        FaultEvent{FaultKind::kIodCrash,
                   TimePoint::origin() + Duration::ms(20.0), /*target=*/0,
                   Duration::ms(30.0)});
    cfg.fault.schedule.push_back(
        FaultEvent{FaultKind::kIodCrash,
                   TimePoint::origin() + Duration::ms(100.0), /*target=*/1,
                   Duration::sec(1000.0)});
    auto cluster = std::make_unique<Cluster>(cfg, 1, 2);
    Client& c = cluster->client(0);
    OpenFile f = c.create("/seq", 64 * kKiB, 1, /*base_iod=*/0).value();
    const u64 n = 32 * kKiB;
    const u64 a = c.memory().alloc(n);
    const u64 b = c.memory().alloc(n);
    fill(c, a, n, 3);
    fill(c, b, n, 9);
    EXPECT_TRUE(c.write(f, 0, a, n).ok());
    IoHandle w;
    const TimePoint at = TimePoint::origin() + Duration::ms(25.0);
    cluster->engine().schedule_at(at, [&, at] {
      core::ListIoRequest req;
      req.mem = {{b, n}};
      req.file = {{0, n}};
      w = c.submit({IoDir::kWrite, f, req, {}, at});
    });
    cluster->engine().run_until([&w] { return w.valid() && w.poll(); });
    EXPECT_TRUE(w.poll() && w.result().ok());  // B was acked
    auto [r, dst] = read_at(*cluster, f, Duration::ms(500.0), n);
    EXPECT_TRUE(r.ok()) << r.status.to_string();
    struct Out {
      bool fresh, stale;
      i64 resync_stripes, resync_rounds;
    } out{equal_mem(c, b, dst, n), equal_mem(c, a, dst, n),
          cluster->stats().get(stat::kPvfsResyncStripes),
          cluster->stats().get(stat::kPvfsResyncRounds)};
    return out;
  };
  const auto with = run_seq(true);
  EXPECT_TRUE(with.fresh);  // no acked write lost
  EXPECT_EQ(with.resync_stripes, 1);
  EXPECT_GE(with.resync_rounds, 1);
  const auto without = run_seq(false);
  // The read "succeeds" — from the stale survivor: acked data is gone.
  EXPECT_FALSE(without.fresh);
  EXPECT_TRUE(without.stale);
  EXPECT_EQ(without.resync_stripes, 0);
}

// --- 11. recovery under pipelining ---------------------------------------

TEST(FaultTest, PipelinedChainsRecoverOutOfOrderSettles) {
  // Wide window + drops: rounds settle out of order, the slot-reuse floor
  // must still keep every staging slot single-occupancy, and the data must
  // come back intact.
  ModelConfig cfg = faulty_config();
  cfg.pipeline_depth = 4;
  cfg.fault.request_drop_rate = 0.1;
  cfg.fault.reply_drop_rate = 0.1;
  Cluster cluster(cfg, 1, 2);
  IoResult w = round_trip(cluster, /*pieces=*/256, /*piece_len=*/2048);
  EXPECT_TRUE(w.recovered());
}

// --- 12. manager crash windows + standby takeover -------------------------

TEST(ManagerCrashTest, OutageWithoutStandbyIsRiddenOutByMetaRetries) {
  ModelConfig cfg = faulty_config();
  // The manager is down for the first 4 ms; a 2 ms round timeout and sub-ms
  // backoff ride it out well inside the retry budget.
  cfg.fault.schedule.push_back(FaultEvent{FaultKind::kManagerCrash,
                                          TimePoint::origin(), 0,
                                          Duration::ms(4.0)});
  Cluster cluster(cfg, 1, 2);
  Result<OpenFile> f = cluster.client(0).create("/solo");
  ASSERT_TRUE(f.is_ok()) << f.status().to_string();
  const Stats& s = cluster.stats();
  EXPECT_EQ(s.get(stat::kFaultManagerCrash), 1);
  EXPECT_GT(s.get(stat::kFaultManagerDownDrop), 0);
  EXPECT_GT(s.get(stat::kPvfsMetaRetries), 0);
  // One manager: nothing to fail over to, nothing took over.
  EXPECT_EQ(s.get(stat::kPvfsMetaFailovers), 0);
  EXPECT_EQ(s.get(stat::kPvfsManagerTakeovers), 0);
}

TEST(ManagerCrashTest, StandbyTakeoverFailsOverClientsAndFencesTheZombie) {
  ModelConfig cfg = faulty_config();
  cfg.replication.factor = 2;
  cfg.fault.standby_takeover = true;
  cfg.fault.manager_takeover_delay = Duration::ms(2.0);
  // The primary dies at 10 ms and never comes back; the standby promotes
  // itself at 12 ms.
  cfg.fault.schedule.push_back(
      FaultEvent{FaultKind::kManagerCrash,
                 TimePoint::origin() + Duration::ms(10.0), 0,
                 Duration::sec(1000.0)});
  Cluster cluster(cfg, 2, 2);
  Client& c = cluster.client(0);
  OpenFile f = c.create("/mgr", 64 * kKiB, 1, /*base_iod=*/0).value();
  const u64 n = 32 * kKiB;
  const u64 a = c.memory().alloc(n);
  const u64 b = c.memory().alloc(n);
  fill(c, a, n, 3);
  fill(c, b, n, 9);
  ASSERT_TRUE(c.write(f, 0, a, n).ok());  // epoch-1 mints, pre-crash

  // Overwrite at 50 ms, well after the takeover. The client still believes
  // the demoted primary is the version authority; the epoch fence catches
  // that (pvfs.epoch_rejections) and re-targets the mint at the standby —
  // no metadata round-trip, no timeout.
  IoHandle w;
  const TimePoint at = TimePoint::origin() + Duration::ms(50.0);
  cluster.engine().schedule_at(at, [&, at] {
    core::ListIoRequest req;
    req.mem = {{b, n}};
    req.file = {{0, n}};
    w = c.submit({IoDir::kWrite, f, req, {}, at});
  });
  cluster.engine().run_until([&w] { return w.valid() && w.poll(); });
  ASSERT_TRUE(w.poll());
  EXPECT_TRUE(w.result().ok()) << w.result().status.to_string();

  const Stats& s = cluster.stats();
  EXPECT_EQ(s.get(stat::kFaultManagerCrash), 1);
  EXPECT_EQ(s.get(stat::kPvfsManagerTakeovers), 1);
  EXPECT_GE(s.get(stat::kPvfsEpochRejections), 1);
  EXPECT_TRUE(cluster.standby()->active());
  EXPECT_EQ(cluster.manager_epoch().value, 2u);
  EXPECT_EQ(&cluster.active_manager(), cluster.standby());

  // Client 0 learned the new authority through the version plane — its
  // metadata target moved with it, no timeout needed. Client 1 has not: its
  // first request still goes to the dead primary, times out, and fails over
  // to the (active) standby — which serves the adopted namespace.
  Result<OpenFile> o = cluster.client(1).open("/mgr");
  ASSERT_TRUE(o.is_ok()) << o.status().to_string();
  EXPECT_EQ(o.value().meta.handle, f.meta.handle);
  EXPECT_GE(s.get(stat::kPvfsMetaFailovers), 1);
  EXPECT_GT(s.get(stat::kFaultManagerDownDrop), 0);

  // The overwrite minted under epoch 2 marked both replicas current; the
  // read returns the acked bytes.
  auto [r, dst] = read_at(cluster, f, Duration::ms(200.0), n);
  ASSERT_TRUE(r.ok()) << r.status.to_string();
  EXPECT_TRUE(equal_mem(c, b, dst, n));
}

TEST(ManagerCrashTest, TakeoverRebuildHealsViaResyncAfterLostNotes) {
  // The conservative rebuild end to end: quorum-1 write settles on the
  // backup while the primary copy is down, then the manager (with that
  // staleness knowledge) crashes. The standby's header scan re-discovers
  // the gap — the backup header is ahead of the primary's — marks the
  // primary copy stale, and the takeover's resync sweep heals it; a later
  // read served by the healed primary sees the acked bytes.
  ModelConfig cfg = faulty_config();
  cfg.replication.factor = 2;
  cfg.replication.write_quorum = 1;
  cfg.replication.resync = true;
  cfg.fault.standby_takeover = true;
  cfg.fault.manager_takeover_delay = Duration::ms(2.0);
  cfg.fault.schedule.push_back(
      FaultEvent{FaultKind::kIodCrash,
                 TimePoint::origin() + Duration::ms(10.0), /*target=*/0,
                 Duration::ms(30.0)});
  cfg.fault.schedule.push_back(
      FaultEvent{FaultKind::kManagerCrash,
                 TimePoint::origin() + Duration::ms(60.0), 0,
                 Duration::sec(1000.0)});
  // After resync heals iod0, iod1 (the only current copy before the heal)
  // dies for good; the read can only be served by iod0.
  cfg.fault.schedule.push_back(
      FaultEvent{FaultKind::kIodCrash,
                 TimePoint::origin() + Duration::ms(300.0), /*target=*/1,
                 Duration::sec(1000.0)});
  Cluster cluster(cfg, 1, 2);
  Client& c = cluster.client(0);
  OpenFile f = c.create("/heal", 64 * kKiB, 1, /*base_iod=*/0).value();
  const u64 n = 32 * kKiB;
  const u64 a = c.memory().alloc(n);
  const u64 b = c.memory().alloc(n);
  fill(c, a, n, 3);
  fill(c, b, n, 9);
  ASSERT_TRUE(c.write(f, 0, a, n).ok());
  IoHandle w;
  const TimePoint at = TimePoint::origin() + Duration::ms(15.0);
  cluster.engine().schedule_at(at, [&, at] {
    core::ListIoRequest req;
    req.mem = {{b, n}};
    req.file = {{0, n}};
    w = c.submit({IoDir::kWrite, f, req, {}, at});
  });
  cluster.engine().run_until([&w] { return w.valid() && w.poll(); });
  ASSERT_TRUE(w.poll() && w.result().ok());  // B acked on iod1 alone

  auto [r, dst] = read_at(cluster, f, Duration::ms(500.0), n);
  ASSERT_TRUE(r.ok()) << r.status.to_string();
  EXPECT_TRUE(equal_mem(c, b, dst, n));  // no acked write lost
  const Stats& s = cluster.stats();
  EXPECT_EQ(s.get(stat::kPvfsManagerTakeovers), 1);
  EXPECT_GE(s.get(stat::kPvfsResyncStripes), 1);
}

// --- 13. silent corruption: checksums, verify-on-read, scrubber -----------

// Write pattern A to a width-1 factor-2 file pinned to iod `base`, healthy
// (both replicas current at v1). Returns the pattern buffer.
u64 preload(Cluster& cluster, OpenFile* f, u64 n) {
  Client& c = cluster.client(0);
  *f = c.create("/corr", 64 * kKiB, 1, /*base_iod=*/0).value();
  const u64 a = c.memory().alloc(n);
  fill(c, a, n, 41);
  EXPECT_TRUE(c.write(*f, 0, a, n).ok());
  return a;
}

TEST(CorruptionTest, ScheduledBitFlipIsDetectedAndFailedOver) {
  ModelConfig cfg = faulty_config();
  cfg.replication.factor = 2;
  // One bit of iod0's data at rest flips at 10 ms, after the write landed.
  cfg.fault.schedule.push_back(FaultEvent{
      FaultKind::kBitFlip, TimePoint::origin() + Duration::ms(10.0), 0,
      Duration::zero()});
  Cluster cluster(cfg, 1, 2);
  Client& c = cluster.client(0);
  OpenFile f;
  const u64 n = 32 * kKiB;
  const u64 a = preload(cluster, &f, n);
  // The read starts at the primary (the map records everyone current),
  // trips the block checksum, and fails over to the intact backup.
  auto [r, dst] = read_at(cluster, f, Duration::ms(20.0), n);
  ASSERT_TRUE(r.ok()) << r.status.to_string();
  EXPECT_TRUE(equal_mem(c, a, dst, n));
  const Stats& s = cluster.stats();
  EXPECT_EQ(s.get(stat::kFaultBitFlip), 1);
  EXPECT_GE(s.get(stat::kPvfsCorruptionsDetected), 1);
  EXPECT_GE(s.get(stat::kPvfsCorruptReadsFailedOver), 1);
  EXPECT_EQ(r.failovers, 1u);
  // The map now records iod0's copy as holding nothing; later reads are
  // placed straight on the backup without burning another failover.
  auto [r2, dst2] = read_at(cluster, f, Duration::ms(40.0), n);
  ASSERT_TRUE(r2.ok()) << r2.status.to_string();
  EXPECT_EQ(r2.failovers, 0u);
  EXPECT_TRUE(equal_mem(c, a, dst2, n));
}

TEST(CorruptionTest, TornWriteIsDetectedOnReadBack) {
  ModelConfig cfg = faulty_config();
  cfg.replication.factor = 2;
  // iod0's copy of the first write round is torn: a prefix lands, the
  // suffix is garbled, and the iod acks as if nothing happened.
  cfg.fault.schedule.push_back(FaultEvent{
      FaultKind::kTornWrite, TimePoint::origin(), 0, Duration::zero()});
  Cluster cluster(cfg, 1, 2);
  Client& c = cluster.client(0);
  OpenFile f;
  const u64 n = 32 * kKiB;
  const u64 a = preload(cluster, &f, n);
  EXPECT_EQ(cluster.stats().get(stat::kFaultTornWrite), 1);
  auto [r, dst] = read_at(cluster, f, Duration::ms(20.0), n);
  ASSERT_TRUE(r.ok()) << r.status.to_string();
  // The stamped checksums cover the *intended* bytes, so the garbled
  // suffix cannot pass verification; the backup serves the acked data.
  EXPECT_TRUE(equal_mem(c, a, dst, n));
  EXPECT_GE(cluster.stats().get(stat::kPvfsCorruptionsDetected), 1);
  EXPECT_GE(cluster.stats().get(stat::kPvfsCorruptReadsFailedOver), 1);
}

TEST(CorruptionTest, LostWriteIsDetectedViaVersionCrossCheck) {
  ModelConfig cfg = faulty_config();
  cfg.replication.factor = 2;
  // iod0 acks the 15 ms overwrite without applying it (header stays v1);
  // the staleness map — fed by the ack — records it current at v2.
  cfg.fault.schedule.push_back(FaultEvent{
      FaultKind::kLostWrite, TimePoint::origin() + Duration::ms(10.0), 0,
      Duration::zero()});
  Cluster cluster(cfg, 1, 2);
  Client& c = cluster.client(0);
  OpenFile f;
  const u64 n = 32 * kKiB;
  preload(cluster, &f, n);
  const u64 b = c.memory().alloc(n);
  fill(c, b, n, 43);
  IoHandle w;
  const TimePoint at = TimePoint::origin() + Duration::ms(15.0);
  cluster.engine().schedule_at(at, [&, at] {
    core::ListIoRequest req;
    req.mem = {{b, n}};
    req.file = {{0, n}};
    w = c.submit({IoDir::kWrite, f, req, {}, at});
  });
  cluster.engine().run_until([&w] { return w.valid() && w.poll(); });
  ASSERT_TRUE(w.poll() && w.result().ok());  // the faithful lie: B is acked
  EXPECT_EQ(cluster.stats().get(stat::kFaultLostWrite), 1);
  EXPECT_EQ(cluster.iod(0).stripe_version(f.meta.handle), 1u);
  // The read is placed on iod0 (the map believes its ack). Its checksums
  // verify — the old bytes are internally consistent — but the served
  // header version contradicts the recorded ack, which is exactly what a
  // lost write looks like: fail over and serve the acked bytes.
  auto [r, dst] = read_at(cluster, f, Duration::ms(100.0), n);
  ASSERT_TRUE(r.ok()) << r.status.to_string();
  EXPECT_TRUE(equal_mem(c, b, dst, n));
  const Stats& s = cluster.stats();
  EXPECT_GE(s.get(stat::kPvfsCorruptionsDetected), 1);
  EXPECT_GE(s.get(stat::kPvfsCorruptReadsFailedOver), 1);
}

TEST(CorruptionTest, ScrubberFindsAndRepairsAtRestCorruption) {
  ModelConfig cfg = faulty_config();
  cfg.replication.factor = 2;
  cfg.replication.resync = true;
  cfg.replication.scrub = true;
  cfg.fault.schedule.push_back(FaultEvent{
      FaultKind::kBitFlip, TimePoint::origin() + Duration::ms(10.0), 0,
      Duration::zero()});
  Cluster cluster(cfg, 1, 2);
  Client& c = cluster.client(0);
  OpenFile f;
  const u64 n = 32 * kKiB;
  const u64 a = preload(cluster, &f, n);
  // No reads ever touch the file: only the scrubber can find the rot.
  cluster.start_scrub(TimePoint::origin() + Duration::ms(300.0));
  cluster.run();
  const Stats& s = cluster.stats();
  EXPECT_GE(s.get(stat::kPvfsScrubChunks), 1);
  EXPECT_GE(s.get(stat::kPvfsScrubCorruptions), 1);
  EXPECT_GE(s.get(stat::kPvfsCorruptionsDetected), 1);
  // The scrub finding became a resync pull from the intact backup, which
  // is the one event allowed to clear the corrupt flag.
  EXPECT_GE(s.get(stat::kPvfsResyncStripes), 1);
  EXPECT_GE(s.get(stat::kPvfsCorruptionsRepaired), 1);
  const std::span<const std::byte> healed =
      cluster.iod(0).file(f.meta.handle).contents();
  ASSERT_GE(healed.size(), n);
  EXPECT_EQ(std::memcmp(healed.data(), c.memory().data(a), n), 0);
  // Healed means readable from the primary again: placement trusts it.
  auto [r, dst] = read_at(cluster, f, Duration::ms(400.0), n);
  ASSERT_TRUE(r.ok()) << r.status.to_string();
  EXPECT_EQ(r.failovers, 0u);
  EXPECT_TRUE(equal_mem(c, a, dst, n));
}

TEST(CorruptionTest, ScrubberDetectsLostWriteViaHeaderCrossCheck) {
  ModelConfig cfg = faulty_config();
  cfg.replication.factor = 2;
  cfg.replication.resync = true;
  cfg.replication.scrub = true;
  cfg.fault.schedule.push_back(FaultEvent{
      FaultKind::kLostWrite, TimePoint::origin() + Duration::ms(10.0), 0,
      Duration::zero()});
  Cluster cluster(cfg, 1, 2);
  Client& c = cluster.client(0);
  OpenFile f;
  const u64 n = 32 * kKiB;
  preload(cluster, &f, n);
  const u64 b = c.memory().alloc(n);
  fill(c, b, n, 47);
  IoHandle w;
  const TimePoint at = TimePoint::origin() + Duration::ms(15.0);
  cluster.engine().schedule_at(at, [&, at] {
    core::ListIoRequest req;
    req.mem = {{b, n}};
    req.file = {{0, n}};
    w = c.submit({IoDir::kWrite, f, req, {}, at});
  });
  cluster.engine().run_until([&w] { return w.valid() && w.poll(); });
  ASSERT_TRUE(w.poll() && w.result().ok());
  cluster.start_scrub(TimePoint::origin() + Duration::ms(300.0));
  cluster.run();
  const Stats& s = cluster.stats();
  // The sweep compared iod0's v1 header against its recorded v2 ack,
  // downgraded the map, and resync pulled the acked bytes across.
  EXPECT_GE(s.get(stat::kPvfsScrubStaleHeaders), 1);
  EXPECT_GE(s.get(stat::kPvfsResyncStripes), 1);
  EXPECT_EQ(cluster.iod(0).stripe_version(f.meta.handle), 2u);
  const std::span<const std::byte> healed =
      cluster.iod(0).file(f.meta.handle).contents();
  ASSERT_GE(healed.size(), n);
  EXPECT_EQ(std::memcmp(healed.data(), c.memory().data(b), n), 0);
}

TEST(CorruptionTest, ScrubberNeverResurrectsRemovedHandles) {
  ModelConfig cfg = faulty_config();
  cfg.replication.factor = 2;
  cfg.replication.resync = true;
  cfg.replication.scrub = true;
  Cluster cluster(cfg, 1, 2);
  Client& c = cluster.client(0);
  OpenFile f;
  const u64 n = 32 * kKiB;
  preload(cluster, &f, n);
  const Handle h = f.meta.handle;
  ASSERT_TRUE(cluster.manager().stripe_versions(h, 0).known);
  ASSERT_TRUE(c.remove("/corr").is_ok());
  EXPECT_FALSE(cluster.manager().stripe_versions(h, 0).known);
  // Sweep the (now empty) iods for a while: nothing may re-materialize the
  // removed file's stripe state or enqueue resync work for it.
  cluster.start_scrub(TimePoint::origin() + Duration::ms(300.0));
  cluster.run();
  EXPECT_FALSE(cluster.manager().stripe_versions(h, 0).known);
  const Stats& s = cluster.stats();
  EXPECT_EQ(s.get(stat::kPvfsScrubCorruptions), 0);
  EXPECT_EQ(s.get(stat::kPvfsScrubStaleHeaders), 0);
  EXPECT_EQ(s.get(stat::kPvfsResyncStripes), 0);
}

TEST(CorruptionTest, RateDrivenFlipsUnderLoadAllRecover) {
  // A steady corruption rate on the write path: every flipped round read
  // back is detected and failed over, and the data always comes back
  // byte-exact (round_trip asserts it). Flips that land on the copy a
  // read never touches stay invisible here — that blind spot is exactly
  // the scrubber's job — so detections only bound from below.
  ModelConfig cfg = faulty_config();
  cfg.replication.factor = 2;
  cfg.fault.bit_flip_rate = 0.1;
  Cluster cluster(cfg, 1, 4);
  round_trip(cluster, /*pieces=*/1024, /*piece_len=*/2048);
  const Stats& s = cluster.stats();
  EXPECT_GT(s.get(stat::kFaultBitFlip), 0);
  EXPECT_GE(s.get(stat::kPvfsCorruptionsDetected), 1);
  EXPECT_GE(s.get(stat::kPvfsCorruptReadsFailedOver), 1);
}

}  // namespace
}  // namespace pvfsib::pvfs
