// Unit tests for the I/O daemon's service paths: staging, write rounds
// (separate and sieved RMW), read rounds over all three return paths, and
// the disk queue serialization.
#include "pvfs/iod.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace pvfsib::pvfs {
namespace {

class IodTest : public ::testing::Test {
 protected:
  IodTest()
      : cfg_(ModelConfig::paper_defaults()),
        fabric_(cfg_.net, &stats_),
        iod_(0, /*clients=*/2, cfg_, fabric_, &stats_),
        client_hca_("c0", client_as_, cfg_.reg, &stats_) {
    // A registered client-side landing buffer for return-path tests.
    dest_addr_ = client_as_.alloc(8 * kMiB);
    ib::RegAttempt reg = client_hca_.register_memory(dest_addr_, 8 * kMiB);
    EXPECT_TRUE(reg.ok());
    dest_key_ = reg.key;
  }

  // Put a packed pattern stream into the iod staging buffer for client 0.
  void stage_pattern(u64 bytes, u8 seed) {
    core::StagingBuffer& sb = iod_.staging(0);
    ASSERT_LE(bytes, sb.size);
    ib::Hca& h = iod_.hca();
    for (u64 i = 0; i < bytes; ++i) {
      h.address_space().write_pod<u8>(sb.addr + i,
                                      static_cast<u8>(seed + i * 13));
    }
  }

  RoundRequest round(ExtentList accesses, bool write, bool use_ads) {
    RoundRequest r;
    r.handle = 7;
    r.client = 0;
    r.is_write = write;
    r.use_ads = use_ads;
    r.accesses = std::move(accesses);
    return r;
  }

  ModelConfig cfg_;
  Stats stats_;
  ib::Fabric fabric_;
  Iod iod_;
  vmem::AddressSpace client_as_;
  ib::Hca client_hca_;
  u64 dest_addr_ = 0;
  u32 dest_key_ = 0;
};

TEST_F(IodTest, FileCreatedLazilyPerHandle) {
  disk::LocalFile& a = iod_.file(1);
  disk::LocalFile& b = iod_.file(2);
  EXPECT_NE(&a, &b);
  EXPECT_EQ(&iod_.file(1), &a);  // same handle, same file
}

TEST_F(IodTest, StagingBuffersPerClient) {
  core::StagingBuffer& s0 = iod_.staging(0);
  core::StagingBuffer& s1 = iod_.staging(1);
  EXPECT_NE(s0.addr, s1.addr);
  EXPECT_EQ(s0.size, cfg_.pvfs.staging_buffer);
  // Both registered on the iod HCA.
  EXPECT_TRUE(iod_.hca().validate(s0.rkey, s0.addr, s0.size));
  EXPECT_TRUE(iod_.hca().validate(s1.rkey, s1.addr, s1.size));
}

TEST_F(IodTest, WriteRoundSeparatePlacesPieces) {
  stage_pattern(3000, 1);
  RoundRequest r =
      round({{100, 1000}, {5000, 2000}}, /*write=*/true, /*ads=*/false);
  const TimePoint done = iod_.write_round(r, TimePoint::origin());
  EXPECT_GT(done, TimePoint::origin());

  disk::LocalFile& f = iod_.file(7);
  ASSERT_EQ(f.size(), 7000u);
  auto contents = f.contents();
  for (u64 i = 0; i < 1000; ++i) {
    ASSERT_EQ(contents[100 + i], std::byte{static_cast<u8>(1 + i * 13)});
  }
  for (u64 i = 0; i < 2000; ++i) {
    ASSERT_EQ(contents[5000 + i],
              std::byte{static_cast<u8>(1 + (1000 + i) * 13)});
  }
  EXPECT_EQ(stats_.get(stat::kDiskWrite), 2);
}

TEST_F(IodTest, WriteRoundSievedRmwPreservesSurroundingData) {
  // Preload the file with a known background.
  disk::LocalFile& f = iod_.file(7);
  std::vector<std::byte> bg(64 * kKiB, std::byte{0xee});
  f.pwrite(0, bg);

  // Dense small strided writes: the model should sieve (RMW under lock).
  ExtentList acc;
  for (u64 i = 0; i < 64; ++i) acc.push_back({i * 1024, 256});
  stage_pattern(64 * 256, 9);
  const i64 writes_before = stats_.get(stat::kDiskWrite);
  RoundRequest r = round(acc, /*write=*/true, /*ads=*/true);
  iod_.write_round(r, TimePoint::origin());

  EXPECT_EQ(stats_.get(stat::kAdsSieved), 1);
  // One window: one RMW write, not 64.
  EXPECT_LE(stats_.get(stat::kDiskWrite) - writes_before, 2);
  EXPECT_FALSE(f.locked());  // lock released

  auto contents = f.contents();
  for (u64 i = 0; i < 64; ++i) {
    for (u64 j = 0; j < 256; ++j) {
      ASSERT_EQ(contents[i * 1024 + j],
                std::byte{static_cast<u8>(9 + (i * 256 + j) * 13)});
    }
    // The gap bytes survived the read-modify-write.
    for (u64 j = 256; j < 1024 && i * 1024 + j < 64 * kKiB; ++j) {
      ASSERT_EQ(contents[i * 1024 + j], std::byte{0xee});
    }
  }
}

TEST_F(IodTest, WriteRoundSyncCostsMore) {
  stage_pattern(1 * kMiB, 2);
  RoundRequest r = round({{0, 1 * kMiB}}, true, false);
  const TimePoint t1 = iod_.write_round(r, TimePoint::origin());
  r.sync = true;
  r.accesses = {{2 * kMiB, 1 * kMiB}};
  const TimePoint t0 = iod_.disk_queue().busy_until();
  const TimePoint t2 = iod_.write_round(r, t0);
  EXPECT_GT(t2 - t0, (t1 - TimePoint::origin()) * 5);
}

TEST_F(IodTest, ReadRoundClientPullPacksStaging) {
  disk::LocalFile& f = iod_.file(7);
  std::vector<std::byte> data(32 * kKiB);
  for (u64 i = 0; i < data.size(); ++i) {
    data[i] = std::byte{static_cast<u8>(i * 7)};
  }
  f.pwrite(0, data);

  // Out-of-order extents: staging must be packed in request order.
  RoundRequest r = round({{8192, 100}, {0, 50}}, /*write=*/false, false);
  Iod::ReadService svc = iod_.read_round(r, TimePoint::origin(),
                                         ReadReturn::kClientPull, nullptr, 0, 0);
  ASSERT_TRUE(svc.ok());
  EXPECT_EQ(svc.bytes, 150u);
  const core::StagingBuffer& sb = iod_.staging(0);
  const auto& as = iod_.hca().address_space();
  for (u64 i = 0; i < 100; ++i) {
    ASSERT_EQ(as.read_pod<u8>(sb.addr + i), static_cast<u8>((8192 + i) * 7));
  }
  for (u64 i = 0; i < 50; ++i) {
    ASSERT_EQ(as.read_pod<u8>(sb.addr + 100 + i), static_cast<u8>(i * 7));
  }
}

TEST_F(IodTest, ReadRoundDirectGatherDeliversToClient) {
  disk::LocalFile& f = iod_.file(7);
  std::vector<std::byte> data(256 * kKiB);
  for (u64 i = 0; i < data.size(); ++i) {
    data[i] = std::byte{static_cast<u8>(i * 11)};
  }
  f.pwrite(0, data);

  // Dense strided read that will sieve; direct gather return.
  ExtentList acc;
  for (u64 i = 0; i < 128; ++i) acc.push_back({i * 2048, 512});
  RoundRequest r = round(acc, false, /*ads=*/true);
  Iod::ReadService svc =
      iod_.read_round(r, TimePoint::origin(), ReadReturn::kDirectGather,
                      &client_hca_, dest_addr_, dest_key_);
  ASSERT_TRUE(svc.ok());
  EXPECT_GE(stats_.get(stat::kAdsSieved), 1);
  for (u64 i = 0; i < 128; ++i) {
    for (u64 j = 0; j < 512; j += 64) {
      ASSERT_EQ(client_as_.read_pod<u8>(dest_addr_ + i * 512 + j),
                static_cast<u8>((i * 2048 + j) * 11))
          << i << "," << j;
    }
  }
}

TEST_F(IodTest, ReadRoundFastBounceDelivers) {
  disk::LocalFile& f = iod_.file(7);
  std::vector<std::byte> data(16 * kKiB);
  for (u64 i = 0; i < data.size(); ++i) {
    data[i] = std::byte{static_cast<u8>(i ^ 0x5a)};
  }
  f.pwrite(0, data);
  RoundRequest r = round({{1000, 2000}, {9000, 1000}}, false, true);
  Iod::ReadService svc =
      iod_.read_round(r, TimePoint::origin(), ReadReturn::kFastBounce,
                      &client_hca_, dest_addr_, dest_key_);
  ASSERT_TRUE(svc.ok());
  for (u64 i = 0; i < 2000; ++i) {
    ASSERT_EQ(client_as_.read_pod<u8>(dest_addr_ + i),
              static_cast<u8>((1000 + i) ^ 0x5a));
  }
  for (u64 i = 0; i < 1000; ++i) {
    ASSERT_EQ(client_as_.read_pod<u8>(dest_addr_ + 2000 + i),
              static_cast<u8>((9000 + i) ^ 0x5a));
  }
}

TEST_F(IodTest, ReadBeyondEofYieldsZeros) {
  disk::LocalFile& f = iod_.file(7);
  f.pwrite(0, std::vector<std::byte>(100, std::byte{0x11}));
  RoundRequest r = round({{50, 100}}, false, false);
  Iod::ReadService svc = iod_.read_round(r, TimePoint::origin(),
                                         ReadReturn::kClientPull, nullptr, 0, 0);
  ASSERT_TRUE(svc.ok());
  const core::StagingBuffer& sb = iod_.staging(0);
  const auto& as = iod_.hca().address_space();
  for (u64 i = 0; i < 50; ++i) {
    ASSERT_EQ(as.read_pod<u8>(sb.addr + i), 0x11);
  }
  for (u64 i = 50; i < 100; ++i) {
    ASSERT_EQ(as.read_pod<u8>(sb.addr + i), 0x00);
  }
}

TEST_F(IodTest, OversizedRoundRejected) {
  RoundRequest r = round({{0, cfg_.pvfs.staging_buffer + 1}}, false, false);
  Iod::ReadService svc = iod_.read_round(r, TimePoint::origin(),
                                         ReadReturn::kClientPull, nullptr, 0, 0);
  EXPECT_FALSE(svc.ok());
}

TEST_F(IodTest, StaleEpochMintsAreFencedOutOfStripeHeaders) {
  // The zombie-primary fence: once a takeover sweep raises this iod's
  // manager epoch, versioned rounds whose mint is stamped with an older
  // epoch still land their bytes but never merge the stripe header — a
  // demoted primary can keep writing data, it just can't mark anything
  // current.
  stage_pattern(4096, 4);
  RoundRequest r = round({{0, 1024}}, /*write=*/true, /*ads=*/false);
  r.version = 1;
  r.epoch = 1;
  iod_.write_round(r, TimePoint::origin());
  EXPECT_EQ(iod_.stripe_version(7), 1u);

  iod_.note_manager_epoch(2);
  r.version = 5;
  r.epoch = 1;  // minted by the demoted manager
  r.accesses = {{1024, 1024}};
  const i64 before = stats_.get(stat::kPvfsEpochRejections);
  iod_.write_round(r, TimePoint::origin());
  EXPECT_EQ(stats_.get(stat::kPvfsEpochRejections), before + 1);
  EXPECT_EQ(iod_.stripe_version(7), 1u);  // header fenced...
  EXPECT_GE(iod_.file(7).size(), 2048u);  // ...bytes still applied

  // Mints under the current epoch, and unstamped (trusted, e.g. repair)
  // versions, merge as usual.
  r.version = 6;
  r.epoch = 2;
  iod_.write_round(r, TimePoint::origin());
  EXPECT_EQ(iod_.stripe_version(7), 6u);
  r.version = 7;
  r.epoch = 0;
  iod_.write_round(r, TimePoint::origin());
  EXPECT_EQ(iod_.stripe_version(7), 7u);
}

TEST_F(IodTest, RemoveFilePurgesTheStripeHeader) {
  // A header outliving its file would resurrect a deleted stripe in the
  // takeover scan (and in resync targeting).
  stage_pattern(1024, 6);
  RoundRequest r = round({{0, 1024}}, /*write=*/true, /*ads=*/false);
  r.version = 3;
  iod_.write_round(r, TimePoint::origin());
  EXPECT_EQ(iod_.stripe_version(7), 3u);
  EXPECT_EQ(iod_.stripe_headers().count(7), 1u);
  iod_.remove_file(7);
  EXPECT_EQ(iod_.stripe_version(7), 0u);
  EXPECT_TRUE(iod_.stripe_headers().empty());
}

TEST_F(IodTest, DiskQueueSerializesRounds) {
  stage_pattern(1 * kMiB, 3);
  RoundRequest r = round({{0, 1 * kMiB}}, true, false);
  const TimePoint t1 = iod_.write_round(r, TimePoint::origin());
  // A second round arriving at time 0 queues behind the first.
  r.accesses = {{4 * kMiB, 1 * kMiB}};
  const TimePoint t2 = iod_.write_round(r, TimePoint::origin());
  EXPECT_GT(t2, t1);
  const Duration d1 = t1 - TimePoint::origin();
  EXPECT_NEAR((t2 - TimePoint::origin()).as_us(), 2 * d1.as_us(),
              d1.as_us() * 0.2);
}

}  // namespace
}  // namespace pvfsib::pvfs
