// Queue pair semantics: connection requirement, posted receives and RNR,
// receive-buffer bounds, send-queue depth with reaping, gather sends, RDMA
// forwarding, and injector-forced RNR with sender-side retry.
#include "ib/qp.h"

#include <gtest/gtest.h>

#include "fault/injector.h"

namespace pvfsib::ib {
namespace {

class QpTest : public ::testing::Test {
 protected:
  QpTest()
      : a_("a", as_a_, RegParams{}, &stats_),
        b_("b", as_b_, RegParams{}, &stats_),
        fabric_(NetParams{}, &stats_),
        qa_(a_, fabric_, /*sq=*/4, /*rq=*/4),
        qb_(b_, fabric_, 4, 4) {
    buf_a_ = as_a_.alloc(kMiB);
    buf_b_ = as_b_.alloc(kMiB);
    key_a_ = a_.register_memory(buf_a_, kMiB).key;
    key_b_ = b_.register_memory(buf_b_, kMiB).key;
  }

  vmem::AddressSpace as_a_, as_b_;
  Stats stats_;
  Hca a_, b_;
  Fabric fabric_;
  QueuePair qa_, qb_;
  u64 buf_a_ = 0, buf_b_ = 0;
  u32 key_a_ = 0, key_b_ = 0;
};

TEST_F(QpTest, UnconnectedSendFails) {
  const Sge sge{buf_a_, 100, key_a_};
  EXPECT_FALSE(qa_.post_send(1, {&sge, 1}, TimePoint::origin()).ok());
}

TEST_F(QpTest, SendLandsInPostedReceive) {
  QueuePair::connect(qa_, qb_);
  ASSERT_TRUE(qb_.post_recv(77, buf_b_, 4096, key_b_).is_ok());
  for (u64 i = 0; i < 100; ++i) {
    as_a_.write_pod<u8>(buf_a_ + i, static_cast<u8>(i + 5));
  }
  const Sge sge{buf_a_, 100, key_a_};
  QueuePair::SendResult r = qa_.post_send(1, {&sge, 1}, TimePoint::origin());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.bytes, 100u);
  for (u64 i = 0; i < 100; ++i) {
    EXPECT_EQ(as_b_.read_pod<u8>(buf_b_ + i), static_cast<u8>(i + 5));
  }
  // Both sides got completions carrying their own wr_ids.
  auto cs = a_.cq().poll();
  auto cr = b_.cq().poll();
  ASSERT_TRUE(cs.has_value());
  ASSERT_TRUE(cr.has_value());
  EXPECT_EQ(cs->wr_id, 1u);
  EXPECT_EQ(cr->wr_id, 77u);
  EXPECT_EQ(qb_.recv_posted(), 0u);  // consumed
}

TEST_F(QpTest, RnrWhenNoReceivePosted) {
  QueuePair::connect(qa_, qb_);
  const Sge sge{buf_a_, 100, key_a_};
  QueuePair::SendResult r = qa_.post_send(1, {&sge, 1}, TimePoint::origin());
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status.code(), ErrorCode::kResourceExhausted);
}

TEST_F(QpTest, OversizedMessageRejectedReceiveKept) {
  QueuePair::connect(qa_, qb_);
  ASSERT_TRUE(qb_.post_recv(1, buf_b_, 64, key_b_).is_ok());
  const Sge sge{buf_a_, 100, key_a_};
  EXPECT_FALSE(qa_.post_send(1, {&sge, 1}, TimePoint::origin()).ok());
  EXPECT_EQ(qb_.recv_posted(), 1u);  // unharmed
}

TEST_F(QpTest, ReceivesConsumeFifo) {
  QueuePair::connect(qa_, qb_);
  ASSERT_TRUE(qb_.post_recv(10, buf_b_, 128, key_b_).is_ok());
  ASSERT_TRUE(qb_.post_recv(11, buf_b_ + 4096, 128, key_b_).is_ok());
  const Sge sge{buf_a_, 64, key_a_};
  qa_.post_send(1, {&sge, 1}, TimePoint::origin());
  qa_.post_send(2, {&sge, 1}, TimePoint::origin());
  b_.cq().drain();
  EXPECT_EQ(qb_.recv_posted(), 0u);
}

TEST_F(QpTest, RecvQueueDepthEnforced) {
  QueuePair::connect(qa_, qb_);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(qb_.post_recv(i, buf_b_ + i * 4096, 128, key_b_).is_ok());
  }
  EXPECT_FALSE(qb_.post_recv(9, buf_b_, 128, key_b_).is_ok());
}

TEST_F(QpTest, SendQueueDepthNeedsReaping) {
  QueuePair::connect(qa_, qb_);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        qb_.post_recv(i, buf_b_ + static_cast<u64>(i) * 4096, 128, key_b_)
            .is_ok());
  }
  const Sge sge{buf_a_, 64, key_a_};
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(qa_.post_send(i, {&sge, 1}, TimePoint::origin()).ok());
  }
  // Queue full until the consumer reaps its completions.
  EXPECT_FALSE(qa_.post_send(99, {&sge, 1}, TimePoint::origin()).ok());
  qa_.reap(2);
  EXPECT_EQ(qa_.sends_inflight(), 2u);
  ASSERT_TRUE(qb_.post_recv(8, buf_b_, 128, key_b_).is_ok());
  EXPECT_TRUE(qa_.post_send(5, {&sge, 1}, TimePoint::origin()).ok());
}

TEST_F(QpTest, GatherSendConcatenates) {
  QueuePair::connect(qa_, qb_);
  ASSERT_TRUE(qb_.post_recv(1, buf_b_, 4096, key_b_).is_ok());
  for (u64 i = 0; i < 32; ++i) as_a_.write_pod<u8>(buf_a_ + i, 1);
  for (u64 i = 0; i < 32; ++i) as_a_.write_pod<u8>(buf_a_ + 8192 + i, 2);
  std::vector<Sge> sges{{buf_a_, 32, key_a_}, {buf_a_ + 8192, 32, key_a_}};
  ASSERT_TRUE(qa_.post_send(1, sges, TimePoint::origin()).ok());
  for (u64 i = 0; i < 32; ++i) {
    EXPECT_EQ(as_b_.read_pod<u8>(buf_b_ + i), 1);
    EXPECT_EQ(as_b_.read_pod<u8>(buf_b_ + 32 + i), 2);
  }
}

TEST_F(QpTest, RdmaForwardsToFabric) {
  QueuePair::connect(qa_, qb_);
  for (u64 i = 0; i < 64; ++i) {
    as_a_.write_pod<u8>(buf_a_ + i, static_cast<u8>(i ^ 0x33));
  }
  const Sge sge{buf_a_, 64, key_a_};
  TransferResult w =
      qa_.rdma_write({&sge, 1}, buf_b_, key_b_, TimePoint::origin());
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(std::memcmp(as_b_.data(buf_b_), as_a_.data(buf_a_), 64), 0);
  TransferResult r =
      qa_.rdma_read({&sge, 1}, buf_b_ + 128, key_b_, TimePoint::origin());
  ASSERT_TRUE(r.ok());
}

TEST_F(QpTest, SendQueueExhaustionWithInterleavedReapAndRetry) {
  QueuePair::connect(qa_, qb_);
  // Push 12 messages through a depth-4 send queue by reaping exactly one
  // completion whenever a post bounces — the classic produce/reap loop.
  const Sge sge{buf_a_, 64, key_a_};
  u32 delivered = 0;
  u32 bounced = 0;
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(
        qb_.post_recv(i, buf_b_ + static_cast<u64>(i % 4) * 4096, 128, key_b_)
            .is_ok());
    QueuePair::SendResult r =
        qa_.post_send(i, {&sge, 1}, TimePoint::origin());
    while (!r.ok()) {
      ASSERT_EQ(r.status.code(), ErrorCode::kResourceExhausted);
      ++bounced;
      ASSERT_TRUE(a_.cq().poll().has_value());  // consume before reaping
      qa_.reap(1);
      r = qa_.post_send(i, {&sge, 1}, TimePoint::origin());
    }
    ++delivered;
    ASSERT_TRUE(b_.cq().poll().has_value());
  }
  EXPECT_EQ(delivered, 12u);
  EXPECT_GT(bounced, 0u);  // the queue really did fill up along the way
  EXPECT_EQ(qb_.recv_posted(), 0u);
}

TEST_F(QpTest, InjectedRnrFailsSendAndKeepsPeerReceivePosted) {
  FaultConfig fc;
  fc.rnr_rate = 1.0;
  fault::Injector inj(fc, &stats_);
  Fabric fabric(NetParams{}, &stats_, &inj);
  QueuePair qa(a_, fabric, 4, 4), qb(b_, fabric, 4, 4);
  QueuePair::connect(qa, qb);
  ASSERT_TRUE(qb.post_recv(1, buf_b_, 4096, key_b_).is_ok());
  const Sge sge{buf_a_, 100, key_a_};
  QueuePair::SendResult r = qa.post_send(1, {&sge, 1}, TimePoint::origin());
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status.code(), ErrorCode::kResourceExhausted);
  // The NAK fired before any receive was consumed: the peer's buffer is
  // still posted, so a sender-side retry needs no receiver cooperation.
  EXPECT_EQ(qb.recv_posted(), 1u);
  EXPECT_EQ(qa.sends_inflight(), 0u);
  EXPECT_GT(stats_.get(stat::kFaultRnr), 0);
}

TEST_F(QpTest, InjectedRnrRetryEventuallyDelivers) {
  FaultConfig fc;
  fc.seed = 9;
  fc.rnr_rate = 0.5;
  fault::Injector inj(fc, &stats_);
  Fabric fabric(NetParams{}, &stats_, &inj);
  QueuePair qa(a_, fabric, 4, 4), qb(b_, fabric, 4, 4);
  QueuePair::connect(qa, qb);
  ASSERT_TRUE(qb.post_recv(7, buf_b_, 4096, key_b_).is_ok());
  as_a_.write_pod<u8>(buf_a_, 0xAB);
  const Sge sge{buf_a_, 64, key_a_};
  u32 attempts = 0;
  QueuePair::SendResult r;
  do {
    ++attempts;
    ASSERT_LT(attempts, 64u) << "RNR never relented";
    r = qa.post_send(1, {&sge, 1}, TimePoint::origin());
    if (!r.ok()) {
      EXPECT_EQ(r.status.code(), ErrorCode::kResourceExhausted);
    }
  } while (!r.ok());
  EXPECT_EQ(as_b_.read_pod<u8>(buf_b_), 0xAB);
  // Exactly the failed attempts were counted, and the one delivery
  // consumed the one posted receive.
  EXPECT_EQ(stats_.get(stat::kFaultRnr),
            static_cast<i64>(attempts) - 1);
  EXPECT_EQ(qb.recv_posted(), 0u);
}

TEST_F(QpTest, SendTimingMatchesChannelPath) {
  QueuePair::connect(qa_, qb_);
  ASSERT_TRUE(qb_.post_recv(1, buf_b_, 64 * kKiB, key_b_).is_ok());
  const Sge sge{buf_a_, 64 * kKiB, key_a_};
  QueuePair::SendResult r = qa_.post_send(1, {&sge, 1}, TimePoint::origin());
  ASSERT_TRUE(r.ok());
  const NetParams np;
  const double expect =
      np.send_latency.as_us() + transfer_time(64 * kKiB, np.send_bw).as_us();
  EXPECT_NEAR((r.complete - TimePoint::origin()).as_us(), expect, 1.0);
}

}  // namespace
}  // namespace pvfsib::ib
