#include "disk/disk.h"

#include <gtest/gtest.h>

#include "disk/page_cache.h"

namespace pvfsib::disk {
namespace {

TEST(Disk, SequentialAccessPaysNoSeek) {
  Stats stats;
  Disk d(DiskParams{}, &stats);
  d.read(0, kMiB);
  EXPECT_EQ(stats.get(stat::kDiskSeek), 0);
  d.read(kMiB, kMiB);  // head is already there
  EXPECT_EQ(stats.get(stat::kDiskSeek), 0);
  d.read(10 * kMiB, kMiB);  // jump
  EXPECT_EQ(stats.get(stat::kDiskSeek), 1);
  EXPECT_EQ(stats.get(stat::kDiskReadBytes), 3 * static_cast<i64>(kMiB));
}

TEST(Disk, SeekCostGrowsWithDistance) {
  DiskParams p;
  Stats stats;
  Disk d(p, &stats);
  d.read(0, kPageSize);
  const Duration near = d.read(2 * kMiB, kPageSize);
  Disk d2(p, &stats);
  d2.read(0, kPageSize);
  const Duration far = d2.read(20 * kGiB, kPageSize);
  EXPECT_LT(near, far);
}

TEST(Disk, LargeSequentialHitsAsymptote) {
  Disk d(DiskParams{}, nullptr);
  const u64 n = 256 * kMiB;
  const Duration t = d.write(0, n);
  EXPECT_NEAR(bandwidth_mib(n, t), 25.0, 1.5);  // Table 3 uncached write
  Disk d2(DiskParams{}, nullptr);
  const Duration tr = d2.read(0, n);
  EXPECT_NEAR(bandwidth_mib(n, tr), 20.0, 1.5);  // Table 3 uncached read
}

TEST(Disk, SmallAccessesAreMuchSlower) {
  Disk d(DiskParams{}, nullptr);
  const Duration t = d.read(0, 4 * kKiB);
  EXPECT_LT(bandwidth_mib(4 * kKiB, t), 5.0);
}

TEST(PageCache, InsertAndQuery) {
  DiskParams p;
  PageCache c(p);
  EXPECT_TRUE(c.insert(0, 4, 2, false).empty());
  EXPECT_TRUE(c.cached({0, 4}));
  EXPECT_TRUE(c.cached({0, 5}));
  EXPECT_FALSE(c.cached({0, 6}));
  EXPECT_FALSE(c.cached({1, 4}));  // different file

  const ExtentList r =
      c.cached_ranges(0, {3 * kPageSize, 4 * kPageSize});
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], (Extent{4 * kPageSize, 2 * kPageSize}));
}

TEST(PageCache, CachedRangesClipsToWindow) {
  PageCache c(DiskParams{});
  c.insert(0, 0, 10, false);
  const ExtentList r = c.cached_ranges(0, {100, 50});
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], (Extent{100, 50}));
}

TEST(PageCache, DirtyFlush) {
  PageCache c(DiskParams{});
  c.insert(0, 0, 2, true);
  c.insert(0, 2, 2, false);
  c.insert(0, 8, 1, true);
  const ExtentList dirty = c.flush_dirty(0);
  ASSERT_EQ(dirty.size(), 2u);
  EXPECT_EQ(dirty[0], (Extent{0, 2 * kPageSize}));
  EXPECT_EQ(dirty[1], (Extent{8 * kPageSize, kPageSize}));
  // Second flush finds nothing.
  EXPECT_TRUE(c.flush_dirty(0).empty());
}

TEST(PageCache, RewriteMarksDirtyAgain) {
  PageCache c(DiskParams{});
  c.insert(0, 0, 1, true);
  c.flush_dirty(0);
  c.insert(0, 0, 1, true);
  EXPECT_EQ(c.flush_dirty(0).size(), 1u);
}

TEST(PageCache, LruEvictionReturnsDirtyVictims) {
  DiskParams p;
  p.cache_capacity = 4 * kPageSize;
  PageCache c(p);
  c.insert(0, 0, 2, true);
  c.insert(0, 2, 2, false);
  // Inserting 2 more evicts the 2 oldest (dirty) pages.
  const std::vector<PageKey> evicted = c.insert(0, 4, 2, false);
  ASSERT_EQ(evicted.size(), 2u);
  EXPECT_EQ(evicted[0], (PageKey{0, 0}));
  EXPECT_EQ(evicted[1], (PageKey{0, 1}));
  EXPECT_FALSE(c.cached({0, 0}));
  EXPECT_TRUE(c.cached({0, 4}));
}

TEST(PageCache, TouchKeepsHotPagesResident) {
  DiskParams p;
  p.cache_capacity = 4 * kPageSize;
  PageCache c(p);
  c.insert(0, 0, 4, false);
  c.insert(0, 0, 1, false);  // touch page 0 -> most recent
  c.insert(0, 100, 1, false);
  EXPECT_TRUE(c.cached({0, 0}));
  EXPECT_FALSE(c.cached({0, 1}));  // was LRU
}

TEST(PageCache, DropFileDiscardsAndReportsDirty) {
  PageCache c(DiskParams{});
  c.insert(0, 0, 3, true);
  c.insert(1, 0, 3, false);
  const std::vector<PageKey> dirty = c.drop(0);
  EXPECT_EQ(dirty.size(), 3u);
  EXPECT_FALSE(c.cached({0, 0}));
  EXPECT_TRUE(c.cached({1, 0}));
  EXPECT_EQ(c.pages_cached(), 3u);
  c.drop_all();
  EXPECT_EQ(c.pages_cached(), 0u);
}

}  // namespace
}  // namespace pvfsib::disk
