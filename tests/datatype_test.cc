#include "mpiio/datatype.h"

#include <gtest/gtest.h>

#include "mpiio/file_view.h"

namespace pvfsib::mpiio {
namespace {

TEST(Datatype, Contiguous) {
  const Datatype t = Datatype::contiguous(100);
  EXPECT_EQ(t.size(), 100u);
  EXPECT_EQ(t.extent(), 100u);
  EXPECT_TRUE(t.contiguous_layout());
  ASSERT_EQ(t.map().size(), 1u);
  EXPECT_EQ(t.map()[0], (Extent{0, 100}));
}

TEST(Datatype, VectorOfBytes) {
  // 4 blocks of 3 bytes, stride 8 bytes.
  const Datatype t = Datatype::vector(4, 3, 8, Datatype::contiguous(1));
  EXPECT_EQ(t.size(), 12u);
  EXPECT_EQ(t.extent(), 27u);  // (4-1)*8 + 3
  ASSERT_EQ(t.map().size(), 4u);
  EXPECT_EQ(t.map()[0], (Extent{0, 3}));
  EXPECT_EQ(t.map()[1], (Extent{8, 3}));
  EXPECT_EQ(t.map()[3], (Extent{24, 3}));
  EXPECT_FALSE(t.contiguous_layout());
}

TEST(Datatype, VectorOfStructuredBase) {
  // Vector of 4-byte ints: 2 blocks of 2 ints, stride 4 ints.
  const Datatype ints = Datatype::contiguous(4);
  const Datatype t = Datatype::vector(2, 2, 4, ints);
  EXPECT_EQ(t.size(), 16u);
  ASSERT_EQ(t.map().size(), 2u);  // adjacent ints in a block coalesce
  EXPECT_EQ(t.map()[0], (Extent{0, 8}));
  EXPECT_EQ(t.map()[1], (Extent{16, 8}));
}

TEST(Datatype, Indexed) {
  const Datatype t = Datatype::indexed({{10, 5}, {0, 5}, {20, 5}});
  EXPECT_EQ(t.size(), 15u);
  EXPECT_EQ(t.extent(), 25u);
  EXPECT_TRUE(is_sorted_disjoint(t.map()));
}

TEST(Datatype, Subarray2D) {
  // 8x8 int array, 3x2 sub-block at (1,4).
  const Datatype t = Datatype::subarray({8, 8}, {3, 2}, {1, 4}, 4);
  EXPECT_EQ(t.size(), 3 * 2 * 4u);
  EXPECT_EQ(t.extent(), 8 * 8 * 4u);
  ASSERT_EQ(t.map().size(), 3u);  // one run per sub-row
  EXPECT_EQ(t.map()[0], (Extent{(1 * 8 + 4) * 4, 8}));
  EXPECT_EQ(t.map()[1], (Extent{(2 * 8 + 4) * 4, 8}));
  EXPECT_EQ(t.map()[2], (Extent{(3 * 8 + 4) * 4, 8}));
}

TEST(Datatype, Subarray3D) {
  const Datatype t = Datatype::subarray({4, 4, 4}, {2, 2, 2}, {0, 1, 1}, 1);
  EXPECT_EQ(t.size(), 8u);
  ASSERT_EQ(t.map().size(), 4u);  // 2 planes x 2 rows
  EXPECT_EQ(t.map()[0], (Extent{0 * 16 + 1 * 4 + 1, 2}));
  EXPECT_EQ(t.map()[3], (Extent{1 * 16 + 2 * 4 + 1, 2}));
}

TEST(Datatype, SubarrayFullIsContiguous) {
  const Datatype t = Datatype::subarray({4, 4}, {4, 4}, {0, 0}, 4);
  EXPECT_TRUE(t.contiguous_layout());
  EXPECT_EQ(t.size(), 64u);
}

TEST(Datatype, Repeat) {
  const Datatype row = Datatype::vector(2, 1, 2, Datatype::contiguous(4));
  const Datatype t = Datatype::repeat(3, row);
  EXPECT_EQ(t.size(), 3 * row.size());
  EXPECT_EQ(t.extent(), 3 * row.extent());
}

TEST(Datatype, Prefix) {
  const Datatype t = Datatype::vector(4, 1, 2, Datatype::contiguous(4));
  const ExtentList p = t.prefix(10);
  ASSERT_EQ(p.size(), 3u);
  EXPECT_EQ(p[0], (Extent{0, 4}));
  EXPECT_EQ(p[1], (Extent{8, 4}));
  EXPECT_EQ(p[2], (Extent{16, 2}));  // truncated
}

TEST(FileView, IdentityView) {
  const FileView v;
  const ExtentList e = v.map_range(100, 50);
  ASSERT_EQ(e.size(), 1u);
  EXPECT_EQ(e[0], (Extent{100, 50}));
}

TEST(FileView, DisplacementShifts) {
  const FileView v(1000, Datatype::contiguous(64));
  const ExtentList e = v.map_range(0, 128);
  ASSERT_EQ(e.size(), 1u);
  EXPECT_EQ(e[0], (Extent{1000, 128}));  // tiles merge contiguously
}

TEST(FileView, StridedViewMapsHoles) {
  // Filetype: first 4 bytes of a 16-byte tile (1 unit in every 4, the
  // Figure 5 access shape), built as a 1x4 subarray of 4-byte elements.
  const Datatype ft = Datatype::subarray({4}, {1}, {0}, 4);
  ASSERT_EQ(ft.size(), 4u);
  ASSERT_EQ(ft.extent(), 16u);
  const FileView v(0, ft);
  const ExtentList e = v.map_range(0, 12);
  ASSERT_EQ(e.size(), 3u);
  EXPECT_EQ(e[0], (Extent{0, 4}));
  EXPECT_EQ(e[1], (Extent{16, 4}));
  EXPECT_EQ(e[2], (Extent{32, 4}));
  // Starting mid-stream skips data bytes, not extent bytes.
  const ExtentList m = v.map_range(6, 4);
  ASSERT_EQ(m.size(), 2u);
  EXPECT_EQ(m[0], (Extent{18, 2}));
  EXPECT_EQ(m[1], (Extent{32, 2}));
}

TEST(FileView, BlockColumnView) {
  // The Figure 5 pattern: an N x N int array in row-major order, process p
  // of 4 sees one block-column: each row contributes N/4 ints.
  const u64 n = 16;
  const u64 elem = 4;
  const int p = 1;
  const Datatype row_piece = Datatype::subarray(
      {n, n}, {n, n / 4}, {0, p * (n / 4)}, elem);
  const FileView v(0, row_piece);
  EXPECT_EQ(v.tile_data(), n * (n / 4) * elem);
  const ExtentList e = v.map_range(0, v.tile_data());
  ASSERT_EQ(e.size(), n);
  for (u64 r = 0; r < n; ++r) {
    EXPECT_EQ(e[r].offset, (r * n + p * (n / 4)) * elem);
    EXPECT_EQ(e[r].length, (n / 4) * elem);
  }
}

TEST(FileView, MultiTileWalk) {
  // Filetype of 8 bytes data in a 32-byte extent; second tile starts at 32.
  const Datatype ft = Datatype::vector(2, 1, 4, Datatype::contiguous(4));
  ASSERT_EQ(ft.size(), 8u);
  ASSERT_EQ(ft.extent(), 20u);
  const FileView v(100, ft);
  // Tile 0 data: [100,104) and [116,120); tile 1 (base 120): [120,124),
  // [136,140). View bytes [4,16) start at the second piece of tile 0.
  const ExtentList e = v.map_range(4, 12);
  ASSERT_EQ(e.size(), 2u);
  EXPECT_EQ(e[0], (Extent{116, 8}));  // [116,120) merges with [120,124)
  EXPECT_EQ(e[1], (Extent{136, 4}));
}

TEST(FileView, ViewSizeBelow) {
  const Datatype ft = Datatype::vector(2, 1, 4, Datatype::contiguous(4));
  const FileView v(0, ft);  // extent 20, data 8 per tile
  EXPECT_EQ(v.view_size_below(0), 0u);
  EXPECT_EQ(v.view_size_below(4), 4u);
  EXPECT_EQ(v.view_size_below(16), 4u);
  EXPECT_EQ(v.view_size_below(20), 8u);
  EXPECT_EQ(v.view_size_below(24), 12u);
}

}  // namespace
}  // namespace pvfsib::mpiio
