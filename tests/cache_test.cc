// Client caching tier (src/cache/): attribute/name and data cache hits,
// LRU eviction, write-through and write-back modes, and the three
// coherence planes — write-notice sequences, stripe-version tags, and
// lease revocation on remove/takeover/migration. The cache-off run at the
// end pins the discipline that a disabled tier touches no counters.
#include <gtest/gtest.h>

#include <cstring>

#include "cache/client_cache.h"
#include "common/rng.h"
#include "pvfs/cluster.h"

namespace pvfsib::pvfs {
namespace {

void fill(Client& c, u64 addr, u64 n, u64 seed) {
  Rng rng(seed);
  for (u64 i = 0; i < n; ++i) {
    c.memory().write_pod<u8>(addr + i, static_cast<u8>(rng.next()));
  }
}

bool equal_mem(Client& c, u64 a, u64 b, u64 n) {
  return std::memcmp(c.memory().data(a), c.memory().data(b), n) == 0;
}

ModelConfig cache_cfg() {
  ModelConfig cfg = ModelConfig::paper_defaults();
  cfg.cache.enabled = true;
  return cfg;
}

// A name routed to `shard` of a `count`-wide plane, for shard-scoped
// revoke tests.
std::string name_on_shard(u32 shard, u32 count) {
  for (int i = 0;; ++i) {
    std::string n = "/f" + std::to_string(i);
    if (shard_of(n, count) == shard) return n;
  }
}

TEST(CacheTest, AttrHitServesOpenAndStat) {
  Cluster cluster(cache_cfg(), 2, 2);
  Client& c = cluster.client(0);
  OpenFile f = c.create("/a").value();  // create populates the attr cache
  const Stats& s = cluster.stats();
  const i64 hits0 = s.get(stat::kPvfsCacheHits);
  Result<OpenFile> o = c.open("/a");
  ASSERT_TRUE(o.is_ok());
  EXPECT_EQ(o.value().meta.handle, f.meta.handle);
  ASSERT_TRUE(c.stat("/a").is_ok());
  EXPECT_EQ(s.get(stat::kPvfsCacheHits), hits0 + 2);

  // A fresh client misses once, then hits.
  Client& c1 = cluster.client(1);
  const i64 miss0 = s.get(stat::kPvfsCacheMisses);
  ASSERT_TRUE(c1.open("/a").is_ok());
  EXPECT_EQ(s.get(stat::kPvfsCacheMisses), miss0 + 1);
  const i64 hits1 = s.get(stat::kPvfsCacheHits);
  ASSERT_TRUE(c1.open("/a").is_ok());
  EXPECT_EQ(s.get(stat::kPvfsCacheHits), hits1 + 1);
}

TEST(CacheTest, AttrTtlExpiresWithoutLeases) {
  ModelConfig cfg = cache_cfg();
  cfg.cache.leases = false;
  cfg.cache.attr_ttl = Duration::ms(1.0);
  Cluster cluster(cfg, 1, 2);
  Client& c = cluster.client(0);
  c.create("/ttl").value();
  const Stats& s = cluster.stats();
  const i64 hits0 = s.get(stat::kPvfsCacheHits);
  ASSERT_TRUE(c.open("/ttl").is_ok());  // inside the TTL: a hit
  EXPECT_EQ(s.get(stat::kPvfsCacheHits), hits0 + 1);
  c.advance_to(c.now() + Duration::ms(5.0));
  const i64 miss0 = s.get(stat::kPvfsCacheMisses);
  ASSERT_TRUE(c.open("/ttl").is_ok());  // expired: back to the wire
  EXPECT_EQ(s.get(stat::kPvfsCacheMisses), miss0 + 1);
}

TEST(CacheTest, DataHitReturnsBytesAtZeroCost) {
  Cluster cluster(cache_cfg(), 2, 4);
  Client& c0 = cluster.client(0);
  Client& c1 = cluster.client(1);
  OpenFile f = c0.create("/d").value();
  const u64 n = 128 * kKiB;
  const u64 src = c0.memory().alloc(n);
  fill(c0, src, n, 7);
  ASSERT_TRUE(c0.write(f, 0, src, n).ok());

  // A reader's first pass goes to the wire and caches; the second is a
  // local hit at zero simulated cost with identical bytes.
  OpenFile g = c1.open("/d").value();
  const u64 d1 = c1.memory().alloc(n);
  const u64 d2 = c1.memory().alloc(n);
  ASSERT_TRUE(c1.read(g, 0, d1, n).ok());
  const Stats& s = cluster.stats();
  const i64 hits0 = s.get(stat::kPvfsCacheHits);
  IoResult r2 = c1.read(g, 0, d2, n);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(s.get(stat::kPvfsCacheHits), hits0 + 1);
  EXPECT_EQ(r2.elapsed(), Duration::zero());
  EXPECT_TRUE(equal_mem(c1, d1, d2, n));
  for (u64 i = 0; i < n; ++i) {
    ASSERT_EQ(c1.memory().read_pod<u8>(d2 + i),
              c0.memory().read_pod<u8>(src + i))
        << i;
  }
}

TEST(CacheTest, WriteThroughPopulatesWriterCache) {
  Cluster cluster(cache_cfg(), 1, 4);
  Client& c = cluster.client(0);
  OpenFile f = c.create("/wt").value();
  const u64 n = 64 * kKiB;
  const u64 src = c.memory().alloc(n);
  const u64 dst = c.memory().alloc(n);
  fill(c, src, n, 9);
  ASSERT_TRUE(c.write(f, 0, src, n).ok());
  // Write-through inserted the written bytes: the read-back is a hit.
  const Stats& s = cluster.stats();
  const i64 hits0 = s.get(stat::kPvfsCacheHits);
  IoResult r = c.read(f, 0, dst, n);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(s.get(stat::kPvfsCacheHits), hits0 + 1);
  EXPECT_TRUE(equal_mem(c, src, dst, n));
}

TEST(CacheTest, LruEvictionBoundsDataBytes) {
  ModelConfig cfg = cache_cfg();
  cfg.cache.data_capacity = 64 * kKiB;
  Cluster cluster(cfg, 1, 4);
  Client& c = cluster.client(0);
  OpenFile f = c.create("/lru").value();
  const u64 n = 256 * kKiB;
  const u64 src = c.memory().alloc(n);
  fill(c, src, n, 11);
  ASSERT_TRUE(c.write(f, 0, src, n).ok());
  EXPECT_LE(c.data_cache().data_bytes(), 64 * kKiB);
  // Touch disjoint ranges; the budget holds throughout.
  const u64 dst = c.memory().alloc(n);
  for (u64 off = 0; off < n; off += 64 * kKiB) {
    ASSERT_TRUE(c.read(f, off, dst + off, 64 * kKiB).ok());
    EXPECT_LE(c.data_cache().data_bytes(), 64 * kKiB);
  }
  EXPECT_TRUE(equal_mem(c, src, dst, n));
}

TEST(CacheTest, RemoveInvalidatesAcrossClients) {
  Cluster cluster(cache_cfg(), 2, 2);
  Client& c0 = cluster.client(0);
  Client& c1 = cluster.client(1);
  OpenFile f = c0.create("/gone").value();
  const u64 n = 16 * kKiB;
  const u64 src = c0.memory().alloc(n);
  fill(c0, src, n, 13);
  ASSERT_TRUE(c0.write(f, 0, src, n).ok());
  // c1 caches the attr and the data.
  OpenFile g = c1.open("/gone").value();
  const u64 dst = c1.memory().alloc(n);
  ASSERT_TRUE(c1.read(g, 0, dst, n).ok());
  EXPECT_GT(c1.data_cache().data_entries(g.meta.handle), 0u);

  // The remove's lease revoke sweeps every client's entries for the name.
  ASSERT_TRUE(c0.remove("/gone").is_ok());
  EXPECT_EQ(c1.data_cache().data_entries(g.meta.handle), 0u);
  EXPECT_FALSE(c1.open("/gone").is_ok());  // no stale attr resurrection
  EXPECT_GT(cluster.stats().get(stat::kPvfsCacheLeaseRevokes), 0);
}

TEST(CacheTest, CrossClientWriteInvalidatesStaleData) {
  Cluster cluster(cache_cfg(), 2, 4);
  Client& c0 = cluster.client(0);
  Client& c1 = cluster.client(1);
  OpenFile f = c0.create("/x").value();
  const u64 n = 128 * kKiB;
  const u64 a = c0.memory().alloc(n);
  fill(c0, a, n, 21);
  ASSERT_TRUE(c0.write(f, 0, a, n).ok());

  OpenFile g = c1.open("/x").value();
  const u64 d = c1.memory().alloc(n);
  ASSERT_TRUE(c1.read(g, 0, d, n).ok());  // caches version A

  // c0 overwrites: the write-notice seq moves, so c1's entries fail their
  // tag check — the next read is a miss that returns the new bytes.
  const u64 b = c0.memory().alloc(n);
  fill(c0, b, n, 22);
  ASSERT_TRUE(c0.write(f, 0, b, n).ok());
  const Stats& s = cluster.stats();
  const i64 miss0 = s.get(stat::kPvfsCacheMisses);
  ASSERT_TRUE(c1.read(g, 0, d, n).ok());
  EXPECT_EQ(s.get(stat::kPvfsCacheMisses), miss0 + 1);
  for (u64 i = 0; i < n; ++i) {
    ASSERT_EQ(c1.memory().read_pod<u8>(d + i),
              c0.memory().read_pod<u8>(b + i))
        << i;
  }
  EXPECT_GT(s.get(stat::kPvfsCacheInvalidations), 0);
}

TEST(CacheTest, TakeoverRevokesOnlyAffectedShard) {
  ModelConfig cfg = cache_cfg();
  // Shard 0's primary dies for good at 10 ms; its standby promotes itself
  // at 12 ms. The retry budget lets the client's metadata calls fail over.
  cfg.fault.seed = 7;
  cfg.fault.round_timeout = Duration::ms(2.0);
  cfg.fault.backoff_base = Duration::us(100.0);
  cfg.fault.backoff_cap = Duration::ms(2.0);
  cfg.fault.max_retries = 25;
  cfg.fault.standby_takeover = true;
  cfg.fault.manager_takeover_delay = Duration::ms(2.0);
  cfg.fault.schedule.push_back(
      FaultEvent{FaultKind::kManagerCrash,
                 TimePoint::origin() + Duration::ms(10.0), 0,
                 Duration::sec(1000.0)});
  Cluster cluster(cfg,
                  Cluster::Topology{}.clients(1).iods(2).metadata_shards(2)
                      .standbys());
  Client& c = cluster.client(0);
  const std::string n0 = name_on_shard(0, 2);
  const std::string n1 = name_on_shard(1, 2);
  c.create(n0).value();
  c.create(n1).value();

  cluster.run();  // the crash window opens and the standby takes over
  ASSERT_GT(cluster.stats().get(stat::kPvfsManagerTakeovers), 0);
  EXPECT_GT(cluster.stats().get(stat::kPvfsCacheLeaseRevokes), 0);

  // Shard 1's attr survived the bump (hit); shard 0's was revoked (miss).
  const Stats& s = cluster.stats();
  const i64 hits0 = s.get(stat::kPvfsCacheHits);
  ASSERT_TRUE(c.open(n1).is_ok());
  EXPECT_EQ(s.get(stat::kPvfsCacheHits), hits0 + 1);
  const i64 miss0 = s.get(stat::kPvfsCacheMisses);
  ASSERT_TRUE(c.open(n0).is_ok());
  EXPECT_EQ(s.get(stat::kPvfsCacheMisses), miss0 + 1);
}

TEST(CacheTest, MigrationCutoverRevokesLeases) {
  Cluster cluster(cache_cfg(), 1, 2);
  Client& c = cluster.client(0);
  OpenFile f = c.create("/mig").value();
  const u64 n = 32 * kKiB;
  const u64 src = c.memory().alloc(n);
  fill(c, src, n, 31);
  ASSERT_TRUE(c.write(f, 0, src, n).ok());
  EXPECT_GT(c.data_cache().data_entries(f.meta.handle), 0u);

  ASSERT_TRUE(cluster.migrate_shard(0, c.now() + Duration::ms(1.0)));
  cluster.run();
  EXPECT_GT(cluster.stats().get(stat::kPvfsShardMigrations), 0);
  // The cutover's epoch bump revoked the shard's leases: the fresh
  // authority's write sequences restart at zero, so keeping entries would
  // invite an ABA re-validation.
  EXPECT_EQ(c.data_cache().data_entries(f.meta.handle), 0u);
  EXPECT_GT(cluster.stats().get(stat::kPvfsCacheLeaseRevokes), 0);
  // Everything still reads back through the new owner.
  const u64 dst = c.memory().alloc(n);
  ASSERT_TRUE(c.read(f, 0, dst, n).ok());
  EXPECT_TRUE(equal_mem(c, src, dst, n));
}

TEST(CacheTest, WriteBackFlushesOnClose) {
  ModelConfig cfg = cache_cfg();
  cfg.cache.write_back = true;
  cfg.cache.staleness_bound = Duration::ms(10'000.0);  // no auto-flush here
  Cluster cluster(cfg, 2, 4);
  Client& c0 = cluster.client(0);
  Client& c1 = cluster.client(1);
  OpenFile f = c0.create("/wb").value();
  const u64 n = 64 * kKiB;
  const u64 src = c0.memory().alloc(n);
  fill(c0, src, n, 41);
  IoResult w = c0.write(f, 0, src, n);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w.elapsed(), Duration::zero());  // staged, not on the wire
  EXPECT_TRUE(c0.data_cache().has_dirty(f.meta.handle));

  // The writer's own read sees the staged bytes (read-your-writes).
  const u64 rb = c0.memory().alloc(n);
  ASSERT_TRUE(c0.read(f, 0, rb, n).ok());
  EXPECT_TRUE(equal_mem(c0, src, rb, n));

  IoResult fl = c0.close(f);
  ASSERT_TRUE(fl.ok()) << fl.status.to_string();
  EXPECT_FALSE(c0.data_cache().has_dirty(f.meta.handle));
  EXPECT_EQ(c0.data_cache().data_entries(f.meta.handle), 0u);

  // The flush made the bytes durable for everyone else.
  OpenFile g = c1.open("/wb").value();
  const u64 dst = c1.memory().alloc(n);
  ASSERT_TRUE(c1.read(g, 0, dst, n).ok());
  for (u64 i = 0; i < n; ++i) {
    ASSERT_EQ(c1.memory().read_pod<u8>(dst + i),
              c0.memory().read_pod<u8>(src + i))
        << i;
  }
}

TEST(CacheTest, WriteBackStalenessBoundAutoFlushes) {
  ModelConfig cfg = cache_cfg();
  cfg.cache.write_back = true;
  cfg.cache.staleness_bound = Duration::ms(2.0);
  Cluster cluster(cfg, 2, 4);
  Client& c0 = cluster.client(0);
  Client& c1 = cluster.client(1);
  OpenFile f = c0.create("/auto").value();
  const u64 n = 32 * kKiB;
  const u64 src = c0.memory().alloc(n);
  fill(c0, src, n, 43);
  ASSERT_TRUE(c0.write(f, 0, src, n).ok());
  EXPECT_TRUE(c0.data_cache().has_dirty(f.meta.handle));

  // The armed staleness_bound timer flushes without any further call.
  cluster.run();
  EXPECT_FALSE(c0.data_cache().has_dirty(f.meta.handle));
  OpenFile g = c1.open("/auto").value();
  const u64 dst = c1.memory().alloc(n);
  ASSERT_TRUE(c1.read(g, 0, dst, n).ok());
  for (u64 i = 0; i < n; ++i) {
    ASSERT_EQ(c1.memory().read_pod<u8>(dst + i),
              c0.memory().read_pod<u8>(src + i))
        << i;
  }
}

TEST(CacheTest, NoteVersionDropsConflictingEntry) {
  // Direct unit test of the version-tag plane: an entry tagged with an
  // older stripe version than a note_replica_version conflict reports is
  // unservable and must be dropped.
  CacheParams p;
  p.enabled = true;
  Stats stats;
  cache::ClientCache cc(p, &stats);
  const Handle h = 42;
  std::vector<std::byte> bytes(4096, std::byte{0x5a});
  cc.insert_clean(h, 64 * kKiB, 4, {{0, 4096}}, bytes,
                  [](u32, u64* seq, u64* version) {
                    *seq = 1;
                    *version = 5;
                  });
  ASSERT_EQ(cc.data_entries(h), 1u);
  cc.note_version(h, 0, 7);  // stripe 0's replicas are at version 7
  EXPECT_EQ(cc.data_entries(h), 0u);

  // A current entry survives the same note.
  cc.insert_clean(h, 64 * kKiB, 4, {{0, 4096}}, bytes,
                  [](u32, u64* seq, u64* version) {
                    *seq = 2;
                    *version = 7;
                  });
  cc.note_version(h, 0, 7);
  EXPECT_EQ(cc.data_entries(h), 1u);
}

TEST(CacheTest, StaleTagFailsHitAndDropsEntry) {
  // Unit test of hit-time validation: read_lookup consults the supplied
  // TagCheck and treats a failing clean entry as a miss, dropping it.
  CacheParams p;
  p.enabled = true;
  Stats stats;
  cache::ClientCache cc(p, &stats);
  const Handle h = 7;
  std::vector<std::byte> bytes(8192, std::byte{0x11});
  cc.insert_clean(h, 64 * kKiB, 2, {{0, 8192}}, bytes,
                  [](u32, u64* seq, u64* version) {
                    *seq = 3;
                    *version = 1;
                  });
  std::vector<std::byte> out;
  // Authority seq moved to 4: the entry is stale.
  EXPECT_FALSE(cc.read_lookup(
      h, {{0, 8192}}, [](u32, u64 seq, u64) { return seq == 4; }, &out));
  EXPECT_EQ(cc.data_entries(h), 0u);
  EXPECT_EQ(stats.get(stat::kPvfsCacheInvalidations), 1);
  EXPECT_EQ(stats.get(stat::kPvfsCacheMisses), 1);
}

TEST(CacheTest, CacheOffIsInert) {
  // Defaults: cache disabled. The tier must contribute nothing — no
  // counters, no entries — so cache-off runs stay byte-identical.
  Cluster cluster(ModelConfig::paper_defaults(), 2, 2);
  Client& c = cluster.client(0);
  OpenFile f = c.create("/off").value();
  const u64 n = 32 * kKiB;
  const u64 src = c.memory().alloc(n);
  const u64 dst = c.memory().alloc(n);
  fill(c, src, n, 51);
  ASSERT_TRUE(c.write(f, 0, src, n).ok());
  ASSERT_TRUE(c.read(f, 0, dst, n).ok());
  ASSERT_TRUE(c.open("/off").is_ok());
  ASSERT_TRUE(cluster.client(1).open("/off").is_ok());
  ASSERT_TRUE(c.remove("/off").is_ok());
  const Stats& s = cluster.stats();
  EXPECT_EQ(s.get(stat::kPvfsCacheHits), 0);
  EXPECT_EQ(s.get(stat::kPvfsCacheMisses), 0);
  EXPECT_EQ(s.get(stat::kPvfsCacheInvalidations), 0);
  EXPECT_EQ(s.get(stat::kPvfsCacheLeaseRevokes), 0);
  EXPECT_FALSE(c.data_cache().enabled());
  EXPECT_EQ(c.data_cache().attr_entries(), 0u);
  EXPECT_EQ(s.to_string().find("pvfs.cache"), std::string::npos);
}

}  // namespace
}  // namespace pvfsib::pvfs
