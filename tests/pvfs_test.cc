#include "pvfs/cluster.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace pvfsib::pvfs {
namespace {

// Fill client memory at [addr, addr+n) with a deterministic pattern.
void fill(Client& c, u64 addr, u64 n, u64 seed) {
  Rng rng(seed);
  for (u64 i = 0; i < n; ++i) {
    c.memory().write_pod<u8>(addr + i, static_cast<u8>(rng.next()));
  }
}

bool equal_mem(Client& c, u64 a, u64 b, u64 n) {
  return std::memcmp(c.memory().data(a), c.memory().data(b), n) == 0;
}

class PvfsTest : public ::testing::Test {
 protected:
  PvfsTest() : cluster_(ModelConfig::paper_defaults(), 4, 4) {}
  Cluster cluster_;
};

TEST_F(PvfsTest, CreateOpenStat) {
  Client& c = cluster_.client(0);
  Result<OpenFile> f = c.create("/pvfs/a");
  ASSERT_TRUE(f.is_ok());
  EXPECT_EQ(f.value().meta.stripe_size, 64 * kKiB);
  EXPECT_EQ(f.value().meta.iod_count, 4u);
  // Creating again fails; opening from another client works.
  EXPECT_FALSE(c.create("/pvfs/a").is_ok());
  Result<OpenFile> g = cluster_.client(1).open("/pvfs/a");
  ASSERT_TRUE(g.is_ok());
  EXPECT_EQ(g.value().meta.handle, f.value().meta.handle);
  EXPECT_FALSE(cluster_.client(1).open("/pvfs/missing").is_ok());
  // Metadata ops consumed (virtual) time.
  EXPECT_GT(c.now(), TimePoint::origin());
}

TEST_F(PvfsTest, ContiguousRoundTrip) {
  Client& c = cluster_.client(0);
  OpenFile f = c.create("/f").value();
  const u64 n = 1 * kMiB;  // spans multiple stripes on all 4 iods
  const u64 src = c.memory().alloc(n);
  const u64 dst = c.memory().alloc(n);
  fill(c, src, n, 1);
  IoResult w = c.write(f, 0, src, n);
  ASSERT_TRUE(w.ok()) << w.status.to_string();
  EXPECT_EQ(w.bytes, n);
  EXPECT_GT(w.elapsed(), Duration::zero());
  IoResult r = c.read(f, 0, dst, n);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(equal_mem(c, src, dst, n));
}

TEST_F(PvfsTest, DataIsStripedAcrossIods) {
  Client& c = cluster_.client(0);
  OpenFile f = c.create("/striped").value();
  const u64 n = 512 * kKiB;  // 8 stripes of 64 KiB -> 2 per iod
  const u64 src = c.memory().alloc(n);
  fill(c, src, n, 2);
  ASSERT_TRUE(c.write(f, 0, src, n).ok());
  for (u32 i = 0; i < 4; ++i) {
    EXPECT_EQ(cluster_.iod(i).file(f.meta.handle).size(), 128 * kKiB)
        << "iod " << i;
  }
}

TEST_F(PvfsTest, ListIoNoncontiguousBothSides) {
  Client& c = cluster_.client(0);
  OpenFile f = c.create("/list").value();
  // 64 memory rows of 1000 B strided 4 KiB <-> 50 file extents of 1280 B.
  const u64 rows = 64;
  const u64 base = c.memory().alloc(rows * 4096);
  core::ListIoRequest req;
  for (u64 r = 0; r < rows; ++r) {
    req.mem.push_back({base + r * 4096, 1000});
    fill(c, base + r * 4096, 1000, 100 + r);
  }
  for (u64 i = 0; i < 50; ++i) {
    req.file.push_back({i * 5000, 1280});
  }
  ASSERT_EQ(core::total_bytes(req.mem), total_length(req.file));
  IoResult w = c.write_list(f, req);
  ASSERT_TRUE(w.ok()) << w.status.to_string();

  // Read back into different buffers with the same shapes.
  const u64 base2 = c.memory().alloc(rows * 4096);
  core::ListIoRequest rreq = req;
  for (u64 r = 0; r < rows; ++r) rreq.mem[r].addr = base2 + r * 4096;
  IoResult rd = c.read_list(f, rreq);
  ASSERT_TRUE(rd.ok()) << rd.status.to_string();
  for (u64 r = 0; r < rows; ++r) {
    EXPECT_TRUE(equal_mem(c, base + r * 4096, base2 + r * 4096, 1000))
        << "row " << r;
  }
}

TEST_F(PvfsTest, ReadOfUnwrittenRegionIsZero) {
  Client& c = cluster_.client(0);
  OpenFile f = c.create("/holes").value();
  const u64 src = c.memory().alloc(4096);
  fill(c, src, 4096, 3);
  ASSERT_TRUE(c.write(f, 1 * kMiB, src, 4096).ok());
  const u64 dst = c.memory().alloc(4096);
  fill(c, dst, 4096, 4);  // garbage to overwrite
  ASSERT_TRUE(c.read(f, 0, dst, 4096).ok());
  for (u64 i = 0; i < 4096; ++i) {
    ASSERT_EQ(c.memory().read_pod<u8>(dst + i), 0u) << i;
  }
}

TEST_F(PvfsTest, SyncWriteSlowerThanNoSync) {
  Client& c = cluster_.client(0);
  OpenFile f = c.create("/sync").value();
  const u64 n = 2 * kMiB;
  const u64 src = c.memory().alloc(n);
  fill(c, src, n, 5);
  IoOptions nosync;
  IoResult w1 = c.write(f, 0, src, n, nosync);
  IoOptions sync;
  sync.sync = true;
  IoResult w2 = c.write(f, n, src, n, sync);
  ASSERT_TRUE(w1.ok());
  ASSERT_TRUE(w2.ok());
  // fsync forces the 25 MB/s media path: order-of-magnitude slower.
  EXPECT_GT(w2.elapsed().as_us(), 5 * w1.elapsed().as_us());
}

TEST_F(PvfsTest, SmallWritesUseFastPathNoRegistration) {
  Client& c = cluster_.client(0);
  OpenFile f = c.create("/fast").value();
  const u64 n = 16 * kKiB;  // below the 64 KiB Fast-RDMA threshold per iod
  const u64 src = c.memory().alloc(n);
  const i64 regs_before = cluster_.stats().get(stat::kMrRegister);
  ASSERT_TRUE(c.write(f, 0, src, n).ok());
  EXPECT_EQ(cluster_.stats().get(stat::kMrRegister), regs_before);
}

TEST_F(PvfsTest, LargeWritesRegisterViaOgr) {
  Client& c = cluster_.client(0);
  OpenFile f = c.create("/large").value();
  const u64 n = 4 * kMiB;
  const u64 src = c.memory().alloc(n);
  const i64 regs_before = cluster_.stats().get(stat::kMrRegister);
  ASSERT_TRUE(c.write(f, 0, src, n).ok());
  const i64 regs = cluster_.stats().get(stat::kMrRegister) - regs_before;
  // One operation-wide group registration covers every per-iod slice; the
  // slices then hit the pin-down cache.
  EXPECT_EQ(regs, 1);
}

TEST_F(PvfsTest, RequestsCountRounds) {
  Client& c = cluster_.client(0);
  OpenFile f = c.create("/rounds").value();
  // 200 extents of 1 KiB in the first stripe: all to iod0, 128-pair limit
  // forces two rounds.
  core::ListIoRequest req;
  const u64 base = c.memory().alloc(200 * kKiB);
  for (u64 i = 0; i < 200; ++i) {
    req.mem.push_back({base + i * kKiB, 512});
    req.file.push_back({i * 300, 512});
  }
  const i64 before = cluster_.stats().get(stat::kPvfsRequest);
  ASSERT_TRUE(c.write_list(f, req).ok());
  const i64 requests = cluster_.stats().get(stat::kPvfsRequest) - before;
  EXPECT_EQ(requests, 2);
}

TEST_F(PvfsTest, ConcurrentClientsShareIodsCorrectly) {
  // All four clients write disjoint regions simultaneously, then read back.
  OpenFile f = cluster_.client(0).create("/conc").value();
  const u64 n = 1 * kMiB;
  std::vector<u64> src(4), dst(4);
  std::vector<IoResult> results(4);
  int finished = 0;
  for (u32 k = 0; k < 4; ++k) {
    Client& c = cluster_.client(k);
    OpenFile fk = k == 0 ? f : c.open("/conc").value();
    src[k] = c.memory().alloc(n);
    fill(c, src[k], n, 10 + k);
    core::ListIoRequest req;
    req.mem = {{src[k], n}};
    req.file = {{k * n, n}};
    c.submit({IoDir::kWrite, fk, req, IoOptions{},
              TimePoint::origin() /* clamped */})
        .on_complete([&results, &finished, k](IoResult r) {
          results[k] = r;
          ++finished;
        });
  }
  cluster_.run();
  ASSERT_EQ(finished, 4);
  for (u32 k = 0; k < 4; ++k) {
    ASSERT_TRUE(results[k].ok()) << k << results[k].status.to_string();
  }
  // Read everything back from client 0 and verify each region against the
  // regenerated pattern of the client that wrote it.
  Client& c0 = cluster_.client(0);
  for (u32 k = 0; k < 4; ++k) {
    dst[k] = c0.memory().alloc(n);
    ASSERT_TRUE(c0.read(f, k * n, dst[k], n).ok());
    Rng rng(10 + k);
    for (u64 i = 0; i < n; ++i) {
      const u8 expect = static_cast<u8>(rng.next());
      ASSERT_EQ(c0.memory().read_pod<u8>(dst[k] + i), expect)
          << "client " << k << " byte " << i;
    }
  }
}

TEST_F(PvfsTest, AdsEngagesForDenseSmallAccesses) {
  Client& c = cluster_.client(0);
  OpenFile f = c.create("/ads").value();
  // Preload the file region.
  const u64 span = 2 * kMiB;
  const u64 big = c.memory().alloc(span);
  fill(c, big, span, 7);
  ASSERT_TRUE(c.write(f, 0, big, span).ok());

  // Dense small strided read: 1 in 4 of 512-byte units.
  core::ListIoRequest req;
  const u64 dst = c.memory().alloc(256 * kKiB);
  u64 mem_off = 0;
  for (u64 i = 0; i < 256; ++i) {
    req.file.push_back({i * 2048, 512});
    req.mem.push_back({dst + mem_off, 512});
    mem_off += 512;
  }
  const i64 sieved_before = cluster_.stats().get(stat::kAdsSieved);
  IoOptions opts;
  opts.use_ads = true;
  IoResult r = c.read_list(f, req, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(cluster_.stats().get(stat::kAdsSieved), sieved_before);
  // Data must match the original pattern.
  for (u64 i = 0; i < 256; ++i) {
    ASSERT_TRUE(equal_mem(c, big + i * 2048, dst + i * 512, 512)) << i;
  }
}

TEST_F(PvfsTest, AdsOffServicesSeparately) {
  Client& c = cluster_.client(0);
  OpenFile f = c.create("/noads").value();
  const u64 span = 1 * kMiB;
  const u64 big = c.memory().alloc(span);
  fill(c, big, span, 8);
  ASSERT_TRUE(c.write(f, 0, big, span).ok());

  core::ListIoRequest req;
  const u64 dst = c.memory().alloc(64 * kKiB);
  for (u64 i = 0; i < 128; ++i) {
    req.file.push_back({i * 2048, 512});
    req.mem.push_back({dst + i * 512, 512});
  }
  const i64 sieved_before = cluster_.stats().get(stat::kAdsSieved);
  const i64 separate_before = cluster_.stats().get(stat::kAdsSeparate);
  IoOptions opts;
  opts.use_ads = false;
  ASSERT_TRUE(c.read_list(f, req, opts).ok());
  EXPECT_EQ(cluster_.stats().get(stat::kAdsSieved), sieved_before);
  // With ADS off the decision isn't even consulted.
  EXPECT_EQ(cluster_.stats().get(stat::kAdsSeparate), separate_before);
  for (u64 i = 0; i < 128; ++i) {
    ASSERT_TRUE(equal_mem(c, big + i * 2048, dst + i * 512, 512)) << i;
  }
}

TEST_F(PvfsTest, AllTransferSchemesRoundTrip) {
  Client& c = cluster_.client(0);
  u32 idx = 0;
  for (core::XferScheme s :
       {core::XferScheme::kMultipleMessage, core::XferScheme::kPackUnpack,
        core::XferScheme::kRdmaGatherScatter, core::XferScheme::kHybrid}) {
    SCOPED_TRACE(core::to_string(s));
    OpenFile f = c.create("/scheme" + std::to_string(idx++)).value();
    const u64 rows = 96;
    const u64 base = c.memory().alloc(rows * 4096);
    core::ListIoRequest req;
    for (u64 r = 0; r < rows; ++r) {
      req.mem.push_back({base + r * 4096, 2048});
      fill(c, base + r * 4096, 2048, 200 + r);
      req.file.push_back({r * 8192, 2048});
    }
    IoOptions opts;
    opts.policy.scheme = s;
    ASSERT_TRUE(c.write_list(f, req, opts).ok());
    const u64 base2 = c.memory().alloc(rows * 4096);
    core::ListIoRequest rreq = req;
    for (u64 r = 0; r < rows; ++r) rreq.mem[r].addr = base2 + r * 4096;
    ASSERT_TRUE(c.read_list(f, rreq, opts).ok());
    for (u64 r = 0; r < rows; ++r) {
      ASSERT_TRUE(equal_mem(c, base + r * 4096, base2 + r * 4096, 2048))
          << "row " << r;
    }
  }
}

TEST_F(PvfsTest, DirectGatherReadIntoContiguousBuffer) {
  Client& c = cluster_.client(0);
  OpenFile f = c.create("/direct").value();
  const u64 span = 4 * kMiB;
  const u64 big = c.memory().alloc(span);
  fill(c, big, span, 9);
  ASSERT_TRUE(c.write(f, 0, big, span).ok());

  // Strided file accesses into one contiguous destination: eligible for
  // the server gather-push return path.
  core::ListIoRequest req;
  const u64 dst = c.memory().alloc(2 * kMiB);
  u64 off = 0;
  for (u64 i = 0; i < 128; ++i) {
    req.file.push_back({i * 32768, 16384});
    off += 16384;
  }
  req.mem = {{dst, off}};
  IoResult r = c.read_list(f, req);
  ASSERT_TRUE(r.ok());
  u64 pos = 0;
  for (u64 i = 0; i < 128; ++i) {
    ASSERT_TRUE(equal_mem(c, big + i * 32768, dst + pos, 16384)) << i;
    pos += 16384;
  }
}

TEST_F(PvfsTest, ManagerTracksLogicalSize) {
  Client& c = cluster_.client(0);
  OpenFile f = c.create("/size").value();
  const u64 src = c.memory().alloc(4096);
  ASSERT_TRUE(c.write(f, 10 * kMiB, src, 4096).ok());
  Result<FileMeta> meta = cluster_.manager().stat("/size");
  ASSERT_TRUE(meta.is_ok());
  EXPECT_EQ(meta.value().logical_size, 10 * kMiB + 4096);
}

TEST_F(PvfsTest, BaseIodPlacement) {
  Client& c = cluster_.client(0);
  // A one-stripe file with an explicit base lands on exactly that iod.
  OpenFile f = c.create("/base2", 64 * kKiB, 4, /*base_iod=*/2).value();
  EXPECT_EQ(f.meta.base_iod, 2u);
  const u64 src = c.memory().alloc(64 * kKiB);
  ASSERT_TRUE(c.write(f, 0, src, 64 * kKiB).ok());
  EXPECT_EQ(cluster_.iod(2).file(f.meta.handle).size(), 64 * kKiB);
  EXPECT_EQ(cluster_.iod(0).file(f.meta.handle).size(), 0u);
  // The second stripe wraps to the next physical iod.
  ASSERT_TRUE(c.write(f, 64 * kKiB, src, 64 * kKiB).ok());
  EXPECT_EQ(cluster_.iod(3).file(f.meta.handle).size(), 64 * kKiB);
  // Auto placement rotates bases with the handle, so consecutive small
  // files do not all pile onto iod 0.
  OpenFile g1 = c.create("/auto1").value();
  OpenFile g2 = c.create("/auto2").value();
  EXPECT_NE(g1.meta.base_iod, g2.meta.base_iod);
  // Round-trip still works across the wrap.
  const u64 dst = c.memory().alloc(128 * kKiB);
  ASSERT_TRUE(c.read(f, 0, dst, 128 * kKiB).ok());
}

TEST_F(PvfsTest, RemoveDeletesEverywhere) {
  Client& c = cluster_.client(0);
  OpenFile f = c.create("/rm").value();
  const u64 n = 512 * kKiB;
  const u64 src = c.memory().alloc(n);
  ASSERT_TRUE(c.write(f, 0, src, n).ok());
  for (u32 i = 0; i < 4; ++i) {
    EXPECT_GT(cluster_.iod(i).file(f.meta.handle).size(), 0u);
  }
  ASSERT_TRUE(c.remove("/rm").is_ok());
  EXPECT_FALSE(c.open("/rm").is_ok());
  EXPECT_FALSE(c.remove("/rm").is_ok());  // double remove
  // Stripe files were purged; re-creating starts from scratch.
  OpenFile g = c.create("/rm").value();
  const u64 dst = c.memory().alloc(4096);
  ASSERT_TRUE(c.read(g, 0, dst, 4096).ok());
  for (u64 i = 0; i < 4096; ++i) {
    ASSERT_EQ(c.memory().read_pod<u8>(dst + i), 0u);
  }
}

TEST_F(PvfsTest, StatReturnsMetadataWithCost) {
  Client& c = cluster_.client(0);
  ASSERT_TRUE(c.create("/st").is_ok());
  const TimePoint before = c.now();
  Result<FileMeta> meta = c.stat("/st");
  ASSERT_TRUE(meta.is_ok());
  EXPECT_EQ(meta.value().iod_count, 4u);
  EXPECT_GT(c.now(), before);  // the metadata round-trip took time
  EXPECT_FALSE(c.stat("/missing").is_ok());
}

TEST_F(PvfsTest, InvalidRequestRejected) {
  Client& c = cluster_.client(0);
  OpenFile f = c.create("/bad").value();
  core::ListIoRequest req;
  req.mem = {{c.memory().alloc(100), 100}};
  req.file = {{0, 99}};  // byte totals differ
  EXPECT_FALSE(c.write_list(f, req).ok());
}

}  // namespace
}  // namespace pvfsib::pvfs
