#include "disk/local_fs.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace pvfsib::disk {
namespace {

std::vector<std::byte> pattern(u64 n, u8 seed = 1) {
  std::vector<std::byte> v(n);
  for (u64 i = 0; i < n; ++i) v[i] = std::byte{static_cast<u8>(seed + i * 7)};
  return v;
}

class LocalFsTest : public ::testing::Test {
 protected:
  LocalFsTest() : fs_("iod0", DiskParams{}, FsParams{}, &stats_) {}
  Stats stats_;
  LocalFs fs_;
};

TEST_F(LocalFsTest, CreateOpenExists) {
  ASSERT_TRUE(fs_.create("/data/f0").is_ok());
  EXPECT_TRUE(fs_.exists("/data/f0"));
  EXPECT_FALSE(fs_.exists("/data/f1"));
  EXPECT_FALSE(fs_.create("/data/f0").is_ok());  // duplicate
  Result<u32> fd = fs_.open("/data/f0");
  ASSERT_TRUE(fd.is_ok());
  EXPECT_FALSE(fs_.open("/data/nope").is_ok());
}

TEST_F(LocalFsTest, WriteThenReadRoundTrips) {
  const u32 fd = fs_.create("f").value();
  LocalFile& f = fs_.file(fd);
  const auto data = pattern(10000);
  Timed<u64> w = f.pwrite(100, data);
  EXPECT_EQ(w.value, 10000u);
  EXPECT_EQ(f.size(), 10100u);
  std::vector<std::byte> back(10000);
  Timed<u64> r = f.pread(100, back);
  EXPECT_EQ(r.value, 10000u);
  EXPECT_EQ(back, data);
}

TEST_F(LocalFsTest, ShortReadAtEof) {
  const u32 fd = fs_.create("f").value();
  LocalFile& f = fs_.file(fd);
  f.pwrite(0, pattern(100));
  std::vector<std::byte> buf(200);
  EXPECT_EQ(f.pread(0, buf).value, 100u);
  EXPECT_EQ(f.pread(100, buf).value, 0u);
  EXPECT_EQ(f.pread(500, buf).value, 0u);
}

TEST_F(LocalFsTest, SparseGapReadsZero) {
  const u32 fd = fs_.create("f").value();
  LocalFile& f = fs_.file(fd);
  f.pwrite(10000, pattern(10));
  std::vector<std::byte> buf(100);
  EXPECT_EQ(f.pread(0, buf).value, 100u);
  for (auto b : buf) EXPECT_EQ(b, std::byte{0});
}

TEST_F(LocalFsTest, CachedReadIsFastUncachedSlow) {
  const u32 fd = fs_.create("f").value();
  LocalFile& f = fs_.file(fd);
  const u64 n = 4 * kMiB;
  f.pwrite(0, pattern(n));
  std::vector<std::byte> buf(n);
  // Pages are cached (dirty) right after the write: read is cache-speed.
  const Duration warm = f.pread(0, buf).cost;
  EXPECT_NEAR(bandwidth_mib(n, warm), 1391.0, 150.0);
  // Flush + drop: read now comes from media at uncached speed.
  fs_.drop_caches();
  const Duration cold = f.pread(0, buf).cost;
  EXPECT_LT(bandwidth_mib(n, cold), 25.0);
  // And it is cached again afterwards.
  const Duration rewarm = f.pread(0, buf).cost;
  EXPECT_NEAR(bandwidth_mib(n, rewarm), 1391.0, 150.0);
}

TEST_F(LocalFsTest, WriteBackOnlyOnFsync) {
  const u32 fd = fs_.create("f").value();
  LocalFile& f = fs_.file(fd);
  const u64 n = 8 * kMiB;
  // Cached write is fast (Table 3: 303 MB/s).
  const Duration w = f.pwrite(0, pattern(n)).cost;
  EXPECT_NEAR(bandwidth_mib(n, w), 303.0, 30.0);
  // fsync pays the media write (~25 MB/s).
  const Duration s = f.fsync();
  EXPECT_NEAR(bandwidth_mib(n, s), 25.0, 3.0);
  // Second fsync is free: nothing dirty.
  EXPECT_LT(f.fsync().as_us(), 25.0);  // just the syscall, nothing dirty
}

TEST_F(LocalFsTest, DirectIoBypassesCache) {
  const u32 fd = fs_.create("f").value();
  LocalFile& f = fs_.file(fd);
  const u64 n = 4 * kMiB;
  const Duration w = f.pwrite(0, pattern(n), {.direct = true}).cost;
  EXPECT_LT(bandwidth_mib(n, w), 27.0);
  // Nothing to sync.
  EXPECT_LT(f.fsync().as_us(), 25.0);  // just the syscall, nothing dirty
  std::vector<std::byte> buf(n);
  const Duration r = f.pread(0, buf, {.direct = true}).cost;
  EXPECT_LT(bandwidth_mib(n, r), 22.0);
}

TEST_F(LocalFsTest, SeekSyscallChargedOnNonSequentialAccess) {
  const u32 fd = fs_.create("f").value();
  LocalFile& f = fs_.file(fd);
  f.pwrite(0, pattern(64 * kKiB));
  EXPECT_EQ(stats_.get("fs.lseek"), 0);  // first write at position 0
  std::vector<std::byte> buf(100);
  f.pread(0, buf);  // pos was 64K, now seeks to 0
  EXPECT_EQ(stats_.get("fs.lseek"), 1);
  f.pread(100, buf);  // sequential: no seek
  EXPECT_EQ(stats_.get("fs.lseek"), 1);
  f.pread(10000, buf);
  EXPECT_EQ(stats_.get("fs.lseek"), 2);
}

TEST_F(LocalFsTest, AccessCountsTracked) {
  const u32 fd = fs_.create("f").value();
  LocalFile& f = fs_.file(fd);
  for (int i = 0; i < 5; ++i) f.pwrite(i * 1000, pattern(100));
  std::vector<std::byte> buf(100);
  for (int i = 0; i < 3; ++i) f.pread(i * 1000, buf);
  EXPECT_EQ(stats_.get(stat::kDiskWrite), 5);
  EXPECT_EQ(stats_.get(stat::kDiskRead), 3);
}

TEST_F(LocalFsTest, LockUnlock) {
  const u32 fd = fs_.create("f").value();
  LocalFile& f = fs_.file(fd);
  EXPECT_FALSE(f.locked());
  EXPECT_GT(f.lock().as_us(), 0.0);
  EXPECT_TRUE(f.locked());
  EXPECT_GT(f.unlock().as_us(), 0.0);
  EXPECT_FALSE(f.locked());
}

TEST_F(LocalFsTest, RangeLocks) {
  const u32 fd = fs_.create("f").value();
  LocalFile& f = fs_.file(fd);
  auto a = f.lock_range({100, 100});
  ASSERT_TRUE(a.is_ok());
  EXPECT_GT(a.value().cost.as_us(), 0.0);
  EXPECT_TRUE(f.range_locked({150, 10}));
  EXPECT_FALSE(f.range_locked({200, 10}));
  // Overlapping lock conflicts; disjoint one succeeds.
  EXPECT_FALSE(f.lock_range({150, 100}).is_ok());
  auto b = f.lock_range({200, 50});
  ASSERT_TRUE(b.is_ok());
  // Releasing the first makes its range available again.
  f.unlock_range(a.value().id);
  EXPECT_FALSE(f.range_locked({100, 100}));
  EXPECT_TRUE(f.lock_range({100, 100}).is_ok());
  EXPECT_FALSE(f.lock_range({0, 0}).is_ok());  // empty range rejected
}

TEST_F(LocalFsTest, PurgeReleasesDataAndCache) {
  const u32 fd = fs_.create("f").value();
  LocalFile& f = fs_.file(fd);
  f.pwrite(0, pattern(64 * kKiB));
  ASSERT_GT(fs_.cache().pages_cached(), 0u);
  f.purge();
  EXPECT_EQ(f.size(), 0u);
  EXPECT_EQ(fs_.cache().pages_cached(), 0u);
  std::vector<std::byte> buf(100);
  EXPECT_EQ(f.pread(0, buf).value, 0u);
}

TEST_F(LocalFsTest, PartialCacheHitMixesCosts) {
  const u32 fd = fs_.create("f").value();
  LocalFile& f = fs_.file(fd);
  const u64 n = 2 * kMiB;
  f.pwrite(0, pattern(n));
  f.fsync();
  fs_.cache().drop_all();
  // Warm the first half only.
  std::vector<std::byte> half(n / 2);
  f.pread(0, half);
  const i64 miss_before = stats_.get(stat::kCacheMissBytes);
  // Full read: half hits, half misses.
  std::vector<std::byte> full(n);
  f.pread(0, full);
  const i64 missed = stats_.get(stat::kCacheMissBytes) - miss_before;
  EXPECT_EQ(missed, static_cast<i64>(n / 2));
}

// Property: arbitrary interleavings of writes and reads always round-trip
// (the file behaves like a byte array), regardless of cache state.
TEST_F(LocalFsTest, RandomAccessConsistency) {
  const u32 fd = fs_.create("f").value();
  LocalFile& f = fs_.file(fd);
  Rng rng(5);
  std::vector<std::byte> shadow(256 * kKiB, std::byte{0});
  for (int i = 0; i < 200; ++i) {
    const u64 off = rng.below(shadow.size() - 4096);
    const u64 len = rng.range(1, 4096);
    if (rng.chance(0.5)) {
      const auto data = pattern(len, static_cast<u8>(i));
      f.pwrite(off, data);
      std::copy(data.begin(), data.end(), shadow.begin() + off);
    } else if (rng.chance(0.1)) {
      fs_.drop_caches();
    } else {
      std::vector<std::byte> buf(len);
      const u64 got = f.pread(off, buf).value;
      for (u64 j = 0; j < got; ++j) {
        ASSERT_EQ(buf[j], shadow[off + j]) << "off=" << off << " j=" << j;
      }
    }
  }
}

}  // namespace
}  // namespace pvfsib::disk
