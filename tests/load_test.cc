// The closed-loop load-generation subsystem: generator statistics, seeded
// end-to-end determinism, and namespace consistency after churn.
#include "load/load_engine.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "load/workload.h"
#include "pvfs/cluster.h"

namespace pvfsib::load {
namespace {

// Small but real run: every op kind, list + contig I/O, two iods, churn.
LoadConfig small_config(u64 seed = 7) {
  LoadConfig lc;
  lc.seed = seed;
  lc.population = 6;
  lc.file_bytes = 64 * kKiB;
  lc.io_min_bytes = 4 * kKiB;
  lc.io_max_bytes = 16 * kKiB;
  lc.ramp = Duration::ms(2.0);
  lc.measure = Duration::ms(20.0);
  lc.start_jitter = Duration::ms(1.0);
  lc.interval = Duration::ms(5.0);
  return lc;
}

pvfs::Cluster make_cluster(u32 clients) {
  return pvfs::Cluster(ModelConfig::paper_defaults(),
                       pvfs::Cluster::Topology{}.clients(clients).iods(2));
}

// --- generators ---------------------------------------------------------

TEST(ZipfGenerator, DeterministicGivenSeed) {
  ZipfGenerator z(100, 0.99);
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(z.sample(a), z.sample(b));
}

TEST(ZipfGenerator, SkewsTowardLowRanks) {
  ZipfGenerator z(100, 0.99);
  Rng rng(1);
  std::vector<u32> hits(100, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++hits[z.sample(rng)];
  // Rank 0 carries ~1/H_100 ~ 19% of the mass at theta=0.99; uniform would
  // be 1%. It must dominate rank 50 by a wide margin.
  EXPECT_GT(hits[0], n / 10);
  EXPECT_GT(hits[0], hits[50] * 5);
  // Every rank is reachable in a long enough run.
  u32 zero_ranks = 0;
  for (u32 h : hits) zero_ranks += h == 0 ? 1 : 0;
  EXPECT_EQ(zero_ranks, 0u);
}

TEST(ZipfGenerator, ThetaZeroIsUniform) {
  ZipfGenerator z(10, 0.0);
  Rng rng(3);
  std::vector<u32> hits(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++hits[z.sample(rng)];
  for (u32 h : hits) {
    EXPECT_NEAR(static_cast<double>(h) / n, 0.1, 0.01);
  }
}

TEST(OpMixSampler, TracksConfiguredWeights) {
  OpMix mix;  // 40/25/15/10/10
  OpMixSampler sampler(mix);
  Rng rng(5);
  std::vector<u32> hits(kOpKinds, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++hits[static_cast<u32>(sampler.sample(rng))];
  EXPECT_NEAR(hits[static_cast<u32>(OpKind::kRead)] / double(n), 0.40, 0.01);
  EXPECT_NEAR(hits[static_cast<u32>(OpKind::kWrite)] / double(n), 0.25, 0.01);
  EXPECT_NEAR(hits[static_cast<u32>(OpKind::kOpen)] / double(n), 0.15, 0.01);
  EXPECT_NEAR(hits[static_cast<u32>(OpKind::kStat)] / double(n), 0.10, 0.01);
  EXPECT_NEAR(hits[static_cast<u32>(OpKind::kChurn)] / double(n), 0.10, 0.01);
}

TEST(OpMixSampler, ZeroWeightNeverSampled) {
  OpMix mix;
  mix.churn = 0.0;
  mix.write = 0.0;
  OpMixSampler sampler(mix);
  Rng rng(9);
  for (int i = 0; i < 50000; ++i) {
    const OpKind k = sampler.sample(rng);
    EXPECT_NE(k, OpKind::kChurn);
    EXPECT_NE(k, OpKind::kWrite);
  }
}

TEST(JainFairness, KnownValues) {
  EXPECT_DOUBLE_EQ(jain_fairness({10, 10, 10, 10}), 1.0);
  EXPECT_DOUBLE_EQ(jain_fairness({1, 0, 0, 0}), 0.25);
  EXPECT_EQ(jain_fairness({0, 0}), 0.0);
  EXPECT_EQ(jain_fairness({}), 0.0);
}

// --- end-to-end runs ----------------------------------------------------

TEST(LoadEngine, SummarySanity) {
  pvfs::Cluster cluster = make_cluster(4);
  LoadEngine engine(cluster, small_config());
  const LoadSummary s = engine.run();

  EXPECT_TRUE(s.ok);
  EXPECT_EQ(s.clients, 4u);
  EXPECT_GT(s.ops, 0u);
  EXPECT_GT(s.data_ops, 0u);
  EXPECT_GT(s.meta_ops, 0u);
  EXPECT_GT(s.bytes, 0u);
  EXPECT_EQ(s.ops, s.data_ops + s.meta_ops);
  EXPECT_EQ(s.latency.count(), s.ops);
  EXPECT_EQ(s.data_latency.count() + s.meta_latency.count(), s.ops);
  EXPECT_GT(s.ops_per_s, 0.0);
  EXPECT_GT(s.mib_per_s, 0.0);
  EXPECT_GT(s.fairness, 0.5);  // closed loop: no client starves
  EXPECT_LE(s.fairness, 1.0);
  ASSERT_EQ(s.per_client_ops.size(), 4u);
  u64 total = 0;
  for (u64 c : s.per_client_ops) total += c;
  EXPECT_EQ(total, s.ops);
  // Tail ordering.
  EXPECT_LE(s.latency.quantile(0.50), s.latency.quantile(0.99));
  EXPECT_LE(s.latency.quantile(0.99), s.latency.quantile(0.999));
  // Interval windows cover ramp + measure and saw traffic.
  ASSERT_FALSE(s.intervals.empty());
  u64 interval_ops = 0, interval_reqs = 0;
  for (const auto& w : s.intervals) {
    EXPECT_LT(w.start_ms, w.end_ms);
    interval_ops += w.ops;
    interval_reqs += w.pvfs_requests;
  }
  EXPECT_GT(interval_ops, 0u);
  EXPECT_GT(interval_reqs, 0u);
}

TEST(LoadEngine, SeededRunsAreBitIdentical) {
  // Two fresh clusters, same topology, same seed: the whole measurement
  // plane (counts, every quantile, per-client shares, per-window counters)
  // must serialize identically.
  pvfs::Cluster c1 = make_cluster(3);
  pvfs::Cluster c2 = make_cluster(3);
  LoadEngine e1(c1, small_config(123));
  LoadEngine e2(c2, small_config(123));
  const std::string f1 = e1.run().fingerprint();
  const std::string f2 = e2.run().fingerprint();
  EXPECT_EQ(f1, f2);
  EXPECT_FALSE(f1.empty());
}

TEST(LoadEngine, DifferentSeedsDiverge) {
  pvfs::Cluster c1 = make_cluster(3);
  pvfs::Cluster c2 = make_cluster(3);
  LoadEngine e1(c1, small_config(1));
  LoadEngine e2(c2, small_config(2));
  EXPECT_NE(e1.run().fingerprint(), e2.run().fingerprint());
}

TEST(LoadEngine, ChurnNamespaceConsistency) {
  LoadConfig lc = small_config(31);
  lc.mix.churn = 0.4;  // plenty of create/remove traffic
  pvfs::Cluster cluster = make_cluster(4);
  LoadEngine engine(cluster, lc);
  const LoadSummary s = engine.run();
  EXPECT_TRUE(s.ok);

  pvfs::Client& probe = cluster.client(0);
  // Every churn file created and not removed must still open.
  EXPECT_FALSE(engine.live_churn_files().empty());
  for (const std::string& name : engine.live_churn_files()) {
    EXPECT_TRUE(probe.open(name).is_ok()) << name;
  }
  // Every acked remove must have actually removed the name.
  EXPECT_FALSE(engine.removed_churn_files().empty());
  for (const std::string& name : engine.removed_churn_files()) {
    EXPECT_FALSE(probe.open(name).is_ok()) << name;
  }
  // The shared population survives churn untouched.
  for (const std::string& name : engine.population_files()) {
    EXPECT_TRUE(probe.open(name).is_ok()) << name;
  }
}

}  // namespace
}  // namespace pvfsib::load
