#include <gtest/gtest.h>

#include "workloads/block_column.h"
#include "workloads/btio.h"
#include "workloads/subarray.h"
#include "workloads/tile_io.h"

namespace pvfsib::workloads {
namespace {

TEST(Subarray, RowsMatchPaperExample) {
  // Section 4.2: a subarray of a 4096x4096 (int) array distributed 2x2 has
  // 2048 row buffers.
  SubarrayLayout l;
  l.n = 4096;
  vmem::AddressSpace as;
  const u64 base = l.alloc_array(as);
  const core::MemSegmentList rows = l.subarray_rows(base, 0, 1);
  EXPECT_EQ(rows.size(), 2048u);
  EXPECT_EQ(rows[0].length, 2048u * 4);
  // Row r of process (0,1) starts at column 2048 of array row r.
  EXPECT_EQ(rows[0].addr, base + 2048 * 4);
  EXPECT_EQ(rows[1].addr, base + 4096 * 4 + 2048 * 4);
  EXPECT_EQ(core::total_bytes(rows), l.sub_bytes());
}

TEST(Subarray, Table4Shape) {
  // Table 4: 2048x2048 ints over 4 processes -> 1024 buffers per process.
  SubarrayLayout l;
  l.n = 2048;
  vmem::AddressSpace as;
  const u64 base = l.alloc_array(as);
  EXPECT_EQ(l.subarray_rows(base, 1, 0).size(), 1024u);
  // Each process writes its 4 MiB subarray contiguously, non-overlapping.
  ExtentList all;
  for (u32 pr = 0; pr < 2; ++pr) {
    for (u32 pc = 0; pc < 2; ++pc) {
      for (const Extent& e : l.contiguous_file_extents(pr, pc)) {
        all.push_back(e);
      }
    }
  }
  sort_by_offset(all);
  EXPECT_TRUE(is_sorted_disjoint(all));
  EXPECT_EQ(total_length(all), l.array_bytes());
}

TEST(BlockColumn, AccessGeometry) {
  BlockColumnWorkload w;
  w.n = 512;
  EXPECT_EQ(w.columns_per_proc(), 128u);
  EXPECT_EQ(w.accesses_per_proc(), 512u);
  EXPECT_EQ(w.share_bytes(), 512u * 128 * 4);
  const mpiio::RankIo io = w.rank_io(1, 0x100000);
  const ExtentList e = io.view.map_range(0, io.bytes);
  ASSERT_EQ(e.size(), 512u);  // one piece per row
  EXPECT_EQ(e[0].offset, 128u * 4);
  EXPECT_EQ(e[0].length, 128u * 4);
  EXPECT_EQ(e[1].offset, 512u * 4 + 128 * 4);
  // Four processes tile the file exactly.
  ExtentList all;
  for (int p = 0; p < 4; ++p) {
    const auto pe = w.rank_io(p, 0x100000).view.map_range(0, w.share_bytes());
    all.insert(all.end(), pe.begin(), pe.end());
  }
  sort_by_offset(all);
  const ExtentList merged = coalesce(all);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0], (Extent{0, w.file_bytes()}));
}

TEST(TileIo, PaperGeometry) {
  TileIoWorkload w;
  // "a file size of 9 MB" (2048x1536 pixels at 24 bits).
  EXPECT_EQ(w.frame_bytes(), 9 * kMiB);
  EXPECT_EQ(w.tile_bytes(), 2304 * kKiB);
  EXPECT_EQ(w.procs(), 4);
  const mpiio::RankIo io = w.rank_io(3, 0x100000);
  const ExtentList e = io.view.map_range(0, io.bytes);
  ASSERT_EQ(e.size(), w.rows_per_tile());  // one piece per tile row
  EXPECT_EQ(e[0].length, w.tile_w * w.pixel);
  // Tile 3 = bottom-right: row 768, column 1024.
  EXPECT_EQ(e[0].offset, 768 * 2048 * 3 + 1024 * 3);
  // All four tiles cover the frame exactly.
  ExtentList all;
  for (int p = 0; p < 4; ++p) {
    const auto pe = w.rank_io(p, 0x100000).view.map_range(0, w.tile_bytes());
    all.insert(all.end(), pe.begin(), pe.end());
  }
  sort_by_offset(all);
  const ExtentList merged = coalesce(all);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].length, w.frame_bytes());
}

TEST(Btio, Table6Statistics) {
  BtioWorkload w;
  EXPECT_EQ(w.output_phases(), 40);
  EXPECT_EQ(w.step_block_bytes(), 5 * kMiB);
  EXPECT_EQ(w.total_file_bytes(), 200 * kMiB);
  // Multiple I/O would issue pieces_per_proc requests per proc per phase:
  // 40 * 4 * 512 = 81920 writes (Table 6).
  EXPECT_EQ(static_cast<u64>(w.output_phases()) * 4 * w.config().pieces_per_proc,
            81920u);
  // The no-I/O baseline: 200 steps of compute = 165.6 s.
  const Duration compute =
      w.config().step_compute * w.config().timesteps;
  EXPECT_NEAR(compute.as_sec(), 165.6, 0.1);
}

TEST(Btio, SlotsPartitionExactly) {
  BtioWorkload w;
  for (int phase : {0, 7, 39}) {
    ExtentList all;
    for (int p = 0; p < 4; ++p) {
      const mpiio::RankIo io = w.rank_io(phase, p, 0x100000);
      EXPECT_EQ(io.bytes, w.bytes_per_proc_per_phase());
      const ExtentList e = io.view.map_range(0, io.bytes);
      all.insert(all.end(), e.begin(), e.end());
    }
    sort_by_offset(all);
    const ExtentList merged = coalesce(all);
    ASSERT_EQ(merged.size(), 1u);
    EXPECT_EQ(merged[0].offset,
              static_cast<u64>(phase) * w.step_block_bytes());
    EXPECT_EQ(merged[0].length, w.step_block_bytes());
  }
}

TEST(Btio, DiagonalInterleaveNeverGivesAdjacentSlotsToOneProc) {
  BtioWorkload w;
  const u64 slots = 4 * w.config().pieces_per_proc;
  for (u64 s = 1; s < slots; ++s) {
    EXPECT_NE(w.slot_owner(s), w.slot_owner(s - 1)) << s;
  }
}

TEST(Btio, MemoryIsNoncontiguous) {
  BtioWorkload w;
  const mpiio::Datatype mt = w.memtype();
  EXPECT_FALSE(mt.contiguous_layout());
  EXPECT_EQ(mt.size(), w.bytes_per_proc_per_phase());
  EXPECT_EQ(mt.map().size(), w.config().pieces_per_proc);
}

}  // namespace
}  // namespace pvfsib::workloads
