// Regression lock on bit-for-bit determinism: the whole simulation —
// including a *non-trivial fault plane* — is a pure function of its
// inputs. Two runs of the Figure 6 block-column workload with identical
// configs (same fault seed, same crash schedule) must produce identical
// Stats snapshots and identical sim::Trace event streams; a different
// fault seed must not.
//
// This is what makes recovery behaviour testable at all: a faulty run is
// exactly as reproducible as a healthy one.
#include <gtest/gtest.h>

#include <string>

#include "mpiio/mpio_file.h"
#include "pvfs/cluster.h"
#include "sim/trace.h"
#include "workloads/block_column.h"

namespace pvfsib::pvfs {
namespace {

ModelConfig faulty_fig6_config(u64 seed) {
  ModelConfig cfg = ModelConfig::paper_defaults();
  cfg.fault.seed = seed;
  cfg.fault.request_drop_rate = 0.02;
  cfg.fault.reply_drop_rate = 0.02;
  cfg.fault.retransmit_rate = 0.05;
  cfg.fault.latency_spike_rate = 0.02;
  // One deterministic crash window on iod 1 partway into the run.
  cfg.fault.schedule.push_back(FaultEvent{FaultKind::kIodCrash,
                                          TimePoint::from_ns(2'000'000), 1,
                                          Duration::ms(4.0)});
  cfg.fault.round_timeout = Duration::ms(2.0);
  cfg.fault.backoff_base = Duration::us(100.0);
  cfg.fault.max_retries = 25;
  return cfg;
}

// One (trace, stats) fingerprint of the fig6 block-column write under `cfg`.
std::string run_fingerprint(const ModelConfig& cfg) {
  sim::Trace& trace = sim::Trace::instance();
  trace.enable(/*capacity=*/1 << 16);
  trace.clear();

  Cluster cluster(cfg, 4, 4);
  mpiio::Communicator comm(cluster);
  workloads::BlockColumnWorkload w;
  w.n = 1024;
  Result<mpiio::File> file = mpiio::File::create(comm, "/det");
  EXPECT_TRUE(file.is_ok());
  mpiio::File f = file.value();
  std::vector<mpiio::RankIo> io(4);
  for (int p = 0; p < 4; ++p) {
    io[p] = w.rank_io(p, comm.rank(p).memory().alloc(w.share_bytes()));
  }
  mpiio::Hints hints;
  hints.method = mpiio::IoMethod::kListIoAds;
  for (const IoResult& r : f.write_all(io, hints)) {
    EXPECT_TRUE(r.ok()) << r.status.to_string();
  }

  std::string fp;
  for (const sim::Trace::Entry& e : trace.entries()) {
    fp += std::to_string(e.at.as_ns()) + " " + e.who + " " + e.what + "\n";
  }
  fp += "dropped=" + std::to_string(trace.dropped()) + "\n";
  fp += cluster.stats().to_string();
  trace.disable();
  trace.clear();
  return fp;
}

TEST(DeterminismTest, FaultyFig6RunsAreBitIdenticalAcrossInvocations) {
  const std::string a = run_fingerprint(faulty_fig6_config(123));
  const std::string b = run_fingerprint(faulty_fig6_config(123));
  // The fault plane actually fired (the lock is not vacuous)...
  EXPECT_NE(a.find("fault.injected"), std::string::npos);
  EXPECT_NE(a.find("pvfs.retries"), std::string::npos);
  // ...and the two runs are indistinguishable, event by event.
  EXPECT_EQ(a, b);
}

TEST(DeterminismTest, ReplicatedFaultyRunsAreBitIdenticalAcrossInvocations) {
  // The full robustness stack at once: factor-2 replication (fan-out,
  // quorum settles, replay dedupe), adaptive timeouts, and a mid-run iod
  // crash — still a pure function of the seed.
  auto replicated = [](u64 seed) {
    ModelConfig cfg = faulty_fig6_config(seed);
    cfg.replication.factor = 2;
    cfg.fault.adaptive_timeout = true;
    return cfg;
  };
  const std::string a = run_fingerprint(replicated(99));
  const std::string b = run_fingerprint(replicated(99));
  // Replication actually engaged (the lock is not vacuous)...
  EXPECT_NE(a.find("pvfs.replica_writes"), std::string::npos);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, run_fingerprint(replicated(100)));
}

TEST(DeterminismTest, ResyncRunsAreBitIdenticalAcrossInvocations) {
  // The background re-replication plane end to end — restart hook,
  // staleness scan, rate-limited pull rounds, and version-aware read
  // placement — is pure event-driven state and must fingerprint
  // identically run to run.
  auto run = [] {
    sim::Trace& trace = sim::Trace::instance();
    trace.enable(/*capacity=*/1 << 16);
    trace.clear();
    ModelConfig cfg = ModelConfig::paper_defaults();
    cfg.fault.round_timeout = Duration::ms(2.0);
    cfg.fault.backoff_base = Duration::us(100.0);
    cfg.fault.backoff_cap = Duration::ms(2.0);
    cfg.fault.max_retries = 25;
    cfg.replication.factor = 2;
    cfg.replication.write_quorum = 1;
    cfg.replication.resync = true;
    // Primary down for the overwrite, backup dead for good later: the
    // restarted primary must re-replicate inside the gap.
    cfg.fault.schedule.push_back(
        FaultEvent{FaultKind::kIodCrash,
                   TimePoint::origin() + Duration::ms(20.0), 0,
                   Duration::ms(30.0)});
    cfg.fault.schedule.push_back(
        FaultEvent{FaultKind::kIodCrash,
                   TimePoint::origin() + Duration::ms(100.0), 1,
                   Duration::sec(1000.0)});
    Cluster cluster(cfg, 1, 2);
    Client& c = cluster.client(0);
    OpenFile f = c.create("/det-seq", 64 * kKiB, 1, 0).value();
    const u64 n = 32 * kKiB;
    const u64 a = c.memory().alloc(n);
    const u64 b = c.memory().alloc(n);
    for (u64 i = 0; i < n; ++i) {
      c.memory().write_pod<u8>(a + i, 0x11);
      c.memory().write_pod<u8>(b + i, 0x22);
    }
    EXPECT_TRUE(c.write(f, 0, a, n).ok());
    IoHandle w, r;
    const TimePoint wat = TimePoint::origin() + Duration::ms(25.0);
    cluster.engine().schedule_at(wat, [&, wat] {
      core::ListIoRequest req;
      req.mem = {{b, n}};
      req.file = {{0, n}};
      w = c.submit({IoDir::kWrite, f, req, {}, wat});
    });
    const u64 dst = c.memory().alloc(n);
    const TimePoint rat = TimePoint::origin() + Duration::ms(500.0);
    cluster.engine().schedule_at(rat, [&, rat] {
      core::ListIoRequest req;
      req.mem = {{dst, n}};
      req.file = {{0, n}};
      r = c.submit({IoDir::kRead, f, req, {}, rat});
    });
    cluster.engine().run_until([&r] { return r.valid() && r.poll(); });
    EXPECT_TRUE(w.poll() && w.result().ok());
    EXPECT_TRUE(r.poll() && r.result().ok());
    EXPECT_EQ(c.memory().read_pod<u8>(dst), 0x22);  // acked bytes survived

    std::string fp;
    for (const sim::Trace::Entry& e : trace.entries()) {
      fp += std::to_string(e.at.as_ns()) + " " + e.who + " " + e.what + "\n";
    }
    fp += "dropped=" + std::to_string(trace.dropped()) + "\n";
    fp += cluster.stats().to_string();
    trace.disable();
    trace.clear();
    return fp;
  };
  const std::string a = run();
  const std::string b = run();
  // The resync plane actually fired (the lock is not vacuous)...
  EXPECT_NE(a.find("pvfs.resync_stripes"), std::string::npos);
  EXPECT_NE(a.find("pvfs.resync_rounds"), std::string::npos);
  EXPECT_EQ(a, b);
}

TEST(DeterminismTest, ManagerTakeoverRunsAreBitIdenticalAcrossInvocations) {
  // A manager crash mid-workload with standby takeover — epoch bump,
  // header-scan rebuild, client metadata failover, resync re-pointing —
  // must fingerprint identically run to run.
  auto takeover = [](u64 seed) {
    ModelConfig cfg = faulty_fig6_config(seed);
    cfg.replication.factor = 2;
    cfg.replication.resync = true;
    cfg.fault.standby_takeover = true;
    cfg.fault.schedule.push_back(FaultEvent{FaultKind::kManagerCrash,
                                            TimePoint::from_ns(1'000'000), 0,
                                            Duration::ms(20.0)});
    return cfg;
  };
  const std::string a = run_fingerprint(takeover(77));
  const std::string b = run_fingerprint(takeover(77));
  // The takeover actually fired (the lock is not vacuous)...
  EXPECT_NE(a.find("pvfs.manager_takeovers"), std::string::npos);
  EXPECT_NE(a.find("fault.injected.manager_crash"), std::string::npos);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, run_fingerprint(takeover(78)));
}

TEST(DeterminismTest, ScrubbedCorruptionRunsAreBitIdenticalAcrossInvocations) {
  // The integrity plane end to end — checksum stamping, rate-driven write
  // corruption, verify-on-read failover, the scrubber's chunked sweep and
  // the resync heals it enqueues — is pure event-driven state and must
  // fingerprint identically run to run.
  auto corrupted = [](u64 seed) {
    ModelConfig cfg = faulty_fig6_config(seed);
    cfg.replication.factor = 2;
    cfg.replication.resync = true;
    cfg.replication.scrub = true;
    cfg.fault.bit_flip_rate = 0.25;
    cfg.fault.torn_write_rate = 0.05;
    return cfg;
  };
  auto fingerprint = [&](u64 seed) {
    sim::Trace& trace = sim::Trace::instance();
    trace.enable(/*capacity=*/1 << 16);
    trace.clear();
    ModelConfig cfg = corrupted(seed);
    Cluster cluster(cfg, 2, 2);
    Client& c = cluster.client(0);
    OpenFile f = c.create("/det-scrub", 64 * kKiB, 2, 0).value();
    const u64 n = 256 * kKiB;
    const u64 a = c.memory().alloc(n);
    for (u64 i = 0; i < n; ++i) {
      c.memory().write_pod<u8>(a + i, static_cast<u8>(seed * 131 + i));
    }
    EXPECT_TRUE(c.write(f, 0, a, n).ok());
    cluster.start_scrub(TimePoint::origin() + Duration::ms(100.0));
    const u64 dst = c.memory().alloc(n);
    IoHandle r;
    const TimePoint rat = TimePoint::origin() + Duration::ms(150.0);
    cluster.engine().schedule_at(rat, [&, rat] {
      core::ListIoRequest req;
      req.mem = {{dst, n}};
      req.file = {{0, n}};
      r = c.submit({IoDir::kRead, f, req, {}, rat});
    });
    cluster.run();
    EXPECT_TRUE(r.poll() && r.result().ok());
    std::string fp;
    for (const sim::Trace::Entry& e : trace.entries()) {
      fp += std::to_string(e.at.as_ns()) + " " + e.who + " " + e.what + "\n";
    }
    fp += "dropped=" + std::to_string(trace.dropped()) + "\n";
    fp += cluster.stats().to_string();
    trace.disable();
    trace.clear();
    return fp;
  };
  const std::string a = fingerprint(1);
  const std::string b = fingerprint(1);
  // The corruption plane actually fired (the lock is not vacuous)...
  EXPECT_NE(a.find("fault.injected.bit_flip"), std::string::npos);
  EXPECT_NE(a.find("pvfs.scrub_chunks"), std::string::npos);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, fingerprint(32));
}

TEST(DeterminismTest, MigrationRunsAreBitIdenticalAcrossInvocations) {
  // Live resharding end to end — the rate-limited stream rounds, the
  // fenced cutover with its epoch sweep, redirect-driven client map
  // refreshes and the retired zombie source — is pure event-driven state
  // and must fingerprint identically run to run.
  auto fingerprint = [](u64 seed) {
    sim::Trace& trace = sim::Trace::instance();
    trace.enable(/*capacity=*/1 << 16);
    trace.clear();
    ModelConfig cfg = ModelConfig::paper_defaults();
    cfg.fault.seed = seed;
    cfg.fault.request_drop_rate = 0.02;
    cfg.fault.reply_drop_rate = 0.02;
    cfg.fault.round_timeout = Duration::ms(2.0);
    cfg.fault.backoff_base = Duration::us(100.0);
    cfg.fault.max_retries = 25;
    cfg.migration.round_bytes = 256;  // several stream rounds
    Cluster cluster(cfg,
                    Cluster::Topology{}.clients(2).iods(2).metadata_shards(2));
    Client& c = cluster.client(0);
    std::vector<OpenFile> files;
    for (int i = 0; i < 12; ++i) {
      files.push_back(c.create("/det-mig" + std::to_string(i)).value());
    }
    const u64 n = 8 * kKiB;
    const u64 a = c.memory().alloc(n);
    for (u64 i = 0; i < n; ++i) {
      c.memory().write_pod<u8>(a + i, static_cast<u8>(seed + i));
    }
    EXPECT_TRUE(c.write(files[0], 0, a, n).ok());
    EXPECT_TRUE(cluster.migrate_shard(1, TimePoint::origin() +
                                             Duration::ms(1.0)));
    cluster.engine().schedule_at(
        TimePoint::origin() + Duration::ms(10.0), [&cluster] {
          EXPECT_TRUE(
              cluster.split_shards(TimePoint::origin() + Duration::ms(10.0)));
        });
    cluster.run();
    // A stale client converges after both reshards and reads back intact.
    Client& late = cluster.client(1);
    OpenFile g = late.open("/det-mig0").value();
    const u64 dst = late.memory().alloc(n);
    EXPECT_TRUE(late.read(g, 0, dst, n).ok());
    EXPECT_EQ(late.memory().read_pod<u8>(dst), static_cast<u8>(seed));
    std::string fp;
    for (const sim::Trace::Entry& e : trace.entries()) {
      fp += std::to_string(e.at.as_ns()) + " " + e.who + " " + e.what + "\n";
    }
    fp += "dropped=" + std::to_string(trace.dropped()) + "\n";
    fp += cluster.stats().to_string();
    trace.disable();
    trace.clear();
    return fp;
  };
  const std::string a = fingerprint(11);
  const std::string b = fingerprint(11);
  // The reshard machinery actually fired (the lock is not vacuous)...
  EXPECT_NE(a.find("pvfs.shard_migrations"), std::string::npos);
  EXPECT_NE(a.find("pvfs.shard_splits"), std::string::npos);
  EXPECT_NE(a.find("pvfs.migration_rounds"), std::string::npos);
  EXPECT_EQ(a, b);
}

TEST(DeterminismTest, CachedRunsAreBitIdenticalAcrossInvocations) {
  // The client caching tier — attr/data hits, write-notice seq bumps,
  // write-back staging, the staleness_bound flush timer, lease revokes on
  // remove — is host-side state driven entirely by engine events and must
  // fingerprint identically run to run.
  auto fingerprint = [](u64 seed) {
    sim::Trace& trace = sim::Trace::instance();
    trace.enable(/*capacity=*/1 << 16);
    trace.clear();
    ModelConfig cfg = ModelConfig::paper_defaults();
    cfg.fault.seed = seed;
    cfg.fault.request_drop_rate = 0.02;
    cfg.fault.reply_drop_rate = 0.02;
    cfg.fault.round_timeout = Duration::ms(2.0);
    cfg.fault.backoff_base = Duration::us(100.0);
    cfg.fault.max_retries = 25;
    cfg.cache.enabled = true;
    cfg.cache.write_back = true;
    cfg.cache.staleness_bound = Duration::ms(3.0);
    Cluster cluster(cfg, 2, 2);
    Client& c0 = cluster.client(0);
    Client& c1 = cluster.client(1);
    OpenFile f = c0.create("/det-cache").value();
    const u64 n = 64 * kKiB;
    const u64 a = c0.memory().alloc(n);
    for (u64 i = 0; i < n; ++i) {
      c0.memory().write_pod<u8>(a + i, static_cast<u8>(seed * 7 + i));
    }
    EXPECT_TRUE(c0.write(f, 0, a, n).ok());  // staged dirty
    EXPECT_TRUE(c0.close(f).ok());           // flushed + dropped
    OpenFile g = c1.open("/det-cache").value();
    const u64 d = c1.memory().alloc(n);
    EXPECT_TRUE(c1.read(g, 0, d, n).ok());  // wire, populates
    EXPECT_TRUE(c1.read(g, 0, d, n).ok());  // hit
    EXPECT_TRUE(c1.open("/det-cache").is_ok());  // attr hit
    EXPECT_TRUE(c0.remove("/det-cache").is_ok());  // revokes both clients
    cluster.run();  // drain any armed flush timers
    std::string fp;
    for (const sim::Trace::Entry& e : trace.entries()) {
      fp += std::to_string(e.at.as_ns()) + " " + e.who + " " + e.what + "\n";
    }
    fp += "dropped=" + std::to_string(trace.dropped()) + "\n";
    fp += cluster.stats().to_string();
    trace.disable();
    trace.clear();
    return fp;
  };
  const std::string a = fingerprint(5);
  const std::string b = fingerprint(5);
  // The tier actually engaged (the lock is not vacuous)...
  EXPECT_NE(a.find("pvfs.cache_hits"), std::string::npos);
  EXPECT_NE(a.find("pvfs.cache_lease_revokes"), std::string::npos);
  EXPECT_EQ(a, b);
}

TEST(DeterminismTest, CacheDisabledRunsMatchUncachedBaseline) {
  // The discipline every optional plane obeys: disabled means *inert*.
  // A config carrying every cache knob but enabled=false must produce the
  // exact fig6 fingerprint of the defaults — no counters, no events, no
  // timing drift.
  ModelConfig off = faulty_fig6_config(123);
  off.cache.enabled = false;
  off.cache.data_capacity = 1 * kMiB;
  off.cache.write_back = true;
  off.cache.staleness_bound = Duration::ms(1.0);
  off.cache.attr_ttl = Duration::ms(1.0);
  const std::string a = run_fingerprint(off);
  const std::string b = run_fingerprint(faulty_fig6_config(123));
  EXPECT_EQ(a.find("pvfs.cache"), std::string::npos);
  EXPECT_EQ(a, b);
}

TEST(DeterminismTest, DifferentFaultSeedsDiverge) {
  EXPECT_NE(run_fingerprint(faulty_fig6_config(123)),
            run_fingerprint(faulty_fig6_config(321)));
}

TEST(DeterminismTest, ZeroFaultRunsAreBitIdenticalToo) {
  const std::string a = run_fingerprint(ModelConfig::paper_defaults());
  const std::string b = run_fingerprint(ModelConfig::paper_defaults());
  EXPECT_EQ(a.find("fault."), std::string::npos);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace pvfsib::pvfs
