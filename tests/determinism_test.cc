// Regression lock on bit-for-bit determinism: the whole simulation —
// including a *non-trivial fault plane* — is a pure function of its
// inputs. Two runs of the Figure 6 block-column workload with identical
// configs (same fault seed, same crash schedule) must produce identical
// Stats snapshots and identical sim::Trace event streams; a different
// fault seed must not.
//
// This is what makes recovery behaviour testable at all: a faulty run is
// exactly as reproducible as a healthy one.
#include <gtest/gtest.h>

#include <string>

#include "mpiio/mpio_file.h"
#include "pvfs/cluster.h"
#include "sim/trace.h"
#include "workloads/block_column.h"

namespace pvfsib::pvfs {
namespace {

ModelConfig faulty_fig6_config(u64 seed) {
  ModelConfig cfg = ModelConfig::paper_defaults();
  cfg.fault.seed = seed;
  cfg.fault.request_drop_rate = 0.02;
  cfg.fault.reply_drop_rate = 0.02;
  cfg.fault.retransmit_rate = 0.05;
  cfg.fault.latency_spike_rate = 0.02;
  // One deterministic crash window on iod 1 partway into the run.
  cfg.fault.schedule.push_back(FaultEvent{FaultKind::kIodCrash,
                                          TimePoint::from_ns(2'000'000), 1,
                                          Duration::ms(4.0)});
  cfg.fault.round_timeout = Duration::ms(2.0);
  cfg.fault.backoff_base = Duration::us(100.0);
  cfg.fault.max_retries = 25;
  return cfg;
}

// One (trace, stats) fingerprint of the fig6 block-column write under `cfg`.
std::string run_fingerprint(const ModelConfig& cfg) {
  sim::Trace& trace = sim::Trace::instance();
  trace.enable(/*capacity=*/1 << 16);
  trace.clear();

  Cluster cluster(cfg, 4, 4);
  mpiio::Communicator comm(cluster);
  workloads::BlockColumnWorkload w;
  w.n = 1024;
  Result<mpiio::File> file = mpiio::File::create(comm, "/det");
  EXPECT_TRUE(file.is_ok());
  mpiio::File f = file.value();
  std::vector<mpiio::RankIo> io(4);
  for (int p = 0; p < 4; ++p) {
    io[p] = w.rank_io(p, comm.rank(p).memory().alloc(w.share_bytes()));
  }
  mpiio::Hints hints;
  hints.method = mpiio::IoMethod::kListIoAds;
  for (const IoResult& r : f.write_all(io, hints)) {
    EXPECT_TRUE(r.ok()) << r.status.to_string();
  }

  std::string fp;
  for (const sim::Trace::Entry& e : trace.entries()) {
    fp += std::to_string(e.at.as_ns()) + " " + e.who + " " + e.what + "\n";
  }
  fp += "dropped=" + std::to_string(trace.dropped()) + "\n";
  fp += cluster.stats().to_string();
  trace.disable();
  trace.clear();
  return fp;
}

TEST(DeterminismTest, FaultyFig6RunsAreBitIdenticalAcrossInvocations) {
  const std::string a = run_fingerprint(faulty_fig6_config(123));
  const std::string b = run_fingerprint(faulty_fig6_config(123));
  // The fault plane actually fired (the lock is not vacuous)...
  EXPECT_NE(a.find("fault.injected"), std::string::npos);
  EXPECT_NE(a.find("pvfs.retries"), std::string::npos);
  // ...and the two runs are indistinguishable, event by event.
  EXPECT_EQ(a, b);
}

TEST(DeterminismTest, ReplicatedFaultyRunsAreBitIdenticalAcrossInvocations) {
  // The full robustness stack at once: factor-2 replication (fan-out,
  // quorum settles, replay dedupe), adaptive timeouts, and a mid-run iod
  // crash — still a pure function of the seed.
  auto replicated = [](u64 seed) {
    ModelConfig cfg = faulty_fig6_config(seed);
    cfg.replication.factor = 2;
    cfg.fault.adaptive_timeout = true;
    return cfg;
  };
  const std::string a = run_fingerprint(replicated(99));
  const std::string b = run_fingerprint(replicated(99));
  // Replication actually engaged (the lock is not vacuous)...
  EXPECT_NE(a.find("pvfs.replica_writes"), std::string::npos);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, run_fingerprint(replicated(100)));
}

TEST(DeterminismTest, DifferentFaultSeedsDiverge) {
  EXPECT_NE(run_fingerprint(faulty_fig6_config(123)),
            run_fingerprint(faulty_fig6_config(321)));
}

TEST(DeterminismTest, ZeroFaultRunsAreBitIdenticalToo) {
  const std::string a = run_fingerprint(ModelConfig::paper_defaults());
  const std::string b = run_fingerprint(ModelConfig::paper_defaults());
  EXPECT_EQ(a.find("fault."), std::string::npos);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace pvfsib::pvfs
