#include "core/transfer.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace pvfsib::core {
namespace {

class TransferTest : public ::testing::Test {
 protected:
  TransferTest()
      : client_hca_("client", client_as_, RegParams{}, &stats_),
        server_hca_("server", server_as_, RegParams{}, &stats_),
        cache_(client_hca_),
        registrar_(cache_, OsParams{}, OgrConfig{}, &stats_),
        fabric_(NetParams{}, &stats_),
        xfer_(fabric_, MemParams{}) {
    // Client bounce buffer (the Fast-RDMA buffer), pre-registered.
    ep_.hca = &client_hca_;
    ep_.cache = &cache_;
    ep_.registrar = &registrar_;
    ep_.bounce_size = 64 * kKiB;
    ep_.bounce_addr = client_as_.alloc(ep_.bounce_size);
    auto reg = client_hca_.register_memory(ep_.bounce_addr, ep_.bounce_size);
    EXPECT_TRUE(reg.ok());
    ep_.bounce_key = reg.key;
    // Server staging buffer.
    staging_.hca = &server_hca_;
    staging_.size = 16 * kMiB;
    staging_.addr = server_as_.alloc(staging_.size);
    auto sreg = server_hca_.register_memory(staging_.addr, staging_.size);
    EXPECT_TRUE(sreg.ok());
    staging_.rkey = sreg.key;
  }

  // Strided rows within one allocation, filled with a pattern.
  MemSegmentList make_rows(u64 rows, u64 row_bytes, u64 stride) {
    const u64 base = client_as_.alloc(rows * stride);
    MemSegmentList segs;
    for (u64 r = 0; r < rows; ++r) {
      const u64 addr = base + r * stride;
      segs.push_back({addr, row_bytes});
      for (u64 i = 0; i < row_bytes; ++i) {
        client_as_.write_pod<u8>(addr + i, static_cast<u8>(r * 31 + i));
      }
    }
    return segs;
  }

  // Verify the server staging buffer holds the packed stream.
  void expect_stream_at_server(const MemSegmentList& segs) {
    u64 off = 0;
    for (const MemSegment& s : segs) {
      ASSERT_EQ(std::memcmp(server_as_.data(staging_.addr + off),
                            client_as_.data(s.addr), s.length),
                0);
      off += s.length;
    }
  }

  TransferPolicy policy(XferScheme s) {
    TransferPolicy p;
    p.scheme = s;
    return p;
  }

  vmem::AddressSpace client_as_, server_as_;
  Stats stats_;
  ib::Hca client_hca_, server_hca_;
  ib::MrCache cache_;
  GroupRegistrar registrar_;
  ib::Fabric fabric_;
  NoncontigTransfer xfer_;
  TransferEndpoint ep_;
  StagingBuffer staging_;
};

TEST_F(TransferTest, PushCorrectnessAllSchemes) {
  for (XferScheme s :
       {XferScheme::kMultipleMessage, XferScheme::kPackUnpack,
        XferScheme::kRdmaGatherScatter, XferScheme::kHybrid}) {
    SCOPED_TRACE(to_string(s));
    const MemSegmentList segs = make_rows(37, 1000, 4096);
    TransferOutcome out =
        xfer_.push(ep_, segs, staging_, TimePoint::origin(), policy(s));
    ASSERT_TRUE(out.ok()) << out.status.to_string();
    EXPECT_EQ(out.bytes, 37u * 1000u);
    expect_stream_at_server(segs);
  }
}

TEST_F(TransferTest, PullCorrectnessAllSchemes) {
  Rng rng(3);
  for (XferScheme s :
       {XferScheme::kMultipleMessage, XferScheme::kPackUnpack,
        XferScheme::kRdmaGatherScatter, XferScheme::kHybrid}) {
    SCOPED_TRACE(to_string(s));
    // Fill the staging buffer with fresh data.
    const u64 total = 37 * 1000;
    for (u64 i = 0; i < total; ++i) {
      server_as_.write_pod<u8>(staging_.addr + i,
                               static_cast<u8>(rng.next()));
    }
    MemSegmentList segs = make_rows(37, 1000, 4096);
    TransferOutcome out =
        xfer_.pull(ep_, segs, staging_, TimePoint::origin(), policy(s));
    ASSERT_TRUE(out.ok()) << out.status.to_string();
    u64 off = 0;
    for (const MemSegment& m : segs) {
      ASSERT_EQ(std::memcmp(client_as_.data(m.addr),
                            server_as_.data(staging_.addr + off), m.length),
                0);
      off += m.length;
    }
  }
}

TEST_F(TransferTest, PackUnpackChunksThroughSmallBounce) {
  // Stream far larger than the 64 KiB bounce buffer.
  const MemSegmentList segs = make_rows(512, 2048, 4096);  // 1 MiB
  TransferOutcome out = xfer_.push(ep_, segs, staging_, TimePoint::origin(),
                                   policy(XferScheme::kPackUnpack));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.bytes, 1 * kMiB);
  expect_stream_at_server(segs);
  EXPECT_GT(out.copy_cost, Duration::zero());
}

TEST_F(TransferTest, GatherBeatsPackForLargeTransfers) {
  const MemSegmentList segs = make_rows(2048, 4096, 8192);  // 8 MiB
  TransferOutcome pack = xfer_.push(ep_, segs, staging_, TimePoint::origin(),
                                    policy(XferScheme::kPackUnpack));
  client_hca_.nic().reset();
  server_hca_.nic().reset();
  cache_.flush();
  TransferOutcome gather =
      xfer_.push(ep_, segs, staging_, TimePoint::origin(),
                 policy(XferScheme::kRdmaGatherScatter));
  ASSERT_TRUE(pack.ok());
  ASSERT_TRUE(gather.ok());
  EXPECT_LT(gather.complete - TimePoint::origin(),
            pack.complete - TimePoint::origin());
}

TEST_F(TransferTest, PackBeatsGatherForTinyTransfers) {
  const MemSegmentList segs = make_rows(16, 256, 1024);  // 4 KiB total
  cache_.flush();
  TransferOutcome gather =
      xfer_.push(ep_, segs, staging_, TimePoint::origin(),
                 policy(XferScheme::kRdmaGatherScatter));
  client_hca_.nic().reset();
  server_hca_.nic().reset();
  cache_.flush();
  TransferOutcome pack = xfer_.push(ep_, segs, staging_, TimePoint::origin(),
                                    policy(XferScheme::kPackUnpack));
  ASSERT_TRUE(pack.ok());
  ASSERT_TRUE(gather.ok());
  // Cold registration dominates the tiny gather; packing through the
  // pre-registered bounce buffer wins — the hybrid scheme's motivation.
  EXPECT_LT(pack.complete - TimePoint::origin(),
            gather.complete - TimePoint::origin());
}

TEST_F(TransferTest, HybridPicksPackBelowThresholdGatherAbove) {
  TransferPolicy p = policy(XferScheme::kHybrid);
  p.hybrid_threshold = 64 * kKiB;
  // Small: no registration should happen (bounce path).
  cache_.flush();
  Stats before = stats_;
  const MemSegmentList small = make_rows(16, 1024, 4096);  // 16 KiB
  ASSERT_TRUE(xfer_.push(ep_, small, staging_, TimePoint::origin(), p).ok());
  EXPECT_EQ(stats_.get(stat::kMrRegister), before.get(stat::kMrRegister));
  // Large: goes through OGR registration.
  const MemSegmentList large = make_rows(512, 4096, 8192);  // 2 MiB
  ASSERT_TRUE(xfer_.push(ep_, large, staging_, TimePoint::origin(), p).ok());
  EXPECT_GT(stats_.get(stat::kMrRegister), before.get(stat::kMrRegister));
}

TEST_F(TransferTest, PackWithFreshRegistrationCostsMore) {
  const MemSegmentList segs = make_rows(64, 1024, 4096);
  TransferPolicy prereg = policy(XferScheme::kPackUnpack);
  TransferOutcome fast =
      xfer_.push(ep_, segs, staging_, TimePoint::origin(), prereg);
  client_hca_.nic().reset();
  server_hca_.nic().reset();
  TransferPolicy reg = prereg;
  reg.pack_preregistered = false;
  TransferOutcome slow =
      xfer_.push(ep_, segs, staging_, TimePoint::origin(), reg);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(slow.ok());
  EXPECT_GT(slow.reg_cost, fast.reg_cost);
  EXPECT_GT(slow.complete - TimePoint::origin(),
            fast.complete - TimePoint::origin());
}

TEST_F(TransferTest, OversizedTransferRejected) {
  const MemSegmentList segs = make_rows(1, 17 * kMiB, 17 * kMiB);
  TransferOutcome out = xfer_.push(ep_, segs, staging_, TimePoint::origin(),
                                   policy(XferScheme::kRdmaGatherScatter));
  EXPECT_FALSE(out.ok());
}

TEST_F(TransferTest, EmptyTransferRejected) {
  TransferOutcome out = xfer_.push(ep_, {}, staging_, TimePoint::origin(),
                                   policy(XferScheme::kPackUnpack));
  EXPECT_FALSE(out.ok());
}

TEST_F(TransferTest, WarmCacheMakesGatherApproachContiguous) {
  const MemSegmentList segs = make_rows(1024, 4096, 8192);  // 4 MiB
  TransferPolicy p = policy(XferScheme::kRdmaGatherScatter);
  // Warm-up pass registers the group region.
  ASSERT_TRUE(xfer_.push(ep_, segs, staging_, TimePoint::origin(), p).ok());
  client_hca_.nic().reset();
  server_hca_.nic().reset();
  TransferOutcome warm =
      xfer_.push(ep_, segs, staging_, TimePoint::origin(), p);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm.reg_cost, Duration::zero());
  // Contiguous reference: a single 4 MiB SGE from the same region.
  client_hca_.nic().reset();
  server_hca_.nic().reset();
  const u64 total = 4 * kMiB;
  const MemSegmentList contig{{segs[0].addr, total}};
  // (The rows' allocation is 8 MiB, contiguous from the base.)
  TransferOutcome ref =
      xfer_.push(ep_, contig, staging_, TimePoint::origin(), p);
  ASSERT_TRUE(ref.ok());
  const double warm_us = (warm.complete - TimePoint::origin()).as_us();
  const double ref_us = (ref.complete - TimePoint::origin()).as_us();
  EXPECT_LT(warm_us, ref_us * 1.10);  // within 10% of contiguous
}

}  // namespace
}  // namespace pvfsib::core
