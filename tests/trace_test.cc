// Trace facility tests: disabled-by-default, bounded ring, and protocol
// layers emitting the expected structure during a list I/O operation.
#include "sim/trace.h"

#include <gtest/gtest.h>

#include "pvfs/cluster.h"

namespace pvfsib {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  TraceTest() { sim::Trace::instance().clear(); }
  ~TraceTest() override {
    sim::Trace::instance().disable();
    sim::Trace::instance().clear();
  }
};

TEST_F(TraceTest, DisabledByDefaultCostsNothing) {
  sim::Trace& t = sim::Trace::instance();
  EXPECT_FALSE(t.enabled());
  t.emit(TimePoint::origin(), "x", "ignored");
  EXPECT_TRUE(t.entries().empty());
}

TEST_F(TraceTest, RingBoundsAndDrops) {
  sim::Trace& t = sim::Trace::instance();
  t.enable(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    t.emitf(TimePoint::origin() + Duration::us(i), "n", "event %d", i);
  }
  EXPECT_EQ(t.entries().size(), 4u);
  EXPECT_EQ(t.dropped(), 6u);
  EXPECT_EQ(t.entries().front().what, "event 6");
  EXPECT_EQ(t.entries().back().what, "event 9");
}

TEST_F(TraceTest, ListIoEmitsProtocolEvents) {
  sim::Trace& t = sim::Trace::instance();
  t.enable();
  pvfs::Cluster cluster(ModelConfig::paper_defaults(), 1, 2);
  pvfs::Client& c = cluster.client(0);
  pvfs::OpenFile f = c.create("/tr").value();
  core::ListIoRequest req;
  const u64 buf = c.memory().alloc(256 * kKiB);
  for (u64 i = 0; i < 64; ++i) {
    req.mem.push_back({buf + i * 4096, 1024});
    req.file.push_back({i * 4096, 1024});
  }
  ASSERT_TRUE(c.write_list(f, req).ok());

  bool saw_request = false, saw_disk = false, saw_complete = false;
  for (const auto& e : t.entries()) {
    if (e.what.find("write round") != std::string::npos &&
        e.who == "client0") {
      saw_request = true;
    }
    if (e.what.find("write round") != std::string::npos &&
        e.who.rfind("iod", 0) == 0) {
      saw_disk = true;
    }
    if (e.what.find("op complete") != std::string::npos) saw_complete = true;
  }
  EXPECT_TRUE(saw_request);
  EXPECT_TRUE(saw_disk);
  EXPECT_TRUE(saw_complete);
  // Timestamps are monotone within the ring (events are emitted in
  // simulation order by construction of the engine).
  for (size_t i = 1; i < t.entries().size(); ++i) {
    EXPECT_GE(t.entries()[i].at, TimePoint::origin());
  }
}

}  // namespace
}  // namespace pvfsib
