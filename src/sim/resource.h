// A serially-reusable resource (NIC, disk head, CPU) with busy-until
// occupancy accounting. Acquiring for [ready, ready+dur) returns the actual
// start time: max(ready, busy_until). This models FIFO queueing without
// explicit queue events and is exact for work-conserving FIFO service.
#pragma once

#include <string>

#include "common/sim_time.h"

namespace pvfsib::sim {

class Resource {
 public:
  Resource() = default;
  explicit Resource(std::string name) : name_(std::move(name)) {}

  // Reserve the resource for `dur` starting no earlier than `ready`.
  // Returns the completion time; the start is completion - dur.
  TimePoint acquire(TimePoint ready, Duration dur) {
    const TimePoint start = max(ready, busy_until_);
    busy_until_ = start + dur;
    busy_total_ += dur;
    return busy_until_;
  }

  // When would a request arriving at `ready` start service?
  TimePoint earliest_start(TimePoint ready) const {
    return max(ready, busy_until_);
  }

  TimePoint busy_until() const { return busy_until_; }
  Duration busy_total() const { return busy_total_; }
  const std::string& name() const { return name_; }

  void reset() {
    busy_until_ = TimePoint::origin();
    busy_total_ = Duration::zero();
  }

 private:
  std::string name_;
  TimePoint busy_until_ = TimePoint::origin();
  Duration busy_total_ = Duration::zero();
};

}  // namespace pvfsib::sim
