// Deterministic discrete-event engine.
//
// Every timed activity in the cluster (request arrival, RDMA completion,
// disk service, reply delivery) is an event on one global virtual timeline.
// Handlers run at their event's timestamp and may schedule further events.
// Ties are broken by insertion order, so a run is a pure function of its
// inputs — benchmarks are reproducible bit-for-bit.
//
// Events double as cancellable timers: schedule_at/schedule_in return a
// TimerId, and cancel() marks the event so it is discarded (without running
// or advancing the clock) when it reaches the front of the queue. The
// recovery layer uses this for per-round timeouts that are armed on every
// issue and cancelled by the reply in the common case.
#pragma once

#include <algorithm>
#include <cassert>
#include <functional>
#include <unordered_set>
#include <vector>

#include "common/sim_time.h"
#include "common/types.h"

namespace pvfsib::sim {

class Engine {
 public:
  using Handler = std::function<void()>;
  // Identifies a scheduled event for cancel(). Never reused within a run.
  using TimerId = u64;

  TimePoint now() const { return now_; }

  // Schedule `fn` to run at absolute time `at` (must not be in the past).
  TimerId schedule_at(TimePoint at, Handler fn) {
    assert(at >= now_);
    const TimerId id = next_seq_++;
    heap_.push_back(Event{at, id, std::move(fn)});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    return id;
  }

  // Schedule `fn` to run `delay` after the current time.
  TimerId schedule_in(Duration delay, Handler fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  // Cancel a pending event: it will be dropped unrun when popped, without
  // advancing the clock or counting as processed. Cancelling an event that
  // already ran leaves a tombstone until it is matched or reset() — callers
  // should only cancel timers they know are still pending.
  void cancel(TimerId id) { cancelled_.insert(id); }

  // Run until the event queue drains. Returns the time of the last event.
  TimePoint run() {
    while (!heap_.empty()) step();
    return now_;
  }

  // Run until `done` returns true (checked after each event) or the queue
  // drains.
  TimePoint run_until(const std::function<bool()>& done) {
    while (!heap_.empty() && !done()) step();
    return now_;
  }

  bool idle() const { return heap_.empty(); }
  u64 events_processed() const { return processed_; }

  // Forget all pending events and reset the clock (for back-to-back
  // benchmark trials that want a fresh timeline).
  void reset() {
    heap_.clear();
    cancelled_.clear();
    now_ = TimePoint::origin();
    next_seq_ = 0;
    processed_ = 0;
  }

 private:
  struct Event {
    TimePoint at;
    u64 seq;
    Handler fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;  // FIFO among simultaneous events
    }
  };

  void step() {
    // The engine owns the heap, so the popped event is moved legally out of
    // the backing vector (priority_queue::top() only exposes a const ref)
    // and the handler stays alive while it runs even if it schedules new
    // events (which may reallocate the vector).
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Event ev = std::move(heap_.back());
    heap_.pop_back();
    if (!cancelled_.empty() && cancelled_.erase(ev.seq) > 0) {
      return;  // cancelled timer: discard without running or advancing time
    }
    now_ = ev.at;
    ++processed_;
    ev.fn();
  }

  std::vector<Event> heap_;
  std::unordered_set<TimerId> cancelled_;
  TimePoint now_ = TimePoint::origin();
  u64 next_seq_ = 0;
  u64 processed_ = 0;
};

}  // namespace pvfsib::sim
