// Deterministic discrete-event engine.
//
// Every timed activity in the cluster (request arrival, RDMA completion,
// disk service, reply delivery) is an event on one global virtual timeline.
// Handlers run at their event's timestamp and may schedule further events.
// Ties are broken by insertion order, so a run is a pure function of its
// inputs — benchmarks are reproducible bit-for-bit.
#pragma once

#include <cassert>
#include <functional>
#include <queue>
#include <vector>

#include "common/sim_time.h"
#include "common/types.h"

namespace pvfsib::sim {

class Engine {
 public:
  using Handler = std::function<void()>;

  TimePoint now() const { return now_; }

  // Schedule `fn` to run at absolute time `at` (must not be in the past).
  void schedule_at(TimePoint at, Handler fn) {
    assert(at >= now_);
    queue_.push(Event{at, next_seq_++, std::move(fn)});
  }

  // Schedule `fn` to run `delay` after the current time.
  void schedule_in(Duration delay, Handler fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  // Run until the event queue drains. Returns the time of the last event.
  TimePoint run() {
    while (!queue_.empty()) step();
    return now_;
  }

  // Run until `done` returns true (checked after each event) or the queue
  // drains.
  TimePoint run_until(const std::function<bool()>& done) {
    while (!queue_.empty() && !done()) step();
    return now_;
  }

  bool idle() const { return queue_.empty(); }
  u64 events_processed() const { return processed_; }

  // Forget all pending events and reset the clock (for back-to-back
  // benchmark trials that want a fresh timeline).
  void reset() {
    queue_ = {};
    now_ = TimePoint::origin();
    next_seq_ = 0;
    processed_ = 0;
  }

 private:
  struct Event {
    TimePoint at;
    u64 seq;
    Handler fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;  // FIFO among simultaneous events
    }
  };

  void step() {
    // Moving out of the queue before popping keeps the handler alive while
    // it runs even if it schedules new events (which may reallocate).
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.at;
    ++processed_;
    ev.fn();
  }

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  TimePoint now_ = TimePoint::origin();
  u64 next_seq_ = 0;
  u64 processed_ = 0;
};

}  // namespace pvfsib::sim
