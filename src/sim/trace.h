// Lightweight virtual-time event trace. Disabled by default (zero cost
// beyond a branch); when enabled, protocol layers record what happened at
// which simulated time into a bounded ring. Examples expose it behind a
// --trace flag; tests use it to assert protocol structure.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <deque>
#include <string>

#include "common/sim_time.h"

namespace pvfsib::sim {

class Trace {
 public:
  struct Entry {
    TimePoint at;
    std::string who;
    std::string what;
  };

  static Trace& instance() {
    static Trace t;
    return t;
  }

  void enable(size_t capacity = 4096) {
    enabled_ = true;
    capacity_ = capacity;
  }
  void disable() { enabled_ = false; }
  bool enabled() const { return enabled_; }

  void emit(TimePoint at, std::string who, std::string what) {
    if (!enabled_) return;
    if (ring_.size() >= capacity_) {
      ring_.pop_front();
      ++dropped_;
    }
    ring_.push_back(Entry{at, std::move(who), std::move(what)});
  }

  void emitf(TimePoint at, std::string who, const char* fmt, ...)
      __attribute__((format(printf, 4, 5))) {
    if (!enabled_) return;
    char buf[256];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    emit(at, std::move(who), buf);
  }

  const std::deque<Entry>& entries() const { return ring_; }
  u64 dropped() const { return dropped_; }

  void clear() {
    ring_.clear();
    dropped_ = 0;
  }

  void dump(FILE* out, size_t last_n = 64) const {
    const size_t start = ring_.size() > last_n ? ring_.size() - last_n : 0;
    for (size_t i = start; i < ring_.size(); ++i) {
      const Entry& e = ring_[i];
      std::fprintf(out, "%12.2f us  %-10s %s\n", e.at.as_us(),
                   e.who.c_str(), e.what.c_str());
    }
    if (dropped_ > 0) {
      std::fprintf(out, "  (%llu earlier entries dropped)\n",
                   static_cast<unsigned long long>(dropped_));
    }
  }

 private:
  Trace() = default;
  bool enabled_ = false;
  size_t capacity_ = 4096;
  std::deque<Entry> ring_;
  u64 dropped_ = 0;
};

}  // namespace pvfsib::sim
