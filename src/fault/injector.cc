#include "fault/injector.h"

#include "sim/engine.h"

namespace pvfsib::fault {

Injector::Injector(const FaultConfig& cfg, Stats* stats)
    : cfg_(cfg),
      stats_(stats),
      enabled_(cfg.enabled()),
      rng_(cfg.seed),
      consumed_(cfg.schedule.size(), false) {
  if (!enabled_ || stats_ == nullptr) return;
  // Crashes are injected by construction of the schedule, not by a later
  // draw; count them up front so fault.injected.iod_crash reflects the
  // schedule even if no request ever lands in a down window.
  for (const FaultEvent& ev : cfg_.schedule) {
    if (ev.kind == FaultKind::kIodCrash) stats_->add(stat::kFaultIodCrash);
    if (ev.kind == FaultKind::kManagerCrash) {
      stats_->add(stat::kFaultManagerCrash);
    }
  }
}

Duration Injector::perturb_transfer(TimePoint at, u64 bytes,
                                    double mib_per_sec) {
  (void)at;
  if (!enabled_) return Duration::zero();
  Duration extra = Duration::zero();
  if (cfg_.retransmit_rate > 0.0 && rng_.chance(cfg_.retransmit_rate)) {
    // Corruption/loss on the wire: the RC transport times out and resends,
    // so the consumer sees success, late.
    extra += cfg_.retransmit_timeout + transfer_time(bytes, mib_per_sec);
    if (stats_ != nullptr) stats_->add(stat::kFaultRetransmit);
  }
  if (cfg_.latency_spike_rate > 0.0 && rng_.chance(cfg_.latency_spike_rate)) {
    extra += cfg_.latency_spike;
    if (stats_ != nullptr) stats_->add(stat::kFaultLatencySpike);
  }
  return extra;
}

bool Injector::completion_error() {
  if (!enabled_ || cfg_.completion_error_rate <= 0.0) return false;
  if (!rng_.chance(cfg_.completion_error_rate)) return false;
  if (stats_ != nullptr) stats_->add(stat::kFaultCompletionError);
  return true;
}

bool Injector::rnr() {
  if (!enabled_ || cfg_.rnr_rate <= 0.0) return false;
  if (!rng_.chance(cfg_.rnr_rate)) return false;
  if (stats_ != nullptr) stats_->add(stat::kFaultRnr);
  return true;
}

bool Injector::iod_down(u32 iod, TimePoint at) const {
  for (const FaultEvent& ev : cfg_.schedule) {
    if (ev.kind == FaultKind::kIodCrash && ev.target == iod && at >= ev.at &&
        at < ev.at + ev.duration) {
      return true;
    }
  }
  return false;
}

bool Injector::consume_scheduled(FaultKind kind, u32 target, TimePoint at) {
  for (size_t i = 0; i < cfg_.schedule.size(); ++i) {
    const FaultEvent& ev = cfg_.schedule[i];
    if (!consumed_[i] && ev.kind == kind && ev.target == target &&
        at >= ev.at) {
      consumed_[i] = true;
      return true;
    }
  }
  return false;
}

bool Injector::request_lost(u32 iod, TimePoint at) {
  if (!enabled_) return false;
  if (iod_down(iod, at)) {
    if (stats_ != nullptr) stats_->add(stat::kFaultIodDownDrop);
    return true;
  }
  if (consume_scheduled(FaultKind::kDropRequest, iod, at)) {
    if (stats_ != nullptr) stats_->add(stat::kFaultRequestDrop);
    return true;
  }
  if (cfg_.request_drop_rate > 0.0 && rng_.chance(cfg_.request_drop_rate)) {
    if (stats_ != nullptr) stats_->add(stat::kFaultRequestDrop);
    return true;
  }
  return false;
}

bool Injector::reply_lost(u32 iod, TimePoint at) {
  if (!enabled_) return false;
  if (iod_down(iod, at)) {
    if (stats_ != nullptr) stats_->add(stat::kFaultIodDownDrop);
    return true;
  }
  if (consume_scheduled(FaultKind::kDropReply, iod, at)) {
    if (stats_ != nullptr) stats_->add(stat::kFaultReplyDrop);
    return true;
  }
  if (cfg_.reply_drop_rate > 0.0 && rng_.chance(cfg_.reply_drop_rate)) {
    if (stats_ != nullptr) stats_->add(stat::kFaultReplyDrop);
    return true;
  }
  return false;
}

bool Injector::manager_down(TimePoint at, u32 shard) const {
  for (const FaultEvent& ev : cfg_.schedule) {
    if (ev.kind == FaultKind::kManagerCrash && ev.target == shard &&
        at >= ev.at && at < ev.at + ev.duration) {
      return true;
    }
  }
  return false;
}

bool Injector::meta_request_lost(TimePoint at, bool primary, u32 shard) {
  if (!enabled_) return false;
  if (primary && manager_down(at, shard)) {
    if (stats_ != nullptr) stats_->add(stat::kFaultManagerDownDrop);
    return true;
  }
  // Scheduled meta drops match on kind, shard and time (unsharded planes
  // are shard 0, matching the event target's default).
  for (size_t i = 0; i < cfg_.schedule.size(); ++i) {
    const FaultEvent& ev = cfg_.schedule[i];
    if (!consumed_[i] && ev.kind == FaultKind::kDropMetaRequest &&
        ev.target == shard && at >= ev.at) {
      consumed_[i] = true;
      if (stats_ != nullptr) stats_->add(stat::kFaultMetaRequestDrop);
      return true;
    }
  }
  if (cfg_.meta_request_drop_rate > 0.0 &&
      rng_.chance(cfg_.meta_request_drop_rate)) {
    if (stats_ != nullptr) stats_->add(stat::kFaultMetaRequestDrop);
    return true;
  }
  return false;
}

bool Injector::migration_target_crashed(u32 shard, TimePoint at) {
  if (!enabled_) return false;
  if (!consume_scheduled(FaultKind::kMigrationTargetCrash, shard, at)) {
    return false;
  }
  if (stats_ != nullptr) stats_->add(stat::kFaultMigrationTargetCrash);
  return true;
}

void Injector::install_restart_hooks(sim::Engine& engine, RestartHook hook) {
  if (!enabled_) return;
  for (const FaultEvent& ev : cfg_.schedule) {
    if (ev.kind != FaultKind::kIodCrash) continue;
    const TimePoint at = ev.at + ev.duration;
    engine.schedule_at(at, [hook, target = ev.target, at] {
      hook(target, at);
    });
  }
}

void Injector::install_manager_takeover_hooks(sim::Engine& engine,
                                              Duration delay,
                                              TakeoverHook hook) {
  if (!enabled_) return;
  for (const FaultEvent& ev : cfg_.schedule) {
    if (ev.kind != FaultKind::kManagerCrash) continue;
    const TimePoint at = ev.at + delay;
    engine.schedule_at(at, [hook, shard = ev.target, at] { hook(shard, at); });
  }
}

bool Injector::lost_write(u32 iod, TimePoint at) {
  if (!enabled_) return false;
  bool fire = consume_scheduled(FaultKind::kLostWrite, iod, at);
  if (!fire && cfg_.lost_write_rate > 0.0 &&
      rng_.chance(cfg_.lost_write_rate)) {
    fire = true;
  }
  if (fire && stats_ != nullptr) stats_->add(stat::kFaultLostWrite);
  return fire;
}

bool Injector::torn_write(u32 iod, TimePoint at) {
  if (!enabled_) return false;
  bool fire = consume_scheduled(FaultKind::kTornWrite, iod, at);
  if (!fire && cfg_.torn_write_rate > 0.0 &&
      rng_.chance(cfg_.torn_write_rate)) {
    fire = true;
  }
  if (fire && stats_ != nullptr) stats_->add(stat::kFaultTornWrite);
  return fire;
}

bool Injector::write_bit_flip(u32 iod, TimePoint at) {
  (void)iod;
  (void)at;
  if (!enabled_ || cfg_.bit_flip_rate <= 0.0) return false;
  if (!rng_.chance(cfg_.bit_flip_rate)) return false;
  if (stats_ != nullptr) stats_->add(stat::kFaultBitFlip);
  return true;
}

void Injector::install_corruption_hooks(sim::Engine& engine,
                                        CorruptionHook hook) {
  if (!enabled_) return;
  for (const FaultEvent& ev : cfg_.schedule) {
    if (ev.kind != FaultKind::kBitFlip) continue;
    engine.schedule_at(ev.at, [hook, target = ev.target, at = ev.at] {
      hook(target, at);
    });
  }
}

double Injector::disk_factor(u32 iod, TimePoint at) const {
  if (!enabled_) return 1.0;
  double factor = 1.0;
  for (const FaultConfig::DiskDegrade& d : cfg_.disk_degrade) {
    if (d.iod == iod && at >= d.from && at < d.until) factor *= d.factor;
  }
  return factor;
}

}  // namespace pvfsib::fault
