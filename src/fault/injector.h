// Deterministic, schedule-driven fault injector (the fault plane).
//
// One Injector per cluster sits below the fabric, the QPs and the iods and
// answers "does this message/transfer/server fail right now?". Decisions
// come from two sources, both pure functions of the FaultConfig:
//
//   * explicit (time, target, kind) schedule entries — iod crashes with a
//     restart delay, one-shot request/reply drops — consumed in order, and
//   * seeded random draws (common/rng.h) at the configured rates.
//
// Because every query happens at a deterministic point of the event
// engine's total order, the xoshiro stream is consumed identically across
// runs: a faulty run is exactly as reproducible as a healthy one, which is
// what makes recovery behaviour unit-testable.
//
// The injector also collects fault-domain observability: per-round latency
// samples (for p99 under faults) and the fault.injected.* counters. With a
// trivial config enabled() is false and no layer consults the injector at
// all, keeping zero-fault runs byte-identical to seed.
#pragma once

#include <functional>
#include <vector>

#include "common/config.h"
#include "common/rng.h"
#include "common/sim_time.h"
#include "common/stats.h"

namespace pvfsib::sim {
class Engine;
}

namespace pvfsib::fault {

class Injector {
 public:
  Injector(const FaultConfig& cfg, Stats* stats);

  bool enabled() const { return enabled_; }
  const FaultConfig& config() const { return cfg_; }

  // --- Fabric hooks ---------------------------------------------------------
  // Extra cost charged to a transfer of `bytes` at bandwidth `mib_per_sec`
  // starting at `at`: transport retransmits (timeout + second wire pass)
  // and per-link latency spikes. Zero when nothing fires.
  Duration perturb_transfer(TimePoint at, u64 bytes, double mib_per_sec);

  // Should this RDMA work request complete in error? (Surfaced to the
  // consumer through TransferResult.status as kUnavailable.)
  bool completion_error();

  // --- QP hooks -------------------------------------------------------------
  // Force a receiver-not-ready failure on a channel send.
  bool rnr();

  // --- PVFS round hooks -----------------------------------------------------
  // Is `iod` crashed (scheduled kIodCrash window) at time `at`?
  bool iod_down(u32 iod, TimePoint at) const;

  // Does the round request arriving at `iod` at `at` vanish? Combines the
  // explicit one-shot drops, crash windows and the random drop rate.
  bool request_lost(u32 iod, TimePoint at);
  // Does the round reply leaving `iod` at `at` vanish?
  bool reply_lost(u32 iod, TimePoint at);

  // --- Manager hooks --------------------------------------------------------
  // Is metadata shard `shard`'s primary manager crashed (scheduled
  // kManagerCrash window with that target) at `at`? (Standbys never crash;
  // once promoted they stay up. Shard 0 is the only shard on an unsharded
  // plane, matching legacy schedules whose target defaulted to 0.)
  bool manager_down(TimePoint at, u32 shard = 0) const;

  // Does the metadata request arriving at shard `shard`'s manager at `at`
  // vanish? Scheduled kDropMetaRequest events targeting the shard plus the
  // random drop rate; for the shard's primary (`primary` true) also its
  // kManagerCrash windows. Standbys only lose requests to drops, never to
  // crash windows.
  bool meta_request_lost(TimePoint at, bool primary = true, u32 shard = 0);

  // Did the in-flight migration target for metadata shard `shard` crash
  // (scheduled kMigrationTargetCrash with that target, one-shot) by `at`?
  // Consulted by the migration's stream rounds and its cutover check; a
  // `true` aborts the migration and falls back to the source. Runs without
  // migrations never call this, so the schedule entry is inert for them.
  bool migration_target_crashed(u32 shard, TimePoint at);

  // Schedule `hook(shard, takeover_time)` on the engine `delay` after every
  // kManagerCrash window *opens* (failure detection + rebuild time — the
  // standby does not wait for the primary to come back); `shard` is the
  // event's target. Cluster installs these when FaultConfig::standby_takeover
  // is set; without a call the schedule drives nothing extra.
  using TakeoverHook = std::function<void(u32 shard, TimePoint at)>;
  void install_manager_takeover_hooks(sim::Engine& engine, Duration delay,
                                      TakeoverHook hook);

  // --- Iod hooks ------------------------------------------------------------
  // Disk service-time multiplier for `iod` at `at` (1.0 when healthy).
  double disk_factor(u32 iod, TimePoint at) const;

  // --- Silent-corruption hooks ---------------------------------------------
  // Consulted by the iod once per applied write round, in this fixed order
  // (lost, torn, flip) so the rng stream is consumed identically across
  // runs. A `true` return counts the fault.injected.* stat; the iod then
  // applies the corresponding corruption to the round. Scheduled
  // kLostWrite/kTornWrite events are one-shot per target like the drop
  // kinds; scheduled kBitFlip events fire through install_corruption_hooks
  // instead (they hit data at rest, not a round in flight).
  bool lost_write(u32 iod, TimePoint at);
  bool torn_write(u32 iod, TimePoint at);
  bool write_bit_flip(u32 iod, TimePoint at);

  // Deterministic placement draw for the corruption machinery (which byte
  // to flip, how much of a torn round to keep): a plain next-below-bound
  // pull from the injector's seeded stream.
  u64 draw(u64 bound) { return bound == 0 ? 0 : rng_.below(bound); }

  // Schedule `hook(iod, at)` on the engine for every scheduled kBitFlip
  // event: the iod then flips stored bytes chosen via draw(). Cluster
  // installs these whenever the fault plane is enabled; a schedule with no
  // kBitFlip entries schedules nothing.
  using CorruptionHook = std::function<void(u32 iod, TimePoint at)>;
  void install_corruption_hooks(sim::Engine& engine, CorruptionHook hook);

  // Schedule `hook(iod, restart_time)` on the engine for every kIodCrash
  // window's end (the moment the iod comes back up). The resync scanner
  // rides these (Cluster installs them when background re-replication is
  // on); without a call the schedule drives nothing extra, keeping all
  // other fault runs event-for-event identical.
  using RestartHook = std::function<void(u32 iod, TimePoint at)>;
  void install_restart_hooks(sim::Engine& engine, RestartHook hook);

  // --- Observability --------------------------------------------------------
  // The client records every recovered/settled round's issue-to-settle
  // latency here; benches derive tail percentiles from the samples.
  void note_round_latency(Duration d) { round_latencies_.push_back(d); }
  const std::vector<Duration>& round_latencies() const {
    return round_latencies_;
  }

 private:
  // Consume the first unconsumed schedule entry of `kind` for `target`
  // whose time has come; returns true if one fired.
  bool consume_scheduled(FaultKind kind, u32 target, TimePoint at);

  FaultConfig cfg_;
  Stats* stats_;
  bool enabled_;
  Rng rng_;
  std::vector<bool> consumed_;  // parallel to cfg_.schedule
  std::vector<Duration> round_latencies_;
};

}  // namespace pvfsib::fault
