// Unified LRU page cache shared by all files on one I/O node, with dirty
// tracking for write-back. Cache-hit service bandwidths come straight from
// Table 3's "with cache" bonnie rows.
#pragma once

#include <list>
#include <map>
#include <set>
#include <vector>

#include "common/config.h"
#include "common/extent.h"
#include "common/stats.h"

namespace pvfsib::disk {

struct PageKey {
  u32 file = 0;
  u64 page = 0;
  auto operator<=>(const PageKey&) const = default;
};

class PageCache {
 public:
  explicit PageCache(const DiskParams& params) : params_(params) {
    capacity_pages_ = params.cache_capacity / kPageSize;
  }

  bool cached(PageKey k) const { return entries_.count(k) != 0; }

  // Byte ranges of `window` (file byte space) currently cached for `file`.
  ExtentList cached_ranges(u32 file, const Extent& window) const;

  // Insert pages [first_page, first_page + n) for `file`. Dirty pages
  // evicted to make room are returned so the caller can charge write-back.
  std::vector<PageKey> insert(u32 file, u64 first_page, u64 n, bool dirty);

  // Dirty byte ranges of `file`, coalesced, and mark them clean (fsync).
  ExtentList flush_dirty(u32 file);

  // Drop every page of `file` (or all files); dirty pages are returned so
  // the caller can charge write-back before discarding.
  std::vector<PageKey> drop(u32 file);
  std::vector<PageKey> drop_all();

  u64 pages_cached() const { return entries_.size(); }
  u64 capacity_pages() const { return capacity_pages_; }

 private:
  struct Entry {
    bool dirty = false;
    std::list<PageKey>::iterator lru_it;
  };

  void touch(std::map<PageKey, Entry>::iterator it);

  DiskParams params_;
  u64 capacity_pages_ = 0;
  std::map<PageKey, Entry> entries_;
  std::list<PageKey> lru_;  // front = most recent
};

}  // namespace pvfsib::disk
