#include "disk/page_cache.h"

namespace pvfsib::disk {

ExtentList PageCache::cached_ranges(u32 file, const Extent& window) const {
  ExtentList out;
  if (window.empty()) return out;
  const u64 first = window.offset / kPageSize;
  const u64 last = (window.end() - 1) / kPageSize;
  auto it = entries_.lower_bound(PageKey{file, first});
  for (; it != entries_.end() && it->first.file == file &&
         it->first.page <= last;
       ++it) {
    const u64 lo = std::max(window.offset, it->first.page * kPageSize);
    const u64 hi = std::min(window.end(), (it->first.page + 1) * kPageSize);
    if (lo < hi) out.push_back({lo, hi - lo});
  }
  return coalesce(out);
}

std::vector<PageKey> PageCache::insert(u32 file, u64 first_page, u64 n,
                                       bool dirty) {
  std::vector<PageKey> evicted_dirty;
  for (u64 p = first_page; p < first_page + n; ++p) {
    const PageKey key{file, p};
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      it->second.dirty = it->second.dirty || dirty;
      touch(it);
      continue;
    }
    while (entries_.size() >= capacity_pages_ && !lru_.empty()) {
      const PageKey victim = lru_.back();
      auto vit = entries_.find(victim);
      if (vit->second.dirty) evicted_dirty.push_back(victim);
      entries_.erase(vit);
      lru_.pop_back();
    }
    lru_.push_front(key);
    entries_[key] = Entry{dirty, lru_.begin()};
  }
  return evicted_dirty;
}

ExtentList PageCache::flush_dirty(u32 file) {
  ExtentList dirty;
  auto it = entries_.lower_bound(PageKey{file, 0});
  for (; it != entries_.end() && it->first.file == file; ++it) {
    if (it->second.dirty) {
      dirty.push_back({it->first.page * kPageSize, kPageSize});
      it->second.dirty = false;
    }
  }
  return coalesce(dirty);
}

std::vector<PageKey> PageCache::drop(u32 file) {
  std::vector<PageKey> dirty;
  auto it = entries_.lower_bound(PageKey{file, 0});
  while (it != entries_.end() && it->first.file == file) {
    if (it->second.dirty) dirty.push_back(it->first);
    lru_.erase(it->second.lru_it);
    it = entries_.erase(it);
  }
  return dirty;
}

std::vector<PageKey> PageCache::drop_all() {
  std::vector<PageKey> dirty;
  for (const auto& [key, entry] : entries_) {
    if (entry.dirty) dirty.push_back(key);
  }
  entries_.clear();
  lru_.clear();
  return dirty;
}

void PageCache::touch(std::map<PageKey, Entry>::iterator it) {
  lru_.erase(it->second.lru_it);
  lru_.push_front(it->first);
  it->second.lru_it = lru_.begin();
}

}  // namespace pvfsib::disk
