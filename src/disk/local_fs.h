// The I/O node's local file system (the role ext3 plays on a PVFS iod).
//
// Files hold real bytes; every call charges the virtual-time costs the ADS
// model reasons about: per-syscall overheads (O_r/O_w/O_seek/O_lock),
// page-cache service on hits, media seek + transfer on misses, write-back
// on fsync. One pread/pwrite models PVFS's (lseek, read/write) pair and is
// counted as one disk access in the Table 6 profile.
#pragma once

#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/sim_time.h"
#include "common/stats.h"
#include "common/status.h"
#include "disk/disk.h"
#include "disk/page_cache.h"

namespace pvfsib::disk {

struct IoOpts {
  bool direct = false;  // bypass the page cache entirely (O_DIRECT)
};

class LocalFs;

class LocalFile {
 public:
  // Read up to dst.size() bytes at `off`; short count at EOF.
  Timed<u64> pread(u64 off, std::span<std::byte> dst, IoOpts opts = {});

  // Write src at `off`, growing (and zero-filling) the file as needed.
  Timed<u64> pwrite(u64 off, std::span<const std::byte> src, IoOpts opts = {});

  // Flush dirty pages to media.
  Duration fsync();

  // Whole-file advisory lock (ADS read-modify-write holds this).
  Duration lock();
  Duration unlock();
  bool locked() const { return locked_; }

  // Byte-range advisory locks ("the portion of the file being accessed
  // must be locked"). Conflicting requests fail rather than block — the
  // simulation is single-threaded, so a conflict is a protocol bug.
  struct RangeLock {
    u64 id = 0;
    Duration cost = Duration::zero();
  };
  Result<RangeLock> lock_range(const Extent& range);
  Duration unlock_range(u64 lock_id);
  bool range_locked(const Extent& range) const;

  u64 size() const { return content_.size(); }
  u32 id() const { return id_; }
  const std::string& path() const { return path_; }

  // Direct access to contents for test verification (no cost, no stats).
  std::span<const std::byte> contents() const { return content_; }

  // Mutable view for the fault plane only: silent-corruption injection
  // (bit flips, torn-write garbling) mutates stored bytes behind the
  // checksum machinery's back. No cost, no stats, no cache interaction —
  // exactly what "silent" means. Never used by the regular I/O path.
  std::span<std::byte> mutable_contents() { return content_; }

  // Release the file's blocks and cached pages (unlink's data side).
  // Returns the (small) cost of the metadata update.
  Duration purge();

 private:
  friend class LocalFs;
  LocalFile(LocalFs* fs, u32 id, std::string path, u64 disk_base)
      : fs_(fs), id_(id), path_(std::move(path)), disk_base_(disk_base) {}

  Duration seek_syscall_cost(u64 off);
  Duration writeback(const std::vector<PageKey>& pages);

  // Mark [off, off+len) as having allocated blocks.
  void mark_written(u64 off, u64 len);
  // Portions of [off, off+len) backed by allocated blocks, sorted.
  ExtentList written_within(u64 off, u64 len) const;

  LocalFs* fs_;
  u32 id_;
  std::string path_;
  u64 disk_base_;  // position of byte 0 on the platter
  u64 logical_pos_ = 0;
  bool locked_ = false;
  std::vector<std::byte> content_;
  // Allocated block ranges: reading a hole inside a sparse file returns
  // zeros straight from the block map, without any media access.
  std::map<u64, u64> written_;
  // Active byte-range locks: id -> extent.
  std::map<u64, Extent> range_locks_;
  u64 next_lock_id_ = 1;
};

class LocalFs {
 public:
  LocalFs(std::string name, const DiskParams& disk_params,
          const FsParams& fs_params, Stats* stats);

  Result<u32> create(const std::string& path);
  Result<u32> open(const std::string& path);
  bool exists(const std::string& path) const;
  LocalFile& file(u32 fd);
  const LocalFile& file(u32 fd) const;

  // Flush all dirty pages and empty the cache (echo 3 > drop_caches after a
  // sync); returns the cost of the write-back.
  Duration drop_caches();

  Disk& media() { return disk_; }
  PageCache& cache() { return cache_; }
  const FsParams& fs_params() const { return fs_params_; }
  const DiskParams& disk_params() const { return disk_params_; }
  Stats* stats() { return stats_; }
  const std::string& name() const { return name_; }

 private:
  friend class LocalFile;

  std::string name_;
  DiskParams disk_params_;
  FsParams fs_params_;
  Stats* stats_;
  Disk disk_;
  PageCache cache_;
  std::vector<std::unique_ptr<LocalFile>> files_;

  // Files are laid out 4 GiB apart on the simulated platter so inter-file
  // seeks are long and intra-file seeks short.
  static constexpr u64 kFileSpacing = 4 * kGiB;
};

}  // namespace pvfsib::disk
