// Rotating-media model: a disk head with positional state, distance-dependent
// seek cost, and size-dependent media bandwidth (small requests amortize
// firmware/DMA setup poorly). Calibrated so large sequential transfers hit
// Table 3's uncached 25 MB/s write / 20 MB/s read.
#pragma once

#include <cstdlib>

#include "common/config.h"
#include "common/sim_time.h"
#include "common/stats.h"

namespace pvfsib::disk {

class Disk {
 public:
  Disk(const DiskParams& params, Stats* stats)
      : params_(params), stats_(stats) {}

  // Service a media read/write of `len` bytes at absolute disk position
  // `pos`. Returns the service time (seek + transfer) and moves the head.
  Duration read(u64 pos, u64 len) { return access(pos, len, /*write=*/false); }
  Duration write(u64 pos, u64 len) { return access(pos, len, /*write=*/true); }

  u64 head() const { return head_; }
  const DiskParams& params() const { return params_; }

 private:
  Duration access(u64 pos, u64 len, bool write) {
    Duration cost = Duration::zero();
    if (pos != head_) {
      const u64 dist = pos > head_ ? pos - head_ : head_ - pos;
      cost += params_.seek_cost(dist);
      if (stats_ != nullptr) stats_->add(stat::kDiskSeek);
    }
    cost += transfer_time(len, params_.media_bw(len, write));
    head_ = pos + len;
    if (stats_ != nullptr) {
      stats_->add(write ? stat::kDiskWriteBytes : stat::kDiskReadBytes,
                  static_cast<i64>(len));
    }
    return cost;
  }

  DiskParams params_;
  Stats* stats_;
  u64 head_ = 0;
};

}  // namespace pvfsib::disk
