#include "disk/local_fs.h"

#include <cassert>
#include <cstring>

namespace pvfsib::disk {

// --- LocalFile ---------------------------------------------------------

Duration LocalFile::seek_syscall_cost(u64 off) {
  if (off == logical_pos_) return Duration::zero();
  if (fs_->stats() != nullptr) fs_->stats()->add("fs.lseek");
  return fs_->fs_params().seek_overhead;
}

Duration LocalFile::writeback(const std::vector<PageKey>& pages) {
  Duration cost = Duration::zero();
  for (const PageKey& p : pages) {
    // Evicted dirty pages go back individually (scattered write-back).
    cost += fs_->disk_.write(disk_base_ + p.page * kPageSize, kPageSize);
  }
  return cost;
}

Timed<u64> LocalFile::pread(u64 off, std::span<std::byte> dst, IoOpts opts) {
  Duration cost = fs_->fs_params().read_overhead + seek_syscall_cost(off);
  if (fs_->stats() != nullptr) fs_->stats()->add(stat::kDiskRead);

  const u64 n = off >= content_.size()
                    ? 0
                    : std::min<u64>(dst.size(), content_.size() - off);
  if (n > 0) {
    const Extent window{off, n};
    if (opts.direct) {
      for (const Extent& blk : written_within(off, n)) {
        cost += fs_->disk_.read(disk_base_ + blk.offset, blk.length);
      }
    } else {
      const ExtentList hits = fs_->cache_.cached_ranges(id_, window);
      u64 hit_bytes = 0;
      for (const Extent& h : hits) hit_bytes += h.length;
      cost += transfer_time(hit_bytes, fs_->disk_params().cache_read_bw);

      for (const Extent& miss : holes_within(window, hits)) {
        // The kernel fills whole pages (clipped to EOF); only ranges with
        // allocated blocks touch the media — sparse holes materialize as
        // zero pages straight from the block map.
        const u64 lo = page_floor(miss.offset);
        const u64 hi = std::min<u64>(page_ceil(miss.end()),
                                     page_ceil(content_.size()));
        if (lo >= hi) continue;
        for (const Extent& blk : written_within(lo, hi - lo)) {
          cost += fs_->disk_.read(disk_base_ + page_floor(blk.offset),
                                  page_ceil(blk.end()) -
                                      page_floor(blk.offset));
        }
        cost += writeback(fs_->cache_.insert(id_, lo / kPageSize,
                                             (hi - lo) / kPageSize,
                                             /*dirty=*/false));
      }
      if (fs_->stats() != nullptr) {
        fs_->stats()->add(stat::kCacheHitBytes, static_cast<i64>(hit_bytes));
        fs_->stats()->add(stat::kCacheMissBytes,
                          static_cast<i64>(n - hit_bytes));
      }
    }
    std::memcpy(dst.data(), content_.data() + off, n);
  }
  logical_pos_ = off + n;
  return {n, cost};
}

Timed<u64> LocalFile::pwrite(u64 off, std::span<const std::byte> src,
                             IoOpts opts) {
  Duration cost = fs_->fs_params().write_overhead + seek_syscall_cost(off);
  if (fs_->stats() != nullptr) fs_->stats()->add(stat::kDiskWrite);

  const u64 n = src.size();
  if (n > 0) {
    if (content_.size() < off + n) content_.resize(off + n);
    std::memcpy(content_.data() + off, src.data(), n);
    mark_written(off, n);

    if (opts.direct) {
      cost += fs_->disk_.write(disk_base_ + off, n);
    } else {
      cost += transfer_time(n, fs_->disk_params().cache_write_bw);
      const u64 lo = page_floor(off);
      const u64 hi = page_ceil(off + n);
      cost += writeback(fs_->cache_.insert(id_, lo / kPageSize,
                                           (hi - lo) / kPageSize,
                                           /*dirty=*/true));
    }
  }
  logical_pos_ = off + n;
  return {n, cost};
}

Duration LocalFile::fsync() {
  Duration cost = fs_->fs_params().write_overhead;  // the fsync call itself
  // The elevator clusters dirty pages across small clean gaps into one
  // media pass (writing a clean gap rewrites identical content, which is
  // harmless and cheaper than a per-run head hop).
  const ExtentList runs =
      coalesce(fs_->cache_.flush_dirty(id_), /*merge_gap=*/64 * kKiB);
  for (const Extent& run : runs) {
    const u64 lo = run.offset;
    const u64 hi = std::min<u64>(run.end(), page_ceil(content_.size()));
    if (lo >= hi) continue;
    cost += fs_->disk_.write(disk_base_ + lo, hi - lo);
  }
  return cost;
}

void LocalFile::mark_written(u64 off, u64 len) {
  // Block (page) granular, merged — mirrors AddressSpace::insert_extent.
  u64 lo = page_floor(off);
  u64 hi = page_ceil(off + len);
  auto it = written_.upper_bound(lo);
  if (it != written_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second >= lo) {
      lo = prev->first;
      hi = std::max(hi, prev->first + prev->second);
      written_.erase(prev);
    }
  }
  it = written_.lower_bound(lo);
  while (it != written_.end() && it->first <= hi) {
    hi = std::max(hi, it->first + it->second);
    it = written_.erase(it);
  }
  written_[lo] = hi - lo;
}

ExtentList LocalFile::written_within(u64 off, u64 len) const {
  ExtentList out;
  if (len == 0) return out;
  auto it = written_.upper_bound(off);
  if (it != written_.begin()) --it;
  for (; it != written_.end() && it->first < off + len; ++it) {
    const u64 lo = std::max(off, it->first);
    const u64 hi = std::min(off + len, it->first + it->second);
    if (lo < hi) out.push_back({lo, hi - lo});
  }
  return out;
}

Duration LocalFile::purge() {
  content_.clear();
  content_.shrink_to_fit();
  written_.clear();
  fs_->cache_.drop(id_);  // dirty pages of a deleted file are discarded
  logical_pos_ = 0;
  return fs_->fs_params().write_overhead;  // the unlink metadata update
}

Duration LocalFile::lock() {
  assert(!locked_ && "file already locked (ADS must serialize RMW)");
  locked_ = true;
  if (fs_->stats() != nullptr) fs_->stats()->add("fs.lock");
  return fs_->fs_params().lock_overhead;
}

Duration LocalFile::unlock() {
  assert(locked_);
  locked_ = false;
  return fs_->fs_params().unlock_overhead;
}

Result<LocalFile::RangeLock> LocalFile::lock_range(const Extent& range) {
  if (range.empty()) return invalid_argument("empty lock range");
  if (range_locked(range)) {
    return failed_precondition("range already locked: " + to_string(range));
  }
  const u64 id = next_lock_id_++;
  range_locks_[id] = range;
  if (fs_->stats() != nullptr) fs_->stats()->add("fs.lock");
  return RangeLock{id, fs_->fs_params().lock_overhead};
}

Duration LocalFile::unlock_range(u64 lock_id) {
  const auto erased = range_locks_.erase(lock_id);
  assert(erased == 1 && "unlocking an unknown range lock");
  (void)erased;
  return fs_->fs_params().unlock_overhead;
}

bool LocalFile::range_locked(const Extent& range) const {
  for (const auto& [id, held] : range_locks_) {
    if (held.overlaps(range)) return true;
  }
  return false;
}

// --- LocalFs ---------------------------------------------------------------

LocalFs::LocalFs(std::string name, const DiskParams& disk_params,
                 const FsParams& fs_params, Stats* stats)
    : name_(std::move(name)),
      disk_params_(disk_params),
      fs_params_(fs_params),
      stats_(stats),
      disk_(disk_params, stats),
      cache_(disk_params) {}

Result<u32> LocalFs::create(const std::string& path) {
  if (exists(path)) return already_exists("file exists: " + path);
  const u32 fd = static_cast<u32>(files_.size());
  files_.emplace_back(new LocalFile(this, fd, path, fd * kFileSpacing));
  return fd;
}

Result<u32> LocalFs::open(const std::string& path) {
  for (const auto& f : files_) {
    if (f->path() == path) return f->id();
  }
  return not_found("no such file: " + path);
}

bool LocalFs::exists(const std::string& path) const {
  for (const auto& f : files_) {
    if (f->path() == path) return true;
  }
  return false;
}

LocalFile& LocalFs::file(u32 fd) {
  assert(fd < files_.size());
  return *files_[fd];
}

const LocalFile& LocalFs::file(u32 fd) const {
  assert(fd < files_.size());
  return *files_[fd];
}

Duration LocalFs::drop_caches() {
  Duration cost = Duration::zero();
  // Flush dirty pages first (sync), then discard everything.
  for (const auto& f : files_) cost += f->fsync();
  cache_.drop_all();
  return cost;
}

}  // namespace pvfsib::disk
