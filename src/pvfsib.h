// Umbrella header: the public surface of the pvfs-ib-noncontig library.
//
// Most programs need only pvfs/cluster.h (the simulated cluster and its
// client API) and, for MPI-IO-level access, mpiio/mpio_file.h. The rest is
// exposed for tools and tests that drive individual substrates.
#pragma once

#include "common/config.h"      // ModelConfig: every calibration constant
#include "common/extent.h"      // (offset, length) algebra
#include "common/sim_time.h"    // Duration / TimePoint / bandwidth helpers
#include "common/stats.h"       // counter registry (Table 6-style profiles)
#include "core/ads.h"           // Active Data Sieving decision model
#include "core/listio.h"        // list I/O requests and striping partition
#include "core/ogr.h"           // Optimistic Group Registration
#include "core/transfer.h"      // noncontiguous transfer engines
#include "disk/local_fs.h"      // the I/O node's local file system
#include "ib/fabric.h"          // RDMA gather/scatter fabric
#include "ib/mr_cache.h"        // pin-down registration cache
#include "ib/qp.h"              // queue pairs (channel semantics)
#include "mpiio/mpio_file.h"    // MPI-IO with the four ROMIO methods
#include "pvfs/cluster.h"       // the whole simulated cluster
#include "sim/trace.h"          // protocol event tracing
#include "workloads/block_column.h"
#include "workloads/btio.h"
#include "workloads/subarray.h"
#include "workloads/tile_io.h"
