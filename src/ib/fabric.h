// The switched InfiniBand fabric connecting the cluster's HCAs.
//
// Transfers are passive with respect to the event engine: a caller supplies
// the time it is ready to start and receives the completion time; both
// endpoint NICs are occupied for the wire time, which is how link-level
// contention under fan-in/fan-out arises. Payload bytes really move between
// the endpoints' address spaces so end-to-end data integrity is testable.
//
// Timing model for a (possibly chunked) gather/scatter RDMA of B bytes with
// S SGEs split into W = ceil(S / max_sge) work requests:
//
//   cost = one-way latency                      (paid once per operation)
//        + W * per_wr_overhead                  (doorbell + descriptor)
//        + S * per_sge_overhead                 (descriptor fetch per SGE)
//        + misalign_penalty per WR with any non-8-byte-aligned SGE
//        + B / bandwidth                        (wire occupancy)
//
// Only the wire-occupancy term holds the NIC resources; the fixed overheads
// are initiator-side CPU/HCA work.
#pragma once

#include <span>

#include "common/config.h"
#include "common/stats.h"
#include "ib/verbs.h"
#include "sim/resource.h"

namespace pvfsib::fault {
class Injector;
}

namespace pvfsib::ib {

enum class ControlKind { kRequest, kReply, kInterClient };

struct TransferResult {
  Status status;
  TimePoint complete = TimePoint::origin();
  u64 bytes = 0;

  bool ok() const { return status.is_ok(); }
};

class Fabric {
 public:
  // `faults` (optional) perturbs transfers: retransmit cost, latency
  // spikes, completion errors. A null or disabled injector is free.
  Fabric(const NetParams& params, Stats* stats,
         fault::Injector* faults = nullptr);

  // Channel-semantics message (send/recv). Control messages carry protocol
  // headers; their payload is not modeled byte-for-byte, only timed.
  TimePoint send_control(Hca& src, Hca& dst, u64 bytes, TimePoint ready,
                         ControlKind kind);

  // RDMA Write with gather: local SGEs -> remote contiguous [raddr, ...).
  TransferResult rdma_write_gather(Hca& local, std::span<const Sge> sges,
                                   Hca& remote, u64 raddr, u32 rkey,
                                   TimePoint ready);

  // RDMA Read with scatter: remote contiguous [raddr, ...) -> local SGEs.
  TransferResult rdma_read_scatter(Hca& local, std::span<const Sge> sges,
                                   Hca& remote, u64 raddr, u32 rkey,
                                   TimePoint ready);

  // Multiple-Message scheme: one work request per SGE (no gathering), the
  // WRs pipelined on one QP so the one-way latency is paid once but the
  // per-WR startup accrues for every buffer.
  TransferResult rdma_write_per_buffer(Hca& local, std::span<const Sge> sges,
                                       Hca& remote, u64 raddr, u32 rkey,
                                       TimePoint ready);
  TransferResult rdma_read_per_buffer(Hca& local, std::span<const Sge> sges,
                                      Hca& remote, u64 raddr, u32 rkey,
                                      TimePoint ready);

  // Convenience single-SGE forms.
  TransferResult rdma_write(Hca& local, const Sge& sge, Hca& remote, u64 raddr,
                            u32 rkey, TimePoint ready) {
    return rdma_write_gather(local, {&sge, 1}, remote, raddr, rkey, ready);
  }
  TransferResult rdma_read(Hca& local, const Sge& sge, Hca& remote, u64 raddr,
                           u32 rkey, TimePoint ready) {
    return rdma_read_scatter(local, {&sge, 1}, remote, raddr, rkey, ready);
  }

  const NetParams& params() const { return params_; }
  fault::Injector* injector() { return faults_; }

 private:
  enum class Op { kWrite, kRead };

  TransferResult rdma_common(Op op, Hca& local, std::span<const Sge> sges,
                             Hca& remote, u64 raddr, u32 rkey, TimePoint ready,
                             u32 sges_per_wr);
  Duration fixed_overheads(Op op, std::span<const Sge> sges,
                           u32 sges_per_wr) const;

  NetParams params_;
  Stats* stats_;
  fault::Injector* faults_;
  u64 next_wr_id_ = 1;
};

}  // namespace pvfsib::ib
