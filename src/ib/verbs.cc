#include "ib/verbs.h"

#include <cassert>

namespace pvfsib::ib {

Hca::Hca(std::string name, vmem::AddressSpace& as, const RegParams& params,
         Stats* stats)
    : name_(std::move(name)),
      as_(as),
      params_(params),
      stats_(stats),
      nic_(name_ + ".nic") {}

RegAttempt Hca::register_memory(u64 addr, u64 len) {
  RegAttempt out;
  if (len == 0) {
    out.status = invalid_argument("zero-length registration");
    return out;
  }
  if (regions_.size() >= kMaxRegions) {
    out.status = resource_exhausted("HCA MR table full");
    out.cost = params_.reg_base;  // the failed verb call still costs
    return out;
  }

  const u64 lo = page_floor(addr);
  const u64 hi = page_ceil(addr + len);
  if (!as_.range_allocated(addr, len)) {
    // The kernel's get_user_pages walks pages until the first unmapped one.
    // Charge base plus the pages it pinned before failing (then unpinned).
    const ExtentList mapped = as_.allocated_within({lo, hi - lo});
    u64 pinned = 0;
    if (!mapped.empty() && mapped.front().offset <= lo) {
      pinned = (std::min(mapped.front().end(), hi) - lo) / kPageSize;
    }
    out.status = permission_denied("registration covers unmapped pages");
    out.cost = params_.reg_base +
               params_.reg_per_page * static_cast<i64>(pinned);
    return out;
  }

  const u32 key = next_key_++;
  regions_[key] = MemoryRegion{key, Extent{lo, hi - lo}};
  bytes_registered_ += hi - lo;
  out.status = Status::ok();
  out.key = key;
  out.cost = params_.reg_cost(hi - lo);
  if (stats_ != nullptr) {
    stats_->add(stat::kMrRegister);
    stats_->add(stat::kMrRegisteredBytes, static_cast<i64>(hi - lo));
  }
  return out;
}

Duration Hca::deregister(u32 key) {
  auto it = regions_.find(key);
  if (it == regions_.end()) return Duration::zero();
  const u64 len = it->second.range.length;
  bytes_registered_ -= len;
  regions_.erase(it);
  if (stats_ != nullptr) stats_->add(stat::kMrDeregister);
  return params_.dereg_cost(len);
}

const MemoryRegion* Hca::find_region(u32 key) const {
  auto it = regions_.find(key);
  return it == regions_.end() ? nullptr : &it->second;
}

bool Hca::validate(u32 key, u64 addr, u64 len) const {
  const MemoryRegion* mr = find_region(key);
  return mr != nullptr && mr->range.contains(Extent{addr, len});
}

Status Hca::validate_sges(std::span<const Sge> sges) const {
  for (const Sge& s : sges) {
    if (s.length == 0) return invalid_argument("zero-length SGE");
    if (!validate(s.lkey, s.addr, s.length)) {
      return permission_denied("SGE not covered by its MR: " +
                               to_string(Extent{s.addr, s.length}));
    }
  }
  return Status::ok();
}

}  // namespace pvfsib::ib
