// Queue pairs: the connection-oriented verbs endpoint (VAPI's RC service).
//
// Channel semantics (send/recv) with posted receive buffers and RNR
// failures, bounded send-queue depth, and one-sided RDMA forwarding to the
// fabric. The PVFS layers drive the fabric directly for brevity; the QP is
// the complete verbs-consumer surface (and is what an MVAPICH-style MPI
// would sit on), exercised by its own tests.
#pragma once

#include <deque>
#include <span>

#include "ib/fabric.h"

namespace pvfsib::ib {

class QueuePair {
 public:
  QueuePair(Hca& local, Fabric& fabric, u32 sq_depth = 128,
            u32 rq_depth = 128);

  // Connect two QPs back-to-back (the RC handshake's end state).
  static void connect(QueuePair& a, QueuePair& b);
  bool connected() const { return peer_ != nullptr; }

  // Post a receive buffer. Consumed in FIFO order by incoming sends.
  Status post_recv(u64 wr_id, u64 addr, u64 len, u32 lkey);
  size_t recv_posted() const { return recv_queue_.size(); }

  struct SendResult {
    Status status;
    TimePoint complete = TimePoint::origin();
    u64 bytes = 0;

    bool ok() const { return status.is_ok(); }
  };

  // Channel send: gathers `sges`, lands them in the peer's oldest posted
  // receive buffer. Fails with kResourceExhausted if the peer has no
  // posted receive (receiver-not-ready) or the payload exceeds the posted
  // buffer. Completions are delivered to both CQs.
  SendResult post_send(u64 wr_id, std::span<const Sge> sges, TimePoint ready);

  // One-sided operations (no peer receive involved).
  TransferResult rdma_write(std::span<const Sge> sges, u64 raddr, u32 rkey,
                            TimePoint ready);
  TransferResult rdma_read(std::span<const Sge> sges, u64 raddr, u32 rkey,
                           TimePoint ready);

  // The consumer acknowledges `n` polled completions, freeing send-queue
  // slots. Posting into a full send queue (completions never reaped) fails
  // with kResourceExhausted, as on real hardware.
  void reap(u32 n);
  u32 sends_inflight() const { return sends_inflight_; }

  Hca& local() { return local_; }

 private:
  struct PostedRecv {
    u64 wr_id = 0;
    u64 addr = 0;
    u64 len = 0;
    u32 lkey = 0;
  };

  Hca& local_;
  Fabric& fabric_;
  QueuePair* peer_ = nullptr;
  u32 sq_depth_;
  u32 rq_depth_;
  u32 sends_inflight_ = 0;  // decremented as completions are polled
  std::deque<PostedRecv> recv_queue_;
};

}  // namespace pvfsib::ib
