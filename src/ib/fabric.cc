#include "ib/fabric.h"

#include <cassert>
#include <cstring>

#include "fault/injector.h"

namespace pvfsib::ib {

Fabric::Fabric(const NetParams& params, Stats* stats, fault::Injector* faults)
    : params_(params), stats_(stats), faults_(faults) {}

TimePoint Fabric::send_control(Hca& src, Hca& dst, u64 bytes, TimePoint ready,
                               ControlKind kind) {
  // Small messages ride the send/recv (channel) path.
  Duration wire = transfer_time(bytes, params_.send_bw);
  if (faults_ != nullptr && faults_->enabled()) {
    wire += faults_->perturb_transfer(ready, bytes, params_.send_bw);
  }
  const TimePoint start =
      max(src.nic().earliest_start(ready), dst.nic().earliest_start(ready));
  src.nic().acquire(start, wire);
  dst.nic().acquire(start, wire);
  if (stats_ != nullptr) {
    stats_->add(stat::kSend);
    stats_->add(kind == ControlKind::kInterClient ? stat::kNetBytesInterClient
                                                  : stat::kNetBytesControl,
                static_cast<i64>(bytes));
  }
  const TimePoint done = start + wire + params_.send_latency;
  src.cq().push(Completion{next_wr_id_++, Completion::Op::kSend, bytes,
                           Status::ok(), done});
  dst.cq().push(Completion{next_wr_id_++, Completion::Op::kRecv, bytes,
                           Status::ok(), done});
  return done;
}

Duration Fabric::fixed_overheads(Op op, std::span<const Sge> sges,
                                 u32 sges_per_wr) const {
  const u64 n_sges = sges.size();
  const u64 n_wrs = (n_sges + sges_per_wr - 1) / sges_per_wr;
  Duration cost = params_.per_wr_overhead * static_cast<i64>(n_wrs) +
                  params_.per_sge_overhead * static_cast<i64>(n_sges);
  // Misalignment penalty: once per WR containing any misaligned SGE.
  u64 wr_idx = 0;
  bool wr_misaligned = false;
  u64 in_wr = 0;
  for (const Sge& s : sges) {
    wr_misaligned = wr_misaligned || (s.addr % 8 != 0);
    if (++in_wr == sges_per_wr) {
      if (wr_misaligned) cost += params_.misalign_penalty;
      wr_misaligned = false;
      in_wr = 0;
      ++wr_idx;
    }
  }
  if (in_wr > 0 && wr_misaligned) cost += params_.misalign_penalty;
  (void)wr_idx;
  // One-way latency, paid once per operation.
  cost += op == Op::kWrite ? params_.rdma_write_latency
                           : params_.rdma_read_latency;
  return cost;
}

TransferResult Fabric::rdma_common(Op op, Hca& local,
                                   std::span<const Sge> sges, Hca& remote,
                                   u64 raddr, u32 rkey, TimePoint ready,
                                   u32 sges_per_wr) {
  TransferResult out;
  out.status = local.validate_sges(sges);
  if (!out.status.is_ok()) return out;

  u64 total = 0;
  for (const Sge& s : sges) total += s.length;
  if (!remote.validate(rkey, raddr, total)) {
    out.status = permission_denied("remote range not covered by rkey MR");
    return out;
  }

  if (faults_ != nullptr && faults_->enabled() && faults_->completion_error()) {
    // The WR was posted and errored on the HCA: no payload moves, no wire
    // time is occupied, and the consumer sees a retryable failure.
    out.status = unavailable("work request completed in error (injected)");
    out.complete = ready + fixed_overheads(op, sges, sges_per_wr);
    local.cq().push(Completion{next_wr_id_++,
                               op == Op::kWrite ? Completion::Op::kRdmaWrite
                                                : Completion::Op::kRdmaRead,
                               0, out.status, out.complete});
    return out;
  }

  // Move the payload now; timing is virtual but the bytes are real.
  vmem::AddressSpace& las = local.address_space();
  vmem::AddressSpace& ras = remote.address_space();
  u64 rpos = raddr;
  for (const Sge& s : sges) {
    if (op == Op::kWrite) {
      std::memcpy(ras.data(rpos), las.data(s.addr), s.length);
    } else {
      std::memcpy(las.data(s.addr), ras.data(rpos), s.length);
    }
    rpos += s.length;
  }

  const double bw =
      op == Op::kWrite ? params_.rdma_write_bw : params_.rdma_read_bw;
  Duration wire = transfer_time(total, bw);
  if (faults_ != nullptr && faults_->enabled()) {
    wire += faults_->perturb_transfer(ready, total, bw);
  }
  const TimePoint start = max(local.nic().earliest_start(ready),
                              remote.nic().earliest_start(ready));
  local.nic().acquire(start, wire);
  remote.nic().acquire(start, wire);

  out.status = Status::ok();
  out.bytes = total;
  out.complete = start + wire + fixed_overheads(op, sges, sges_per_wr);
  if (stats_ != nullptr) {
    stats_->add(op == Op::kWrite ? stat::kRdmaWrite : stat::kRdmaRead);
    stats_->add(stat::kNetBytesData, static_cast<i64>(total));
  }
  local.cq().push(Completion{next_wr_id_++,
                             op == Op::kWrite ? Completion::Op::kRdmaWrite
                                              : Completion::Op::kRdmaRead,
                             total, Status::ok(), out.complete});
  return out;
}

TransferResult Fabric::rdma_write_gather(Hca& local, std::span<const Sge> sges,
                                         Hca& remote, u64 raddr, u32 rkey,
                                         TimePoint ready) {
  return rdma_common(Op::kWrite, local, sges, remote, raddr, rkey, ready,
                     params_.max_sge);
}

TransferResult Fabric::rdma_read_scatter(Hca& local, std::span<const Sge> sges,
                                         Hca& remote, u64 raddr, u32 rkey,
                                         TimePoint ready) {
  return rdma_common(Op::kRead, local, sges, remote, raddr, rkey, ready,
                     params_.max_sge);
}

TransferResult Fabric::rdma_write_per_buffer(Hca& local,
                                             std::span<const Sge> sges,
                                             Hca& remote, u64 raddr, u32 rkey,
                                             TimePoint ready) {
  return rdma_common(Op::kWrite, local, sges, remote, raddr, rkey, ready, 1);
}

TransferResult Fabric::rdma_read_per_buffer(Hca& local,
                                            std::span<const Sge> sges,
                                            Hca& remote, u64 raddr, u32 rkey,
                                            TimePoint ready) {
  return rdma_common(Op::kRead, local, sges, remote, raddr, rkey, ready, 1);
}

}  // namespace pvfsib::ib
