// Pin-down cache (Tezuka et al.) over Hca registration.
//
// acquire() returns a key whose MR covers the requested range: a cache hit
// costs nothing, a miss registers a new MR. Entries are reference counted;
// release() only unpins logically — deregistration happens on LRU eviction
// when the pinned footprint exceeds the configured capacity (registration
// thrashing) or on flush().
#pragma once

#include <list>
#include <map>

#include "common/config.h"
#include "common/sim_time.h"
#include "common/stats.h"
#include "ib/verbs.h"

namespace pvfsib::ib {

class MrCache {
 public:
  explicit MrCache(Hca& hca);

  struct Lookup {
    Status status;
    u32 key = 0;
    Duration cost = Duration::zero();
    bool hit = false;

    bool ok() const { return status.is_ok(); }
  };

  // Find or create an MR covering [addr, addr+len). The range is
  // page-rounded before caching so different buffers in the same pages hit.
  Lookup acquire(u64 addr, u64 len);

  // Drop one reference taken by acquire().
  void release(u32 key);

  // Insert an externally registered MR into the cache (used when OGR has
  // already chosen and registered group regions).
  void adopt(u32 key);

  // Deregister every zero-ref entry; returns total cost.
  Duration flush();

  u64 entries() const { return by_key_.size(); }
  u64 pinned_bytes() const { return pinned_bytes_; }
  Hca& hca() { return hca_; }

 private:
  struct Entry {
    u32 key = 0;
    Extent range;
    u32 refs = 0;
  };
  using LruList = std::list<u32>;  // front = most recent

  Lookup hit_lookup(Entry& e);
  void touch(u32 key);
  Duration evict_to_capacity();

  Hca& hca_;
  RegParams params_;
  Stats* stats_;
  std::multimap<u64, u32> by_start_;  // MR start addr -> key
  std::map<u32, Entry> by_key_;
  std::map<u32, LruList::iterator> lru_pos_;
  LruList lru_;
  u64 pinned_bytes_ = 0;
  u64 max_range_len_ = 0;  // bound for the backward covering-scan
};

}  // namespace pvfsib::ib
