#include "ib/qp.h"

#include <cassert>
#include <cstring>

#include "fault/injector.h"

namespace pvfsib::ib {

QueuePair::QueuePair(Hca& local, Fabric& fabric, u32 sq_depth, u32 rq_depth)
    : local_(local), fabric_(fabric), sq_depth_(sq_depth),
      rq_depth_(rq_depth) {}

void QueuePair::connect(QueuePair& a, QueuePair& b) {
  assert(a.peer_ == nullptr && b.peer_ == nullptr);
  a.peer_ = &b;
  b.peer_ = &a;
}

Status QueuePair::post_recv(u64 wr_id, u64 addr, u64 len, u32 lkey) {
  if (recv_queue_.size() >= rq_depth_) {
    return resource_exhausted("receive queue full");
  }
  if (!local_.validate(lkey, addr, len)) {
    return permission_denied("receive buffer not covered by its MR");
  }
  recv_queue_.push_back(PostedRecv{wr_id, addr, len, lkey});
  return Status::ok();
}

QueuePair::SendResult QueuePair::post_send(u64 wr_id,
                                           std::span<const Sge> sges,
                                           TimePoint ready) {
  SendResult out;
  if (peer_ == nullptr) {
    out.status = failed_precondition("queue pair not connected");
    return out;
  }
  if (sends_inflight_ >= sq_depth_) {
    out.status = resource_exhausted("send queue full (completions unreaped)");
    return out;
  }
  out.status = local_.validate_sges(sges);
  if (!out.status.is_ok()) return out;

  u64 total = 0;
  for (const Sge& s : sges) total += s.length;
  fault::Injector* inj = fabric_.injector();
  if (inj != nullptr && inj->enabled() && inj->rnr()) {
    // Forced receiver-not-ready: the peer's receive stays posted (the
    // NAK fired before any buffer was consumed) and the sender retries.
    out.status = resource_exhausted("receiver not ready (injected RNR)");
    return out;
  }
  if (peer_->recv_queue_.empty()) {
    // Receiver not ready. RC hardware would retry then error the QP; the
    // model surfaces it immediately.
    out.status = resource_exhausted("peer has no posted receive (RNR)");
    return out;
  }
  const PostedRecv recv = peer_->recv_queue_.front();
  if (total > recv.len) {
    out.status = invalid_argument("message exceeds posted receive buffer");
    return out;
  }
  peer_->recv_queue_.pop_front();
  ++sends_inflight_;

  // Move the payload into the receive buffer, gather order.
  u64 pos = recv.addr;
  for (const Sge& s : sges) {
    std::memcpy(peer_->local_.address_space().data(pos),
                local_.address_space().data(s.addr), s.length);
    pos += s.length;
  }

  // Channel-semantics timing: the same wire the control path uses.
  const NetParams& np = fabric_.params();
  const Duration wire = transfer_time(total, np.send_bw);
  const TimePoint start = max(local_.nic().earliest_start(ready),
                              peer_->local_.nic().earliest_start(ready));
  local_.nic().acquire(start, wire);
  peer_->local_.nic().acquire(start, wire);
  out.bytes = total;
  out.complete = start + wire + np.send_latency;
  out.status = Status::ok();
  local_.cq().push(Completion{wr_id, Completion::Op::kSend, total,
                              Status::ok(), out.complete});
  peer_->local_.cq().push(Completion{recv.wr_id, Completion::Op::kRecv, total,
                                     Status::ok(), out.complete});
  return out;
}

TransferResult QueuePair::rdma_write(std::span<const Sge> sges, u64 raddr,
                                     u32 rkey, TimePoint ready) {
  if (peer_ == nullptr) {
    TransferResult out;
    out.status = failed_precondition("queue pair not connected");
    return out;
  }
  return fabric_.rdma_write_gather(local_, sges, peer_->local_, raddr, rkey,
                                   ready);
}

TransferResult QueuePair::rdma_read(std::span<const Sge> sges, u64 raddr,
                                    u32 rkey, TimePoint ready) {
  if (peer_ == nullptr) {
    TransferResult out;
    out.status = failed_precondition("queue pair not connected");
    return out;
  }
  return fabric_.rdma_read_scatter(local_, sges, peer_->local_, raddr, rkey,
                                   ready);
}

void QueuePair::reap(u32 n) {
  sends_inflight_ = n >= sends_inflight_ ? 0 : sends_inflight_ - n;
}

}  // namespace pvfsib::ib
