#include "ib/mr_cache.h"

#include <cassert>

namespace pvfsib::ib {

MrCache::MrCache(Hca& hca)
    : hca_(hca), params_(hca.reg_params()), stats_(hca.stats()) {}

MrCache::Lookup MrCache::acquire(u64 addr, u64 len) {
  Lookup out;
  if (len == 0) {
    out.status = invalid_argument("zero-length acquire");
    return out;
  }
  const u64 lo = page_floor(addr);
  const u64 hi = page_ceil(addr + len);

  // Backward scan over MRs starting at or before `lo`; the max-length bound
  // keeps the scan from walking the whole table.
  if (!by_start_.empty()) {
    auto it = by_start_.upper_bound(lo);
    while (it != by_start_.begin()) {
      --it;
      if (lo - it->first > max_range_len_) break;
      Entry& e = by_key_.at(it->second);
      if (e.range.offset <= lo && e.range.end() >= hi) {
        return hit_lookup(e);
      }
    }
  }

  // Miss: register the page-rounded range.
  if (stats_ != nullptr) stats_->add(stat::kMrCacheMiss);
  RegAttempt reg = hca_.register_memory(lo, hi - lo);
  out.cost = reg.cost;
  if (!reg.ok()) {
    out.status = reg.status;
    return out;
  }
  Entry e;
  e.key = reg.key;
  e.range = {lo, hi - lo};
  e.refs = 1;
  by_key_[e.key] = e;
  by_start_.insert({lo, e.key});
  lru_.push_front(e.key);
  lru_pos_[e.key] = lru_.begin();
  pinned_bytes_ += hi - lo;
  max_range_len_ = std::max(max_range_len_, hi - lo);

  out.cost += evict_to_capacity();
  out.status = Status::ok();
  out.key = e.key;
  return out;
}

MrCache::Lookup MrCache::hit_lookup(Entry& e) {
  if (stats_ != nullptr) stats_->add(stat::kMrCacheHit);
  ++e.refs;
  touch(e.key);
  Lookup out;
  out.status = Status::ok();
  out.key = e.key;
  out.hit = true;
  return out;
}

void MrCache::release(u32 key) {
  auto it = by_key_.find(key);
  if (it == by_key_.end()) return;
  assert(it->second.refs > 0);
  --it->second.refs;
}

void MrCache::adopt(u32 key) {
  const MemoryRegion* mr = hca_.find_region(key);
  assert(mr != nullptr);
  if (by_key_.count(key) != 0) return;
  Entry e;
  e.key = key;
  e.range = mr->range;
  e.refs = 0;
  by_key_[key] = e;
  by_start_.insert({e.range.offset, key});
  lru_.push_front(key);
  lru_pos_[key] = lru_.begin();
  pinned_bytes_ += e.range.length;
  max_range_len_ = std::max(max_range_len_, e.range.length);
}

Duration MrCache::flush() {
  Duration cost = Duration::zero();
  for (auto it = by_key_.begin(); it != by_key_.end();) {
    if (it->second.refs == 0) {
      const Entry e = it->second;
      cost += hca_.deregister(e.key);
      pinned_bytes_ -= e.range.length;
      lru_.erase(lru_pos_.at(e.key));
      lru_pos_.erase(e.key);
      // Erase the matching by_start_ entry.
      auto [b, e2] = by_start_.equal_range(e.range.offset);
      for (auto s = b; s != e2; ++s) {
        if (s->second == e.key) {
          by_start_.erase(s);
          break;
        }
      }
      it = by_key_.erase(it);
    } else {
      ++it;
    }
  }
  return cost;
}

void MrCache::touch(u32 key) {
  auto pos = lru_pos_.find(key);
  assert(pos != lru_pos_.end());
  lru_.erase(pos->second);
  lru_.push_front(key);
  pos->second = lru_.begin();
}

Duration MrCache::evict_to_capacity() {
  Duration cost = Duration::zero();
  while (by_key_.size() > params_.cache_max_entries ||
         pinned_bytes_ > params_.cache_max_bytes) {
    // Evict the least recently used zero-ref entry.
    auto victim = lru_.end();
    for (auto it = std::prev(lru_.end());; --it) {
      if (by_key_.at(*it).refs == 0) {
        victim = it;
        break;
      }
      if (it == lru_.begin()) break;
    }
    if (victim == lru_.end()) break;  // everything is in use: soft limit
    const Entry e = by_key_.at(*victim);
    cost += hca_.deregister(e.key);
    pinned_bytes_ -= e.range.length;
    by_key_.erase(e.key);
    lru_pos_.erase(e.key);
    lru_.erase(victim);
    auto [b, e2] = by_start_.equal_range(e.range.offset);
    for (auto s = b; s != e2; ++s) {
      if (s->second == e.key) {
        by_start_.erase(s);
        break;
      }
    }
    if (stats_ != nullptr) stats_->add(stat::kMrCacheEvict);
  }
  return cost;
}

}  // namespace pvfsib::ib
