// Verbs-level model of an InfiniBand HCA: protection-domain-scoped memory
// regions with lkey/rkey, registration/deregistration with the paper's cost
// model (T = a*pages + b), and validation of scatter/gather elements against
// registered regions. Registration *fails* when any page of the range is not
// mapped in the owning process — the behaviour Optimistic Group Registration
// exploits and recovers from.
#pragma once

#include <map>
#include <span>
#include <string>

#include "common/config.h"
#include "common/extent.h"
#include "common/sim_time.h"
#include "common/stats.h"
#include "common/status.h"
#include "ib/cq.h"
#include "sim/resource.h"
#include "vmem/address_space.h"

namespace pvfsib::ib {

// Scatter/gather element of a work request. `lkey` names the MR the range
// must fall inside.
struct Sge {
  u64 addr = 0;
  u64 length = 0;
  u32 lkey = 0;
};

struct MemoryRegion {
  u32 key = 0;  // lkey == rkey in this model
  Extent range;
};

// Outcome of a registration attempt. `cost` is charged to the caller's
// clock whether or not the attempt succeeded: a failed optimistic
// registration still burns the syscall and the page walk up to the first
// unmapped page.
struct RegAttempt {
  Status status;
  u32 key = 0;
  Duration cost = Duration::zero();

  bool ok() const { return status.is_ok(); }
};

class Hca {
 public:
  Hca(std::string name, vmem::AddressSpace& as, const RegParams& params,
      Stats* stats);

  // Register [addr, addr+len). Fails with kPermissionDenied if any page in
  // the page-rounded range is unmapped; fails with kResourceExhausted past
  // the HCA's MR table limit.
  RegAttempt register_memory(u64 addr, u64 len);

  // Deregister a region; returns the (always-charged) cost.
  Duration deregister(u32 key);

  const MemoryRegion* find_region(u32 key) const;

  // True when [addr, addr+len) lies inside the MR named by `key`.
  bool validate(u32 key, u64 addr, u64 len) const;

  Status validate_sges(std::span<const Sge> sges) const;

  vmem::AddressSpace& address_space() { return as_; }
  const vmem::AddressSpace& address_space() const { return as_; }
  sim::Resource& nic() { return nic_; }
  CompletionQueue& cq() { return cq_; }
  const std::string& name() const { return name_; }
  const RegParams& reg_params() const { return params_; }
  Stats* stats() { return stats_; }

  u64 regions_live() const { return regions_.size(); }
  u64 bytes_registered() const { return bytes_registered_; }

  // HCA MR table capacity (InfiniHost-era firmware limit).
  static constexpr u64 kMaxRegions = 131072;

 private:
  std::string name_;
  vmem::AddressSpace& as_;
  RegParams params_;
  Stats* stats_;
  sim::Resource nic_;
  CompletionQueue cq_;
  std::map<u32, MemoryRegion> regions_;
  u64 bytes_registered_ = 0;
  u32 next_key_ = 1;
};

}  // namespace pvfsib::ib
