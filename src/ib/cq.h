// Completion queues: every RDMA operation and send posts a completion entry
// to the initiator HCA's CQ with its (virtual) completion time. Upper
// layers and tests poll them the way a verbs consumer would; a bounded
// queue with overflow accounting models the CQ-depth failure mode.
#pragma once

#include <deque>
#include <optional>

#include "common/sim_time.h"
#include "common/status.h"
#include "common/types.h"

namespace pvfsib::ib {

struct Completion {
  enum class Op { kRdmaWrite, kRdmaRead, kSend, kRecv };

  u64 wr_id = 0;
  Op op = Op::kSend;
  u64 bytes = 0;
  Status status;
  TimePoint completed_at = TimePoint::origin();
};

class CompletionQueue {
 public:
  explicit CompletionQueue(size_t depth = 4096) : depth_(depth) {}

  void push(Completion c) {
    if (entries_.size() >= depth_) {
      ++overflows_;  // a real HCA would raise a fatal async event
      return;
    }
    entries_.push_back(std::move(c));
  }

  // Oldest completion, if any.
  std::optional<Completion> poll() {
    if (entries_.empty()) return std::nullopt;
    Completion c = std::move(entries_.front());
    entries_.pop_front();
    return c;
  }

  size_t pending() const { return entries_.size(); }
  size_t depth() const { return depth_; }
  u64 overflows() const { return overflows_; }
  void drain() { entries_.clear(); }

 private:
  size_t depth_;
  std::deque<Completion> entries_;
  u64 overflows_ = 0;
};

}  // namespace pvfsib::ib
