#include "load/load_engine.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdio>

namespace pvfsib::load {

namespace {

// Log-uniform power-of-two size in [lo, hi] (both rounded to powers of
// two): small ops dominate counts, large ops dominate bytes — the shape of
// real mixed file-system traffic.
u64 sample_pow2(Rng& rng, u64 lo, u64 hi) {
  if (lo >= hi) return lo;
  const u32 e_lo = static_cast<u32>(std::bit_width(lo) - 1);
  const u32 e_hi = static_cast<u32>(std::bit_width(hi) - 1);
  return u64{1} << rng.range(e_lo, e_hi);
}

std::string pop_name(u32 k) { return "/load/p" + std::to_string(k); }

}  // namespace

double jain_fairness(const std::vector<u64>& shares) {
  double sum = 0.0, sq = 0.0;
  for (u64 s : shares) {
    const double x = static_cast<double>(s);
    sum += x;
    sq += x * x;
  }
  if (sq <= 0.0) return 0.0;
  return sum * sum / (static_cast<double>(shares.size()) * sq);
}

std::string LoadSummary::fingerprint() const {
  char buf[256];
  std::string out;
  std::snprintf(buf, sizeof(buf),
                "clients=%u ok=%d ops=%llu data=%llu meta=%llu bytes=%llu "
                "measure_s=%.9f ops_s=%.6f mib_s=%.6f fair=%.9f",
                clients, ok ? 1 : 0, static_cast<unsigned long long>(ops),
                static_cast<unsigned long long>(data_ops),
                static_cast<unsigned long long>(meta_ops),
                static_cast<unsigned long long>(bytes), measure_secs,
                ops_per_s, mib_per_s, fairness);
  out += buf;
  auto q = [&](const char* tag, const LatencyHistogram& h) {
    std::snprintf(buf, sizeof(buf),
                  " %s[n=%llu p50=%lld p99=%lld p999=%lld mean=%lld max=%lld]",
                  tag, static_cast<unsigned long long>(h.count()),
                  static_cast<long long>(h.quantile(0.50).as_ns()),
                  static_cast<long long>(h.quantile(0.99).as_ns()),
                  static_cast<long long>(h.quantile(0.999).as_ns()),
                  static_cast<long long>(h.mean().as_ns()),
                  static_cast<long long>(h.max().as_ns()));
    out += buf;
  };
  q("lat", latency);
  q("data", data_latency);
  q("meta", meta_latency);
  out += " per_client=[";
  for (size_t i = 0; i < per_client_ops.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%s%llu", i ? "," : "",
                  static_cast<unsigned long long>(per_client_ops[i]));
    out += buf;
  }
  out += "] intervals=[";
  for (size_t i = 0; i < intervals.size(); ++i) {
    const Interval& w = intervals[i];
    std::snprintf(buf, sizeof(buf), "%s(%.3f,%.3f,%llu,%llu,%llu)",
                  i ? "," : "", w.start_ms, w.end_ms,
                  static_cast<unsigned long long>(w.ops),
                  static_cast<unsigned long long>(w.bytes),
                  static_cast<unsigned long long>(w.pvfs_requests));
    out += buf;
  }
  out += "]";
  return out;
}

LoadEngine::LoadEngine(pvfs::Cluster& cluster, const LoadConfig& cfg)
    : cluster_(cluster),
      cfg_(cfg),
      mix_(cfg.mix),
      zipf_(cfg.population, cfg.zipf_theta) {}

void LoadEngine::setup_population() {
  pvfs::Client& c0 = cluster_.client(0);
  const u64 pre = c0.memory().alloc(cfg_.file_bytes);
  for (u32 k = 0; k < cfg_.population; ++k) {
    const std::string name = pop_name(k);
    Result<pvfs::OpenFile> f = c0.create(name);
    assert(f.is_ok());
    pop_.push_back(f.value());
    pop_names_.push_back(name);
    // Preload so reads anywhere in [0, file_bytes) have real data (and a
    // logical size high-water mark) to serve.
    pvfs::IoResult r = c0.write(pop_.back(), 0, pre, cfg_.file_bytes);
    assert(r.ok());
    (void)r;
  }

  const u64 buf_bytes = std::max(cfg_.io_max_bytes, cfg_.churn_bytes);
  state_.resize(cluster_.client_count());
  for (u32 ci = 0; ci < cluster_.client_count(); ++ci) {
    ClientState& st = state_[ci];
    // splitmix-spread per-client streams: distinct seeds, one shared knob.
    st.rng = Rng(cfg_.seed * 0x9e3779b97f4a7c15ULL + ci + 1);
    st.buf = cluster_.client(ci).memory().alloc(buf_bytes);
  }
}

LoadSummary LoadEngine::run() {
  assert(!ran_);
  ran_ = true;
  setup_population();

  // The timeline starts after setup: the engine sits at the last preload
  // event, client 0's logical clock possibly a little past it (trailing
  // metadata round-trips never touch the engine).
  TimePoint t0 = max(cluster_.engine().now(), cluster_.client(0).now());
  measure_start_ = t0 + cfg_.ramp;
  measure_end_ = measure_start_ + cfg_.measure;

  const u32 clients = cluster_.client_count();
  out_.clients = clients;
  out_.measure_secs = cfg_.measure.as_sec();

  // Interval windows [t0 + k*interval, ...) over ramp + measure; the
  // cluster-side Stats sampler uses the same boundaries so engine-side op
  // counts and server-side counter rates line up window for window.
  if (cfg_.interval > Duration::zero()) {
    const i64 span = (measure_end_ - t0).as_ns();
    const i64 w = cfg_.interval.as_ns();
    const i64 n = (span + w - 1) / w;
    for (i64 i = 0; i < n; ++i) {
      LoadSummary::Interval iv;
      const TimePoint ws = t0 + cfg_.interval * i;
      TimePoint we = ws + cfg_.interval;
      if (we > measure_end_) we = measure_end_;
      iv.start_ms = (ws - t0).as_ms();
      iv.end_ms = (we - t0).as_ms();
      out_.intervals.push_back(iv);
    }
    cluster_.engine().schedule_at(t0, [this] {
      cluster_.sample_intervals(cfg_.interval, measure_end_);
    });
  }

  for (u32 ci = 0; ci < clients; ++ci) {
    const i64 jit_ns = cfg_.start_jitter.as_ns();
    const Duration jitter =
        jit_ns > 0
            ? Duration::ns(static_cast<i64>(
                  state_[ci].rng.below(static_cast<u64>(jit_ns))))
            : Duration::zero();
    cluster_.engine().schedule_at(t0 + jitter, [this, ci] { step(ci); });
  }

  cluster_.run();

  out_.per_client_ops.reserve(clients);
  for (u32 ci = 0; ci < clients; ++ci) {
    out_.per_client_ops.push_back(state_[ci].measured_ops);
  }
  out_.fairness = jain_fairness(out_.per_client_ops);
  if (out_.measure_secs > 0.0) {
    out_.ops_per_s = static_cast<double>(out_.ops) / out_.measure_secs;
    out_.mib_per_s = static_cast<double>(out_.bytes) /
                     static_cast<double>(kMiB) / out_.measure_secs;
  }
  // Merge the server-side rolling counters into the matching windows.
  if (const IntervalSeries* series = cluster_.intervals()) {
    const auto& wins = series->windows();
    for (size_t i = 0; i < wins.size() && i < out_.intervals.size(); ++i) {
      out_.intervals[i].pvfs_requests =
          static_cast<u64>(wins[i].delta.get(stat::kPvfsRequest));
    }
  }
  return out_;
}

void LoadEngine::step(u32 ci) {
  ClientState& st = state_[ci];
  const TimePoint now = cluster_.engine().now();
  if (now >= measure_end_) {
    st.stopped = true;  // drain: no new ops once the window closes
    return;
  }
  pvfs::Client& c = cluster_.client(ci);
  c.advance_to(now);
  const OpKind kind = mix_.sample(st.rng);
  switch (kind) {
    case OpKind::kOpen: {
      const TimePoint t0 = c.now();
      const Result<pvfs::OpenFile> r = c.open(pop_names_[zipf_.sample(st.rng)]);
      finish(ci, kind, t0, c.now(), 0, r.is_ok());
      break;
    }
    case OpKind::kStat: {
      const TimePoint t0 = c.now();
      const Result<pvfs::FileMeta> r =
          c.stat(pop_names_[zipf_.sample(st.rng)]);
      finish(ci, kind, t0, c.now(), 0, r.is_ok());
      break;
    }
    case OpKind::kRead:
    case OpKind::kWrite:
      run_data_op(ci, kind, now);
      break;
    case OpKind::kChurn:
      run_churn_op(ci, now);
      break;
  }
}

void LoadEngine::run_data_op(u32 ci, OpKind kind, TimePoint now) {
  ClientState& st = state_[ci];
  pvfs::Client& c = cluster_.client(ci);
  const pvfs::OpenFile& f = pop_[zipf_.sample(st.rng)];
  u64 bytes = sample_pow2(st.rng, cfg_.io_min_bytes, cfg_.io_max_bytes);
  if (bytes > cfg_.file_bytes) bytes = cfg_.file_bytes;
  const bool list = cfg_.list_pieces > 1 && st.rng.chance(cfg_.list_fraction);

  core::ListIoRequest req;
  u64 span = bytes;
  if (list) {
    u64 pieces = cfg_.list_pieces;
    u64 piece = bytes / pieces;
    if (piece < 512) {
      piece = 512;
      pieces = std::max<u64>(1, bytes / piece);
    }
    const u64 stride = piece * 2;  // 50% duty cycle: gaps force list I/O
    span = stride * (pieces - 1) + piece;
    if (span > cfg_.file_bytes) {
      // Clamp the strided span into the file.
      pieces = std::max<u64>(1, (cfg_.file_bytes - piece) / stride + 1);
      span = stride * (pieces - 1) + piece;
    }
    const u64 slots = (cfg_.file_bytes - span) / (4 * kKiB) + 1;
    // cacheable_reads pins every op to slot 0 so Zipf re-reads repeat the
    // same range; the draw still happens so the RNG stream (and thus the
    // rest of the schedule) is identical across the two modes.
    const u64 draw = st.rng.below(slots);
    const u64 base = cfg_.cacheable_reads ? 0 : draw * (4 * kKiB);
    for (u64 i = 0; i < pieces; ++i) {
      req.mem.push_back({st.buf + i * piece, piece});
      req.file.push_back({base + i * stride, piece});
    }
  } else {
    const u64 slots = (cfg_.file_bytes - bytes) / (4 * kKiB) + 1;
    const u64 draw = st.rng.below(slots);
    const u64 base = cfg_.cacheable_reads ? 0 : draw * (4 * kKiB);
    req.mem.push_back({st.buf, bytes});
    req.file.push_back({base, bytes});
  }

  pvfs::IoDesc d;
  d.dir = kind == OpKind::kRead ? pvfs::IoDir::kRead : pvfs::IoDir::kWrite;
  d.file = f;
  d.req = req;
  d.start = now;
  const TimePoint t0 = now;
  c.submit(d).on_complete([this, ci, kind, t0](pvfs::IoResult r) {
    finish(ci, kind, t0, r.end, r.ok() ? r.bytes : 0, r.ok());
  });
}

void LoadEngine::run_churn_op(u32 ci, TimePoint now) {
  ClientState& st = state_[ci];
  pvfs::Client& c = cluster_.client(ci);
  const std::string name =
      "/churn/c" + std::to_string(ci) + "_" + std::to_string(st.churn_seq++);
  const TimePoint t0 = now;
  Result<pvfs::OpenFile> f = c.create(name);
  if (!f.is_ok()) {
    finish(ci, OpKind::kChurn, t0, c.now(), 0, false);
    return;
  }
  created_.insert(name);
  const bool remove_after = st.rng.chance(cfg_.churn_remove_prob);
  pvfs::IoDesc d;
  d.dir = pvfs::IoDir::kWrite;
  d.file = f.value();
  d.req.mem.push_back({st.buf, cfg_.churn_bytes});
  d.req.file.push_back({0, cfg_.churn_bytes});
  d.start = c.now();
  c.submit(d).on_complete(
      [this, ci, name, t0, remove_after](pvfs::IoResult r) {
        pvfs::Client& cl = cluster_.client(ci);
        cl.advance_to(r.end);
        bool ok = r.ok();
        if (ok && remove_after) {
          const Status s = cl.remove(name);
          if (s.is_ok()) {
            created_.erase(name);
            removed_.insert(name);
          } else {
            ok = false;
          }
        }
        finish(ci, OpKind::kChurn, t0, cl.now(), r.ok() ? r.bytes : 0, ok);
      });
}

void LoadEngine::finish(u32 ci, OpKind kind, TimePoint t0, TimePoint end,
                        u64 bytes, bool op_ok) {
  ClientState& st = state_[ci];
  if (!op_ok) out_.ok = false;
  const bool data = kind == OpKind::kRead || kind == OpKind::kWrite;
  if (in_measure(t0)) {
    const Duration lat = end - t0;
    out_.latency.record(lat);
    (data ? out_.data_latency : out_.meta_latency).record(lat);
    ++out_.ops;
    if (data) {
      ++out_.data_ops;
    } else {
      ++out_.meta_ops;
    }
    out_.bytes += bytes;
    ++st.measured_ops;
    st.measured_bytes += bytes;
  }
  // Per-window completion accounting over ramp + measure (drain
  // completions fall past the last window and are only in the aggregate).
  if (!out_.intervals.empty()) {
    const TimePoint t_origin =
        measure_start_ - cfg_.ramp;  // == t0 of the run
    const i64 idx = (end - t_origin).as_ns() / cfg_.interval.as_ns();
    if (idx >= 0 && static_cast<size_t>(idx) < out_.intervals.size()) {
      ++out_.intervals[static_cast<size_t>(idx)].ops;
      out_.intervals[static_cast<size_t>(idx)].bytes += bytes;
    }
  }
  const TimePoint next = max(end, cluster_.engine().now());
  cluster_.engine().schedule_at(next, [this, ci] { step(ci); });
}

}  // namespace pvfsib::load
