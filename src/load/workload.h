// Workload-generation vocabulary for the closed-loop load engine: the
// op-mix state machine's op kinds and weights, Zipf-skewed file popularity,
// and the knobs (sizes, ratios, phase lengths) that shape a run. Everything
// is seeded and deterministic — a LoadConfig plus a cluster topology fully
// determines the traffic, so two identical runs produce bit-identical
// measurements. The op-mix/latency-breakdown methodology follows the
// noncontiguous-access evaluation style of the source paper and Ching et
// al.'s "Noncontiguous I/O through PVFS".
#pragma once

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/sim_time.h"
#include "common/types.h"

namespace pvfsib::load {

// One step of a simulated client's state machine.
enum class OpKind : u8 {
  kRead,   // contig or list read of a population file (Zipf-picked)
  kWrite,  // contig or list write of a population file (Zipf-picked)
  kOpen,   // open/close churn: metadata round-trip on a population file
  kStat,   // namespace lookup on a population file
  kChurn,  // small-file storm: create + small write (+ maybe remove)
};
inline constexpr u32 kOpKinds = 5;

inline const char* op_name(OpKind k) {
  switch (k) {
    case OpKind::kRead: return "read";
    case OpKind::kWrite: return "write";
    case OpKind::kOpen: return "open";
    case OpKind::kStat: return "stat";
    case OpKind::kChurn: return "churn";
  }
  return "?";
}

// Relative weights of the op mix (any non-negative scale; normalized by the
// sampler). The default mix exercises every plane: data reads/writes with a
// read-leaning ratio, open/stat metadata traffic, and create/remove churn.
struct OpMix {
  double read = 0.40;
  double write = 0.25;
  double open = 0.15;
  double stat = 0.10;
  double churn = 0.10;
};

// Samples op kinds from an OpMix by inverse CDF over the weights.
class OpMixSampler {
 public:
  explicit OpMixSampler(const OpMix& mix) {
    const double w[kOpKinds] = {mix.read, mix.write, mix.open, mix.stat,
                                mix.churn};
    double total = 0.0;
    for (double v : w) total += v > 0.0 ? v : 0.0;
    double cum = 0.0;
    for (u32 i = 0; i < kOpKinds; ++i) {
      cum += (total > 0.0 && w[i] > 0.0) ? w[i] / total : 0.0;
      cdf_[i] = cum;
    }
    cdf_[kOpKinds - 1] = 1.0;  // absorb rounding
  }

  OpKind sample(Rng& rng) const {
    const double u = rng.uniform01();
    for (u32 i = 0; i < kOpKinds; ++i) {
      if (u < cdf_[i]) return static_cast<OpKind>(i);
    }
    return OpKind::kChurn;
  }

 private:
  double cdf_[kOpKinds] = {};
};

// Zipf(theta)-distributed rank sampler over n items: rank r is drawn with
// probability proportional to 1 / (r+1)^theta. theta = 0 is uniform; the
// web-traffic classic is theta ~ 0.99. The CDF is precomputed once, so a
// draw is one uniform variate plus a binary search — deterministic given
// the Rng stream.
class ZipfGenerator {
 public:
  ZipfGenerator(u32 n, double theta) : cdf_(n > 0 ? n : 1) {
    const u32 size = static_cast<u32>(cdf_.size());
    double total = 0.0;
    std::vector<double> w(size);
    for (u32 r = 0; r < size; ++r) {
      w[r] = 1.0 / std::pow(static_cast<double>(r + 1), theta);
      total += w[r];
    }
    double cum = 0.0;
    for (u32 r = 0; r < size; ++r) {
      cum += w[r] / total;
      cdf_[r] = cum;
    }
    cdf_[size - 1] = 1.0;
  }

  u32 size() const { return static_cast<u32>(cdf_.size()); }

  u32 sample(Rng& rng) const {
    const double u = rng.uniform01();
    const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
    const size_t idx = static_cast<size_t>(it - cdf_.begin());
    return static_cast<u32>(idx < cdf_.size() ? idx : cdf_.size() - 1);
  }

 private:
  std::vector<double> cdf_;
};

// Everything that shapes one load-engine run. The engine drives every
// client of the cluster it is given; the cluster topology (client count,
// iods, shards, replication) stays the caller's business.
struct LoadConfig {
  u64 seed = 1;  // spread across clients; drives every random draw

  // Shared file population (created and preloaded before the timeline
  // starts; data ops pick ranks through the Zipf sampler).
  u32 population = 32;
  u64 file_bytes = 256 * kKiB;
  double zipf_theta = 0.99;

  OpMix mix;

  // Data-op geometry: per-op bytes are sampled log-uniformly in
  // [io_min_bytes, io_max_bytes] (power-of-two steps); a `list_fraction`
  // of data ops issue strided list I/O of `list_pieces` pieces instead of
  // one contiguous extent.
  u64 io_min_bytes = 4 * kKiB;
  u64 io_max_bytes = 64 * kKiB;
  double list_fraction = 0.5;
  u32 list_pieces = 8;

  // Churn ops: size of the small write into the fresh file, and the
  // probability the file is removed again immediately after it lands
  // (survivors stay in the namespace — the consistency check opens them).
  u64 churn_bytes = 4 * kKiB;
  double churn_remove_prob = 0.75;

  // Phases: clients start inside [t0, t0 + start_jitter) (deterministic
  // per-client offsets so issuance never runs in lockstep), the measure
  // window is [t0 + ramp, t0 + ramp + measure), and after it closes
  // clients stop issuing and the run drains. Only ops *issued* inside the
  // window are recorded — including their completions during drain, so
  // tail latencies are not truncated.
  Duration ramp = Duration::ms(20.0);
  Duration measure = Duration::ms(200.0);
  Duration start_jitter = Duration::ms(5.0);

  // Rolling interval counters: window length for Cluster::sample_intervals
  // over the run (zero disables sampling).
  Duration interval = Duration::ms(20.0);

  // Cache-friendly read placement: data ops address a file's slot 0
  // instead of a seeded random slot, so Zipf re-reads of a popular file
  // repeatedly touch the *same* byte range — the access pattern the client
  // caching tier exists for. Off (the default) keeps the classic
  // random-slot traffic and its fingerprints bit-identical.
  bool cacheable_reads = false;
};

}  // namespace pvfsib::load
