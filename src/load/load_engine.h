// Closed-loop multi-client load generation against a simulated cluster.
//
// The engine stands up one seeded op-mix state machine per cluster client
// and multiplexes all of them on the cluster's event engine: each client
// keeps exactly one operation outstanding (closed loop), issuing the next
// the moment the previous completes, so offered load tracks service
// capacity and saturation shows up as queueing delay — the p99/p999 tail —
// instead of unbounded backlog. Metadata ops go through the real
// Client/MetaClient blocking shims; data ops go through submit()/IoHandle
// with completion callbacks. Everything runs in engine-event context, so
// fabric sends stay in nondecreasing virtual time and a run is a pure
// function of (LoadConfig, cluster topology).
//
// Timeline:  setup (population create + preload, before t0)
//            ramp   [t0, t0+ramp)           clients start, jittered
//            measure[t0+ramp, t0+ramp+measure)   ops issued here count
//            drain  after measure            no new ops; in-flight finish
//
// Measurements: a shared log-bucketed LatencyHistogram (overall and split
// data/meta), per-client goodput for a Jain fairness index, and rolling
// IntervalSeries windows over the cluster-wide Stats so per-window
// throughput is visible across the run.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "common/stats.h"
#include "load/workload.h"
#include "pvfs/cluster.h"

namespace pvfsib::load {

// Aggregate outcome of one run. All quantities cover only ops issued
// inside the measure window (completions may fall in drain).
struct LoadSummary {
  u32 clients = 0;
  bool ok = true;         // no recorded op failed terminally
  u64 ops = 0;            // measured ops completed
  u64 data_ops = 0;       // reads + writes
  u64 meta_ops = 0;       // opens + stats + churn cycles (create/write/remove
                          // counted as one metadata-heavy op; its payload
                          // bytes still land in `bytes`)
  u64 bytes = 0;          // payload bytes moved by measured data ops
  double measure_secs = 0.0;
  double ops_per_s = 0.0;
  double mib_per_s = 0.0;
  double fairness = 0.0;  // Jain index over per-client measured op counts
  LatencyHistogram latency;       // every measured op
  LatencyHistogram data_latency;  // read/write ops only
  LatencyHistogram meta_latency;  // open/stat/churn ops only
  std::vector<u64> per_client_ops;
  // Per-window cluster throughput over the whole run (ramp + measure):
  // start/end plus measured ops completed and bytes moved in the window.
  struct Interval {
    double start_ms = 0.0;
    double end_ms = 0.0;
    u64 ops = 0;
    u64 bytes = 0;
    u64 pvfs_requests = 0;  // server-side pvfs.request delta (IntervalSeries)
  };
  std::vector<Interval> intervals;

  // Canonical serialization of every number above (fixed formatting). Two
  // runs are "bit-identical" iff their fingerprints compare equal; the
  // BENCH_load.json writer derives its values from the same fields.
  std::string fingerprint() const;
};

// Jain's fairness index over non-negative shares: (sum x)^2 / (n sum x^2).
// 1.0 = perfectly fair, 1/n = one client got everything. Returns 0 when
// every share is zero.
double jain_fairness(const std::vector<u64>& shares);

class LoadEngine {
 public:
  LoadEngine(pvfs::Cluster& cluster, const LoadConfig& cfg);

  // Create + preload the population, run ramp/measure/drain to completion,
  // and summarize. Call once per engine instance.
  LoadSummary run();

  // Namespace bookkeeping for the churn consistency check: every file
  // created by a churn op and not (successfully) removed again, and every
  // file whose remove was acked. Valid after run().
  const std::set<std::string>& live_churn_files() const { return created_; }
  const std::set<std::string>& removed_churn_files() const {
    return removed_;
  }
  // Names of the shared population files (all live after run()).
  const std::vector<std::string>& population_files() const {
    return pop_names_;
  }

 private:
  struct ClientState {
    Rng rng{0};
    u64 buf = 0;          // staging buffer, io_max_bytes long
    u64 measured_ops = 0;
    u64 measured_bytes = 0;
    u32 churn_seq = 0;
    bool stopped = false;
  };

  void setup_population();
  void step(u32 ci);
  void run_data_op(u32 ci, OpKind kind, TimePoint now);
  void run_churn_op(u32 ci, TimePoint now);
  // Record one completed op and reschedule the client's loop at `end`.
  void finish(u32 ci, OpKind kind, TimePoint t0, TimePoint end, u64 bytes,
              bool op_ok);
  bool in_measure(TimePoint t) const {
    return t >= measure_start_ && t < measure_end_;
  }

  pvfs::Cluster& cluster_;
  LoadConfig cfg_;
  OpMixSampler mix_;
  ZipfGenerator zipf_;
  std::vector<ClientState> state_;
  std::vector<pvfs::OpenFile> pop_;       // population metas (stable)
  std::vector<std::string> pop_names_;
  std::set<std::string> created_;         // churn survivors
  std::set<std::string> removed_;         // acked churn removes
  TimePoint measure_start_ = TimePoint::origin();
  TimePoint measure_end_ = TimePoint::origin();
  bool ran_ = false;
  LoadSummary out_;
};

}  // namespace pvfsib::load
