#include "mpiio/file_view.h"

#include <cassert>

namespace pvfsib::mpiio {

ExtentList FileView::map_range(u64 offset, u64 length) const {
  ExtentList out;
  if (length == 0) return out;
  const u64 tile = filetype_.size();
  assert(tile > 0);
  u64 tile_idx = offset / tile;
  u64 within = offset % tile;  // data bytes into the tile
  u64 left = length;

  while (left > 0) {
    const u64 tile_base = disp_ + tile_idx * filetype_.extent();
    // Walk the tile's data map, skipping `within` bytes.
    u64 skip = within;
    for (const Extent& e : filetype_.map()) {
      if (left == 0) break;
      if (skip >= e.length) {
        skip -= e.length;
        continue;
      }
      const u64 lo = e.offset + skip;
      const u64 n = std::min(e.length - skip, left);
      skip = 0;
      const u64 phys = tile_base + lo;
      if (!out.empty() && out.back().end() == phys) {
        out.back().length += n;
      } else {
        out.push_back({phys, n});
      }
      left -= n;
    }
    within = 0;
    ++tile_idx;
  }
  return out;
}

u64 FileView::view_size_below(u64 phys_end) const {
  if (phys_end <= disp_) return 0;
  const u64 span = phys_end - disp_;
  const u64 full_tiles = span / filetype_.extent();
  u64 data = full_tiles * filetype_.size();
  const u64 rem = span % filetype_.extent();
  for (const Extent& e : filetype_.map()) {
    if (e.end() <= rem) {
      data += e.length;
    } else if (e.offset < rem) {
      data += rem - e.offset;
    }
  }
  return data;
}

}  // namespace pvfsib::mpiio
