// MPI derived datatypes, flattened eagerly to byte-extent lists.
//
// ROMIO's four noncontiguous access methods all start from a flattened
// (offset, length) representation of the memory datatype and the file view;
// we keep exactly that representation. Offsets are relative to the start of
// the datatype instance; `extent()` is the span one instance covers,
// `size()` the bytes of actual data in it.
#pragma once

#include <initializer_list>
#include <vector>

#include "common/extent.h"
#include "common/status.h"
#include "common/types.h"

namespace pvfsib::mpiio {

class Datatype {
 public:
  Datatype() = default;

  // `bytes` of contiguous data.
  static Datatype contiguous(u64 bytes);

  // MPI_Type_vector: `count` blocks of `blocklen` elements of `base`,
  // block starts separated by `stride` elements of `base` (stride in
  // elements, as in MPI).
  static Datatype vector(u64 count, u64 blocklen, u64 stride,
                         const Datatype& base);

  // MPI_Type_indexed with byte displacements: explicit extents.
  static Datatype indexed(ExtentList extents);

  // MPI_Type_create_subarray, C order. `elem` is the element size in bytes.
  static Datatype subarray(const std::vector<u64>& sizes,
                           const std::vector<u64>& subsizes,
                           const std::vector<u64>& starts, u64 elem);

  // `count` concatenated instances of `base` (MPI_Type_contiguous(base)).
  static Datatype repeat(u64 count, const Datatype& base);

  u64 size() const { return size_; }      // data bytes per instance
  u64 extent() const { return extent_; }  // span per instance
  const ExtentList& map() const { return map_; }  // sorted, coalesced
  bool contiguous_layout() const {
    return map_.size() == 1 && map_[0].offset == 0;
  }

  // The first `bytes` of the data stream as relative extents (offset
  // order); callers add their buffer base address. `bytes` must not exceed
  // size() — tile with repeat() for multi-instance accesses.
  ExtentList prefix(u64 bytes) const;

 private:
  Datatype(ExtentList map, u64 extent);

  ExtentList map_;  // sorted by offset, coalesced
  u64 size_ = 0;
  u64 extent_ = 0;
};

}  // namespace pvfsib::mpiio
