#include "mpiio/mpio_file.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <memory>

namespace pvfsib::mpiio {

const char* to_string(IoMethod m) {
  switch (m) {
    case IoMethod::kMultiple:
      return "multiple-io";
    case IoMethod::kDataSieving:
      return "romio-data-sieving";
    case IoMethod::kCollective:
      return "collective-io";
    case IoMethod::kListIo:
      return "list-io";
    case IoMethod::kListIoAds:
      return "list-io+ads";
  }
  return "?";
}

namespace {

// Maps packed-stream offsets onto the (noncontiguous) user buffer.
class StreamMap {
 public:
  StreamMap(u64 base, const ExtentList& rel) {
    u64 stream = 0;
    for (const Extent& e : rel) {
      segs_.push_back({base + e.offset, e.length});
      cum_.push_back(stream);
      stream += e.length;
    }
    total_ = stream;
  }

  u64 total() const { return total_; }

  // Invoke fn(abs_addr, n) over the pieces of stream range [off, off+len).
  template <typename F>
  void for_range(u64 off, u64 len, F&& fn) const {
    assert(off + len <= total_);
    size_t i =
        std::upper_bound(cum_.begin(), cum_.end(), off) - cum_.begin() - 1;
    while (len > 0) {
      const u64 within = off - cum_[i];
      const u64 n = std::min(segs_[i].length - within, len);
      fn(segs_[i].offset + within, n);
      off += n;
      len -= n;
      ++i;
    }
  }

 private:
  std::vector<Extent> segs_;
  std::vector<u64> cum_;
  u64 total_ = 0;
};

// File extents of one rank's access annotated with stream offsets.
struct AnnotatedAccess {
  ExtentList file;          // physical extents, stream order
  std::vector<u64> stream;  // stream offset of each extent
  u64 bytes = 0;
};

AnnotatedAccess annotate(const RankIo& io) {
  AnnotatedAccess out;
  out.file = io.view.map_range(io.view_offset, io.bytes);
  u64 s = 0;
  for (const Extent& e : out.file) {
    out.stream.push_back(s);
    s += e.length;
  }
  out.bytes = s;
  return out;
}

core::ListIoRequest build_request(const RankIo& io) {
  core::ListIoRequest req;
  for (const Extent& e : io.memtype.prefix(io.bytes)) {
    req.mem.push_back({io.mem_addr + e.offset, e.length});
  }
  req.file = io.view.map_range(io.view_offset, io.bytes);
  return req;
}

pvfs::IoResult trivial_ok(TimePoint t) {
  pvfs::IoResult r;
  r.start = t;
  r.end = t;
  return r;
}

}  // namespace

// --- open/create --------------------------------------------------------

Result<File> File::create(Communicator& comm, const std::string& name) {
  std::vector<pvfs::OpenFile> handles;
  Result<pvfs::OpenFile> first = comm.rank(0).create(name);
  if (!first.is_ok()) return first.status();
  handles.push_back(first.value());
  for (int r = 1; r < comm.size(); ++r) {
    Result<pvfs::OpenFile> h = comm.rank(r).open(name);
    if (!h.is_ok()) return h.status();
    handles.push_back(h.value());
  }
  File f(comm, std::move(handles));
  f.scratch_.assign(comm.size(), {0, 0});
  f.views_.assign(comm.size(), FileView());
  f.positions_.assign(comm.size(), 0);
  return f;
}

Result<File> File::open(Communicator& comm, const std::string& name) {
  std::vector<pvfs::OpenFile> handles;
  for (int r = 0; r < comm.size(); ++r) {
    Result<pvfs::OpenFile> h = comm.rank(r).open(name);
    if (!h.is_ok()) return h.status();
    handles.push_back(h.value());
  }
  File f(comm, std::move(handles));
  f.scratch_.assign(comm.size(), {0, 0});
  f.views_.assign(comm.size(), FileView());
  f.positions_.assign(comm.size(), 0);
  return f;
}

u64 File::scratch(int rank, u64 bytes) {
  auto& [addr, size] = scratch_.at(rank);
  if (size < bytes) {
    if (addr != 0) {
      (void)comm_->rank(rank).memory().free_at(addr);
    }
    addr = comm_->rank(rank).memory().alloc(bytes);
    size = page_ceil(bytes);
  }
  return addr;
}

// --- dispatch ------------------------------------------------------------

std::vector<pvfs::IoResult> File::write_all(const std::vector<RankIo>& io,
                                            const Hints& hints) {
  assert(io.size() == static_cast<size_t>(comm_->size()));
  switch (hints.method) {
    case IoMethod::kListIo:
      return run_list(io, hints, /*use_ads=*/false, /*is_write=*/true);
    case IoMethod::kListIoAds:
      return run_list(io, hints, /*use_ads=*/true, /*is_write=*/true);
    case IoMethod::kCollective:
      return run_two_phase(io, hints, /*is_write=*/true);
    case IoMethod::kMultiple:
    case IoMethod::kDataSieving:
      // ROMIO data sieving cannot write over lock-less PVFS: it degenerates
      // to Multiple I/O (Section 5.2 / Figure 6).
      return run_multiple(io, hints, /*is_write=*/true);
  }
  return {};
}

std::vector<pvfs::IoResult> File::read_all(const std::vector<RankIo>& io,
                                           const Hints& hints) {
  assert(io.size() == static_cast<size_t>(comm_->size()));
  switch (hints.method) {
    case IoMethod::kListIo:
      return run_list(io, hints, /*use_ads=*/false, /*is_write=*/false);
    case IoMethod::kListIoAds:
      return run_list(io, hints, /*use_ads=*/true, /*is_write=*/false);
    case IoMethod::kCollective:
      return run_two_phase(io, hints, /*is_write=*/false);
    case IoMethod::kMultiple:
      return run_multiple(io, hints, /*is_write=*/false);
    case IoMethod::kDataSieving:
      return run_ds_read(io, hints);
  }
  return {};
}

// --- independent per-rank operations ------------------------------------

pvfs::IoResult File::run_single(int rank, const RankIo& io,
                                const Hints& hints, bool is_write) {
  // One active rank; the others contribute zero-byte entries, which every
  // method treats as non-participation.
  std::vector<RankIo> all(comm_->size());
  all[rank] = io;
  const auto results =
      is_write ? write_all(all, hints) : read_all(all, hints);
  return results[rank];
}

pvfs::IoResult File::write_at(int rank, const FileView& view, u64 view_offset,
                              u64 mem_addr, const Datatype& memtype,
                              u64 bytes, const Hints& hints) {
  return run_single(rank, RankIo{view, mem_addr, memtype, view_offset, bytes},
                    hints, /*is_write=*/true);
}

pvfs::IoResult File::read_at(int rank, const FileView& view, u64 view_offset,
                             u64 mem_addr, const Datatype& memtype, u64 bytes,
                             const Hints& hints) {
  return run_single(rank, RankIo{view, mem_addr, memtype, view_offset, bytes},
                    hints, /*is_write=*/false);
}

void File::set_view(int rank, FileView view) {
  views_.at(rank) = std::move(view);
  positions_.at(rank) = 0;  // MPI_File_set_view resets the pointer
}

pvfs::IoResult File::write(int rank, u64 mem_addr, const Datatype& memtype,
                           u64 bytes, const Hints& hints) {
  pvfs::IoResult r = write_at(rank, views_.at(rank), positions_.at(rank),
                              mem_addr, memtype, bytes, hints);
  if (r.ok()) positions_.at(rank) += bytes;
  return r;
}

pvfs::IoResult File::read(int rank, u64 mem_addr, const Datatype& memtype,
                          u64 bytes, const Hints& hints) {
  pvfs::IoResult r = read_at(rank, views_.at(rank), positions_.at(rank),
                             mem_addr, memtype, bytes, hints);
  if (r.ok()) positions_.at(rank) += bytes;
  return r;
}

// --- list I/O (the paper's path) -------------------------------------

std::vector<pvfs::IoResult> File::run_list(const std::vector<RankIo>& io,
                                           const Hints& hints, bool use_ads,
                                           bool is_write) {
  const TimePoint start = comm_->barrier();
  const int n = comm_->size();
  std::vector<pvfs::IoResult> results(n);
  int pending = 0;
  for (int r = 0; r < n; ++r) {
    if (io[r].bytes == 0) {
      results[r] = trivial_ok(start);
      continue;
    }
    pvfs::IoOptions opts;
    opts.sync = hints.sync;
    opts.use_ads = use_ads;
    opts.policy = hints.policy;
    ++pending;
    auto done = [&results, &pending, r](pvfs::IoResult res) {
      results[r] = res;
      --pending;
    };
    const core::ListIoRequest req = build_request(io[r]);
    const pvfs::IoDir dir = is_write ? pvfs::IoDir::kWrite : pvfs::IoDir::kRead;
    comm_->rank(r)
        .submit({dir, handles_[r], req, opts, start})
        .on_complete(done);
  }
  comm_->cluster().engine().run_until([&] { return pending == 0; });
  assert(pending == 0);
  for (int r = 0; r < n; ++r) comm_->rank(r).advance_to(results[r].end);
  return results;
}

// --- Multiple I/O --------------------------------------------------------

std::vector<pvfs::IoResult> File::run_multiple(const std::vector<RankIo>& io,
                                               const Hints& hints,
                                               bool is_write) {
  const TimePoint start = comm_->barrier();
  const int n = comm_->size();
  std::vector<pvfs::IoResult> results(n);
  int pending = 0;

  // One chain of contiguous PVFS calls per rank.
  struct Chain {
    std::vector<std::tuple<u64, u64, u64>> pieces;  // (maddr, foff, len)
    size_t next = 0;
    u64 bytes_done = 0;
    TimePoint start;
  };
  std::vector<std::shared_ptr<Chain>> chains(n);

  // Advance function shared by all chains.
  std::function<void(int)> step = [&](int r) {
    auto chain = chains[r];
    pvfs::Client& cl = comm_->rank(r);
    if (chain->next == chain->pieces.size()) {
      results[r].bytes = chain->bytes_done;
      --pending;
      return;
    }
    const auto [maddr, foff, len] = chain->pieces[chain->next++];
    core::ListIoRequest req;
    req.mem = {{maddr, len}};
    req.file = {{foff, len}};
    pvfs::IoOptions opts;
    opts.sync = hints.sync;
    opts.policy = hints.policy;
    const TimePoint at = max(results[r].end, chain->start);
    auto done = [&, r](pvfs::IoResult res) {
      if (!res.ok() && results[r].ok()) results[r].status = res.status;
      results[r].end = res.end;
      chains[r]->bytes_done += res.bytes;
      step(r);
    };
    const pvfs::IoDir dir = is_write ? pvfs::IoDir::kWrite : pvfs::IoDir::kRead;
    cl.submit({dir, handles_[r], req, opts, at}).on_complete(done);
  };

  for (int r = 0; r < n; ++r) {
    if (io[r].bytes == 0) {
      results[r] = trivial_ok(start);
      continue;
    }
    auto chain = std::make_shared<Chain>();
    chain->start = start;
    // Lockstep walk of memory and file pieces.
    const ExtentList mem = io[r].memtype.prefix(io[r].bytes);
    const ExtentList file = io[r].view.map_range(io[r].view_offset,
                                                 io[r].bytes);
    size_t mi = 0, fi = 0;
    u64 moff = 0, foff2 = 0;
    while (fi < file.size()) {
      const u64 len = std::min(mem[mi].length - moff, file[fi].length - foff2);
      chain->pieces.emplace_back(io[r].mem_addr + mem[mi].offset + moff,
                                 file[fi].offset + foff2, len);
      moff += len;
      foff2 += len;
      if (moff == mem[mi].length) {
        ++mi;
        moff = 0;
      }
      if (foff2 == file[fi].length) {
        ++fi;
        foff2 = 0;
      }
    }
    chains[r] = chain;
    results[r].start = start;
    results[r].end = start;
    ++pending;
    step(r);
  }

  comm_->cluster().engine().run_until([&] { return pending == 0; });
  assert(pending == 0);
  for (int r = 0; r < n; ++r) comm_->rank(r).advance_to(results[r].end);
  return results;
}

// --- ROMIO client-side data sieving (read) --------------------------------

std::vector<pvfs::IoResult> File::run_ds_read(const std::vector<RankIo>& io,
                                              const Hints& hints) {
  const TimePoint start = comm_->barrier();
  const int n = comm_->size();
  std::vector<pvfs::IoResult> results(n);
  int pending = 0;

  struct DsChain {
    AnnotatedAccess acc;
    std::unique_ptr<StreamMap> smap;
    u64 span_lo = 0, span_hi = 0;
    u64 chunk = 0;      // current chunk index
    u64 buf_addr = 0;   // client staging buffer
    u64 buf_size = 0;
    TimePoint start;
  };
  std::vector<std::shared_ptr<DsChain>> chains(n);

  std::function<void(int)> step = [&](int r) {
    auto ch = chains[r];
    pvfs::Client& cl = comm_->rank(r);
    const u64 lo = ch->span_lo + ch->chunk * ch->buf_size;
    if (lo >= ch->span_hi) {
      results[r].bytes = ch->acc.bytes;
      --pending;
      return;
    }
    const u64 len = std::min(ch->buf_size, ch->span_hi - lo);
    ++ch->chunk;
    core::ListIoRequest req;
    req.mem = {{ch->buf_addr, len}};
    req.file = {{lo, len}};
    pvfs::IoOptions opts;
    opts.policy = hints.policy;
    const TimePoint at = max(results[r].end, ch->start);
    cl.submit({pvfs::IoDir::kRead, handles_[r], req, opts, at})
        .on_complete([&, r, lo, len](pvfs::IoResult res) {
          auto ch2 = chains[r];
          pvfs::Client& cl2 = comm_->rank(r);
          if (!res.ok() && results[r].ok()) results[r].status = res.status;
          // Sieve: copy the wanted pieces out of the staged chunk.
          u64 copied = 0;
          for (size_t i = 0; i < ch2->acc.file.size(); ++i) {
            const Extent& fe = ch2->acc.file[i];
            const u64 plo = std::max(fe.offset, lo);
            const u64 phi = std::min(fe.end(), lo + len);
            if (plo >= phi) continue;
            const u64 stream = ch2->acc.stream[i] + (plo - fe.offset);
            u64 src = ch2->buf_addr + (plo - lo);
            ch2->smap->for_range(stream, phi - plo, [&](u64 dst, u64 nn) {
              std::memcpy(cl2.memory().data(dst), cl2.memory().data(src), nn);
              src += nn;
            });
            copied += phi - plo;
          }
          results[r].end =
              res.end + comm_->cluster().config().mem.copy_cost(copied);
          step(r);
        });
  };

  for (int r = 0; r < n; ++r) {
    if (io[r].bytes == 0) {
      results[r] = trivial_ok(start);
      continue;
    }
    auto ch = std::make_shared<DsChain>();
    ch->acc = annotate(io[r]);
    ch->smap = std::make_unique<StreamMap>(io[r].mem_addr,
                                           io[r].memtype.prefix(io[r].bytes));
    ch->span_lo = ch->acc.file.front().offset;
    ch->span_hi = ch->acc.file.back().end();
    ch->buf_size = hints.ind_rd_buffer_size;
    ch->buf_addr = scratch(r, ch->buf_size);
    ch->start = start;
    chains[r] = ch;
    results[r].start = start;
    results[r].end = start;
    ++pending;
    step(r);
  }

  comm_->cluster().engine().run_until([&] { return pending == 0; });
  assert(pending == 0);
  for (int r = 0; r < n; ++r) comm_->rank(r).advance_to(results[r].end);
  return results;
}

// --- Two-phase (collective) I/O -----------------------------------------

std::vector<pvfs::IoResult> File::run_two_phase(const std::vector<RankIo>& io,
                                                const Hints& hints,
                                                bool is_write) {
  const int n = comm_->size();
  std::vector<pvfs::IoResult> results(n);
  // Offset-list exchange (ROMIO's calc_my_req/calc_others_req).
  const TimePoint start = comm_->exchange_metadata(256);
  for (int r = 0; r < n; ++r) {
    results[r].start = start;
    results[r].end = start;
  }

  std::vector<AnnotatedAccess> acc(n);
  std::vector<std::unique_ptr<StreamMap>> smap(n);
  u64 lo = ~0ULL, hi = 0;
  for (int r = 0; r < n; ++r) {
    acc[r] = annotate(io[r]);
    smap[r] = std::make_unique<StreamMap>(io[r].mem_addr,
                                          io[r].memtype.prefix(io[r].bytes));
    if (!acc[r].file.empty()) {
      lo = std::min(lo, acc[r].file.front().offset);
      hi = std::max(hi, acc[r].file.back().end());
    }
  }
  if (hi <= lo) {  // nothing to do
    return results;
  }

  // Even file domains (ROMIO default).
  const u64 span = hi - lo;
  auto domain = [&](int a) {
    const u64 dlo = lo + span * static_cast<u64>(a) / n;
    const u64 dhi = lo + span * static_cast<u64>(a + 1) / n;
    return Extent{dlo, dhi - dlo};
  };

  // Pieces of rank s's access that fall in domain a.
  struct Piece {
    Extent phys;
    u64 stream;  // offset in rank s's data stream
  };
  std::vector<std::vector<std::vector<Piece>>> pieces(
      n, std::vector<std::vector<Piece>>(n));
  for (int s = 0; s < n; ++s) {
    for (size_t i = 0; i < acc[s].file.size(); ++i) {
      const Extent& fe = acc[s].file[i];
      for (int a = 0; a < n; ++a) {
        const Extent d = domain(a);
        const u64 plo = std::max(fe.offset, d.offset);
        const u64 phi = std::min(fe.end(), d.end());
        if (plo < phi) {
          pieces[s][a].push_back(
              {{plo, phi - plo}, acc[s].stream[i] + (plo - fe.offset)});
        }
      }
    }
  }

  // Aggregator-side assembly buffers sized to their domains, plus a pack/
  // receive block large enough for the biggest (sender, aggregator) pair.
  u64 inbound_max = hints.cb_buffer_size;
  for (int s = 0; s < n; ++s) {
    for (int a = 0; a < n; ++a) {
      u64 bytes = 0;
      for (const Piece& p : pieces[s][a]) bytes += p.phys.length;
      inbound_max = std::max(inbound_max, bytes);
    }
  }
  std::vector<u64> assembly(n);
  std::vector<u64> inbound(n);
  const MemParams& mem = comm_->cluster().config().mem;
  for (int a = 0; a < n; ++a) {
    const Extent d = domain(a);
    // Scratch layout: [assembly | pack/receive block].
    const u64 base = scratch(a, d.length + inbound_max);
    assembly[a] = base;
    inbound[a] = base + d.length;
  }

  std::vector<TimePoint> agg_ready(n, start);  // assembly complete

  // ROMIO processes file domains in cb_buffer-sized cycles, with an
  // alltoallv synchronization per cycle; charge that structural cost.
  u64 max_domain = 0;
  for (int a = 0; a < n; ++a) max_domain = std::max(max_domain, domain(a).length);
  const u64 cycles = (max_domain + hints.cb_buffer_size - 1) /
                     std::max<u64>(1, hints.cb_buffer_size);
  int sync_rounds = 0;
  for (int m = 1; m < n; m *= 2) ++sync_rounds;
  const Duration cycle_sync =
      comm_->cluster().config().net.send_latency * (2 * sync_rounds);
  const Duration total_sync = cycle_sync * static_cast<i64>(cycles);

  if (is_write) {
    // Phase 1: senders pack per-aggregator blocks, ship them, aggregators
    // unpack into assembly position.
    std::vector<TimePoint> sender_time(n, start);
    for (int s = 0; s < n; ++s) {
      for (int a = 0; a < n; ++a) {
        u64 bytes = 0;
        for (const Piece& p : pieces[s][a]) bytes += p.phys.length;
        if (bytes == 0) continue;
        const Extent d = domain(a);
        if (s == a) {
          // Local: copy straight into assembly.
          TimePoint t = max(sender_time[s], agg_ready[a]);
          for (const Piece& p : pieces[s][a]) {
            u64 dst = assembly[a] + (p.phys.offset - d.offset);
            smap[s]->for_range(p.stream, p.phys.length, [&](u64 srca, u64 nn) {
              std::memcpy(comm_->rank(a).memory().data(dst),
                          comm_->rank(s).memory().data(srca), nn);
              dst += nn;
            });
          }
          t += mem.copy_cost(bytes);
          sender_time[s] = t;
          agg_ready[a] = max(agg_ready[a], t);
          continue;
        }
        // Pack at the sender (into its inbound scratch block, reused).
        u64 pack_addr = inbound[s];
        u64 pos = pack_addr;
        for (const Piece& p : pieces[s][a]) {
          smap[s]->for_range(p.stream, p.phys.length, [&](u64 srca, u64 nn) {
            std::memcpy(comm_->rank(s).memory().data(pos),
                        comm_->rank(s).memory().data(srca), nn);
            pos += nn;
          });
        }
        sender_time[s] += mem.copy_cost(bytes);
        const TimePoint arrived = comm_->send(s, pack_addr, a, inbound[a],
                                              bytes, sender_time[s]);
        // Unpack at the aggregator.
        u64 src = inbound[a];
        for (const Piece& p : pieces[s][a]) {
          std::memcpy(
              comm_->rank(a).memory().data(assembly[a] +
                                           (p.phys.offset - domain(a).offset)),
              comm_->rank(a).memory().data(src), p.phys.length);
          src += p.phys.length;
        }
        agg_ready[a] = max(agg_ready[a], arrived) + mem.copy_cost(bytes);
      }
    }
    for (int s = 0; s < n; ++s) {
      results[s].end = max(results[s].end, sender_time[s]);
      results[s].bytes = acc[s].bytes;
    }
  }

  // Phase 2: aggregators do contiguous PVFS I/O over their coverage runs.
  int pending = 0;
  struct AggChain {
    ExtentList runs;
    size_t next = 0;
  };
  std::vector<std::shared_ptr<AggChain>> chains(n);
  std::vector<TimePoint> agg_done(n, start);

  std::function<void(int)> step = [&](int a) {
    auto ch = chains[a];
    if (ch->next == ch->runs.size()) {
      --pending;
      return;
    }
    const Extent run = ch->runs[ch->next++];
    const Extent d = domain(a);
    core::ListIoRequest req;
    req.mem = {{assembly[a] + (run.offset - d.offset), run.length}};
    req.file = {{run.offset, run.length}};
    pvfs::IoOptions opts;
    opts.sync = hints.sync;
    opts.policy = hints.policy;
    const TimePoint at = max(agg_done[a], agg_ready[a]);
    auto done = [&, a](pvfs::IoResult res) {
      if (!res.ok() && results[a].ok()) results[a].status = res.status;
      agg_done[a] = res.end;
      step(a);
    };
    const pvfs::IoDir dir = is_write ? pvfs::IoDir::kWrite : pvfs::IoDir::kRead;
    comm_->rank(a).submit({dir, handles_[a], req, opts, at}).on_complete(done);
  };

  for (int a = 0; a < n; ++a) {
    auto ch = std::make_shared<AggChain>();
    ExtentList cover;
    for (int s = 0; s < n; ++s) {
      for (const Piece& p : pieces[s][a]) cover.push_back(p.phys);
    }
    sort_by_offset(cover);
    ch->runs = coalesce(cover);
    chains[a] = ch;
    agg_done[a] = agg_ready[a] + total_sync;
    ++pending;
    step(a);
  }
  comm_->cluster().engine().run_until([&] { return pending == 0; });
  assert(pending == 0);

  if (is_write) {
    for (int a = 0; a < n; ++a) {
      results[a].end = max(results[a].end, agg_done[a]);
    }
  } else {
    // Phase 1 (read direction): aggregators scatter domain data back.
    std::vector<TimePoint> recv_time(n, start);
    for (int a = 0; a < n; ++a) {
      TimePoint t_a = agg_done[a];
      const Extent d = domain(a);
      for (int s = 0; s < n; ++s) {
        u64 bytes = 0;
        for (const Piece& p : pieces[s][a]) bytes += p.phys.length;
        if (bytes == 0) continue;
        if (s == a) {
          TimePoint t = t_a;
          for (const Piece& p : pieces[s][a]) {
            u64 src = assembly[a] + (p.phys.offset - d.offset);
            smap[s]->for_range(p.stream, p.phys.length, [&](u64 dst, u64 nn) {
              std::memcpy(comm_->rank(s).memory().data(dst),
                          comm_->rank(a).memory().data(src), nn);
              src += nn;
            });
          }
          t += mem.copy_cost(bytes);
          recv_time[s] = max(recv_time[s], t);
          continue;
        }
        // Pack pieces for rank s, send, unpack into user memory.
        u64 pos = inbound[a];
        for (const Piece& p : pieces[s][a]) {
          std::memcpy(comm_->rank(a).memory().data(pos),
                      comm_->rank(a).memory().data(
                          assembly[a] + (p.phys.offset - d.offset)),
                      p.phys.length);
          pos += p.phys.length;
        }
        t_a += mem.copy_cost(bytes);
        // Destination staging at the receiver: its inbound block.
        const u64 dst_tmp = inbound[s];
        const TimePoint arrived = comm_->send(a, inbound[a], s, dst_tmp,
                                              bytes, t_a);
        u64 src = dst_tmp;
        for (const Piece& p : pieces[s][a]) {
          smap[s]->for_range(p.stream, p.phys.length, [&](u64 dst, u64 nn) {
            std::memcpy(comm_->rank(s).memory().data(dst),
                        comm_->rank(s).memory().data(src), nn);
            src += nn;
          });
        }
        recv_time[s] =
            max(recv_time[s], arrived + mem.copy_cost(bytes));
      }
    }
    for (int s = 0; s < n; ++s) {
      results[s].end = max(max(recv_time[s], agg_done[s]), results[s].end);
      results[s].bytes = acc[s].bytes;
    }
  }

  for (int r = 0; r < n; ++r) comm_->rank(r).advance_to(results[r].end);
  return results;
}

}  // namespace pvfsib::mpiio
