#include "mpiio/datatype.h"

#include <cassert>

namespace pvfsib::mpiio {

Datatype::Datatype(ExtentList map, u64 extent) : map_(std::move(map)) {
  sort_by_offset(map_);
  map_ = coalesce(map_);
  size_ = total_length(map_);
  const u64 span = map_.empty() ? 0 : map_.back().end();
  extent_ = std::max(extent, span);
}

Datatype Datatype::contiguous(u64 bytes) {
  assert(bytes > 0);
  return Datatype({{0, bytes}}, bytes);
}

Datatype Datatype::vector(u64 count, u64 blocklen, u64 stride,
                          const Datatype& base) {
  assert(count > 0 && blocklen > 0 && stride >= blocklen);
  ExtentList map;
  map.reserve(count * blocklen * base.map().size());
  for (u64 c = 0; c < count; ++c) {
    const u64 block_base = c * stride * base.extent();
    for (u64 b = 0; b < blocklen; ++b) {
      const u64 elem_base = block_base + b * base.extent();
      for (const Extent& e : base.map()) {
        map.push_back({elem_base + e.offset, e.length});
      }
    }
  }
  // MPI extent of a vector: from first byte to the end of the last block.
  const u64 extent = ((count - 1) * stride + blocklen) * base.extent();
  return Datatype(std::move(map), extent);
}

Datatype Datatype::indexed(ExtentList extents) {
  assert(!extents.empty());
  u64 span = 0;
  for (const Extent& e : extents) span = std::max(span, e.end());
  return Datatype(std::move(extents), span);
}

Datatype Datatype::subarray(const std::vector<u64>& sizes,
                            const std::vector<u64>& subsizes,
                            const std::vector<u64>& starts, u64 elem) {
  const size_t d = sizes.size();
  assert(d > 0 && subsizes.size() == d && starts.size() == d && elem > 0);
  for (size_t i = 0; i < d; ++i) {
    assert(starts[i] + subsizes[i] <= sizes[i]);
  }
  // Row-major strides in elements.
  std::vector<u64> stride(d, 1);
  for (size_t i = d - 1; i > 0; --i) stride[i - 1] = stride[i] * sizes[i];

  // Enumerate all rows (fixing every dimension but the last).
  ExtentList map;
  std::vector<u64> idx(d, 0);
  const u64 row_elems = subsizes[d - 1];
  bool done = false;
  while (!done) {
    u64 off = 0;
    for (size_t i = 0; i + 1 < d; ++i) off += (starts[i] + idx[i]) * stride[i];
    off += starts[d - 1];
    map.push_back({off * elem, row_elems * elem});
    // Increment the multi-index over dims [0, d-1).
    done = true;
    for (size_t i = d - 1; i-- > 0;) {
      if (++idx[i] < subsizes[i]) {
        done = false;
        break;
      }
      idx[i] = 0;
    }
    if (d == 1) break;
  }
  u64 total_elems = 1;
  for (u64 s : sizes) total_elems *= s;
  return Datatype(std::move(map), total_elems * elem);
}

Datatype Datatype::repeat(u64 count, const Datatype& base) {
  assert(count > 0);
  ExtentList map;
  map.reserve(count * base.map().size());
  for (u64 c = 0; c < count; ++c) {
    const u64 off = c * base.extent();
    for (const Extent& e : base.map()) map.push_back({off + e.offset, e.length});
  }
  return Datatype(std::move(map), count * base.extent());
}

ExtentList Datatype::prefix(u64 bytes) const {
  assert(bytes <= size_);
  ExtentList out;
  u64 left = bytes;
  for (const Extent& e : map_) {
    if (left == 0) break;
    const u64 n = std::min(left, e.length);
    out.push_back({e.offset, n});
    left -= n;
  }
  assert(left == 0);
  return out;
}

}  // namespace pvfsib::mpiio
