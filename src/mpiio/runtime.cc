#include "mpiio/runtime.h"

#include <cstring>

namespace pvfsib::mpiio {

Communicator::Communicator(pvfs::Cluster& cluster) : cluster_(cluster) {
  for (u32 c = 0; c < cluster.client_count(); ++c) {
    ranks_.push_back(&cluster.client(c));
  }
}

TimePoint Communicator::barrier() {
  TimePoint t = TimePoint::origin();
  for (pvfs::Client* r : ranks_) t = max(t, r->now());
  // Dissemination barrier: ceil(log2(n)) rounds of small messages.
  int rounds = 0;
  for (int n = 1; n < size(); n *= 2) ++rounds;
  t += cluster_.config().net.send_latency * rounds;
  for (pvfs::Client* r : ranks_) r->advance_to(t);
  return t;
}

TimePoint Communicator::send(int src, u64 src_addr, int dst, u64 dst_addr,
                             u64 bytes, TimePoint ready) {
  pvfs::Client& s = rank(src);
  pvfs::Client& d = rank(dst);
  std::memcpy(d.memory().data(dst_addr), s.memory().data(src_addr), bytes);
  return cluster_.fabric().send_control(s.hca(), d.hca(), bytes, ready,
                                        ib::ControlKind::kInterClient);
}

TimePoint Communicator::exchange_metadata(u64 bytes_per_pair) {
  const TimePoint start = barrier();
  TimePoint done = start;
  for (int a = 0; a < size(); ++a) {
    for (int b = 0; b < size(); ++b) {
      if (a == b) continue;
      done = max(done, cluster_.fabric().send_control(
                           rank(a).hca(), rank(b).hca(), bytes_per_pair,
                           start, ib::ControlKind::kInterClient));
    }
  }
  for (pvfs::Client* r : ranks_) r->advance_to(done);
  return done;
}

}  // namespace pvfsib::mpiio
