// MPI-IO file views: (displacement, etype, filetype). A view compacts the
// file into "view space" — the byte stream an MPI process sees; mapping a
// contiguous view-space range onto physical file extents is the core
// operation behind every ROMIO access method.
#pragma once

#include "common/extent.h"
#include "mpiio/datatype.h"

namespace pvfsib::mpiio {

class FileView {
 public:
  // Default: the identity view (whole file, contiguous).
  FileView() : FileView(0, Datatype::contiguous(1)) {}

  FileView(u64 displacement, Datatype filetype)
      : disp_(displacement), filetype_(std::move(filetype)) {}

  u64 displacement() const { return disp_; }
  const Datatype& filetype() const { return filetype_; }

  // Bytes of data per filetype tile.
  u64 tile_data() const { return filetype_.size(); }

  // Physical file extents for view-space range [offset, offset+length).
  // Extents are emitted in view-stream order (monotone in the file).
  ExtentList map_range(u64 offset, u64 length) const;

  // Total data bytes in view space up to physical position `phys_end`
  // (used to size reads). Inverse-ish of map_range.
  u64 view_size_below(u64 phys_end) const;

 private:
  u64 disp_ = 0;
  Datatype filetype_;
};

}  // namespace pvfsib::mpiio
