// Mini-MPI runtime: a communicator over the cluster's compute nodes.
//
// Ranks are PVFS clients; collectives move real bytes between rank address
// spaces and charge channel-semantics fabric time (the MVAPICH path of
// Table 2). The benches drive all ranks from one thread, so collectives are
// whole-communicator operations rather than per-rank SPMD calls.
#pragma once

#include <vector>

#include "pvfs/cluster.h"

namespace pvfsib::mpiio {

class Communicator {
 public:
  // Ranks 0..n-1 map to clients 0..n-1 of the cluster.
  explicit Communicator(pvfs::Cluster& cluster);

  int size() const { return static_cast<int>(ranks_.size()); }
  pvfs::Client& rank(int r) { return *ranks_.at(r); }
  pvfs::Cluster& cluster() { return cluster_; }

  // Synchronize all rank clocks (plus the latency of the barrier fan-in);
  // returns the common release time.
  TimePoint barrier();

  // Point-to-point bulk transfer: copies [src_addr, +bytes) in rank `src`'s
  // memory to dst_addr in rank `dst`'s memory, charging channel-semantics
  // time from `ready`. Returns arrival time.
  TimePoint send(int src, u64 src_addr, int dst, u64 dst_addr, u64 bytes,
                 TimePoint ready);

  // All-to-all metadata exchange of `bytes` per rank pair (offset lists in
  // two-phase I/O); clocks advance past the exchange.
  TimePoint exchange_metadata(u64 bytes_per_pair);

 private:
  pvfs::Cluster& cluster_;
  std::vector<pvfs::Client*> ranks_;
};

}  // namespace pvfsib::mpiio
