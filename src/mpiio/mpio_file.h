// MPI-IO file operations over PVFS with ROMIO's four noncontiguous access
// methods (Section 2.3):
//
//   kMultiple      one PVFS contiguous call per contiguous piece
//   kDataSieving   ROMIO *client-side* data sieving: reads stage the whole
//                  [first,last] span through a client buffer; writes fall
//                  back to kMultiple because PVFS has no file locking
//                  (exactly the degradation the paper describes)
//   kCollective    two-phase I/O: ranks exchange data so each aggregator
//                  performs contiguous file I/O on its file domain
//   kListIo(+Ads)  PVFS list I/O, optionally with server-side Active Data
//                  Sieving — the paper's contribution
//
// Operations are whole-communicator: benches pass one RankIo per rank and
// every rank's access runs concurrently on the event engine, as in a real
// MPI program.
#pragma once

#include <string>
#include <vector>

#include "mpiio/datatype.h"
#include "mpiio/file_view.h"
#include "mpiio/runtime.h"

namespace pvfsib::mpiio {

enum class IoMethod { kMultiple, kDataSieving, kCollective, kListIo, kListIoAds };

const char* to_string(IoMethod m);

struct Hints {
  IoMethod method = IoMethod::kListIoAds;
  u64 cb_buffer_size = 4 * kMiB;        // collective (two-phase) buffer
  u64 ind_rd_buffer_size = 4 * kMiB;    // ROMIO DS read staging
  bool sync = false;                    // commit to disk before returning
  core::TransferPolicy policy;          // PVFS transfer scheme
};

// One rank's share of a collective-style access.
struct RankIo {
  FileView view;
  u64 mem_addr = 0;
  Datatype memtype = Datatype::contiguous(1);
  u64 view_offset = 0;  // position in view space, bytes
  u64 bytes = 0;        // data bytes to move
};

class File {
 public:
  static Result<File> create(Communicator& comm, const std::string& name);
  static Result<File> open(Communicator& comm, const std::string& name);

  // Concurrent access by all ranks; entry r describes rank r (bytes == 0
  // means the rank does not participate). Returns one result per rank.
  std::vector<pvfs::IoResult> write_all(const std::vector<RankIo>& io,
                                        const Hints& hints);
  std::vector<pvfs::IoResult> read_all(const std::vector<RankIo>& io,
                                       const Hints& hints);

  // --- independent per-rank operations (MPI_File_{write,read}_at) --------
  pvfs::IoResult write_at(int rank, const FileView& view, u64 view_offset,
                          u64 mem_addr, const Datatype& memtype, u64 bytes,
                          const Hints& hints);
  pvfs::IoResult read_at(int rank, const FileView& view, u64 view_offset,
                         u64 mem_addr, const Datatype& memtype, u64 bytes,
                         const Hints& hints);

  // --- individual file pointers (MPI_File_{seek,get_position,...}) -------
  // Views and positions are per rank, in view-space bytes.
  void set_view(int rank, FileView view);
  const FileView& view(int rank) const { return views_.at(rank); }
  void seek(int rank, u64 view_offset) { positions_.at(rank) = view_offset; }
  u64 tell(int rank) const { return positions_.at(rank); }

  // Pointer-relative ops: access at the rank's current position, then
  // advance it by `bytes`.
  pvfs::IoResult write(int rank, u64 mem_addr, const Datatype& memtype,
                       u64 bytes, const Hints& hints);
  pvfs::IoResult read(int rank, u64 mem_addr, const Datatype& memtype,
                      u64 bytes, const Hints& hints);

  pvfs::OpenFile& handle(int rank) { return handles_.at(rank); }
  Communicator& comm() { return *comm_; }

 private:
  File(Communicator& comm, std::vector<pvfs::OpenFile> handles)
      : comm_(&comm), handles_(std::move(handles)) {}

  std::vector<pvfs::IoResult> run_list(const std::vector<RankIo>& io,
                                       const Hints& hints, bool use_ads,
                                       bool is_write);
  std::vector<pvfs::IoResult> run_multiple(const std::vector<RankIo>& io,
                                           const Hints& hints, bool is_write);
  std::vector<pvfs::IoResult> run_ds_read(const std::vector<RankIo>& io,
                                          const Hints& hints);
  std::vector<pvfs::IoResult> run_two_phase(const std::vector<RankIo>& io,
                                            const Hints& hints, bool is_write);

  // Persistent per-rank scratch allocations (DS staging, two-phase blocks).
  u64 scratch(int rank, u64 bytes);

  pvfs::IoResult run_single(int rank, const RankIo& io, const Hints& hints,
                            bool is_write);

  Communicator* comm_;
  std::vector<pvfs::OpenFile> handles_;
  std::vector<std::pair<u64, u64>> scratch_;  // per rank: (addr, size)
  std::vector<FileView> views_;               // per rank (default identity)
  std::vector<u64> positions_;                // per rank, view-space bytes
};

}  // namespace pvfsib::mpiio
