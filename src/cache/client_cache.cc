#include "cache/client_cache.h"

#include <algorithm>
#include <cassert>

namespace pvfsib::cache {

// --- Attribute/name cache --------------------------------------------------

const pvfs::FileMeta* ClientCache::lookup_attr(std::string_view name,
                                               TimePoint now) {
  if (!enabled()) return nullptr;
  auto it = attrs_.find(name);
  if (it != attrs_.end() && !p_.leases && now >= it->second.expires) {
    // TTL mode: the entry aged out. (Lease mode keeps entries until a
    // revoke drops them.)
    attrs_.erase(it);
    it = attrs_.end();
  }
  if (it == attrs_.end()) {
    if (stats_ != nullptr) stats_->add(stat::kPvfsCacheMisses);
    return nullptr;
  }
  it->second.lru = ++tick_;
  if (stats_ != nullptr) stats_->add(stat::kPvfsCacheHits);
  return &it->second.meta;
}

void ClientCache::put_attr(const pvfs::FileMeta& meta, TimePoint now) {
  if (!enabled() || p_.attr_capacity == 0) return;
  if (attrs_.find(meta.name) == attrs_.end() &&
      attrs_.size() >= p_.attr_capacity) {
    auto victim = attrs_.begin();
    for (auto it = attrs_.begin(); it != attrs_.end(); ++it) {
      if (it->second.lru < victim->second.lru) victim = it;
    }
    attrs_.erase(victim);
  }
  AttrEntry& e = attrs_[meta.name];
  e.meta = meta;
  e.expires = now + p_.attr_ttl;
  e.lru = ++tick_;
}

u64 ClientCache::erase_attr(std::string_view name) {
  auto it = attrs_.find(name);
  if (it == attrs_.end()) return 0;
  attrs_.erase(it);
  return 1;
}

void ClientCache::invalidate_name(std::string_view name) {
  if (!enabled()) return;
  count_drop(DropWhy::kInvalidation, erase_attr(name));
}

// --- Data cache: shared plumbing -------------------------------------------

void ClientCache::count_drop(DropWhy why, u64 n) {
  if (n == 0 || stats_ == nullptr) return;
  switch (why) {
    case DropWhy::kInvalidation:
      stats_->add(stat::kPvfsCacheInvalidations, static_cast<i64>(n));
      break;
    case DropWhy::kLeaseRevoke:
      stats_->add(stat::kPvfsCacheLeaseRevokes, static_cast<i64>(n));
      break;
    case DropWhy::kSilent:
      break;
  }
}

void ClientCache::erase_entry(FileEntries& fm, FileEntries::iterator it) {
  assert(data_bytes_ >= it->second.len());
  data_bytes_ -= it->second.len();
  fm.erase(it);
}

bool ClientCache::range_has_dirty(const FileEntries& fm, u64 start,
                                  u64 end) const {
  auto it = fm.lower_bound(start);
  if (it != fm.begin()) --it;
  for (; it != fm.end() && it->second.start < end; ++it) {
    if (it->second.end() > start && it->second.dirty) return true;
  }
  return false;
}

void ClientCache::clear_range(FileEntries& fm, u64 start, u64 end,
                              bool drop_dirty, DropWhy why) {
  auto it = fm.lower_bound(start);
  if (it != fm.begin()) --it;
  u64 dropped = 0;
  std::vector<Entry> trimmed;
  while (it != fm.end() && it->second.start < end) {
    Entry& e = it->second;
    if (e.end() <= start) {
      ++it;
      continue;
    }
    if (e.dirty && !drop_dirty) {
      // Dirty overlaps are trimmed, never dropped: the non-overlapping
      // prefix/suffix are still the only copy of the user's bytes.
      if (e.start < start) {
        Entry pre = e;
        pre.bytes.assign(e.bytes.begin(), e.bytes.begin() + (start - e.start));
        trimmed.push_back(std::move(pre));
      }
      if (e.end() > end) {
        Entry post = e;
        post.start = end;
        post.bytes.assign(e.bytes.begin() + (end - e.start), e.bytes.end());
        trimmed.push_back(std::move(post));
      }
      it = fm.erase(it);
      data_bytes_ -= e.len();
      continue;
    }
    ++dropped;
    data_bytes_ -= e.len();
    it = fm.erase(it);
  }
  for (Entry& t : trimmed) {
    data_bytes_ += t.len();
    const u64 key = t.start;
    fm.emplace(key, std::move(t));
  }
  count_drop(why, dropped);
}

void ClientCache::insert_pieces(pvfs::Handle h, u64 stripe_size,
                                u32 server_count, u64 start,
                                std::span<const std::byte> bytes, bool dirty,
                                TimePoint now, const TagOf* tags) {
  (void)now;
  FileEntries& fm = data_[h];
  u64 off = start;
  u64 cursor = 0;
  while (cursor < bytes.size()) {
    // Split at stripe-unit boundaries: one entry, one logical stripe.
    const u64 unit_end = (off / stripe_size + 1) * stripe_size;
    const u64 n = std::min<u64>(bytes.size() - cursor, unit_end - off);
    const u32 stripe =
        static_cast<u32>((off / stripe_size) % std::max<u32>(1, server_count));
    if (!dirty && range_has_dirty(fm, off, off + n)) {
      // Never let clean bytes shadow dirty ones: the dirty entry is newer.
      off += n;
      cursor += n;
      continue;
    }
    clear_range(fm, off, off + n, dirty, DropWhy::kSilent);
    Entry e;
    e.start = off;
    e.bytes.assign(bytes.begin() + cursor, bytes.begin() + cursor + n);
    e.stripe = stripe;
    e.dirty = dirty;
    e.lru = ++tick_;
    if (dirty) {
      e.gen = ++dirty_gen_;
    } else if (tags != nullptr) {
      (*tags)(stripe, &e.seq, &e.version);
    }
    data_bytes_ += n;
    fm.emplace(e.start, std::move(e));
    off += n;
    cursor += n;
  }
  evict_to_budget();
}

void ClientCache::evict_to_budget() {
  // LRU over clean entries only; dirty entries may transiently push the
  // footprint over budget (they cannot be discarded).
  while (data_bytes_ > p_.data_capacity) {
    pvfs::Handle victim_h = 0;
    FileEntries::iterator victim;
    u64 best = ~0ull;
    for (auto& [h, fm] : data_) {
      for (auto it = fm.begin(); it != fm.end(); ++it) {
        if (!it->second.dirty && it->second.lru < best) {
          best = it->second.lru;
          victim_h = h;
          victim = it;
        }
      }
    }
    if (best == ~0ull) return;  // only dirty entries remain
    erase_entry(data_[victim_h], victim);
  }
}

// --- Data cache: read/write paths ------------------------------------------

bool ClientCache::read_lookup(pvfs::Handle h, const ExtentList& file,
                              const TagCheck& valid,
                              std::vector<std::byte>* out) {
  if (!enabled()) return false;
  auto miss = [&] {
    if (stats_ != nullptr) stats_->add(stat::kPvfsCacheMisses);
    return false;
  };
  auto dit = data_.find(h);
  if (dit == data_.end()) return miss();
  FileEntries& fm = dit->second;
  out->clear();
  std::vector<Entry*> used;
  for (const Extent& ex : file) {
    u64 pos = ex.offset;
    while (pos < ex.end()) {
      auto it = fm.upper_bound(pos);
      if (it == fm.begin()) return miss();
      --it;
      Entry& e = it->second;
      if (e.start > pos || e.end() <= pos) return miss();
      if (!e.dirty && !valid(e.stripe, e.seq, e.version)) {
        // Stale tags: the entry can never serve again — drop it now so the
        // budget frees up, and miss.
        erase_entry(fm, it);
        count_drop(DropWhy::kInvalidation, 1);
        return miss();
      }
      const u64 n = std::min(ex.end(), e.end()) - pos;
      const u64 at = pos - e.start;
      out->insert(out->end(), e.bytes.begin() + at, e.bytes.begin() + at + n);
      used.push_back(&e);
      pos += n;
    }
  }
  for (Entry* e : used) e->lru = ++tick_;
  if (stats_ != nullptr) stats_->add(stat::kPvfsCacheHits);
  return true;
}

void ClientCache::insert_clean(pvfs::Handle h, u64 stripe_size,
                               u32 server_count, const ExtentList& file,
                               std::span<const std::byte> bytes,
                               const TagOf& tags) {
  if (!enabled() || p_.data_capacity == 0) return;
  u64 cursor = 0;
  for (const Extent& ex : file) {
    insert_pieces(h, stripe_size, server_count, ex.offset,
                  bytes.subspan(cursor, ex.length), /*dirty=*/false,
                  TimePoint::origin(), &tags);
    cursor += ex.length;
  }
}

void ClientCache::invalidate_extents(pvfs::Handle h, const ExtentList& file) {
  if (!enabled()) return;
  auto dit = data_.find(h);
  if (dit == data_.end()) return;
  for (const Extent& ex : file) {
    clear_range(dit->second, ex.offset, ex.end(), /*drop_dirty=*/false,
                DropWhy::kInvalidation);
  }
  if (dit->second.empty()) data_.erase(dit);
}

void ClientCache::note_version(pvfs::Handle h, u32 stripe, u64 version) {
  if (!enabled() || version == 0) return;
  auto dit = data_.find(h);
  if (dit == data_.end()) return;
  FileEntries& fm = dit->second;
  u64 dropped = 0;
  for (auto it = fm.begin(); it != fm.end();) {
    const Entry& e = it->second;
    if (!e.dirty && e.stripe == stripe && e.version < version) {
      // A replica demonstrably holds `version`; this entry's tag is older.
      // Version-aware placement would no longer serve these bytes, so the
      // cache must not either.
      data_bytes_ -= e.len();
      it = fm.erase(it);
      ++dropped;
      continue;
    }
    ++it;
  }
  count_drop(DropWhy::kInvalidation, dropped);
  if (fm.empty()) data_.erase(dit);
}

// --- Write-back plane -------------------------------------------------------

void ClientCache::stage_dirty(pvfs::Handle h, u64 stripe_size,
                              u32 server_count, const ExtentList& file,
                              std::span<const std::byte> bytes, TimePoint now) {
  if (!write_back()) return;
  u64 cursor = 0;
  for (const Extent& ex : file) {
    insert_pieces(h, stripe_size, server_count, ex.offset,
                  bytes.subspan(cursor, ex.length), /*dirty=*/true, now,
                  nullptr);
    cursor += ex.length;
  }
}

bool ClientCache::has_dirty(pvfs::Handle h) const {
  auto dit = data_.find(h);
  if (dit == data_.end()) return false;
  for (const auto& [off, e] : dit->second) {
    if (e.dirty) return true;
  }
  return false;
}

std::vector<ClientCache::DirtyRun> ClientCache::dirty_runs(
    pvfs::Handle h) const {
  std::vector<DirtyRun> out;
  auto dit = data_.find(h);
  if (dit == data_.end()) return out;
  for (const auto& [off, e] : dit->second) {
    if (!e.dirty) continue;
    out.push_back(DirtyRun{e.start, e.bytes, e.gen});
  }
  return out;
}

void ClientCache::flush_applied(pvfs::Handle h,
                                const std::vector<DirtyRun>& runs,
                                const TagOf& tags) {
  auto dit = data_.find(h);
  if (dit == data_.end()) return;
  FileEntries& fm = dit->second;
  for (const DirtyRun& run : runs) {
    auto it = fm.find(run.offset);
    if (it == fm.end()) continue;
    Entry& e = it->second;
    // Only the exact staging generation converts: a write that re-dirtied
    // the range mid-flush owns newer bytes and stays dirty for the next
    // flush.
    if (!e.dirty || e.gen != run.gen || e.len() != run.bytes.size()) continue;
    e.dirty = false;
    e.gen = 0;
    tags(e.stripe, &e.seq, &e.version);
  }
  evict_to_budget();
}

void ClientCache::overlay_dirty(
    pvfs::Handle h, const ExtentList& file,
    const std::function<void(u64, std::span<const std::byte>)>& apply) const {
  if (!write_back()) return;
  auto dit = data_.find(h);
  if (dit == data_.end()) return;
  const FileEntries& fm = dit->second;
  for (const Extent& ex : file) {
    auto it = fm.lower_bound(ex.offset);
    if (it != fm.begin()) --it;
    for (; it != fm.end() && it->second.start < ex.end(); ++it) {
      const Entry& e = it->second;
      if (!e.dirty || e.end() <= ex.offset) continue;
      const u64 lo = std::max(e.start, ex.offset);
      const u64 hi = std::min(e.end(), ex.end());
      apply(lo, std::span<const std::byte>(e.bytes).subspan(lo - e.start,
                                                            hi - lo));
    }
  }
}

// --- Lease plane ------------------------------------------------------------

void ClientCache::on_revoke(const pvfs::LeaseRevoke& rv) {
  if (!enabled()) return;
  u64 dropped = 0;
  switch (rv.reason) {
    case pvfs::LeaseRevokeReason::kCreated:
      // A (re)created name: whatever attr a holder cached predates it.
      dropped += erase_attr(rv.name);
      break;
    case pvfs::LeaseRevokeReason::kRemoved: {
      dropped += erase_attr(rv.name);
      auto dit = data_.find(rv.handle);
      if (dit != data_.end()) {
        // The file is gone: dirty extents are dead too, there is nothing
        // left to flush them into.
        for (const auto& [off, e] : dit->second) {
          data_bytes_ -= e.len();
          ++dropped;
        }
        data_.erase(dit);
      }
      break;
    }
    case pvfs::LeaseRevokeReason::kEpochBump: {
      // Re-route under the revoke's shard count (a split doubles it) and
      // drop only what the bumped shard now owns. This is what keeps a
      // takeover/migration/split from chilling unrelated shards' caches —
      // and what closes the seq-restart ABA for the affected one.
      for (auto it = attrs_.begin(); it != attrs_.end();) {
        if (pvfs::shard_of(it->first, rv.shard_count) == rv.shard) {
          it = attrs_.erase(it);
          ++dropped;
        } else {
          ++it;
        }
      }
      for (auto dit = data_.begin(); dit != data_.end();) {
        if (pvfs::shard_of_handle(dit->first, rv.shard_count) != rv.shard) {
          ++dit;
          continue;
        }
        FileEntries& fm = dit->second;
        for (auto it = fm.begin(); it != fm.end();) {
          if (it->second.dirty) {
            // Dirty bytes survive the bump: they flush through whatever
            // authority the fresh map routes to.
            ++it;
            continue;
          }
          data_bytes_ -= it->second.len();
          it = fm.erase(it);
          ++dropped;
        }
        dit = fm.empty() ? data_.erase(dit) : std::next(dit);
      }
      break;
    }
  }
  count_drop(DropWhy::kLeaseRevoke, dropped);
}

void ClientCache::drop_file(pvfs::Handle h) {
  auto dit = data_.find(h);
  if (dit == data_.end()) return;
  for (const auto& [off, e] : dit->second) data_bytes_ -= e.len();
  data_.erase(dit);
}

void ClientCache::drop_all() {
  attrs_.clear();
  data_.clear();
  data_bytes_ = 0;
}

size_t ClientCache::data_entries(pvfs::Handle h) const {
  auto dit = data_.find(h);
  return dit == data_.end() ? 0 : dit->second.size();
}

}  // namespace pvfsib::cache
