// Per-client caching tier: an attribute/name cache (open/stat
// short-circuit) and an extent-granular data cache, both host-side
// structures that cost no simulated time to consult. Coherence rests on
// three planes, checked at hit time rather than trusted at insert time:
//
//   * Write notices: the version-plane authority keeps a per-(handle,
//     logical stripe) write sequence (Manager::bump_data_seq), bumped by
//     every cache-enabled client at write submission. A clean entry is
//     only servable while its recorded sequence still equals the
//     authority's — any write *started* since the entry's bytes were
//     established makes it a miss. This covers replication factor 1,
//     where the stripe-version plane is inert.
//   * Version tags: entries carry the stripe version learned from write
//     acks and read replies. A hit additionally requires the tag to be no
//     older than the authority's latest known version, and
//     Client::note_version drops tags that a note_replica_version
//     conflict proves stale — the ISSUE's hard invariant that a hit never
//     returns bytes older than version-aware placement plus read-repair
//     would serve.
//   * Leases: entries are held under membership on the cluster's
//     LeaseBus (protocol.h). Managers revoke on create/remove of the
//     name; the cluster revokes on epoch bumps (takeover, migration
//     cutover, split), scoped to the affected shard only. The epoch-bump
//     revoke is load-bearing, not hygiene: a fresh authority restarts
//     write sequences at zero, so surviving entries tagged seq 0 would
//     re-validate against it (an ABA) — dropping the shard's entries at
//     the bump closes that window.
//
// Write-back mode stages dirty extents that are exempt from all tag
// checks (they are the newest bytes by construction, and the only copy of
// the user's data until flushed) and are never silently evicted.
//
// With CacheParams::enabled false every method returns without touching
// state or counters, so cache-off runs stay byte-identical.
#pragma once

#include <functional>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/config.h"
#include "common/extent.h"
#include "common/sim_time.h"
#include "common/stats.h"
#include "pvfs/protocol.h"

namespace pvfsib::cache {

class ClientCache {
 public:
  ClientCache(const CacheParams& params, Stats* stats)
      : p_(params), stats_(stats) {}

  bool enabled() const { return p_.enabled; }
  bool write_back() const { return p_.enabled && p_.write_back; }
  const CacheParams& params() const { return p_; }

  // --- Attribute/name cache ----------------------------------------------
  // Valid-at-`now` lookup (lease mode: valid until revoked; TTL mode: not
  // past attr_ttl). Counts one cache hit or miss. Returns null on miss.
  const pvfs::FileMeta* lookup_attr(std::string_view name, TimePoint now);
  void put_attr(const pvfs::FileMeta& meta, TimePoint now);
  // Local invalidation (the client's own remove path); counts dropped
  // entries as pvfs.cache_invalidations.
  void invalidate_name(std::string_view name);

  // --- Data cache ----------------------------------------------------------
  // Entries are split at stripe-unit boundaries so each belongs to exactly
  // one logical stripe chain and carries one (seq, version) tag pair.

  // Hit-time tag validation, supplied by the client (it owns the authority
  // routing). Returns true when a clean entry's tags are still current.
  using TagCheck = std::function<bool(u32 stripe, u64 seq, u64 version)>;
  // Fresh tags for an insert, by logical stripe.
  using TagOf = std::function<void(u32 stripe, u64* seq, u64* version)>;

  // True when `file` is fully covered by servable entries (dirty, or clean
  // with `valid` tags); fills `out` with the bytes in file-extent order.
  // Counts one hit or one miss; drops clean entries whose tags fail.
  bool read_lookup(pvfs::Handle h, const ExtentList& file,
                   const TagCheck& valid, std::vector<std::byte>* out);

  // Insert clean bytes (completed read, or write-through/flush write).
  // Ranges overlapped by dirty entries are skipped — dirty bytes are newer.
  void insert_clean(pvfs::Handle h, u64 stripe_size, u32 server_count,
                    const ExtentList& file, std::span<const std::byte> bytes,
                    const TagOf& tags);

  // A write is about to touch these ranges: drop overlapping clean entries
  // (counts pvfs.cache_invalidations). Dirty entries are left alone.
  void invalidate_extents(pvfs::Handle h, const ExtentList& file);
  void note_version(pvfs::Handle h, u32 stripe, u64 version);

  // --- Write-back plane ----------------------------------------------------
  void stage_dirty(pvfs::Handle h, u64 stripe_size, u32 server_count,
                   const ExtentList& file, std::span<const std::byte> bytes,
                   TimePoint now);
  bool has_dirty(pvfs::Handle h) const;
  struct DirtyRun {
    u64 offset = 0;
    std::vector<std::byte> bytes;
    u64 gen = 0;  // staging generation; flush_applied matches on it
  };
  // Snapshot the handle's dirty extents (ascending offset) for a flush.
  std::vector<DirtyRun> dirty_runs(pvfs::Handle h) const;
  // The flush write completed: entries still at their snapshot generation
  // become clean with fresh tags; re-dirtied entries stay dirty.
  void flush_applied(pvfs::Handle h, const std::vector<DirtyRun>& runs,
                     const TagOf& tags);
  // Overlay dirty bytes over a freshly wire-read range (read-your-writes
  // while a flush is pending or not yet due).
  void overlay_dirty(
      pvfs::Handle h, const ExtentList& file,
      const std::function<void(u64 file_off, std::span<const std::byte>)>&
          apply) const;

  // --- Lease plane ---------------------------------------------------------
  // Revocation delivered off the LeaseBus (via MetaClient). kEpochBump
  // re-routes every entry under the revoke's shard count and drops only
  // those now owned by the bumped shard; dirty entries survive (they are
  // the only copy of the user's bytes and flush through the new
  // authority). Dropped entries count as pvfs.cache_lease_revokes.
  void on_revoke(const pvfs::LeaseRevoke& rv);

  // Voluntarily drop every cached extent of `h` (the client's close()).
  // Not an invalidation: nothing was proven stale, so no counter moves.
  void drop_file(pvfs::Handle h);

  void drop_all();

  // Introspection (tests/bench).
  u64 data_bytes() const { return data_bytes_; }
  size_t attr_entries() const { return attrs_.size(); }
  size_t data_entries(pvfs::Handle h) const;

 private:
  struct AttrEntry {
    pvfs::FileMeta meta;
    TimePoint expires = TimePoint::origin();  // TTL mode only
    u64 lru = 0;
  };
  struct Entry {
    u64 start = 0;
    std::vector<std::byte> bytes;
    u32 stripe = 0;
    u64 seq = 0;
    u64 version = 0;
    bool dirty = false;
    u64 gen = 0;  // dirty staging generation
    u64 lru = 0;
    u64 len() const { return bytes.size(); }
    u64 end() const { return start + bytes.size(); }
  };
  using FileEntries = std::map<u64, Entry>;  // keyed by start offset

  enum class DropWhy { kInvalidation, kLeaseRevoke, kSilent };
  void count_drop(DropWhy why, u64 n);
  void erase_entry(FileEntries& fm, FileEntries::iterator it);
  // Remove [start, end) from the handle's entries: clean overlaps are
  // dropped whole, dirty overlaps are trimmed (their non-overlapping
  // prefix/suffix survive) unless `drop_dirty`.
  void clear_range(FileEntries& fm, u64 start, u64 end, bool drop_dirty,
                   DropWhy why);
  bool range_has_dirty(const FileEntries& fm, u64 start, u64 end) const;
  void insert_pieces(pvfs::Handle h, u64 stripe_size, u32 server_count,
                     u64 start, std::span<const std::byte> bytes, bool dirty,
                     TimePoint now, const TagOf* tags);
  void evict_to_budget();
  u64 erase_attr(std::string_view name);

  CacheParams p_;
  Stats* stats_;
  std::map<std::string, AttrEntry, std::less<>> attrs_;
  std::map<pvfs::Handle, FileEntries> data_;
  u64 data_bytes_ = 0;
  u64 tick_ = 0;      // LRU clock
  u64 dirty_gen_ = 0;
};

}  // namespace pvfsib::cache
