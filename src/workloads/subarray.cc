#include "workloads/subarray.h"

#include <cassert>

namespace pvfsib::workloads {

core::MemSegmentList SubarrayLayout::subarray_rows(u64 base, u32 pr,
                                                   u32 pc) const {
  assert(pr < pgrid && pc < pgrid && n % pgrid == 0);
  core::MemSegmentList segs;
  segs.reserve(sub_rows());
  const u64 first_row = pr * sub_rows();
  const u64 col_off = pc * sub_cols() * elem;
  for (u64 r = 0; r < sub_rows(); ++r) {
    const u64 addr = base + (first_row + r) * array_row_bytes() + col_off;
    segs.push_back({addr, row_bytes()});
  }
  return segs;
}

ExtentList SubarrayLayout::contiguous_file_extents(u32 pr, u32 pc) const {
  const u64 rank = pr * pgrid + pc;
  return {{rank * sub_bytes(), sub_bytes()}};
}

}  // namespace pvfsib::workloads
