// The Figure 5 access pattern behind Figures 6 and 7: an N x N int array in
// row-major file order with a one-dimensional block-column distribution —
// each of 4 processes accesses one unit out of every four in the file
// (noncontiguous in the file, contiguous in memory).
#pragma once

#include "mpiio/mpio_file.h"

namespace pvfsib::workloads {

struct BlockColumnWorkload {
  u64 n = 512;    // array dimension; paper sweeps 512..8192
  u64 elem = 4;   // ints
  int procs = 4;

  u64 share_bytes() const { return n * (n / procs) * elem; }
  u64 file_bytes() const { return n * n * elem; }
  u64 columns_per_proc() const { return n / procs; }
  // Number of noncontiguous file pieces each process touches (one per row).
  u64 accesses_per_proc() const { return n; }

  // RankIo for process p, reading/writing its whole block column from a
  // contiguous buffer at `mem_addr`.
  mpiio::RankIo rank_io(int p, u64 mem_addr) const {
    const u64 cols = columns_per_proc();
    const mpiio::Datatype ft = mpiio::Datatype::subarray(
        {n, n}, {n, cols}, {0, static_cast<u64>(p) * cols}, elem);
    return mpiio::RankIo{mpiio::FileView(0, ft), mem_addr,
                         mpiio::Datatype::contiguous(share_bytes()), 0,
                         share_bytes()};
  }
};

}  // namespace pvfsib::workloads
