// The 2-D subarray distribution used by Figure 3 and Table 4: an N x N
// element array block-distributed over a pgrid x pgrid process grid; each
// process's share is the rows of its subarray — the canonical source of
// noncontiguous list I/O buffers.
#pragma once

#include "core/listio.h"
#include "vmem/address_space.h"

namespace pvfsib::workloads {

struct SubarrayLayout {
  u64 n = 0;         // array is n x n elements
  u64 elem = 4;      // element size (C int on the testbed)
  u32 pgrid = 2;     // process grid is pgrid x pgrid (4 processes -> 2x2)

  u64 sub_rows() const { return n / pgrid; }
  u64 sub_cols() const { return n / pgrid; }
  u64 row_bytes() const { return sub_cols() * elem; }
  u64 array_row_bytes() const { return n * elem; }
  u64 sub_bytes() const { return sub_rows() * row_bytes(); }
  u64 array_bytes() const { return n * n * elem; }

  // Allocate the process's *whole* local array (the common application
  // pattern: malloc the full array, send subarray pieces).
  u64 alloc_array(vmem::AddressSpace& as) const { return as.alloc(array_bytes()); }

  // Memory segments of process (pr, pc)'s subarray rows inside the full
  // array allocated at `base`.
  core::MemSegmentList subarray_rows(u64 base, u32 pr, u32 pc) const;

  // File extents when each process writes its subarray *contiguously* at
  // non-overlapping locations (the Table 4 benchmark).
  ExtentList contiguous_file_extents(u32 pr, u32 pc) const;
};

}  // namespace pvfsib::workloads
