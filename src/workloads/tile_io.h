// mpi-tile-io (Section 6.6): tiled access to a dense 2-D frame. Four
// compute nodes each render one tile of a 2x2 display array, each display
// 1024x768 pixels of 24 bits — a 9 MB frame file. Noncontiguous in the
// file, contiguous in memory.
#pragma once

#include "mpiio/mpio_file.h"

namespace pvfsib::workloads {

struct TileIoWorkload {
  u64 tile_w = 1024;   // pixels per tile row
  u64 tile_h = 768;    // rows per tile
  u64 pixel = 3;       // 24-bit pixels
  u32 tiles_x = 2;
  u32 tiles_y = 2;

  u64 frame_w() const { return tile_w * tiles_x; }
  u64 frame_h() const { return tile_h * tiles_y; }
  u64 frame_bytes() const { return frame_w() * frame_h() * pixel; }
  u64 tile_bytes() const { return tile_w * tile_h * pixel; }
  int procs() const { return static_cast<int>(tiles_x * tiles_y); }
  u64 rows_per_tile() const { return tile_h; }

  // RankIo for the process rendering tile p (row-major tile order), with a
  // contiguous local buffer at `mem_addr`.
  mpiio::RankIo rank_io(int p, u64 mem_addr) const {
    const u64 ty = static_cast<u64>(p) / tiles_x;
    const u64 tx = static_cast<u64>(p) % tiles_x;
    const mpiio::Datatype ft = mpiio::Datatype::subarray(
        {frame_h(), frame_w() * pixel}, {tile_h, tile_w * pixel},
        {ty * tile_h, tx * tile_w * pixel}, 1);
    return mpiio::RankIo{mpiio::FileView(0, ft), mem_addr,
                         mpiio::Datatype::contiguous(tile_bytes()), 0,
                         tile_bytes()};
  }
};

}  // namespace pvfsib::workloads
