// A BTIO-like workload (Section 6.7): the I/O pattern of the NAS BT
// benchmark's class-A run on 4 processes, synthesized to reproduce the
// published access statistics rather than the BT solver numerics:
//
//   - 200 solver timesteps, an output phase every 5 steps (40 appends);
//   - each output phase appends one 5 MiB step block; inside a block the
//     cells are interleaved across processes in a diagonal-shifting pattern
//     (the multi-partition decomposition), giving each process 512
//     noncontiguous pieces of 2560 B per phase — Multiple I/O therefore
//     issues 40*4*512 = 81920 write requests plus the same again for the
//     read-back verification, matching Table 6's 163840;
//   - memory is also fragmented (pieces interleaved with solver state), so
//     the access is noncontiguous on both sides;
//   - compute time between outputs is charged as virtual time so the no-I/O
//     baseline lands at the paper's 165.6 s.
#pragma once

#include "mpiio/mpio_file.h"

namespace pvfsib::workloads {

struct BtioConfig {
  int procs = 4;
  int timesteps = 200;
  int write_interval = 5;
  u64 piece_bytes = 2560;
  u64 pieces_per_proc = 512;  // per output phase
  Duration step_compute = Duration::ms(828);  // 200 steps -> 165.6 s
};

class BtioWorkload {
 public:
  explicit BtioWorkload(BtioConfig cfg = {}) : cfg_(cfg) {}

  const BtioConfig& config() const { return cfg_; }
  int output_phases() const { return cfg_.timesteps / cfg_.write_interval; }
  u64 step_block_bytes() const {
    return cfg_.piece_bytes * cfg_.pieces_per_proc *
           static_cast<u64>(cfg_.procs);
  }
  u64 bytes_per_proc_per_phase() const {
    return cfg_.piece_bytes * cfg_.pieces_per_proc;
  }
  u64 total_file_bytes() const {
    return step_block_bytes() * static_cast<u64>(output_phases());
  }

  // Slot owner inside a step block: diagonal-shifting interleave (every
  // `procs` slots the assignment rotates), the signature of BT's
  // multi-partition decomposition.
  int slot_owner(u64 slot) const {
    const u64 p = static_cast<u64>(cfg_.procs);
    return static_cast<int>((slot + slot / p) % p);
  }

  // The memory datatype of one process's phase data: pieces interleaved
  // 1-in-2 with solver state (noncontiguous memory).
  mpiio::Datatype memtype() const {
    return mpiio::Datatype::vector(cfg_.pieces_per_proc, 1, 2,
                                   mpiio::Datatype::contiguous(cfg_.piece_bytes));
  }
  u64 mem_extent_bytes() const { return memtype().extent(); }

  // RankIo for process p's share of output phase `phase`. `mem_addr` is the
  // base of its (mem_extent_bytes-sized) local buffer.
  mpiio::RankIo rank_io(int phase, int p, u64 mem_addr) const;

 private:
  BtioConfig cfg_;
};

}  // namespace pvfsib::workloads
