#include "workloads/block_column.h"

// Header-only workload; this TU anchors the library target.
