#include "workloads/btio.h"

#include <cassert>

namespace pvfsib::workloads {

mpiio::RankIo BtioWorkload::rank_io(int phase, int p, u64 mem_addr) const {
  assert(phase < output_phases() && p < cfg_.procs);
  const u64 slots =
      cfg_.pieces_per_proc * static_cast<u64>(cfg_.procs);
  const u64 block_base = static_cast<u64>(phase) * step_block_bytes();

  ExtentList file;
  file.reserve(cfg_.pieces_per_proc);
  for (u64 slot = 0; slot < slots; ++slot) {
    if (slot_owner(slot) == p) {
      file.push_back({block_base + slot * cfg_.piece_bytes, cfg_.piece_bytes});
    }
  }
  assert(file.size() == cfg_.pieces_per_proc);

  mpiio::RankIo io;
  io.view = mpiio::FileView(0, mpiio::Datatype::indexed(std::move(file)));
  io.mem_addr = mem_addr;
  io.memtype = memtype();
  io.view_offset = 0;
  io.bytes = bytes_per_proc_per_phase();
  return io;
}

}  // namespace pvfsib::workloads
