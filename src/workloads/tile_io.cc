#include "workloads/tile_io.h"

// Header-only workload; this TU anchors the library target.
