#include "core/transfer.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace pvfsib::core {

const char* to_string(XferScheme s) {
  switch (s) {
    case XferScheme::kMultipleMessage:
      return "multiple-message";
    case XferScheme::kPackUnpack:
      return "pack/unpack";
    case XferScheme::kRdmaGatherScatter:
      return "rdma-gather/scatter";
    case XferScheme::kHybrid:
      return "hybrid";
  }
  return "?";
}

namespace {

u64 stream_bytes(std::span<const MemSegment> segments) {
  u64 total = 0;
  for (const MemSegment& s : segments) total += s.length;
  return total;
}

}  // namespace

TransferOutcome NoncontigTransfer::push(TransferEndpoint& client,
                                        std::span<const MemSegment> segments,
                                        StagingBuffer& server, TimePoint ready,
                                        const TransferPolicy& policy) {
  return run(Dir::kPush, client, segments, server, ready, policy);
}

TransferOutcome NoncontigTransfer::pull(TransferEndpoint& client,
                                        std::span<const MemSegment> segments,
                                        StagingBuffer& server, TimePoint ready,
                                        const TransferPolicy& policy) {
  return run(Dir::kPull, client, segments, server, ready, policy);
}

TransferOutcome NoncontigTransfer::run(Dir dir, TransferEndpoint& client,
                                       std::span<const MemSegment> segments,
                                       StagingBuffer& server, TimePoint ready,
                                       const TransferPolicy& policy) {
  TransferOutcome out;
  const u64 total = stream_bytes(segments);
  if (total == 0) {
    out.status = invalid_argument("empty transfer");
    return out;
  }
  if (total > server.size) {
    out.status = invalid_argument(
        "transfer exceeds server staging buffer; chunk at the PVFS layer");
    return out;
  }

  XferScheme scheme = policy.scheme;
  if (scheme == XferScheme::kHybrid) {
    scheme = total <= policy.hybrid_threshold ? XferScheme::kPackUnpack
                                              : XferScheme::kRdmaGatherScatter;
  }
  switch (scheme) {
    case XferScheme::kMultipleMessage:
      return multiple_message(dir, client, segments, server, ready, policy);
    case XferScheme::kPackUnpack:
      return pack_unpack(dir, client, segments, server, ready, policy);
    case XferScheme::kRdmaGatherScatter:
      return gather_scatter(dir, client, segments, server, ready, policy);
    case XferScheme::kHybrid:
      break;  // resolved above
  }
  out.status = internal_error("unreachable transfer scheme");
  return out;
}

TransferOutcome NoncontigTransfer::multiple_message(
    Dir dir, TransferEndpoint& client, std::span<const MemSegment> segments,
    StagingBuffer& server, TimePoint ready, const TransferPolicy& policy) {
  (void)policy;
  TransferOutcome out;
  // Each buffer is pinned on its own (the scheme's defining property); a
  // warm pin-down cache turns this into the paper's "multiple, no reg".
  OgrOutcome reg =
      client.registrar->acquire(segments, RegStrategy::kIndividual);
  out.reg_cost = reg.cost;
  if (!reg.ok()) {
    out.status = reg.status;
    out.complete = ready + reg.cost;
    return out;
  }
  const TimePoint posted = ready + reg.cost;
  ib::TransferResult tr =
      dir == Dir::kPush
          ? fabric_.rdma_write_per_buffer(*client.hca, reg.sges, *server.hca,
                                          server.addr, server.rkey, posted)
          : fabric_.rdma_read_per_buffer(*client.hca, reg.sges, *server.hca,
                                         server.addr, server.rkey, posted);
  client.registrar->release(reg);
  out.status = tr.status;
  out.bytes = tr.bytes;
  out.complete = tr.complete;
  return out;
}

TransferOutcome NoncontigTransfer::pack_unpack(
    Dir dir, TransferEndpoint& client, std::span<const MemSegment> segments,
    StagingBuffer& server, TimePoint ready, const TransferPolicy& policy) {
  TransferOutcome out;
  assert(client.bounce_size > 0 && "pack/unpack requires a bounce buffer");
  vmem::AddressSpace& as = client.hca->address_space();
  TimePoint now = ready;

  u32 bounce_key = client.bounce_key;
  u64 dereg_bytes = 0;
  if (!policy.pack_preregistered) {
    // "pack, reg": the temporary buffer is registered for this operation.
    ib::RegAttempt reg =
        client.hca->register_memory(client.bounce_addr, client.bounce_size);
    out.reg_cost += reg.cost;
    now += reg.cost;
    if (!reg.ok()) {
      out.status = reg.status;
      out.complete = now;
      return out;
    }
    bounce_key = reg.key;
    dereg_bytes = client.bounce_size;
  }

  // Stream the segments through the bounce buffer window by window. The
  // single bounce buffer serializes pack and wire phases (no pipelining).
  u64 stream_off = 0;
  size_t si = 0;
  u64 sconsumed = 0;
  const u64 total = stream_bytes(segments);
  while (stream_off < total) {
    const u64 window = std::min(client.bounce_size, total - stream_off);
    if (dir == Dir::kPush) {
      // Pack client segments into the bounce buffer.
      u64 filled = 0;
      while (filled < window) {
        const MemSegment& s = segments[si];
        const u64 n = std::min(s.length - sconsumed, window - filled);
        std::memcpy(as.data(client.bounce_addr + filled),
                    as.data(s.addr + sconsumed), n);
        filled += n;
        sconsumed += n;
        if (sconsumed == s.length) {
          ++si;
          sconsumed = 0;
        }
      }
      const Duration pack = mem_.copy_cost(window);
      out.copy_cost += pack;
      now += pack;
      const ib::Sge sge{client.bounce_addr, window, bounce_key};
      ib::TransferResult tr =
          fabric_.rdma_write(*client.hca, sge, *server.hca,
                             server.addr + stream_off, server.rkey, now);
      if (!tr.ok()) {
        out.status = tr.status;
        out.complete = max(tr.complete, now);
        return out;
      }
      now = tr.complete;
    } else {
      // Fetch a window into the bounce buffer, then unpack.
      const ib::Sge sge{client.bounce_addr, window, bounce_key};
      ib::TransferResult tr =
          fabric_.rdma_read(*client.hca, sge, *server.hca,
                            server.addr + stream_off, server.rkey, now);
      if (!tr.ok()) {
        out.status = tr.status;
        out.complete = max(tr.complete, now);
        return out;
      }
      now = tr.complete;
      u64 drained = 0;
      while (drained < window) {
        const MemSegment& s = segments[si];
        const u64 n = std::min(s.length - sconsumed, window - drained);
        std::memcpy(as.data(s.addr + sconsumed),
                    as.data(client.bounce_addr + drained), n);
        drained += n;
        sconsumed += n;
        if (sconsumed == s.length) {
          ++si;
          sconsumed = 0;
        }
      }
      const Duration unpack = mem_.copy_cost(window);
      out.copy_cost += unpack;
      now += unpack;
    }
    stream_off += window;
  }

  if (dereg_bytes > 0) {
    const Duration dereg = client.hca->deregister(bounce_key);
    out.reg_cost += dereg;
    now += dereg;
  }
  out.status = Status::ok();
  out.bytes = total;
  out.complete = now;
  return out;
}

TransferOutcome NoncontigTransfer::gather_scatter(
    Dir dir, TransferEndpoint& client, std::span<const MemSegment> segments,
    StagingBuffer& server, TimePoint ready, const TransferPolicy& policy) {
  TransferOutcome out;
  OgrOutcome reg = client.registrar->acquire(segments, policy.reg_strategy);
  out.reg_cost = reg.cost;
  if (!reg.ok()) {
    out.status = reg.status;
    out.complete = ready + reg.cost;
    return out;
  }
  TimePoint now = ready + reg.cost;

  // One gather/scatter op covers the whole stream (the fabric chunks into
  // max_sge work requests internally); no staging windows are needed since
  // the stream fits the server buffer (checked by run()).
  ib::TransferResult tr =
      dir == Dir::kPush
          ? fabric_.rdma_write_gather(*client.hca, reg.sges, *server.hca,
                                      server.addr, server.rkey, now)
          : fabric_.rdma_read_scatter(*client.hca, reg.sges, *server.hca,
                                      server.addr, server.rkey, now);
  client.registrar->release(reg);
  if (!tr.ok()) {
    out.status = tr.status;
    // The errored WR still completed at a point in time; callers that
    // retry must not observe a completion before they started.
    out.complete = max(tr.complete, now);
    return out;
  }
  out.status = Status::ok();
  out.bytes = tr.bytes;
  out.complete = tr.complete;
  return out;
}

}  // namespace pvfsib::core
