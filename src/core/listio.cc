#include "core/listio.h"

#include <algorithm>
#include <cassert>

namespace pvfsib::core {

u64 total_bytes(const MemSegmentList& segs) {
  u64 sum = 0;
  for (const MemSegment& s : segs) sum += s.length;
  return sum;
}

Status validate(const ListIoRequest& req) {
  if (req.mem.empty() || req.file.empty()) {
    return invalid_argument("list I/O request with empty mem or file list");
  }
  for (const MemSegment& s : req.mem) {
    if (s.length == 0) return invalid_argument("zero-length memory segment");
    if (s.addr == 0) return invalid_argument("null memory segment");
  }
  for (const Extent& e : req.file) {
    if (e.length == 0) return invalid_argument("zero-length file extent");
  }
  if (total_bytes(req.mem) != total_length(req.file)) {
    return invalid_argument("memory and file byte totals differ");
  }
  return Status::ok();
}

std::vector<ServerSubRequest> partition(const ListIoRequest& req,
                                        const StripeMap& map) {
  assert(validate(req).is_ok());

  std::vector<ServerSubRequest> out(map.server_count());
  for (u32 s = 0; s < map.server_count(); ++s) out[s].server = s;

  // Walk the file stream, splitting pieces at stripe boundaries, while
  // consuming the memory stream in lockstep.
  size_t mi = 0;       // current memory segment
  u64 mconsumed = 0;   // bytes consumed of mem[mi]
  const u64 ss = map.stripe_size();

  auto take_mem = [&](ServerSubRequest& dst, u64 want) {
    while (want > 0) {
      assert(mi < req.mem.size());
      const MemSegment& m = req.mem[mi];
      const u64 avail = m.length - mconsumed;
      const u64 n = std::min(avail, want);
      const u64 addr = m.addr + mconsumed;
      // Extend the previous slice when contiguous in memory too.
      if (!dst.mem.empty() &&
          dst.mem.back().addr + dst.mem.back().length == addr) {
        dst.mem.back().length += n;
      } else {
        dst.mem.push_back({addr, n});
      }
      mconsumed += n;
      want -= n;
      if (mconsumed == m.length) {
        ++mi;
        mconsumed = 0;
      }
    }
  };

  for (const Extent& fe : req.file) {
    u64 pos = fe.offset;
    u64 left = fe.length;
    while (left > 0) {
      const u64 in_stripe = ss - pos % ss;
      const u64 n = std::min(left, in_stripe);
      ServerSubRequest& dst = out[map.server_of(pos)];
      const u64 local = map.local_offset(pos);
      // PVFS merges accesses only when they are contiguous in the local file.
      if (!dst.file.empty() && dst.file.back().end() == local) {
        dst.file.back().length += n;
      } else {
        dst.file.push_back({local, n});
      }
      take_mem(dst, n);
      pos += n;
      left -= n;
    }
  }

  std::erase_if(out, [](const ServerSubRequest& r) { return r.empty(); });
  return out;
}

}  // namespace pvfsib::core
