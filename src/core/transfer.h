// Noncontiguous data transmission between a client's scattered list I/O
// buffers and a server's contiguous staging buffer (Section 4).
//
// Three schemes, plus the hybrid the paper finally adopts:
//
//   Multiple Message    one RDMA write/read per contiguous buffer
//   Pack/Unpack         memcpy through a bounce buffer, one big transfer
//                       (the bounce buffer may come from a pre-registered
//                       pool — the Fast-RDMA path — or be registered fresh)
//   RDMA Gather/Scatter one work request carrying up to 64 SGEs, buffers
//                       pinned via Optimistic Group Registration
//   Hybrid              Pack/Unpack below the PVFS stripe size (64 kB),
//                       Gather/Scatter above
//
// push() moves client memory -> server buffer (file writes); pull() moves
// server buffer -> client memory (file reads). Both chunk the stream when
// it exceeds the server staging buffer or the pack bounce buffer.
#pragma once

#include <span>

#include "common/config.h"
#include "common/sim_time.h"
#include "core/listio.h"
#include "core/ogr.h"
#include "ib/fabric.h"
#include "ib/mr_cache.h"

namespace pvfsib::core {

enum class XferScheme {
  kMultipleMessage,
  kPackUnpack,
  kRdmaGatherScatter,
  kHybrid,
};

const char* to_string(XferScheme s);

struct TransferPolicy {
  XferScheme scheme = XferScheme::kHybrid;
  RegStrategy reg_strategy = RegStrategy::kOgr;
  // Pack bounce buffer comes from a pre-registered pool ("pack, no reg");
  // false registers/deregisters it around every transfer ("pack, reg").
  bool pack_preregistered = true;
  u64 hybrid_threshold = 64 * kKiB;
};

// One side's fixed transfer resources: its HCA, pin-down cache, registrar
// and a pre-registered bounce buffer (the Fast-RDMA buffer).
struct TransferEndpoint {
  ib::Hca* hca = nullptr;
  ib::MrCache* cache = nullptr;
  GroupRegistrar* registrar = nullptr;
  u64 bounce_addr = 0;
  u64 bounce_size = 0;
  u32 bounce_key = 0;
};

// The server side of a transfer: a contiguous registered staging buffer.
struct StagingBuffer {
  ib::Hca* hca = nullptr;
  u64 addr = 0;
  u64 size = 0;
  u32 rkey = 0;
};

struct TransferOutcome {
  Status status;
  TimePoint complete = TimePoint::origin();
  u64 bytes = 0;
  Duration reg_cost = Duration::zero();
  Duration copy_cost = Duration::zero();

  bool ok() const { return status.is_ok(); }
};

class NoncontigTransfer {
 public:
  NoncontigTransfer(ib::Fabric& fabric, const MemParams& mem)
      : fabric_(fabric), mem_(mem) {}

  // Client segments -> server staging buffer, starting at buffer offset 0.
  TransferOutcome push(TransferEndpoint& client,
                       std::span<const MemSegment> segments,
                       StagingBuffer& server, TimePoint ready,
                       const TransferPolicy& policy);

  // Server staging buffer (offset 0, `bytes` long) -> client segments.
  TransferOutcome pull(TransferEndpoint& client,
                       std::span<const MemSegment> segments,
                       StagingBuffer& server, TimePoint ready,
                       const TransferPolicy& policy);

 private:
  enum class Dir { kPush, kPull };

  TransferOutcome run(Dir dir, TransferEndpoint& client,
                      std::span<const MemSegment> segments,
                      StagingBuffer& server, TimePoint ready,
                      const TransferPolicy& policy);

  TransferOutcome multiple_message(Dir dir, TransferEndpoint& client,
                                   std::span<const MemSegment> segments,
                                   StagingBuffer& server, TimePoint ready,
                                   const TransferPolicy& policy);
  TransferOutcome pack_unpack(Dir dir, TransferEndpoint& client,
                              std::span<const MemSegment> segments,
                              StagingBuffer& server, TimePoint ready,
                              const TransferPolicy& policy);
  TransferOutcome gather_scatter(Dir dir, TransferEndpoint& client,
                                 std::span<const MemSegment> segments,
                                 StagingBuffer& server, TimePoint ready,
                                 const TransferPolicy& policy);

  ib::Fabric& fabric_;
  MemParams mem_;
};

}  // namespace pvfsib::core
