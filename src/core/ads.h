// Active Data Sieving (Section 5): server-side data sieving guarded by an
// explicit cost model.
//
// When a list I/O request reaches an I/O node, the node compares the
// modelled cost of servicing the N noncontiguous accesses separately
// against the cost of one large sieved access (paper Table 1 parameters):
//
//   T_read  = N*(O_r + O_seek) + sum_i S_i / B_r(S_i)
//   T_write = N*(O_w + O_seek) + sum_i S_i / B_w(S_i)
//   T_dsr   = O_r + O_seek + S_ds / B_r(S_ds)
//   T_dsw   = T_dsr + S_req/B_mem + O_lock + O_w + S_ds/B_w(S_ds) + O_unlock
//
// The model is deliberately conservative: bandwidths are the *uncached*
// media curves, so when it picks sieving, caching only widens the win.
//
// Execution plans: the sieve buffer is finite (the iod staging buffer), so
// sorted accesses are grouped into windows whose spans fit the buffer; each
// window is one (lseek, read) [plus one (lseek, write) for the RMW cycle],
// and every requested piece is located inside its window for gather-send or
// copy-in.
#pragma once

#include <vector>

#include "common/config.h"
#include "common/extent.h"
#include "common/sim_time.h"
#include "common/stats.h"

namespace pvfsib::core {

struct AdsConfig {
  u64 sieve_buffer_size = 4 * kMiB;
  bool enabled = true;  // hint "off" turns every request into separate access
  bool force = false;   // ablation: sieve regardless of the model
};

struct AdsDecision {
  bool sieve = false;
  Duration t_separate = Duration::zero();
  Duration t_sieve = Duration::zero();
  u64 s_req = 0;  // total bytes wanted
  u64 s_ds = 0;   // total bytes a sieved execution touches
};

class ActiveDataSieving {
 public:
  ActiveDataSieving(const DiskParams& disk, const FsParams& fs,
                    const MemParams& mem, AdsConfig cfg = {},
                    Stats* stats = nullptr);

  // Decide for a request's access list (any order; internally sorted).
  //
  // `file_size` is the iod-local stripe file's current size: sieve spans
  // beyond EOF cost no read in the RMW cycle (appending writes), one of the
  // server-side advantages the paper claims for ADS — the I/O node knows
  // the underlying file's state, a client-side implementation does not.
  // Defaults to "everything exists" (the fully conservative model).
  AdsDecision decide(const ExtentList& accesses, bool is_write,
                     u64 file_size = ~0ULL) const;

  // One requested piece as located inside a sieve window. `stream_off` is
  // the piece's position in the packed request data stream (request order),
  // `window_off` its position inside the window's sieve buffer.
  struct Piece {
    u32 access_index = 0;
    u64 window_off = 0;
    u64 stream_off = 0;
    u64 length = 0;
  };
  struct Window {
    Extent span;                // file range one sieved access covers
    std::vector<Piece> pieces;  // wanted data inside the window
  };

  // Split (a sorted view of) the accesses into sieve windows. Accesses
  // larger than the buffer are cut across windows.
  std::vector<Window> plan_windows(const ExtentList& accesses) const;

  // The four model terms (exposed for tests and the model-ablation bench).
  // `s_ds_read` is the portion of S_ds that actually exists on media (the
  // rest reads as zeros from the block map, for free).
  Duration t_read_separate(const ExtentList& accesses) const;
  Duration t_write_separate(const ExtentList& accesses) const;
  Duration t_read_sieved(u64 s_ds, u64 s_ds_read) const;
  Duration t_write_sieved(u64 s_req, u64 s_ds, u64 s_ds_read) const;

  // S_ds for the given accesses under the buffer-bounded window plan, and
  // the part of it below `file_size`.
  u64 sieved_bytes(const ExtentList& accesses) const;
  u64 sieved_readable_bytes(const ExtentList& accesses, u64 file_size) const;

  const AdsConfig& config() const { return cfg_; }
  // Ablation knobs (benches): bypass or disable the decision model.
  void set_force(bool v) { cfg_.force = v; }
  void set_enabled(bool v) { cfg_.enabled = v; }

 private:
  DiskParams disk_;
  FsParams fs_;
  MemParams mem_;
  AdsConfig cfg_;
  Stats* stats_;
};

}  // namespace pvfsib::core
