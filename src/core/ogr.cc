#include "core/ogr.h"

#include <algorithm>
#include <cassert>

namespace pvfsib::core {

namespace {

// Page-rounded extent of a memory segment.
Extent page_extent(const MemSegment& s) {
  const u64 lo = page_floor(s.addr);
  return {lo, page_ceil(s.addr + s.length) - lo};
}

// Resolver from registered cover extents to their keys.
class CoverIndex {
 public:
  void add(const Extent& e, u32 key) { covers_.push_back({e, key}); }

  void finalize() {
    std::sort(covers_.begin(), covers_.end(),
              [](const auto& a, const auto& b) {
                return a.first.offset < b.first.offset;
              });
  }

  // Key of a cover fully containing [addr, addr+len); 0 if none.
  u32 find(u64 addr, u64 len) const {
    // Last cover starting at or before addr; covers may abut but never
    // nest (they come from disjoint groups / disjoint mapped extents).
    auto it = std::upper_bound(
        covers_.begin(), covers_.end(), addr,
        [](u64 a, const auto& c) { return a < c.first.offset; });
    while (it != covers_.begin()) {
      --it;
      if (it->first.contains(Extent{addr, len})) return it->second;
      if (it->first.end() <= addr) break;
    }
    return 0;
  }

 private:
  std::vector<std::pair<Extent, u32>> covers_;
};

}  // namespace

GroupRegistrar::GroupRegistrar(ib::MrCache& cache, const OsParams& os,
                               OgrConfig cfg, Stats* stats)
    : cache_(cache), hca_(cache.hca()), os_(os), cfg_(cfg), stats_(stats) {}

bool GroupRegistrar::absorb_hole(u64 hole_pages) const {
  const RegParams& rp = hca_.reg_params();
  const Duration hole_cost =
      (rp.reg_per_page + rp.dereg_per_page) * static_cast<i64>(hole_pages);
  const Duration op_cost = rp.reg_base + rp.dereg_base;
  return hole_cost <= op_cost;
}

ExtentList GroupRegistrar::plan_groups(
    std::span<const MemSegment> segments) const {
  ExtentList exts;
  exts.reserve(segments.size());
  for (const MemSegment& s : segments) exts.push_back(page_extent(s));
  sort_by_offset(exts);
  // First merge touching/overlapping page ranges, then absorb holes the
  // cost model deems cheaper to pin than to pay another registration.
  ExtentList merged = coalesce(exts);
  ExtentList groups;
  for (const Extent& e : merged) {
    if (!groups.empty()) {
      const u64 hole = e.offset - groups.back().end();
      if (absorb_hole(hole / kPageSize)) {
        groups.back().length = e.end() - groups.back().offset;
        continue;
      }
    }
    groups.push_back(e);
  }
  return groups;
}

bool GroupRegistrar::pin_region(const Extent& region, OgrOutcome& out) {
  ib::MrCache::Lookup lk = cache_.acquire(region.offset, region.length);
  out.cost += lk.cost;
  if (!lk.ok()) {
    out.status = lk.status;
    return false;
  }
  if (lk.hit) {
    ++out.cache_hits;
  } else {
    ++out.registrations;
  }
  out.keys.push_back(lk.key);
  return true;
}

bool GroupRegistrar::recover_group(const Extent& group,
                                   std::span<const Extent> members_sorted,
                                   OgrOutcome& out) {
  if (stats_ != nullptr) stats_->add(stat::kOgrFallbacks);
  if (members_sorted.size() <= cfg_.individual_fallback_max) {
    // Cheap path: pin the few buffers as given.
    for (const Extent& m : members_sorted) {
      if (!pin_region(m, out)) return false;
    }
    return true;
  }
  // Ask the OS for the true allocation extents inside the group span.
  const vmem::AddressSpace& as = hca_.address_space();
  const ExtentList mapped = as.allocated_within(group);
  ++out.os_queries;
  if (stats_ != nullptr) stats_->add(stat::kOgrOsQueries);
  switch (cfg_.query) {
    case HoleQuery::kKernelSyscall:
      out.cost += os_.holequery_cost(mapped.size());
      break;
    case HoleQuery::kProcfs:
      out.cost += os_.procfs_query;
      break;
    case HoleQuery::kMincore:
      out.cost += os_.mincore_cost(pages_for(group.length));
      break;
  }
  for (const Extent& m : mapped) {
    if (!pin_region(m, out)) return false;
  }
  // Every member must now be covered; if one is not, the buffer itself was
  // unmapped — a caller error.
  for (const Extent& m : members_sorted) {
    if (!as.range_allocated(m.offset, m.length)) {
      out.status = permission_denied("list I/O buffer is not mapped memory");
      return false;
    }
  }
  return true;
}

OgrOutcome GroupRegistrar::acquire(std::span<const MemSegment> segments) {
  return acquire(segments, cfg_.strategy);
}

OgrOutcome GroupRegistrar::acquire(std::span<const MemSegment> segments,
                                   RegStrategy strategy) {
  OgrOutcome out;
  if (segments.empty()) {
    out.status = invalid_argument("no segments to register");
    return out;
  }

  CoverIndex index;

  switch (strategy) {
    case RegStrategy::kIndividual: {
      for (const MemSegment& s : segments) {
        const Extent e = page_extent(s);
        if (!pin_region(e, out)) return out;
        index.add(e, out.keys.back());
      }
      break;
    }
    case RegStrategy::kWholeRange: {
      ExtentList exts;
      for (const MemSegment& s : segments) exts.push_back(page_extent(s));
      const Extent span = bounding_span(exts);
      if (!pin_region(span, out)) return out;  // the naive scheme's flaw
      index.add(span, out.keys.back());
      break;
    }
    case RegStrategy::kOgr: {
      // Sorted member page-extents, for recovery bookkeeping.
      ExtentList members;
      members.reserve(segments.size());
      for (const MemSegment& s : segments) members.push_back(page_extent(s));
      sort_by_offset(members);
      members = coalesce(members);

      const ExtentList groups = plan_groups(segments);
      if (stats_ != nullptr) {
        stats_->add(stat::kOgrGroups, static_cast<i64>(groups.size()));
      }
      for (const Extent& g : groups) {
        const size_t keys_before = out.keys.size();
        ib::MrCache::Lookup lk = cache_.acquire(g.offset, g.length);
        out.cost += lk.cost;
        if (lk.ok()) {
          if (lk.hit) {
            ++out.cache_hits;
          } else {
            ++out.registrations;
          }
          out.keys.push_back(lk.key);
        } else if (lk.status.code() == ErrorCode::kPermissionDenied) {
          // Optimism failed: holes inside the group are unmapped.
          ++out.failed_attempts;
          ExtentList in_group = intersect(g, members);
          if (!recover_group(g, in_group, out)) return out;
        } else {
          out.status = lk.status;
          return out;
        }
        for (size_t i = keys_before; i < out.keys.size(); ++i) {
          index.add(hca_.find_region(out.keys[i])->range, out.keys[i]);
        }
      }
      break;
    }
  }

  index.finalize();
  out.sges.reserve(segments.size());
  for (const MemSegment& s : segments) {
    const u32 key = index.find(s.addr, s.length);
    if (key == 0) {
      out.status = internal_error("segment not covered by any registration");
      return out;
    }
    out.sges.push_back(ib::Sge{s.addr, s.length, key});
  }
  out.status = Status::ok();
  return out;
}

OgrOutcome GroupRegistrar::acquire_declared(
    std::span<const MemSegment> segments, const Extent& allocation) {
  OgrOutcome out;
  if (segments.empty()) {
    out.status = invalid_argument("no segments to register");
    return out;
  }
  for (const MemSegment& s : segments) {
    if (!allocation.contains(Extent{s.addr, s.length})) {
      out.status = invalid_argument(
          "segment outside the declared allocation: " +
          to_string(Extent{s.addr, s.length}));
      return out;
    }
  }
  if (!pin_region(allocation, out)) return out;
  const u32 key = out.keys.back();
  out.sges.reserve(segments.size());
  for (const MemSegment& s : segments) {
    out.sges.push_back(ib::Sge{s.addr, s.length, key});
  }
  out.status = Status::ok();
  return out;
}

void GroupRegistrar::release(const OgrOutcome& outcome) {
  for (u32 key : outcome.keys) cache_.release(key);
}

}  // namespace pvfsib::core
