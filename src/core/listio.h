// List I/O request representation (the pvfs_read_list / pvfs_write_list
// interface of Ching et al. that the paper builds on) and its partitioning
// across striped I/O servers.
//
// A list I/O request pairs a set of client memory segments with a set of
// file extents; the byte streams described by the two sides must have equal
// length. Partitioning walks both lists in stream order, splits at stripe
// boundaries, and emits one sub-request per I/O server whose file extents
// are in that server's local offsets, with the matching memory slices —
// merging local file extents that land adjacent (the only merge PVFS does).
#pragma once

#include <span>
#include <vector>

#include "common/extent.h"
#include "common/status.h"
#include "common/types.h"

namespace pvfsib::core {

// A contiguous region of client virtual memory.
struct MemSegment {
  u64 addr = 0;
  u64 length = 0;

  friend bool operator==(const MemSegment&, const MemSegment&) = default;
};

using MemSegmentList = std::vector<MemSegment>;

u64 total_bytes(const MemSegmentList& segs);

struct ListIoRequest {
  MemSegmentList mem;  // destinations (read) or sources (write)
  ExtentList file;     // logical file extents, in stream order

  u64 bytes() const { return total_length(file); }
};

// Both sides non-empty segments, equal totals.
Status validate(const ListIoRequest& req);

// Round-robin striping map: logical file offsets -> (server, local offset).
class StripeMap {
 public:
  StripeMap(u64 stripe_size, u32 server_count)
      : stripe_size_(stripe_size), server_count_(server_count) {}

  u32 server_of(u64 logical_offset) const {
    return static_cast<u32>((logical_offset / stripe_size_) % server_count_);
  }
  u64 local_offset(u64 logical_offset) const {
    const u64 stripe = logical_offset / stripe_size_;
    return (stripe / server_count_) * stripe_size_ + logical_offset % stripe_size_;
  }
  u64 logical_offset(u32 server, u64 local) const {
    const u64 local_stripe = local / stripe_size_;
    return (local_stripe * server_count_ + server) * stripe_size_ +
           local % stripe_size_;
  }

  u64 stripe_size() const { return stripe_size_; }
  u32 server_count() const { return server_count_; }

 private:
  u64 stripe_size_;
  u32 server_count_;
};

// The piece of a list I/O request that one I/O server processes.
struct ServerSubRequest {
  u32 server = 0;
  ExtentList file;     // extents in the server's *local* file, stream order
  MemSegmentList mem;  // matching client memory slices, stream order

  u64 bytes() const { return total_length(file); }
  bool empty() const { return file.empty(); }
};

// Split `req` across servers. Returns one entry per server that receives
// any data (ordered by server id). Adjacent local file extents are merged;
// memory slices are kept exactly aligned with the file stream.
std::vector<ServerSubRequest> partition(const ListIoRequest& req,
                                        const StripeMap& map);

}  // namespace pvfsib::core
