#include "core/ads.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace pvfsib::core {

namespace {

// Access indices sorted by file offset, with each access's packed-stream
// offset (request order) attached.
struct OrderedAccess {
  Extent extent;
  u32 index = 0;
  u64 stream_off = 0;
};

std::vector<OrderedAccess> order_accesses(const ExtentList& accesses) {
  std::vector<OrderedAccess> out;
  out.reserve(accesses.size());
  u64 stream = 0;
  for (u32 i = 0; i < accesses.size(); ++i) {
    out.push_back({accesses[i], i, stream});
    stream += accesses[i].length;
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const OrderedAccess& a, const OrderedAccess& b) {
                     return a.extent.offset < b.extent.offset;
                   });
  return out;
}

}  // namespace

ActiveDataSieving::ActiveDataSieving(const DiskParams& disk,
                                     const FsParams& fs, const MemParams& mem,
                                     AdsConfig cfg, Stats* stats)
    : disk_(disk), fs_(fs), mem_(mem), cfg_(cfg), stats_(stats) {}

Duration ActiveDataSieving::t_read_separate(const ExtentList& accesses) const {
  Duration t = (fs_.read_overhead + fs_.seek_overhead) *
               static_cast<i64>(accesses.size());
  for (const Extent& e : accesses) {
    t += transfer_time(e.length, disk_.media_bw(e.length, /*write=*/false));
  }
  return t;
}

Duration ActiveDataSieving::t_write_separate(const ExtentList& accesses) const {
  Duration t = (fs_.write_overhead + fs_.seek_overhead) *
               static_cast<i64>(accesses.size());
  for (const Extent& e : accesses) {
    t += transfer_time(e.length, disk_.media_bw(e.length, /*write=*/true));
  }
  return t;
}

Duration ActiveDataSieving::t_read_sieved(u64 s_ds, u64 s_ds_read) const {
  // The seek/read syscall is issued regardless; only existing bytes touch
  // the media (the bandwidth curve is still evaluated at the full span, as
  // the head passes over it).
  return fs_.read_overhead + fs_.seek_overhead +
         transfer_time(s_ds_read, disk_.media_bw(s_ds, /*write=*/false));
}

Duration ActiveDataSieving::t_write_sieved(u64 s_req, u64 s_ds,
                                           u64 s_ds_read) const {
  return t_read_sieved(s_ds, s_ds_read) + mem_.copy_cost(s_req) +
         fs_.lock_overhead + fs_.write_overhead +
         transfer_time(s_ds, disk_.media_bw(s_ds, /*write=*/true)) +
         fs_.unlock_overhead;
}

u64 ActiveDataSieving::sieved_bytes(const ExtentList& accesses) const {
  u64 total = 0;
  for (const Window& w : plan_windows(accesses)) total += w.span.length;
  return total;
}

u64 ActiveDataSieving::sieved_readable_bytes(const ExtentList& accesses,
                                             u64 file_size) const {
  u64 total = 0;
  for (const Window& w : plan_windows(accesses)) {
    if (w.span.offset >= file_size) continue;
    total += std::min(w.span.end(), file_size) - w.span.offset;
  }
  return total;
}

AdsDecision ActiveDataSieving::decide(const ExtentList& accesses,
                                      bool is_write, u64 file_size) const {
  AdsDecision d;
  d.s_req = total_length(accesses);
  d.s_ds = sieved_bytes(accesses);
  const u64 s_ds_read = sieved_readable_bytes(accesses, file_size);
  d.t_separate =
      is_write ? t_write_separate(accesses) : t_read_separate(accesses);
  d.t_sieve = is_write ? t_write_sieved(d.s_req, d.s_ds, s_ds_read)
                       : t_read_sieved(d.s_ds, s_ds_read);
  if (!cfg_.enabled) {
    d.sieve = false;
  } else if (cfg_.force) {
    d.sieve = accesses.size() > 1;
  } else {
    // Sieving a single access is pure overhead; otherwise trust the model.
    d.sieve = accesses.size() > 1 && d.t_sieve < d.t_separate;
  }
  if (stats_ != nullptr) {
    stats_->add(d.sieve ? stat::kAdsSieved : stat::kAdsSeparate);
    if (d.sieve) {
      stats_->add(stat::kAdsExtraBytes, static_cast<i64>(d.s_ds - d.s_req));
    }
  }
  return d;
}

std::vector<ActiveDataSieving::Window> ActiveDataSieving::plan_windows(
    const ExtentList& accesses) const {
  std::vector<Window> out;
  const u64 buf = cfg_.sieve_buffer_size;
  assert(buf >= kPageSize);

  Window cur;
  bool open = false;
  auto flush = [&] {
    if (open) {
      out.push_back(std::move(cur));
      cur = Window{};
      open = false;
    }
  };

  for (const OrderedAccess& a : order_accesses(accesses)) {
    u64 off = a.extent.offset;
    u64 left = a.extent.length;
    u64 stream = a.stream_off;
    while (left > 0) {
      if (open && off + 1 > cur.span.offset + buf) flush();
      if (!open) {
        cur.span = {off, 0};
        open = true;
      }
      // How much of this access fits into the current window?
      const u64 room = cur.span.offset + buf - off;
      const u64 n = std::min(room, left);
      cur.span.length = std::max(cur.span.length, off + n - cur.span.offset);
      cur.pieces.push_back(Piece{a.index, off - cur.span.offset, stream, n});
      off += n;
      stream += n;
      left -= n;
      if (off == cur.span.offset + buf && left > 0) flush();
    }
  }
  flush();
  return out;
}

}  // namespace pvfsib::core
