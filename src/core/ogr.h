// Optimistic Group Registration (Section 4.2.2 / 4.3).
//
// Registering every list I/O buffer individually is ruinously expensive
// (T = a*pages + b per buffer, b dominating for small rows), while blindly
// registering the bounding span can fail on unallocated holes or pin far too
// much memory. OGR:
//
//   1. sorts the buffers and greedily groups neighbours whenever absorbing
//      the hole between them costs less than a second registration
//      ((a_reg + a_dereg) * hole_pages <= b_reg + b_dereg);
//   2. optimistically registers each candidate group in one verb call;
//   3. on failure (unmapped pages inside the group) either falls back to
//      per-buffer registration (few buffers) or queries the OS for the true
//      allocation extents (the paper's custom syscall, ~70 us per ~1000
//      holes; or /proc/$pid/maps at ~1100 us) and registers exactly those.
//
// The resulting SGE list is returned in the caller's original segment order
// — the gather/scatter data stream must not be reordered by registration.
#pragma once

#include <span>
#include <vector>

#include "common/config.h"
#include "common/sim_time.h"
#include "common/stats.h"
#include "core/listio.h"
#include "ib/mr_cache.h"
#include "ib/verbs.h"

namespace pvfsib::core {

// The "Ideal / no-reg" cases of the paper are any strategy with a warm
// pin-down cache; benches control cache warmth rather than a strategy.
enum class RegStrategy {
  kIndividual,  // one registration per buffer
  kWholeRange,  // naive single registration of the bounding span
  kOgr,         // the paper's scheme
};

// How OGR discovers true allocation boundaries after an optimistic failure
// (Section 4.3 lists all three).
enum class HoleQuery {
  kKernelSyscall,  // the paper's custom syscall (~70 us per ~1000 holes)
  kProcfs,         // reading /proc/$pid/maps (~1100 us)
  kMincore,        // portable residency probing, per-page cost
};

struct OgrConfig {
  // On optimistic failure, groups with at most this many buffers are
  // registered individually instead of paying an OS query.
  u64 individual_fallback_max = 8;
  HoleQuery query = HoleQuery::kKernelSyscall;
  RegStrategy strategy = RegStrategy::kOgr;
};

struct OgrOutcome {
  Status status;
  // One SGE per input segment, in input order, lkeys resolved.
  std::vector<ib::Sge> sges;
  // Keys this call pinned (acquired from the cache); release when done.
  std::vector<u32> keys;
  Duration cost = Duration::zero();
  u64 registrations = 0;  // successful register verbs issued
  u64 failed_attempts = 0;
  u64 os_queries = 0;
  u64 cache_hits = 0;

  bool ok() const { return status.is_ok(); }
};

class GroupRegistrar {
 public:
  // `cache` is the client's pin-down cache; `os` provides hole-query costs.
  GroupRegistrar(ib::MrCache& cache, const OsParams& os, OgrConfig cfg = {},
                 Stats* stats = nullptr);

  // Pin all segments and produce the SGE list. `strategy` overrides the
  // configured registration strategy for this call (the transfer engines
  // pick per-policy).
  OgrOutcome acquire(std::span<const MemSegment> segments);
  OgrOutcome acquire(std::span<const MemSegment> segments,
                     RegStrategy strategy);

  // Application-aware registration (Section 4.2.1, second variant): the
  // application declares the actual allocation its buffers came from (e.g.
  // the whole malloc'd array). One pin of that region covers every
  // segment — no grouping, no optimism, no OS queries. Fails cleanly if a
  // segment lies outside the declared allocation or the allocation itself
  // is not fully mapped.
  OgrOutcome acquire_declared(std::span<const MemSegment> segments,
                              const Extent& allocation);

  // Release the keys acquire() pinned.
  void release(const OgrOutcome& outcome);

  // The candidate grouping alone (exposed for tests/benches): bounding
  // extents of each group of the *sorted* segments.
  ExtentList plan_groups(std::span<const MemSegment> segments) const;

  const OgrConfig& config() const { return cfg_; }

 private:
  // Should the hole between two page-extents be absorbed into one group?
  bool absorb_hole(u64 hole_pages) const;

  // Pin one region through the cache, tracking stats into `out`.
  // Returns false (with status set) on hard failure.
  bool pin_region(const Extent& region, OgrOutcome& out);

  // Handle an optimistically-registered group that failed: individual
  // buffers or OS query + exact registration.
  bool recover_group(const Extent& group,
                     std::span<const Extent> members_sorted, OgrOutcome& out);

  ib::MrCache& cache_;
  ib::Hca& hca_;
  OsParams os_;
  OgrConfig cfg_;
  Stats* stats_;
};

}  // namespace pvfsib::core
