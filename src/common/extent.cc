#include "common/extent.h"

#include <cassert>
#include <cstdio>

namespace pvfsib {

u64 total_length(const ExtentList& list) {
  u64 sum = 0;
  for (const Extent& e : list) sum += e.length;
  return sum;
}

Extent bounding_span(const ExtentList& list) {
  if (list.empty()) return {};
  u64 lo = list.front().offset;
  u64 hi = list.front().end();
  for (const Extent& e : list) {
    lo = std::min(lo, e.offset);
    hi = std::max(hi, e.end());
  }
  return {lo, hi - lo};
}

bool is_sorted_disjoint(const ExtentList& list) {
  for (size_t i = 1; i < list.size(); ++i) {
    if (list[i].offset < list[i - 1].end()) return false;
  }
  return true;
}

void sort_by_offset(ExtentList& list) {
  std::stable_sort(list.begin(), list.end(),
                   [](const Extent& a, const Extent& b) {
                     return a.offset < b.offset;
                   });
}

ExtentList coalesce(const ExtentList& sorted, u64 merge_gap) {
  ExtentList out;
  out.reserve(sorted.size());
  for (const Extent& e : sorted) {
    if (e.empty()) continue;
    if (!out.empty() && e.offset <= out.back().end() + merge_gap) {
      out.back().length = std::max(out.back().end(), e.end()) -
                          out.back().offset;
    } else {
      out.push_back(e);
    }
  }
  return out;
}

ExtentList intersect(const Extent& e, const ExtentList& list) {
  ExtentList out;
  for (const Extent& x : list) {
    const u64 lo = std::max(e.offset, x.offset);
    const u64 hi = std::min(e.end(), x.end());
    if (lo < hi) out.push_back({lo, hi - lo});
  }
  return out;
}

ExtentList holes_within(const Extent& within, const ExtentList& list) {
  assert(is_sorted_disjoint(list));
  ExtentList out;
  u64 cursor = within.offset;
  for (const Extent& x : list) {
    const u64 lo = std::max(within.offset, x.offset);
    const u64 hi = std::min(within.end(), x.end());
    if (lo >= hi) continue;  // outside the window
    if (lo > cursor) out.push_back({cursor, lo - cursor});
    cursor = std::max(cursor, hi);
  }
  if (cursor < within.end()) out.push_back({cursor, within.end() - cursor});
  return out;
}

ExtentList split_at_boundaries(const ExtentList& list, u64 boundary) {
  assert(boundary > 0);
  ExtentList out;
  out.reserve(list.size());
  for (const Extent& e : list) {
    u64 pos = e.offset;
    while (pos < e.end()) {
      const u64 next = align_down(pos, boundary) + boundary;
      const u64 hi = std::min(e.end(), next);
      out.push_back({pos, hi - pos});
      pos = hi;
    }
  }
  return out;
}

std::string to_string(const Extent& e) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "[%llu,+%llu)",
                static_cast<unsigned long long>(e.offset),
                static_cast<unsigned long long>(e.length));
  return buf;
}

std::string to_string(const ExtentList& l) {
  std::string s = "{";
  for (size_t i = 0; i < l.size(); ++i) {
    if (i) s += ", ";
    s += to_string(l[i]);
  }
  s += "}";
  return s;
}

}  // namespace pvfsib
