// Every calibration constant of the simulation in one place.
//
// The defaults come from the paper's own measurements on its testbed
// (Section 4.2, 4.3, 6.1, 6.2: Mellanox InfiniHost HCA numbers, the
// registration cost model T = a*p + b, the kernel hole-query syscall,
// Table 2 network performance and Table 3 ext3 performance). Parameters the
// paper does not publish (syscall overheads, seek costs, cache geometry) are
// set to plausible 2003-era Linux/ATA values and are varied in the
// sensitivity tests.
#pragma once

#include <algorithm>
#include <vector>

#include "common/sim_time.h"
#include "common/types.h"

namespace pvfsib {

// --- InfiniBand fabric (Table 2) -------------------------------------------
struct NetParams {
  // One-way small-message latencies.
  Duration rdma_write_latency = Duration::us(6.0);
  Duration rdma_read_latency = Duration::us(12.4);
  Duration send_latency = Duration::us(6.8);  // channel semantics (MVAPICH)

  // Peak data bandwidths in MiB/s.
  double rdma_write_bw = 827.0;
  double rdma_read_bw = 816.0;
  double send_bw = 822.0;

  // Max gather/scatter entries per work request (InfiniBand spec value the
  // paper quotes). Longer lists are chunked into multiple WRs.
  u32 max_sge = 64;

  // Cost of posting one work request (descriptor build + doorbell). A
  // stream of WRs pipelines on the wire but each still pays this.
  Duration per_wr_overhead = Duration::us(0.8);

  // Extra per-WR cost charged for each SGE beyond the first: building and
  // DMA-fetching the descriptor list is not free on the HCA.
  Duration per_sge_overhead = Duration::us(0.06);

  // Penalty charged once per WR if any of its buffers is not 8-byte aligned
  // ("networks which use RDMA ... can generate large delays to compensate
  // for misaligned buffers").
  Duration misalign_penalty = Duration::us(2.0);
};

// --- Memory registration cost model (Section 4.2/4.3) ----------------------
struct RegParams {
  // T = a * pages + b.
  Duration reg_per_page = Duration::us(0.77);
  Duration reg_base = Duration::us(7.42);
  Duration dereg_per_page = Duration::us(0.23);
  Duration dereg_base = Duration::us(1.1);

  // Pin-down cache capacity. Exceeding either bound evicts LRU entries
  // (registration thrashing).
  u64 cache_max_entries = 4096;
  u64 cache_max_bytes = 512 * kMiB;

  Duration reg_cost(u64 bytes) const {
    return reg_base + reg_per_page * static_cast<i64>(pages_for(bytes));
  }
  Duration dereg_cost(u64 bytes) const {
    return dereg_base + dereg_per_page * static_cast<i64>(pages_for(bytes));
  }
};

// --- Host memory ------------------------------------------------------------
struct MemParams {
  double memcpy_bw = 1300.0;  // MiB/s (Section 3.2)

  Duration copy_cost(u64 bytes) const { return transfer_time(bytes, memcpy_bw); }
};

// --- OS services (Section 4.3) ----------------------------------------------
struct OsParams {
  // Custom kernel syscall walking vm structures: ~70 us for ~1000 holes.
  Duration holequery_base = Duration::us(5.0);
  Duration holequery_per_extent = Duration::us(0.065);
  // Reading /proc/$pid/maps instead: ~1100 us for the same query.
  Duration procfs_query = Duration::us(1100.0);
  // mincore()-style residency probing: one syscall plus a per-page bitmap
  // walk over the candidate span (the paper's portable fallback).
  Duration mincore_base = Duration::us(2.0);
  Duration mincore_per_page = Duration::us(0.02);

  Duration holequery_cost(u64 extents) const {
    return holequery_base + holequery_per_extent * static_cast<i64>(extents);
  }
  Duration mincore_cost(u64 pages) const {
    return mincore_base + mincore_per_page * static_cast<i64>(pages);
  }
};

// --- Disk and local file system (Table 3) -----------------------------------
struct DiskParams {
  // Media bandwidth asymptotes (MiB/s), reached for large requests.
  double media_read_bw = 21.0;   // bonnie uncached read: 20 MB/s
  double media_write_bw = 26.0;  // bonnie uncached write: 25 MB/s
  // Request size at which half the asymptotic bandwidth is reached;
  // models per-request firmware/DMA setup for small media accesses.
  // Calibrated so the ADS decision crossover for the block-column pattern
  // lands where the paper observed it (array size 2048, 2 KiB pieces).
  u64 media_half_size = 14 * kKiB;

  // Physical head movement. Short forward hops are "pass-overs": the head
  // stays on track while the platter spins past the gap, costing the same
  // as reading it. Genuine seeks ramp from track-to-track to the full
  // average seek with distance.
  u64 passover_max = 1 * kMiB;               // hops below this just spin by
  Duration seek_short = Duration::ms(1.0);   // track-to-nearby-track
  Duration seek_long = Duration::ms(8.5);    // average full seek
  u64 seek_long_distance = 1 * kGiB;         // distance at which long applies

  // Page-cache service bandwidths (Table 3 "with cache").
  double cache_read_bw = 1391.0;
  double cache_write_bw = 303.0;

  u64 cache_capacity = 512 * kMiB;  // node RAM given to the page cache

  // Effective media bandwidth for an access of `bytes`.
  double media_bw(u64 bytes, bool write) const {
    const double peak = write ? media_write_bw : media_read_bw;
    const double b = static_cast<double>(bytes);
    return peak * b / (b + static_cast<double>(media_half_size));
  }

  Duration seek_cost(u64 distance_bytes) const {
    if (distance_bytes == 0) return Duration::zero();
    if (distance_bytes < passover_max) {
      // The platter spins past the gap at media speed.
      return transfer_time(distance_bytes, media_read_bw);
    }
    const double f =
        std::min(1.0, static_cast<double>(distance_bytes) /
                          static_cast<double>(seek_long_distance));
    return seek_short + (seek_long - seek_short) * f;
  }
};

// --- File system call overheads (ADS model parameters, Table 1) -------------
struct FsParams {
  // Per-access fixed cost of read()/write() through VFS + ext3 on 2003-era
  // Linux: syscall entry, page lookup/allocation, journal bookkeeping and
  // block mapping. The paper's motivation — "the cost of making many
  // read/write system calls, each for small amounts of data, is extremely
  // high" — lives in these constants; together with media_half_size they
  // place the ADS decision crossover at 2 KiB pieces (array size 2048 in
  // Figure 6), where the paper observed it.
  Duration read_overhead = Duration::us(20.0);   // O_r
  Duration write_overhead = Duration::us(20.0);  // O_w
  Duration seek_overhead = Duration::us(2.0);    // O_seek (lseek syscall)
  Duration lock_overhead = Duration::us(2.0);    // O_lock
  Duration unlock_overhead = Duration::us(2.0);  // O_unlock
};

// --- PVFS ---------------------------------------------------------------
struct PvfsParams {
  u64 stripe_size = 64 * kKiB;       // PVFS default
  u32 default_iod_count = 4;
  u32 max_list_pairs = 128;          // file accesses per list request (PVFS default)
  u64 fast_rdma_threshold = 64 * kKiB;  // eager path for transfers below this
  u64 fast_rdma_buffer = 64 * kKiB;     // pre-registered bounce buffer size
  u64 staging_buffer = 4 * kMiB;        // iod staging / sieve buffer size
  u64 request_msg_bytes = 256;          // wire size of a request header
  u64 reply_msg_bytes = 64;             // wire size of a reply header
  u64 list_pair_wire_bytes = 16;        // per (offset,length) pair on the wire
  Duration iod_request_cpu = Duration::us(2.0);  // request decode on the iod
  // Client-library software cost per issued request (building the request,
  // job queueing, completion handling). Dominant for Multiple I/O's
  // thousands of tiny calls, negligible for list I/O's few rounds.
  Duration client_request_cpu = Duration::us(15.0);
  // Active metadata managers, each owning a hash shard of the namespace and
  // of the version plane (protocol.h shard_of/shard_of_handle). 1 is the
  // classic single-manager PVFS plane, byte-identical to before sharding.
  u32 metadata_shards = 1;
  // Model the manager's metadata service as a serially-reusable CPU
  // (sim::Resource busy-until queueing) instead of a fixed per-request
  // latency. Off by default: concurrent metadata requests then overlap
  // freely, which keeps the figure benches' timelines untouched. The
  // metadata-storm bench turns it on — queueing at the manager CPU is
  // exactly the contention sharding exists to relieve.
  bool meta_cpu_queue = false;
};

// --- Fault injection and recovery ------------------------------------------
// The simulated fabric/servers are perfectly healthy by default. A
// non-trivial FaultConfig turns on the fault plane (src/fault/): seeded
// random perturbations plus explicit (time, target, kind) schedules, and
// the client-side recovery machinery (per-round timeouts, exponential
// backoff, capped retries, idempotent round replay). With enabled() false
// every fault/recovery code path is skipped entirely, so zero-fault runs
// are byte-identical to a build without the fault plane.
enum class FaultKind {
  kIodCrash,     // iod down for [at, at + duration); requests arriving are lost
  kDropRequest,  // drop the next round request to `target` at/after `at`
  kDropReply,    // drop the next round reply from `target` at/after `at`
  // Drop the next metadata request arriving at metadata shard `target`'s
  // manager at/after `at` (shard 0 is the only shard — and the single
  // manager — when the plane is unsharded). The client's metadata retry
  // path notices via timeout and resends with capped backoff.
  kDropMetaRequest,
  // Metadata shard `target`'s primary manager down for [at, at + duration);
  // metadata requests arriving in the window are lost. With
  // FaultConfig::standby_takeover the shard's standby manager takes over
  // `manager_takeover_delay` after the window opens; otherwise clients just
  // burn their retry budgets.
  kManagerCrash,
  // The in-flight migration target for metadata shard `target` crashes at
  // `at` (one-shot, consumed by the migration's next stream round or its
  // cutover check). The migration aborts cleanly and the source — which
  // kept serving throughout — simply stays the shard's authority: target
  // crash falls back to the source. Ignored when no migration is streaming
  // for the shard at the time.
  kMigrationTargetCrash,
  // --- Silent data corruption (integrity plane) ---------------------------
  // None of these three are fail-stop: the iod stays up and keeps acking.
  // They are only *observable* through the stripe block checksums and the
  // version cross-check (verify-on-read, scrubber).
  // Flip bytes in a stored stripe on iod `target` at `at` (media decay,
  // firmware bug). The flipped range is chosen deterministically from the
  // injector's seeded rng among the bytes the iod holds.
  kBitFlip,
  // The next write round applied by iod `target` at/after `at` persists only
  // a prefix of its payload but is acked — and its header versioned — as if
  // complete (power-loss torn write).
  kTornWrite,
  // The next write round arriving at iod `target` at/after `at` is acked
  // with the round's version but never applied: neither data nor header
  // move (lost/misdirected write; the firmware lied).
  kLostWrite,
};

struct FaultEvent {
  FaultKind kind = FaultKind::kIodCrash;
  TimePoint at = TimePoint::origin();
  u32 target = 0;  // iod id; metadata shard for the manager/meta kinds
  Duration duration = Duration::zero();  // kIodCrash: restart delay
};

struct FaultConfig {
  u64 seed = 1;  // drives every random draw (common/rng.h)

  // Random per-message/per-transfer fault rates (probabilities in [0, 1]).
  double request_drop_rate = 0.0;  // round request vanishes (timeout+retry)
  double reply_drop_rate = 0.0;    // round applied, reply vanishes (replay)
  // Wire corruption/loss absorbed by the RC transport: the transfer
  // completes but pays a retransmit timeout plus a second wire occupancy.
  double retransmit_rate = 0.0;
  Duration retransmit_timeout = Duration::us(500.0);
  // Per-link latency spike (congestion, SM sweep): extra one-way latency.
  double latency_spike_rate = 0.0;
  Duration latency_spike = Duration::ms(1.0);
  // Metadata request to the manager vanishes (client retries with the same
  // backoff policy as data rounds).
  double meta_request_drop_rate = 0.0;
  // QP-level failures: completion errors surface through
  // TransferResult.status as kUnavailable; RNR forces receiver-not-ready.
  double completion_error_rate = 0.0;
  double rnr_rate = 0.0;

  // Silent-corruption rates, drawn once per applied write round at the iod
  // (independent draws, checked in the order lost < torn < flip so at most
  // one fires per round). Scheduled kBitFlip/kTornWrite/kLostWrite events
  // compose with these for deterministic placement.
  double bit_flip_rate = 0.0;    // flip a stored byte of the round just written
  double torn_write_rate = 0.0;  // persist a prefix, ack the whole round
  double lost_write_rate = 0.0;  // persist nothing, ack the whole round

  // Degraded disk: iod service time multiplied by `factor` in [from, until).
  struct DiskDegrade {
    u32 iod = 0;
    double factor = 1.0;
    TimePoint from = TimePoint::origin();
    TimePoint until = TimePoint::from_ns(INT64_MAX);
  };
  std::vector<DiskDegrade> disk_degrade;

  // Explicit deterministic fault schedule (applied before random draws).
  std::vector<FaultEvent> schedule;

  // --- Recovery policy (client side) ---------------------------------------
  // A round with no reply by `round_timeout` after issue is retried after
  // an exponential backoff, up to `max_retries` replays; then the operation
  // fails terminally. Only consulted when the fault plane is enabled.
  Duration round_timeout = Duration::ms(250.0);
  u32 max_retries = 6;
  Duration backoff_base = Duration::ms(1.0);
  double backoff_mult = 2.0;
  Duration backoff_cap = Duration::ms(50.0);

  // Adaptive per-iod round timeouts (Jacobson-style RTT estimation over
  // settled rounds): timeout = clamp(srtt + timeout_var_mult * rttvar,
  // [timeout_min, timeout_max]). Until an iod has a sample the static
  // round_timeout applies. Keeps failover from firing early against a
  // merely-slow replica while still detecting a crashed one quickly.
  bool adaptive_timeout = false;
  double timeout_var_mult = 4.0;
  Duration timeout_min = Duration::us(200.0);
  Duration timeout_max = Duration::sec(2.0);

  // --- Manager takeover -----------------------------------------------------
  // Place a standby manager that takes over when a kManagerCrash window
  // opens: it bumps the cluster-wide manager epoch, adopts the namespace,
  // rebuilds the staleness map conservatively from iod stripe headers and
  // resumes minting above the highest version observed. Clients fail
  // metadata requests over to it (pvfs.meta_failovers); stale-epoch mints
  // and notes are fenced (pvfs.epoch_rejections). Takeover fires
  // `manager_takeover_delay` after the crash window opens (failure
  // detection + rebuild time).
  bool standby_takeover = false;
  Duration manager_takeover_delay = Duration::ms(50.0);

  bool enabled() const {
    return request_drop_rate > 0.0 || reply_drop_rate > 0.0 ||
           retransmit_rate > 0.0 || latency_spike_rate > 0.0 ||
           completion_error_rate > 0.0 || rnr_rate > 0.0 ||
           meta_request_drop_rate > 0.0 || bit_flip_rate > 0.0 ||
           torn_write_rate > 0.0 || lost_write_rate > 0.0 ||
           !disk_degrade.empty() || !schedule.empty();
  }
};

// --- Stripe replication (primary/backup) ------------------------------------
// Classic PVFS keeps no redundancy: a crashed iod whose outage outlives the
// retry budget fails the operation. With factor > 1 the manager places each
// logical stripe server on `factor` distinct physical iods (the primary plus
// factor-1 backups, rotated chained-declustering style), the client fans
// every write round out to all replicas and settles on a quorum of acks, and
// reads fail over to the next live replica when the current one exhausts its
// retry budget. factor == 1 is bit-identical to the classic single-copy
// protocol.
struct ReplicationParams {
  u32 factor = 1;  // replicas per stripe server (must be <= physical iods)
  // Acks required to settle a write round; 0 means all `factor` replicas
  // (durable but a crashed backup stalls the round until it restarts or the
  // budget runs out). 1 trades durability for availability.
  u32 write_quorum = 0;
  // Reads re-route the remaining rounds of a chain to the next live replica
  // when the serving iod exhausts its retry budget.
  bool read_failover = true;

  // --- Version plane (per-stripe versions, read-repair, resync) -----------
  // Every replicated write round carries a monotonically increasing
  // per-stripe version; acks return the version the replica now holds, so
  // the manager's staleness map knows which replicas are current. The three
  // knobs below build repair paths on that map. All of it is structurally
  // absent at factor 1.
  //
  // Read-repair: a read served by a fresher replica while another replica's
  // recorded version trails schedules an async repair write of the just-read
  // data to the stale one (pvfs.read_repairs). Heals content
  // opportunistically; only write acks and resync mark a replica current in
  // the staleness map (a repair covers one round's byte range, not
  // necessarily everything its version covers).
  bool read_repair = true;
  // When several replicas are current, serve the read from the one with the
  // lowest adaptive-timeout srtt estimate instead of always the primary
  // (first slice of fault-aware scheduling). Off by default so fault-free
  // replicated runs keep serving from the primary, baseline-identical.
  bool read_bias = false;
  // Background re-replication: a crash-restarted iod asks the manager for
  // its stale stripes and pulls fresh data from a current peer in
  // rate-limited rounds (pvfs.resync_stripes/resync_rounds), returning the
  // chain to full factor F — so factor F survives F-1 *sequential* failures
  // with MTTR-bounded exposure. Opt-in: it changes post-restart timelines.
  bool resync = false;
  // Wire rate cap for resync pulls in MiB/s (also bounded by the fabric's
  // RDMA read bandwidth) and the chunk size of one resync round.
  double resync_bandwidth = 200.0;
  u64 resync_round_bytes = 256 * kKiB;

  // --- Integrity plane (block checksums, verify-on-read, scrubber) --------
  // Checksum granularity inside a stripe's local file: the iod stamps one
  // FNV-1a sum per `integrity_block_bytes`-sized block into the stripe
  // header (format v2; v1 headers were version-only) on every applied
  // write/repair/resync, and the read path recomputes sums over the blocks
  // a round touches. Stamping and verification are host-side work modeled
  // at zero simulated cost (overlapped with the disk phase), so fault-free
  // timelines are byte-identical with checksumming always on.
  u64 integrity_block_bytes = 16 * kKiB;
  // Background scrubber: a rate-limited periodic sweep per iod that walks
  // local stripe headers, re-verifies block checksums against stored bytes
  // and cross-checks header versions against the shard's manager, then
  // heals findings through the resync pull path. Opt-in (it schedules
  // periodic engine events and charges real disk reads); requires resync.
  // Started explicitly via Cluster::start_scrub(until) so the event queue
  // stays bounded.
  bool scrub = false;
  Duration scrub_interval = Duration::ms(10.0);  // one chunk per tick per iod
  u64 scrub_chunk_bytes = 256 * kKiB;            // bytes verified per tick

  u32 effective_quorum() const {
    return write_quorum == 0 ? factor : std::min(write_quorum, factor);
  }
};

// --- Live shard migration / resharding --------------------------------------
// Online ownership movement in the sharded metadata plane:
// Cluster::migrate_shard() drains one shard onto a fresh manager and
// Cluster::split_shards() grows the plane K -> 2K, both while clients keep
// racing (ARCHITECTURE.md "Live resharding"). The source streams its
// namespace + version/staleness/corrupt maps to the target in rate-limited
// rounds and keeps serving; a final fenced cutover bumps the shard epoch and
// flips the registry. Runs that never start a migration consult none of
// these knobs and stay byte-identical.
struct MigrationParams {
  // Wire rate cap for the snapshot stream in MiB/s (also bounded by the
  // fabric's control-path bandwidth) and the chunk size of one stream round.
  double stream_bandwidth = 400.0;
  u64 round_bytes = 64 * kKiB;
  // Pause between the last stream round and the cutover event (drain delay:
  // lets in-flight replies clear before ownership flips).
  Duration cutover_delay = Duration::us(500.0);
  // MetaClient's bounded re-refresh on kWrongShard replies: a call retries
  // its shard-map refresh up to `map_refresh_attempts` times with capped
  // exponential backoff, so two map generations in flight (a refresh that
  // lands an already-stale map mid-migration) cannot strand the call the
  // way the old at-most-once refresh did.
  u32 map_refresh_attempts = 3;
  Duration map_refresh_backoff = Duration::us(200.0);
  Duration map_refresh_backoff_cap = Duration::ms(2.0);
};

// --- Client caching tier ------------------------------------------------
// Per-client attribute/name + data caching (src/cache/). Disabled by
// default: with `enabled == false` no cache structures are consulted, no
// pvfs.cache_* counters move, and every timeline is byte-identical to a
// build without the tier.
struct CacheParams {
  bool enabled = false;
  // Data-cache byte budget per client (clean extents; LRU eviction). Dirty
  // write-back extents are never silently evicted — they are the only copy
  // of the user's bytes until flushed, so the budget may be transiently
  // exceeded while dirty data is pending.
  u64 data_capacity = 4 * kMiB;
  // Attribute/name cache entry budget per client (LRU eviction).
  u32 attr_capacity = 256;
  // With `leases == false` attribute entries expire on a plain TTL. With
  // leases (the default) entries stay valid until a manager-granted lease
  // is revoked: create/remove on the name, or an epoch bump (takeover,
  // migration cutover, shard split) on the owning shard.
  bool leases = true;
  Duration attr_ttl = Duration::ms(50.0);
  // Opt-in write-back data mode: writes stage dirty extents locally and
  // complete immediately; dirty data is flushed on close()/flush() or when
  // its age reaches `staleness_bound` (an engine timer), whichever comes
  // first. Default off = write-through (every write goes to the iods
  // before the op completes).
  bool write_back = false;
  Duration staleness_bound = Duration::ms(5.0);
};

// --- Everything --------------------------------------------------------
struct ModelConfig {
  NetParams net;
  RegParams reg;
  MemParams mem;
  OsParams os;
  DiskParams disk;
  FsParams fs;
  PvfsParams pvfs;
  FaultConfig fault;  // trivial by default: no faults, no recovery overhead
  ReplicationParams replication;  // factor 1 = classic single-copy PVFS
  MigrationParams migration;      // consulted only once a migration starts
  CacheParams cache;              // client caching tier; disabled = no-op

  // Outstanding-round window per I/O server: how many list I/O rounds a
  // client may keep in flight to one iod. 1 reproduces classic PVFS
  // flow control (the next request leaves when the previous reply
  // arrives); W > 1 lets the client issue round k+1 as soon as round k's
  // data phase clears the wire, overlapping wire, registration and disk
  // work the way credit-based RDMA designs (MVAPICH rendezvous pipelining)
  // do. Each iod provisions W staging buffers per client connection.
  u32 pipeline_depth = 1;

  // The defaults above *are* the paper's testbed; provided for readability.
  static ModelConfig paper_defaults() { return ModelConfig{}; }

  // A conventional-network configuration (Section 3.2's foil): TCP over
  // 2003-era gigabit Ethernet. High per-message overhead, modest bandwidth,
  // no registration costs (the kernel stack copies anyway). Used by the
  // network ablation to reproduce the paper's claim that noncontiguous
  // transmission strategy barely matters on slow networks.
  static ModelConfig tcp_era() {
    ModelConfig cfg;
    cfg.net.rdma_write_latency = Duration::us(55.0);
    cfg.net.rdma_read_latency = Duration::us(110.0);
    cfg.net.send_latency = Duration::us(55.0);
    cfg.net.rdma_write_bw = 100.0;
    cfg.net.rdma_read_bw = 100.0;
    cfg.net.send_bw = 100.0;
    cfg.net.per_wr_overhead = Duration::us(25.0);  // per-send() syscall
    cfg.net.per_sge_overhead = Duration::us(0.5);  // writev iovec handling
    cfg.net.misalign_penalty = Duration::zero();
    // Socket buffers need no pinning; registration is free.
    cfg.reg.reg_per_page = Duration::zero();
    cfg.reg.reg_base = Duration::zero();
    cfg.reg.dereg_per_page = Duration::zero();
    cfg.reg.dereg_base = Duration::zero();
    return cfg;
  }
};

}  // namespace pvfsib
