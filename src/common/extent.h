// Extent algebra: (offset, length) pairs and the list operations every layer
// of the stack needs — sorting, coalescing, intersecting, splitting at
// stripe boundaries. List I/O requests, file views, sieving windows and
// registration groups are all manipulated as extent lists.
#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "common/types.h"

namespace pvfsib {

struct Extent {
  u64 offset = 0;
  u64 length = 0;

  u64 end() const { return offset + length; }
  bool empty() const { return length == 0; }
  bool contains(u64 pos) const { return pos >= offset && pos < end(); }
  bool contains(const Extent& o) const {
    return o.offset >= offset && o.end() <= end();
  }
  bool overlaps(const Extent& o) const {
    return offset < o.end() && o.offset < end();
  }
  // True when `o` begins exactly where this extent ends.
  bool adjacent_before(const Extent& o) const { return end() == o.offset; }

  friend bool operator==(const Extent&, const Extent&) = default;
};

using ExtentList = std::vector<Extent>;

// Total bytes covered (extents may not overlap for this to be meaningful).
u64 total_length(const ExtentList& list);

// Smallest extent covering every input extent; empty input -> empty extent.
Extent bounding_span(const ExtentList& list);

// True if extents are sorted by offset and non-overlapping.
bool is_sorted_disjoint(const ExtentList& list);

// Sort by offset (stable on equal offsets).
void sort_by_offset(ExtentList& list);

// Merge touching/overlapping extents of a sorted list; returns a new list.
// Gaps strictly smaller than `merge_gap` are absorbed as well (0 = only
// touching extents merge).
ExtentList coalesce(const ExtentList& sorted, u64 merge_gap = 0);

// Intersection of extent `e` with each member of sorted-disjoint `list`.
ExtentList intersect(const Extent& e, const ExtentList& list);

// Complement of sorted-disjoint `list` within `within` — the "holes".
ExtentList holes_within(const Extent& within, const ExtentList& list);

// Split every extent at multiples of `boundary` (e.g. stripe size).
ExtentList split_at_boundaries(const ExtentList& list, u64 boundary);

std::string to_string(const Extent& e);
std::string to_string(const ExtentList& l);

}  // namespace pvfsib
