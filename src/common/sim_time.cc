#include "common/sim_time.h"

#include <cstdio>

namespace pvfsib {

std::string Duration::to_string() const {
  char buf[64];
  if (ns_ < 10'000) {
    std::snprintf(buf, sizeof(buf), "%lld ns", static_cast<long long>(ns_));
  } else if (ns_ < 10'000'000) {
    std::snprintf(buf, sizeof(buf), "%.2f us", as_us());
  } else if (ns_ < 10'000'000'000LL) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", as_ms());
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f s", as_sec());
  }
  return buf;
}

}  // namespace pvfsib
