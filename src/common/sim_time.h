// Strongly-typed virtual time. All latencies/bandwidths in the simulation
// are expressed through Duration and TimePoint so that wall-clock time and
// simulated time can never be mixed by accident.
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <limits>
#include <string>

#include "common/types.h"

namespace pvfsib {

// A span of simulated time with nanosecond resolution.
class Duration {
 public:
  constexpr Duration() = default;

  static constexpr Duration zero() { return Duration(0); }
  static constexpr Duration ns(i64 v) { return Duration(v); }
  static constexpr Duration us(double v) {
    return Duration(static_cast<i64>(v * 1e3 + 0.5));
  }
  static constexpr Duration ms(double v) {
    return Duration(static_cast<i64>(v * 1e6 + 0.5));
  }
  static constexpr Duration sec(double v) {
    return Duration(static_cast<i64>(v * 1e9 + 0.5));
  }
  static constexpr Duration max() {
    return Duration(std::numeric_limits<i64>::max());
  }

  constexpr i64 as_ns() const { return ns_; }
  constexpr double as_us() const { return static_cast<double>(ns_) / 1e3; }
  constexpr double as_ms() const { return static_cast<double>(ns_) / 1e6; }
  constexpr double as_sec() const { return static_cast<double>(ns_) / 1e9; }

  constexpr Duration operator+(Duration o) const {
    return Duration(ns_ + o.ns_);
  }
  constexpr Duration operator-(Duration o) const {
    return Duration(ns_ - o.ns_);
  }
  constexpr Duration operator*(double f) const {
    return Duration(static_cast<i64>(static_cast<double>(ns_) * f + 0.5));
  }
  constexpr Duration operator*(i64 n) const { return Duration(ns_ * n); }
  constexpr Duration operator*(int n) const {
    return Duration(ns_ * static_cast<i64>(n));
  }
  constexpr Duration operator*(u64 n) const {
    return Duration(ns_ * static_cast<i64>(n));
  }
  constexpr Duration operator/(i64 n) const { return Duration(ns_ / n); }
  constexpr Duration& operator+=(Duration o) {
    ns_ += o.ns_;
    return *this;
  }
  constexpr Duration& operator-=(Duration o) {
    ns_ -= o.ns_;
    return *this;
  }
  constexpr auto operator<=>(const Duration&) const = default;

  std::string to_string() const;

 private:
  explicit constexpr Duration(i64 ns) : ns_(ns) {}
  i64 ns_ = 0;
};

constexpr Duration operator*(i64 n, Duration d) { return d * n; }
constexpr Duration operator*(int n, Duration d) { return d * n; }

// An instant on the simulated timeline.
class TimePoint {
 public:
  constexpr TimePoint() = default;
  static constexpr TimePoint origin() { return TimePoint(0); }
  static constexpr TimePoint from_ns(i64 v) { return TimePoint(v); }

  constexpr i64 as_ns() const { return ns_; }
  constexpr double as_us() const { return static_cast<double>(ns_) / 1e3; }
  constexpr double as_sec() const { return static_cast<double>(ns_) / 1e9; }

  constexpr TimePoint operator+(Duration d) const {
    return TimePoint(ns_ + d.as_ns());
  }
  constexpr TimePoint operator-(Duration d) const {
    return TimePoint(ns_ - d.as_ns());
  }
  constexpr Duration operator-(TimePoint o) const {
    return Duration::ns(ns_ - o.ns_);
  }
  constexpr TimePoint& operator+=(Duration d) {
    ns_ += d.as_ns();
    return *this;
  }
  constexpr auto operator<=>(const TimePoint&) const = default;

 private:
  explicit constexpr TimePoint(i64 ns) : ns_(ns) {}
  i64 ns_ = 0;
};

constexpr TimePoint max(TimePoint a, TimePoint b) { return a < b ? b : a; }
constexpr Duration max(Duration a, Duration b) { return a < b ? b : a; }
constexpr Duration min(Duration a, Duration b) { return a < b ? a : b; }

// Time to move `bytes` at `mib_per_sec` (MiB/s, the paper's "MB/s").
// Zero or negative bandwidth means "infinitely fast".
inline Duration transfer_time(u64 bytes, double mib_per_sec) {
  if (mib_per_sec <= 0.0) return Duration::zero();
  const double secs =
      static_cast<double>(bytes) / (mib_per_sec * static_cast<double>(kMiB));
  return Duration::sec(secs);
}

// Effective bandwidth in MiB/s for `bytes` moved in `d`.
inline double bandwidth_mib(u64 bytes, Duration d) {
  if (d <= Duration::zero()) return 0.0;
  return static_cast<double>(bytes) / static_cast<double>(kMiB) / d.as_sec();
}

// A value produced by a host-CPU operation together with the virtual time
// the operation consumed. Callers advance their node's clock by `cost`.
template <typename T>
struct Timed {
  T value;
  Duration cost;
};

}  // namespace pvfsib
