#include "common/status.h"

namespace pvfsib {

const char* error_code_name(ErrorCode c) {
  switch (c) {
    case ErrorCode::kOk:
      return "OK";
    case ErrorCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case ErrorCode::kNotFound:
      return "NOT_FOUND";
    case ErrorCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case ErrorCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case ErrorCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case ErrorCode::kWrongShard:
      return "WRONG_SHARD";
    case ErrorCode::kPermissionDenied:
      return "PERMISSION_DENIED";
    case ErrorCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case ErrorCode::kUnavailable:
      return "UNAVAILABLE";
    case ErrorCode::kAllReplicasFailed:
      return "ALL_REPLICAS_FAILED";
    case ErrorCode::kCorrupt:
      return "CORRUPT";
    case ErrorCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

}  // namespace pvfsib
