// Deterministic, fast RNG for workload generation (splitmix64 + xoshiro256**).
// Workloads must be reproducible across runs, so std::random_device is never
// used; every generator is seeded explicitly.
#pragma once

#include <cstdint>

#include "common/types.h"

namespace pvfsib {

class Rng {
 public:
  explicit Rng(u64 seed) {
    // splitmix64 to spread the seed over the xoshiro state.
    u64 x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      u64 z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  u64 next() {
    const u64 result = rotl(state_[1] * 5, 7) * 9;
    const u64 t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound) — bound must be > 0.
  u64 below(u64 bound) { return next() % bound; }

  // Uniform in [lo, hi] inclusive.
  u64 range(u64 lo, u64 hi) { return lo + below(hi - lo + 1); }

  double uniform01() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  bool chance(double p) { return uniform01() < p; }

 private:
  static u64 rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }
  u64 state_[4];
};

}  // namespace pvfsib
