// Minimal Status / Result<T> error-handling vocabulary (C++20 has no
// std::expected). Errors are strings plus a coarse code; the simulation never
// throws across module boundaries.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace pvfsib {

enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kResourceExhausted,
  // Also the manager's "not the active manager" redirect: a demoted or
  // not-yet-promoted manager answers metadata requests with
  // kFailedPrecondition (a fast reply, unlike kUnavailable which the client
  // only infers from a timeout), and the client re-targets the request at
  // the other manager (pvfs.meta_failovers).
  kFailedPrecondition,
  // The manager's "not my shard" redirect: a metadata request routed by a
  // stale shard map reaches a manager that does not own the name. Like
  // kFailedPrecondition this is a fast reply, but it additionally carries a
  // shard-map refresh — the client re-routes by the fresh map
  // (pvfs.shard_redirects) instead of rotating within the shard.
  kWrongShard,
  kPermissionDenied,  // e.g. registering an unallocated page
  kAlreadyExists,
  kUnavailable,  // transient transport/server failure; safe to retry
  // A replicated read exhausted the retry budget on *every* replica of the
  // chain (terminal: failover has nowhere left to go).
  kAllReplicasFailed,
  // An iod's read path recomputed a stripe's block checksums and found the
  // stored bytes disagree with the header: silent corruption (bit flip,
  // torn write). Unlike kUnavailable this replica is *reachable* but its
  // copy is untrustworthy — the client fails over to another replica
  // immediately (no retry budget burned; re-reading corrupt media cannot
  // help) and records the corrupt copy with the manager.
  kCorrupt,
  kInternal,
};

const char* error_code_name(ErrorCode c);

class Status {
 public:
  Status() = default;
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status(); }

  bool is_ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string to_string() const {
    if (is_ok()) return "OK";
    return std::string(error_code_name(code_)) + ": " + message_;
  }

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

inline Status invalid_argument(std::string m) {
  return Status(ErrorCode::kInvalidArgument, std::move(m));
}
inline Status not_found(std::string m) {
  return Status(ErrorCode::kNotFound, std::move(m));
}
inline Status out_of_range(std::string m) {
  return Status(ErrorCode::kOutOfRange, std::move(m));
}
inline Status resource_exhausted(std::string m) {
  return Status(ErrorCode::kResourceExhausted, std::move(m));
}
inline Status failed_precondition(std::string m) {
  return Status(ErrorCode::kFailedPrecondition, std::move(m));
}
inline Status wrong_shard(std::string m) {
  return Status(ErrorCode::kWrongShard, std::move(m));
}
inline Status permission_denied(std::string m) {
  return Status(ErrorCode::kPermissionDenied, std::move(m));
}
inline Status already_exists(std::string m) {
  return Status(ErrorCode::kAlreadyExists, std::move(m));
}
inline Status unavailable(std::string m) {
  return Status(ErrorCode::kUnavailable, std::move(m));
}
inline Status all_replicas_failed(std::string m) {
  return Status(ErrorCode::kAllReplicasFailed, std::move(m));
}
inline Status corrupt(std::string m) {
  return Status(ErrorCode::kCorrupt, std::move(m));
}
inline Status internal_error(std::string m) {
  return Status(ErrorCode::kInternal, std::move(m));
}

// Result<T>: either a value or a non-OK Status.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.is_ok() && "Result constructed from OK status");
  }

  bool is_ok() const { return value_.has_value(); }
  explicit operator bool() const { return is_ok(); }

  const Status& status() const { return status_; }

  T& value() & {
    assert(is_ok());
    return *value_;
  }
  const T& value() const& {
    assert(is_ok());
    return *value_;
  }
  T&& value() && {
    assert(is_ok());
    return std::move(*value_);
  }

  T value_or(T fallback) const {
    return is_ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

#define PVFSIB_RETURN_IF_ERROR(expr)              \
  do {                                            \
    ::pvfsib::Status _st = (expr);                \
    if (!_st.is_ok()) return _st;                 \
  } while (0)

}  // namespace pvfsib
