#include "common/stats.h"

#include <cstdio>

namespace pvfsib {

std::string Stats::to_string() const {
  std::string out;
  for (const auto& [k, v] : counters_) {
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%-32s %lld\n", k.c_str(),
                  static_cast<long long>(v));
    out += buf;
  }
  return out;
}

}  // namespace pvfsib
