// Lightweight leveled logging to stderr. Off by default; enabled per-process
// with set_log_level (benches keep it quiet, examples turn on kInfo).
#pragma once

#include <cstdarg>
#include <cstdio>

namespace pvfsib {

enum class LogLevel { kOff = 0, kError, kWarn, kInfo, kDebug };

LogLevel log_level();
void set_log_level(LogLevel level);

void log_message(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

#define PVFSIB_LOG(level, ...)                              \
  do {                                                      \
    if (::pvfsib::log_level() >= (level)) {                 \
      ::pvfsib::log_message((level), __VA_ARGS__);          \
    }                                                       \
  } while (0)

#define LOG_ERROR(...) PVFSIB_LOG(::pvfsib::LogLevel::kError, __VA_ARGS__)
#define LOG_WARN(...) PVFSIB_LOG(::pvfsib::LogLevel::kWarn, __VA_ARGS__)
#define LOG_INFO(...) PVFSIB_LOG(::pvfsib::LogLevel::kInfo, __VA_ARGS__)
#define LOG_DEBUG(...) PVFSIB_LOG(::pvfsib::LogLevel::kDebug, __VA_ARGS__)

}  // namespace pvfsib
