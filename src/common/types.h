// Fundamental size/byte types and literals shared by every module.
#pragma once

#include <cstddef>
#include <cstdint>

namespace pvfsib {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

// The paper uses MB as an abbreviation for 2^20 bytes; we keep the binary
// convention throughout and spell it out in identifiers (KiB/MiB).
inline constexpr u64 kKiB = 1024;
inline constexpr u64 kMiB = 1024 * 1024;
inline constexpr u64 kGiB = 1024 * 1024 * 1024;

constexpr u64 operator""_KiB(unsigned long long v) { return v * kKiB; }
constexpr u64 operator""_MiB(unsigned long long v) { return v * kMiB; }
constexpr u64 operator""_GiB(unsigned long long v) { return v * kGiB; }

// Page size of the simulated host OS (matches the testbed's IA-32 Linux).
inline constexpr u64 kPageSize = 4096;

constexpr u64 pages_for(u64 bytes) {
  return (bytes + kPageSize - 1) / kPageSize;
}

constexpr u64 page_floor(u64 addr) { return addr & ~(kPageSize - 1); }
constexpr u64 page_ceil(u64 addr) {
  return (addr + kPageSize - 1) & ~(kPageSize - 1);
}

constexpr u64 align_up(u64 v, u64 a) { return (v + a - 1) / a * a; }
constexpr u64 align_down(u64 v, u64 a) { return v / a * a; }

}  // namespace pvfsib
