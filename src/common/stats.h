// Counter registry used to reproduce the paper's profile tables (e.g.
// Table 6: request counts, registration counts, cache hits, disk op counts,
// communication volumes). Every subsystem takes a Stats* and bumps named
// counters; benches snapshot/diff them.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace pvfsib {

class Stats {
 public:
  // The transparent comparator lets the hot-path bumps look up the
  // stat::k* string literals without constructing a std::string per call;
  // an allocation only happens the first time a counter name is seen.
  using CounterMap = std::map<std::string, i64, std::less<>>;

  void add(std::string_view name, i64 delta = 1) { slot(name) += delta; }
  void set(std::string_view name, i64 value) { slot(name) = value; }
  // High-water-mark counter: keep the largest value ever reported.
  void set_max(std::string_view name, i64 value) {
    i64& s = slot(name);
    if (value > s) s = value;
  }

  i64 get(std::string_view name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }

  void clear() { counters_.clear(); }

  const CounterMap& counters() const { return counters_; }

  // Counters in `*this` minus counters in `base` (missing keys read as 0).
  Stats diff(const Stats& base) const {
    Stats out;
    for (const auto& [k, v] : counters_) {
      const i64 d = v - base.get(k);
      if (d != 0) out.counters_[k] = d;
    }
    return out;
  }

  std::string to_string() const;

 private:
  i64& slot(std::string_view name) {
    auto it = counters_.find(name);
    if (it == counters_.end()) {
      it = counters_.emplace(std::string(name), 0).first;
    }
    return it->second;
  }

  CounterMap counters_;
};

// Canonical counter names (keep in one place so benches and modules agree).
namespace stat {
inline constexpr const char* kMrRegister = "ib.mr.register";
inline constexpr const char* kMrDeregister = "ib.mr.deregister";
inline constexpr const char* kMrCacheHit = "ib.mr.cache_hit";
inline constexpr const char* kMrCacheMiss = "ib.mr.cache_miss";
inline constexpr const char* kMrCacheEvict = "ib.mr.cache_evict";
inline constexpr const char* kMrRegisteredBytes = "ib.mr.registered_bytes";
inline constexpr const char* kRdmaWrite = "ib.rdma.write";
inline constexpr const char* kRdmaRead = "ib.rdma.read";
inline constexpr const char* kSend = "ib.send";
inline constexpr const char* kNetBytesData = "net.bytes.data";
inline constexpr const char* kNetBytesControl = "net.bytes.control";
inline constexpr const char* kNetBytesInterClient = "net.bytes.inter_client";
inline constexpr const char* kDiskRead = "disk.read";
inline constexpr const char* kDiskWrite = "disk.write";
inline constexpr const char* kDiskSeek = "disk.seek";
inline constexpr const char* kDiskReadBytes = "disk.read_bytes";
inline constexpr const char* kDiskWriteBytes = "disk.write_bytes";
inline constexpr const char* kCacheHitBytes = "disk.cache_hit_bytes";
inline constexpr const char* kCacheMissBytes = "disk.cache_miss_bytes";
inline constexpr const char* kPvfsRequest = "pvfs.request";
inline constexpr const char* kPvfsReply = "pvfs.reply";
// Pipelining (only reported when pipeline_depth > 1 so depth-1 runs keep
// their counter sets — and therefore their profile tables — seed-identical).
inline constexpr const char* kPvfsRoundsInflightMax = "pvfs.rounds_inflight_max";
inline constexpr const char* kPvfsPipelineStalls = "pvfs.pipeline_stalls";
// Fault plane and recovery (reported only when FaultConfig is non-trivial,
// so zero-fault runs keep counter sets — and profile tables — identical).
inline constexpr const char* kFaultRetransmit = "fault.injected.retransmit";
inline constexpr const char* kFaultLatencySpike = "fault.injected.latency_spike";
inline constexpr const char* kFaultCompletionError =
    "fault.injected.completion_error";
inline constexpr const char* kFaultRnr = "fault.injected.rnr";
inline constexpr const char* kFaultRequestDrop = "fault.injected.request_drop";
inline constexpr const char* kFaultReplyDrop = "fault.injected.reply_drop";
inline constexpr const char* kFaultIodCrash = "fault.injected.iod_crash";
inline constexpr const char* kFaultIodDownDrop = "fault.injected.iod_down_drop";
inline constexpr const char* kFaultMetaRequestDrop =
    "fault.injected.meta_request_drop";
inline constexpr const char* kFaultManagerCrash =
    "fault.injected.manager_crash";
inline constexpr const char* kFaultManagerDownDrop =
    "fault.injected.manager_down_drop";
inline constexpr const char* kPvfsRetries = "pvfs.retries";
inline constexpr const char* kPvfsTimeouts = "pvfs.timeouts";
inline constexpr const char* kPvfsReplaysDeduped = "pvfs.replays_deduped";
inline constexpr const char* kPvfsMetaRetries = "pvfs.meta_retries";
// Manager takeover plane (reported only when a standby manager is placed
// and a manager crash actually fires, so runs without manager faults keep
// counter sets identical). meta_failovers counts a client re-targeting a
// metadata request at the other manager; epoch_rejections counts fenced
// stale-epoch version mints / staleness notes (zombie-primary protection).
inline constexpr const char* kPvfsMetaFailovers = "pvfs.meta_failovers";
inline constexpr const char* kPvfsEpochRejections = "pvfs.epoch_rejections";
inline constexpr const char* kPvfsManagerTakeovers = "pvfs.manager_takeovers";
// Sharded metadata plane (reported only when a request actually hits a
// wrong-shard manager or a takeover bumps the shard map — never in
// fault-free runs, whose maps are seeded correct at mount and stay so).
// shard_redirects counts kWrongShard replies; shard_map_refreshes counts
// the map refreshes those redirects (and takeovers) deliver to clients.
inline constexpr const char* kPvfsShardRedirects = "pvfs.shard_redirects";
inline constexpr const char* kPvfsShardMapRefreshes =
    "pvfs.shard_map_refreshes";
// Client re-minted a write round's version/epoch after an iod fenced the
// old-epoch mint (closes the sub-quorum old-epoch divergence window).
inline constexpr const char* kPvfsVersionRemints = "pvfs.version_remints";
// Partial-round restart: replays whose payload already landed in the
// target's staging buffer skip the wire phase entirely.
inline constexpr const char* kPvfsPartialRestarts = "pvfs.partial_restarts";
// Replication and failover (reported only when replication_factor > 1, so
// classic single-copy runs keep counter sets — and baselines — identical).
inline constexpr const char* kPvfsReplicaWrites = "pvfs.replica_writes";
inline constexpr const char* kPvfsQuorumWaits = "pvfs.quorum_waits";
inline constexpr const char* kPvfsFailovers = "pvfs.failovers";
// Version plane (stripe versioning, read-repair, background resync). All
// four only ever appear at replication_factor > 1, keeping factor-1 counter
// sets baseline-identical; resync_* additionally require
// ReplicationParams::resync. None of them count toward pvfs.request/reply
// (repair and resync traffic is out-of-band of the round protocol).
inline constexpr const char* kPvfsReadRepairs = "pvfs.read_repairs";
inline constexpr const char* kPvfsStaleReadsAvoided =
    "pvfs.stale_reads_avoided";
inline constexpr const char* kPvfsResyncStripes = "pvfs.resync_stripes";
inline constexpr const char* kPvfsResyncRounds = "pvfs.resync_rounds";
inline constexpr const char* kAdsSieved = "ads.sieved";
inline constexpr const char* kAdsSeparate = "ads.separate";
inline constexpr const char* kAdsExtraBytes = "ads.extra_bytes";
inline constexpr const char* kOgrGroups = "ogr.groups";
inline constexpr const char* kOgrFallbacks = "ogr.fallbacks";
inline constexpr const char* kOgrOsQueries = "ogr.os_queries";
inline constexpr const char* kHoleQueries = "vmem.hole_query";
}  // namespace stat

}  // namespace pvfsib
