// Counter registry used to reproduce the paper's profile tables (e.g.
// Table 6: request counts, registration counts, cache hits, disk op counts,
// communication volumes). Every subsystem takes a Stats* and bumps named
// counters; benches snapshot/diff them.
//
// Also hosts the shared measurement plane the load-generation subsystem and
// the benches build on: a log-bucketed LatencyHistogram (p50/p99/p999
// without storing every sample) and IntervalSeries, rolling per-window
// snapshots of a Stats registry in the style of OrangeFS's
// pint-perf-counter rolling server counters.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/sim_time.h"
#include "common/types.h"

namespace pvfsib {

class Stats {
 public:
  // The transparent comparator lets the hot-path bumps look up the
  // stat::k* string literals without constructing a std::string per call;
  // an allocation only happens the first time a counter name is seen.
  using CounterMap = std::map<std::string, i64, std::less<>>;

  void add(std::string_view name, i64 delta = 1) { slot(name) += delta; }
  void set(std::string_view name, i64 value) { slot(name) = value; }
  // High-water-mark counter: keep the largest value ever reported.
  void set_max(std::string_view name, i64 value) {
    i64& s = slot(name);
    if (value > s) s = value;
  }

  i64 get(std::string_view name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }

  void clear() { counters_.clear(); }

  const CounterMap& counters() const { return counters_; }

  // Counters in `*this` minus counters in `base` (missing keys read as 0).
  Stats diff(const Stats& base) const {
    Stats out;
    for (const auto& [k, v] : counters_) {
      const i64 d = v - base.get(k);
      if (d != 0) out.counters_[k] = d;
    }
    return out;
  }

  std::string to_string() const;

 private:
  i64& slot(std::string_view name) {
    auto it = counters_.find(name);
    if (it == counters_.end()) {
      it = counters_.emplace(std::string(name), 0).first;
    }
    return it->second;
  }

  CounterMap counters_;
};

// Log-bucketed latency histogram: constant memory, deterministic quantile
// estimates with bounded relative error, no per-sample storage. Buckets are
// power-of-two octaves split into 16 sub-buckets (HdrHistogram-style), so a
// quantile is reported as the midpoint of a bucket at most 6.25% wide;
// values below 16 ns land in exact unit buckets. min/max/sum are tracked
// exactly and quantiles clamp into [min, max].
class LatencyHistogram {
 public:
  void record(Duration d) {
    const i64 ns = d.as_ns() < 0 ? 0 : d.as_ns();
    ++buckets_[bucket_of(ns)];
    ++count_;
    sum_ns_ += ns;
    if (ns < min_ns_) min_ns_ = ns;
    if (ns > max_ns_) max_ns_ = ns;
  }

  // Smallest recorded value v such that at least ceil(p * count) samples
  // are <= v, reported at bucket resolution. p outside [0, 1] is clamped.
  Duration quantile(double p) const {
    if (count_ == 0) return Duration::zero();
    if (p <= 0.0) return Duration::ns(min_ns_);
    const u64 rank = p >= 1.0
                         ? count_
                         : std::max<u64>(
                               1, static_cast<u64>(
                                      p * static_cast<double>(count_) + 0.5));
    u64 cum = 0;
    for (u32 i = 0; i < kBuckets; ++i) {
      cum += buckets_[i];
      if (cum >= rank) {
        const i64 mid = bucket_mid(i);
        return Duration::ns(std::min(std::max(mid, min_ns_), max_ns_));
      }
    }
    return Duration::ns(max_ns_);
  }

  u64 count() const { return count_; }
  Duration min() const {
    return count_ == 0 ? Duration::zero() : Duration::ns(min_ns_);
  }
  Duration max() const { return Duration::ns(max_ns_); }
  Duration mean() const {
    return count_ == 0 ? Duration::zero()
                       : Duration::ns(sum_ns_ / static_cast<i64>(count_));
  }

  void merge(const LatencyHistogram& o) {
    for (u32 i = 0; i < kBuckets; ++i) buckets_[i] += o.buckets_[i];
    count_ += o.count_;
    sum_ns_ += o.sum_ns_;
    if (o.count_ > 0) {
      if (o.min_ns_ < min_ns_) min_ns_ = o.min_ns_;
      if (o.max_ns_ > max_ns_) max_ns_ = o.max_ns_;
    }
  }

  void clear() { *this = LatencyHistogram{}; }

 private:
  static constexpr u32 kSubBits = 4;            // 16 sub-buckets per octave
  static constexpr u32 kSub = 1u << kSubBits;
  static constexpr u32 kBuckets = (64 - kSubBits) * kSub;

  static u32 bucket_of(i64 ns) {
    const u64 v = static_cast<u64>(ns);
    if (v < kSub) return static_cast<u32>(v);
    const u32 e = 63 - static_cast<u32>(std::countl_zero(v));
    const u32 sub = static_cast<u32>((v >> (e - kSubBits)) & (kSub - 1));
    return (e - kSubBits + 1) * kSub + sub;
  }

  static i64 bucket_mid(u32 idx) {
    if (idx < kSub) return static_cast<i64>(idx);  // exact unit buckets
    const u32 e = idx / kSub + kSubBits - 1;
    const u32 sub = idx % kSub;
    const i64 lo = static_cast<i64>(kSub + sub) << (e - kSubBits);
    const i64 width = static_cast<i64>(1) << (e - kSubBits);
    return lo + width / 2;
  }

  std::array<u64, kBuckets> buckets_{};
  u64 count_ = 0;
  i64 sum_ns_ = 0;
  i64 min_ns_ = std::numeric_limits<i64>::max();
  i64 max_ns_ = 0;
};

// Rolling interval counters over a live Stats registry: each window's delta
// is the counter movement since the previous window closed, so per-window
// throughput and server-side rates are visible mid-run instead of only as
// one end-of-run aggregate (OrangeFS pint-perf-counter's rolling server
// counters are the exemplar). The caller decides the sampling cadence —
// Cluster::sample_intervals() schedules closes on the event engine.
class IntervalSeries {
 public:
  struct Window {
    TimePoint start;
    TimePoint end;
    Stats delta;
  };

  IntervalSeries(const Stats* source, TimePoint start)
      : source_(source), last_(*source), window_start_(start) {}

  // Close the current window at `now`: its delta is everything the source
  // counters moved since the previous close (or construction).
  void close_window(TimePoint now) {
    windows_.push_back(Window{window_start_, now, source_->diff(last_)});
    last_ = *source_;
    window_start_ = now;
  }

  const std::vector<Window>& windows() const { return windows_; }

  // Counter movement in window `i` as a per-second rate.
  double rate_per_sec(size_t i, std::string_view name) const {
    const Window& w = windows_.at(i);
    const double secs = (w.end - w.start).as_sec();
    if (secs <= 0.0) return 0.0;
    return static_cast<double>(w.delta.get(name)) / secs;
  }

 private:
  const Stats* source_;
  Stats last_;            // snapshot at the last window close
  TimePoint window_start_;
  std::vector<Window> windows_;
};

// Canonical counter names (keep in one place so benches and modules agree).
namespace stat {
inline constexpr const char* kMrRegister = "ib.mr.register";
inline constexpr const char* kMrDeregister = "ib.mr.deregister";
inline constexpr const char* kMrCacheHit = "ib.mr.cache_hit";
inline constexpr const char* kMrCacheMiss = "ib.mr.cache_miss";
inline constexpr const char* kMrCacheEvict = "ib.mr.cache_evict";
inline constexpr const char* kMrRegisteredBytes = "ib.mr.registered_bytes";
inline constexpr const char* kRdmaWrite = "ib.rdma.write";
inline constexpr const char* kRdmaRead = "ib.rdma.read";
inline constexpr const char* kSend = "ib.send";
inline constexpr const char* kNetBytesData = "net.bytes.data";
inline constexpr const char* kNetBytesControl = "net.bytes.control";
inline constexpr const char* kNetBytesInterClient = "net.bytes.inter_client";
inline constexpr const char* kDiskRead = "disk.read";
inline constexpr const char* kDiskWrite = "disk.write";
inline constexpr const char* kDiskSeek = "disk.seek";
inline constexpr const char* kDiskReadBytes = "disk.read_bytes";
inline constexpr const char* kDiskWriteBytes = "disk.write_bytes";
inline constexpr const char* kCacheHitBytes = "disk.cache_hit_bytes";
inline constexpr const char* kCacheMissBytes = "disk.cache_miss_bytes";
inline constexpr const char* kPvfsRequest = "pvfs.request";
inline constexpr const char* kPvfsReply = "pvfs.reply";
// Pipelining (only reported when pipeline_depth > 1 so depth-1 runs keep
// their counter sets — and therefore their profile tables — seed-identical).
inline constexpr const char* kPvfsRoundsInflightMax = "pvfs.rounds_inflight_max";
inline constexpr const char* kPvfsPipelineStalls = "pvfs.pipeline_stalls";
// Fault plane and recovery (reported only when FaultConfig is non-trivial,
// so zero-fault runs keep counter sets — and profile tables — identical).
inline constexpr const char* kFaultRetransmit = "fault.injected.retransmit";
inline constexpr const char* kFaultLatencySpike = "fault.injected.latency_spike";
inline constexpr const char* kFaultCompletionError =
    "fault.injected.completion_error";
inline constexpr const char* kFaultRnr = "fault.injected.rnr";
inline constexpr const char* kFaultRequestDrop = "fault.injected.request_drop";
inline constexpr const char* kFaultReplyDrop = "fault.injected.reply_drop";
inline constexpr const char* kFaultIodCrash = "fault.injected.iod_crash";
inline constexpr const char* kFaultIodDownDrop = "fault.injected.iod_down_drop";
inline constexpr const char* kFaultMetaRequestDrop =
    "fault.injected.meta_request_drop";
inline constexpr const char* kFaultManagerCrash =
    "fault.injected.manager_crash";
inline constexpr const char* kFaultManagerDownDrop =
    "fault.injected.manager_down_drop";
inline constexpr const char* kPvfsRetries = "pvfs.retries";
inline constexpr const char* kPvfsTimeouts = "pvfs.timeouts";
inline constexpr const char* kPvfsReplaysDeduped = "pvfs.replays_deduped";
inline constexpr const char* kPvfsMetaRetries = "pvfs.meta_retries";
// Manager takeover plane (reported only when a standby manager is placed
// and a manager crash actually fires, so runs without manager faults keep
// counter sets identical). meta_failovers counts a client re-targeting a
// metadata request at the other manager; epoch_rejections counts fenced
// stale-epoch version mints / staleness notes (zombie-primary protection).
inline constexpr const char* kPvfsMetaFailovers = "pvfs.meta_failovers";
inline constexpr const char* kPvfsEpochRejections = "pvfs.epoch_rejections";
inline constexpr const char* kPvfsManagerTakeovers = "pvfs.manager_takeovers";
// Sharded metadata plane (reported only when a request actually hits a
// wrong-shard manager or a takeover bumps the shard map — never in
// fault-free runs, whose maps are seeded correct at mount and stay so).
// shard_redirects counts kWrongShard replies; shard_map_refreshes counts
// the map refreshes those redirects (and takeovers) deliver to clients.
inline constexpr const char* kPvfsShardRedirects = "pvfs.shard_redirects";
inline constexpr const char* kPvfsShardMapRefreshes =
    "pvfs.shard_map_refreshes";
// Live shard migration / resharding (reported only when a migration or
// split is actually started via Cluster::migrate_shard()/split_shards(), so
// every zero-migration run keeps counter sets — and fingerprints —
// identical). shard_migrations counts completed single-shard moves,
// shard_splits completed K->2K plane growths, migration_rounds the
// rate-limited snapshot stream rounds, migration_aborts cleanly abandoned
// migrations (source crash mid-stream, target crash, or a takeover racing
// the stream), and wrong_shard_during_migration the kWrongShard redirects
// answered by a manager that lost the name to a completed migration/split
// while clients still held stale maps.
inline constexpr const char* kPvfsShardMigrations = "pvfs.shard_migrations";
inline constexpr const char* kPvfsShardSplits = "pvfs.shard_splits";
inline constexpr const char* kPvfsMigrationRounds = "pvfs.migration_rounds";
inline constexpr const char* kPvfsMigrationAborts = "pvfs.migration_aborts";
inline constexpr const char* kPvfsWrongShardDuringMigration =
    "pvfs.wrong_shard_during_migration";
inline constexpr const char* kFaultMigrationTargetCrash =
    "fault.injected.migration_target_crash";
// Client re-minted a write round's version/epoch after an iod fenced the
// old-epoch mint (closes the sub-quorum old-epoch divergence window).
inline constexpr const char* kPvfsVersionRemints = "pvfs.version_remints";
// Partial-round restart: replays whose payload already landed in the
// target's staging buffer skip the wire phase entirely.
inline constexpr const char* kPvfsPartialRestarts = "pvfs.partial_restarts";
// Replication and failover (reported only when replication_factor > 1, so
// classic single-copy runs keep counter sets — and baselines — identical).
inline constexpr const char* kPvfsReplicaWrites = "pvfs.replica_writes";
inline constexpr const char* kPvfsQuorumWaits = "pvfs.quorum_waits";
inline constexpr const char* kPvfsFailovers = "pvfs.failovers";
// Version plane (stripe versioning, read-repair, background resync). All
// four only ever appear at replication_factor > 1, keeping factor-1 counter
// sets baseline-identical; resync_* additionally require
// ReplicationParams::resync. None of them count toward pvfs.request/reply
// (repair and resync traffic is out-of-band of the round protocol).
inline constexpr const char* kPvfsReadRepairs = "pvfs.read_repairs";
inline constexpr const char* kPvfsStaleReadsAvoided =
    "pvfs.stale_reads_avoided";
inline constexpr const char* kPvfsResyncStripes = "pvfs.resync_stripes";
inline constexpr const char* kPvfsResyncRounds = "pvfs.resync_rounds";
// Data-integrity plane (stripe block checksums, corruption injection,
// verify-on-read, scrubber). The fault.injected.* corruption counters move
// only when a corruption fault actually fires; the pvfs.* ones only when a
// checksum/version mismatch is detected, failed over, or repaired — so
// fault-free runs (and fault runs without corruption) keep counter sets
// byte-identical. scrub_* additionally require the scrubber to be enabled.
inline constexpr const char* kFaultBitFlip = "fault.injected.bit_flip";
inline constexpr const char* kFaultTornWrite = "fault.injected.torn_write";
inline constexpr const char* kFaultLostWrite = "fault.injected.lost_write";
inline constexpr const char* kPvfsCorruptionsDetected =
    "pvfs.corruptions_detected";
inline constexpr const char* kPvfsCorruptReadsFailedOver =
    "pvfs.corrupt_reads_failed_over";
inline constexpr const char* kPvfsCorruptionsRepaired =
    "pvfs.corruptions_repaired";
inline constexpr const char* kPvfsScrubChunks = "pvfs.scrub_chunks";
inline constexpr const char* kPvfsScrubBytes = "pvfs.scrub_bytes";
inline constexpr const char* kPvfsScrubCorruptions =
    "pvfs.scrub_corruptions_found";
inline constexpr const char* kPvfsScrubStaleHeaders =
    "pvfs.scrub_stale_headers_found";
// Client caching tier (src/cache/). All four move only when
// CacheParams::enabled is set, so cache-off runs keep counter sets — and
// every figure baseline — byte-identical. cache_hits/misses count attr and
// data lookups together; invalidations counts entries dropped by write
// notices, version-tag conflicts and name invalidation; lease_revokes
// counts entries dropped by lease revocation (create/remove on the name,
// epoch bumps on the owning shard).
inline constexpr const char* kPvfsCacheHits = "pvfs.cache_hits";
inline constexpr const char* kPvfsCacheMisses = "pvfs.cache_misses";
inline constexpr const char* kPvfsCacheInvalidations =
    "pvfs.cache_invalidations";
inline constexpr const char* kPvfsCacheLeaseRevokes =
    "pvfs.cache_lease_revokes";
inline constexpr const char* kAdsSieved = "ads.sieved";
inline constexpr const char* kAdsSeparate = "ads.separate";
inline constexpr const char* kAdsExtraBytes = "ads.extra_bytes";
inline constexpr const char* kOgrGroups = "ogr.groups";
inline constexpr const char* kOgrFallbacks = "ogr.fallbacks";
inline constexpr const char* kOgrOsQueries = "ogr.os_queries";
inline constexpr const char* kHoleQueries = "vmem.hole_query";
}  // namespace stat

}  // namespace pvfsib
