#include "common/logging.h"

namespace pvfsib {
namespace {
LogLevel g_level = LogLevel::kWarn;

const char* level_tag(LogLevel l) {
  switch (l) {
    case LogLevel::kError:
      return "E";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kDebug:
      return "D";
    default:
      return "?";
  }
}
}  // namespace

LogLevel log_level() { return g_level; }
void set_log_level(LogLevel level) { g_level = level; }

void log_message(LogLevel level, const char* fmt, ...) {
  std::fprintf(stderr, "[%s] ", level_tag(level));
  va_list ap;
  va_start(ap, fmt);
  std::vfprintf(stderr, fmt, ap);
  va_end(ap);
  std::fputc('\n', stderr);
}

}  // namespace pvfsib
