// Wire-level protocol descriptors shared by the PVFS client and I/O daemon.
// Messages are not serialized byte-for-byte (the cluster is in-process);
// what matters for fidelity is their *size* on the wire (charged through the
// fabric), their *count* (Table 6 profiles), and the file-access lists they
// carry.
#pragma once

#include <vector>

#include "common/extent.h"
#include "common/types.h"
#include "core/listio.h"

namespace pvfsib::pvfs {

// PVFS file handle, cluster-wide.
using Handle = u64;

struct FileMeta {
  Handle handle = 0;
  std::string name;
  u64 stripe_size = 0;
  u32 iod_count = 0;  // pcount: how many iods stripe this file
  u32 base_iod = 0;   // first physical iod of the stripe set
  u64 logical_size = 0;  // high-water mark of written bytes
};

// One round of a list I/O operation directed at one iod: at most
// `max_list_pairs` file accesses and at most one staging buffer of data.
struct RoundRequest {
  Handle handle = 0;
  u32 client = 0;
  // Which of the client connection's staging buffers this round uses.
  // With pipelining (pipeline_depth W > 1) up to W rounds are in flight
  // per iod and each must land in its own buffer; round k uses slot
  // k mod W, so a slot is only reused after its previous round replied.
  u32 slot = 0;
  // Per-slot round sequence number (client-assigned, strictly increasing
  // per (client, slot) chain; 0 = unsequenced). Makes write rounds
  // idempotently replayable: when a reply is lost and the client replays
  // the round, the iod recognises an already-applied sequence number and
  // acks without re-running the disk phase.
  u64 round_seq = 0;
  bool is_write = false;
  bool sync = false;       // fsync before replying (write) / O_DIRECT-ish
  bool use_ads = true;     // server may data-sieve if its model agrees
  ExtentList accesses;     // iod-local file extents, stream order
  u64 bytes() const { return total_length(accesses); }
};

// How read data returns to the client.
enum class ReadReturn {
  kFastBounce,    // server RDMA-writes packed data into the client's
                  // pre-registered Fast-RDMA buffer (small transfers)
  kDirectGather,  // server RDMA-writes with gather straight into the
                  // client's single contiguous destination buffer
  kClientPull,    // server packs staging; client pulls (scatter/pack/multi
                  // per its transfer policy)
};

}  // namespace pvfsib::pvfs
