// Wire-level protocol descriptors shared by the PVFS client and I/O daemon.
// Messages are not serialized byte-for-byte (the cluster is in-process);
// what matters for fidelity is their *size* on the wire (charged through the
// fabric), their *count* (Table 6 profiles), and the file-access lists they
// carry.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/extent.h"
#include "common/status.h"
#include "common/types.h"
#include "core/listio.h"

namespace pvfsib::pvfs {

// PVFS file handle, cluster-wide.
using Handle = u64;

// Sentinel for "let the manager pick the base iod" (PVFS's rotated default
// placement). Manager::kAutoBase aliases this.
inline constexpr u32 kAutoBaseIod = ~0u;

struct FileMeta {
  Handle handle = 0;
  std::string name;
  u64 stripe_size = 0;
  u32 iod_count = 0;  // pcount: how many iods stripe this file
  u32 base_iod = 0;   // first physical iod of the stripe set
  u64 logical_size = 0;  // high-water mark of written bytes
  // Stripe replication (primary/backup). replicas[k] is the ordered set of
  // physical iods holding logical stripe server k: replicas[k][0] is the
  // primary, the rest backups, all distinct (manager-computed rotation
  // (base_iod + k + j) mod physical-iod-count, chained declustering).
  // Empty when replication_factor == 1: the client derives the single
  // target from base_iod exactly as classic PVFS does.
  u32 replication_factor = 1;
  std::vector<std::vector<u32>> replicas;
};

// Per-shard manager epoch cell, shared by the shard's primary and standby
// manager (stand-in for a durable epoch register / lease service). Takeover
// bumps it; every version mint and staleness note is stamped with the
// minter's epoch so iods and the active manager can fence a zombie primary
// (pvfs.epoch_rejections). Starts at 1 = the primary's epoch. Unsharded
// clusters have exactly one cell, as before.
struct ManagerEpoch {
  u64 value = 1;
};

// Local-file key for a backup copy of logical stripe server `stripe`. With
// chained declustering one physical iod holds both its own primary stripe
// and a neighbour stripe's backup of the same file, and the two cover the
// same stripe-local offsets — so backups live under a per-stripe shadow
// handle rather than the file handle. The top bit marks the shadow
// namespace (real handles count up from 1); every backup of stripe k uses
// the same key, so any replica can serve it after a failover.
inline Handle backup_handle(Handle h, u32 stripe) {
  return (Handle{1} << 63) | (static_cast<Handle>(stripe) << 48) | h;
}

// --- Metadata sharding ------------------------------------------------------
// The namespace and the version plane are hash-partitioned over
// `metadata_shards` active managers. Names route by FNV-1a; handles route
// by their minting shard (shard s mints s+1, s+1+N, s+1+2N, ... so the
// shard is recoverable from the handle alone — no map lookup on the data
// path). Both collapse to shard 0 when the plane is unsharded, keeping
// single-manager runs untouched.

inline u32 shard_of(std::string_view name, u32 shard_count) {
  if (shard_count <= 1) return 0;
  u64 h = 1469598103934665603ull;  // FNV-1a 64-bit
  for (const char c : name) {
    h ^= static_cast<u8>(c);
    h *= 1099511628211ull;
  }
  return static_cast<u32>(h % shard_count);
}

inline u32 shard_of_handle(Handle h, u32 shard_count) {
  if (shard_count <= 1) return 0;
  // Backup copies live under per-stripe shadow handles (top bit set); the
  // version plane still belongs to the file handle's shard.
  const Handle raw = (h >> 63) != 0 ? (h & ((Handle{1} << 48) - 1)) : h;
  return static_cast<u32>((raw - 1) % shard_count);
}

// Live resharding grows the plane K -> 2K (Cluster::split_shards) because
// doubling is the one growth step both route functions split cleanly under:
// hash % 2K of anything in old shard s is either s or s + K, and a handle in
// residue class s (mod K) is in residue s or s + K (mod 2K). Old shard s
// therefore partitions exactly into new shards {s, split_sibling(s, K)} with
// no cross-shard leakage, which is what lets the split move only the
// sibling half and leave everything else byte-for-byte in place.
inline u32 split_sibling(u32 shard, u32 old_count) {
  return shard + old_count;
}

// --- Typed metadata messages ------------------------------------------------
// One request/reply pair covers every manager metadata operation. The
// MetaClient facade routes a MetaRequest to the shard that owns its name;
// replies from a manager that does not own the name carry kWrongShard (a
// fast redirect + shard-map refresh), from an inactive manager
// kFailedPrecondition (re-aim at the shard's other candidate).
enum class MetaOp : u8 {
  kCreate,
  kOpen,
  kStat,    // open-shaped lookup; no client-side open state
  kRemove,
};

struct MetaRequest {
  MetaOp op = MetaOp::kOpen;
  std::string name;
  // kCreate parameters (ignored by the other ops).
  u64 stripe_size = 0;
  u32 iod_count = 0;
  u32 base_iod = kAutoBaseIod;
  u32 replication_factor = 1;
};

struct MetaReply {
  Status status;
  FileMeta meta;  // valid when status.is_ok() and op != kRemove
};

// --- Cache leases -----------------------------------------------------------
// The client caching tier (src/cache/) holds attribute and data entries
// under manager-granted leases. A lease here is not a timed token: it is
// membership on the cluster's revocation bus. Managers publish a
// LeaseRevoke when the cached fact changes out from under its holders —
// the name was created or removed, or the owning shard's epoch was bumped
// by a takeover / migration cutover / split — and every subscribed client
// drops the affected entries (routed through its MetaClient, which is the
// component that already owns shard-map staleness). Publication is a free
// host-side call: real PVFS would piggyback revokes on the manager's reply
// stream, and charging it no simulated time keeps cache-off timelines
// byte-identical.

enum class LeaseRevokeReason : u8 {
  kCreated,    // the name was (re)created: any cached attr for it is stale
  kRemoved,    // the name/handle was removed: attrs and data are both stale
  kEpochBump,  // takeover/migration/split on `shard`: drop that shard only
};

struct LeaseRevoke {
  LeaseRevokeReason reason = LeaseRevokeReason::kRemoved;
  // The shard the revoke is scoped to, under `shard_count` total shards.
  // kEpochBump holders re-route their entries with *this* count (a split
  // doubles it), so only entries that now route to `shard` drop — the
  // "affected shard only" contract that keeps an unrelated shard's cache
  // warm across someone else's reshard.
  u32 shard = 0;
  u32 shard_count = 1;
  // kCreated/kRemoved: the name (and, for kRemoved, the dead handle so
  // data-cache extents drop with the attrs).
  std::string name;
  Handle handle = 0;
};

// Cluster-wide lease revocation bus. Owned by the Cluster; managers publish,
// MetaClients subscribe on behalf of their client's cache. Clients whose
// cache is disabled never subscribe, so publication with no cache enabled
// is a no-op and costs nothing.
class LeaseBus {
 public:
  using Sink = std::function<void(const LeaseRevoke&)>;
  void subscribe(Sink sink) { sinks_.push_back(std::move(sink)); }
  void publish(const LeaseRevoke& rv) {
    for (auto& s : sinks_) s(rv);
  }

 private:
  std::vector<Sink> sinks_;
};

// One round of a list I/O operation directed at one iod: at most
// `max_list_pairs` file accesses and at most one staging buffer of data.
struct RoundRequest {
  Handle handle = 0;
  u32 client = 0;
  // Which of the client connection's staging buffers this round uses.
  // With pipelining (pipeline_depth W > 1) up to W rounds are in flight
  // per iod and each must land in its own buffer; round k uses slot
  // k mod W, so a slot is only reused after its previous round replied.
  // Under replication the pool grows to factor * W per client and replica
  // j of a chain uses slots [j*W, (j+1)*W): a physical iod serves its own
  // primary chain and neighbour stripes' backup chains for the same
  // client concurrently, and they must not share buffers (or the
  // (client, slot) replay-dedupe log).
  u32 slot = 0;
  // Per-slot round sequence number (client-assigned, strictly increasing
  // per (client, slot) chain; 0 = unsequenced). Makes write rounds
  // idempotently replayable: when a reply is lost and the client replays
  // the round, the iod recognises an already-applied sequence number and
  // acks without re-running the disk phase.
  u64 round_seq = 0;
  // Partial-round restart: this replay's payload already landed in the
  // target's staging buffer (and, because data arrival and the disk phase
  // are atomic at the iod, was already applied), so the request carries no
  // data phase and the iod will dedupe it by round_seq.
  bool data_staged = false;
  bool is_write = false;
  bool sync = false;       // fsync before replying (write) / O_DIRECT-ish
  bool use_ads = true;     // server may data-sieve if its model agrees
  // Per-stripe version carried by replicated write rounds (client-assigned
  // from the manager's per-(handle, stripe) sequence; 0 = unversioned, the
  // only value at factor 1). The iod persists max(header, version) in the
  // local file's stripe header and returns the header in its ack, and read
  // services return it too — that is how the client (and via its notes the
  // manager's staleness map) learns which replicas are current vs stale.
  u64 version = 0;
  // Manager epoch under which `version` was minted (0 = unversioned round).
  // An iod that has seen a newer epoch refuses to merge the version into
  // its stripe header (the bytes still land — data is not epoch-gated, only
  // the version plane is), so mints from a zombie primary cannot mark a
  // replica current (pvfs.epoch_rejections).
  u64 epoch = 0;
  ExtentList accesses;     // iod-local file extents, stream order
  u64 bytes() const { return total_length(accesses); }
};

// RESYNC request: a crash-restarted iod pulling one chunk of a stale stripe
// from a current peer in the chain. The puller learned (handle, stripe, the
// target version, and the peer's local-file key) from the manager's
// staleness map; the peer answers with the chunk's bytes out of that local
// file. Rate-limited by ReplicationParams::resync_bandwidth, chunked by
// resync_round_bytes.
struct ResyncRequest {
  Handle handle = 0;       // cluster-wide file handle (for tracing)
  u32 stripe = 0;          // logical stripe server index
  Handle peer_handle = 0;  // the peer's local-file key for this stripe
  u64 offset = 0;          // chunk start within the stripe-local file
  u64 max_bytes = 0;       // chunk size cap (resync_round_bytes)
};

// How read data returns to the client.
enum class ReadReturn {
  kFastBounce,    // server RDMA-writes packed data into the client's
                  // pre-registered Fast-RDMA buffer (small transfers)
  kDirectGather,  // server RDMA-writes with gather straight into the
                  // client's single contiguous destination buffer
  kClientPull,    // server packs staging; client pulls (scatter/pack/multi
                  // per its transfer policy)
};

}  // namespace pvfsib::pvfs
