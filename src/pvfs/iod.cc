#include "pvfs/iod.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "fault/injector.h"
#include "pvfs/manager.h"
#include "sim/engine.h"
#include "sim/trace.h"

namespace pvfsib::pvfs {

namespace {
std::string iod_name(u32 id) { return "iod" + std::to_string(id); }
}  // namespace

Iod::Iod(u32 id, u32 client_count, const ModelConfig& cfg, ib::Fabric& fabric,
         Stats* stats, fault::Injector* faults)
    : id_(id),
      cfg_(cfg),
      fabric_(fabric),
      stats_(stats),
      faults_(faults),
      hca_(iod_name(id), as_, cfg.reg, stats),
      fs_(iod_name(id), cfg.disk, cfg.fs, stats),
      disk_queue_(iod_name(id) + ".disk"),
      ads_(cfg.disk, cfg.fs, cfg.mem,
           core::AdsConfig{cfg.pvfs.staging_buffer, true, false}, stats) {
  // One buffer per in-flight round per client; replica chains bring their
  // own slot region (see RoundRequest::slot), so the pool scales with the
  // replication factor. At factor 1 this is exactly the classic pool.
  slots_per_client_ = std::max<u32>(1, cfg.pipeline_depth) *
                      std::max<u32>(1, cfg.replication.factor);
  staging_.resize(static_cast<size_t>(client_count) * slots_per_client_);
  for (core::StagingBuffer& sb : staging_) {
    sb.hca = &hca_;
    sb.size = cfg.pvfs.staging_buffer;
    sb.addr = as_.alloc(sb.size);
    ib::RegAttempt reg = hca_.register_memory(sb.addr, sb.size);
    assert(reg.ok());
    sb.rkey = reg.key;
  }
  sieve_addr_ = as_.alloc(cfg.pvfs.staging_buffer);
  ib::RegAttempt reg = hca_.register_memory(sieve_addr_, cfg.pvfs.staging_buffer);
  assert(reg.ok());
  sieve_key_ = reg.key;
}

disk::LocalFile& Iod::file(Handle h) {
  auto it = files_.find(h);
  if (it == files_.end()) {
    Result<u32> fd = fs_.create("/pvfs/h" + std::to_string(h));
    assert(fd.is_ok());
    it = files_.emplace(h, fd.value()).first;
  }
  return fs_.file(it->second);
}

Duration Iod::remove_file(Handle h) {
  auto it = files_.find(h);
  if (it == files_.end()) return Duration::zero();
  const Duration cost = fs_.file(it->second).purge();
  files_.erase(it);
  // Drop the stripe header with the data: a header outliving its file
  // would resurrect the deleted stripe in a later takeover's header scan
  // (and leak versions into a recreated file reusing the local key). The
  // block checksums go the same way — stale stamps on a recreated file
  // would read as instant corruption.
  stripe_version_.erase(h);
  block_sums_.erase(h);
  return cost;
}

Duration Iod::disk_scaled(Duration cost, TimePoint at) const {
  if (faults_ == nullptr || !faults_->enabled()) return cost;
  return cost * faults_->disk_factor(id_, at);
}

bool Iod::already_applied(u32 client, u32 slot, u64 seq) {
  u64& high = applied_seq_[{client, slot}];
  if (seq <= high) return true;
  high = seq;
  return false;
}

core::StagingBuffer& Iod::staging(u32 client, u32 slot) {
  assert(slot < slots_per_client_);
  const size_t idx = static_cast<size_t>(client) * slots_per_client_ + slot;
  assert(idx < staging_.size());
  return staging_[idx];
}

Iod::DiskPhase Iod::write_disk_phase(const RoundRequest& r,
                                     std::span<const std::byte> stream,
                                     TimePoint when) {
  DiskPhase out;
  disk::LocalFile& f = file(r.handle);
  const disk::IoOpts io{};

  // Short-circuit: the decision model is only consulted (and only counts
  // towards the profile) when the client allowed server-side sieving.
  const bool sieve =
      r.use_ads && ads_.decide(r.accesses, /*is_write=*/true, f.size()).sieve;
  sim::Trace::instance().emitf(
      when, hca_.name(),
      "write round h%llu slot%u @%llu: %zu accesses, %llu B -> %s",
      static_cast<unsigned long long>(r.handle), r.slot,
      static_cast<unsigned long long>(
          r.accesses.empty() ? 0 : r.accesses.front().offset),
      r.accesses.size(), static_cast<unsigned long long>(r.bytes()),
      sieve ? "sieve (RMW)" : "separate");

  if (!sieve) {
    u64 stream_off = 0;
    for (const Extent& a : r.accesses) {
      out.cost += f.pwrite(a.offset, stream.subspan(stream_off, a.length), io)
                      .cost;
      stream_off += a.length;
    }
  } else {
    // Read-modify-write under a byte-range lock covering the sieve spans.
    ExtentList sorted = r.accesses;
    sort_by_offset(sorted);
    Result<disk::LocalFile::RangeLock> lk =
        f.lock_range(bounding_span(sorted));
    if (!lk.is_ok()) {
      out.status = lk.status();
      return out;
    }
    out.cost += lk.value().cost;
    vmem::AddressSpace& as = as_;
    std::byte* sieve_buf = as.data(sieve_addr_);
    for (const auto& w : ads_.plan_windows(r.accesses)) {
      // Read the window span (short at EOF); zero-fill the tail so the
      // write-back cannot resurrect stale scratch bytes in file holes.
      Timed<u64> rd = f.pread(w.span.offset, {sieve_buf, w.span.length}, io);
      out.cost += rd.cost;
      if (rd.value < w.span.length) {
        std::memset(sieve_buf + rd.value, 0, w.span.length - rd.value);
      }
      // Modify: copy the wanted pieces from the packed stream.
      u64 wanted = 0;
      for (const auto& p : w.pieces) {
        std::memcpy(sieve_buf + p.window_off, stream.data() + p.stream_off,
                    p.length);
        wanted += p.length;
      }
      out.cost += cfg_.mem.copy_cost(wanted);
      // Write the whole window back.
      out.cost += f.pwrite(w.span.offset, {sieve_buf, w.span.length}, io).cost;
    }
    out.cost += f.unlock_range(lk.value().id);
  }

  if (r.sync) out.cost += f.fsync();
  out.status = Status::ok();
  return out;
}

TimePoint Iod::write_round(const RoundRequest& r, TimePoint data_ready,
                           Duration* disk_cost, u64* ack_version,
                           bool* epoch_rejected) {
  if (epoch_rejected != nullptr) *epoch_rejected = false;
  if (r.round_seq != 0 && already_applied(r.client, r.slot, r.round_seq)) {
    // Replay of a round whose reply was lost: the disk phase already ran,
    // so ack without re-applying (idempotent replay). The original apply
    // merged the version; the ack reports the current header.
    if (stats_ != nullptr) stats_->add(stat::kPvfsReplaysDeduped);
    sim::Trace::instance().emitf(
        data_ready, hca_.name(), "write round h%llu slot%u seq%llu: replay, %s",
        static_cast<unsigned long long>(r.handle), r.slot,
        static_cast<unsigned long long>(r.round_seq), "acked without reapply");
    if (disk_cost != nullptr) *disk_cost = Duration::zero();
    if (ack_version != nullptr) *ack_version = stripe_version(r.handle);
    return data_ready;
  }
  // A staged replay (partial-round restart) carries no payload; it must
  // always hit the dedupe branch above — data landing and the disk apply
  // are atomic at this iod, so "staged" implies "applied".
  assert(!r.data_staged);
  const core::StagingBuffer& sb = staging(r.client, r.slot);
  assert(r.bytes() <= sb.size);
  // Silent-corruption draws, fixed order (lost, torn, flip; at most one
  // fires) so the injector's rng stream is consumed identically across
  // runs. Drawn before the apply: a lost write never reaches the disk.
  bool lost = false;
  bool torn = false;
  bool flip = false;
  if (faults_ != nullptr && faults_->enabled() && r.bytes() > 0) {
    lost = faults_->lost_write(id_, data_ready);
    if (!lost) torn = faults_->torn_write(id_, data_ready);
    if (!lost && !torn) flip = faults_->write_bit_flip(id_, data_ready);
  }
  if (lost) {
    // The disk firmware dropped the round but acked it: nothing is
    // applied, no header moves, yet the ack reports exactly what a real
    // apply would have — so the manager wrongly records this replica
    // current. already_applied() above logged the seq, so replays dedupe
    // like any acked round. Only a header-vs-staleness-map cross-check (a
    // reader's gate or the scrubber's) can catch the lie later.
    sim::Trace::instance().emitf(
        data_ready, hca_.name(),
        "write round h%llu slot%u: LOST WRITE injected, acked unapplied",
        static_cast<unsigned long long>(r.handle), r.slot);
    if (disk_cost != nullptr) *disk_cost = Duration::zero();
    if (ack_version != nullptr) {
      *ack_version = std::max(stripe_version(r.handle), r.version);
    }
    return data_ready;
  }
  const std::span<const std::byte> stream =
      as_.readable_span(sb.addr, r.bytes());
  const u64 pre_size = file(r.handle).size();
  DiskPhase phase = write_disk_phase(r, stream, data_ready);
  // Rounds on one iod are serialized by the disk queue (pipelined rounds
  // arrive in data-phase order), so the RMW range lock can never conflict;
  // a failure here is a protocol bug.
  assert(phase.status.is_ok());
  phase.cost = disk_scaled(phase.cost, data_ready);
  if (disk_cost != nullptr) *disk_cost = phase.cost;
  // Stamp block checksums from the *intended* content, then let torn/flip
  // corruption garble the stored bytes behind the stamps — that mismatch
  // is exactly what verify-on-read and the scrubber detect.
  stamp_round(r.handle, r.accesses, pre_size);
  if (torn) {
    corrupt_torn(r.handle, r.accesses, data_ready);
  } else if (flip) {
    corrupt_flip(r.handle, r.accesses, data_ready);
  }
  // Merge the round's version into the stripe header (kept as if durable,
  // like applied_seq_). Unversioned rounds — the only kind at factor 1 —
  // never touch the map. A version minted under a manager epoch this iod
  // has seen superseded is fenced out of the header (the bytes above still
  // landed; only the version plane is epoch-gated), so a zombie primary's
  // in-flight mints cannot make this replica look current to a takeover
  // scan or to its own acks.
  if (r.version != 0) {
    const u64 fence =
        manager_epoch(shard_of_handle(r.handle, cfg_.pvfs.metadata_shards));
    if (r.epoch != 0 && r.epoch < fence) {
      if (epoch_rejected != nullptr) *epoch_rejected = true;
      if (stats_ != nullptr) stats_->add(stat::kPvfsEpochRejections);
      sim::Trace::instance().emitf(
          data_ready, hca_.name(),
          "write round h%llu slot%u: stale epoch %llu < %llu, header fenced",
          static_cast<unsigned long long>(r.handle), r.slot,
          static_cast<unsigned long long>(r.epoch),
          static_cast<unsigned long long>(fence));
    } else {
      u64& header = stripe_version_[r.handle];
      header = std::max(header, r.version);
    }
  }
  if (ack_version != nullptr) *ack_version = stripe_version(r.handle);
  return disk_queue_.acquire(data_ready, phase.cost);
}

u64 Iod::stripe_version(Handle h) const {
  auto it = stripe_version_.find(h);
  return it == stripe_version_.end() ? 0 : it->second;
}

TimePoint Iod::apply_repair(Handle h, const ExtentList& accesses,
                            std::span<const std::byte> stream, u64 version,
                            TimePoint at) {
  RoundRequest rr;
  rr.handle = h;
  rr.is_write = true;
  rr.use_ads = false;  // the repair stream is already round-shaped
  rr.accesses = accesses;
  const u64 pre_size = file(h).size();
  DiskPhase phase = write_disk_phase(rr, stream, at);
  assert(phase.status.is_ok());
  phase.cost = disk_scaled(phase.cost, at);
  // Repairs stamp like any apply: the healed bytes must verify on the next
  // read (and the scrubber must not re-flag the repaired blocks).
  stamp_round(h, accesses, pre_size);
  if (version != 0) {
    u64& header = stripe_version_[h];
    header = std::max(header, version);
  }
  return disk_queue_.acquire(at, phase.cost);
}

Timed<u64> Iod::serve_resync(const ResyncRequest& rq,
                             std::span<std::byte> dst) {
  disk::LocalFile& f = file(rq.peer_handle);
  const u64 size = f.size();
  if (rq.offset >= size) return {0, Duration::zero()};
  const u64 n = std::min({rq.max_bytes, size - rq.offset, dst.size()});
  return f.pread(rq.offset, dst.subspan(0, n), {});
}

// --- Background re-replication --------------------------------------------

struct Iod::ResyncState {
  std::vector<Manager::ResyncTarget> targets;
  size_t ti = 0;   // current target
  u64 off = 0;     // byte cursor within the current stripe's local file
  u64 rounds = 0;  // chunk pulls spent on the current stripe
  TimePoint t = TimePoint::origin();
};

void Iod::configure_resync(sim::Engine* engine,
                           std::vector<Manager*> authorities,
                           std::vector<Iod*> peers) {
  engine_ = engine;
  managers_ = std::move(authorities);
  peers_ = std::move(peers);
}

void Iod::set_resync_authority(u32 shard, Manager* manager) {
  if (engine_ == nullptr) return;  // configure_resync never ran
  // Grown on demand: split-born shards index past the mount-time count.
  if (shard >= managers_.size()) managers_.resize(shard + 1, nullptr);
  managers_[shard] = manager;
}

void Iod::on_restart(TimePoint t) {
  if (engine_ == nullptr || managers_.empty()) return;
  auto st = std::make_shared<ResyncState>();
  for (Manager* m : managers_) {
    if (m == nullptr) continue;
    auto part = m->resync_targets(id_);
    st->targets.insert(st->targets.end(), part.begin(), part.end());
  }
  if (st->targets.empty()) return;
  st->t = t;
  sim::Trace::instance().emitf(t, hca_.name(),
                               "resync: %zu stale stripe(s) after restart",
                               st->targets.size());
  resync_step(st);
}

void Iod::resync_step(std::shared_ptr<ResyncState> st) {
  // Crashed again mid-scan: abandon; the next restart rescans (the map
  // still records every unfinished stripe as stale).
  if (faults_ != nullptr && faults_->enabled() &&
      faults_->iod_down(id_, st->t)) {
    return;
  }
  while (st->ti < st->targets.size()) {
    const Manager::ResyncTarget& tg = st->targets[st->ti];
    // The first chain peer recorded current and up right now is the pull
    // source; with none, skip the stripe (still recorded stale — a later
    // restart retries).
    Iod* peer = nullptr;
    Handle peer_handle = 0;
    u32 peer_id = 0;
    for (size_t j = 0; j < tg.peers.size(); ++j) {
      const u32 p = tg.peers[j];
      if (p < peers_.size() && peers_[p] != nullptr &&
          !(faults_ != nullptr && faults_->enabled() &&
            faults_->iod_down(p, st->t))) {
        peer = peers_[p];
        peer_handle = tg.peer_handles[j];
        peer_id = p;
        break;
      }
    }
    if (peer == nullptr) {
      ++st->ti;
      st->off = 0;
      st->rounds = 0;
      continue;
    }
    const u64 peer_size = peer->file(peer_handle).size();
    if (st->off >= peer_size) {
      // Stripe fully pulled: the copy now holds everything the map's
      // latest version covers, so the replica is current again.
      u64& header = stripe_version_[tg.local_handle];
      header = std::max(header, tg.latest);
      const u32 shard = shard_of_handle(tg.handle, cfg_.pvfs.metadata_shards);
      if (shard < managers_.size() && managers_[shard] != nullptr) {
        // A completed pull is the one event that also clears a corrupt
        // flag in the staleness map: the copy was rebuilt (and restamped)
        // in full from an intact peer.
        managers_[shard]->note_replica_resynced(tg.handle, tg.stripe, id_,
                                                tg.latest);
      }
      if (stats_ != nullptr) stats_->add(stat::kPvfsResyncStripes);
      sim::Trace::instance().emitf(
          st->t, hca_.name(),
          "resync: h%llu stripe %u current at v%llu (%llu B in %llu rounds)",
          static_cast<unsigned long long>(tg.handle), tg.stripe,
          static_cast<unsigned long long>(tg.latest),
          static_cast<unsigned long long>(peer_size),
          static_cast<unsigned long long>(st->rounds));
      ++st->ti;
      st->off = 0;
      st->rounds = 0;
      continue;
    }
    // Pull one chunk: RESYNC request over the fabric, peer disk read, the
    // return wire capped at the resync rate, local disk write. Chunks are
    // strictly sequential — one outstanding pull keeps the background
    // traffic bounded by resync_bandwidth.
    ResyncRequest rq;
    rq.handle = tg.handle;
    rq.stripe = tg.stripe;
    rq.peer_handle = peer_handle;
    rq.offset = st->off;
    rq.max_bytes = cfg_.replication.resync_round_bytes;
    std::vector<std::byte> buf(
        std::min(rq.max_bytes, peer_size - st->off));
    const TimePoint req_at =
        fabric_.send_control(hca_, peer->hca(), cfg_.pvfs.request_msg_bytes,
                             st->t, ib::ControlKind::kRequest);
    const Timed<u64> rd = peer->serve_resync(rq, buf);
    const double bw =
        std::min(cfg_.replication.resync_bandwidth, cfg_.net.rdma_read_bw);
    const Duration wire =
        cfg_.net.rdma_read_latency + transfer_time(rd.value, bw);
    if (!peer->verify_ranges(peer_handle, {{st->off, rd.value}})) {
      // The pull source itself is rotten: applying (and restamping) its
      // bytes here would launder the corruption into a copy that verifies
      // clean — silent rot, the one thing the integrity plane must never
      // manufacture. Flag the source and abandon the stripe; it stays
      // recorded stale, so a later scan retries against the surviving
      // chain once the flagged copy is excluded or healed.
      if (stats_ != nullptr) stats_->add(stat::kPvfsCorruptionsDetected);
      const u32 shard = shard_of_handle(tg.handle, cfg_.pvfs.metadata_shards);
      if (shard < managers_.size() && managers_[shard] != nullptr) {
        managers_[shard]->note_replica_corrupt(tg.handle, tg.stripe, peer_id);
      }
      sim::Trace::instance().emitf(
          st->t, hca_.name(),
          "resync: h%llu stripe %u pull source iod%u CORRUPT, abandoning",
          static_cast<unsigned long long>(tg.handle), tg.stripe, peer_id);
      ++st->ti;
      st->off = 0;
      st->rounds = 0;
      st->t = req_at + rd.cost + wire;
      engine_->schedule_at(st->t, [this, st] { resync_step(st); });
      return;
    }
    disk::LocalFile& lf = file(tg.local_handle);
    const u64 pre_size = lf.size();
    const Timed<u64> wr = lf.pwrite(st->off, {buf.data(), rd.value}, {});
    // Resync applies stamp like writes do: the rebuilt copy must verify.
    stamp_round(tg.local_handle, {{st->off, rd.value}}, pre_size);
    if (stats_ != nullptr) stats_->add(stat::kPvfsResyncRounds);
    st->off += rd.value;
    ++st->rounds;
    st->t = req_at + rd.cost + wire + wr.cost;
    engine_->schedule_at(st->t, [this, st] { resync_step(st); });
    return;
  }
}

Iod::DiskPhase Iod::read_separate_phase(const RoundRequest& r,
                                        u64 staging_addr) {
  DiskPhase out;
  disk::LocalFile& f = file(r.handle);
  u64 stream_off = 0;
  for (const Extent& a : r.accesses) {
    Timed<u64> rd = f.pread(
        a.offset, as_.writable_span(staging_addr + stream_off, a.length), {});
    out.cost += rd.cost;
    if (rd.value < a.length) {
      // Reading a hole / past EOF yields zeros (PVFS semantics for stripes
      // never written).
      std::memset(as_.data(staging_addr + stream_off + rd.value), 0,
                  a.length - rd.value);
    }
    stream_off += a.length;
  }
  out.status = Status::ok();
  return out;
}

Iod::ReadService Iod::read_round(const RoundRequest& r, TimePoint start,
                                 ReadReturn path, ib::Hca* client_hca,
                                 u64 client_dest, u32 client_rkey) {
  ReadService svc;
  svc.version = stripe_version(r.handle);
  const core::StagingBuffer& sb = staging(r.client, r.slot);
  const u64 total = r.bytes();
  if (total > sb.size) {
    svc.status = invalid_argument("read round exceeds staging buffer");
    return svc;
  }

  // Verify-on-read: recompute the stamped block checksums of every block
  // the round touches (zero simulated cost — the hash overlaps the disk
  // read). A mismatch means the stored bytes silently diverged from what
  // was acked (bit flip, torn write); this replica is reachable but
  // untrustworthy, so the round fails typed kCorrupt and the client fails
  // over instead of retrying here.
  if (!verify_ranges(r.handle, r.accesses)) {
    if (stats_ != nullptr) stats_->add(stat::kPvfsCorruptionsDetected);
    sim::Trace::instance().emitf(
        start, hca_.name(), "read round h%llu: block checksum MISMATCH",
        static_cast<unsigned long long>(r.handle));
    svc.status = corrupt("stripe block checksum mismatch on h" +
                         std::to_string(r.handle));
    svc.ready = start;
    return svc;
  }

  disk::LocalFile& f = file(r.handle);
  const bool sieve =
      r.use_ads &&
      ads_.decide(r.accesses, /*is_write=*/false, f.size()).sieve;
  sim::Trace::instance().emitf(
      start, hca_.name(), "read round h%llu: %zu accesses, %llu B -> %s, %s",
      static_cast<unsigned long long>(r.handle), r.accesses.size(),
      static_cast<unsigned long long>(total),
      sieve ? "sieve" : "separate",
      path == ReadReturn::kFastBounce      ? "fast-bounce"
      : path == ReadReturn::kDirectGather ? "direct-gather"
                                           : "client-pull");

  if (!sieve) {
    // Access-by-access, packing straight into the staging buffer.
    DiskPhase phase = read_separate_phase(r, sb.addr);
    phase.cost = disk_scaled(phase.cost, start);
    svc.disk_cost = phase.cost;
    const TimePoint data_at = disk_queue_.acquire(start, phase.cost);
    switch (path) {
      case ReadReturn::kClientPull:
        svc.ready = data_at;
        break;
      case ReadReturn::kFastBounce:
      case ReadReturn::kDirectGather: {
        const ib::Sge sge{sb.addr, total, sb.rkey};
        ib::TransferResult tr = fabric_.rdma_write(
            hca_, sge, *client_hca, client_dest, client_rkey, data_at);
        if (!tr.ok()) {
          svc.status = tr.status;
          return svc;
        }
        svc.ready = tr.complete;
        break;
      }
    }
    svc.status = Status::ok();
    svc.bytes = total;
    return svc;
  }

  // Sieved read: window by window.
  std::byte* sieve_buf = as_.data(sieve_addr_);
  TimePoint net_done = start;
  TimePoint disk_done = start;
  for (const auto& w : ads_.plan_windows(r.accesses)) {
    Timed<u64> rd = f.pread(w.span.offset, {sieve_buf, w.span.length}, {});
    if (rd.value < w.span.length) {
      std::memset(sieve_buf + rd.value, 0, w.span.length - rd.value);
    }
    rd.cost = disk_scaled(rd.cost, disk_done);
    svc.disk_cost += rd.cost;
    disk_done = disk_queue_.acquire(disk_done, rd.cost);

    if (path == ReadReturn::kDirectGather) {
      // Ship wanted pieces straight out of the sieve buffer, one gather per
      // run of stream-consecutive pieces (the remote side of a gather WR is
      // contiguous). No pack copy — the scatter/gather NIC does the work.
      std::vector<ib::Sge> run;
      u64 run_start = 0;
      u64 run_next = 0;
      auto flush_run = [&] {
        if (run.empty()) return;
        ib::TransferResult tr = fabric_.rdma_write_gather(
            hca_, run, *client_hca, client_dest + run_start, client_rkey,
            disk_done);
        assert(tr.ok());
        net_done = max(net_done, tr.complete);
        run.clear();
      };
      for (const auto& p : w.pieces) {
        if (run.empty() || p.stream_off != run_next) {
          flush_run();
          run_start = p.stream_off;
          run_next = p.stream_off;
        }
        run.push_back(ib::Sge{sieve_addr_ + p.window_off, p.length,
                              sieve_key_});
        run_next += p.length;
      }
      flush_run();
    } else {
      // Pack wanted pieces into the staging buffer (stream order) so the
      // client can pull one contiguous region / receive one bounce write.
      u64 wanted = 0;
      for (const auto& p : w.pieces) {
        std::memcpy(as_.data(sb.addr + p.stream_off),
                    sieve_buf + p.window_off, p.length);
        wanted += p.length;
      }
      svc.disk_cost += cfg_.mem.copy_cost(wanted);
      disk_done = disk_queue_.acquire(disk_done, cfg_.mem.copy_cost(wanted));
    }
  }

  switch (path) {
    case ReadReturn::kClientPull:
      svc.ready = disk_done;
      break;
    case ReadReturn::kFastBounce: {
      const ib::Sge sge{sb.addr, total, sb.rkey};
      ib::TransferResult tr = fabric_.rdma_write(
          hca_, sge, *client_hca, client_dest, client_rkey, disk_done);
      if (!tr.ok()) {
        svc.status = tr.status;
        return svc;
      }
      svc.ready = tr.complete;
      break;
    }
    case ReadReturn::kDirectGather:
      svc.ready = max(net_done, disk_done);
      break;
  }
  svc.status = Status::ok();
  svc.bytes = total;
  return svc;
}

// --- Data integrity ---------------------------------------------------------

u64 Iod::block_checksum(std::span<const std::byte> s) {
  u64 h = 1469598103934665603ull;  // FNV-1a 64-bit
  for (const std::byte b : s) {
    h ^= static_cast<u8>(b);
    h *= 1099511628211ull;
  }
  return h;
}

void Iod::stamp_round(Handle h, const ExtentList& accesses, u64 pre_size) {
  disk::LocalFile& f = file(h);
  const u64 B = std::max<u64>(1, cfg_.replication.integrity_block_bytes);
  const u64 size = f.size();
  if (size == 0) return;
  std::map<u64, u64>& sums = block_sums_[h];
  const std::span<const std::byte> bytes = f.contents();
  auto stamp = [&](u64 off, u64 len) {
    if (len == 0 || off >= size) return;
    len = std::min(len, size - off);
    const u64 first = off / B;
    const u64 last = (off + len - 1) / B;
    for (u64 b = first; b <= last; ++b) {
      const u64 lo = b * B;
      const u64 hi = std::min(lo + B, size);
      sums[b] = block_checksum(bytes.subspan(lo, hi - lo));
    }
  };
  for (const Extent& a : accesses) stamp(a.offset, a.length);
  // Growth restamps the zero-filled gap and the old tail block, whose
  // extent (and therefore checksum) changed when the file grew.
  if (size > pre_size) stamp(pre_size, size - pre_size);
}

bool Iod::verify_ranges(Handle h, const ExtentList& accesses) {
  const auto bit = block_sums_.find(h);
  if (bit == block_sums_.end()) return true;
  const auto fit = files_.find(h);
  if (fit == files_.end()) return true;
  const disk::LocalFile& f = fs_.file(fit->second);
  const u64 B = std::max<u64>(1, cfg_.replication.integrity_block_bytes);
  const u64 size = f.size();
  const std::span<const std::byte> bytes = f.contents();
  for (const Extent& a : accesses) {
    if (a.length == 0 || a.offset >= size) continue;
    const u64 len = std::min(a.length, size - a.offset);
    const u64 first = a.offset / B;
    const u64 last = (a.offset + len - 1) / B;
    for (u64 b = first; b <= last; ++b) {
      const auto s = bit->second.find(b);
      if (s == bit->second.end()) continue;  // pre-v2 block: trusted
      const u64 lo = b * B;
      const u64 hi = std::min(lo + B, size);
      if (block_checksum(bytes.subspan(lo, hi - lo)) != s->second) {
        return false;
      }
    }
  }
  return true;
}

void Iod::corrupt_torn(Handle h, const ExtentList& accesses, TimePoint at) {
  const u64 total = total_length(accesses);
  if (total == 0) return;
  // Keep a prefix of the round's stream on the platter; the torn tail
  // reads back garbled under the intact (intended-content) stamps.
  const u64 keep = faults_->draw(total);
  std::span<std::byte> bytes = file(h).mutable_contents();
  u64 pos = 0;
  for (const Extent& a : accesses) {
    for (u64 i = 0; i < a.length; ++i, ++pos) {
      if (pos < keep) continue;
      const u64 off = a.offset + i;
      if (off < bytes.size()) bytes[off] ^= std::byte{0x5a};
    }
  }
  sim::Trace::instance().emitf(
      at, hca_.name(),
      "torn write injected on h%llu: kept %llu of %llu B",
      static_cast<unsigned long long>(h),
      static_cast<unsigned long long>(keep),
      static_cast<unsigned long long>(total));
}

void Iod::corrupt_flip(Handle h, const ExtentList& accesses, TimePoint at) {
  const u64 total = total_length(accesses);
  if (total == 0) return;
  u64 pos = faults_->draw(total);
  const u32 bit = static_cast<u32>(faults_->draw(8));
  std::span<std::byte> bytes = file(h).mutable_contents();
  for (const Extent& a : accesses) {
    if (pos < a.length) {
      const u64 off = a.offset + pos;
      if (off < bytes.size()) {
        bytes[off] ^= static_cast<std::byte>(1u << bit);
        sim::Trace::instance().emitf(
            at, hca_.name(),
            "bit flip injected on h%llu at %llu (bit %u)",
            static_cast<unsigned long long>(h),
            static_cast<unsigned long long>(off), bit);
      }
      return;
    }
    pos -= a.length;
  }
}

void Iod::inject_bit_flip(TimePoint at) {
  if (faults_ == nullptr) return;
  // Deterministic pick among nonempty local files (map order), then a byte
  // and a bit, all from the injector's seeded stream. A node with no data
  // yet absorbs the event silently (and counts nothing — the fault never
  // materialized).
  std::vector<u32> cands;
  for (const auto& [h, fd] : files_) {
    if (fs_.file(fd).size() > 0) cands.push_back(fd);
  }
  if (cands.empty()) return;
  disk::LocalFile& f = fs_.file(cands[faults_->draw(cands.size())]);
  const u64 off = faults_->draw(f.size());
  const u32 bit = static_cast<u32>(faults_->draw(8));
  f.mutable_contents()[off] ^= static_cast<std::byte>(1u << bit);
  if (stats_ != nullptr) stats_->add(stat::kFaultBitFlip);
  sim::Trace::instance().emitf(
      at, hca_.name(), "bit flip injected at rest: %s off %llu bit %u",
      f.path().c_str(), static_cast<unsigned long long>(off), bit);
}

// --- Background scrubber ----------------------------------------------------

struct Iod::ScrubState {
  TimePoint until = TimePoint::origin();
  Handle cursor = 0;  // next local handle to visit (lower_bound key)
  u64 off = 0;        // byte cursor within the cursor file
};

void Iod::start_scrub(TimePoint until) {
  if (engine_ == nullptr || managers_.empty()) return;
  if (!cfg_.replication.scrub) return;
  auto st = std::make_shared<ScrubState>();
  st->until = until;
  const TimePoint first = engine_->now() + cfg_.replication.scrub_interval;
  if (first > until) return;
  engine_->schedule_at(first, [this, st] { scrub_tick(st); });
}

void Iod::scrub_tick(std::shared_ptr<ScrubState> st) {
  const TimePoint now = engine_->now();
  const bool down = faults_ != nullptr && faults_->enabled() &&
                    faults_->iod_down(id_, now);
  if (!down && !files_.empty()) {
    u64 budget = std::max<u64>(1, cfg_.replication.scrub_chunk_bytes);
    u64 scanned = 0;
    bool issues = false;
    TimePoint done = now;
    // At most one pass over the file table per tick (+1 for the wrap).
    for (size_t visits = files_.size() + 1; budget > 0 && visits > 0;
         --visits) {
      const auto it = files_.lower_bound(st->cursor);
      if (it == files_.end()) {
        st->cursor = 0;
        st->off = 0;
        continue;
      }
      const Handle h = it->first;
      disk::LocalFile& f = fs_.file(it->second);
      if (st->off >= f.size()) {
        st->cursor = h + 1;
        st->off = 0;
        continue;
      }
      // The shard manager that owns this local file's stripes: corrupt and
      // stale findings are reported there, and the version cross-check
      // reads its staleness map.
      const bool backup = (h >> 63) != 0;
      const Handle gh = backup ? (h & ((Handle{1} << 48) - 1)) : h;
      const u32 shard = shard_of_handle(gh, cfg_.pvfs.metadata_shards);
      Manager* mgr = shard < managers_.size() ? managers_[shard] : nullptr;
      // Version cross-check, once per file (at its first chunk): a header
      // trailing a stripe the map records *current here* is an acked write
      // that never hit the platter — a lost write, invisible to checksums
      // because the stored (old) bytes still verify.
      if (st->off == 0 && mgr != nullptr) {
        const u64 header = stripe_version(h);
        for (const Manager::LocalStripeView& v : mgr->local_stripes(h, id_)) {
          if (v.known && v.recorded >= v.latest && header < v.latest) {
            if (stats_ != nullptr) {
              stats_->add(stat::kPvfsScrubStaleHeaders);
            }
            sim::Trace::instance().emitf(
                now, hca_.name(),
                "scrub: h%llu stripe %u header v%llu < map v%llu, lost "
                "write detected",
                static_cast<unsigned long long>(v.handle), v.stripe,
                static_cast<unsigned long long>(header),
                static_cast<unsigned long long>(v.latest));
            mgr->note_replica_observed(v.handle, v.stripe, id_, header);
            issues = true;
          }
        }
      }
      const u64 n = std::min(budget, f.size() - st->off);
      // The media re-read is charged through the disk queue like any other
      // access — scrub bandwidth is real, which is why the sweep is opt-in
      // and rate-limited.
      std::vector<std::byte> scratch(n);
      const Timed<u64> rd = f.pread(st->off, scratch, {});
      done = disk_queue_.acquire(done, disk_scaled(rd.cost, now));
      if (!verify_ranges(h, {{st->off, n}})) {
        if (stats_ != nullptr) {
          stats_->add(stat::kPvfsScrubCorruptions);
          stats_->add(stat::kPvfsCorruptionsDetected);
        }
        sim::Trace::instance().emitf(
            now, hca_.name(), "scrub: h%llu checksum MISMATCH in [%llu,%llu)",
            static_cast<unsigned long long>(h),
            static_cast<unsigned long long>(st->off),
            static_cast<unsigned long long>(st->off + n));
        if (mgr != nullptr) {
          for (const Manager::LocalStripeView& v :
               mgr->local_stripes(h, id_)) {
            mgr->note_replica_corrupt(v.handle, v.stripe, id_);
          }
        }
        issues = true;
      }
      budget -= n;
      scanned += n;
      st->off += n;
    }
    if (scanned > 0 && stats_ != nullptr) {
      stats_->add(stat::kPvfsScrubChunks);
      stats_->add(stat::kPvfsScrubBytes, scanned);
    }
    // Heal: the findings above are now recorded stale/corrupt in the
    // staleness map, which is exactly what the restart resync scanner
    // pulls from — reuse it. Concurrent scans are deterministic and pull
    // idempotently, so no interlock is needed.
    if (issues) on_restart(done);
  }
  const TimePoint next = now + cfg_.replication.scrub_interval;
  if (next <= st->until) {
    engine_->schedule_at(next, [this, st] { scrub_tick(st); });
  }
}

}  // namespace pvfsib::pvfs
