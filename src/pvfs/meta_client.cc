#include "pvfs/meta_client.h"

#include <string>

#include "fault/injector.h"
#include "pvfs/manager.h"
#include "sim/engine.h"
#include "sim/trace.h"

namespace pvfsib::pvfs {

namespace {
// Manager ops only surface kUnavailable when the fault plane swallowed the
// request; everything else is a real (terminal) metadata answer.
bool meta_lost(const MetaReply& r) {
  return r.status.code() == ErrorCode::kUnavailable;
}
// A demoted or not-yet-promoted manager answers kFailedPrecondition
// ("manager not active") — a fast redirect, not a timeout: the client
// re-targets the request at the shard's other candidate without waiting.
bool meta_redirected(const MetaReply& r) {
  return r.status.code() == ErrorCode::kFailedPrecondition;
}
bool meta_wrong_shard(const MetaReply& r) {
  return r.status.code() == ErrorCode::kWrongShard;
}
}  // namespace

MetaClient::MetaClient(ib::Hca& hca, sim::Engine& engine, Stats* stats,
                       fault::Injector* faults, const MetaRegistry* registry,
                       MigrationParams mig)
    : hca_(hca),
      engine_(engine),
      stats_(stats),
      faults_(faults),
      registry_(registry),
      mig_(mig) {
  // Mount-time config fetch: the cached map starts correct and free (no
  // pvfs.shard_map_refreshes — the counter tracks redirect-driven
  // refreshes, which never happen in fault-free runs).
  shards_.clear();
  for (u32 s = 0; s < registry_->shard_count(); ++s) {
    const MetaRegistry::Shard& sh = registry_->shard(s);
    shards_.push_back(CachedShard{sh.candidates, sh.active});
  }
  version_ = registry_->version();
}

bool MetaClient::faulty() const {
  return faults_ != nullptr && faults_->enabled();
}

void MetaClient::refresh_map() {
  if (stale_refreshes_ > 0) {
    // Test hook: this refresh raced a reshard and fetched an
    // already-superseded map generation — model it by collapsing to the
    // stale single-shard view again. The refresh itself still happened
    // (and counts), which is exactly the situation the bounded re-refresh
    // loop must survive.
    --stale_refreshes_;
    invalidate_map();
    if (stats_ != nullptr) stats_->add(stat::kPvfsShardMapRefreshes);
    return;
  }
  shards_.clear();
  for (u32 s = 0; s < registry_->shard_count(); ++s) {
    const MetaRegistry::Shard& sh = registry_->shard(s);
    shards_.push_back(CachedShard{sh.candidates, sh.active});
  }
  version_ = registry_->version();
  if (stats_ != nullptr) stats_->add(stat::kPvfsShardMapRefreshes);
}

void MetaClient::invalidate_map() {
  // A stale mount: one shard, its current candidates, pre-reshard version.
  CachedShard only = shards_.empty()
                         ? CachedShard{}
                         : CachedShard{shards_[0].candidates, shards_[0].active};
  shards_.assign(1, std::move(only));
  version_ = 0;
}

Manager& MetaClient::route(std::string_view name) {
  return active_of(shard_of(name, shard_count()));
}

MetaClient::Outcome MetaClient::call(const MetaRequest& rq, TimePoint issue) {
  u32 shard = shard_of(rq.name, shard_count());
  Timed<MetaReply> r = active_of(shard).serve(hca_, issue, rq);
  u32 refreshes = 0;
  u32 retries = 0;
  for (;;) {
    // Stale-map redirect: a fast reply carrying the fresh shard map.
    // Handled outside the fault-retry loop — it is protocol, not failure —
    // and bounded, not at-most-once: a refresh can itself land an
    // already-stale map while a migration/split is flipping the registry
    // (two generations in flight), so the client re-refreshes up to
    // map_refresh_attempts times with capped backoff instead of stranding
    // the call on its first stale refresh. The first redirect refreshes
    // immediately (the classic path, timeline-identical).
    if (meta_wrong_shard(r.value)) {
      if (refreshes >= mig_.map_refresh_attempts) {
        return {std::move(r.value), issue + r.cost};
      }
      if (stats_ != nullptr) stats_->add(stat::kPvfsShardRedirects);
      TimePoint noticed = issue + r.cost;
      if (refreshes > 0) {
        Duration backoff = mig_.map_refresh_backoff;
        for (u32 i = 1; i < refreshes && backoff < mig_.map_refresh_backoff_cap;
             ++i) {
          backoff = backoff * 2.0;
        }
        noticed = noticed + min(backoff, mig_.map_refresh_backoff_cap);
      }
      const u64 stale_version = version_;
      refresh_map();
      ++refreshes;
      const u32 owner = shard_of(rq.name, shard_count());
      sim::Trace::instance().emitf(
          noticed, hca_.name(),
          "metadata wrong shard (map v%llu -> v%llu), re-routing to %s",
          static_cast<unsigned long long>(stale_version),
          static_cast<unsigned long long>(version_),
          active_of(owner).hca().name().c_str());
      shard = owner;
      issue = noticed;
      r = active_of(shard).serve(hca_, issue, rq);
      continue;
    }
    if (!faulty() || !(meta_lost(r.value) || meta_redirected(r.value))) {
      return {std::move(r.value), issue + r.cost};
    }
    const FaultConfig& fc = faults_->config();
    if (retries >= fc.max_retries) {
      // The final attempt failed too: the client waits out its timeout (or
      // takes the redirect reply on the chin) and gives up.
      const TimePoint done =
          meta_lost(r.value) ? issue + fc.round_timeout : issue + r.cost;
      MetaReply rep;
      rep.status = unavailable("metadata op failed after " +
                               std::to_string(retries) + " retries");
      return {std::move(rep), done};
    }
    CachedShard& cs = shards_[shard];
    if (stats_ != nullptr) stats_->add(stat::kPvfsMetaRetries);
    Duration backoff = fc.backoff_base;
    for (u32 i = 1; i <= retries && backoff < fc.backoff_cap; ++i) {
      backoff = backoff * fc.backoff_mult;
    }
    backoff = min(backoff, fc.backoff_cap);
    ++retries;
    // A lost request is only noticed when the timeout fires; a redirect is
    // a real (fast) reply.
    const bool lost = meta_lost(r.value);
    const TimePoint noticed = lost ? issue + fc.round_timeout : issue + r.cost;
    if (cs.candidates.size() > 1) {
      cs.active = (cs.active + 1) % cs.candidates.size();
      if (stats_ != nullptr) stats_->add(stat::kPvfsMetaFailovers);
      sim::Trace::instance().emitf(
          noticed, hca_.name(),
          "metadata %s, failing over to %s (retry %u in %s)",
          lost ? "timeout" : "redirect",
          cs.candidates[cs.active]->hca().name().c_str(), retries,
          backoff.to_string().c_str());
    } else {
      sim::Trace::instance().emitf(
          issue + fc.round_timeout, hca_.name(), "metadata retry %u in %s",
          retries, backoff.to_string().c_str());
    }
    issue = noticed + backoff;
    r = cs.candidates[cs.active]->serve(hca_, issue, rq);
  }
}

Manager& MetaClient::authority(Handle h) {
  for (u32 attempt = 0;; ++attempt) {
    const u32 shard = shard_of_handle(h, shard_count());
    CachedShard& cs = shards_[shard];
    if (cs.candidates.size() > 1 && cs.candidates[cs.active]->epoch_stale()) {
      // The believed-active manager was superseded by a takeover this
      // client never witnessed. Minting from it (or feeding it notes)
      // would split the version plane, so the client refuses and
      // re-targets the epoch-current candidate.
      if (stats_ != nullptr) stats_->add(stat::kPvfsEpochRejections);
      for (size_t i = 0; i < cs.candidates.size(); ++i) {
        if (!cs.candidates[i]->epoch_stale()) {
          cs.active = i;
          break;
        }
      }
      sim::Trace::instance().emitf(
          engine_.now(), hca_.name(),
          "version authority stale, re-targeting %s (epoch %llu)",
          cs.candidates[cs.active]->hca().name().c_str(),
          static_cast<unsigned long long>(cs.candidates[cs.active]->epoch()));
    }
    Manager& m = *cs.candidates[cs.active];
    // A candidate that still holds the handle's slice of the version plane
    // under the current epoch is the authority — the fault-free fast path,
    // cost-free as before. After a migration or split, every cached
    // candidate can be epoch-stale or stripped of the handle (a retired
    // source would silently mint version 0 from its dropped namespace);
    // then the client refreshes from the registry and re-routes, bounded
    // like the wrong-shard path. Authority lookups are free host-side
    // calls, so the refresh costs no simulated time.
    if (!m.epoch_stale() && m.owns_handle(h)) return m;
    if (attempt >= mig_.map_refresh_attempts ||
        version_ == registry_->version()) {
      return m;
    }
    sim::Trace::instance().emitf(
        engine_.now(), hca_.name(),
        "version authority for handle %llu lost to a reshard, refreshing map",
        static_cast<unsigned long long>(h));
    refresh_map();
  }
}

}  // namespace pvfsib::pvfs
