#include "pvfs/meta_client.h"

#include <string>

#include "fault/injector.h"
#include "pvfs/manager.h"
#include "sim/engine.h"
#include "sim/trace.h"

namespace pvfsib::pvfs {

namespace {
// Manager ops only surface kUnavailable when the fault plane swallowed the
// request; everything else is a real (terminal) metadata answer.
bool meta_lost(const MetaReply& r) {
  return r.status.code() == ErrorCode::kUnavailable;
}
// A demoted or not-yet-promoted manager answers kFailedPrecondition
// ("manager not active") — a fast redirect, not a timeout: the client
// re-targets the request at the shard's other candidate without waiting.
bool meta_redirected(const MetaReply& r) {
  return r.status.code() == ErrorCode::kFailedPrecondition;
}
bool meta_wrong_shard(const MetaReply& r) {
  return r.status.code() == ErrorCode::kWrongShard;
}
}  // namespace

MetaClient::MetaClient(ib::Hca& hca, sim::Engine& engine, Stats* stats,
                       fault::Injector* faults, const MetaRegistry* registry)
    : hca_(hca),
      engine_(engine),
      stats_(stats),
      faults_(faults),
      registry_(registry) {
  // Mount-time config fetch: the cached map starts correct and free (no
  // pvfs.shard_map_refreshes — the counter tracks redirect-driven
  // refreshes, which never happen in fault-free runs).
  shards_.clear();
  for (u32 s = 0; s < registry_->shard_count(); ++s) {
    const MetaRegistry::Shard& sh = registry_->shard(s);
    shards_.push_back(CachedShard{sh.candidates, sh.active});
  }
  version_ = registry_->version();
}

bool MetaClient::faulty() const {
  return faults_ != nullptr && faults_->enabled();
}

void MetaClient::refresh_map() {
  shards_.clear();
  for (u32 s = 0; s < registry_->shard_count(); ++s) {
    const MetaRegistry::Shard& sh = registry_->shard(s);
    shards_.push_back(CachedShard{sh.candidates, sh.active});
  }
  version_ = registry_->version();
  if (stats_ != nullptr) stats_->add(stat::kPvfsShardMapRefreshes);
}

void MetaClient::invalidate_map() {
  // A stale mount: one shard, its current candidates, pre-reshard version.
  CachedShard only = shards_.empty()
                         ? CachedShard{}
                         : CachedShard{shards_[0].candidates, shards_[0].active};
  shards_.assign(1, std::move(only));
  version_ = 0;
}

Manager& MetaClient::route(std::string_view name) {
  return active_of(shard_of(name, shard_count()));
}

MetaClient::Outcome MetaClient::call(const MetaRequest& rq, TimePoint issue) {
  u32 shard = shard_of(rq.name, shard_count());
  Timed<MetaReply> r = active_of(shard).serve(hca_, issue, rq);
  // Stale-map redirect: a fast reply carrying the fresh shard map. Handled
  // outside the fault-retry loop — it is protocol, not failure — and at
  // most once per call, because the refreshed map routes correctly.
  if (meta_wrong_shard(r.value)) {
    if (stats_ != nullptr) stats_->add(stat::kPvfsShardRedirects);
    const TimePoint noticed = issue + r.cost;
    const u64 stale_version = version_;
    refresh_map();
    const u32 owner = shard_of(rq.name, shard_count());
    sim::Trace::instance().emitf(
        noticed, hca_.name(),
        "metadata wrong shard (map v%llu -> v%llu), re-routing to %s",
        static_cast<unsigned long long>(stale_version),
        static_cast<unsigned long long>(version_),
        active_of(owner).hca().name().c_str());
    shard = owner;
    issue = noticed;
    r = active_of(shard).serve(hca_, issue, rq);
  }
  if (!faulty() || !(meta_lost(r.value) || meta_redirected(r.value))) {
    return {std::move(r.value), issue + r.cost};
  }
  const FaultConfig& fc = faults_->config();
  CachedShard& cs = shards_[shard];
  u32 retries = 0;
  while ((meta_lost(r.value) || meta_redirected(r.value)) &&
         retries < fc.max_retries) {
    if (stats_ != nullptr) stats_->add(stat::kPvfsMetaRetries);
    Duration backoff = fc.backoff_base;
    for (u32 i = 1; i <= retries && backoff < fc.backoff_cap; ++i) {
      backoff = backoff * fc.backoff_mult;
    }
    backoff = min(backoff, fc.backoff_cap);
    ++retries;
    // A lost request is only noticed when the timeout fires; a redirect is
    // a real (fast) reply.
    const bool lost = meta_lost(r.value);
    const TimePoint noticed = lost ? issue + fc.round_timeout : issue + r.cost;
    if (cs.candidates.size() > 1) {
      cs.active = (cs.active + 1) % cs.candidates.size();
      if (stats_ != nullptr) stats_->add(stat::kPvfsMetaFailovers);
      sim::Trace::instance().emitf(
          noticed, hca_.name(),
          "metadata %s, failing over to %s (retry %u in %s)",
          lost ? "timeout" : "redirect",
          cs.candidates[cs.active]->hca().name().c_str(), retries,
          backoff.to_string().c_str());
    } else {
      sim::Trace::instance().emitf(
          issue + fc.round_timeout, hca_.name(), "metadata retry %u in %s",
          retries, backoff.to_string().c_str());
    }
    issue = noticed + backoff;
    r = cs.candidates[cs.active]->serve(hca_, issue, rq);
  }
  if (meta_lost(r.value) || meta_redirected(r.value)) {
    // The final attempt failed too: the client waits out its timeout (or
    // takes the redirect reply on the chin) and gives up.
    const TimePoint done =
        meta_lost(r.value) ? issue + fc.round_timeout : issue + r.cost;
    MetaReply rep;
    rep.status = unavailable("metadata op failed after " +
                             std::to_string(retries) + " retries");
    return {std::move(rep), done};
  }
  return {std::move(r.value), issue + r.cost};
}

Manager& MetaClient::authority(Handle h) {
  const u32 shard = shard_of_handle(h, shard_count());
  CachedShard& cs = shards_[shard];
  if (cs.candidates.size() > 1 && cs.candidates[cs.active]->epoch_stale()) {
    // The believed-active manager was superseded by a takeover this client
    // never witnessed. Minting from it (or feeding it notes) would split
    // the version plane, so the client refuses and re-targets the
    // epoch-current candidate.
    if (stats_ != nullptr) stats_->add(stat::kPvfsEpochRejections);
    for (size_t i = 0; i < cs.candidates.size(); ++i) {
      if (!cs.candidates[i]->epoch_stale()) {
        cs.active = i;
        break;
      }
    }
    sim::Trace::instance().emitf(
        engine_.now(), hca_.name(),
        "version authority stale, re-targeting %s (epoch %llu)",
        cs.candidates[cs.active]->hca().name().c_str(),
        static_cast<unsigned long long>(cs.candidates[cs.active]->epoch()));
  }
  return *cs.candidates[cs.active];
}

}  // namespace pvfsib::pvfs
